(* Building several indexes in one scan of the data (paper §6.2).

   Scanning the data pages dominates the cost of a build on a big table, so
   the builder extracts keys for every requested index in a single pass;
   each index gets its own sort and tree-construction pipeline.

   Run with: dune exec examples/multi_index.exe *)

open Oib_core
module Sched = Oib_sim.Sched
module Driver = Oib_workload.Driver

let build ctx specs =
  let before = ctx.Ctx.metrics.sequential_reads in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_indexes ctx (Ib.default_config Ib.Sf) ~table:1 specs));
  Sched.run ctx.Ctx.sched;
  ctx.Ctx.metrics.sequential_reads - before

let fresh () =
  let ctx = Engine.create ~seed:3 ~page_capacity:1024 () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  let _ = Driver.populate ctx ~table:1 ~rows:4000 ~seed:3 in
  ctx

let () =
  (* one scan for three indexes *)
  let ctx = fresh () in
  let reads_once =
    build ctx
      [
        { Ib.index_id = 10; key_cols = [ 0 ]; unique = false };
        { Ib.index_id = 11; key_cols = [ 1 ]; unique = false };
        { Ib.index_id = 12; key_cols = [ 0; 1 ]; unique = false };
      ]
  in
  (match Engine.consistency_errors ctx with
  | [] -> ()
  | errs -> List.iter print_endline errs);
  Printf.printf "three indexes, one scan:    %4d page reads\n" reads_once;

  (* versus three sequential builds *)
  let ctx = fresh () in
  let r1 = build ctx [ { Ib.index_id = 10; key_cols = [ 0 ]; unique = false } ] in
  let r2 = build ctx [ { Ib.index_id = 11; key_cols = [ 1 ]; unique = false } ] in
  let r3 =
    build ctx [ { Ib.index_id = 12; key_cols = [ 0; 1 ]; unique = false } ]
  in
  (match Engine.consistency_errors ctx with
  | [] -> ()
  | errs -> List.iter print_endline errs);
  Printf.printf "three separate builds:      %4d page reads (%d + %d + %d)\n"
    (r1 + r2 + r3) r1 r2 r3;
  Printf.printf "scan savings:               %.1fx\n"
    (float_of_int (r1 + r2 + r3) /. float_of_int (max 1 reads_once))
