(* "The so-called batch window is rapidly shrinking" (paper §6): a
   day-in-the-life scenario with no maintenance window at all.

   A table serves transactions continuously while we: build an index with
   NSF and serve reads through its already-complete prefix before the build
   finishes (footnote 3); run the pseudo-delete garbage collector as a
   background daemon (§2.2.4); take an online backup; and truncate the log
   (footnote 8) — all without ever stopping the updaters.

   Run with: dune exec examples/batch_window.exe *)

open Oib_core
module Sched = Oib_sim.Sched
module Driver = Oib_workload.Driver

let () =
  let ctx = Engine.create ~seed:5 ~page_capacity:1024 () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  let _ = Driver.populate ctx ~table:1 ~rows:4000 ~seed:5 in
  Printf.printf "day starts: 4000 rows, updaters never stop\n";

  (* round-the-clock transaction traffic *)
  let wcfg = { Driver.default with seed = 5; workers = 5; txns_per_worker = 120 } in
  let stats = Driver.spawn_workers ctx wcfg ~table:1 in

  (* the online index build, checkpointing often enough that the
     gradual-availability bound moves visibly *)
  let cfg = { (Ib.default_config Ib.Nsf) with ckpt_every_keys = 512 } in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx cfg ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false };
         print_endline "index build finished"));

  (* an impatient reader uses the index as soon as its prefix allows *)
  let early_reads = ref 0 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"reader" (fun () ->
         let served_before_done = ref false in
         for _ = 1 to 300 do
           (match
              Engine.run_txn ctx (fun txn ->
                  Table_ops.index_lookup ctx txn ~index:10 "v000001")
            with
           | Ok _ ->
             incr early_reads;
             if
               (not !served_before_done)
               && (Catalog.index ctx.Ctx.catalog 10).phase <> Catalog.Ready
             then begin
               served_before_done := true;
               print_endline
                 "reader: index answered while the build was still running \
                  (gradual availability, footnote 3)"
             end
           | Error _ -> ()
           | exception Invalid_argument _ -> () (* not yet available *));
           Sched.yield ctx.Ctx.sched
         done));

  (* background tombstone collection *)
  let stop_gc, collected = Ib.spawn_gc_daemon ctx ~index_id:10 ~every:25 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ops" (fun () ->
         (* wait out most of the day's traffic, then wind down the daemon *)
         for _ = 1 to 2500 do
           Sched.yield ctx.Ctx.sched
         done;
         stop_gc ()));
  Sched.run ctx.Ctx.sched;

  Printf.printf "traffic: %d committed, %d rolled back, %d deadlock victims\n"
    (!stats).committed (!stats).aborted (!stats).deadlocks;
  Printf.printf "index lookups served: %d (gc daemon collected %d tombstones)\n"
    !early_reads !collected;

  (* online backup + log truncation, still without a quiesce *)
  let _backup = Engine.backup ctx in
  let log_before = Oib_wal.Log_manager.durable_bytes ctx.Ctx.log in
  let reclaimed = Engine.truncate_log ctx in
  Printf.printf "online backup taken; log truncated %d -> %d bytes\n"
    log_before (log_before - reclaimed);

  (* and the night shift can still crash... *)
  let ctx = Engine.crash ctx in
  match Engine.consistency_errors ctx with
  | [] -> print_endline "restart after truncation: consistency OK"
  | errs ->
    List.iter print_endline errs;
    exit 1
