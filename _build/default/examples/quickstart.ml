(* Quickstart: create an engine, load a table, build an index on it with
   the SF algorithm while a transaction keeps writing, then query through
   the finished index.

   Run with: dune exec examples/quickstart.exe *)

open Oib_core
module Sched = Oib_sim.Sched

let () =
  (* the engine bundles WAL, buffer pool, lock manager, transactions and
     catalog over a deterministic cooperative scheduler *)
  let ctx = Engine.create ~seed:7 ~page_capacity:1024 () in
  let table = (Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1).table_id in

  (* load some records: (city, population) *)
  let cities =
    [
      ("tokyo", "37M"); ("delhi", "33M"); ("shanghai", "29M");
      ("dhaka", "23M"); ("sao-paulo", "22M"); ("cairo", "22M");
      ("mexico-city", "22M"); ("beijing", "21M"); ("mumbai", "21M");
      ("osaka", "19M");
    ]
  in
  (match
     Engine.run_txn ctx (fun txn ->
         List.iter
           (fun (name, pop) ->
             ignore
               (Table_ops.insert ctx txn ~table (Oib_util.Record.make [| name; pop |])))
           cities)
   with
  | Ok () -> print_endline "loaded 10 rows"
  | Error _ -> failwith "load failed");

  (* build an index on column 0 (city name) with the Side-File algorithm —
     concurrently, a transaction fiber keeps inserting rows *)
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"writer" (fun () ->
         for i = 1 to 5 do
           (match
              Engine.run_txn ctx (fun txn ->
                  ignore
                    (Table_ops.insert ctx txn ~table
                       (Oib_util.Record.make
                          [| Printf.sprintf "newtown-%d" i; "1M" |])))
            with
           | Ok () -> Printf.printf "writer: inserted newtown-%d\n" i
           | Error _ -> ());
           Sched.yield ctx.Ctx.sched
         done));
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"index-builder" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Sf) ~table
           { Ib.index_id = 100; key_cols = [ 0 ]; unique = true };
         print_endline "index built (unique, on city name)"));
  Sched.run ctx.Ctx.sched;

  (* the new index answers queries *)
  List.iter
    (fun city ->
      match
        Engine.run_txn ctx (fun txn ->
            Table_ops.index_lookup ctx txn ~index:100 city)
      with
      | Ok [ (_, r) ] ->
        Printf.printf "lookup %-10s -> %s\n" city (Oib_util.Record.to_string r)
      | Ok _ -> Printf.printf "lookup %-10s -> not found\n" city
      | Error _ -> ())
    [ "tokyo"; "newtown-3"; "atlantis" ];

  (* and the engine-wide consistency oracle agrees *)
  match Engine.consistency_errors ctx with
  | [] -> print_endline "consistency check: OK"
  | errs -> List.iter print_endline errs
