examples/quickstart.ml: Catalog Ctx Engine Ib List Oib_core Oib_sim Oib_util Printf Table_ops
