examples/online_reindex.ml: Catalog Ctx Engine Ib List Oib_btree Oib_core Oib_sim Oib_workload Printf
