examples/restartable_sort.ml: Array Durable_kv Ikey List Merge_phase Oib_sort Oib_storage Oib_util Option Printf Rid Rng Run_store Sort_phase
