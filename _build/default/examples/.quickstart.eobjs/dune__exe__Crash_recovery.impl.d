examples/crash_recovery.ml: Catalog Ctx Engine Ib List Oib_core Oib_sim Oib_storage Oib_util Oib_workload Printf
