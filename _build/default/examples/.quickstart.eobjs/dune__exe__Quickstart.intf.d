examples/quickstart.mli:
