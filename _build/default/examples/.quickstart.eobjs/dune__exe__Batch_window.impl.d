examples/batch_window.ml: Catalog Ctx Engine Ib List Oib_core Oib_sim Oib_wal Oib_workload Printf Table_ops
