examples/batch_window.mli:
