examples/restartable_sort.mli:
