examples/online_reindex.mli:
