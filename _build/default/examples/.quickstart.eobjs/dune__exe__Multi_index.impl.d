examples/multi_index.ml: Catalog Ctx Engine Ib List Oib_core Oib_sim Oib_workload Printf
