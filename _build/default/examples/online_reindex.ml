(* Online reindex under fire: the scenario that motivates the paper.

   A busy "orders" table takes a steady stream of inserts, deletes and
   updates while we add a secondary index — first with NSF, then with SF —
   and we watch what each algorithm costs: transaction throughput, stall
   time, log volume, latch traffic, and the clustering of the result.

   Run with: dune exec examples/online_reindex.exe *)

open Oib_core
module Sched = Oib_sim.Sched
module Driver = Oib_workload.Driver
module Metrics = Oib_sim.Metrics

let run_one algorithm =
  let ctx = Engine.create ~seed:42 ~page_capacity:1024 () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  let _ = Driver.populate ctx ~table:1 ~rows:2000 ~seed:42 in
  let wcfg =
    { Driver.default with seed = 42; workers = 6; txns_per_worker = 60 }
  in
  let before = Metrics.snapshot ctx.Ctx.metrics in
  let stats = Driver.spawn_workers ctx wcfg ~table:1 in
  let build_steps = ref 0 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         let t0 = Sched.steps ctx.Ctx.sched in
         Ib.build_index ctx (Ib.default_config algorithm) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false };
         build_steps := Sched.steps ctx.Ctx.sched - t0));
  Sched.run ctx.Ctx.sched;
  (match Engine.consistency_errors ctx with
  | [] -> ()
  | errs ->
    List.iter prerr_endline errs;
    failwith "consistency violated");
  let d = Metrics.diff ~after:(Metrics.snapshot ctx.Ctx.metrics) ~before in
  let tree = (Catalog.index ctx.Ctx.catalog 10).tree in
  (!stats, d, !build_steps, Oib_btree.Bt_check.clustering tree)

let () =
  print_endline "building a secondary index on 2000 rows while 6 workers";
  print_endline "run 60 transactions each (inserts/deletes/updates)...\n";
  let show name (stats : Driver.stats) (d : Metrics.t) steps clustering =
    Printf.printf "%s:\n" name;
    Printf.printf "  txns committed        %6d (aborted %d, deadlock %d)\n"
      stats.committed stats.aborted stats.deadlocks;
    Printf.printf "  build time (steps)    %6d\n" steps;
    Printf.printf "  log bytes written     %6d\n" d.log_bytes;
    Printf.printf "  latch acquisitions    %6d\n" d.latch_acquires;
    Printf.printf "  tree traversals       %6d (fast-path %d)\n"
      d.tree_traversals d.fast_path_inserts;
    Printf.printf "  side-file entries     %6d\n" d.sidefile_appends;
    Printf.printf "  result clustering     %6.3f\n\n" clustering
  in
  let s, d, steps, c = run_one Ib.Nsf in
  show "NSF (no side-file)" s d steps c;
  let s, d, steps, c = run_one Ib.Sf in
  show "SF (side-file, bottom-up)" s d steps c;
  print_endline "both algorithms produced a consistent index; compare the";
  print_endline "overheads above with the paper's qualitative Section 4."
