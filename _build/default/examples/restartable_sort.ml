(* The restartable external sort by itself (paper §5).

   Sort a few hundred thousand keys through the replacement-selection
   tournament, crash in the middle of the sort phase and again in the
   middle of the merge phase, and resume both times from checkpoints —
   losing only the work since the last checkpoint.

   Run with: dune exec examples/restartable_sort.exe *)

open Oib_util
open Oib_sort
open Oib_storage

let n_keys = 200_000
let page_size = 100

let key i = Ikey.make (Printf.sprintf "k%08d" i) (Rid.make ~page:i ~slot:0)

let () =
  let rng = Rng.create 1 in
  let keys = Array.init n_keys key in
  Rng.shuffle rng keys;
  let kv = Durable_kv.create () in
  let store = ref (Run_store.create ()) in

  (* --- sort phase, interrupted --- *)
  let sorter = Sort_phase.start kv !store ~ckpt_id:"demo" ~memory_keys:4096 in
  let crash_page = n_keys / page_size / 2 in
  (try
     for p = 0 to (n_keys / page_size) - 1 do
       if p = crash_page then failwith "crash";
       Sort_phase.feed_page sorter ~scan_pos:p
         (Array.to_list (Array.sub keys (p * page_size) page_size));
       if (p + 1) mod 100 = 0 then Sort_phase.checkpoint sorter
     done
   with Failure _ ->
     Printf.printf "CRASH mid-sort at page %d\n" crash_page);
  store := Run_store.crash !store;

  (* resume: only pages after the checkpoint need rescanning *)
  let sorter =
    Option.get (Sort_phase.resume kv !store ~ckpt_id:"demo" ~memory_keys:4096)
  in
  let resume_from = Sort_phase.scan_pos sorter + 1 in
  Printf.printf "sort resumes at page %d (of %d fed before the crash)\n"
    resume_from crash_page;
  for p = resume_from to (n_keys / page_size) - 1 do
    Sort_phase.feed_page sorter ~scan_pos:p
      (Array.to_list (Array.sub keys (p * page_size) page_size))
  done;
  let runs = Sort_phase.finish sorter in
  Printf.printf "sort phase done: %d runs (replacement selection, 4096-key tournament)\n"
    (List.length runs);

  (* --- merge phase, interrupted --- *)
  (try
     ignore
       (Merge_phase.merge ~stop_after:(n_keys / 2) kv !store ~ckpt_id:"demo/m"
          ~inputs:runs ~output:"demo/out" ~ckpt_every:10_000)
   with Merge_phase.Injected_crash ->
     Printf.printf "CRASH mid-merge after %d keys\n" (n_keys / 2));
  store := Run_store.crash !store;
  let out =
    Merge_phase.merge kv !store ~ckpt_id:"demo/m" ~inputs:runs
      ~output:"demo/out" ~ckpt_every:10_000
  in
  Printf.printf "merge resumed from its counter-vector checkpoint\n";

  (* verify *)
  let ok = ref (Run_store.length out = n_keys && Run_store.is_sorted out) in
  List.iteri
    (fun i (k : Ikey.t) -> if k.Ikey.rid.Rid.page <> i then ok := false)
    (Run_store.to_list out);
  Printf.printf "output: %d keys, sorted=%b, exact content=%b\n"
    (Run_store.length out) (Run_store.is_sorted out) !ok
