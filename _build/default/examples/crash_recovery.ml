(* Crash in the middle of an online index build, restart, resume.

   The build is interrupted by a simulated system failure while
   transactions are in flight. Restart recovery rolls the losers back and
   restores the build's state from its durable checkpoints (restartable
   sort, image checkpoints, side-file rebuilt from the log); the resumed
   builder finishes without rescanning everything.

   Run with: dune exec examples/crash_recovery.exe *)

open Oib_core
module Sched = Oib_sim.Sched
module Driver = Oib_workload.Driver

let cfg =
  { (Ib.default_config Ib.Sf) with ckpt_every_pages = 16; ckpt_every_keys = 256 }

let () =
  let ctx = Engine.create ~seed:11 ~page_capacity:1024 () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  let _ = Driver.populate ctx ~table:1 ~rows:3000 ~seed:11 in
  Printf.printf "table loaded: %d pages\n"
    (Oib_storage.Heap_file.page_count (Catalog.table ctx.Ctx.catalog 1).heap);

  let wcfg = { Driver.default with seed = 11; workers = 4; txns_per_worker = 200 } in
  let _ = Driver.spawn_workers ctx wcfg ~table:1 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx cfg ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));

  (* pull the plug mid-build *)
  Sched.set_crash_trap ctx.Ctx.sched (fun steps -> steps >= 150);
  (match Sched.run ctx.Ctx.sched with
  | () -> print_endline "build finished before the crash point (unexpected)"
  | exception Sched.Crashed ->
    Printf.printf "CRASH at step 150 (scan position so far: %s)\n"
      (match (Catalog.index ctx.Ctx.catalog 10).phase with
      | Catalog.Sf_building sf -> Oib_util.Rid.to_string sf.current_rid
      | _ -> "-"));
  let scanned_before = ctx.Ctx.metrics.sequential_reads in

  (* restart: recovery analyzes the log, redoes the data pages, replays
     index images, rolls back losers *)
  let ctx = Engine.crash ctx in
  print_endline "restart recovery complete; resuming the interrupted build";

  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib-resume" (fun () ->
         Ib.resume_builds ctx cfg));
  let wcfg' = { wcfg with seed = 12; txns_per_worker = 40 } in
  let _ = Driver.spawn_workers ctx wcfg' ~table:1 in
  Sched.run ctx.Ctx.sched;

  let total_pages =
    Oib_storage.Heap_file.page_count (Catalog.table ctx.Ctx.catalog 1).heap
  in
  Printf.printf "resumed build rescanned %d of %d data pages\n"
    (ctx.Ctx.metrics.sequential_reads - scanned_before)
    total_pages;
  (match (Catalog.index ctx.Ctx.catalog 10).phase with
  | Catalog.Ready -> print_endline "index is READY"
  | _ -> print_endline "index still building?!");
  match Engine.consistency_errors ctx with
  | [] -> print_endline "consistency check after crash + resume: OK"
  | errs ->
    List.iter print_endline errs;
    exit 1
