type t = { page : int; slot : int }

let make ~page ~slot = { page; slot }

let compare a b =
  match Int.compare a.page b.page with
  | 0 -> Int.compare a.slot b.slot
  | c -> c

let equal a b = compare a b = 0

let hash t = (t.page * 1000003) lxor t.slot

let minus_infinity = { page = min_int; slot = 0 }

let infinity = { page = max_int; slot = max_int }

let is_infinity t = equal t infinity

let pp ppf t =
  if is_infinity t then Format.pp_print_string ppf "+inf"
  else if equal t minus_infinity then Format.pp_print_string ppf "-inf"
  else Format.fprintf ppf "(%d,%d)" t.page t.slot

let to_string t = Format.asprintf "%a" pp t
