type writer = Buffer.t

type reader = { s : string; mutable pos : int }

exception Corrupt of string

let writer () = Buffer.create 256

let contents = Buffer.contents

let w_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let w_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let w_bool buf b = w_u8 buf (if b then 1 else 0)

let w_str buf s =
  w_i64 buf (String.length s);
  Buffer.add_string buf s

let reader s = { s; pos = 0 }

let fail msg = raise (Corrupt msg)

let r_u8 r =
  if r.pos >= String.length r.s then fail "eof in u8";
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_i64 r =
  if r.pos + 8 > String.length r.s then fail "eof in i64";
  let v = Int64.to_int (String.get_int64_le r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let r_bool r = r_u8 r <> 0

let r_str r =
  let n = r_i64 r in
  if n < 0 || r.pos + n > String.length r.s then fail "bad string length";
  let v = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  v

let at_end r = r.pos = String.length r.s
