(** Deterministic pseudo-random number generator (SplitMix64).

    All randomness in the system flows through explicitly seeded generators
    so that every run — including every simulated race condition and crash —
    is reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy sharing the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in [\[lo, hi\]] inclusive. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val split : t -> t
(** Derive an independent generator; advances [t]. *)
