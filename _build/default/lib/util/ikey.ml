type t = { kv : string; rid : Rid.t }

let make kv rid = { kv; rid }

let compare a b =
  match String.compare a.kv b.kv with
  | 0 -> Rid.compare a.rid b.rid
  | c -> c

let compare_kv a b = String.compare a.kv b.kv

let equal a b = compare a b = 0

(* key bytes + 8-byte RID + 2-byte slot directory entry + 1 flag byte *)
let encoded_size t = String.length t.kv + 11

let pp ppf t = Format.fprintf ppf "<%S,%a>" t.kv Rid.pp t.rid

let to_string t = Format.asprintf "%a" pp t
