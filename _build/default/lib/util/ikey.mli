(** Index keys.

    An index entry is the pair [<key value, RID>] (paper §1.1). The key
    value is the concatenation of the indexed columns' values; entries are
    ordered by key value, then RID, ascending. A *nonunique* index may hold
    many entries with equal key value (distinguished by RID); a *unique*
    index admits at most one non-pseudo-deleted entry per key value. *)

type t = { kv : string; rid : Rid.t }

val make : string -> Rid.t -> t

val compare : t -> t -> int
(** Full order: key value, then RID. Duplicate rejection in nonunique
    indexes matches on this full order (paper §2.2.3: "for a nonunique
    index, the key must match completely (<key value, RID>)"). *)

val compare_kv : t -> t -> int
(** Key-value order only — what unique-violation detection compares. *)

val equal : t -> t -> bool
val encoded_size : t -> int
(** Bytes this entry charges against a page's free space. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
