(** Small statistics toolkit for the benchmark harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : float list -> summary
(** Summary of a non-empty sample list. Raises [Invalid_argument] on []. *)

val percentile : float array -> float -> float
(** [percentile sorted p] with [p] in [\[0,1\]]; array must be sorted. *)

val mean : float list -> float
val stddev : float list -> float

val pp_summary : Format.formatter -> summary -> unit
