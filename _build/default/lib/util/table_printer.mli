(** Aligned ASCII tables, used by the benchmark harness to print
    paper-style result tables. *)

type t

val create : columns:string list -> t
(** [create ~columns] starts a table with the given header row. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val add_sep : t -> unit
(** Append a horizontal separator line. *)

val print : ?title:string -> t -> unit
(** Render to stdout. *)

val render : ?title:string -> t -> string
