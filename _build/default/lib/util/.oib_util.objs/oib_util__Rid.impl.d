lib/util/rid.ml: Format Int
