lib/util/record.mli: Format
