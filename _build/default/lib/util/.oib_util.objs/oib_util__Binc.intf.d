lib/util/binc.mli: Buffer
