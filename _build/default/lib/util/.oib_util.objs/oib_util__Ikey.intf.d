lib/util/ikey.mli: Format Rid
