lib/util/record.ml: Array Format List Printf String
