lib/util/ikey.ml: Format Rid String
