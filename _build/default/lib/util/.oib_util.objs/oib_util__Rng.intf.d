lib/util/rng.mli:
