lib/util/binc.ml: Buffer Char Int64 String
