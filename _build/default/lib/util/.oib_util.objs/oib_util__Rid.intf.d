lib/util/rid.mli: Format
