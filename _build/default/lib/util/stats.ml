type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty sample"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (sq /. float_of_int (List.length xs - 1))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  let rank = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  let frac = rank -. float_of_int lo in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    {
      count = Array.length a;
      mean = mean xs;
      stddev = stddev xs;
      min = a.(0);
      max = a.(Array.length a - 1);
      p50 = percentile a 0.5;
      p95 = percentile a 0.95;
      p99 = percentile a 0.99;
    }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f"
    s.count s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max
