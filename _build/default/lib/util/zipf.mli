(** Zipfian key-popularity sampler.

    Used by the workload generators to produce skewed update patterns, which
    stress the hot-page races between the index builder and transactions. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] prepares a sampler over ranks [\[0, n)] with skew
    [theta] (0.0 = uniform; 0.99 = classic YCSB hot skew). *)

val sample : t -> Rng.t -> int
(** Draw a rank; rank 0 is the most popular. *)

val n : t -> int
