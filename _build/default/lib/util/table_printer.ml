type row = Cells of string list | Sep

type t = { columns : string list; mutable rows : row list }

let create ~columns = { columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table_printer.add_row: wrong arity";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let render ?title t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.columns) in
  let measure = function
    | Sep -> ()
    | Cells cells ->
      List.iteri
        (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
        cells
  in
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let pad i s =
    let w = widths.(i) in
    let n = String.length s in
    if n >= w then s else s ^ String.make (w - n) ' '
  in
  let line ch =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) ch)) widths;
    Buffer.add_string buf "+\n"
  in
  let emit cells =
    List.iteri (fun i c -> Buffer.add_string buf ("| " ^ pad i c ^ " ")) cells;
    Buffer.add_string buf "|\n"
  in
  (match title with
  | Some s -> Buffer.add_string buf (Printf.sprintf "\n== %s ==\n" s)
  | None -> ());
  line '-';
  emit t.columns;
  line '=';
  List.iter (function Sep -> line '-' | Cells cells -> emit cells) rows;
  line '-';
  Buffer.contents buf

let print ?title t = print_string (render ?title t)
