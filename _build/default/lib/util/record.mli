(** Table records.

    A record is a tuple of column values (all rendered as strings; the
    algorithms under study are agnostic to column types). An index key value
    is the concatenation of the indexed columns, separated by a unit
    separator so that concatenation is order-preserving per column. *)

type t = { cols : string array }

val make : string array -> t
val equal : t -> t -> bool
val encoded_size : t -> int

val key_value : t -> int list -> string
(** [key_value r cols] builds the index key value for [r] over the given
    column positions. Raises [Invalid_argument] if a position is out of
    range. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
