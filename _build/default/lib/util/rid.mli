(** Record identifiers.

    A RID names a record by (data page number, slot within page). RIDs are
    totally ordered by page then slot; the SF algorithm's visibility rule
    compares a transaction's Target-RID against the index builder's
    Current-RID under this order (paper §3.1). *)

type t = { page : int; slot : int }

val make : page:int -> slot:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val minus_infinity : t
(** Sorts before every real RID; IB's scan position before it starts. *)

val infinity : t
(** Sorts after every real RID; IB sets Current-RID to infinity when it has
    finished scanning the last data page (paper §3.2.2). *)

val is_infinity : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
