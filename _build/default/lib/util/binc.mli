(** Minimal binary encoding helpers shared by the page and node codecs
    (the WAL has its own framing in [Oib_wal.Log_codec]). All integers are
    fixed-width little-endian; strings are length-prefixed. *)

type writer = Buffer.t

type reader

val writer : unit -> writer
val contents : writer -> string

val w_u8 : writer -> int -> unit
val w_i64 : writer -> int -> unit
val w_bool : writer -> bool -> unit
val w_str : writer -> string -> unit

val reader : string -> reader
val r_u8 : reader -> int
val r_i64 : reader -> int
val r_bool : reader -> bool
val r_str : reader -> string
val at_end : reader -> bool

exception Corrupt of string
