type t = { cols : string array }

let make cols = { cols }

let equal a b = a.cols = b.cols

(* per-column length prefix (2 bytes) + record header (8 bytes) *)
let encoded_size t =
  Array.fold_left (fun acc c -> acc + String.length c + 2) 8 t.cols

let key_value t cols =
  let part i =
    if i < 0 || i >= Array.length t.cols then
      invalid_arg "Record.key_value: column out of range"
    else t.cols.(i)
  in
  String.concat "\x1f" (List.map part cols)

let pp ppf t =
  Format.fprintf ppf "(%s)"
    (String.concat ", " (Array.to_list (Array.map (Printf.sprintf "%S") t.cols)))

let to_string t = Format.asprintf "%a" pp t
