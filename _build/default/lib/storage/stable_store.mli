(** Simulated disk for pages.

    Holds deep copies of page payloads as of their last write-back, keyed by
    page id. Contents survive a simulated crash; everything else (buffer
    pool, latches) does not. *)

type entry = {
  payload : Page.payload;
  lsn : Oib_wal.Lsn.t;
  copy_payload : Page.payload -> Page.payload;
}

type t

val create : unit -> t
val write : t -> int -> entry -> unit
val read : t -> int -> entry option
val mem : t -> int -> bool
val remove : t -> int -> unit
val snapshot : t -> t
(** Deep copy (an image copy of the whole disk) — the basis of media
    recovery backups. *)

val page_count : t -> int
val max_page_id : t -> int
