(** Slotted data pages.

    Records live in numbered slots; a RID is (page id, slot). Deleting a
    record frees its slot for reuse — the paper's NSF example (§2.2.3)
    depends on a new record landing at the *same RID* as a deleted one.
    Free space is tracked byte-accurately against the page capacity. *)

open Oib_util

type t

type Page.payload += Heap of t

val create : capacity:int -> t
val copy : t -> t

val encode : t -> string
(** Binary page image. *)

val decode : string -> t
(** Raises [Oib_util.Binc.Corrupt] on malformed bytes. *)

val copy_payload : Page.payload -> Page.payload
(** The stable store's deep copy — a full [encode]/[decode] round trip, so
    every write-back exercises the on-disk format. *)

val capacity : t -> int
val free_bytes : t -> int
val slot_count : t -> int
val record_count : t -> int

val fits : t -> Record.t -> bool
(** Could [r] be inserted (reusing a free slot or opening a new one)? *)

val reserve : t -> Record.t -> int
(** Pick and reserve a slot for [r] (lowest free slot first, else a new
    slot). Raises [Invalid_argument] if it does not fit. The slot is marked
    occupied-pending; complete with {!put}. *)

val unreserve : t -> int -> unit
(** Cancel a reservation (e.g. the conditional lock on the chosen RID was
    denied and the inserter moves elsewhere). *)

val put : t -> int -> Record.t -> unit
(** Store [r] at [slot] (insert into a reserved/free slot, or overwrite). *)

val get : t -> int -> Record.t option

val remove : t -> int -> unit
(** Free the slot. No-op if already free. *)

val iter : t -> (int -> Record.t -> unit) -> unit
(** Visit occupied slots in ascending slot order. *)

val records : t -> (int * Record.t) list

val of_payload : Page.payload -> t
(** Raises [Invalid_argument] on a non-heap payload. *)
