type entry = {
  payload : Page.payload;
  lsn : Oib_wal.Lsn.t;
  copy_payload : Page.payload -> Page.payload;
}

type t = { pages : (int, entry) Hashtbl.t }

let create () = { pages = Hashtbl.create 256 }

let write t id entry = Hashtbl.replace t.pages id entry

let read t id = Hashtbl.find_opt t.pages id

let mem t id = Hashtbl.mem t.pages id

let remove t id = Hashtbl.remove t.pages id

let snapshot t =
  let copy = { pages = Hashtbl.create (Hashtbl.length t.pages) } in
  Hashtbl.iter
    (fun id e ->
      Hashtbl.replace copy.pages id
        { e with payload = e.copy_payload e.payload })
    t.pages;
  copy

let page_count t = Hashtbl.length t.pages

let max_page_id t = Hashtbl.fold (fun id _ acc -> max id acc) t.pages (-1)
