type payload = ..

type t = {
  id : int;
  latch : Oib_sim.Latch.t;
  mutable lsn : Oib_wal.Lsn.t;
  mutable payload : payload;
  copy_payload : payload -> payload;
  mutable dirty : bool;
  mutable no_steal : bool;
}

let make ~id ~sched ~metrics ~payload ~copy_payload =
  {
    id;
    latch = Oib_sim.Latch.create ~name:(Printf.sprintf "page-%d" id) sched metrics;
    lsn = Oib_wal.Lsn.nil;
    payload;
    copy_payload;
    dirty = false;
    no_steal = false;
  }

let set_lsn t lsn =
  t.lsn <- lsn;
  t.dirty <- true

let mark_dirty t = t.dirty <- true
