(** Forced durable metadata store.

    Small metadata the algorithms require to be on stable storage at
    specific points — a table's page list, the index builder's checkpoint
    (highest key inserted, §2.2.3), the restartable sort's checkpoints (§5),
    an index's checkpointed image descriptor — is kept here. Writes are
    forced (immediately durable), modeling forced catalog updates; contents
    survive a crash. Stored values must be immutable snapshots. *)

type value = ..

type t

val create : unit -> t
val set : t -> string -> value -> unit
val get : t -> string -> value option
val remove : t -> string -> unit
val mem : t -> string -> bool
val keys : t -> string list

val snapshot : t -> t
(** Copy for media-recovery backups (values are immutable snapshots, so a
    shallow copy of the map suffices). *)
