(** Heap files: the data pages of one table.

    Pages are appended in allocation order; the page list is forced to the
    durable metadata store so the file can be reopened after a crash. The
    index builder scans pages in this order, remembering the last page that
    existed when the scan started (§2.3.1: records in later extensions are
    indexed directly by the transactions that insert them).

    Physical record operations here do no logging and no locking — the
    transaction layer is responsible for both, holding the page X latch
    returned by {!prepare_insert} / {!latch_rid} across modify + log +
    set-page-LSN, per Figures 1 and 2 of the paper. *)

open Oib_util

type t

val create : Buffer_pool.t -> Durable_kv.t -> table_id:int -> page_capacity:int -> t
(** Create an empty file and register it durably. *)

val open_existing : Buffer_pool.t -> Durable_kv.t -> table_id:int -> t
(** Reopen after a crash from durable metadata. Raises [Not_found] if the
    table was never created. *)

val table_id : t -> int
val page_ids : t -> int list
(** Ascending allocation order. *)

val page_count : t -> int
val last_page_id : t -> int option

val page : t -> int -> Page.t
(** Fetch by page id (must belong to this file). *)

val ensure_page_registered : t -> int -> unit
(** Recovery: register a page id found in the log (a [Heap_extend] record)
    that the (possibly restored) metadata does not know about. *)

val prepare_insert : t -> Record.t -> Page.t * int
(** Find a page with room (free-space inventory first, then first-fit,
    else extend the file), X-latch it, reserve a slot. The caller completes
    the insert with [Heap_page.put] + logging + [Page.set_lsn], then
    releases the latch — or cancels with [Heap_page.unreserve]. *)

val note_free : t -> int -> unit
(** Hint that a page regained free space (a record was deleted) — keeps
    the free-space inventory warm. Purely advisory. *)

val latch_rid : t -> Rid.t -> Oib_sim.Latch.mode -> Page.t
(** Latch the page holding [rid] in the given mode and return it. *)

val read_record : t -> Rid.t -> Record.t option
(** S-latched read of one record. *)

val scan_pages : t -> upto:int -> (Page.t -> unit) -> unit
(** Visit pages in allocation order up to page id [upto] inclusive.
    Latching and read accounting are the visitor's business (IB S-latches
    only during key extraction, and counts only pages it actually
    extracts). *)

val record_count : t -> int
(** Total records currently in the file (test/oracle helper; latch-free). *)

val all_records : t -> (Rid.t * Record.t) list
