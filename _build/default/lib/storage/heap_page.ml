open Oib_util

(* a slot is Free, Reserved (insert in progress; space charged), or a record *)
type slot = Free | Reserved of int (* reserved bytes *) | Occupied of Record.t

type t = {
  capacity : int;
  mutable slots : slot array;
  mutable nslots : int;
  mutable used_bytes : int;
}

type Page.payload += Heap of t

let slot_overhead = 4

let create ~capacity = { capacity; slots = Array.make 8 Free; nslots = 0; used_bytes = 0 }

let copy t =
  { capacity = t.capacity; slots = Array.copy t.slots; nslots = t.nslots;
    used_bytes = t.used_bytes }

(* binary page image — what actually sits in the stable store *)
let encode t =
  let w = Binc.writer () in
  Binc.w_i64 w t.capacity;
  Binc.w_i64 w t.nslots;
  Binc.w_i64 w t.used_bytes;
  for i = 0 to t.nslots - 1 do
    match t.slots.(i) with
    | Free -> Binc.w_u8 w 0
    | Reserved c ->
      Binc.w_u8 w 1;
      Binc.w_i64 w c
    | Occupied r ->
      Binc.w_u8 w 2;
      Binc.w_i64 w (Array.length r.Record.cols);
      Array.iter (Binc.w_str w) r.Record.cols
  done;
  Binc.contents w

let decode s =
  let r = Binc.reader s in
  let capacity = Binc.r_i64 r in
  let nslots = Binc.r_i64 r in
  let used_bytes = Binc.r_i64 r in
  let slots = Array.make (max 8 nslots) Free in
  for i = 0 to nslots - 1 do
    slots.(i) <-
      (match Binc.r_u8 r with
      | 0 -> Free
      | 1 -> Reserved (Binc.r_i64 r)
      | 2 ->
        let n = Binc.r_i64 r in
        if n < 0 || n > 100_000 then raise (Binc.Corrupt "record arity");
        Occupied (Record.make (Array.init n (fun _ -> Binc.r_str r)))
      | n -> raise (Binc.Corrupt (Printf.sprintf "slot tag %d" n)))
  done;
  if not (Binc.at_end r) then raise (Binc.Corrupt "trailing bytes");
  { capacity; slots; nslots; used_bytes }

(* the "copy" taken at write-back time is a full serialization round trip:
   the stable store holds what a disk would *)
let copy_payload = function
  | Heap t -> Heap (decode (encode t))
  | _ -> invalid_arg "Heap_page.copy_payload: not a heap page"

let of_payload = function
  | Heap t -> t
  | _ -> invalid_arg "Heap_page.of_payload: not a heap page"

let capacity t = t.capacity

let free_bytes t = t.capacity - t.used_bytes

let slot_count t = t.nslots

let record_count t =
  let n = ref 0 in
  for i = 0 to t.nslots - 1 do
    match t.slots.(i) with Occupied _ -> incr n | Free | Reserved _ -> ()
  done;
  !n

let cost r = Record.encoded_size r + slot_overhead

let grow t =
  if t.nslots = Array.length t.slots then begin
    let bigger = Array.make (2 * Array.length t.slots) Free in
    Array.blit t.slots 0 bigger 0 t.nslots;
    t.slots <- bigger
  end

let first_free t =
  let rec go i = if i >= t.nslots then None
    else match t.slots.(i) with Free -> Some i | _ -> go (i + 1)
  in
  go 0

let fits t r = cost r <= free_bytes t

let reserve t r =
  if not (fits t r) then invalid_arg "Heap_page.reserve: does not fit";
  let c = cost r in
  let slot =
    match first_free t with
    | Some i -> i
    | None ->
      grow t;
      let i = t.nslots in
      t.nslots <- t.nslots + 1;
      i
  in
  t.slots.(slot) <- Reserved c;
  t.used_bytes <- t.used_bytes + c;
  slot

let put t slot r =
  if slot < 0 then invalid_arg "Heap_page.put: bad slot";
  while slot >= Array.length t.slots do grow t done;
  if slot >= t.nslots then t.nslots <- slot + 1;
  let c = cost r in
  (match t.slots.(slot) with
  | Free -> t.used_bytes <- t.used_bytes + c
  | Reserved c0 -> t.used_bytes <- t.used_bytes - c0 + c
  | Occupied old -> t.used_bytes <- t.used_bytes - cost old + c);
  t.slots.(slot) <- Occupied r

let unreserve t slot =
  if slot >= 0 && slot < t.nslots then
    match t.slots.(slot) with
    | Reserved c ->
      t.used_bytes <- t.used_bytes - c;
      t.slots.(slot) <- Free
    | Free | Occupied _ -> invalid_arg "Heap_page.unreserve: not reserved"

let get t slot =
  if slot < 0 || slot >= t.nslots then None
  else match t.slots.(slot) with
    | Occupied r -> Some r
    | Free | Reserved _ -> None

let remove t slot =
  if slot >= 0 && slot < t.nslots then begin
    (match t.slots.(slot) with
    | Occupied r -> t.used_bytes <- t.used_bytes - cost r
    | Reserved c -> t.used_bytes <- t.used_bytes - c
    | Free -> ());
    t.slots.(slot) <- Free
  end

let iter t f =
  for i = 0 to t.nslots - 1 do
    match t.slots.(i) with
    | Occupied r -> f i r
    | Free | Reserved _ -> ()
  done

let records t =
  let acc = ref [] in
  iter t (fun i r -> acc := (i, r) :: !acc);
  List.rev !acc
