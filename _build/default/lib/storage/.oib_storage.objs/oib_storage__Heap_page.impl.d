lib/storage/heap_page.ml: Array Binc List Oib_util Page Printf Record
