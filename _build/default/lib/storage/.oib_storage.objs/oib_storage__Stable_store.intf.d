lib/storage/stable_store.mli: Oib_wal Page
