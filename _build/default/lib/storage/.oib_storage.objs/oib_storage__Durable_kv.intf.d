lib/storage/durable_kv.mli:
