lib/storage/heap_page.mli: Oib_util Page Record
