lib/storage/durable_kv.ml: Hashtbl
