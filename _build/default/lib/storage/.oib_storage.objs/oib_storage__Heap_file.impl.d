lib/storage/heap_file.ml: Buffer_pool Durable_kv Heap_page List Oib_sim Oib_util Oib_wal Page Printf Rid
