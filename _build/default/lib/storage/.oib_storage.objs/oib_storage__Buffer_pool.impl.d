lib/storage/buffer_pool.ml: Hashtbl List Oib_sim Oib_util Oib_wal Page Stable_store
