lib/storage/page.mli: Oib_sim Oib_wal
