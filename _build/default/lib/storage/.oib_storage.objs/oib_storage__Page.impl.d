lib/storage/page.ml: Oib_sim Oib_wal Printf
