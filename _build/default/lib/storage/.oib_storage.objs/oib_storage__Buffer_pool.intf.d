lib/storage/buffer_pool.mli: Oib_sim Oib_util Oib_wal Page Stable_store
