lib/storage/heap_file.mli: Buffer_pool Durable_kv Oib_sim Oib_util Page Record Rid
