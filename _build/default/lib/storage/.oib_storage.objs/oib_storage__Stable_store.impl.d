lib/storage/stable_store.ml: Hashtbl Oib_wal Page
