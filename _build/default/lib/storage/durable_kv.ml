type value = ..

type t = { tbl : (string, value) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let set t k v = Hashtbl.replace t.tbl k v

let get t k = Hashtbl.find_opt t.tbl k

let remove t k = Hashtbl.remove t.tbl k

let mem t k = Hashtbl.mem t.tbl k

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl []

let snapshot t = { tbl = Hashtbl.copy t.tbl }
