open Oib_util

type entry = { insert : bool; key : Ikey.t }

type t = {
  sidefile_id : int;
  mutable entries : entry array;
  mutable n : int;
}

let dummy = { insert = true; key = Ikey.make "" Rid.minus_infinity }

let create ~sidefile_id = { sidefile_id; entries = Array.make 64 dummy; n = 0 }

let sidefile_id t = t.sidefile_id

let apply_append t ~insert key =
  if t.n = Array.length t.entries then begin
    let bigger = Array.make (2 * t.n) dummy in
    Array.blit t.entries 0 bigger 0 t.n;
    t.entries <- bigger
  end;
  let pos = t.n in
  t.entries.(pos) <- { insert; key };
  t.n <- t.n + 1;
  pos

let length t = t.n

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Side_file.get";
  t.entries.(i)

let iter_from t from f =
  for i = max 0 from to t.n - 1 do
    f i t.entries.(i)
  done

let slice t ~from ~upto =
  let upto = min upto t.n and from = max 0 from in
  if from >= upto then [] else Array.to_list (Array.sub t.entries from (upto - from))

let sorted_slice t ~from ~upto =
  List.stable_sort (fun a b -> Ikey.compare a.key b.key) (slice t ~from ~upto)

let rebuild_from_log log ~sidefile_id =
  let t = create ~sidefile_id in
  List.iter
    (fun (r : Oib_wal.Log_record.t) ->
      match r.body with
      | Oib_wal.Log_record.Sidefile_append { sidefile; insert; key }
        when sidefile = sidefile_id ->
        ignore (apply_append t ~insert key)
      | Oib_wal.Log_record.Clr
          { action = Oib_wal.Log_record.Sidefile_append { sidefile; insert; key };
            _ }
        when sidefile = sidefile_id ->
        ignore (apply_append t ~insert key)
      | _ -> ())
    (Oib_wal.Log_manager.durable_records log);
  t

let pp_entry ppf e =
  Format.fprintf ppf "%s %a" (if e.insert then "ins" else "del") Ikey.pp e.key
