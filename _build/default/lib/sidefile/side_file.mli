(** The side-file (paper §3).

    An append-only sequential table of [<operation, key>] entries that
    transactions write — without locking the appended entries — while the
    SF index builder is active. Appends are logged redo-only by the
    *transaction layer* (they are never undone; rollback appends
    compensating entries instead, Figure 2), so after a crash the entire
    side-file contents are rebuilt from the durable log. The index
    builder's processing position is checkpointed separately by the
    builder.

    For improved performance IB may sort the entries by key before applying
    them, as long as the relative order of identical keys is preserved
    (§3.2.5) — {!sorted_slice} provides exactly that stable ordering. *)

open Oib_util

type entry = { insert : bool; key : Ikey.t }

type t

val create : sidefile_id:int -> t

val sidefile_id : t -> int

val apply_append : t -> insert:bool -> Ikey.t -> int
(** Record an entry (the caller has already written the redo-only log
    record). Returns the entry's position. *)

val length : t -> int
val get : t -> int -> entry
val iter_from : t -> int -> (int -> entry -> unit) -> unit
val slice : t -> from:int -> upto:int -> entry list
(** Entries in positions [\[from, upto)]. *)

val sorted_slice : t -> from:int -> upto:int -> entry list
(** The same entries sorted by key — *stably*, so multiple operations on
    the same key apply in their original order. *)

val rebuild_from_log : Oib_wal.Log_manager.t -> sidefile_id:int -> t
(** Recovery: reconstruct the side-file from the durable log's redo-only
    append records, in LSN order. *)

val pp_entry : Format.formatter -> entry -> unit
