lib/sidefile/side_file.mli: Format Ikey Oib_util Oib_wal
