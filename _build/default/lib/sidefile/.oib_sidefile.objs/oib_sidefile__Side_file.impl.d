lib/sidefile/side_file.ml: Array Format Ikey List Oib_util Oib_wal Rid
