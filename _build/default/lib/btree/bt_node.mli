(** B+-tree node payloads: pure data operations, no latching or I/O.

    Leaves hold [<key value, RID>] entries, each with the 1-bit
    pseudo-delete flag the NSF algorithm requires (paper §2.1.2). Internal
    nodes hold separator keys and child page ids. Space is accounted in
    bytes against the page capacity. Leaves carry a high key (exclusive
    upper bound) and a right-sibling pointer, which the remembered-path
    insertion fast path revalidates against. *)

open Oib_util

type leaf = {
  mutable entries : (Ikey.t * bool) array; (* sorted; true = pseudo-deleted *)
  mutable n : int;
  mutable bytes : int;
  mutable next : int; (* right sibling page id, or -1 *)
  mutable high : Ikey.t option; (* exclusive upper bound; None = +inf *)
}

type internal = {
  mutable seps : Ikey.t array; (* nc - 1 separators *)
  mutable children : int array; (* nc child page ids *)
  mutable nc : int;
  mutable ibytes : int;
}

type node = Leaf of leaf | Internal of internal

type Oib_storage.Page.payload += Node of node

val leaf_entry_cost : Ikey.t -> int
val sep_cost : Ikey.t -> int

val new_leaf : unit -> leaf
val new_internal : children:int array -> seps:Ikey.t array -> internal

val encode_node : node -> string
(** Binary node image. *)

val decode_node : string -> node
(** Raises [Oib_util.Binc.Corrupt] on malformed bytes. *)

val copy_payload : Oib_storage.Page.payload -> Oib_storage.Page.payload
(** The stable store's deep copy — an [encode_node]/[decode_node] round
    trip, so every image checkpoint exercises the on-disk format. *)

val of_payload : Oib_storage.Page.payload -> node
val leaf_of_payload : Oib_storage.Page.payload -> leaf

(* --- leaf operations --- *)

val leaf_find : leaf -> Ikey.t -> int option
(** Position of the exact entry, if present (any flag state). *)

val leaf_lower_bound : leaf -> Ikey.t -> int
(** Index of the first entry >= key (= [n] if none). *)

val leaf_get : leaf -> int -> Ikey.t * bool

val leaf_fits : leaf -> capacity:int -> Ikey.t -> bool

val leaf_insert : leaf -> Ikey.t -> pseudo:bool -> unit
(** Insert at sorted position. The entry must not already exist and must
    fit. *)

val leaf_append : leaf -> Ikey.t -> pseudo:bool -> unit
(** Append a key strictly greater than the current last entry (bulk-load
    fast path; no search, no shifting). *)

val leaf_set_flag : leaf -> int -> bool -> unit
val leaf_remove_at : leaf -> int -> unit

val separator : before:Ikey.t -> first:Ikey.t -> Ikey.t
(** Shortest key that still separates [before] (last entry going left)
    from [first] (first entry going right): prefix truncation for higher
    internal-node fanout. *)

val leaf_split_half : leaf -> leaf * Ikey.t
(** Standard split: move the upper half to a fresh leaf; returns (new right
    leaf, separator = right's first key). Sibling/high links are fixed up
    by the caller, which owns the page ids. *)

val leaf_split_above : leaf -> Ikey.t -> leaf * Ikey.t
(** NSF's specialized IB split (§2.3.1): move only the entries strictly
    greater than the given key (inserted earlier by transactions) to the
    new leaf, mimicking a bottom-up build. The caller must ensure at least
    one such entry exists. *)

(* --- internal operations --- *)

val child_for : internal -> Ikey.t -> int
(** Index of the child to descend into for this key. *)

val internal_fits : internal -> capacity:int -> Ikey.t -> bool

val internal_insert_sep : internal -> at:int -> Ikey.t -> right:int -> unit
(** After child [at] split with separator [sep] and new right page id,
    record the new child. *)

val internal_append : internal -> Ikey.t -> child:int -> unit
(** Append a rightmost separator + child (bulk-load growth; the paper's
    split "in which no keys are moved"). *)

val internal_split_half : internal -> internal * Ikey.t
(** Split an internal node; the middle separator is pushed up. *)

val internal_truncate_after : internal -> int -> int list
(** Drop all children to the right of index [i]; returns dropped page
    ids. *)
