open Oib_util

type leaf = {
  mutable entries : (Ikey.t * bool) array;
  mutable n : int;
  mutable bytes : int;
  mutable next : int;
  mutable high : Ikey.t option;
}

type internal = {
  mutable seps : Ikey.t array;
  mutable children : int array;
  mutable nc : int;
  mutable ibytes : int;
}

type node = Leaf of leaf | Internal of internal

type Oib_storage.Page.payload += Node of node

let dummy_key = Ikey.make "" Rid.minus_infinity

let leaf_entry_cost k = Ikey.encoded_size k

(* separator + child pointer + directory slot *)
let sep_cost k = Ikey.encoded_size k + 12

let new_leaf () =
  { entries = Array.make 8 (dummy_key, false); n = 0; bytes = 0; next = -1;
    high = None }

let new_internal ~children ~seps =
  let ibytes = Array.fold_left (fun acc s -> acc + sep_cost s) 0 seps in
  {
    seps = Array.copy seps;
    children = Array.copy children;
    nc = Array.length children;
    ibytes;
  }

(* binary node image — what actually sits in the stable store *)
let w_key w (k : Ikey.t) =
  Binc.w_str w k.kv;
  Binc.w_i64 w k.rid.Rid.page;
  Binc.w_i64 w k.rid.Rid.slot

let r_key r =
  let kv = Binc.r_str r in
  let page = Binc.r_i64 r in
  let slot = Binc.r_i64 r in
  Ikey.make kv (Rid.make ~page ~slot)

let encode_node node =
  let w = Binc.writer () in
  (match node with
  | Leaf l ->
    Binc.w_u8 w 0;
    Binc.w_i64 w l.n;
    Binc.w_i64 w l.bytes;
    Binc.w_i64 w l.next;
    (match l.high with
    | None -> Binc.w_bool w false
    | Some h ->
      Binc.w_bool w true;
      w_key w h);
    for i = 0 to l.n - 1 do
      let k, pseudo = l.entries.(i) in
      w_key w k;
      Binc.w_bool w pseudo
    done
  | Internal n ->
    Binc.w_u8 w 1;
    Binc.w_i64 w n.nc;
    Binc.w_i64 w n.ibytes;
    for i = 0 to n.nc - 1 do
      Binc.w_i64 w n.children.(i)
    done;
    for i = 0 to n.nc - 2 do
      w_key w n.seps.(i)
    done);
  Binc.contents w

let decode_node s =
  let r = Binc.reader s in
  let node =
    match Binc.r_u8 r with
    | 0 ->
      let n = Binc.r_i64 r in
      if n < 0 || n > 1_000_000 then raise (Binc.Corrupt "leaf arity");
      let bytes = Binc.r_i64 r in
      let next = Binc.r_i64 r in
      let high = if Binc.r_bool r then Some (r_key r) else None in
      let entries = Array.make (max 8 n) (dummy_key, false) in
      for i = 0 to n - 1 do
        let k = r_key r in
        let pseudo = Binc.r_bool r in
        entries.(i) <- (k, pseudo)
      done;
      Leaf { entries; n; bytes; next; high }
    | 1 ->
      let nc = Binc.r_i64 r in
      if nc < 1 || nc > 1_000_000 then raise (Binc.Corrupt "internal arity");
      let ibytes = Binc.r_i64 r in
      let children = Array.make nc (-1) in
      for i = 0 to nc - 1 do
        children.(i) <- Binc.r_i64 r
      done;
      let seps = Array.make (max 1 (nc - 1)) dummy_key in
      for i = 0 to nc - 2 do
        seps.(i) <- r_key r
      done;
      Internal { seps; children; nc; ibytes }
    | t -> raise (Binc.Corrupt (Printf.sprintf "node tag %d" t))
  in
  if not (Binc.at_end r) then raise (Binc.Corrupt "trailing bytes");
  node

(* the stable store's deep copy is a serialization round trip: index pages
   hit "disk" in their binary format *)
let copy_payload = function
  | Node n -> Node (decode_node (encode_node n))
  | _ -> invalid_arg "Bt_node.copy_payload: not a btree node"

let of_payload = function
  | Node n -> n
  | _ -> invalid_arg "Bt_node.of_payload: not a btree node"

let leaf_of_payload p =
  match of_payload p with
  | Leaf l -> l
  | Internal _ -> invalid_arg "Bt_node.leaf_of_payload: internal node"

(* --- leaf operations --- *)

let leaf_lower_bound l key =
  (* first index with entry >= key *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Ikey.compare (fst l.entries.(mid)) key < 0 then go (mid + 1) hi
      else go lo mid
  in
  go 0 l.n

let leaf_find l key =
  let i = leaf_lower_bound l key in
  if i < l.n && Ikey.equal (fst l.entries.(i)) key then Some i else None

let leaf_get l i =
  if i < 0 || i >= l.n then invalid_arg "Bt_node.leaf_get";
  l.entries.(i)

let leaf_grow l need =
  if l.n + need > Array.length l.entries then begin
    let cap = max (2 * Array.length l.entries) (l.n + need) in
    let bigger = Array.make cap (dummy_key, false) in
    Array.blit l.entries 0 bigger 0 l.n;
    l.entries <- bigger
  end

let leaf_fits l ~capacity key = l.bytes + leaf_entry_cost key <= capacity

let leaf_insert l key ~pseudo =
  let i = leaf_lower_bound l key in
  assert (not (i < l.n && Ikey.equal (fst l.entries.(i)) key));
  leaf_grow l 1;
  Array.blit l.entries i l.entries (i + 1) (l.n - i);
  l.entries.(i) <- (key, pseudo);
  l.n <- l.n + 1;
  l.bytes <- l.bytes + leaf_entry_cost key

let leaf_append l key ~pseudo =
  assert (l.n = 0 || Ikey.compare (fst l.entries.(l.n - 1)) key < 0);
  leaf_grow l 1;
  l.entries.(l.n) <- (key, pseudo);
  l.n <- l.n + 1;
  l.bytes <- l.bytes + leaf_entry_cost key

let leaf_set_flag l i pseudo =
  let key, _ = leaf_get l i in
  l.entries.(i) <- (key, pseudo)

let leaf_remove_at l i =
  let key, _ = leaf_get l i in
  Array.blit l.entries (i + 1) l.entries i (l.n - i - 1);
  l.n <- l.n - 1;
  l.bytes <- l.bytes - leaf_entry_cost key

(* Shortest separator s with [before] < s <= [first]: the shortest prefix
   of [first]'s key value that still sorts above [before]'s (classic prefix
   truncation — smaller separators mean higher internal fanout). When the
   two key values are equal (duplicates split across leaves) only the full
   entry discriminates. *)
let separator ~before ~first =
  let bkv = before.Ikey.kv and fkv = first.Ikey.kv in
  if String.compare bkv fkv >= 0 then first
  else begin
    let len = ref 1 in
    while
      !len <= String.length fkv
      && String.compare (String.sub fkv 0 !len) bkv <= 0
    do
      incr len
    done;
    if !len > String.length fkv then first
    else Ikey.make (String.sub fkv 0 !len) Rid.minus_infinity
  end

let take_tail l from =
  let moved = Array.sub l.entries from (l.n - from) in
  let right = new_leaf () in
  right.entries <- moved;
  right.n <- Array.length moved;
  right.bytes <-
    Array.fold_left (fun acc (k, _) -> acc + leaf_entry_cost k) 0 moved;
  right.next <- l.next;
  right.high <- l.high;
  l.n <- from;
  l.bytes <- l.bytes - right.bytes;
  let sep =
    if from = 0 then fst right.entries.(0)
    else
      separator ~before:(fst l.entries.(from - 1)) ~first:(fst right.entries.(0))
  in
  l.high <- Some sep;
  (right, sep)

let leaf_split_half l =
  assert (l.n >= 2);
  take_tail l (l.n / 2)

let leaf_split_above l key =
  (* first entry > key: lower_bound gives >= key; the key itself is not in
     the leaf (caller is about to insert it), so >= is >. *)
  let i = leaf_lower_bound l key in
  assert (i < l.n);
  take_tail l i

(* --- internal operations --- *)

let child_for n key =
  (* smallest i with key < seps.(i); else last child *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Ikey.compare key n.seps.(mid) < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (n.nc - 1)

let internal_fits n ~capacity key = n.ibytes + sep_cost key <= capacity

let internal_grow n need =
  if n.nc + need > Array.length n.children then begin
    let cap = max (2 * Array.length n.children) (n.nc + need) in
    let children = Array.make cap (-1) in
    Array.blit n.children 0 children 0 n.nc;
    n.children <- children;
    let seps = Array.make cap dummy_key in
    Array.blit n.seps 0 seps 0 (max 0 (n.nc - 1));
    n.seps <- seps
  end

let internal_insert_sep n ~at sep ~right =
  internal_grow n 1;
  (* shift children after [at], and seps from [at] *)
  Array.blit n.children (at + 1) n.children (at + 2) (n.nc - at - 1);
  Array.blit n.seps at n.seps (at + 1) (n.nc - 1 - at);
  n.children.(at + 1) <- right;
  n.seps.(at) <- sep;
  n.nc <- n.nc + 1;
  n.ibytes <- n.ibytes + sep_cost sep

let internal_append n sep ~child =
  internal_grow n 1;
  n.seps.(n.nc - 1) <- sep;
  n.children.(n.nc) <- child;
  n.nc <- n.nc + 1;
  n.ibytes <- n.ibytes + sep_cost sep

let internal_split_half n =
  assert (n.nc >= 4);
  let mid = n.nc / 2 in
  (* children[mid..] go right; seps[mid] is pushed up *)
  let push_up = n.seps.(mid - 1) in
  let right_children = Array.sub n.children mid (n.nc - mid) in
  let right_seps = Array.sub n.seps mid (n.nc - 1 - mid) in
  let right = new_internal ~children:right_children ~seps:right_seps in
  n.nc <- mid;
  n.ibytes <-
    Array.fold_left
      (fun acc i -> acc + sep_cost n.seps.(i))
      0
      (Array.init (max 0 (n.nc - 1)) Fun.id);
  (right, push_up)

let internal_truncate_after n i =
  assert (i >= 0 && i < n.nc);
  let dropped = ref [] in
  for j = n.nc - 1 downto i + 1 do
    dropped := n.children.(j) :: !dropped
  done;
  n.nc <- i + 1;
  n.ibytes <-
    Array.fold_left
      (fun acc j -> acc + sep_cost n.seps.(j))
      0
      (Array.init (max 0 (n.nc - 1)) Fun.id);
  !dropped
