open Oib_util
open Bt_node

let collect_entries t =
  let acc = ref [] in
  Btree.iter_entries t (fun k ~pseudo -> acc := (k, pseudo) :: !acc);
  List.rev !acc

let entries_sorted t =
  let rec sorted = function
    | [] | [ _ ] -> true
    | (a, _) :: ((b, _) :: _ as rest) ->
      Ikey.compare a b < 0 && sorted rest
  in
  sorted (collect_entries t)

let check t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (* leaf chain: ordering, high keys, byte accounting *)
  let prev_last = ref None in
  let leaf_chain = ref [] in
  Btree.iter_leaves t (fun pid l ->
      leaf_chain := pid :: !leaf_chain;
      let bytes = ref 0 in
      for i = 0 to l.n - 1 do
        let k, _ = l.entries.(i) in
        bytes := !bytes + leaf_entry_cost k;
        if i > 0 && Ikey.compare (fst l.entries.(i - 1)) k >= 0 then
          err "leaf %d: entries out of order at %d" pid i;
        (match l.high with
        | Some h when Ikey.compare k h >= 0 ->
          err "leaf %d: entry %d >= high key" pid i
        | _ -> ());
        match !prev_last with
        | Some pk when i = 0 && Ikey.compare pk k >= 0 ->
          err "leaf %d: first entry <= previous leaf's last" pid
        | _ -> ()
      done;
      if !bytes <> l.bytes then
        err "leaf %d: byte accounting %d <> %d" pid l.bytes !bytes;
      if l.bytes > Btree.page_capacity t then
        err "leaf %d: overflows capacity" pid;
      if l.n > 0 then prev_last := Some (fst l.entries.(l.n - 1)));
  (* structure: separators bound subtrees; reachable leaves = next-chain *)
  let reachable_leaves = ref [] in
  let rec walk pid lo hi =
    match Btree.node_at t pid with
    | Leaf l ->
      reachable_leaves := pid :: !reachable_leaves;
      for i = 0 to l.n - 1 do
        let k = fst l.entries.(i) in
        (match lo with
        | Some b when Ikey.compare k b < 0 ->
          err "leaf %d: entry below subtree lower bound" pid
        | _ -> ());
        match hi with
        | Some b when Ikey.compare k b >= 0 ->
          err "leaf %d: entry above subtree upper bound" pid
        | _ -> ()
      done
    | Internal n ->
      if n.nc < 1 then err "internal %d: no children" pid;
      for i = 0 to n.nc - 2 do
        if i > 0 && Ikey.compare n.seps.(i - 1) n.seps.(i) >= 0 then
          err "internal %d: separators out of order" pid
      done;
      if n.ibytes > Btree.page_capacity t then
        err "internal %d: overflows capacity" pid;
      for i = 0 to n.nc - 1 do
        let lo' = if i = 0 then lo else Some n.seps.(i - 1) in
        let hi' = if i = n.nc - 1 then hi else Some n.seps.(i) in
        walk n.children.(i) lo' hi'
      done
  in
  walk (Btree.root_page_id t) None None;
  let chain = List.rev !leaf_chain in
  if List.length (List.sort_uniq compare chain) <> List.length chain then
    err "leaf chain contains duplicate pages";
  if List.sort compare chain <> List.sort compare !reachable_leaves then
    err "leaf chain disagrees with tree reachability";
  List.rev !errs

let clustering t =
  let pids = ref [] in
  Btree.iter_leaves t (fun pid _ -> pids := pid :: !pids);
  let pids = List.rev !pids in
  match pids with
  | [] | [ _ ] -> 1.0
  | _ ->
    let rec count acc n = function
      | a :: (b :: _ as rest) ->
        count (if b > a then acc + 1 else acc) (n + 1) rest
      | _ -> (acc, n)
    in
    let good, total = count 0 0 pids in
    float_of_int good /. float_of_int total

let avg_leaf_fill t =
  let total = ref 0.0 in
  let n = ref 0 in
  Btree.iter_leaves t (fun _ l ->
      total := !total +. (float_of_int l.bytes /. float_of_int (Btree.page_capacity t));
      incr n);
  if !n = 0 then 0.0 else !total /. float_of_int !n
