lib/btree/bt_node.ml: Array Binc Fun Ikey Oib_storage Oib_util Printf Rid String
