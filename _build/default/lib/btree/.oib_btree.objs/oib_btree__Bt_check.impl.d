lib/btree/bt_check.ml: Array Bt_node Btree Ikey List Oib_util Printf
