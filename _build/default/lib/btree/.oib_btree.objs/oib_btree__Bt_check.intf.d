lib/btree/bt_check.mli: Btree Ikey Oib_util
