lib/btree/bt_node.mli: Ikey Oib_storage Oib_util
