lib/btree/btree.mli: Bt_node Buffer_pool Durable_kv Ikey Oib_storage Oib_util Oib_wal
