lib/btree/btree.ml: Array Bt_node Buffer_pool Durable_kv Ikey List Oib_sim Oib_storage Oib_util Oib_wal Page Printf Rid String
