(** Structural invariant checker and clustering metric.

    Used by tests after every scenario, and by the E4 benchmark to quantify
    the paper's §4 claim that SF's bottom-up build produces a better
    clustered index than NSF under concurrent updates. *)

open Oib_util

val check : Btree.t -> string list
(** Violations of the B+-tree invariants; empty means healthy. Verifies:
    entry ordering within and across leaves, separator bounds, the leaf
    next-chain against the tree order, high keys, byte accounting, and
    reachability. *)

val entries_sorted : Btree.t -> bool

val clustering : Btree.t -> float
(** Fraction of adjacent leaf pairs (in key order) whose page ids are
    increasing — i.e. a full key-order leaf scan touches pages in ascending
    physical order, the property that makes physical-sequence prefetch
    effective (§2.3.1, §4). A quiesced bottom-up build scores 1.0; trees
    with a single leaf score 1.0. *)

val avg_leaf_fill : Btree.t -> float
(** Mean used-byte fraction of leaf pages. *)

val collect_entries : Btree.t -> (Ikey.t * bool) list
(** All entries left-to-right (key, pseudo-deleted flag). *)
