(** Transaction lock manager.

    Data-only locking in the sense of ARIES/IM (paper §6.2): the lock
    protecting an index key is the lock on the record the key came from, so
    there are only record locks and table locks. Table intention modes let
    the index builder's short quiesce (an S table lock, NSF §2.2.1) block
    updaters, who hold IX on the table.

    Requests can be *unconditional* (block until granted; a waits-for cycle
    aborts the requester — the deadlock backstop), *conditional* (fail
    instead of blocking, used e.g. by the pseudo-delete garbage collector,
    §2.2.4), and of *instant* duration (wait until grantable but do not
    hold, used for commit checks on keys, §2.2.3). *)

open Oib_util

type mode = S | X | IS | IX

type name = Record of Rid.t | Table of int

type t

type outcome = Granted | Deadlock

val create : Oib_sim.Sched.t -> Oib_sim.Metrics.t -> t

val lock : t -> txn:int -> name -> mode -> outcome
(** Unconditional manual-duration request. Re-entrant: a holder asking for
    a weaker-or-equal mode is granted immediately; S -> X upgrades are
    supported. [Deadlock] means the request would close a waits-for cycle;
    the caller must abort the transaction. *)

val try_lock : t -> txn:int -> name -> mode -> bool
(** Conditional: grant now or fail, never blocks. *)

val instant_lock : t -> txn:int -> name -> mode -> outcome
(** Wait until the lock is grantable, then do not retain it. *)

val try_instant_lock : t -> txn:int -> name -> mode -> bool

val unlock_all : t -> txn:int -> unit
(** Release every lock of [txn] (commit / abort time). *)

val holds : t -> txn:int -> name -> mode -> bool
(** Does [txn] hold [name] in a mode at least as strong as [mode]? *)

val holders : t -> name -> (int * mode) list

val waiter_count : t -> name -> int
(** Number of transactions queued on [name]. *)

val pp_mode : Format.formatter -> mode -> unit
val pp_name : Format.formatter -> name -> unit
