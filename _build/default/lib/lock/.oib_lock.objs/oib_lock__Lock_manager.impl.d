lib/lock/lock_manager.ml: Format Hashtbl List Oib_sim Oib_util Option Rid
