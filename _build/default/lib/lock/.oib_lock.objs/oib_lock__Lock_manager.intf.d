lib/lock/lock_manager.mli: Format Oib_sim Oib_util Rid
