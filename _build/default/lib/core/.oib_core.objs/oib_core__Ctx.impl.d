lib/core/ctx.ml: Catalog Oib_lock Oib_sim Oib_sort Oib_storage Oib_txn Oib_wal
