lib/core/engine.mli: Ctx Oib_txn
