lib/core/ib.mli: Ctx
