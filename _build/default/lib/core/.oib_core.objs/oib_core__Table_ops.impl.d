lib/core/table_ops.ml: Buffer_pool Catalog Ctx Heap_file Heap_page Ikey List Oib_btree Oib_lock Oib_sidefile Oib_sim Oib_storage Oib_txn Oib_util Oib_wal Page Rid
