lib/core/table_ops.mli: Ctx Oib_txn Oib_util Oib_wal Record Rid
