lib/core/catalog.ml: Buffer_pool Durable_kv Hashtbl Heap_file Ikey List Oib_btree Oib_sidefile Oib_storage Oib_util Oib_wal Printf Record Rid String
