lib/core/catalog.mli: Ikey Oib_btree Oib_sidefile Oib_storage Oib_util Record Rid
