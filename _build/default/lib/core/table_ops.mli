(** Record operations by transactions, with index maintenance — the
    implementation of Figure 1 (forward processing) and Figure 2 (rollback)
    plus the NSF key insert/delete protocol of §2.2.3.

    Every operation: locks the record (X), latches its data page, applies
    the change, logs it with the visible-index count and the side-filed
    index list, stamps the page_LSN, unlatches — then appends side-file
    entries for SF-visible indexes and maintains the other visible indexes
    directly:

    - a direct key insert that finds the full key already Present (the
      index builder won it, §2.1.1) writes an *undo-only* record;
    - a direct key insert that finds the key Pseudo_deleted reactivates it
      (the paper's T2 example);
    - a direct key delete pseudo-deletes, and when the key is not found it
      inserts a pseudo-deleted tombstone (§2.1.2);
    - unique indexes get the committed-duplicate check via instant locks on
      the rival key's record (data-only locking, §6.2).

    The undo executor reverses heap changes, and compensates index state
    per the visibility rules: operations routed to a side-file at forward
    time produce inverse side-file entries (or direct logical undo if that
    build has since completed); operations from before an index became
    visible produce the Figure-2 transition compensation. *)

open Oib_util
module LR := Oib_wal.Log_record

exception Unique_violation of { index : int; kv : string }
(** The transaction must roll back (or the caller may treat it as a failed
    statement); raised before any index damage is done. *)

exception Txn_deadlock
(** Lock-manager victim: the caller must roll the transaction back. *)

val insert : Ctx.t -> Oib_txn.Txn_manager.txn -> table:int -> Record.t -> Rid.t

val delete : Ctx.t -> Oib_txn.Txn_manager.txn -> table:int -> Rid.t -> unit
(** Raises [Not_found] if no record lives at the RID. *)

val update :
  Ctx.t -> Oib_txn.Txn_manager.txn -> table:int -> Rid.t -> Record.t -> unit

val read : Ctx.t -> Oib_txn.Txn_manager.txn -> table:int -> Rid.t -> Record.t option
(** S-locks the record. *)

val index_lookup :
  Ctx.t -> Oib_txn.Txn_manager.txn -> index:int -> string ->
  (Rid.t * Record.t) list
(** Equality lookup through a [Ready] index (S-locks qualifying records;
    pseudo-deleted entries are invisible). During an NSF build, lookups
    below the builder's gradual-availability bound are also served (paper
    footnote 3); otherwise raises [Invalid_argument] while the build is in
    progress. *)

val range_lookup :
  Ctx.t -> Oib_txn.Txn_manager.txn -> index:int -> ?lo:string -> ?hi:string ->
  unit -> (Rid.t * Record.t) list
(** Range lookup [lo <= key <= hi] through a [Ready] index, in key order
    (S-locks qualifying records). *)

val rollback : Ctx.t -> Oib_txn.Txn_manager.txn -> unit
(** Roll back with this layer's undo executor. *)

val undo_executor :
  Ctx.t -> Oib_txn.Txn_manager.txn -> LR.body ->
  clr:(LR.body -> Oib_wal.Lsn.t) -> unit
(** Exposed for restart recovery (losers are rolled back with the same
    logic as a live abort). *)
