lib/sort/sort_phase.ml: Array Durable_kv Ikey List Oib_storage Oib_util Printf Rid Run_store String
