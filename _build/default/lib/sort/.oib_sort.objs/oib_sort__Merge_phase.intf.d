lib/sort/merge_phase.mli: Durable_kv Oib_storage Run_store
