lib/sort/run_store.mli: Ikey Oib_util
