lib/sort/run_store.ml: Array Hashtbl Ikey List Oib_util Rid
