lib/sort/sort_phase.mli: Durable_kv Ikey Oib_storage Oib_util Run_store
