lib/sort/loser_tree.ml: Array Ikey List Oib_util
