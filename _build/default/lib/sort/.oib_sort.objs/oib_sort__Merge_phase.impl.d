lib/sort/merge_phase.ml: Array Durable_kv List Loser_tree Oib_storage Printf Run_store
