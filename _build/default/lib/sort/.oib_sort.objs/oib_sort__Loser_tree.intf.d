lib/sort/loser_tree.mli: Ikey Oib_util
