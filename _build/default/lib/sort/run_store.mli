(** Durable storage for sorted runs ("sorted streams", paper §5).

    A run is an append-only sequence of keys. Appends are volatile until
    [force]d — exactly the property the sort-phase and merge-phase
    checkpoints rely on ("we force to disk all those keys"). A simulated
    crash truncates every run to its forced prefix; runs themselves are
    found again by name from checkpoint metadata. *)

open Oib_util

type t
type run

val create : unit -> t

val crash : t -> t
(** Survivor store: every run truncated to its forced length. *)

val create_run : t -> name:string -> run
(** Fresh empty run. Raises [Invalid_argument] if the name exists. *)

val find_run : t -> string -> run
(** Raises [Not_found]. *)

val delete_run : t -> string -> unit
val run_names : t -> string list

val name : run -> string
val append : run -> Ikey.t -> unit
val force : run -> unit
(** Make the whole current contents durable. *)

val truncate : run -> int -> unit
(** Cut the run to [len] keys (restart repositioning). *)

val length : run -> int
val forced_length : run -> int
val get : run -> int -> Ikey.t
val iter_from : run -> int -> (Ikey.t -> unit) -> unit
val to_list : run -> Ikey.t list

val is_sorted : run -> bool
(** Test helper: keys strictly ascending. *)
