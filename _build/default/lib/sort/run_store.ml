open Oib_util

type run = {
  name : string;
  mutable keys : Ikey.t array;
  mutable len : int;
  mutable forced : int;
}

type t = { runs : (string, run) Hashtbl.t }

let create () = { runs = Hashtbl.create 16 }

let crash t =
  let survivor = { runs = Hashtbl.create 16 } in
  Hashtbl.iter
    (fun name r ->
      Hashtbl.replace survivor.runs name
        {
          name;
          keys = Array.sub r.keys 0 r.forced;
          len = r.forced;
          forced = r.forced;
        })
    t.runs;
  survivor

let create_run t ~name =
  if Hashtbl.mem t.runs name then
    invalid_arg "Run_store.create_run: run exists";
  let r = { name; keys = [||]; len = 0; forced = 0 } in
  Hashtbl.replace t.runs name r;
  r

let find_run t name = Hashtbl.find t.runs name

let delete_run t name = Hashtbl.remove t.runs name

let run_names t = Hashtbl.fold (fun n _ acc -> n :: acc) t.runs []

let name r = r.name

let dummy = Ikey.make "" Rid.minus_infinity

let append r k =
  if r.len = Array.length r.keys then begin
    let cap = max 16 (2 * Array.length r.keys) in
    let bigger = Array.make cap dummy in
    Array.blit r.keys 0 bigger 0 r.len;
    r.keys <- bigger
  end;
  r.keys.(r.len) <- k;
  r.len <- r.len + 1

let force r = r.forced <- r.len

let truncate r len =
  if len < 0 || len > r.len then invalid_arg "Run_store.truncate";
  r.len <- len;
  if r.forced > len then r.forced <- len

let length r = r.len

let forced_length r = r.forced

let get r i =
  if i < 0 || i >= r.len then invalid_arg "Run_store.get";
  r.keys.(i)

let iter_from r pos f =
  for i = max 0 pos to r.len - 1 do
    f r.keys.(i)
  done

let to_list r = List.init r.len (fun i -> r.keys.(i))

let is_sorted r =
  let ok = ref true in
  for i = 1 to r.len - 1 do
    if Ikey.compare r.keys.(i - 1) r.keys.(i) > 0 then ok := false
  done;
  !ok
