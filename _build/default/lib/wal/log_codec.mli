(** Binary serialization of log records.

    The durable log is a byte stream; records are length-prefixed frames.
    [decode (encode r) = r] is property-tested. A truncated final frame
    (torn write at crash) is detected and dropped by {!decode_stream}. *)

val encode : Log_record.t -> string
(** Framed encoding (length prefix included). *)

val decode : string -> pos:int -> (Log_record.t * int) option
(** [decode buf ~pos] decodes the frame starting at [pos]; returns the
    record and the position just past it, or [None] if the frame is
    incomplete or [pos] is at the end. Raises [Failure] on corrupt bytes. *)

val decode_stream : string -> Log_record.t list
(** All complete frames, in order; an incomplete tail is ignored. *)
