type t = int

let nil = 0
let of_int i = i
let to_int t = t
let next t = t + 1
let compare = Int.compare
let equal = Int.equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let max a b = Stdlib.max a b
let pp ppf t = Format.fprintf ppf "lsn:%d" t
