(** Log sequence numbers.

    LSNs totally order log records. Every page carries the LSN of the last
    record that changed it (page_LSN), which drives the write-ahead rule and
    redo's "has this update already been applied?" test. *)

type t

val nil : t
(** Sorts before every real LSN; the page_LSN of a never-updated page. *)

val of_int : int -> t
val to_int : t -> int
val next : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val max : t -> t -> t
val pp : Format.formatter -> t -> unit
