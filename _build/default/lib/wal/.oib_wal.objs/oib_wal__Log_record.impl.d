lib/wal/log_record.ml: Format Ikey List Lsn Oib_util Record Rid String
