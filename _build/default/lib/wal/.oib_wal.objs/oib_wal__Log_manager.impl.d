lib/wal/log_manager.ml: Buffer Hashtbl List Log_codec Log_record Lsn Oib_sim String
