lib/wal/log_codec.ml: Array Buffer Char Ikey Int64 List Log_record Lsn Oib_util Printf Record Rid String
