lib/wal/log_record.mli: Format Ikey Lsn Oib_util Record Rid
