lib/wal/log_codec.mli: Log_record
