lib/workload/driver.ml: Array Catalog Ctx Engine Hashtbl List Oib_core Oib_sim Oib_storage Oib_util Printf Record Rid Rng Table_ops Zipf
