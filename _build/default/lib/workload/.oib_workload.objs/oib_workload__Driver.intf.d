lib/workload/driver.mli: Ctx Oib_core Oib_util Rid Rng
