open Oib_util
open Oib_core
module Sched = Oib_sim.Sched

type config = {
  seed : int;
  txns_per_worker : int;
  workers : int;
  ops_per_txn : int;
  insert_w : int;
  delete_w : int;
  update_w : int;
  abort_pct : float;
  theta : float;
  key_space : int;
}

let default =
  {
    seed = 1;
    txns_per_worker = 50;
    workers = 4;
    ops_per_txn = 3;
    insert_w = 4;
    delete_w = 3;
    update_w = 3;
    abort_pct = 0.15;
    theta = 0.6;
    key_space = 500;
  }

type stats = {
  committed : int;
  aborted : int;
  deadlocks : int;
  unique_violations : int;
}

let value_of_rank rank = Printf.sprintf "v%06d" rank

let value_for cfg rng =
  let z = Zipf.create ~n:cfg.key_space ~theta:cfg.theta in
  value_of_rank (Zipf.sample z rng)

let populate ctx ~table ~rows ~seed =
  let rng = Rng.create seed in
  let rids = Array.make rows Rid.minus_infinity in
  let batch = 64 in
  let i = ref 0 in
  while !i < rows do
    let upto = min rows (!i + batch) in
    (match
       Engine.run_txn ctx (fun txn ->
           for j = !i to upto - 1 do
             let record =
               Record.make
                 [|
                   value_of_rank (Rng.int rng 1_000_000);
                   Printf.sprintf "payload-%d" j;
                 |]
             in
             rids.(j) <- Table_ops.insert ctx txn ~table record
           done)
     with
    | Ok () -> ()
    | Error _ -> failwith "Driver.populate: unexpected abort");
    i := upto
  done;
  rids

(* deliberate rollback marker *)
exception Voluntary_abort

let spawn_workers ctx cfg ~table =
  let stats =
    ref { committed = 0; aborted = 0; deadlocks = 0; unique_violations = 0 }
  in
  (* shared registry of committed records *)
  let live : (Rid.t, unit) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (rid, _) -> Hashtbl.replace live rid ())
    (Oib_storage.Heap_file.all_records
       (Catalog.table ctx.Ctx.catalog table).heap);
  let zipf = Zipf.create ~n:cfg.key_space ~theta:cfg.theta in
  let pick_live rng =
    let n = Hashtbl.length live in
    if n = 0 then None
    else begin
      let target = Rng.int rng n in
      let found = ref None in
      let i = ref 0 in
      (try
         Hashtbl.iter
           (fun rid () ->
             if !i = target then begin
               found := Some rid;
               raise Exit
             end;
             incr i)
           live
       with Exit -> ());
      !found
    end
  in
  let worker w =
    let rng = Rng.create (cfg.seed + (1000 * w)) in
    for _ = 1 to cfg.txns_per_worker do
      (* intents applied to the registry only if the txn commits *)
      let adds = ref [] and removes = ref [] in
      (match
        Engine.run_txn ctx (fun txn ->
            for _ = 1 to cfg.ops_per_txn do
              let total = cfg.insert_w + cfg.delete_w + cfg.update_w in
              let roll = Rng.int rng (max 1 total) in
              if roll < cfg.insert_w then begin
                let record =
                  Record.make
                    [|
                      value_of_rank (Zipf.sample zipf rng);
                      Printf.sprintf "w%d-%d" w (Rng.int rng 100000);
                    |]
                in
                let rid = Table_ops.insert ctx txn ~table record in
                adds := rid :: !adds
              end
              else if roll < cfg.insert_w + cfg.delete_w then begin
                match pick_live rng with
                | None -> ()
                | Some rid -> (
                  (* optimistically claim it so other workers move on *)
                  Hashtbl.remove live rid;
                  match Table_ops.delete ctx txn ~table rid with
                  | () -> removes := rid :: !removes
                  | exception Not_found -> ())
              end
              else begin
                match pick_live rng with
                | None -> ()
                | Some rid -> (
                  let record =
                    Record.make
                      [|
                        value_of_rank (Zipf.sample zipf rng);
                        Printf.sprintf "u%d-%d" w (Rng.int rng 100000);
                      |]
                  in
                  match Table_ops.update ctx txn ~table rid record with
                  | () -> ()
                  | exception Not_found -> ())
              end;
              Sched.yield ctx.Ctx.sched
            done;
            if Rng.chance rng cfg.abort_pct then raise Voluntary_abort)
      with
      | Ok () ->
        List.iter (fun rid -> Hashtbl.replace live rid ()) !adds;
        (* removes were already taken out of the registry *)
        stats := { !stats with committed = !stats.committed + 1 }
      | Error `Deadlock ->
        (* deleted rids come back on rollback *)
        List.iter (fun rid -> Hashtbl.replace live rid ()) !removes;
        stats := { !stats with deadlocks = !stats.deadlocks + 1 }
      | Error (`Unique_violation _) ->
        List.iter (fun rid -> Hashtbl.replace live rid ()) !removes;
        stats :=
          { !stats with unique_violations = !stats.unique_violations + 1 }
      | exception Voluntary_abort ->
        (* run_txn re-raised after rolling back *)
        List.iter (fun rid -> Hashtbl.replace live rid ()) !removes;
        stats := { !stats with aborted = !stats.aborted + 1 });
      Sched.yield ctx.Ctx.sched
    done
  in
  for w = 0 to cfg.workers - 1 do
    ignore
      (Sched.spawn ctx.Ctx.sched
         ~name:(Printf.sprintf "worker-%d" w)
         (fun () -> worker w))
  done;
  stats

let live_rids ctx ~table =
  List.map fst
    (Oib_storage.Heap_file.all_records
       (Catalog.table ctx.Ctx.catalog table).heap)
