(** Workload driver: populate tables and run concurrent transaction mixes
    against them — the traffic the index builder must survive.

    Workers run as fibers; each transaction performs a few operations
    (inserts, deletes, updates of random live records, with optional
    deliberate aborts) and commits. A shared registry tracks committed
    RIDs so deletes and updates target real records; registry changes are
    applied only on commit so rollbacks leave it accurate. *)

open Oib_util
open Oib_core

type config = {
  seed : int;
  txns_per_worker : int;
  workers : int;
  ops_per_txn : int;
  insert_w : int;  (** relative weight *)
  delete_w : int;
  update_w : int;
  abort_pct : float;  (** fraction of transactions deliberately rolled back *)
  theta : float;  (** Zipf skew for choosing victim records *)
  key_space : int;  (** distinct key values for the indexed column *)
}

val default : config

type stats = {
  committed : int;
  aborted : int;
  deadlocks : int;
  unique_violations : int;
}

val populate : Ctx.t -> table:int -> rows:int -> seed:int -> Rid.t array
(** Load [rows] committed records (cols: indexed value, payload). *)

val spawn_workers : Ctx.t -> config -> table:int -> stats ref
(** Spawn the worker fibers on the engine's scheduler (run them with
    [Sched.run], typically alongside an index-builder fiber). The returned
    cell is filled in as workers finish. *)

val value_for : config -> Rng.t -> string
(** A key-column value drawn from the configured distribution. *)

val live_rids : Ctx.t -> table:int -> Rid.t list
(** Committed records currently in the table (latch-free; call when
    quiescent). *)
