lib/txn/txn_manager.ml: Hashtbl Oib_lock Oib_sim Oib_wal
