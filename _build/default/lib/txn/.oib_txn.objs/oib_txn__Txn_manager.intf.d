lib/txn/txn_manager.mli: Oib_lock Oib_sim Oib_wal
