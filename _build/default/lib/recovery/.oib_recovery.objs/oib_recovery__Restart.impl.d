lib/recovery/restart.ml: Buffer_pool Hashtbl Heap_page List Oib_btree Oib_storage Oib_util Oib_wal Page
