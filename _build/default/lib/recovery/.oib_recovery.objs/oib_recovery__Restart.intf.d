lib/recovery/restart.mli: Oib_btree Oib_storage Oib_wal
