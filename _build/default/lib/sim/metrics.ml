type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable sequential_reads : int;
  mutable log_records : int;
  mutable log_bytes : int;
  mutable log_flushes : int;
  mutable latch_acquires : int;
  mutable latch_waits : int;
  mutable lock_calls : int;
  mutable lock_waits : int;
  mutable tree_traversals : int;
  mutable fast_path_inserts : int;
  mutable page_splits : int;
  mutable keys_inserted : int;
  mutable keys_rejected_duplicate : int;
  mutable pseudo_deletes : int;
  mutable sidefile_appends : int;
  mutable txn_commits : int;
  mutable txn_aborts : int;
  mutable txn_stall_steps : int;
}

let create () =
  {
    page_reads = 0;
    page_writes = 0;
    sequential_reads = 0;
    log_records = 0;
    log_bytes = 0;
    log_flushes = 0;
    latch_acquires = 0;
    latch_waits = 0;
    lock_calls = 0;
    lock_waits = 0;
    tree_traversals = 0;
    fast_path_inserts = 0;
    page_splits = 0;
    keys_inserted = 0;
    keys_rejected_duplicate = 0;
    pseudo_deletes = 0;
    sidefile_appends = 0;
    txn_commits = 0;
    txn_aborts = 0;
    txn_stall_steps = 0;
  }

let reset t =
  t.page_reads <- 0;
  t.page_writes <- 0;
  t.sequential_reads <- 0;
  t.log_records <- 0;
  t.log_bytes <- 0;
  t.log_flushes <- 0;
  t.latch_acquires <- 0;
  t.latch_waits <- 0;
  t.lock_calls <- 0;
  t.lock_waits <- 0;
  t.tree_traversals <- 0;
  t.fast_path_inserts <- 0;
  t.page_splits <- 0;
  t.keys_inserted <- 0;
  t.keys_rejected_duplicate <- 0;
  t.pseudo_deletes <- 0;
  t.sidefile_appends <- 0;
  t.txn_commits <- 0;
  t.txn_aborts <- 0;
  t.txn_stall_steps <- 0

let snapshot t = { t with page_reads = t.page_reads }

let diff ~after ~before =
  {
    page_reads = after.page_reads - before.page_reads;
    page_writes = after.page_writes - before.page_writes;
    sequential_reads = after.sequential_reads - before.sequential_reads;
    log_records = after.log_records - before.log_records;
    log_bytes = after.log_bytes - before.log_bytes;
    log_flushes = after.log_flushes - before.log_flushes;
    latch_acquires = after.latch_acquires - before.latch_acquires;
    latch_waits = after.latch_waits - before.latch_waits;
    lock_calls = after.lock_calls - before.lock_calls;
    lock_waits = after.lock_waits - before.lock_waits;
    tree_traversals = after.tree_traversals - before.tree_traversals;
    fast_path_inserts = after.fast_path_inserts - before.fast_path_inserts;
    page_splits = after.page_splits - before.page_splits;
    keys_inserted = after.keys_inserted - before.keys_inserted;
    keys_rejected_duplicate =
      after.keys_rejected_duplicate - before.keys_rejected_duplicate;
    pseudo_deletes = after.pseudo_deletes - before.pseudo_deletes;
    sidefile_appends = after.sidefile_appends - before.sidefile_appends;
    txn_commits = after.txn_commits - before.txn_commits;
    txn_aborts = after.txn_aborts - before.txn_aborts;
    txn_stall_steps = after.txn_stall_steps - before.txn_stall_steps;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>page_reads=%d page_writes=%d seq_reads=%d@,\
     log_records=%d log_bytes=%d log_flushes=%d@,\
     latch_acquires=%d latch_waits=%d lock_calls=%d lock_waits=%d@,\
     traversals=%d fast_path=%d splits=%d@,\
     keys_inserted=%d dup_rejected=%d pseudo_deletes=%d sidefile=%d@,\
     commits=%d aborts=%d stall=%d@]"
    t.page_reads t.page_writes t.sequential_reads t.log_records t.log_bytes
    t.log_flushes t.latch_acquires t.latch_waits t.lock_calls t.lock_waits
    t.tree_traversals t.fast_path_inserts t.page_splits t.keys_inserted
    t.keys_rejected_duplicate t.pseudo_deletes t.sidefile_appends
    t.txn_commits t.txn_aborts t.txn_stall_steps
