lib/sim/sched.ml: Effect Hashtbl List Oib_util Printf String
