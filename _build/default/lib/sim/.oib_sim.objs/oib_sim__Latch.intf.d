lib/sim/latch.mli: Metrics Sched
