lib/sim/sched.mli:
