lib/sim/latch.ml: Metrics Sched
