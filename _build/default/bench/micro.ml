(* Micro-benchmarks (bechamel): the hot inner operations of the engine.
   M1 tournament-tree feed, M2 B-tree probe, M3 B-tree insert path (with
   and without the remembered-path cursor), M4 log-record codec, M5
   scheduler step. *)

open Bechamel
open Toolkit
open Oib_util

let keyn i = Ikey.make (Printf.sprintf "k%08d" i) (Rid.make ~page:i ~slot:0)

(* M1: replacement-selection feed *)
let m1_sort_feed () =
  let kv = Oib_storage.Durable_kv.create () in
  let store = Oib_sort.Run_store.create () in
  let sorter =
    Oib_sort.Sort_phase.start kv store ~ckpt_id:"m1" ~memory_keys:1024
  in
  let rng = Rng.create 3 in
  let pos = ref 0 in
  Staged.stage (fun () ->
      incr pos;
      Oib_sort.Sort_phase.feed_page sorter ~scan_pos:!pos
        (List.init 20 (fun _ -> keyn (Rng.int rng 1_000_000))))

(* shared tree for probe / insert benchmarks *)
let mk_tree n =
  let sched = Oib_sim.Sched.create () in
  let metrics = Oib_sim.Metrics.create () in
  let log = Oib_wal.Log_manager.create metrics in
  let store = Oib_storage.Stable_store.create () in
  let kv = Oib_storage.Durable_kv.create () in
  let pool = Oib_storage.Buffer_pool.create ~sched ~metrics ~log ~store in
  let tree =
    Oib_btree.Btree.create pool kv ~index_id:1 ~page_capacity:4096
      ~unique:false
  in
  for i = 0 to n - 1 do
    ignore (Oib_btree.Btree.set_state tree (keyn i) Oib_wal.Log_record.Present)
  done;
  tree

let m2_btree_probe () =
  let tree = mk_tree 50_000 in
  let rng = Rng.create 5 in
  Staged.stage (fun () ->
      ignore (Oib_btree.Btree.read_state tree (keyn (Rng.int rng 50_000))))

let m3_btree_insert_traversal () =
  let tree = mk_tree 10_000 in
  let i = ref 10_000 in
  Staged.stage (fun () ->
      incr i;
      ignore (Oib_btree.Btree.set_state tree (keyn !i) Oib_wal.Log_record.Present))

let m3b_btree_insert_cursor () =
  let tree = mk_tree 10_000 in
  let cursor = Oib_btree.Btree.new_cursor tree in
  let i = ref 10_000 in
  Staged.stage (fun () ->
      incr i;
      ignore (Oib_btree.Btree.insert_if_absent tree ~cursor (keyn !i)))

let m4_codec () =
  let record =
    {
      Oib_wal.Log_record.lsn = Oib_wal.Lsn.of_int 123;
      txn = Some 7;
      prev_lsn = Oib_wal.Lsn.of_int 99;
      body =
        Oib_wal.Log_record.Heap
          {
            page = 4;
            visible_indexes = 2;
            sidefiled = [ 9 ];
            op =
              Oib_wal.Log_record.Heap_insert
                {
                  rid = Rid.make ~page:4 ~slot:2;
                  record = Record.make [| "hello"; "world" |];
                };
          };
    }
  in
  Staged.stage (fun () ->
      let bytes = Oib_wal.Log_codec.encode record in
      ignore (Oib_wal.Log_codec.decode bytes ~pos:0))

let m5_scheduler_step () =
  Staged.stage (fun () ->
      let s = Oib_sim.Sched.create () in
      for _ = 1 to 4 do
        ignore
          (Oib_sim.Sched.spawn s (fun () ->
               for _ = 1 to 5 do
                 Oib_sim.Sched.yield s
               done))
      done;
      Oib_sim.Sched.run s)

let tests () =
  Test.make_grouped ~name:"oib"
    [
      Test.make ~name:"m1-sort-feed-page(20 keys)" (m1_sort_feed ());
      Test.make ~name:"m2-btree-probe(50k)" (m2_btree_probe ());
      Test.make ~name:"m3-btree-insert(traversal)" (m3_btree_insert_traversal ());
      Test.make ~name:"m3b-btree-insert(cursor)" (m3b_btree_insert_cursor ());
      Test.make ~name:"m4-logrec-encode+decode" (m4_codec ());
      Test.make ~name:"m5-sched-4fibers-5yields" (m5_scheduler_step ());
    ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "\n== micro-benchmarks (ns/op, OLS fit) ==";
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> Printf.sprintf "%12.1f" e
        | Some es ->
          String.concat "," (List.map (Printf.sprintf "%.1f") es)
        | None -> "n/a"
      in
      Printf.printf "%-34s %s\n" name est)
    (List.sort compare rows)
