bench/experiments.ml: Array Catalog Ctx Engine Ib Ikey List Oib_btree Oib_core Oib_sim Oib_sort Oib_storage Oib_txn Oib_util Oib_wal Oib_workload Option Printf Record Rid Rng Table_ops Table_printer
