bench/main.mli:
