bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Ikey Instance List Measure Oib_btree Oib_sim Oib_sort Oib_storage Oib_util Oib_wal Printf Record Rid Rng Staged String Test Time Toolkit
