bench/main.ml: Arg Cmd Cmdliner Experiments List Micro Printf String Term
