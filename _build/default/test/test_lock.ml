open Oib_util
module LM = Oib_lock.Lock_manager
module Sched = Oib_sim.Sched

let mk ?(seed = 1) () =
  let sched = Sched.create ~seed () in
  let metrics = Oib_sim.Metrics.create () in
  (sched, LM.create sched metrics)

let rid i = LM.Record (Rid.make ~page:i ~slot:0)

let test_grant_and_reentry () =
  let _, lm = mk () in
  Alcotest.(check bool) "grant" true (LM.lock lm ~txn:1 (rid 1) X = LM.Granted);
  Alcotest.(check bool) "reentrant" true (LM.lock lm ~txn:1 (rid 1) S = LM.Granted);
  Alcotest.(check bool) "holds X" true (LM.holds lm ~txn:1 (rid 1) X)

let test_share_compatible () =
  let _, lm = mk () in
  ignore (LM.lock lm ~txn:1 (rid 1) S);
  Alcotest.(check bool) "second S ok" true (LM.try_lock lm ~txn:2 (rid 1) S);
  Alcotest.(check bool) "X refused" false (LM.try_lock lm ~txn:3 (rid 1) X)

let test_intention_modes () =
  let _, lm = mk () in
  ignore (LM.lock lm ~txn:1 (LM.Table 1) IX);
  Alcotest.(check bool) "IX+IX ok" true (LM.try_lock lm ~txn:2 (LM.Table 1) IX);
  Alcotest.(check bool) "IS ok" true (LM.try_lock lm ~txn:3 (LM.Table 1) IS);
  (* the index builder's quiesce: S table lock must wait for IX updaters *)
  Alcotest.(check bool) "S blocked by IX" false
    (LM.try_lock lm ~txn:4 (LM.Table 1) S)

let test_quiesce_then_proceed () =
  let sched, lm = mk () in
  let order = ref [] in
  (* the updater already holds IX when the IB arrives *)
  ignore (LM.lock lm ~txn:1 (LM.Table 1) IX);
  ignore
    (Sched.spawn sched ~name:"updater" (fun () ->
         Sched.yield sched;
         order := "updater-done" :: !order;
         LM.unlock_all lm ~txn:1));
  ignore
    (Sched.spawn sched ~name:"ib" (fun () ->
         (* blocks until the updater commits *)
         ignore (LM.lock lm ~txn:99 (LM.Table 1) S);
         order := "ib-quiesced" :: !order;
         LM.unlock_all lm ~txn:99));
  Sched.run sched;
  Alcotest.(check (list string)) "updater first, then IB"
    [ "updater-done"; "ib-quiesced" ] (List.rev !order)

let test_upgrade () =
  let _, lm = mk () in
  ignore (LM.lock lm ~txn:1 (rid 1) S);
  Alcotest.(check bool) "sole holder upgrades" true
    (LM.lock lm ~txn:1 (rid 1) X = LM.Granted);
  Alcotest.(check bool) "now X" true (LM.holds lm ~txn:1 (rid 1) X)

let test_unlock_all_wakes () =
  let sched, lm = mk () in
  let got = ref false in
  ignore (LM.lock lm ~txn:1 (rid 1) X);
  ignore
    (Sched.spawn sched ~name:"holder" (fun () ->
         Sched.yield sched;
         LM.unlock_all lm ~txn:1));
  ignore
    (Sched.spawn sched ~name:"waiter" (fun () ->
         ignore (LM.lock lm ~txn:2 (rid 1) X);
         got := true;
         LM.unlock_all lm ~txn:2));
  Sched.run sched;
  Alcotest.(check bool) "waiter eventually granted" true !got

let test_deadlock_detected () =
  let sched, lm = mk () in
  let deadlocked = ref 0 in
  ignore (LM.lock lm ~txn:1 (rid 1) X);
  ignore (LM.lock lm ~txn:2 (rid 2) X);
  ignore
    (Sched.spawn sched ~name:"t1" (fun () ->
         (match LM.lock lm ~txn:1 (rid 2) X with
         | LM.Deadlock -> incr deadlocked
         | LM.Granted -> ());
         LM.unlock_all lm ~txn:1));
  ignore
    (Sched.spawn sched ~name:"t2" (fun () ->
         (match LM.lock lm ~txn:2 (rid 1) X with
         | LM.Deadlock -> incr deadlocked
         | LM.Granted -> ());
         LM.unlock_all lm ~txn:2));
  Sched.run sched;
  Alcotest.(check bool) "at least one victim" true (!deadlocked >= 1)

let test_instant_lock_not_retained () =
  let _, lm = mk () in
  Alcotest.(check bool) "instant granted" true
    (LM.try_instant_lock lm ~txn:1 (rid 1) S);
  Alcotest.(check bool) "not held afterwards" false (LM.holds lm ~txn:1 (rid 1) S);
  Alcotest.(check bool) "X by other ok" true (LM.try_lock lm ~txn:2 (rid 1) X)

let test_instant_lock_waits () =
  let sched, lm = mk () in
  let order = ref [] in
  ignore (LM.lock lm ~txn:1 (rid 1) X);
  ignore
    (Sched.spawn sched ~name:"holder" (fun () ->
         Sched.yield sched;
         order := "release" :: !order;
         LM.unlock_all lm ~txn:1));
  ignore
    (Sched.spawn sched ~name:"checker" (fun () ->
         (match LM.instant_lock lm ~txn:2 (rid 1) S with
         | LM.Granted -> order := "instant" :: !order
         | LM.Deadlock -> Alcotest.fail "unexpected deadlock");
         LM.unlock_all lm ~txn:2));
  Sched.run sched;
  Alcotest.(check (list string)) "waited for holder" [ "release"; "instant" ]
    (List.rev !order);
  Alcotest.(check (list (pair int (of_pp LM.pp_mode)))) "nothing held" []
    (LM.holders lm (rid 1))

let test_conditional_never_blocks () =
  let _, lm = mk () in
  ignore (LM.lock lm ~txn:1 (rid 1) X);
  (* a conditional request in a non-fiber context must return, not block *)
  Alcotest.(check bool) "refused" false (LM.try_lock lm ~txn:2 (rid 1) S);
  Alcotest.(check bool) "instant refused" false
    (LM.try_instant_lock lm ~txn:2 (rid 1) S)

let test_fifo_fairness () =
  let sched, lm = mk () in
  let order = ref [] in
  ignore (LM.lock lm ~txn:1 (rid 1) X);
  ignore
    (Sched.spawn sched ~name:"holder" (fun () ->
         (* hold until both competitors are queued *)
         while LM.waiter_count lm (rid 1) < 2 do
           Sched.yield sched
         done;
         LM.unlock_all lm ~txn:1));
  ignore
    (Sched.spawn sched ~name:"first" (fun () ->
         ignore (LM.lock lm ~txn:2 (rid 1) X);
         order := 2 :: !order;
         Sched.yield sched;
         LM.unlock_all lm ~txn:2));
  ignore
    (Sched.spawn sched ~name:"second" (fun () ->
         while LM.waiter_count lm (rid 1) < 1 do
           Sched.yield sched
         done;
         ignore (LM.lock lm ~txn:3 (rid 1) X);
         order := 3 :: !order;
         LM.unlock_all lm ~txn:3));
  Sched.run sched;
  Alcotest.(check (list int)) "fifo" [ 2; 3 ] (List.rev !order)

let prop_no_incompatible_coholders =
  QCheck.Test.make ~name:"no incompatible co-holders under random traffic"
    ~count:30 QCheck.small_nat (fun seed ->
      let sched, lm = mk ~seed () in
      let ok = ref true in
      let names = Array.init 5 rid in
      for txn = 1 to 6 do
        ignore
          (Sched.spawn sched (fun () ->
               let rng = Rng.create (seed + txn) in
               for _ = 1 to 20 do
                 let name = names.(Rng.int rng 5) in
                 let mode = if Rng.bool rng then LM.S else LM.X in
                 (match LM.lock lm ~txn name mode with
                 | LM.Granted ->
                   (* X must be exclusive *)
                   let hs = LM.holders lm name in
                   if
                     List.exists (fun (_, m) -> m = LM.X) hs
                     && List.length hs > 1
                   then ok := false;
                   Sched.yield sched
                 | LM.Deadlock -> LM.unlock_all lm ~txn);
                 ()
               done;
               LM.unlock_all lm ~txn))
      done;
      Sched.run sched;
      !ok)

let () =
  Alcotest.run "lock"
    [
      ( "modes",
        [
          Alcotest.test_case "grant and reentry" `Quick test_grant_and_reentry;
          Alcotest.test_case "share compatible" `Quick test_share_compatible;
          Alcotest.test_case "intention modes" `Quick test_intention_modes;
          Alcotest.test_case "upgrade" `Quick test_upgrade;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "quiesce then proceed" `Quick test_quiesce_then_proceed;
          Alcotest.test_case "unlock_all wakes" `Quick test_unlock_all_wakes;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "fifo fairness" `Quick test_fifo_fairness;
        ] );
      ( "durations",
        [
          Alcotest.test_case "instant not retained" `Quick
            test_instant_lock_not_retained;
          Alcotest.test_case "instant waits" `Quick test_instant_lock_waits;
          Alcotest.test_case "conditional never blocks" `Quick
            test_conditional_never_blocks;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_no_incompatible_coholders ]
      );
    ]
