open Oib_core
module Sched = Oib_sim.Sched
module Driver = Oib_workload.Driver

let setup ?(seed = 3) () =
  let ctx = Engine.create ~seed ~page_capacity:512 () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  ctx

let online_build ?(seed = 3) ?(rows = 300) ?(workers = 4) ?(txns = 25)
    ?(cfg = Ib.default_config Ib.Nsf) () =
  let ctx = setup ~seed () in
  let _ = Driver.populate ctx ~table:1 ~rows ~seed in
  let wcfg = { Driver.default with seed; workers; txns_per_worker = txns } in
  let stats = Driver.spawn_workers ctx wcfg ~table:1 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx cfg ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  (ctx, stats)

let check_clean ctx =
  Alcotest.(check (list string)) "oracle clean" [] (Engine.consistency_errors ctx)

let test_build_quiet_table () =
  let ctx = setup () in
  let _ = Driver.populate ctx ~table:1 ~rows:500 ~seed:9 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Nsf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  check_clean ctx;
  let info = Catalog.index ctx.Ctx.catalog 10 in
  Alcotest.(check bool) "ready" true (info.phase = Catalog.Ready);
  Alcotest.(check int) "all keys present" 500
    (Oib_btree.Btree.present_count info.tree)

let test_build_under_fire () =
  let ctx, stats = online_build () in
  Alcotest.(check bool) "transactions ran during build" true
    ((!stats).committed > 30);
  check_clean ctx;
  Alcotest.(check bool) "ready" true
    ((Catalog.index ctx.Ctx.catalog 10).phase = Catalog.Ready)

let test_duplicate_rejections_happen () =
  (* under concurrent inserts, IB must hit duplicate rejections (the §2.1.1
     race is real) across at least some seeds *)
  let hits = ref 0 in
  for seed = 1 to 8 do
    let ctx, _ = online_build ~seed () in
    check_clean ctx;
    if ctx.Ctx.metrics.keys_rejected_duplicate > 0 then incr hits
  done;
  Alcotest.(check bool)
    (Printf.sprintf "races exercised in %d/8 seeds" !hits)
    true (!hits >= 1)

let test_bulk_logging_batches () =
  let ctx, _ = online_build ~workers:1 ~txns:5 () in
  check_clean ctx;
  let bulk = ref 0 and bulk_keys = ref 0 in
  List.iter
    (fun (r : Oib_wal.Log_record.t) ->
      match r.body with
      | Oib_wal.Log_record.Index_bulk_insert { keys; _ } ->
        incr bulk;
        bulk_keys := !bulk_keys + List.length keys
      | _ -> ())
    (Oib_wal.Log_manager.all_records ctx.Ctx.log);
  Alcotest.(check bool) "IB keys logged in batches" true
    (!bulk > 0 && !bulk_keys / !bulk > 5)

let test_quiesce_blocks_then_releases () =
  (* a long-running updater delays descriptor creation; afterwards both
     proceed *)
  let ctx = setup () in
  let _ = Driver.populate ctx ~table:1 ~rows:50 ~seed:1 in
  let order = ref [] in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"updater" (fun () ->
         let txn = Oib_txn.Txn_manager.begin_txn ctx.Ctx.txns in
         ignore
           (Table_ops.insert ctx txn ~table:1 (Oib_util.Record.make [| "x"; "y" |]));
         for _ = 1 to 20 do
           Sched.yield ctx.Ctx.sched
         done;
         order := "updater-commit" :: !order;
         Oib_txn.Txn_manager.commit ctx.Ctx.txns txn));
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         (* give the updater a head start *)
         Sched.yield ctx.Ctx.sched;
         Sched.yield ctx.Ctx.sched;
         Ib.build_index ctx (Ib.default_config Ib.Nsf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false };
         order := "build-done" :: !order));
  Sched.run ctx.Ctx.sched;
  check_clean ctx;
  Alcotest.(check (list string)) "updater commits before descriptor"
    [ "updater-commit"; "build-done" ] (List.rev !order)

let test_unique_build_success () =
  let ctx = setup () in
  (* distinct key values *)
  (match
     Engine.run_txn ctx (fun txn ->
         for i = 0 to 199 do
           ignore
             (Table_ops.insert ctx txn ~table:1
                (Oib_util.Record.make [| Printf.sprintf "u%04d" i; "p" |]))
         done)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "populate failed");
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Nsf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = true }));
  Sched.run ctx.Ctx.sched;
  check_clean ctx;
  Alcotest.(check bool) "ready" true
    ((Catalog.index ctx.Ctx.catalog 10).phase = Catalog.Ready)

let test_unique_build_violation_cancels () =
  let ctx = setup () in
  (match
     Engine.run_txn ctx (fun txn ->
         ignore (Table_ops.insert ctx txn ~table:1 (Oib_util.Record.make [| "dup"; "1" |]));
         ignore (Table_ops.insert ctx txn ~table:1 (Oib_util.Record.make [| "dup"; "2" |])))
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "populate failed");
  let got_violation = ref false in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         match
           Ib.build_index ctx (Ib.default_config Ib.Nsf) ~table:1
             { Ib.index_id = 10; key_cols = [ 0 ]; unique = true }
         with
        | () -> ()
        | exception Ib.Build_unique_violation { kv = "dup"; _ } ->
          got_violation := true));
  Sched.run ctx.Ctx.sched;
  Alcotest.(check bool) "violation detected" true !got_violation;
  (* descriptor removed: updates no longer see index 10 *)
  (match Catalog.index ctx.Ctx.catalog 10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "descriptor not dropped");
  (match
     Engine.run_txn ctx (fun txn ->
         ignore (Table_ops.insert ctx txn ~table:1 (Oib_util.Record.make [| "z"; "3" |])))
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "table unusable after cancel")

let test_multi_index_one_scan () =
  let ctx = setup () in
  let _ = Driver.populate ctx ~table:1 ~rows:200 ~seed:2 in
  let wcfg = { Driver.default with workers = 2; txns_per_worker = 15 } in
  let _ = Driver.spawn_workers ctx wcfg ~table:1 in
  let seq_before = ctx.Ctx.metrics.sequential_reads in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_indexes ctx (Ib.default_config Ib.Nsf) ~table:1
           [
             { Ib.index_id = 10; key_cols = [ 0 ]; unique = false };
             { Ib.index_id = 11; key_cols = [ 1 ]; unique = false };
           ]));
  Sched.run ctx.Ctx.sched;
  check_clean ctx;
  Alcotest.(check bool) "both ready" true
    ((Catalog.index ctx.Ctx.catalog 10).phase = Catalog.Ready
    && (Catalog.index ctx.Ctx.catalog 11).phase = Catalog.Ready);
  (* one scan: sequential reads bounded by the page count of one pass *)
  let pages =
    Oib_storage.Heap_file.page_count (Catalog.table ctx.Ctx.catalog 1).heap
  in
  Alcotest.(check bool) "single data scan" true
    (ctx.Ctx.metrics.sequential_reads - seq_before <= pages + 2)

let test_cancel_build_mid_flight () =
  let ctx = setup () in
  let _ = Driver.populate ctx ~table:1 ~rows:200 ~seed:2 in
  (* run only the scan phase, then cancel from another fiber *)
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"canceller" (fun () ->
         (* wait until the descriptor exists *)
         let rec wait () =
           match Catalog.index ctx.Ctx.catalog 10 with
           | _ -> ()
           | exception Invalid_argument _ ->
             Sched.yield ctx.Ctx.sched;
             wait ()
         in
         wait ();
         Ib.cancel_build ctx ~index_id:10));
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         match
           Ib.build_index ctx (Ib.default_config Ib.Nsf) ~table:1
             { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }
         with
        | () -> ()
        | exception Invalid_argument _ -> () (* build lost its descriptor *)
        | exception Not_found -> ()));
  (match Sched.run ctx.Ctx.sched with
  | () -> ()
  | exception Invalid_argument _ -> ());
  (* whatever the interleaving, the table remains usable *)
  match
    Engine.run_txn ctx (fun txn ->
        ignore (Table_ops.insert ctx txn ~table:1 (Oib_util.Record.make [| "a"; "b" |])))
  with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "table unusable after cancel"

let test_gc_after_build () =
  let ctx, _ =
    online_build ~seed:5
      ~cfg:{ (Ib.default_config Ib.Nsf) with specialized_split = true }
      ()
  in
  check_clean ctx;
  let info = Catalog.index ctx.Ctx.catalog 10 in
  let pseudo_before = Oib_btree.Btree.pseudo_count info.tree in
  let collected = Ib.gc_pseudo_deleted ctx ~index_id:10 in
  Alcotest.(check int) "gc collects all (system quiescent)" pseudo_before collected;
  Alcotest.(check int) "no tombstones left" 0
    (Oib_btree.Btree.pseudo_count info.tree);
  check_clean ctx

let prop_nsf_seeds =
  QCheck.Test.make ~name:"NSF online build consistent across seeds" ~count:12
    QCheck.small_nat (fun seed ->
      let ctx, _ = online_build ~seed ~rows:120 ~workers:3 ~txns:12 () in
      Engine.consistency_errors ctx = []
      && (Catalog.index ctx.Ctx.catalog 10).phase = Catalog.Ready)

let prop_nsf_no_specialized_split =
  QCheck.Test.make ~name:"NSF correct without specialized split" ~count:6
    QCheck.small_nat (fun seed ->
      let cfg = { (Ib.default_config Ib.Nsf) with specialized_split = false } in
      let ctx, _ = online_build ~seed ~rows:100 ~workers:3 ~txns:10 ~cfg () in
      Engine.consistency_errors ctx = [])

let () =
  Alcotest.run "nsf"
    [
      ( "build",
        [
          Alcotest.test_case "quiet table" `Quick test_build_quiet_table;
          Alcotest.test_case "under concurrent updates" `Quick
            test_build_under_fire;
          Alcotest.test_case "duplicate races exercised" `Quick
            test_duplicate_rejections_happen;
          Alcotest.test_case "multi-key log records" `Quick
            test_bulk_logging_batches;
          Alcotest.test_case "descriptor quiesce" `Quick
            test_quiesce_blocks_then_releases;
        ] );
      ( "unique",
        [
          Alcotest.test_case "unique build success" `Quick
            test_unique_build_success;
          Alcotest.test_case "violation cancels build" `Quick
            test_unique_build_violation_cancels;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "multi-index one scan" `Quick
            test_multi_index_one_scan;
          Alcotest.test_case "cancel mid-flight" `Quick
            test_cancel_build_mid_flight;
          Alcotest.test_case "pseudo-delete gc" `Quick test_gc_after_build;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_nsf_seeds; prop_nsf_no_specialized_split ] );
    ]
