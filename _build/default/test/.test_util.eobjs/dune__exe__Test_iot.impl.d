test/test_iot.ml: Alcotest Array Catalog Ctx Engine Ib List Oib_btree Oib_core Oib_sim Oib_txn Oib_util Printf QCheck QCheck_alcotest Record Rng Table_ops
