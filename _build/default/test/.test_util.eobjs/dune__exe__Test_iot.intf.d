test/test_iot.mli:
