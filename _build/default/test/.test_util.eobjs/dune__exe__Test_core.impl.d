test/test_core.ml: Alcotest Catalog Ctx Engine Ib List Oib_core Oib_sim Oib_storage Oib_txn Oib_util Oib_wal Oib_workload Printf QCheck QCheck_alcotest Record Rid Rng String Table_ops
