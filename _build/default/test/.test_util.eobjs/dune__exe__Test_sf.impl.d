test/test_sf.ml: Alcotest Array Catalog Ctx Engine Ib List Oib_btree Oib_core Oib_sim Oib_txn Oib_util Oib_workload Printf QCheck QCheck_alcotest Table_ops
