test/test_sort.mli:
