test/test_util.ml: Alcotest Array Fun Gen Ikey List Oib_util QCheck QCheck_alcotest Record Rid Rng Stats String Table_printer Zipf
