test/test_storage.ml: Alcotest Buffer_pool Heap_file Heap_page List Oib_sim Oib_storage Oib_testsupport Oib_util Oib_wal Option Page Printf Record Rid Rng Stable_store String Tenv
