test/test_restart.ml: Alcotest Catalog Ctx Engine Ib List Oib_core Oib_sim Oib_storage Oib_util Oib_workload Printf QCheck QCheck_alcotest
