test/test_recovery.ml: Alcotest Ikey List Oib_btree Oib_recovery Oib_storage Oib_testsupport Oib_util Oib_wal Printf QCheck QCheck_alcotest Record Rid Rng Tenv
