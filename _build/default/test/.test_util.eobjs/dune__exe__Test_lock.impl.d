test/test_lock.ml: Alcotest Array List Oib_lock Oib_sim Oib_util QCheck QCheck_alcotest Rid Rng
