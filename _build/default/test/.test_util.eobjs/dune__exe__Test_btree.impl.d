test/test_btree.ml: Alcotest Array Bt_check Btree Hashtbl Ikey List Oib_btree Oib_sim Oib_testsupport Oib_util Oib_wal Option Printf QCheck QCheck_alcotest Rid Rng String Tenv
