test/test_sort.ml: Alcotest Array Durable_kv Fun Ikey List Loser_tree Merge_phase Oib_sort Oib_storage Oib_util Printf QCheck QCheck_alcotest Rid Rng Run_store Sort_phase
