test/test_txn.ml: Alcotest List Oib_lock Oib_sim Oib_txn Oib_util Oib_wal
