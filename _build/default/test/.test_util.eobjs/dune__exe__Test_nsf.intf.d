test/test_nsf.mli:
