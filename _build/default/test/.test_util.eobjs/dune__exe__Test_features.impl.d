test/test_features.ml: Alcotest Array Catalog Ctx Engine Ib List Oib_btree Oib_core Oib_sim Oib_storage Oib_txn Oib_util Oib_wal Oib_workload Option Printf QCheck QCheck_alcotest Record Table_ops
