test/test_sim.ml: Alcotest List Oib_sim QCheck QCheck_alcotest
