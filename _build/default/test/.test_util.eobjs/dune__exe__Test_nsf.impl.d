test/test_nsf.ml: Alcotest Catalog Ctx Engine Ib List Oib_btree Oib_core Oib_sim Oib_storage Oib_txn Oib_util Oib_wal Oib_workload Printf QCheck QCheck_alcotest Table_ops
