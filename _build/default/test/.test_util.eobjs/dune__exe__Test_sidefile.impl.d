test/test_sidefile.ml: Alcotest Fun Ikey List Oib_sidefile Oib_sim Oib_util Oib_wal Printf QCheck QCheck_alcotest Rid
