test/test_workload.ml: Alcotest Array Catalog Ctx Engine Hashtbl Ib Ikey List Oib_btree Oib_core Oib_sim Oib_storage Oib_util Oib_wal Oib_workload Option Printf Record Rid Rng String Table_ops
