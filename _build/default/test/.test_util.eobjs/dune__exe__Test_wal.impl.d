test/test_wal.ml: Alcotest Bytes Format Ikey List Oib_sim Oib_util Oib_wal QCheck QCheck_alcotest Record Rid String
