test/test_sidefile.mli:
