open Oib_core
module Sched = Oib_sim.Sched
module Driver = Oib_workload.Driver

let setup ?(seed = 3) () =
  let ctx = Engine.create ~seed ~page_capacity:512 () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  ctx

let online_build ?(seed = 3) ?(rows = 300) ?(workers = 4) ?(txns = 25)
    ?(cfg = Ib.default_config Ib.Sf) () =
  let ctx = setup ~seed () in
  let _ = Driver.populate ctx ~table:1 ~rows ~seed in
  let wcfg = { Driver.default with seed; workers; txns_per_worker = txns } in
  let stats = Driver.spawn_workers ctx wcfg ~table:1 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx cfg ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  (ctx, stats)

let check_clean ctx =
  Alcotest.(check (list string)) "oracle clean" [] (Engine.consistency_errors ctx)

let test_build_quiet_table () =
  let ctx = setup () in
  let _ = Driver.populate ctx ~table:1 ~rows:500 ~seed:9 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  check_clean ctx;
  let info = Catalog.index ctx.Ctx.catalog 10 in
  Alcotest.(check bool) "ready" true (info.phase = Catalog.Ready);
  Alcotest.(check int) "all keys" 500 (Oib_btree.Btree.present_count info.tree);
  (* bottom-up build on a quiet table: perfectly clustered *)
  Alcotest.(check (float 0.001)) "clustered" 1.0
    (Oib_btree.Bt_check.clustering info.tree)

let test_build_under_fire () =
  let ctx, stats = online_build () in
  Alcotest.(check bool) "transactions ran during build" true
    ((!stats).committed > 30);
  check_clean ctx;
  Alcotest.(check bool) "side-file was used" true
    (ctx.Ctx.metrics.sidefile_appends > 0);
  Alcotest.(check bool) "ready" true
    ((Catalog.index ctx.Ctx.catalog 10).phase = Catalog.Ready)

let test_no_quiesce () =
  (* SF never takes the table S lock: a long-running updater cannot delay
     the build's start *)
  let ctx = setup () in
  let _ = Driver.populate ctx ~table:1 ~rows:100 ~seed:1 in
  let order = ref [] in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"updater" (fun () ->
         let txn = Oib_txn.Txn_manager.begin_txn ctx.Ctx.txns in
         ignore
           (Table_ops.insert ctx txn ~table:1 (Oib_util.Record.make [| "x"; "y" |]));
         for _ = 1 to 200 do
           Sched.yield ctx.Ctx.sched
         done;
         order := "updater-commit" :: !order;
         Oib_txn.Txn_manager.commit ctx.Ctx.txns txn));
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Sched.yield ctx.Ctx.sched;
         Sched.yield ctx.Ctx.sched;
         Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false };
         order := "build-done" :: !order));
  Sched.run ctx.Ctx.sched;
  check_clean ctx;
  Alcotest.(check (list string)) "build finishes under the open transaction"
    [ "build-done"; "updater-commit" ] (List.rev !order)

let test_visibility_rule () =
  (* a transaction behind the scan appends to the side-file; ahead of the
     scan it does nothing *)
  let ctx = setup () in
  let rows = Driver.populate ctx ~table:1 ~rows:50 ~seed:1 in
  ignore rows;
  let info_ref = ref None in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx
           { (Ib.default_config Ib.Sf) with ckpt_every_pages = 1000 }
           ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"probe" (fun () ->
         (* wait until the build is in progress with a live scan position *)
         let rec wait () =
           match Catalog.index ctx.Ctx.catalog 10 with
           | info -> info_ref := Some info
           | exception Invalid_argument _ ->
             Sched.yield ctx.Ctx.sched;
             wait ()
         in
         wait ()));
  Sched.run ctx.Ctx.sched;
  check_clean ctx;
  match !info_ref with
  | Some _ -> () (* descriptor appeared while the build ran: no quiesce *)
  | None -> Alcotest.fail "descriptor never observed"

let test_sidefile_rollback_compensation () =
  (* a transaction whose ops straddle the scan position and then rolls
     back: Figure 2's compensation path *)
  let ctx = setup () in
  let rids = Driver.populate ctx ~table:1 ~rows:200 ~seed:7 in
  let aborted = ref false in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"straddler" (fun () ->
         let txn = Oib_txn.Txn_manager.begin_txn ctx.Ctx.txns in
         (* touch the first and last rows, then roll back mid-build *)
         Table_ops.update ctx txn ~table:1 rids.(0)
           (Oib_util.Record.make [| "early"; "e" |]);
         Table_ops.update ctx txn ~table:1
           rids.(Array.length rids - 1)
           (Oib_util.Record.make [| "late"; "l" |]);
         for _ = 1 to 30 do
           Sched.yield ctx.Ctx.sched
         done;
         Table_ops.rollback ctx txn;
         aborted := true));
  Sched.run ctx.Ctx.sched;
  Alcotest.(check bool) "rollback happened" true !aborted;
  check_clean ctx

let test_file_extension_after_scan () =
  (* records inserted into pages created after the scan noted its last page
     must reach the index via the side-file (Current-RID = infinity) *)
  let ctx = setup () in
  let _ = Driver.populate ctx ~table:1 ~rows:100 ~seed:3 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"extender" (fun () ->
         for i = 0 to 80 do
           (match
              Engine.run_txn ctx (fun txn ->
                  ignore
                    (Table_ops.insert ctx txn ~table:1
                       (Oib_util.Record.make
                          [| Printf.sprintf "ext%03d" i; "p" |])))
            with
           | Ok () -> ()
           | Error _ -> ());
           Sched.yield ctx.Ctx.sched
         done));
  Sched.run ctx.Ctx.sched;
  check_clean ctx

let test_sorted_sidefile_application () =
  let cfg = { (Ib.default_config Ib.Sf) with sort_sidefile = true } in
  let ctx, _ = online_build ~cfg () in
  check_clean ctx

let test_sf_vs_nsf_efficiency () =
  (* §4: SF writes no log records for the base load and avoids traversals *)
  let run alg =
    let ctx = setup ~seed:11 () in
    let _ = Driver.populate ctx ~table:1 ~rows:400 ~seed:11 in
    let before = Oib_sim.Metrics.snapshot ctx.Ctx.metrics in
    ignore
      (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
           Ib.build_index ctx (Ib.default_config alg) ~table:1
             { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
    Sched.run ctx.Ctx.sched;
    check_clean ctx;
    Oib_sim.Metrics.diff ~after:(Oib_sim.Metrics.snapshot ctx.Ctx.metrics) ~before
  in
  let sf = run Ib.Sf and nsf = run Ib.Nsf in
  Alcotest.(check bool)
    (Printf.sprintf "SF logs less during build (sf=%d nsf=%d)" sf.log_bytes
       nsf.log_bytes)
    true
    (sf.log_bytes < nsf.log_bytes);
  Alcotest.(check bool)
    (Printf.sprintf "SF latches less (sf=%d nsf=%d)" sf.latch_acquires
       nsf.latch_acquires)
    true
    (sf.latch_acquires < nsf.latch_acquires)

let test_unique_build_violation_cancels () =
  let ctx = setup () in
  (match
     Engine.run_txn ctx (fun txn ->
         ignore (Table_ops.insert ctx txn ~table:1 (Oib_util.Record.make [| "dup"; "1" |]));
         ignore (Table_ops.insert ctx txn ~table:1 (Oib_util.Record.make [| "dup"; "2" |])))
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "populate failed");
  let got = ref false in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         match
           Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
             { Ib.index_id = 10; key_cols = [ 0 ]; unique = true }
         with
        | () -> ()
        | exception Ib.Build_unique_violation _ -> got := true));
  Sched.run ctx.Ctx.sched;
  Alcotest.(check bool) "violation detected" true !got

let test_unique_build_success_under_fire () =
  let ctx = setup ~seed:13 () in
  (* unique column: use the payload column with distinct values *)
  (match
     Engine.run_txn ctx (fun txn ->
         for i = 0 to 149 do
           ignore
             (Table_ops.insert ctx txn ~table:1
                (Oib_util.Record.make [| "v"; Printf.sprintf "u%05d" i |]))
         done)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "populate failed");
  (* concurrent inserters with fresh unique values *)
  let ctr = ref 1000 in
  for w = 0 to 2 do
    ignore
      (Sched.spawn ctx.Ctx.sched ~name:(Printf.sprintf "w%d" w) (fun () ->
           for _ = 1 to 20 do
             incr ctr;
             let v = Printf.sprintf "u%05d" !ctr in
             (match
                Engine.run_txn ctx (fun txn ->
                    ignore
                      (Table_ops.insert ctx txn ~table:1
                         (Oib_util.Record.make [| "v"; v |])))
              with
             | Ok () -> ()
             | Error _ -> ());
             Sched.yield ctx.Ctx.sched
           done))
  done;
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
           { Ib.index_id = 10; key_cols = [ 1 ]; unique = true }));
  Sched.run ctx.Ctx.sched;
  check_clean ctx;
  Alcotest.(check bool) "ready" true
    ((Catalog.index ctx.Ctx.catalog 10).phase = Catalog.Ready)

let test_multi_index_one_scan () =
  let ctx = setup () in
  let _ = Driver.populate ctx ~table:1 ~rows:200 ~seed:2 in
  let wcfg = { Driver.default with workers = 2; txns_per_worker = 15 } in
  let _ = Driver.spawn_workers ctx wcfg ~table:1 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_indexes ctx (Ib.default_config Ib.Sf) ~table:1
           [
             { Ib.index_id = 10; key_cols = [ 0 ]; unique = false };
             { Ib.index_id = 11; key_cols = [ 1 ]; unique = false };
           ]));
  Sched.run ctx.Ctx.sched;
  check_clean ctx;
  Alcotest.(check bool) "both ready" true
    ((Catalog.index ctx.Ctx.catalog 10).phase = Catalog.Ready
    && (Catalog.index ctx.Ctx.catalog 11).phase = Catalog.Ready)

let prop_sf_seeds =
  QCheck.Test.make ~name:"SF online build consistent across seeds" ~count:12
    QCheck.small_nat (fun seed ->
      let ctx, _ = online_build ~seed ~rows:120 ~workers:3 ~txns:12 () in
      Engine.consistency_errors ctx = []
      && (Catalog.index ctx.Ctx.catalog 10).phase = Catalog.Ready)

let prop_sf_sorted_sidefile_seeds =
  QCheck.Test.make ~name:"SF with sorted side-file consistent" ~count:8
    QCheck.small_nat (fun seed ->
      let cfg = { (Ib.default_config Ib.Sf) with sort_sidefile = true } in
      let ctx, _ = online_build ~seed ~rows:100 ~workers:3 ~txns:10 ~cfg () in
      Engine.consistency_errors ctx = [])

let () =
  Alcotest.run "sf"
    [
      ( "build",
        [
          Alcotest.test_case "quiet table" `Quick test_build_quiet_table;
          Alcotest.test_case "under concurrent updates" `Quick
            test_build_under_fire;
          Alcotest.test_case "no quiesce" `Quick test_no_quiesce;
          Alcotest.test_case "descriptor visible during build" `Quick
            test_visibility_rule;
          Alcotest.test_case "rollback compensation" `Quick
            test_sidefile_rollback_compensation;
          Alcotest.test_case "file extension after scan" `Quick
            test_file_extension_after_scan;
          Alcotest.test_case "sorted side-file application" `Quick
            test_sorted_sidefile_application;
        ] );
      ( "comparison",
        [ Alcotest.test_case "SF cheaper than NSF" `Quick test_sf_vs_nsf_efficiency ]
      );
      ( "unique",
        [
          Alcotest.test_case "violation cancels" `Quick
            test_unique_build_violation_cancels;
          Alcotest.test_case "success under fire" `Quick
            test_unique_build_success_under_fire;
        ] );
      ( "extensions",
        [ Alcotest.test_case "multi-index one scan" `Quick test_multi_index_one_scan ]
      );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sf_seeds; prop_sf_sorted_sidefile_seeds ] );
    ]
