(* Edge cases across the substrates: boundary conditions the main suites
   don't reach — oversized keys, duplicate key values spanning leaves, deep
   trees, empty sorts, multi-pass merges, lock conversions under
   contention, fiber exceptions. *)

open Oib_util
open Oib_btree
open Oib_testsupport
module LR = Oib_wal.Log_record
module Sched = Oib_sim.Sched
module LockM = Oib_lock.Lock_manager

let mk_tree ?(capacity = 256) ?(unique = false) env ~id =
  Btree.create env.Tenv.pool env.Tenv.kv ~index_id:id ~page_capacity:capacity
    ~unique

let healthy t =
  match Bt_check.check t with
  | [] -> ()
  | errs -> Alcotest.failf "invariants: %s" (String.concat "; " errs)

(* --- btree --- *)

let test_oversized_key_rejected () =
  let env = Tenv.make () in
  let t = mk_tree ~capacity:128 env ~id:1 in
  let big = Ikey.make (String.make 200 'x') (Rid.make ~page:0 ~slot:0) in
  Alcotest.check_raises "too large"
    (Invalid_argument "Btree: key larger than max entry size") (fun () ->
      ignore (Btree.set_state t big LR.Present))

let test_duplicate_kv_across_leaves () =
  let env = Tenv.make () in
  let t = mk_tree ~capacity:128 env ~id:1 in
  (* hundreds of entries with one key value, forcing many leaf splits *)
  for i = 0 to 299 do
    ignore (Btree.set_state t (Ikey.make "same" (Rid.make ~page:i ~slot:0)) LR.Present)
  done;
  healthy t;
  Alcotest.(check int) "find_kv sees them all" 300
    (List.length (Btree.find_kv t "same"));
  Alcotest.(check int) "range sees them all" 300
    (List.length (Btree.range t ~lo:"same" ~hi:"same" ()));
  Alcotest.(check bool) "several leaves" true (Btree.leaf_count t > 3)

let test_empty_all_leaves_then_reuse () =
  let env = Tenv.make () in
  let t = mk_tree ~capacity:160 env ~id:1 in
  for i = 0 to 199 do
    ignore (Btree.set_state t (Tenv.keyn i) LR.Present)
  done;
  for i = 0 to 199 do
    ignore (Btree.set_state t (Tenv.keyn i) LR.Absent)
  done;
  healthy t;
  Alcotest.(check int) "empty" 0 (Btree.entry_count t);
  (* the hollowed-out structure keeps working *)
  for i = 0 to 199 do
    ignore (Btree.set_state t (Tenv.keyn i) LR.Present)
  done;
  healthy t;
  Alcotest.(check int) "refilled" 200 (Btree.entry_count t)

let test_deep_tree () =
  let env = Tenv.make () in
  let t = mk_tree ~capacity:96 env ~id:1 in
  for i = 0 to 999 do
    ignore (Btree.set_state t (Tenv.keyn i) LR.Present)
  done;
  healthy t;
  Alcotest.(check bool) "at least three levels" true (Btree.depth t >= 3);
  Alcotest.(check int) "probe works at depth" 0
    (compare (Btree.read_state t (Tenv.keyn 500)) LR.Present);
  Alcotest.(check int) "range across the deep tree" 100
    (List.length (Btree.range t ~lo:"k000400" ~hi:"k000499" ()))

let test_range_degenerate_bounds () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:1 in
  for i = 0 to 49 do
    ignore (Btree.set_state t (Tenv.keyn i) LR.Present)
  done;
  Alcotest.(check int) "lo > hi is empty" 0
    (List.length (Btree.range t ~lo:"k000030" ~hi:"k000010" ()));
  Alcotest.(check int) "lo = hi is a point" 1
    (List.length (Btree.range t ~lo:"k000030" ~hi:"k000030" ()));
  Alcotest.(check int) "bounds beyond content" 0
    (List.length (Btree.range t ~lo:"z" ()))

let test_cursor_random_jumps_fall_back () =
  let env = Tenv.make () in
  let t = mk_tree ~capacity:160 env ~id:1 in
  let c = Btree.new_cursor t in
  let rng = Rng.create 3 in
  (* wildly non-local inserts through the cursor must stay correct *)
  let n = 400 in
  let seen = Hashtbl.create 64 in
  for _ = 1 to n do
    let i = Rng.int rng 10_000 in
    Hashtbl.replace seen i ();
    ignore (Btree.set_state t ~cursor:c (Tenv.keyn i) LR.Present)
  done;
  healthy t;
  Alcotest.(check int) "count matches distinct keys" (Hashtbl.length seen)
    (Btree.entry_count t)

let test_truncate_below_everything () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:1 in
  let b = Btree.Bulk.start t in
  for i = 10 to 500 do
    Btree.Bulk.add b (Tenv.keyn i)
  done;
  Btree.truncate_above t (Some (Tenv.keyn 0));
  healthy t;
  Alcotest.(check int) "nothing survives" 0 (Btree.entry_count t);
  ignore (Btree.set_state t (Tenv.keyn 1) LR.Present);
  healthy t

let test_open_missing_image () =
  let env = Tenv.make () in
  match Btree.open_from_image env.Tenv.pool env.Tenv.kv ~index_id:404 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "phantom image"

let test_double_checkpoint_then_crash () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:6 in
  for i = 0 to 99 do
    ignore (Btree.set_state t (Tenv.keyn i) LR.Present)
  done;
  Btree.checkpoint_image t ~lsn:(Oib_wal.Lsn.of_int 5);
  Btree.checkpoint_image t ~lsn:(Oib_wal.Lsn.of_int 6);
  let env' = Tenv.crash env in
  let t' = Btree.open_from_image env'.Tenv.pool env'.Tenv.kv ~index_id:6 in
  healthy t';
  Alcotest.(check int) "content stable across repeated images" 100
    (Btree.entry_count t')

let prop_interleaved_gc_and_ops =
  QCheck.Test.make ~name:"ops interleaved with gc keep invariants" ~count:20
    QCheck.small_nat (fun seed ->
      let env = Tenv.make ~seed () in
      let t = mk_tree ~capacity:200 env ~id:1 in
      let rng = Rng.create seed in
      for step = 1 to 600 do
        let k = Tenv.keyn (Rng.int rng 150) in
        (match Rng.int rng 3 with
        | 0 -> ignore (Btree.set_state t k LR.Present)
        | 1 -> ignore (Btree.set_state t k LR.Pseudo_deleted)
        | _ -> ignore (Btree.set_state t k LR.Absent));
        if step mod 97 = 0 then
          ignore (Btree.gc_pseudo_deleted t ~keep:(fun _ -> false))
      done;
      Bt_check.check t = [] && Btree.pseudo_count t >= 0)

let test_separator_truncation () =
  let k kv = Ikey.make kv (Rid.make ~page:0 ~slot:0) in
  let sep = Bt_node.separator ~before:(k "apple") ~first:(k "banana") in
  Alcotest.(check string) "one char suffices" "b" sep.Ikey.kv;
  let sep = Bt_node.separator ~before:(k "abcX") ~first:(k "abcdef") in
  Alcotest.(check string) "shared prefix extended" "abcd" sep.Ikey.kv;
  (* duplicates across the split: only the full entry discriminates *)
  let a = Ikey.make "same" (Rid.make ~page:1 ~slot:0) in
  let b = Ikey.make "same" (Rid.make ~page:2 ~slot:0) in
  Alcotest.(check bool) "equal kvs keep full key" true
    (Ikey.equal (Bt_node.separator ~before:a ~first:b) b);
  (* the ordering contract in general *)
  let check_contract before first =
    let s = Bt_node.separator ~before ~first in
    Alcotest.(check bool) "before < sep" true (Ikey.compare before s < 0);
    Alcotest.(check bool) "sep <= first" true (Ikey.compare s first <= 0)
  in
  check_contract (k "a") (k "a\x01");
  check_contract (k "") (k "z");
  check_contract (k "prefix") (k "prefixed")

let test_truncated_separators_shrink_internals () =
  (* long keys with a long shared prefix: internal nodes must not pay for
     the whole keys *)
  let env = Tenv.make () in
  let t = mk_tree ~capacity:512 env ~id:1 in
  for i = 0 to 499 do
    ignore
      (Btree.set_state t
         (Ikey.make
            (Printf.sprintf "tenant-0042/user-%06d/order" i)
            (Rid.make ~page:i ~slot:0))
         LR.Present)
  done;
  healthy t;
  let max_sep_len = ref 0 in
  let rec walk id =
    match Btree.node_at t id with
    | Bt_node.Leaf _ -> ()
    | Bt_node.Internal n ->
      for i = 0 to n.nc - 2 do
        max_sep_len := max !max_sep_len (String.length n.seps.(i).Ikey.kv)
      done;
      for i = 0 to n.nc - 1 do
        walk n.children.(i)
      done
  in
  walk (Btree.root_page_id t);
  Alcotest.(check bool)
    (Printf.sprintf "separators truncated (max %d < 27)" !max_sep_len)
    true
    (!max_sep_len < 27)

(* --- sort --- *)

let test_sort_empty_input () =
  let kv = Oib_storage.Durable_kv.create () in
  let store = Oib_sort.Run_store.create () in
  let s = Oib_sort.Sort_phase.start kv store ~ckpt_id:"e" ~memory_keys:8 in
  let runs = Oib_sort.Sort_phase.finish s in
  Alcotest.(check int) "one (empty) run" 1 (List.length runs);
  let out =
    Oib_sort.Merge_phase.merge kv store ~ckpt_id:"em" ~inputs:runs
      ~output:"eo" ~ckpt_every:10
  in
  Alcotest.(check int) "empty merge" 0 (Oib_sort.Run_store.length out)

let test_sort_single_key () =
  let kv = Oib_storage.Durable_kv.create () in
  let store = Oib_sort.Run_store.create () in
  let s = Oib_sort.Sort_phase.start kv store ~ckpt_id:"s" ~memory_keys:8 in
  Oib_sort.Sort_phase.feed_page s ~scan_pos:0 [ Tenv.keyn 1 ];
  let runs = Oib_sort.Sort_phase.finish s in
  let out =
    Oib_sort.Merge_phase.merge kv store ~ckpt_id:"sm" ~inputs:runs
      ~output:"so" ~ckpt_every:10
  in
  Alcotest.(check int) "one key through" 1 (Oib_sort.Run_store.length out)

let test_multipass_merge () =
  let kv = Oib_storage.Durable_kv.create () in
  let store = Oib_sort.Run_store.create () in
  (* tiny memory => many runs; fan-in 2 => several passes *)
  let s = Oib_sort.Sort_phase.start kv store ~ckpt_id:"m" ~memory_keys:8 in
  let rng = Rng.create 7 in
  let a = Array.init 600 Tenv.keyn in
  Rng.shuffle rng a;
  Array.iteri
    (fun i k -> Oib_sort.Sort_phase.feed_page s ~scan_pos:i [ k ])
    a;
  let runs = Oib_sort.Sort_phase.finish s in
  Alcotest.(check bool)
    (Printf.sprintf "many runs (%d)" (List.length runs))
    true
    (List.length runs > 4);
  let out =
    Oib_sort.Merge_phase.merge_all kv store ~ckpt_id:"mm" ~inputs:runs
      ~output:"mo" ~fan_in:2 ~ckpt_every:1000
  in
  Alcotest.(check int) "all keys" 600 (Oib_sort.Run_store.length out);
  Alcotest.(check bool) "sorted" true (Oib_sort.Run_store.is_sorted out)

let test_feed_page_monotone_positions () =
  let kv = Oib_storage.Durable_kv.create () in
  let store = Oib_sort.Run_store.create () in
  let s = Oib_sort.Sort_phase.start kv store ~ckpt_id:"p" ~memory_keys:8 in
  Oib_sort.Sort_phase.feed_page s ~scan_pos:5 [ Tenv.keyn 1 ];
  (match Oib_sort.Sort_phase.feed_page s ~scan_pos:5 [ Tenv.keyn 2 ] with
  | exception Assert_failure _ -> ()
  | () -> Alcotest.fail "non-monotone scan position accepted")

let test_resume_without_checkpoint () =
  let kv = Oib_storage.Durable_kv.create () in
  let store = Oib_sort.Run_store.create () in
  Alcotest.(check bool) "no checkpoint, no sorter" true
    (Oib_sort.Sort_phase.resume kv store ~ckpt_id:"nope" ~memory_keys:8 = None)

(* --- locks --- *)

let mk_locks ?(seed = 1) () =
  let sched = Sched.create ~seed () in
  (sched, LockM.create sched (Oib_sim.Metrics.create ()))

let rid i = LockM.Record (Rid.make ~page:i ~slot:0)

let test_upgrade_deadlock_between_readers () =
  (* two S holders both upgrading to X: a conversion deadlock; at least one
     must be chosen as victim *)
  let sched, lm = mk_locks () in
  ignore (LockM.lock lm ~txn:1 (rid 1) S);
  ignore (LockM.lock lm ~txn:2 (rid 1) S);
  let victims = ref 0 in
  for t = 1 to 2 do
    ignore
      (Sched.spawn sched (fun () ->
           (match LockM.lock lm ~txn:t (rid 1) X with
           | LockM.Deadlock ->
             incr victims;
             LockM.unlock_all lm ~txn:t
           | LockM.Granted -> LockM.unlock_all lm ~txn:t)))
  done;
  Sched.run sched;
  Alcotest.(check bool) "a victim was picked" true (!victims >= 1)

let test_is_blocked_by_x () =
  let _, lm = mk_locks () in
  ignore (LockM.lock lm ~txn:1 (LockM.Table 9) X);
  Alcotest.(check bool) "IS vs X" false (LockM.try_lock lm ~txn:2 (LockM.Table 9) IS)

let test_instant_on_own_lock () =
  let _, lm = mk_locks () in
  ignore (LockM.lock lm ~txn:1 (rid 1) X);
  Alcotest.(check bool) "instant on own lock trivially grants" true
    (LockM.try_instant_lock lm ~txn:1 (rid 1) S);
  Alcotest.(check bool) "still held in X" true (LockM.holds lm ~txn:1 (rid 1) X)

let test_unlock_all_idempotent () =
  let _, lm = mk_locks () in
  ignore (LockM.lock lm ~txn:1 (rid 1) X);
  LockM.unlock_all lm ~txn:1;
  LockM.unlock_all lm ~txn:1;
  Alcotest.(check (list (pair int (of_pp LockM.pp_mode)))) "clean" []
    (LockM.holders lm (rid 1))

(* --- scheduler --- *)

let test_fiber_exception_propagates () =
  let s = Sched.create () in
  ignore (Sched.spawn s (fun () -> failwith "boom"));
  (match Sched.run s with
  | exception Failure m -> Alcotest.(check string) "message" "boom" m
  | () -> Alcotest.fail "exception swallowed");
  Alcotest.(check int) "fiber accounted dead" 0 (Sched.live_fibers s)

let test_spawn_from_within_fiber () =
  let s = Sched.create () in
  let hits = ref 0 in
  ignore
    (Sched.spawn s (fun () ->
         incr hits;
         ignore (Sched.spawn s (fun () -> incr hits))));
  Sched.run s;
  Alcotest.(check int) "nested fiber ran" 2 !hits

let test_crash_trap_cleared () =
  let s = Sched.create () in
  Sched.set_crash_trap s (fun _ -> true);
  Sched.clear_crash_trap s;
  ignore (Sched.spawn s (fun () -> ()));
  Sched.run s (* must not raise *)

(* --- heap free-space inventory --- *)

let test_fsip_reuses_freed_space () =
  let env = Tenv.make () in
  let hf =
    Oib_storage.Heap_file.create env.Tenv.pool env.Tenv.kv ~table_id:1
      ~page_capacity:128
  in
  let r = Record.make [| "payload-xxxx" |] in
  let insert () =
    let page, slot = Oib_storage.Heap_file.prepare_insert hf r in
    Oib_storage.Heap_page.put
      (Oib_storage.Heap_page.of_payload page.Oib_storage.Page.payload)
      slot r;
    Oib_sim.Latch.release page.Oib_storage.Page.latch X;
    Rid.make ~page:page.Oib_storage.Page.id ~slot
  in
  let rids = List.init 40 (fun _ -> insert ()) in
  let pages_before = Oib_storage.Heap_file.page_count hf in
  (* free a record on the first page and advertise it *)
  let victim = List.hd rids in
  let p = Oib_storage.Heap_file.page hf victim.Rid.page in
  Oib_storage.Heap_page.remove
    (Oib_storage.Heap_page.of_payload p.Oib_storage.Page.payload)
    victim.Rid.slot;
  Oib_storage.Heap_file.note_free hf victim.Rid.page;
  let back = insert () in
  Alcotest.(check int) "lands on the freed page" victim.Rid.page back.Rid.page;
  Alcotest.(check int) "no growth" pages_before
    (Oib_storage.Heap_file.page_count hf)

(* --- page / node binary codecs --- *)

let gen_record =
  QCheck.Gen.(
    map Record.make (array_size (int_range 1 4) (string_size (int_range 0 12))))

let prop_heap_page_codec_roundtrip =
  QCheck.Test.make ~name:"heap page codec roundtrip" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 20) (make gen_record))
    (fun records ->
      let hp = Oib_storage.Heap_page.create ~capacity:100_000 in
      List.iteri
        (fun i r ->
          let s = Oib_storage.Heap_page.reserve hp r in
          Oib_storage.Heap_page.put hp s r;
          (* punch some holes *)
          if i mod 3 = 0 then Oib_storage.Heap_page.remove hp s)
        records;
      let hp' = Oib_storage.Heap_page.decode (Oib_storage.Heap_page.encode hp) in
      Oib_storage.Heap_page.records hp' = Oib_storage.Heap_page.records hp
      && Oib_storage.Heap_page.free_bytes hp' = Oib_storage.Heap_page.free_bytes hp)

let gen_ikey =
  QCheck.Gen.(
    let* kv = string_size (int_range 0 16) in
    let* page = int_bound 1000 in
    let* slot = int_bound 50 in
    return (Ikey.make kv (Rid.make ~page ~slot)))

let prop_leaf_codec_roundtrip =
  QCheck.Test.make ~name:"leaf node codec roundtrip" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 30) (make gen_ikey))
    (fun keys ->
      let keys = List.sort_uniq Ikey.compare keys in
      let l = Bt_node.new_leaf () in
      List.iteri (fun i k -> Bt_node.leaf_insert l k ~pseudo:(i mod 2 = 0)) keys;
      l.Bt_node.next <- 42;
      l.Bt_node.high <- (match keys with [] -> None | k :: _ -> Some k);
      match Bt_node.decode_node (Bt_node.encode_node (Bt_node.Leaf l)) with
      | Bt_node.Leaf l' ->
        l'.Bt_node.n = l.Bt_node.n
        && l'.Bt_node.bytes = l.Bt_node.bytes
        && l'.Bt_node.next = 42
        && l'.Bt_node.high = l.Bt_node.high
        && Array.sub l'.Bt_node.entries 0 l'.Bt_node.n
           = Array.sub l.Bt_node.entries 0 l.Bt_node.n
      | Bt_node.Internal _ -> false)

let prop_internal_codec_roundtrip =
  QCheck.Test.make ~name:"internal node codec roundtrip" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 2 20) (make gen_ikey))
    (fun keys ->
      let seps =
        Array.of_list (List.tl (List.sort_uniq Ikey.compare keys))
      in
      QCheck.assume (Array.length seps >= 1);
      let children = Array.init (Array.length seps + 1) (fun i -> 100 + i) in
      let n = Bt_node.new_internal ~children ~seps in
      match Bt_node.decode_node (Bt_node.encode_node (Bt_node.Internal n)) with
      | Bt_node.Internal n' ->
        n'.Bt_node.nc = n.Bt_node.nc
        && n'.Bt_node.ibytes = n.Bt_node.ibytes
        && Array.sub n'.Bt_node.children 0 n'.Bt_node.nc
           = Array.sub n.Bt_node.children 0 n.Bt_node.nc
        && Array.sub n'.Bt_node.seps 0 (n'.Bt_node.nc - 1)
           = Array.sub n.Bt_node.seps 0 (n.Bt_node.nc - 1)
      | Bt_node.Leaf _ -> false)

let test_codec_rejects_garbage () =
  (match Oib_storage.Heap_page.decode "garbage" with
  | exception Binc.Corrupt _ -> ()
  | _ -> Alcotest.fail "heap codec accepted garbage");
  match Bt_node.decode_node "\xffgarbage" with
  | exception Binc.Corrupt _ -> ()
  | _ -> Alcotest.fail "node codec accepted garbage"

let () =
  Alcotest.run "edge"
    [
      ( "btree",
        [
          Alcotest.test_case "oversized key" `Quick test_oversized_key_rejected;
          Alcotest.test_case "duplicate kv across leaves" `Quick
            test_duplicate_kv_across_leaves;
          Alcotest.test_case "empty and refill" `Quick
            test_empty_all_leaves_then_reuse;
          Alcotest.test_case "deep tree" `Quick test_deep_tree;
          Alcotest.test_case "degenerate range bounds" `Quick
            test_range_degenerate_bounds;
          Alcotest.test_case "cursor random jumps" `Quick
            test_cursor_random_jumps_fall_back;
          Alcotest.test_case "truncate below everything" `Quick
            test_truncate_below_everything;
          Alcotest.test_case "open missing image" `Quick test_open_missing_image;
          Alcotest.test_case "double checkpoint" `Quick
            test_double_checkpoint_then_crash;
          Alcotest.test_case "separator truncation" `Quick
            test_separator_truncation;
          Alcotest.test_case "truncated separators shrink internals" `Quick
            test_truncated_separators_shrink_internals;
        ] );
      ( "sort",
        [
          Alcotest.test_case "empty input" `Quick test_sort_empty_input;
          Alcotest.test_case "single key" `Quick test_sort_single_key;
          Alcotest.test_case "multi-pass merge" `Quick test_multipass_merge;
          Alcotest.test_case "monotone scan positions" `Quick
            test_feed_page_monotone_positions;
          Alcotest.test_case "resume without checkpoint" `Quick
            test_resume_without_checkpoint;
        ] );
      ( "locks",
        [
          Alcotest.test_case "upgrade deadlock" `Quick
            test_upgrade_deadlock_between_readers;
          Alcotest.test_case "IS blocked by X" `Quick test_is_blocked_by_x;
          Alcotest.test_case "instant on own lock" `Quick test_instant_on_own_lock;
          Alcotest.test_case "unlock_all idempotent" `Quick
            test_unlock_all_idempotent;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "exception propagates" `Quick
            test_fiber_exception_propagates;
          Alcotest.test_case "spawn within fiber" `Quick
            test_spawn_from_within_fiber;
          Alcotest.test_case "crash trap cleared" `Quick test_crash_trap_cleared;
        ] );
      ( "heap-fsip",
        [ Alcotest.test_case "reuses freed space" `Quick test_fsip_reuses_freed_space ]
      );
      ( "codecs",
        [ Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage ]
      );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_interleaved_gc_and_ops;
            prop_heap_page_codec_roundtrip;
            prop_leaf_codec_roundtrip;
            prop_internal_codec_roundtrip;
          ] );
    ]
