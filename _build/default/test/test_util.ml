open Oib_util

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in_range rng ~lo:5 ~hi:7 in
    Alcotest.(check bool) "inclusive range" true (v >= 5 && v <= 7)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 10 (fun _ -> Rng.next_int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_shuffle_permutation () =
  let rng = Rng.create 9 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_zipf_skew () =
  let rng = Rng.create 11 in
  let z = Zipf.create ~n:1000 ~theta:0.99 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 20_000 do
    let r = Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (r >= 0 && r < 1000);
    counts.(r) <- counts.(r) + 1
  done;
  (* rank 0 must be much hotter than the median rank *)
  Alcotest.(check bool) "skewed" true (counts.(0) > 10 * max 1 counts.(500))

let test_zipf_uniform_when_theta_zero () =
  let rng = Rng.create 11 in
  let z = Zipf.create ~n:100 ~theta:0.0 in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    counts.(Zipf.sample z rng) <- counts.(Zipf.sample z rng) + 1
  done;
  let mx = Array.fold_left max 0 counts and mn = Array.fold_left min max_int counts in
  Alcotest.(check bool) "roughly uniform" true (float_of_int mx /. float_of_int mn < 2.0)

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.max;
  Alcotest.(check (float 1e-9)) "p50" 3.0 s.p50;
  Alcotest.(check int) "count" 5 s.count

let test_stats_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Stats.summarize []))

let test_percentile_interpolates () =
  let a = [| 0.0; 10.0 |] in
  Alcotest.(check (float 1e-9)) "p50 interpolated" 5.0 (Stats.percentile a 0.5)

let test_rid_order () =
  let a = Rid.make ~page:1 ~slot:5 and b = Rid.make ~page:2 ~slot:0 in
  Alcotest.(check bool) "page dominates" true (Rid.compare a b < 0);
  Alcotest.(check bool) "infinity greatest" true
    (Rid.compare b Rid.infinity < 0);
  Alcotest.(check bool) "minus_infinity least" true
    (Rid.compare Rid.minus_infinity a < 0)

let test_ikey_order () =
  let r0 = Rid.make ~page:0 ~slot:0 and r1 = Rid.make ~page:0 ~slot:1 in
  Alcotest.(check bool) "kv dominates" true
    (Ikey.compare (Ikey.make "a" r1) (Ikey.make "b" r0) < 0);
  Alcotest.(check bool) "rid breaks ties" true
    (Ikey.compare (Ikey.make "a" r0) (Ikey.make "a" r1) < 0);
  Alcotest.(check int) "kv-only comparison ignores rid" 0
    (Ikey.compare_kv (Ikey.make "a" r0) (Ikey.make "a" r1))

let test_record_key_value () =
  let r = Record.make [| "alice"; "smith"; "42" |] in
  Alcotest.(check string) "concatenated" "smith\x1f42" (Record.key_value r [ 1; 2 ]);
  Alcotest.check_raises "bad column"
    (Invalid_argument "Record.key_value: column out of range") (fun () ->
      ignore (Record.key_value r [ 5 ]))

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_table_printer () =
  let t = Table_printer.create ~columns:[ "a"; "bee" ] in
  Table_printer.add_row t [ "1"; "2" ];
  Table_printer.add_sep t;
  Table_printer.add_row t [ "333"; "4" ];
  let s = Table_printer.render ~title:"T" t in
  Alcotest.(check bool) "contains header" true (contains s "bee");
  Alcotest.(check bool) "contains title" true (contains s "== T ==");
  Alcotest.(check bool) "contains cell" true (contains s "333");
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table_printer.add_row: wrong arity") (fun () ->
      Table_printer.add_row t [ "only-one" ])

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      QCheck.assume (xs <> []);
      let s = Stats.summarize xs in
      s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "uniform at theta=0" `Quick
            test_zipf_uniform_when_theta_zero;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "empty raises" `Quick test_stats_empty_raises;
          Alcotest.test_case "percentile interpolation" `Quick
            test_percentile_interpolates;
        ] );
      ( "types",
        [
          Alcotest.test_case "rid order" `Quick test_rid_order;
          Alcotest.test_case "ikey order" `Quick test_ikey_order;
          Alcotest.test_case "record key_value" `Quick test_record_key_value;
        ] );
      ("printer", [ Alcotest.test_case "render" `Quick test_table_printer ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_percentile_monotone ] );
    ]
