open Oib_util
module LR = Oib_wal.Log_record
module Lsn = Oib_wal.Lsn
module Codec = Oib_wal.Log_codec
module LM = Oib_wal.Log_manager

(* --- generators for log records --- *)

let gen_rid =
  QCheck.Gen.(
    map2 (fun p s -> Rid.make ~page:p ~slot:s) (int_bound 1000) (int_bound 100))

let gen_key =
  QCheck.Gen.(
    map2 (fun s rid -> Ikey.make s rid) (string_size (int_range 0 20)) gen_rid)

let gen_record =
  QCheck.Gen.(
    map Record.make (array_size (int_range 1 4) (string_size (int_range 0 10))))

let gen_state = QCheck.Gen.oneofl [ LR.Absent; LR.Present; LR.Pseudo_deleted ]

let gen_heap_op =
  QCheck.Gen.(
    oneof
      [
        map2 (fun rid record -> LR.Heap_insert { rid; record }) gen_rid gen_record;
        map2 (fun rid record -> LR.Heap_delete { rid; record }) gen_rid gen_record;
        map3
          (fun rid old_record new_record ->
            LR.Heap_update { rid; old_record; new_record })
          gen_rid gen_record gen_record;
      ])

let gen_body_base =
  QCheck.Gen.(
    oneof
      [
        oneofl [ LR.Begin; LR.Commit; LR.Abort; LR.End ];
        (let* page = int_bound 500
         and* visible_indexes = int_bound 5
         and* sidefiled = list_size (int_range 0 3) (int_bound 10)
         and* op = gen_heap_op in
         return (LR.Heap { page; visible_indexes; sidefiled; op }));
        (let* redoable = bool
         and* index = int_bound 10
         and* key = gen_key
         and* before = gen_state
         and* after = gen_state in
         return (LR.Index_key { redoable; op = { index; key; before; after } }));
        map2
          (fun index keys -> LR.Index_bulk_insert { index; keys })
          (int_bound 10)
          (list_size (int_range 0 20) gen_key);
        map3
          (fun sidefile insert key -> LR.Sidefile_append { sidefile; insert; key })
          (int_bound 10) bool gen_key;
        map2 (fun index table -> LR.Build_start { index; table }) (int_bound 10)
          (int_bound 10);
        map (fun index -> LR.Build_done { index }) (int_bound 10);
        map2 (fun table page -> LR.Heap_extend { table; page }) (int_bound 10)
          (int_bound 500);
        map (fun table -> LR.Create_table { table }) (int_bound 10);
        (let* index = int_bound 10
         and* table = int_bound 10
         and* key_cols = list_size (int_range 0 3) (int_bound 5)
         and* uniq = bool in
         return (LR.Create_index { index; table; key_cols; uniq }));
        map (fun index -> LR.Drop_index { index }) (int_bound 10);
      ])

let gen_body =
  QCheck.Gen.(
    oneof
      [
        gen_body_base;
        map2
          (fun action undo_next ->
            LR.Clr { action; undo_next = Lsn.of_int undo_next })
          gen_body_base (int_bound 10_000);
      ])

let gen_log_record =
  QCheck.Gen.(
    let* lsn = int_range 1 1_000_000
    and* txn = opt (int_bound 1000)
    and* prev = int_bound 1_000_000
    and* body = gen_body in
    return { LR.lsn = Lsn.of_int lsn; txn; prev_lsn = Lsn.of_int prev; body })

let arb_log_record =
  QCheck.make ~print:(Format.asprintf "%a" LR.pp) gen_log_record

let prop_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip" ~count:500 arb_log_record (fun r ->
      match Codec.decode (Codec.encode r) ~pos:0 with
      | Some (r', _) -> r = r'
      | None -> false)

let prop_stream_roundtrip =
  QCheck.Test.make ~name:"stream roundtrip" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 20) arb_log_record)
    (fun rs ->
      let bytes = String.concat "" (List.map Codec.encode rs) in
      Codec.decode_stream bytes = rs)

let prop_truncated_tail_dropped =
  QCheck.Test.make ~name:"torn tail ignored" ~count:200 arb_log_record (fun r ->
      let bytes = Codec.encode r in
      let torn = String.sub bytes 0 (String.length bytes - 1) in
      Codec.decode_stream torn = [])

let test_corrupt_raises () =
  let r =
    { LR.lsn = Lsn.of_int 1; txn = None; prev_lsn = Lsn.nil; body = LR.Begin }
  in
  let bytes = Bytes.of_string (Codec.encode r) in
  (* stomp the body tag with garbage *)
  Bytes.set bytes (Bytes.length bytes - 1) '\xee';
  match Codec.decode_stream (Bytes.to_string bytes) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "corrupt tag accepted"

(* --- log manager --- *)

let mk () = LM.create (Oib_sim.Metrics.create ())

let test_lsn_monotonic () =
  let lm = mk () in
  let l1 = LM.append lm ~txn:(Some 1) ~prev_lsn:Lsn.nil LR.Begin in
  let l2 = LM.append lm ~txn:(Some 1) ~prev_lsn:l1 LR.Commit in
  Alcotest.(check bool) "increasing" true (Lsn.( < ) l1 l2);
  Alcotest.(check int) "last" (Lsn.to_int l2) (Lsn.to_int (LM.last_lsn lm))

let test_flush_and_crash () =
  let lm = mk () in
  let l1 = LM.append lm ~txn:(Some 1) ~prev_lsn:Lsn.nil LR.Begin in
  let _l2 = LM.append lm ~txn:(Some 1) ~prev_lsn:l1 LR.Commit in
  let l3 = LM.append lm ~txn:(Some 2) ~prev_lsn:Lsn.nil LR.Begin in
  LM.flush lm ~upto:l1;
  let survivor = LM.crash lm in
  let records = LM.durable_records survivor in
  Alcotest.(check int) "only flushed survive" 1 (List.length records);
  Alcotest.(check bool) "it is l1" true
    (match records with [ r ] -> Lsn.equal r.LR.lsn l1 | _ -> false);
  (* LSNs must not be reused after restart *)
  let l4 = LM.append survivor ~txn:(Some 3) ~prev_lsn:Lsn.nil LR.Begin in
  Alcotest.(check bool) "no reuse" true (Lsn.( > ) l4 l1);
  ignore l3

let test_flush_is_prefix () =
  let lm = mk () in
  let lsns =
    List.init 10 (fun i ->
        LM.append lm ~txn:(Some i) ~prev_lsn:Lsn.nil LR.Begin)
  in
  LM.flush lm ~upto:(List.nth lsns 4);
  let survivor = LM.crash lm in
  let got = List.map (fun r -> r.LR.lsn) (LM.durable_records survivor) in
  Alcotest.(check (list int))
    "first five, in order"
    (List.map Lsn.to_int (List.filteri (fun i _ -> i < 5) lsns))
    (List.map Lsn.to_int got)

let test_flush_all_and_record_at () =
  let lm = mk () in
  let l1 = LM.append lm ~txn:(Some 1) ~prev_lsn:Lsn.nil LR.Begin in
  LM.flush_all lm;
  Alcotest.(check int) "flushed to last" (Lsn.to_int l1)
    (Lsn.to_int (LM.flushed_lsn lm));
  (match LM.record_at lm l1 with
  | Some r -> Alcotest.(check bool) "body" true (r.LR.body = LR.Begin)
  | None -> Alcotest.fail "record_at miss");
  Alcotest.(check bool) "missing lsn" true (LM.record_at lm (Lsn.of_int 999) = None)

let test_record_at_after_crash () =
  let lm = mk () in
  let l1 = LM.append lm ~txn:(Some 1) ~prev_lsn:Lsn.nil LR.Begin in
  LM.flush_all lm;
  let survivor = LM.crash lm in
  match LM.record_at survivor l1 with
  | Some r -> Alcotest.(check bool) "rebuilt index" true (r.LR.body = LR.Begin)
  | None -> Alcotest.fail "record_at lost after crash"

let test_is_redoable_undoable () =
  let key = Ikey.make "k" (Rid.make ~page:0 ~slot:0) in
  let ixop r =
    LR.Index_key
      { redoable = r; op = { index = 0; key; before = LR.Absent; after = LR.Present } }
  in
  Alcotest.(check bool) "undo-only not redoable" false (LR.is_redoable (ixop false));
  Alcotest.(check bool) "normal index op redoable" true (LR.is_redoable (ixop true));
  Alcotest.(check bool) "undo-only is undoable" true (LR.is_undoable (ixop false));
  Alcotest.(check bool) "clr not undoable" false
    (LR.is_undoable (LR.Clr { action = ixop true; undo_next = Lsn.nil }));
  Alcotest.(check bool) "sidefile append not undoable" false
    (LR.is_undoable (LR.Sidefile_append { sidefile = 0; insert = true; key }))

let () =
  Alcotest.run "wal"
    [
      ( "codec",
        Alcotest.test_case "corrupt raises" `Quick test_corrupt_raises
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_roundtrip; prop_stream_roundtrip; prop_truncated_tail_dropped ]
      );
      ( "manager",
        [
          Alcotest.test_case "lsn monotonic" `Quick test_lsn_monotonic;
          Alcotest.test_case "flush and crash" `Quick test_flush_and_crash;
          Alcotest.test_case "flush is prefix" `Quick test_flush_is_prefix;
          Alcotest.test_case "flush_all / record_at" `Quick
            test_flush_all_and_record_at;
          Alcotest.test_case "record_at after crash" `Quick
            test_record_at_after_crash;
        ] );
      ( "classification",
        [ Alcotest.test_case "redoable/undoable" `Quick test_is_redoable_undoable ]
      );
    ]
