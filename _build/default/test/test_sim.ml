module Sched = Oib_sim.Sched
module Latch = Oib_sim.Latch
module Metrics = Oib_sim.Metrics

let test_fibers_complete () =
  let s = Sched.create ~seed:1 () in
  let done_count = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Sched.spawn s (fun () ->
           Sched.yield s;
           incr done_count))
  done;
  Sched.run s;
  Alcotest.(check int) "all ran" 10 !done_count;
  Alcotest.(check int) "no live fibers" 0 (Sched.live_fibers s)

let test_interleaving_deterministic () =
  let trace seed =
    let s = Sched.create ~seed () in
    let log = ref [] in
    for f = 0 to 2 do
      ignore
        (Sched.spawn s (fun () ->
             for i = 0 to 4 do
               log := (f, i) :: !log;
               Sched.yield s
             done))
    done;
    Sched.run s;
    List.rev !log
  in
  Alcotest.(check bool) "same seed, same trace" true (trace 5 = trace 5);
  Alcotest.(check bool) "different seed, different trace" true
    (trace 5 <> trace 6)

let test_yield_outside_fiber_noop () =
  let s = Sched.create () in
  Sched.yield s (* must not raise *)

let test_deadlock_detected () =
  let s = Sched.create () in
  let m = Metrics.create () in
  let a = Latch.create ~name:"a" s m and b = Latch.create ~name:"b" s m in
  ignore
    (Sched.spawn s ~name:"f1" (fun () ->
         Latch.acquire a X;
         Sched.yield s;
         Latch.acquire b X;
         Latch.release b X;
         Latch.release a X));
  ignore
    (Sched.spawn s ~name:"f2" (fun () ->
         Latch.acquire b X;
         Sched.yield s;
         Latch.acquire a X;
         Latch.release a X;
         Latch.release b X));
  (match Sched.run s with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sched.Deadlock _ -> ())

let test_crash_trap () =
  let s = Sched.create () in
  let progress = ref 0 in
  ignore
    (Sched.spawn s (fun () ->
         for _ = 1 to 100 do
           incr progress;
           Sched.yield s
         done));
  Sched.set_crash_trap s (fun steps -> steps >= 10);
  (match Sched.run s with
  | () -> Alcotest.fail "expected Crashed"
  | exception Sched.Crashed -> ());
  Alcotest.(check bool) "partial progress" true (!progress > 0 && !progress < 100)

let test_request_crash () =
  let s = Sched.create () in
  ignore (Sched.spawn s (fun () -> Sched.request_crash s));
  ignore (Sched.spawn s (fun () -> ()));
  match Sched.run s with
  | () -> Alcotest.fail "expected Crashed"
  | exception Sched.Crashed -> ()

let test_cond_signal () =
  let s = Sched.create () in
  let c = Sched.Cond.create s in
  let woke = ref false in
  ignore
    (Sched.spawn s ~name:"waiter" (fun () ->
         Sched.Cond.wait c;
         woke := true));
  ignore
    (Sched.spawn s ~name:"signaller" (fun () ->
         while Sched.Cond.waiters c < 1 do
           Sched.yield s
         done;
         Sched.Cond.signal c));
  Sched.run s;
  Alcotest.(check bool) "woken" true !woke

let test_cond_broadcast () =
  let s = Sched.create () in
  let c = Sched.Cond.create s in
  let woke = ref 0 in
  for _ = 1 to 5 do
    ignore
      (Sched.spawn s (fun () ->
           Sched.Cond.wait c;
           incr woke))
  done;
  ignore
    (Sched.spawn s (fun () ->
         while Sched.Cond.waiters c < 5 do
           Sched.yield s
         done;
         Sched.Cond.broadcast c));
  Sched.run s;
  Alcotest.(check int) "all woken" 5 !woke

(* --- latches --- *)

let test_latch_shared_readers () =
  let s = Sched.create () in
  let m = Metrics.create () in
  let l = Latch.create s m in
  Latch.acquire l S;
  Latch.acquire l S;
  Alcotest.(check int) "two S holders" 2 (Latch.holders l);
  Alcotest.(check bool) "X refused" false (Latch.try_acquire l X);
  Latch.release l S;
  Latch.release l S;
  Alcotest.(check bool) "X after release" true (Latch.try_acquire l X);
  Latch.release l X

let test_latch_blocks_writer_until_readers_leave () =
  let s = Sched.create () in
  let m = Metrics.create () in
  let l = Latch.create s m in
  let order = ref [] in
  ignore
    (Sched.spawn s ~name:"reader" (fun () ->
         Latch.acquire l S;
         order := "r-in" :: !order;
         Sched.yield s;
         Sched.yield s;
         order := "r-out" :: !order;
         Latch.release l S));
  ignore
    (Sched.spawn s ~name:"writer" (fun () ->
         Sched.yield s;
         Latch.acquire l X;
         order := "w-in" :: !order;
         Latch.release l X));
  Sched.run s;
  let order = List.rev !order in
  Alcotest.(check (list string)) "writer waits for reader"
    [ "r-in"; "r-out"; "w-in" ] order

let test_latch_fifo_no_starvation () =
  (* With an X waiter queued, later S requests must not jump the queue. *)
  let s = Sched.create ~seed:3 () in
  let m = Metrics.create () in
  let l = Latch.create s m in
  let order = ref [] in
  ignore
    (Sched.spawn s ~name:"holder" (fun () ->
         Latch.acquire l S;
         Sched.yield s;
         Sched.yield s;
         Sched.yield s;
         Latch.release l S));
  ignore
    (Sched.spawn s ~name:"writer" (fun () ->
         Sched.yield s;
         Latch.acquire l X;
         order := "w" :: !order;
         Latch.release l X));
  ignore
    (Sched.spawn s ~name:"late-reader" (fun () ->
         Sched.yield s;
         Sched.yield s;
         Latch.acquire l S;
         order := "r" :: !order;
         Latch.release l S));
  Sched.run s;
  Alcotest.(check (list string)) "writer first" [ "w"; "r" ] (List.rev !order)

let test_with_latch_releases_on_exception () =
  let s = Sched.create () in
  let m = Metrics.create () in
  let l = Latch.create s m in
  (try Latch.with_latch l X (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "released" true (Latch.is_free l)

let test_metrics_diff () =
  let m = Metrics.create () in
  m.page_reads <- 5;
  let before = Metrics.snapshot m in
  m.page_reads <- 9;
  m.log_records <- 3;
  let d = Metrics.diff ~after:(Metrics.snapshot m) ~before in
  Alcotest.(check int) "page_reads delta" 4 d.page_reads;
  Alcotest.(check int) "log_records delta" 3 d.log_records

let prop_scheduler_deterministic =
  QCheck.Test.make ~name:"trace depends only on seed" ~count:30 QCheck.small_nat
    (fun seed ->
      let run () =
        let s = Sched.create ~seed () in
        let log = ref [] in
        for f = 0 to 3 do
          ignore
            (Sched.spawn s (fun () ->
                 for i = 0 to 3 do
                   log := ((f * 10) + i) :: !log;
                   Sched.yield s
                 done))
        done;
        Sched.run s;
        !log
      in
      run () = run ())

let () =
  Alcotest.run "sim"
    [
      ( "sched",
        [
          Alcotest.test_case "fibers complete" `Quick test_fibers_complete;
          Alcotest.test_case "deterministic interleaving" `Quick
            test_interleaving_deterministic;
          Alcotest.test_case "yield outside fiber" `Quick
            test_yield_outside_fiber_noop;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "crash trap" `Quick test_crash_trap;
          Alcotest.test_case "request crash" `Quick test_request_crash;
        ] );
      ( "cond",
        [
          Alcotest.test_case "signal" `Quick test_cond_signal;
          Alcotest.test_case "broadcast" `Quick test_cond_broadcast;
        ] );
      ( "latch",
        [
          Alcotest.test_case "shared readers" `Quick test_latch_shared_readers;
          Alcotest.test_case "writer waits" `Quick
            test_latch_blocks_writer_until_readers_leave;
          Alcotest.test_case "fifo fairness" `Quick test_latch_fifo_no_starvation;
          Alcotest.test_case "with_latch exception safe" `Quick
            test_with_latch_releases_on_exception;
        ] );
      ("metrics", [ Alcotest.test_case "diff" `Quick test_metrics_diff ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_scheduler_deterministic ] );
    ]
