(* The workload driver (determinism, registry consistency) and — crucially
   — negative tests of the consistency oracle: a checker that cannot detect
   planted corruption proves nothing about the algorithms it blesses. *)

open Oib_core
open Oib_util
module Sched = Oib_sim.Sched
module Driver = Oib_workload.Driver
module LR = Oib_wal.Log_record

let setup ?(seed = 17) () =
  let ctx = Engine.create ~seed ~page_capacity:512 () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  ctx

(* --- driver --- *)

let test_populate_counts () =
  let ctx = setup () in
  let rids = Driver.populate ctx ~table:1 ~rows:123 ~seed:1 in
  Alcotest.(check int) "rids returned" 123 (Array.length rids);
  Alcotest.(check int) "records stored" 123
    (Oib_storage.Heap_file.record_count (Catalog.table ctx.Ctx.catalog 1).heap)

let run_workload seed =
  let ctx = setup ~seed () in
  let _ = Driver.populate ctx ~table:1 ~rows:100 ~seed in
  let stats =
    Driver.spawn_workers ctx
      { Driver.default with seed; workers = 3; txns_per_worker = 20 }
      ~table:1
  in
  Sched.run ctx.Ctx.sched;
  (ctx, !stats)

let test_driver_deterministic () =
  let _, s1 = run_workload 5 in
  let _, s2 = run_workload 5 in
  Alcotest.(check bool) "same seed, same outcome" true (s1 = s2);
  let _, s3 = run_workload 6 in
  Alcotest.(check bool) "different seed, different outcome" true (s1 <> s3)

let test_driver_registry_consistent () =
  (* after the run, live_rids must be exactly the committed records *)
  let ctx, stats = run_workload 9 in
  Alcotest.(check bool) "some commits" true (stats.committed > 20);
  let from_heap = List.length (Driver.live_rids ctx ~table:1) in
  Alcotest.(check int) "heap record count agrees" from_heap
    (Oib_storage.Heap_file.record_count (Catalog.table ctx.Ctx.catalog 1).heap)

let test_value_distribution_skewed () =
  let cfg = { Driver.default with theta = 0.9; key_space = 100 } in
  let rng = Rng.create 4 in
  let counts = Hashtbl.create 64 in
  for _ = 1 to 5000 do
    let v = Driver.value_for cfg rng in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let max_count = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  Alcotest.(check bool) "hot key dominates" true (max_count > 500)

(* --- the oracle detects planted corruption --- *)

let with_index () =
  let ctx = setup () in
  (match
     Engine.run_txn ctx (fun txn ->
         for i = 0 to 49 do
           ignore
             (Table_ops.insert ctx txn ~table:1
                (Record.make [| Printf.sprintf "k%03d" i; "p" |]))
         done)
   with
  | Ok () -> ()
  | Error _ -> assert false);
  ignore
    (Sched.spawn ctx.Ctx.sched (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  assert (Engine.consistency_errors ctx = []);
  (ctx, (Catalog.index ctx.Ctx.catalog 10).tree)

let contains sub s =
  let n = String.length sub and h = String.length s in
  let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_oracle_catches_spurious () =
  let ctx, tree = with_index () in
  ignore
    (Oib_btree.Btree.set_state tree
       (Ikey.make "ghost" (Rid.make ~page:0 ~slot:99))
       LR.Present);
  match Engine.consistency_errors ctx with
  | [] -> Alcotest.fail "spurious entry went unnoticed"
  | e :: _ -> Alcotest.(check bool) "names the ghost" true (contains "ghost" e)

let test_oracle_catches_missing () =
  let ctx, tree = with_index () in
  ignore
    (Oib_btree.Btree.set_state tree
       (Ikey.make "k010" (Rid.make ~page:0 ~slot:10))
       LR.Absent);
  match Engine.consistency_errors ctx with
  | [] -> Alcotest.fail "missing entry went unnoticed"
  | e :: _ -> Alcotest.(check bool) "reports missing" true (contains "missing" e)

let test_oracle_catches_shadowed_by_tombstone () =
  (* a live record whose entry is wrongly pseudo-deleted = missing *)
  let ctx, tree = with_index () in
  ignore
    (Oib_btree.Btree.set_state tree
       (Ikey.make "k011" (Rid.make ~page:0 ~slot:11))
       LR.Pseudo_deleted);
  Alcotest.(check bool) "detected" true (Engine.consistency_errors ctx <> [])

let test_oracle_catches_unique_violation () =
  let ctx = setup () in
  (match
     Engine.run_txn ctx (fun txn ->
         ignore (Table_ops.insert ctx txn ~table:1 (Record.make [| "a"; "1" |]));
         ignore (Table_ops.insert ctx txn ~table:1 (Record.make [| "b"; "2" |])))
   with
  | Ok () -> ()
  | Error _ -> assert false);
  ignore
    (Sched.spawn ctx.Ctx.sched (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = true }));
  Sched.run ctx.Ctx.sched;
  assert (Engine.consistency_errors ctx = []);
  (* plant a second live entry with the key value of an existing record;
     also plant the matching heap record so only uniqueness is violated *)
  let tree = (Catalog.index ctx.Ctx.catalog 10).tree in
  (match
     Engine.run_txn ctx (fun txn ->
         ignore (Table_ops.insert ctx txn ~table:1 (Record.make [| "c"; "3" |])))
   with
  | Ok () -> ()
  | Error _ -> assert false);
  (* rename c's entry to collide with a's key value *)
  let centry =
    List.find
      (fun ((k : Ikey.t), _) -> k.kv = "c")
      (Oib_btree.Btree.range tree ())
  in
  ignore (Oib_btree.Btree.set_state tree (fst centry) LR.Absent);
  ignore
    (Oib_btree.Btree.set_state tree
       (Ikey.make "a" (fst centry).Ikey.rid)
       LR.Present);
  Alcotest.(check bool) "unique violation reported" true
    (List.exists (contains "unique") (Engine.consistency_errors ctx))

let test_oracle_catches_structural_damage () =
  let ctx, tree = with_index () in
  (* structural damage: stomp a leaf's high key through the node API *)
  let rec find_leaf id =
    match Oib_btree.Btree.node_at tree id with
    | Oib_btree.Bt_node.Leaf _ -> id
    | Oib_btree.Bt_node.Internal n -> find_leaf n.children.(0)
  in
  let leaf_id = find_leaf (Oib_btree.Btree.root_page_id tree) in
  (match Oib_btree.Btree.node_at tree leaf_id with
  | Oib_btree.Bt_node.Leaf l ->
    l.high <- Some (Ikey.make "" (Rid.make ~page:0 ~slot:0))
  | Oib_btree.Bt_node.Internal _ -> assert false);
  Alcotest.(check bool) "structural error reported" true
    (List.exists (contains "structural") (Engine.consistency_errors ctx))

let () =
  Alcotest.run "workload"
    [
      ( "driver",
        [
          Alcotest.test_case "populate counts" `Quick test_populate_counts;
          Alcotest.test_case "deterministic" `Quick test_driver_deterministic;
          Alcotest.test_case "registry consistent" `Quick
            test_driver_registry_consistent;
          Alcotest.test_case "zipf skew" `Quick test_value_distribution_skewed;
        ] );
      ( "oracle-negative",
        [
          Alcotest.test_case "catches spurious entry" `Quick
            test_oracle_catches_spurious;
          Alcotest.test_case "catches missing entry" `Quick
            test_oracle_catches_missing;
          Alcotest.test_case "catches wrong tombstone" `Quick
            test_oracle_catches_shadowed_by_tombstone;
          Alcotest.test_case "catches unique violation" `Quick
            test_oracle_catches_unique_violation;
          Alcotest.test_case "catches structural damage" `Quick
            test_oracle_catches_structural_damage;
        ] );
    ]
