(* Unit tests for the restart passes themselves (the engine-level behaviour
   is covered by test_core / test_restart). *)

open Oib_util
open Oib_testsupport
module LR = Oib_wal.Log_record
module Lsn = Oib_wal.Lsn
module LM = Oib_wal.Log_manager
module Restart = Oib_recovery.Restart

let heap_insert page slot v =
  LR.Heap
    {
      page;
      visible_indexes = 0;
      sidefiled = [];
      op = LR.Heap_insert { rid = Rid.make ~page ~slot; record = Record.make [| v |] };
    }

let heap_delete page slot v =
  LR.Heap
    {
      page;
      visible_indexes = 0;
      sidefiled = [];
      op = LR.Heap_delete { rid = Rid.make ~page ~slot; record = Record.make [| v |] };
    }

(* --- analysis --- *)

let test_analysis_classifies () =
  let env = Tenv.make () in
  let log = env.Tenv.log in
  let a1 = LM.append log ~txn:(Some 1) ~prev_lsn:Lsn.nil LR.Begin in
  let a2 = LM.append log ~txn:(Some 1) ~prev_lsn:a1 LR.Commit in
  let _ = LM.append log ~txn:(Some 1) ~prev_lsn:a2 LR.End in
  let b1 = LM.append log ~txn:(Some 2) ~prev_lsn:Lsn.nil LR.Begin in
  let b2 = LM.append log ~txn:(Some 2) ~prev_lsn:b1 (heap_insert 5 0 "x") in
  let _ = LM.append log ~txn:None ~prev_lsn:Lsn.nil (LR.Build_start { index = 9; table = 1 }) in
  let _ = LM.append log ~txn:None ~prev_lsn:Lsn.nil (LR.Build_start { index = 8; table = 1 }) in
  let _ = LM.append log ~txn:None ~prev_lsn:Lsn.nil (LR.Build_done { index = 8 }) in
  LM.flush_all log;
  let a = Restart.analyze (LM.crash log) in
  Alcotest.(check (list int)) "winners" [ 1 ] a.winners;
  Alcotest.(check (list (pair int int))) "losers at their last lsn"
    [ (2, Lsn.to_int b2) ]
    (List.map (fun (id, l) -> (id, Lsn.to_int l)) a.losers);
  Alcotest.(check (list (pair int int))) "build 9 in progress" [ (9, 1) ]
    a.builds_in_progress;
  Alcotest.(check (list int)) "build 8 done" [ 8 ] a.builds_done;
  Alcotest.(check int) "max txn id" 2 a.max_txn_id

let test_analysis_completed_rollback_not_loser () =
  let env = Tenv.make () in
  let log = env.Tenv.log in
  let a1 = LM.append log ~txn:(Some 4) ~prev_lsn:Lsn.nil LR.Begin in
  let a2 = LM.append log ~txn:(Some 4) ~prev_lsn:a1 LR.Abort in
  let _ = LM.append log ~txn:(Some 4) ~prev_lsn:a2 LR.End in
  LM.flush_all log;
  let a = Restart.analyze (LM.crash log) in
  Alcotest.(check int) "no losers" 0 (List.length a.losers);
  Alcotest.(check int) "no winners either" 0 (List.length a.winners)

(* --- heap redo --- *)

let test_redo_rebuilds_lost_page () =
  let env = Tenv.make () in
  let log = env.Tenv.log in
  (* a page that never reached the stable store is rebuilt from the log *)
  let l1 = LM.append log ~txn:(Some 1) ~prev_lsn:Lsn.nil (heap_insert 3 0 "a") in
  let l2 = LM.append log ~txn:(Some 1) ~prev_lsn:l1 (heap_insert 3 1 "b") in
  let _ = LM.append log ~txn:(Some 1) ~prev_lsn:l2 (heap_delete 3 0 "a") in
  LM.flush_all log;
  let env' = Tenv.crash env in
  Restart.redo_heap env'.Tenv.log env'.Tenv.pool ~page_capacity:256;
  let page = Oib_storage.Buffer_pool.get env'.Tenv.pool 3 in
  let hp = Oib_storage.Heap_page.of_payload page.Oib_storage.Page.payload in
  Alcotest.(check int) "one record" 1 (Oib_storage.Heap_page.record_count hp);
  Alcotest.(check (option (of_pp Record.pp))) "slot 1 content"
    (Some (Record.make [| "b" |]))
    (Oib_storage.Heap_page.get hp 1)

let test_redo_page_lsn_idempotence () =
  let env = Tenv.make () in
  let log = env.Tenv.log in
  let l1 = LM.append log ~txn:(Some 1) ~prev_lsn:Lsn.nil (heap_insert 3 0 "a") in
  LM.flush_all log;
  (* apply + flush the page so its page_LSN covers the record *)
  let p =
    Oib_storage.Buffer_pool.install env.Tenv.pool 3
      ~payload:(Oib_storage.Heap_page.Heap (Oib_storage.Heap_page.create ~capacity:256))
      ~copy_payload:Oib_storage.Heap_page.copy_payload
  in
  Oib_storage.Heap_page.put
    (Oib_storage.Heap_page.of_payload p.Oib_storage.Page.payload)
    0 (Record.make [| "a" |]);
  Oib_storage.Page.set_lsn p l1;
  Oib_storage.Buffer_pool.flush_page env.Tenv.pool p;
  let env' = Tenv.crash env in
  Restart.redo_heap env'.Tenv.log env'.Tenv.pool ~page_capacity:256;
  let page = Oib_storage.Buffer_pool.get env'.Tenv.pool 3 in
  let hp = Oib_storage.Heap_page.of_payload page.Oib_storage.Page.payload in
  Alcotest.(check int) "no double apply" 1 (Oib_storage.Heap_page.record_count hp)

(* --- index replay --- *)

let key i = Ikey.make (Printf.sprintf "k%03d" i) (Rid.make ~page:0 ~slot:i)

let test_replay_from_image () =
  let env = Tenv.make () in
  let log = env.Tenv.log in
  let tree =
    Oib_btree.Btree.create env.Tenv.pool env.Tenv.kv ~index_id:5
      ~page_capacity:256 ~unique:false
  in
  (* pre-image state *)
  for i = 0 to 9 do
    ignore (Oib_btree.Btree.set_state tree (key i) LR.Present)
  done;
  LM.flush_all log;
  Oib_btree.Btree.checkpoint_image tree ~lsn:(LM.flushed_lsn log);
  (* post-image, logged operations *)
  let ops =
    [
      (key 3, LR.Pseudo_deleted);
      (key 10, LR.Present);
      (key 3, LR.Absent);
      (key 11, LR.Pseudo_deleted);
    ]
  in
  let prev = ref Lsn.nil in
  List.iter
    (fun (k, after) ->
      ignore (Oib_btree.Btree.set_state tree k after);
      prev :=
        LM.append log ~txn:(Some 1) ~prev_lsn:!prev
          (LR.Index_key
             { redoable = true; op = { index = 5; key = k; before = LR.Absent; after } }))
    ops;
  (* an undo-only record must NOT be replayed *)
  let _ =
    LM.append log ~txn:(Some 1) ~prev_lsn:!prev
      (LR.Index_key
         {
           redoable = false;
           op = { index = 5; key = key 50; before = LR.Absent; after = LR.Present };
         })
  in
  (* an op for another index must not leak in *)
  let _ =
    LM.append log ~txn:(Some 2) ~prev_lsn:Lsn.nil
      (LR.Index_key
         {
           redoable = true;
           op = { index = 6; key = key 60; before = LR.Absent; after = LR.Present };
         })
  in
  LM.flush_all log;
  let env' = Tenv.crash env in
  let tree' = Oib_btree.Btree.open_from_image env'.Tenv.pool env'.Tenv.kv ~index_id:5 in
  Restart.replay_index env'.Tenv.log tree';
  Alcotest.(check bool) "k3 gone" true
    (Oib_btree.Btree.read_state tree' (key 3) = LR.Absent);
  Alcotest.(check bool) "k10 present" true
    (Oib_btree.Btree.read_state tree' (key 10) = LR.Present);
  Alcotest.(check bool) "k11 tombstone" true
    (Oib_btree.Btree.read_state tree' (key 11) = LR.Pseudo_deleted);
  Alcotest.(check bool) "undo-only skipped" true
    (Oib_btree.Btree.read_state tree' (key 50) = LR.Absent);
  Alcotest.(check bool) "other index ignored" true
    (Oib_btree.Btree.read_state tree' (key 60) = LR.Absent);
  Alcotest.(check (list string)) "structure" [] (Oib_btree.Bt_check.check tree')

let test_replay_bulk_inserts () =
  let env = Tenv.make () in
  let log = env.Tenv.log in
  let tree =
    Oib_btree.Btree.create env.Tenv.pool env.Tenv.kv ~index_id:5
      ~page_capacity:256 ~unique:false
  in
  let keys = List.init 30 key in
  List.iter (fun k -> ignore (Oib_btree.Btree.set_state tree k LR.Present)) keys;
  let _ =
    LM.append log ~txn:None ~prev_lsn:Lsn.nil (LR.Index_bulk_insert { index = 5; keys })
  in
  LM.flush_all log;
  let env' = Tenv.crash env in
  let tree' = Oib_btree.Btree.open_from_image env'.Tenv.pool env'.Tenv.kv ~index_id:5 in
  Restart.replay_index env'.Tenv.log tree';
  Alcotest.(check int) "all bulk keys replayed" 30
    (Oib_btree.Btree.present_count tree')

let prop_replay_equals_live =
  QCheck.Test.make
    ~name:"replaying the logged suffix reproduces the live tree" ~count:30
    QCheck.(pair small_nat (int_bound 3))
    (fun (seed, ckpt_quarter) ->
      let env = Tenv.make ~seed () in
      let log = env.Tenv.log in
      let tree =
        Oib_btree.Btree.create env.Tenv.pool env.Tenv.kv ~index_id:5
          ~page_capacity:200 ~unique:false
      in
      let rng = Rng.create seed in
      let prev = ref Lsn.nil in
      for step = 0 to 199 do
        let k = key (Rng.int rng 40) in
        let after =
          match Rng.int rng 3 with
          | 0 -> LR.Present
          | 1 -> LR.Pseudo_deleted
          | _ -> LR.Absent
        in
        let before = Oib_btree.Btree.set_state tree k after in
        if before <> after then
          prev :=
            LM.append log ~txn:(Some 1) ~prev_lsn:!prev
              (LR.Index_key
                 { redoable = true; op = { index = 5; key = k; before; after } });
        if step = 50 * ckpt_quarter then begin
          LM.flush_all log;
          Oib_btree.Btree.checkpoint_image tree ~lsn:(LM.flushed_lsn log)
        end
      done;
      let live = Oib_btree.Bt_check.collect_entries tree in
      LM.flush_all log;
      let env' = Tenv.crash env in
      let tree' =
        Oib_btree.Btree.open_from_image env'.Tenv.pool env'.Tenv.kv ~index_id:5
      in
      Restart.replay_index env'.Tenv.log tree';
      Oib_btree.Bt_check.check tree' = []
      && Oib_btree.Bt_check.collect_entries tree' = live)

let () =
  Alcotest.run "recovery"
    [
      ( "analysis",
        [
          Alcotest.test_case "classifies" `Quick test_analysis_classifies;
          Alcotest.test_case "completed rollback not loser" `Quick
            test_analysis_completed_rollback_not_loser;
        ] );
      ( "heap-redo",
        [
          Alcotest.test_case "rebuilds lost page" `Quick test_redo_rebuilds_lost_page;
          Alcotest.test_case "page-lsn idempotence" `Quick
            test_redo_page_lsn_idempotence;
        ] );
      ( "index-replay",
        [
          Alcotest.test_case "from image" `Quick test_replay_from_image;
          Alcotest.test_case "bulk inserts" `Quick test_replay_bulk_inserts;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_replay_equals_live ] );
    ]
