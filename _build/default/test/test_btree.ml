open Oib_util
open Oib_btree
open Oib_testsupport
module LR = Oib_wal.Log_record

let mk_tree ?(capacity = 256) ?(unique = false) env ~id =
  Btree.create env.Tenv.pool env.Tenv.kv ~index_id:id ~page_capacity:capacity
    ~unique

let check_healthy t =
  match Bt_check.check t with
  | [] -> ()
  | errs -> Alcotest.failf "tree invariants violated: %s" (String.concat "; " errs)

let state = Alcotest.testable
    (fun ppf s -> LR.pp_key_state ppf s)
    (fun a b -> a = b)

(* --- basic operations --- *)

let test_insert_ascending () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:1 in
  for i = 0 to 499 do
    ignore (Btree.set_state t (Tenv.keyn i) LR.Present)
  done;
  check_healthy t;
  Alcotest.(check int) "count" 500 (Btree.entry_count t);
  Alcotest.(check bool) "sorted" true (Bt_check.entries_sorted t);
  Alcotest.(check state) "probe" LR.Present (Btree.read_state t (Tenv.keyn 250));
  Alcotest.(check state) "missing" LR.Absent (Btree.read_state t (Tenv.keyn 1000))

let test_insert_descending () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:1 in
  for i = 499 downto 0 do
    ignore (Btree.set_state t (Tenv.keyn i) LR.Present)
  done;
  check_healthy t;
  Alcotest.(check int) "count" 500 (Btree.entry_count t)

let test_set_state_transitions () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:1 in
  let k = Tenv.keyn 7 in
  Alcotest.(check state) "absent->present" LR.Absent
    (Btree.set_state t k LR.Present);
  Alcotest.(check state) "present->pseudo" LR.Present
    (Btree.set_state t k LR.Pseudo_deleted);
  Alcotest.(check state) "probe pseudo" LR.Pseudo_deleted (Btree.read_state t k);
  Alcotest.(check state) "pseudo->present (reactivate)" LR.Pseudo_deleted
    (Btree.set_state t k LR.Present);
  Alcotest.(check state) "present->absent" LR.Present
    (Btree.set_state t k LR.Absent);
  Alcotest.(check state) "gone" LR.Absent (Btree.read_state t k);
  Alcotest.(check state) "absent->pseudo (tombstone insert)" LR.Absent
    (Btree.set_state t k LR.Pseudo_deleted);
  Alcotest.(check int) "one entry" 1 (Btree.entry_count t);
  Alcotest.(check int) "zero present" 0 (Btree.present_count t);
  check_healthy t

let test_insert_if_absent () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:1 in
  let k = Tenv.keyn 1 in
  (match Btree.insert_if_absent t k with
  | `Inserted -> ()
  | `Rejected _ -> Alcotest.fail "fresh insert rejected");
  (match Btree.insert_if_absent t k with
  | `Rejected LR.Present -> ()
  | _ -> Alcotest.fail "duplicate not rejected");
  ignore (Btree.set_state t k LR.Pseudo_deleted);
  (match Btree.insert_if_absent t k with
  | `Rejected LR.Pseudo_deleted -> ()
  | _ -> Alcotest.fail "tombstone did not reject IB insert");
  check_healthy t

let test_find_kv_duplicates () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:1 in
  (* nonunique index: same key value, many RIDs, spanning page splits *)
  for i = 0 to 99 do
    ignore
      (Btree.set_state t (Ikey.make "dup" (Rid.make ~page:i ~slot:0)) LR.Present)
  done;
  for i = 0 to 49 do
    ignore (Btree.set_state t (Tenv.keyn i) LR.Present)
  done;
  let found = Btree.find_kv t "dup" in
  Alcotest.(check int) "all duplicates found" 100 (List.length found);
  Alcotest.(check int) "none for missing kv" 0
    (List.length (Btree.find_kv t "nope"));
  check_healthy t

(* --- randomized model check --- *)

let random_ops_agree seed =
  let env = Tenv.make ~seed () in
  let t = mk_tree ~capacity:200 env ~id:1 in
  let rng = Rng.create seed in
  let model : (string * int, LR.key_state) Hashtbl.t = Hashtbl.create 64 in
  let keys =
    Array.init 120 (fun i ->
        Ikey.make (Printf.sprintf "key%03d" (i mod 60)) (Rid.make ~page:(i / 60) ~slot:0))
  in
  for _ = 1 to 2000 do
    let k = Rng.pick rng keys in
    let mk = (k.Ikey.kv, k.Ikey.rid.Rid.page) in
    let target =
      match Rng.int rng 3 with
      | 0 -> LR.Present
      | 1 -> LR.Pseudo_deleted
      | _ -> LR.Absent
    in
    let before = Btree.set_state t k target in
    let model_before =
      Option.value ~default:LR.Absent (Hashtbl.find_opt model mk)
    in
    if before <> model_before then failwith "model divergence on before-state";
    if target = LR.Absent then Hashtbl.remove model mk
    else Hashtbl.replace model mk target
  done;
  (match Bt_check.check t with [] -> () | e -> failwith (String.concat ";" e));
  let tree_entries = Bt_check.collect_entries t in
  List.length tree_entries = Hashtbl.length model
  && List.for_all
       (fun (k, pseudo) ->
         let st = if pseudo then LR.Pseudo_deleted else LR.Present in
         Hashtbl.find_opt model (k.Ikey.kv, k.Ikey.rid.Rid.page) = Some st)
       tree_entries

let prop_random_model =
  QCheck.Test.make ~name:"random set_state agrees with model" ~count:25
    QCheck.small_nat random_ops_agree

(* --- bulk build --- *)

let test_bulk_build () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:1 in
  let b = Btree.Bulk.start t in
  for i = 0 to 999 do
    Btree.Bulk.add b (Tenv.keyn i)
  done;
  Btree.Bulk.finish b;
  check_healthy t;
  Alcotest.(check int) "count" 1000 (Btree.entry_count t);
  Alcotest.(check bool) "sorted" true (Bt_check.entries_sorted t);
  Alcotest.(check (float 0.0001)) "perfectly clustered" 1.0 (Bt_check.clustering t)

let test_bulk_rejects_unsorted () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:1 in
  let b = Btree.Bulk.start t in
  Btree.Bulk.add b (Tenv.keyn 10);
  Alcotest.check_raises "descending add rejected"
    (Invalid_argument "Btree.Bulk.add: keys must be ascending") (fun () ->
      Btree.Bulk.add b (Tenv.keyn 5))

let test_bulk_no_latching () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:1 in
  let before = env.Tenv.metrics.latch_acquires in
  let b = Btree.Bulk.start t in
  for i = 0 to 499 do
    Btree.Bulk.add b (Tenv.keyn i)
  done;
  Alcotest.(check int) "bulk build acquires no latches" before
    env.Tenv.metrics.latch_acquires

(* --- truncation --- *)

let test_truncate_above () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:1 in
  let b = Btree.Bulk.start t in
  for i = 0 to 999 do
    Btree.Bulk.add b (Tenv.keyn i)
  done;
  Btree.truncate_above t (Some (Tenv.keyn 399));
  check_healthy t;
  Alcotest.(check int) "count after truncate" 400 (Btree.entry_count t);
  Alcotest.(check state) "399 stays" LR.Present (Btree.read_state t (Tenv.keyn 399));
  Alcotest.(check state) "400 gone" LR.Absent (Btree.read_state t (Tenv.keyn 400));
  (* the tree must remain usable for further bottom-up additions via normal
     inserts *)
  ignore (Btree.set_state t (Tenv.keyn 400) LR.Present);
  check_healthy t

let test_truncate_to_empty () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:1 in
  for i = 0 to 99 do
    ignore (Btree.set_state t (Tenv.keyn i) LR.Present)
  done;
  Btree.truncate_above t None;
  check_healthy t;
  Alcotest.(check int) "empty" 0 (Btree.entry_count t)

(* --- cursor fast path --- *)

let test_cursor_fast_path () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:1 in
  let c = Btree.new_cursor t in
  for i = 0 to 499 do
    match Btree.insert_if_absent t ~cursor:c (Tenv.keyn i) with
    | `Inserted -> ()
    | `Rejected _ -> Alcotest.fail "unexpected rejection"
  done;
  check_healthy t;
  Alcotest.(check int) "count" 500 (Btree.entry_count t);
  Alcotest.(check bool) "fast path used" true
    (env.Tenv.metrics.fast_path_inserts > 100);
  Alcotest.(check bool) "traversals avoided" true
    (env.Tenv.metrics.tree_traversals < 400)

(* --- specialized IB split --- *)

let test_ib_split_specialized () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:1 in
  (* transactions inserted scattered high keys first *)
  List.iter
    (fun i -> ignore (Btree.set_state t (Tenv.keyn i) LR.Present))
    [ 990; 991; 995; 999 ];
  (* IB inserts the sorted base load with the specialized split *)
  let c = Btree.new_cursor t in
  for i = 0 to 899 do
    ignore (Btree.insert_if_absent t ~ib_split:true ~cursor:c (Tenv.keyn i))
  done;
  check_healthy t;
  Alcotest.(check int) "count" 904 (Btree.entry_count t);
  Alcotest.(check bool) "sorted" true (Bt_check.entries_sorted t)

let test_ib_split_denser_tree () =
  (* same insertion pattern with and without the specialized split: by
     moving only the transaction-inserted higher keys at each split, the
     specialized split mimics a bottom-up build and leaves fuller pages
     (§2.3.1), hence fewer leaves. *)
  let build ~ib_split =
    let env = Tenv.make () in
    let t = mk_tree env ~id:1 in
    List.iter
      (fun i -> ignore (Btree.set_state t (Tenv.keyn i) LR.Present))
      [ 950; 960; 970; 980; 990 ];
    let c = Btree.new_cursor t in
    for i = 0 to 899 do
      ignore (Btree.insert_if_absent t ~ib_split ~cursor:c (Tenv.keyn i))
    done;
    check_healthy t;
    (Btree.leaf_count t, Bt_check.avg_leaf_fill t)
  in
  let special_leaves, special_fill = build ~ib_split:true in
  let normal_leaves, normal_fill = build ~ib_split:false in
  Alcotest.(check bool)
    (Printf.sprintf "specialized %d leaves (fill %.2f) <= normal %d (fill %.2f)"
       special_leaves special_fill normal_leaves normal_fill)
    true
    (special_leaves <= normal_leaves && special_fill >= normal_fill)

(* --- garbage collection --- *)

let test_gc_pseudo_deleted () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:1 in
  for i = 0 to 199 do
    ignore (Btree.set_state t (Tenv.keyn i) LR.Present)
  done;
  for i = 0 to 99 do
    ignore (Btree.set_state t (Tenv.keyn i) LR.Pseudo_deleted)
  done;
  (* keep tombstones on odd keys (as if their deleters were uncommitted) *)
  let removed =
    Btree.gc_pseudo_deleted t ~keep:(fun k -> k.Ikey.rid.Rid.page mod 2 = 1)
  in
  Alcotest.(check int) "even tombstones collected" 50 removed;
  Alcotest.(check int) "entries left" 150 (Btree.entry_count t);
  Alcotest.(check int) "pseudo left" 50 (Btree.pseudo_count t);
  check_healthy t

(* --- checkpoint image / reopen --- *)

let test_image_survives_crash () =
  let env = Tenv.make () in
  let t = mk_tree env ~id:9 in
  for i = 0 to 299 do
    ignore (Btree.set_state t (Tenv.keyn i) LR.Present)
  done;
  Btree.checkpoint_image t ~lsn:(Oib_wal.Lsn.of_int 77);
  (* post-checkpoint changes are volatile *)
  for i = 300 to 399 do
    ignore (Btree.set_state t (Tenv.keyn i) LR.Present)
  done;
  let env' = Tenv.crash env in
  let t' = Btree.open_from_image env'.Tenv.pool env'.Tenv.kv ~index_id:9 in
  check_healthy t';
  Alcotest.(check int) "image content only" 300 (Btree.entry_count t');
  Alcotest.(check int) "image lsn" 77 (Oib_wal.Lsn.to_int (Btree.image_lsn t'))

let test_empty_tree_recoverable_at_create () =
  let env = Tenv.make () in
  let _t = mk_tree env ~id:4 in
  let env' = Tenv.crash env in
  let t' = Btree.open_from_image env'.Tenv.pool env'.Tenv.kv ~index_id:4 in
  Alcotest.(check int) "empty" 0 (Btree.entry_count t');
  check_healthy t'

(* --- concurrent fibers --- *)

let test_concurrent_inserters () =
  let env = Tenv.make ~seed:7 () in
  let t = mk_tree ~capacity:256 env ~id:1 in
  for f = 0 to 3 do
    ignore
      (Oib_sim.Sched.spawn env.Tenv.sched ~name:(Printf.sprintf "ins-%d" f)
         (fun () ->
           for i = 0 to 249 do
             ignore (Btree.set_state t (Tenv.keyn ((i * 4) + f)) LR.Present);
             Oib_sim.Sched.yield env.Tenv.sched
           done))
  done;
  Oib_sim.Sched.run env.Tenv.sched;
  check_healthy t;
  Alcotest.(check int) "all inserted" 1000 (Btree.entry_count t);
  Alcotest.(check bool) "sorted" true (Bt_check.entries_sorted t)

let prop_concurrent_seeds =
  QCheck.Test.make ~name:"concurrent inserts healthy across seeds" ~count:20
    QCheck.small_nat (fun seed ->
      let env = Tenv.make ~seed () in
      let t = mk_tree ~capacity:200 env ~id:1 in
      for f = 0 to 2 do
        ignore
          (Oib_sim.Sched.spawn env.Tenv.sched (fun () ->
               for i = 0 to 99 do
                 ignore (Btree.set_state t (Tenv.keyn ((i * 3) + f)) LR.Present);
                 Oib_sim.Sched.yield env.Tenv.sched
               done))
      done;
      Oib_sim.Sched.run env.Tenv.sched;
      Bt_check.check t = [] && Btree.entry_count t = 300)

let () =
  Alcotest.run "btree"
    [
      ( "basic",
        [
          Alcotest.test_case "insert ascending" `Quick test_insert_ascending;
          Alcotest.test_case "insert descending" `Quick test_insert_descending;
          Alcotest.test_case "set_state transitions" `Quick
            test_set_state_transitions;
          Alcotest.test_case "insert_if_absent" `Quick test_insert_if_absent;
          Alcotest.test_case "find_kv duplicates" `Quick test_find_kv_duplicates;
        ] );
      ( "bulk",
        [
          Alcotest.test_case "bottom-up build" `Quick test_bulk_build;
          Alcotest.test_case "rejects unsorted" `Quick test_bulk_rejects_unsorted;
          Alcotest.test_case "no latching" `Quick test_bulk_no_latching;
        ] );
      ( "truncate",
        [
          Alcotest.test_case "truncate above key" `Quick test_truncate_above;
          Alcotest.test_case "truncate to empty" `Quick test_truncate_to_empty;
        ] );
      ( "cursor",
        [ Alcotest.test_case "fast path" `Quick test_cursor_fast_path ] );
      ( "ib-split",
        [
          Alcotest.test_case "specialized split" `Quick test_ib_split_specialized;
          Alcotest.test_case "denser tree" `Quick
            test_ib_split_denser_tree;
        ] );
      ("gc", [ Alcotest.test_case "pseudo-delete gc" `Quick test_gc_pseudo_deleted ]);
      ( "image",
        [
          Alcotest.test_case "image survives crash" `Quick
            test_image_survives_crash;
          Alcotest.test_case "empty tree recoverable" `Quick
            test_empty_tree_recoverable_at_create;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "four inserters" `Quick test_concurrent_inserters;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_model; prop_concurrent_seeds ] );
    ]
