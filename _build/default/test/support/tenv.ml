(* Shared scaffolding for tests: a complete simulated system (scheduler,
   metrics, log, stable store, buffer pool, durable metadata) and a crash /
   rebirth helper. *)

type t = {
  sched : Oib_sim.Sched.t;
  metrics : Oib_sim.Metrics.t;
  log : Oib_wal.Log_manager.t;
  store : Oib_storage.Stable_store.t;
  kv : Oib_storage.Durable_kv.t;
  pool : Oib_storage.Buffer_pool.t;
}

let make ?(seed = 42) () =
  let sched = Oib_sim.Sched.create ~seed () in
  let metrics = Oib_sim.Metrics.create () in
  let log = Oib_wal.Log_manager.create metrics in
  let store = Oib_storage.Stable_store.create () in
  let kv = Oib_storage.Durable_kv.create () in
  let pool = Oib_storage.Buffer_pool.create ~sched ~metrics ~log ~store in
  { sched; metrics; log; store; kv; pool }

(* Simulate a system failure: volatile state (buffer pool, unflushed log
   tail, scheduler fibers) is lost; the stable store, the durable log
   prefix, and forced metadata survive. *)
let crash ?(seed = 43) t =
  let sched = Oib_sim.Sched.create ~seed () in
  let log = Oib_wal.Log_manager.crash t.log in
  let pool =
    Oib_storage.Buffer_pool.create ~sched ~metrics:t.metrics ~log
      ~store:t.store
  in
  { t with sched; log; pool }

(* Run one fiber to completion on a fresh scheduler pass. *)
let run1 t f =
  ignore (Oib_sim.Sched.spawn t.sched f);
  Oib_sim.Sched.run t.sched

let key s i = Oib_util.Ikey.make s (Oib_util.Rid.make ~page:i ~slot:0)

let keyn i = key (Printf.sprintf "k%06d" i) i
