test/support/tenv.ml: Oib_sim Oib_storage Oib_util Oib_wal Printf
