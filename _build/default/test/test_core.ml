open Oib_util
open Oib_core
module Sched = Oib_sim.Sched
module Txn = Oib_txn.Txn_manager

let rcd v p = Record.make [| v; p |]

let setup ?(seed = 11) () =
  let ctx = Engine.create ~seed ~page_capacity:512 () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  ctx

let must = function
  | Ok v -> v
  | Error `Deadlock -> Alcotest.fail "unexpected deadlock"
  | Error (`Unique_violation _) -> Alcotest.fail "unexpected unique violation"

let record = Alcotest.testable Record.pp Record.equal

(* --- basic transactional record ops --- *)

let test_insert_read () =
  let ctx = setup () in
  let rid =
    must (Engine.run_txn ctx (fun txn -> Table_ops.insert ctx txn ~table:1 (rcd "a" "1")))
  in
  let r =
    must (Engine.run_txn ctx (fun txn -> Table_ops.read ctx txn ~table:1 rid))
  in
  Alcotest.(check (option record)) "read back" (Some (rcd "a" "1")) r

let test_delete_then_missing () =
  let ctx = setup () in
  let rid =
    must (Engine.run_txn ctx (fun txn -> Table_ops.insert ctx txn ~table:1 (rcd "a" "1")))
  in
  must (Engine.run_txn ctx (fun txn -> Table_ops.delete ctx txn ~table:1 rid));
  let r = must (Engine.run_txn ctx (fun txn -> Table_ops.read ctx txn ~table:1 rid)) in
  Alcotest.(check (option record)) "gone" None r

let test_update () =
  let ctx = setup () in
  let rid =
    must (Engine.run_txn ctx (fun txn -> Table_ops.insert ctx txn ~table:1 (rcd "a" "1")))
  in
  must (Engine.run_txn ctx (fun txn -> Table_ops.update ctx txn ~table:1 rid (rcd "b" "2")));
  let r = must (Engine.run_txn ctx (fun txn -> Table_ops.read ctx txn ~table:1 rid)) in
  Alcotest.(check (option record)) "updated" (Some (rcd "b" "2")) r

let test_rollback_restores_record () =
  let ctx = setup () in
  let rid =
    must (Engine.run_txn ctx (fun txn -> Table_ops.insert ctx txn ~table:1 (rcd "a" "1")))
  in
  (* delete + update inside an aborted transaction *)
  let txn = Txn.begin_txn ctx.Ctx.txns in
  Table_ops.delete ctx txn ~table:1 rid;
  (* the insert may legitimately reuse the slot our own delete freed *)
  let _rid2 = Table_ops.insert ctx txn ~table:1 (rcd "x" "9") in
  Table_ops.rollback ctx txn;
  let r = must (Engine.run_txn ctx (fun txn -> Table_ops.read ctx txn ~table:1 rid)) in
  Alcotest.(check (option record)) "delete undone" (Some (rcd "a" "1")) r;
  let all =
    Oib_storage.Heap_file.all_records (Catalog.table ctx.Ctx.catalog 1).heap
  in
  Alcotest.(check int) "exactly the original record remains" 1 (List.length all)

let test_rollback_rid_reusable () =
  (* the paper's example depends on a rolled-back insert freeing its RID *)
  let ctx = setup () in
  let txn = Txn.begin_txn ctx.Ctx.txns in
  let rid = Table_ops.insert ctx txn ~table:1 (rcd "a" "1") in
  Table_ops.rollback ctx txn;
  let rid2 =
    must (Engine.run_txn ctx (fun txn -> Table_ops.insert ctx txn ~table:1 (rcd "b" "2")))
  in
  Alcotest.(check bool) "same RID reused" true (Rid.equal rid rid2)

(* --- index maintenance on a Ready index --- *)

let with_ready_index ?(unique = false) ctx =
  (* build an index the quick way: on an empty/small table via NSF with no
     concurrency, inside a fiber *)
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Nsf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique }));
  Sched.run ctx.Ctx.sched

let test_index_maintained_after_build () =
  let ctx = setup () in
  let _rid =
    must (Engine.run_txn ctx (fun txn -> Table_ops.insert ctx txn ~table:1 (rcd "a" "1")))
  in
  with_ready_index ctx;
  let rid2 =
    must (Engine.run_txn ctx (fun txn -> Table_ops.insert ctx txn ~table:1 (rcd "b" "2")))
  in
  must (Engine.run_txn ctx (fun txn -> Table_ops.update ctx txn ~table:1 rid2 (rcd "c" "2")));
  Alcotest.(check (list string)) "no oracle errors" [] (Engine.consistency_errors ctx);
  let hits =
    must (Engine.run_txn ctx (fun txn -> Table_ops.index_lookup ctx txn ~index:10 "c"))
  in
  Alcotest.(check int) "lookup via index" 1 (List.length hits);
  let miss =
    must (Engine.run_txn ctx (fun txn -> Table_ops.index_lookup ctx txn ~index:10 "b"))
  in
  Alcotest.(check int) "old key invisible" 0 (List.length miss)

let test_unique_violation_detected () =
  let ctx = setup () in
  with_ready_index ~unique:true ctx;
  must (Engine.run_txn ctx (fun txn -> ignore (Table_ops.insert ctx txn ~table:1 (rcd "dup" "1"))));
  match
    Engine.run_txn ctx (fun txn ->
        ignore (Table_ops.insert ctx txn ~table:1 (rcd "dup" "2")))
  with
  | Error (`Unique_violation (10, "dup")) -> ()
  | Ok () -> Alcotest.fail "duplicate accepted"
  | Error _ -> Alcotest.fail "wrong error"

let test_unique_same_txn_delete_then_insert () =
  let ctx = setup () in
  with_ready_index ~unique:true ctx;
  let rid =
    must (Engine.run_txn ctx (fun txn -> Table_ops.insert ctx txn ~table:1 (rcd "k" "1")))
  in
  (* delete + reinsert of the same key value in one transaction is legal *)
  must
    (Engine.run_txn ctx (fun txn ->
         Table_ops.delete ctx txn ~table:1 rid;
         ignore (Table_ops.insert ctx txn ~table:1 (rcd "k" "2"))));
  Alcotest.(check (list string)) "consistent" [] (Engine.consistency_errors ctx)

let test_unique_waits_for_deleter () =
  (* deleter active: a rival inserter must wait; after the deleter commits
     the insert succeeds *)
  let ctx = setup () in
  with_ready_index ~unique:true ctx;
  let rid =
    must (Engine.run_txn ctx (fun txn -> Table_ops.insert ctx txn ~table:1 (rcd "k" "1")))
  in
  let order = ref [] in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"deleter" (fun () ->
         let txn = Txn.begin_txn ctx.Ctx.txns in
         Table_ops.delete ctx txn ~table:1 rid;
         Sched.yield ctx.Ctx.sched;
         Sched.yield ctx.Ctx.sched;
         order := "deleter-commit" :: !order;
         Txn.commit ctx.Ctx.txns txn));
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"inserter" (fun () ->
         (* wait until the delete happened *)
         Sched.yield ctx.Ctx.sched;
         match
           Engine.run_txn ctx (fun txn ->
               ignore (Table_ops.insert ctx txn ~table:1 (rcd "k" "2")))
         with
         | Ok () -> order := "insert-done" :: !order
         | Error _ -> order := "insert-failed" :: !order));
  Sched.run ctx.Ctx.sched;
  Alcotest.(check bool)
    (Printf.sprintf "order: %s" (String.concat "," (List.rev !order)))
    true
    (List.rev !order = [ "deleter-commit"; "insert-done" ]
    || List.rev !order = [ "insert-failed"; "deleter-commit" ]
       (* if the scheduler ran the inserter before the delete, the row
          still existed: a genuine violation *)
    || List.rev !order = [ "deleter-commit"; "insert-failed" ]);
  Alcotest.(check (list string)) "consistent" [] (Engine.consistency_errors ctx)

(* --- crash recovery (no index builds) --- *)

let test_committed_survive_crash () =
  let ctx = setup () in
  let rid =
    must (Engine.run_txn ctx (fun txn -> Table_ops.insert ctx txn ~table:1 (rcd "a" "1")))
  in
  (* commit forces the log; pages are NOT flushed *)
  let ctx' = Engine.crash ctx in
  let r = must (Engine.run_txn ctx' (fun txn -> Table_ops.read ctx' txn ~table:1 rid)) in
  Alcotest.(check (option record)) "redo recovered it" (Some (rcd "a" "1")) r

let test_loser_rolled_back_at_restart () =
  let ctx = setup () in
  let rid =
    must (Engine.run_txn ctx (fun txn -> Table_ops.insert ctx txn ~table:1 (rcd "a" "1")))
  in
  (* an uncommitted transaction's changes, partially stolen to disk *)
  let txn = Txn.begin_txn ctx.Ctx.txns in
  Table_ops.delete ctx txn ~table:1 rid;
  let _rid2 = Table_ops.insert ctx txn ~table:1 (rcd "loser" "x") in
  Oib_wal.Log_manager.flush_all ctx.Ctx.log;
  Oib_storage.Buffer_pool.flush_some ctx.Ctx.pool (Rng.create 3) 0.7;
  let ctx' = Engine.crash ctx in
  let r = must (Engine.run_txn ctx' (fun txn -> Table_ops.read ctx' txn ~table:1 rid)) in
  Alcotest.(check (option record)) "loser delete undone" (Some (rcd "a" "1")) r;
  let all =
    Oib_storage.Heap_file.all_records (Catalog.table ctx'.Ctx.catalog 1).heap
  in
  Alcotest.(check int) "loser insert gone" 1 (List.length all)

let test_crash_is_idempotent () =
  let ctx = setup () in
  let rid =
    must (Engine.run_txn ctx (fun txn -> Table_ops.insert ctx txn ~table:1 (rcd "a" "1")))
  in
  let txn = Txn.begin_txn ctx.Ctx.txns in
  Table_ops.update ctx txn ~table:1 rid (rcd "dirty" "z");
  Oib_wal.Log_manager.flush_all ctx.Ctx.log;
  let ctx' = Engine.crash ctx in
  let ctx'' = Engine.crash ctx' in
  let r = must (Engine.run_txn ctx'' (fun txn -> Table_ops.read ctx'' txn ~table:1 rid)) in
  Alcotest.(check (option record)) "double restart ok" (Some (rcd "a" "1")) r

let test_index_recovered_after_crash () =
  let ctx = setup () in
  with_ready_index ctx;
  let _ =
    must (Engine.run_txn ctx (fun txn -> Table_ops.insert ctx txn ~table:1 (rcd "a" "1")))
  in
  let _ =
    must (Engine.run_txn ctx (fun txn -> Table_ops.insert ctx txn ~table:1 (rcd "b" "2")))
  in
  let ctx' = Engine.crash ctx in
  Alcotest.(check (list string)) "index consistent after restart" []
    (Engine.consistency_errors ctx');
  let hits =
    must (Engine.run_txn ctx' (fun txn -> Table_ops.index_lookup ctx' txn ~index:10 "a"))
  in
  Alcotest.(check int) "index answers" 1 (List.length hits)

let test_loser_index_ops_undone_at_restart () =
  let ctx = setup () in
  with_ready_index ctx;
  let rid =
    must (Engine.run_txn ctx (fun txn -> Table_ops.insert ctx txn ~table:1 (rcd "a" "1")))
  in
  let txn = Txn.begin_txn ctx.Ctx.txns in
  Table_ops.update ctx txn ~table:1 rid (rcd "zzz" "9");
  ignore (Table_ops.insert ctx txn ~table:1 (rcd "loser" "l"));
  Oib_wal.Log_manager.flush_all ctx.Ctx.log;
  let ctx' = Engine.crash ctx in
  Alcotest.(check (list string)) "oracle clean" [] (Engine.consistency_errors ctx');
  let hits =
    must (Engine.run_txn ctx' (fun txn -> Table_ops.index_lookup ctx' txn ~index:10 "a"))
  in
  Alcotest.(check int) "old key back" 1 (List.length hits)

(* --- concurrent mixed workload sanity (no build) --- *)

let test_mixed_workload_consistent () =
  let ctx = setup ~seed:21 () in
  let _ = Oib_workload.Driver.populate ctx ~table:1 ~rows:150 ~seed:5 in
  with_ready_index ctx;
  let cfg =
    { Oib_workload.Driver.default with workers = 4; txns_per_worker = 30 }
  in
  let stats = Oib_workload.Driver.spawn_workers ctx cfg ~table:1 in
  Sched.run ctx.Ctx.sched;
  Alcotest.(check bool) "work happened" true ((!stats).committed > 50);
  Alcotest.(check (list string)) "oracle clean" [] (Engine.consistency_errors ctx)

let prop_mixed_workload_seeds =
  QCheck.Test.make ~name:"mixed workload consistent across seeds" ~count:10
    QCheck.small_nat (fun seed ->
      let ctx = setup ~seed () in
      let _ = Oib_workload.Driver.populate ctx ~table:1 ~rows:80 ~seed in
      with_ready_index ctx;
      let cfg =
        {
          Oib_workload.Driver.default with
          seed;
          workers = 3;
          txns_per_worker = 15;
        }
      in
      let _ = Oib_workload.Driver.spawn_workers ctx cfg ~table:1 in
      Sched.run ctx.Ctx.sched;
      Engine.consistency_errors ctx = [])

let () =
  Alcotest.run "core"
    [
      ( "record-ops",
        [
          Alcotest.test_case "insert/read" `Quick test_insert_read;
          Alcotest.test_case "delete" `Quick test_delete_then_missing;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "rollback restores" `Quick
            test_rollback_restores_record;
          Alcotest.test_case "rollback frees RID" `Quick
            test_rollback_rid_reusable;
        ] );
      ( "index-maintenance",
        [
          Alcotest.test_case "maintained after build" `Quick
            test_index_maintained_after_build;
          Alcotest.test_case "unique violation" `Quick
            test_unique_violation_detected;
          Alcotest.test_case "unique delete+insert same txn" `Quick
            test_unique_same_txn_delete_then_insert;
          Alcotest.test_case "unique waits for deleter" `Quick
            test_unique_waits_for_deleter;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "committed survive" `Quick
            test_committed_survive_crash;
          Alcotest.test_case "loser rolled back" `Quick
            test_loser_rolled_back_at_restart;
          Alcotest.test_case "restart idempotent" `Quick test_crash_is_idempotent;
          Alcotest.test_case "index recovered" `Quick
            test_index_recovered_after_crash;
          Alcotest.test_case "loser index ops undone" `Quick
            test_loser_index_ops_undone_at_restart;
        ] );
      ( "workload",
        [
          Alcotest.test_case "mixed workload" `Quick test_mixed_workload_consistent;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_mixed_workload_seeds ] );
    ]
