open Oib_util
module SF = Oib_sidefile.Side_file
module LR = Oib_wal.Log_record
module LM = Oib_wal.Log_manager
module Lsn = Oib_wal.Lsn

let key i = Ikey.make (Printf.sprintf "k%03d" i) (Rid.make ~page:i ~slot:0)

let test_append_order () =
  let sf = SF.create ~sidefile_id:7 in
  Alcotest.(check int) "pos 0" 0 (SF.apply_append sf ~insert:true (key 1));
  Alcotest.(check int) "pos 1" 1 (SF.apply_append sf ~insert:false (key 2));
  Alcotest.(check int) "length" 2 (SF.length sf);
  let e = SF.get sf 0 in
  Alcotest.(check bool) "first entry" true (e.SF.insert && Ikey.equal e.key (key 1))

let test_slice_bounds () =
  let sf = SF.create ~sidefile_id:1 in
  for i = 0 to 9 do
    ignore (SF.apply_append sf ~insert:true (key i))
  done;
  Alcotest.(check int) "slice size" 3 (List.length (SF.slice sf ~from:2 ~upto:5));
  Alcotest.(check int) "overrun clamped" 2 (List.length (SF.slice sf ~from:8 ~upto:99));
  Alcotest.(check int) "empty" 0 (List.length (SF.slice sf ~from:5 ~upto:5))

let test_sorted_slice_stable () =
  let sf = SF.create ~sidefile_id:1 in
  (* same key, alternating ops: relative order must survive the sort *)
  ignore (SF.apply_append sf ~insert:true (key 5));
  ignore (SF.apply_append sf ~insert:true (key 1));
  ignore (SF.apply_append sf ~insert:false (key 5));
  ignore (SF.apply_append sf ~insert:true (key 5));
  let sorted = SF.sorted_slice sf ~from:0 ~upto:4 in
  let key5_ops =
    List.filter_map
      (fun (e : SF.entry) ->
        if Ikey.equal e.key (key 5) then Some e.insert else None)
      sorted
  in
  Alcotest.(check (list bool)) "stable within equal keys" [ true; false; true ]
    key5_ops;
  (* and globally sorted *)
  let keys = List.map (fun (e : SF.entry) -> e.SF.key) sorted in
  Alcotest.(check bool) "sorted" true
    (List.sort Ikey.compare keys = keys)

let test_rebuild_from_log () =
  let metrics = Oib_sim.Metrics.create () in
  let log = LM.create metrics in
  let append sidefile insert k prev =
    LM.append log ~txn:(Some 1) ~prev_lsn:prev
      (LR.Sidefile_append { sidefile; insert; key = k })
  in
  let l1 = append 7 true (key 1) Lsn.nil in
  let l2 = append 8 true (key 9) l1 in
  let l3 = append 7 false (key 2) l2 in
  (* a CLR-wrapped compensating append must also be recovered *)
  let _ =
    LM.append log ~txn:(Some 1) ~prev_lsn:l3
      (LR.Clr
         {
           action = LR.Sidefile_append { sidefile = 7; insert = true; key = key 3 };
           undo_next = Lsn.nil;
         })
  in
  LM.flush_all log;
  let survivor = LM.crash log in
  let sf = SF.rebuild_from_log survivor ~sidefile_id:7 in
  Alcotest.(check int) "only sidefile 7's entries, incl. CLRs" 3 (SF.length sf);
  Alcotest.(check bool) "order preserved" true
    ((SF.get sf 0).insert && not (SF.get sf 1).insert && (SF.get sf 2).insert)

let test_rebuild_ignores_unflushed () =
  let metrics = Oib_sim.Metrics.create () in
  let log = LM.create metrics in
  let l1 =
    LM.append log ~txn:(Some 1) ~prev_lsn:Lsn.nil
      (LR.Sidefile_append { sidefile = 7; insert = true; key = key 1 })
  in
  LM.flush log ~upto:l1;
  let _ =
    LM.append log ~txn:(Some 1) ~prev_lsn:l1
      (LR.Sidefile_append { sidefile = 7; insert = true; key = key 2 })
  in
  let survivor = LM.crash log in
  let sf = SF.rebuild_from_log survivor ~sidefile_id:7 in
  Alcotest.(check int) "lost tail dropped" 1 (SF.length sf)

let prop_rebuild_roundtrip =
  QCheck.Test.make ~name:"rebuild equals flushed appends" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 0 40) (pair bool (int_bound 50)))
    (fun ops ->
      let metrics = Oib_sim.Metrics.create () in
      let log = LM.create metrics in
      let sf = SF.create ~sidefile_id:3 in
      let prev = ref Lsn.nil in
      List.iter
        (fun (insert, i) ->
          prev :=
            LM.append log ~txn:(Some 1) ~prev_lsn:!prev
              (LR.Sidefile_append { sidefile = 3; insert; key = key i });
          ignore (SF.apply_append sf ~insert (key i)))
        ops;
      LM.flush_all log;
      let sf' = SF.rebuild_from_log (LM.crash log) ~sidefile_id:3 in
      SF.length sf' = SF.length sf
      && List.for_all
           (fun i ->
             let a = SF.get sf i and b = SF.get sf' i in
             a.SF.insert = b.SF.insert && Ikey.equal a.key b.key)
           (List.init (SF.length sf) Fun.id))

let () =
  Alcotest.run "sidefile"
    [
      ( "basics",
        [
          Alcotest.test_case "append order" `Quick test_append_order;
          Alcotest.test_case "slice bounds" `Quick test_slice_bounds;
          Alcotest.test_case "sorted slice stable" `Quick test_sorted_slice_stable;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "rebuild from log" `Quick test_rebuild_from_log;
          Alcotest.test_case "unflushed appends lost" `Quick
            test_rebuild_ignores_unflushed;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_rebuild_roundtrip ]);
    ]
