module Txn = Oib_txn.Txn_manager
module LR = Oib_wal.Log_record
module Lsn = Oib_wal.Lsn
module LM = Oib_wal.Log_manager

let mk () =
  let sched = Oib_sim.Sched.create () in
  let metrics = Oib_sim.Metrics.create () in
  let log = LM.create metrics in
  let locks = Oib_lock.Lock_manager.create sched metrics in
  (log, locks, Txn.create log locks metrics)

let heap_body page =
  LR.Heap
    {
      page;
      visible_indexes = 0;
      sidefiled = [];
      op =
        LR.Heap_insert
          {
            rid = Oib_util.Rid.make ~page ~slot:0;
            record = Oib_util.Record.make [| "x" |];
          };
    }

let test_commit_forces_log () =
  let log, _, tm = mk () in
  let txn = Txn.begin_txn tm in
  let lsn = Txn.log_op tm txn (heap_body 1) in
  Alcotest.(check bool) "not yet durable" true (Lsn.( < ) (LM.flushed_lsn log) lsn);
  Txn.commit tm txn;
  Alcotest.(check bool) "durable after commit" true
    (Lsn.( >= ) (LM.flushed_lsn log) lsn);
  Alcotest.(check bool) "status" true (Txn.status txn = Txn.Committed)

let test_commit_releases_locks () =
  let _, locks, tm = mk () in
  let txn = Txn.begin_txn tm in
  let name = Oib_lock.Lock_manager.Table 1 in
  ignore (Oib_lock.Lock_manager.lock locks ~txn:(Txn.id txn) name X);
  Txn.commit tm txn;
  Alcotest.(check bool) "released" true
    (Oib_lock.Lock_manager.try_lock locks ~txn:999 name X)

let test_rollback_undoes_in_reverse () =
  let _, _, tm = mk () in
  let txn = Txn.begin_txn tm in
  ignore (Txn.log_op tm txn (heap_body 1));
  ignore (Txn.log_op tm txn (heap_body 2));
  ignore (Txn.log_op tm txn (heap_body 3));
  let undone = ref [] in
  Txn.rollback tm txn ~undo:(fun body ~clr ->
      (match body with
      | LR.Heap { page; _ } -> undone := page :: !undone
      | _ -> ());
      ignore (clr body));
  Alcotest.(check (list int)) "reverse order" [ 3; 2; 1 ] (List.rev !undone);
  Alcotest.(check bool) "status" true (Txn.status txn = Txn.Aborted)

let test_clr_chain_skips_on_restart () =
  (* interrupting a rollback and restarting it must not undo anything
     twice: the CLR's undo_next pointers skip compensated records *)
  let log, _, tm = mk () in
  let txn = Txn.begin_txn tm in
  ignore (Txn.log_op tm txn (heap_body 1));
  ignore (Txn.log_op tm txn (heap_body 2));
  (* partial rollback: undo only the newest record, then "crash" *)
  let steps = ref 0 in
  (try
     Txn.rollback tm txn ~undo:(fun body ~clr ->
         incr steps;
         ignore (clr body);
         if !steps = 1 then failwith "crash")
   with Failure _ -> ());
  LM.flush_all log;
  (* restart: adopt at the last CLR and finish the rollback *)
  let survivor = LM.crash log in
  let metrics = Oib_sim.Metrics.create () in
  let locks = Oib_lock.Lock_manager.create (Oib_sim.Sched.create ()) metrics in
  let tm' = Txn.create survivor locks metrics in
  let last =
    List.fold_left
      (fun acc (r : LR.t) -> if r.txn = Some 1 then r.lsn else acc)
      Lsn.nil (LM.durable_records survivor)
  in
  let txn' = Txn.adopt tm' ~txn_id:1 ~last in
  let undone = ref [] in
  Txn.rollback tm' txn' ~undo:(fun body ~clr ->
      (match body with
      | LR.Heap { page; _ } -> undone := page :: !undone
      | _ -> ());
      ignore (clr body));
  Alcotest.(check (list int)) "only the uncompensated record" [ 1 ] !undone

let test_commit_lsn_tracks_oldest () =
  let log, _, tm = mk () in
  let t1 = Txn.begin_txn tm in
  let t2 = Txn.begin_txn tm in
  ignore (Txn.log_op tm t2 (heap_body 1));
  Alcotest.(check int) "oldest active begin"
    (Lsn.to_int (Txn.last_lsn t1))
    (Lsn.to_int (Txn.commit_lsn tm));
  Txn.commit tm t1;
  Txn.commit tm t2;
  Alcotest.(check int) "none active: log end"
    (Lsn.to_int (LM.last_lsn log))
    (Lsn.to_int (Txn.commit_lsn tm))

let test_active_tracking () =
  let _, _, tm = mk () in
  let t1 = Txn.begin_txn tm in
  let t2 = Txn.begin_txn tm in
  Alcotest.(check int) "two active" 2 (Txn.active_count tm);
  Txn.commit tm t1;
  Txn.rollback tm t2 ~undo:(fun _ ~clr:_ -> ());
  Alcotest.(check int) "none active" 0 (Txn.active_count tm)

let test_adopt_prevents_id_reuse () =
  let _, _, tm = mk () in
  let _ = Txn.adopt tm ~txn_id:41 ~last:Lsn.nil in
  let t = Txn.begin_txn tm in
  Alcotest.(check bool) "fresh id above adopted" true (Txn.id t > 41)

let () =
  Alcotest.run "txn"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "commit forces log" `Quick test_commit_forces_log;
          Alcotest.test_case "commit releases locks" `Quick
            test_commit_releases_locks;
          Alcotest.test_case "active tracking" `Quick test_active_tracking;
          Alcotest.test_case "adopt prevents id reuse" `Quick
            test_adopt_prevents_id_reuse;
        ] );
      ( "rollback",
        [
          Alcotest.test_case "reverse order" `Quick test_rollback_undoes_in_reverse;
          Alcotest.test_case "CLR chain skips compensated" `Quick
            test_clr_chain_skips_on_restart;
        ] );
      ( "commit-lsn",
        [ Alcotest.test_case "tracks oldest active" `Quick test_commit_lsn_tracks_oldest ]
      );
    ]
