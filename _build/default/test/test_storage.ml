open Oib_util
open Oib_storage
open Oib_testsupport
module Lsn = Oib_wal.Lsn

let rcd s = Record.make [| s |]

(* --- heap page --- *)

let test_heap_page_put_get () =
  let hp = Heap_page.create ~capacity:256 in
  let s0 = Heap_page.reserve hp (rcd "a") in
  Heap_page.put hp s0 (rcd "a");
  Alcotest.(check (option (of_pp Record.pp))) "get" (Some (rcd "a"))
    (Heap_page.get hp s0);
  Alcotest.(check int) "one record" 1 (Heap_page.record_count hp)

let test_heap_page_slot_reuse () =
  let hp = Heap_page.create ~capacity:256 in
  let s0 = Heap_page.reserve hp (rcd "a") in
  Heap_page.put hp s0 (rcd "a");
  let s1 = Heap_page.reserve hp (rcd "b") in
  Heap_page.put hp s1 (rcd "b");
  Heap_page.remove hp s0;
  (* the freed slot must be reused first: the paper's §2.2.3 example needs a
     new record to land at the same RID as a deleted one *)
  let s2 = Heap_page.reserve hp (rcd "c") in
  Alcotest.(check int) "slot reused" s0 s2

let test_heap_page_free_bytes_accounting () =
  let hp = Heap_page.create ~capacity:200 in
  let free0 = Heap_page.free_bytes hp in
  let s = Heap_page.reserve hp (rcd "abc") in
  Heap_page.put hp s (rcd "abc");
  let free1 = Heap_page.free_bytes hp in
  Alcotest.(check bool) "space charged" true (free1 < free0);
  Heap_page.remove hp s;
  Alcotest.(check int) "space returned" free0 (Heap_page.free_bytes hp)

let test_heap_page_unreserve () =
  let hp = Heap_page.create ~capacity:200 in
  let free0 = Heap_page.free_bytes hp in
  let s = Heap_page.reserve hp (rcd "abc") in
  Heap_page.unreserve hp s;
  Alcotest.(check int) "reservation refunded" free0 (Heap_page.free_bytes hp)

let test_heap_page_capacity_enforced () =
  let hp = Heap_page.create ~capacity:40 in
  let big = Record.make [| String.make 100 'x' |] in
  Alcotest.(check bool) "does not fit" false (Heap_page.fits hp big);
  Alcotest.check_raises "reserve refused"
    (Invalid_argument "Heap_page.reserve: does not fit") (fun () ->
      ignore (Heap_page.reserve hp big))

(* --- heap file --- *)

let insert_one env hf r =
  let page, slot = Heap_file.prepare_insert hf r in
  Heap_page.put (Heap_page.of_payload page.Page.payload) slot r;
  Page.set_lsn page (Oib_wal.Log_manager.last_lsn env.Tenv.log);
  Oib_sim.Latch.release page.Page.latch X;
  Rid.make ~page:page.Page.id ~slot

let test_heap_file_grows () =
  let env = Tenv.make () in
  let hf =
    Heap_file.create env.Tenv.pool env.Tenv.kv ~table_id:1 ~page_capacity:128
  in
  let rids = List.init 50 (fun i -> insert_one env hf (rcd (Printf.sprintf "r%02d" i))) in
  Alcotest.(check int) "all stored" 50 (Heap_file.record_count hf);
  Alcotest.(check bool) "multiple pages" true (Heap_file.page_count hf > 1);
  List.iteri
    (fun i rid ->
      Alcotest.(check (option (of_pp Record.pp)))
        "readback"
        (Some (rcd (Printf.sprintf "r%02d" i)))
        (Heap_file.read_record hf rid))
    rids

let test_heap_file_reopen () =
  let env = Tenv.make () in
  let hf =
    Heap_file.create env.Tenv.pool env.Tenv.kv ~table_id:7 ~page_capacity:128
  in
  let _ = List.init 20 (fun i -> insert_one env hf (rcd (string_of_int i))) in
  Buffer_pool.flush_all env.Tenv.pool;
  let env' = Tenv.crash env in
  let hf' = Heap_file.open_existing env'.Tenv.pool env'.Tenv.kv ~table_id:7 in
  Alcotest.(check int) "records survive" 20 (Heap_file.record_count hf');
  Alcotest.(check (list int)) "page list survives" (Heap_file.page_ids hf)
    (Heap_file.page_ids hf')

let test_heap_file_scan_upto () =
  let env = Tenv.make () in
  let hf =
    Heap_file.create env.Tenv.pool env.Tenv.kv ~table_id:1 ~page_capacity:128
  in
  let _ = List.init 40 (fun i -> insert_one env hf (rcd (string_of_int i))) in
  let last = Option.get (Heap_file.last_page_id hf) in
  (* extend after noting the scan end *)
  let _ = List.init 40 (fun i -> insert_one env hf (rcd (string_of_int (100 + i)))) in
  let seen = ref 0 in
  Heap_file.scan_pages hf ~upto:last (fun p ->
      seen := !seen + Heap_page.record_count (Heap_page.of_payload p.Page.payload));
  Alcotest.(check int) "scan stops at noted page" 40 !seen

let test_duplicate_create_rejected () =
  let env = Tenv.make () in
  let _ = Heap_file.create env.Tenv.pool env.Tenv.kv ~table_id:3 ~page_capacity:64 in
  Alcotest.check_raises "exists"
    (Invalid_argument "Heap_file.create: table already exists") (fun () ->
      ignore
        (Heap_file.create env.Tenv.pool env.Tenv.kv ~table_id:3 ~page_capacity:64))

(* --- buffer pool / WAL rule --- *)

let test_wal_rule_enforced () =
  let env = Tenv.make () in
  let hf = Heap_file.create env.Tenv.pool env.Tenv.kv ~table_id:1 ~page_capacity:256 in
  let lsn = Oib_wal.Log_manager.append env.Tenv.log ~txn:(Some 1)
      ~prev_lsn:Lsn.nil Oib_wal.Log_record.Begin
  in
  let page, slot = Heap_file.prepare_insert hf (rcd "x") in
  Heap_page.put (Heap_page.of_payload page.Page.payload) slot (rcd "x");
  Page.set_lsn page lsn;
  Oib_sim.Latch.release page.Page.latch X;
  Alcotest.(check int) "log not yet durable" 0
    (Lsn.to_int (Oib_wal.Log_manager.flushed_lsn env.Tenv.log));
  Buffer_pool.flush_page env.Tenv.pool page;
  Alcotest.(check bool) "page write forced the log" true
    (Lsn.( >= ) (Oib_wal.Log_manager.flushed_lsn env.Tenv.log) lsn)

let test_crash_loses_unflushed_pages () =
  let env = Tenv.make () in
  let hf = Heap_file.create env.Tenv.pool env.Tenv.kv ~table_id:1 ~page_capacity:256 in
  let rid1 = insert_one env hf (rcd "durable") in
  Buffer_pool.flush_all env.Tenv.pool;
  let rid2 = insert_one env hf (rcd "volatile") in
  let env' = Tenv.crash env in
  let hf' = Heap_file.open_existing env'.Tenv.pool env'.Tenv.kv ~table_id:1 in
  Alcotest.(check (option (of_pp Record.pp))) "flushed record survives"
    (Some (rcd "durable"))
    (Heap_file.read_record hf' rid1);
  (* rid2's page was never flushed: either the page is missing entirely or
     it reads back without the record *)
  (match Heap_file.read_record hf' rid2 with
  | exception Not_found -> ()
  | None -> ()
  | Some r ->
    Alcotest.failf "unflushed record survived crash: %s" (Record.to_string r))

let test_no_steal_respected () =
  let env = Tenv.make () in
  let p =
    Buffer_pool.new_page env.Tenv.pool
      ~payload:(Heap_page.Heap (Heap_page.create ~capacity:64))
      ~copy_payload:Heap_page.copy_payload
  in
  p.Page.no_steal <- true;
  Page.mark_dirty p;
  let rng = Rng.create 1 in
  Buffer_pool.flush_some env.Tenv.pool rng 1.0;
  Alcotest.(check bool) "not stolen" false (Stable_store.mem env.Tenv.store p.Page.id);
  Buffer_pool.flush_page env.Tenv.pool p;
  Alcotest.(check bool) "explicit flush works" true
    (Stable_store.mem env.Tenv.store p.Page.id)

let test_stable_store_isolation () =
  let env = Tenv.make () in
  let hf = Heap_file.create env.Tenv.pool env.Tenv.kv ~table_id:1 ~page_capacity:256 in
  let rid = insert_one env hf (rcd "v1") in
  Buffer_pool.flush_all env.Tenv.pool;
  (* mutate the cached page after the flush; the stable copy must be the
     deep copy taken at flush time *)
  let page = Heap_file.page hf rid.Rid.page in
  Heap_page.put (Heap_page.of_payload page.Page.payload) rid.Rid.slot (rcd "v2");
  let env' = Tenv.crash env in
  let hf' = Heap_file.open_existing env'.Tenv.pool env'.Tenv.kv ~table_id:1 in
  Alcotest.(check (option (of_pp Record.pp))) "deep copy isolated"
    (Some (rcd "v1"))
    (Heap_file.read_record hf' rid)

let () =
  Alcotest.run "storage"
    [
      ( "heap-page",
        [
          Alcotest.test_case "put/get" `Quick test_heap_page_put_get;
          Alcotest.test_case "slot reuse" `Quick test_heap_page_slot_reuse;
          Alcotest.test_case "free bytes accounting" `Quick
            test_heap_page_free_bytes_accounting;
          Alcotest.test_case "unreserve" `Quick test_heap_page_unreserve;
          Alcotest.test_case "capacity enforced" `Quick
            test_heap_page_capacity_enforced;
        ] );
      ( "heap-file",
        [
          Alcotest.test_case "grows across pages" `Quick test_heap_file_grows;
          Alcotest.test_case "reopen after crash" `Quick test_heap_file_reopen;
          Alcotest.test_case "scan bounded by noted page" `Quick
            test_heap_file_scan_upto;
          Alcotest.test_case "duplicate create rejected" `Quick
            test_duplicate_create_rejected;
        ] );
      ( "buffer-pool",
        [
          Alcotest.test_case "WAL rule" `Quick test_wal_rule_enforced;
          Alcotest.test_case "crash loses unflushed" `Quick
            test_crash_loses_unflushed_pages;
          Alcotest.test_case "no-steal respected" `Quick test_no_steal_respected;
          Alcotest.test_case "stable store deep copies" `Quick
            test_stable_store_isolation;
        ] );
    ]
