(* Benchmark harness entry point.

   dune exec bench/main.exe                 — every experiment + micro
   dune exec bench/main.exe -- --exp e4     — one experiment
   dune exec bench/main.exe -- --micro      — micro-benchmarks only

   Each experiment regenerates one row-set of DESIGN.md's experiment index;
   EXPERIMENTS.md records the claim-vs-measured comparison. *)

let run_experiment name =
  match List.assoc_opt (String.lowercase_ascii name) Experiments.all with
  | Some f ->
    f ();
    true
  | None ->
    Printf.eprintf "unknown experiment %S (known: %s)\n" name
      (String.concat ", " (List.map fst Experiments.all));
    false

let main exps micro_only smoke =
  if smoke then begin
    (* tiny instrumented config: exercises the whole observability path
       (trace, progress, histograms, BENCH_obs.json) in a few seconds *)
    Obs_report.run ~rows:200 ~workers:2 ~txns:10 ~sample_every:20 ();
    0
  end
  else if micro_only then begin
    Micro.run ();
    0
  end
  else begin
    match exps with
    | [] ->
      print_endline
        "OIB benchmark suite — reproduction of Mohan & Narang, SIGMOD 1992";
      List.iter (fun (_, f) -> f ()) Experiments.all;
      Micro.run ();
      Obs_report.run ();
      0
    | names -> if List.for_all run_experiment names then 0 else 1
  end

open Cmdliner

let exps =
  Arg.(
    value
    & opt_all string []
    & info [ "e"; "exp" ] ~docv:"EXP"
        ~doc:"Run one experiment (e1..e12); repeatable.")

let micro =
  Arg.(value & flag & info [ "micro" ] ~doc:"Run only the micro-benchmarks.")

let smoke =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:"Run a tiny instrumented build and emit BENCH_obs.json only.")

let cmd =
  let doc = "Regenerate the evaluation of the online index build paper" in
  Cmd.v (Cmd.info "oib-bench" ~doc) Term.(const main $ exps $ micro $ smoke)

let () = exit (Cmd.eval' cmd)
