(* Benchmark harness entry point.

   dune exec bench/main.exe                 — every experiment + micro
   dune exec bench/main.exe -- --exp e4     — one experiment
   dune exec bench/main.exe -- --micro      — micro-benchmarks only

   Each experiment regenerates one row-set of DESIGN.md's experiment index;
   EXPERIMENTS.md records the claim-vs-measured comparison. *)

let run_experiment name =
  match List.assoc_opt (String.lowercase_ascii name) Experiments.all with
  | Some f ->
    f ();
    true
  | None ->
    Printf.eprintf "unknown experiment %S (known: %s)\n" name
      (String.concat ", " (List.map fst Experiments.all));
    false

let main exps micro_only smoke baseline =
  if smoke then begin
    (* tiny instrumented config: exercises the whole observability path
       (trace, progress, histograms, BENCH_obs.json, BENCH_core.json) in
       a few seconds *)
    Obs_report.run ~rows:200 ~workers:2 ~txns:10 ~sample_every:20 ();
    match baseline with
    | None -> 0
    | Some path ->
      if Obs_report.check_baseline ~baseline:path ~core:"BENCH_core.json" then 0
      else begin
        prerr_endline
          "bench: wall-time regression vs baseline (re-baseline with \
           `cp BENCH_core.json bench/BENCH_baseline.json` if intended)";
        1
      end
  end
  else if micro_only then begin
    Micro.run ();
    0
  end
  else begin
    match exps with
    | [] ->
      print_endline
        "OIB benchmark suite — reproduction of Mohan & Narang, SIGMOD 1992";
      List.iter (fun (_, f) -> f ()) Experiments.all;
      Micro.run ();
      Obs_report.run ();
      0
    | names -> if List.for_all run_experiment names then 0 else 1
  end

open Cmdliner

let exps =
  Arg.(
    value
    & opt_all string []
    & info [ "e"; "exp" ] ~docv:"EXP"
        ~doc:"Run one experiment (e0..e14); repeatable.")

let micro =
  Arg.(value & flag & info [ "micro" ] ~doc:"Run only the micro-benchmarks.")

let smoke =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:"Run a tiny instrumented build and emit BENCH_obs.json only.")

let baseline =
  Arg.(
    value
    & opt (some file) None
    & info [ "check-baseline" ] ~docv:"FILE"
        ~doc:
          "After --smoke, compare BENCH_core.json against $(docv) and exit \
           nonzero on a >25% wall-step regression in any run.")

let cmd =
  let doc = "Regenerate the evaluation of the online index build paper" in
  Cmd.v (Cmd.info "oib-bench" ~doc)
    Term.(const main $ exps $ micro $ smoke $ baseline)

let () = exit (Cmd.eval' cmd)
