(* Instrumented NSF + SF builds: per-phase virtual-time timings from the
   build-progress API and latency histogram summaries from the trace hub,
   written as machine-readable JSON (BENCH_obs.json) next to the printed
   report. *)

open Oib_core
module Sched = Oib_sim.Sched
module Driver = Oib_workload.Driver
module Trace = Oib_obs.Trace
module Hist = Oib_obs.Hist
module BS = Build_status

type run_result = {
  algorithm : string;
  seed : int;
  total_steps : int;
  status : BS.t;
  trace : Trace.t;
  samples : (int * string * int) list; (* (step, key, value), time order *)
}

let one_build alg ~rows ~workers ~txns ~seed ~sample_every =
  let trace = Trace.create () in
  ignore (Trace.attach_recorder trace ~capacity:1024);
  Trace.set_on_dump trace prerr_endline;
  (* collect the sampler's time series straight off the event stream *)
  let samples = ref [] in
  Trace.add_sink trace ~name:"series" (fun (s : Oib_obs.Event.stamped) ->
      match s.event with
      | Oib_obs.Event.Sample { key; value } ->
        samples := (s.step, key, value) :: !samples
      | _ -> ());
  let ctx = Engine.create ~seed ~page_capacity:1024 ~trace () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  let _ = Driver.populate ctx ~table:1 ~rows ~seed in
  Obs_sampler.install ctx ~every:sample_every;
  let _ =
    if workers > 0 then
      Driver.spawn_workers ctx
        { Driver.default with seed; workers; txns_per_worker = txns }
        ~table:1
    else
      ref
        { Driver.committed = 0; aborted = 0; deadlocks = 0; unique_violations = 0 }
  in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config alg) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  (match Engine.consistency_errors ctx with
  | [] -> ()
  | errs ->
    List.iter prerr_endline errs;
    failwith "obs_report: consistency oracle failed");
  match Engine.build_progress ctx with
  | [ status ] ->
    {
      algorithm = (match alg with Ib.Nsf -> "nsf" | Ib.Sf -> "sf");
      seed;
      total_steps = Sched.steps ctx.Ctx.sched;
      status;
      trace;
      samples = List.rev !samples;
    }
  | l -> failwith (Printf.sprintf "obs_report: %d statuses" (List.length l))

(* (phase, enter, duration) from the status history; the last phase runs
   to the end of the schedule *)
let phase_spans r =
  let rec spans = function
    | (p, s0) :: ((_, s1) :: _ as rest) -> (p, s0, s1 - s0) :: spans rest
    | [ (p, s0) ] -> [ (p, s0, r.total_steps - s0) ]
    | [] -> []
  in
  spans (BS.history r.status)

let json_of_run r =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  Printf.bprintf b "\"algorithm\":%S,\"seed\":%d,\"total_steps\":%d,"
    r.algorithm r.seed r.total_steps;
  Printf.bprintf b "\"keys_processed\":%d,\"checkpoints\":%d,"
    r.status.BS.keys_processed r.status.BS.checkpoints;
  Buffer.add_string b "\"phases\":[";
  List.iteri
    (fun i (p, enter, steps) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"phase\":%S,\"enter_step\":%d,\"steps\":%d}"
        (BS.phase_name p) enter steps)
    (phase_spans r);
  Buffer.add_string b "],\"histograms\":{";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "%S:%s" name (Hist.to_json h))
    (Trace.hists r.trace);
  (* the sampler's time series: key -> [[step, value], ...], so build
     progress can be plotted against updater throughput *)
  Buffer.add_string b "},\"series\":{";
  let keys = ref [] in
  let by_key = Hashtbl.create 32 in
  List.iter
    (fun (step, key, value) ->
      if not (Hashtbl.mem by_key key) then keys := key :: !keys;
      Hashtbl.replace by_key key
        ((step, value)
        :: Option.value (Hashtbl.find_opt by_key key) ~default:[]))
    r.samples;
  List.iteri
    (fun i key ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "%S:[" key;
      List.iteri
        (fun j (step, value) ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b "[%d,%d]" step value)
        (List.rev (Hashtbl.find by_key key));
      Buffer.add_char b ']')
    (List.rev !keys);
  Buffer.add_string b "}}";
  Buffer.contents b

let print_run r =
  Printf.printf "\n-- %s build (seed %d, %d steps) --\n" r.algorithm r.seed
    r.total_steps;
  List.iter
    (fun (p, enter, steps) ->
      Printf.printf "  %-8s enter=%-7d steps=%d\n" (BS.phase_name p) enter steps)
    (phase_spans r);
  Printf.printf "  keys=%d checkpoints=%d\n" r.status.BS.keys_processed
    r.status.BS.checkpoints;
  Format.printf "%a@." Trace.pp_hists r.trace

let run ?(rows = 2000) ?(workers = 4) ?(txns = 40) ?(seed = 7)
    ?(sample_every = 250) ?(out = "BENCH_obs.json") () =
  print_endline "== observability report (per-phase timings, latency hists) ==";
  let runs =
    [
      one_build Ib.Nsf ~rows ~workers ~txns ~seed ~sample_every;
      one_build Ib.Sf ~rows ~workers ~txns ~seed ~sample_every;
    ]
  in
  List.iter print_run runs;
  let oc = open_out out in
  output_string oc
    ("{"
    ^ String.concat ","
        (List.map (fun r -> Printf.sprintf "%S:%s" r.algorithm (json_of_run r)) runs)
    ^ "}\n");
  close_out oc;
  Printf.printf "wrote %s\n%!" out
