(* Instrumented NSF + SF builds: per-phase virtual-time timings from the
   build-progress API and latency histogram summaries from the trace hub,
   written as machine-readable JSON (BENCH_obs.json) next to the printed
   report. *)

open Oib_core
module Sched = Oib_sim.Sched
module Driver = Oib_workload.Driver
module Trace = Oib_obs.Trace
module Hist = Oib_obs.Hist
module Resource = Oib_obs.Resource
module Json = Oib_obs_analysis.Json
module Profiler = Oib_obs.Profiler
module BS = Build_status

type run_result = {
  algorithm : string;
  seed : int;
  total_steps : int;
  status : BS.t;
  trace : Trace.t;
  samples : (int * string * int) list; (* (step, key, value), time order *)
  prof : Profiler.t;
}

let one_build alg ~rows ~workers ~txns ~seed ~sample_every =
  let trace = Trace.create () in
  ignore (Trace.attach_recorder trace ~capacity:1024);
  Trace.set_on_dump trace prerr_endline;
  (* collect the sampler's time series straight off the event stream *)
  let samples = ref [] in
  Trace.add_sink trace ~name:"series" (fun (s : Oib_obs.Event.stamped) ->
      match s.event with
      | Oib_obs.Event.Sample { key; value } ->
        samples := (s.step, key, value) :: !samples
      | _ -> ());
  let ctx = Engine.create ~seed ~page_capacity:1024 ~trace () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  let _ = Driver.populate ctx ~table:1 ~rows ~seed in
  Obs_sampler.install ctx ~every:sample_every;
  (* a denser cadence than the metrics plane: profiles want stacks, not
     series, and sampling from a hook never advances virtual time *)
  let prof, _ =
    Obs_sampler.install_profiler ctx ~every:(max 1 (sample_every / 10)) ()
  in
  let _ =
    if workers > 0 then
      Driver.spawn_workers ctx
        { Driver.default with seed; workers; txns_per_worker = txns }
        ~table:1
    else
      ref
        { Driver.committed = 0; aborted = 0; deadlocks = 0; unique_violations = 0 }
  in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config alg) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  (match Engine.consistency_errors ctx with
  | [] -> ()
  | errs ->
    List.iter prerr_endline errs;
    failwith "obs_report: consistency oracle failed");
  match Engine.build_progress ctx with
  | [ status ] ->
    {
      algorithm = (match alg with Ib.Nsf -> "nsf" | Ib.Sf -> "sf");
      seed;
      total_steps = Sched.steps ctx.Ctx.sched;
      status;
      trace;
      samples = List.rev !samples;
      prof;
    }
  | l -> failwith (Printf.sprintf "obs_report: %d statuses" (List.length l))

(* (phase, enter, duration) from the status history; the last phase runs
   to the end of the schedule *)
let phase_spans r =
  let rec spans = function
    | (p, s0) :: ((_, s1) :: _ as rest) -> (p, s0, s1 - s0) :: spans rest
    | [ (p, s0) ] -> [ (p, s0, r.total_steps - s0) ]
    | [] -> []
  in
  spans (BS.history r.status)

let json_of_run r =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  Printf.bprintf b "\"algorithm\":%S,\"seed\":%d,\"total_steps\":%d,"
    r.algorithm r.seed r.total_steps;
  Printf.bprintf b "\"keys_processed\":%d,\"checkpoints\":%d,"
    r.status.BS.keys_processed r.status.BS.checkpoints;
  Buffer.add_string b "\"phases\":[";
  List.iteri
    (fun i (p, enter, steps) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"phase\":%S,\"enter_step\":%d,\"steps\":%d}"
        (BS.phase_name p) enter steps)
    (phase_spans r);
  Buffer.add_string b "],\"histograms\":{";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "%S:%s" name (Hist.to_json h))
    (Trace.hists r.trace);
  (* the sampler's time series: key -> [[step, value], ...], so build
     progress can be plotted against updater throughput *)
  Buffer.add_string b "},\"series\":{";
  let keys = ref [] in
  let by_key = Hashtbl.create 32 in
  List.iter
    (fun (step, key, value) ->
      if not (Hashtbl.mem by_key key) then keys := key :: !keys;
      Hashtbl.replace by_key key
        ((step, value)
        :: Option.value (Hashtbl.find_opt by_key key) ~default:[]))
    r.samples;
  List.iteri
    (fun i key ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "%S:[" key;
      List.iteri
        (fun j (step, value) ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b "[%d,%d]" step value)
        (List.rev (Hashtbl.find by_key key));
      Buffer.add_char b ']')
    (List.rev !keys);
  Buffer.add_string b "}}";
  Buffer.contents b

(* BENCH_core.json: the standardized run trajectory every bench config
   emits — wall time in virtual steps, the build's attributed cost
   (compares, WAL bytes), foreground latency p99, and the per-phase
   resource breakdown — so runs are comparable across machines (virtual
   time) and across PRs (the smoke baseline check below). *)
let json_of_core_run r =
  let res = r.status.BS.resources in
  let fg_p99 =
    match Trace.find_hist r.trace "txn_latency" with
    | Some h -> Hist.percentile h 0.99
    | None -> 0.0
  in
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "{\"name\":%S,\"algorithm\":%S,\"seed\":%d,\"wall_steps\":%d,"
    r.algorithm r.algorithm r.seed r.total_steps;
  Printf.bprintf b "\"compares\":%d,\"log_bytes\":%d,\"fg_p99\":%.1f,"
    res.Resource.sort_compares res.Resource.log_bytes fg_p99;
  (* where the steps went: the profiler's wait-state breakdown, so a
     baseline failure can be explained (`oib-prof diff`) and not just
     detected. The baseline gate above only reads name + wall_steps, so
     adding this section never trips old baselines. *)
  Printf.bprintf b "\"profile\":{\"samples\":%d,\"rounds\":%d,\"by_state\":{"
    (Profiler.samples r.prof) (Profiler.ticks r.prof);
  List.iteri
    (fun i (state, n) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "%S:%d" state n)
    (Profiler.by_state r.prof);
  Buffer.add_string b "}},";
  Printf.bprintf b "\"cost\":%s,\"phases\":[" (Resource.to_json res);
  (* phase_spans and phase_costs both derive one entry per history
     transition, oldest first — pair them positionally *)
  let rec phases i spans costs =
    match (spans, costs) with
    | (p, _, steps) :: spans, (_, cost) :: costs ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"phase\":%S,\"steps\":%d,\"cost\":%s}"
        (BS.phase_name p) steps (Resource.to_json cost);
      phases (i + 1) spans costs
    | _ -> ()
  in
  phases 0 (phase_spans r) (BS.phase_costs r.status);
  Buffer.add_string b "]}";
  Buffer.contents b

(* resume_overhead: what a mid-build crash costs with range-tracked
   resume, measured by Experiments.measure_resume on this config's rows.
   A top-level key next to "runs" — the baseline gate below only reads
   runs' name + wall_steps, so old baselines keep validating. *)
let json_of_resume (m : Experiments.resume_measure) =
  Printf.sprintf
    "{\"algorithm\":%S,\"crash_step\":%d,\"full_steps\":%d,\
     \"overhead_pct\":%.1f,\"pages_rescanned\":%d,\"resumed_steps\":%d}"
    (String.lowercase_ascii m.Experiments.r_alg)
    m.Experiments.r_crash_step m.Experiments.r_full_steps
    m.Experiments.r_overhead_pct m.Experiments.r_pages_rescanned
    m.Experiments.r_resumed_steps

let write_core_json ?(resume = []) runs out =
  let oc = open_out out in
  Printf.fprintf oc
    "{\"schema\":\"bench-core/v1\",\"resume_overhead\":[%s],\"runs\":[%s]}\n"
    (String.concat "," (List.map json_of_resume resume))
    (String.concat "," (List.map json_of_core_run runs));
  close_out oc;
  Printf.printf "wrote %s\n%!" out

(* One flamegraph-ready folded-stack file per run (flamegraph.pl
   PROF_nsf.folded > nsf.svg), plus one summary line per run APPENDED to
   the trajectory log — append, never overwrite, so the perf history
   survives across PRs. Trajectory keys are alphabetical (keep them
   sorted when extending) and the schema key versions the record. *)
let write_folded runs =
  List.iter
    (fun r ->
      let path = Printf.sprintf "PROF_%s.folded" r.algorithm in
      let oc = open_out path in
      output_string oc (Profiler.folded r.prof);
      close_out oc;
      Printf.printf "wrote %s (%d samples)\n%!" path (Profiler.samples r.prof))
    runs

let trajectory_path () =
  if Sys.file_exists "bench" && Sys.is_directory "bench" then
    Filename.concat "bench" "BENCH_trajectory.jsonl"
  else "BENCH_trajectory.jsonl"

let append_trajectory ?(resume = []) runs =
  let path = trajectory_path () in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  List.iter
    (fun r ->
      let res = r.status.BS.resources in
      Printf.fprintf oc
        "{\"algorithm\":%S,\"compares\":%d,\"keys_processed\":%d,\
         \"log_bytes\":%d,\"prof_samples\":%d,\
         \"schema\":\"bench-trajectory/v1\",\"seed\":%d,\"wall_steps\":%d}\n"
        r.algorithm res.Resource.sort_compares r.status.BS.keys_processed
        res.Resource.log_bytes (Profiler.samples r.prof) r.seed r.total_steps)
    runs;
  (* resume-overhead records ride the same log with a "kind" tag (plain
     run records carry no "kind"); wall_steps is the crash+resume total
     so trajectory plots stay step-denominated *)
  List.iter
    (fun (seed, m) ->
      Printf.fprintf oc
        "{\"algorithm\":%S,\"crash_step\":%d,\"full_steps\":%d,\
         \"kind\":\"resume_overhead\",\"overhead_pct\":%.1f,\
         \"pages_rescanned\":%d,\"schema\":\"bench-trajectory/v1\",\
         \"seed\":%d,\"wall_steps\":%d}\n"
        (String.lowercase_ascii m.Experiments.r_alg)
        m.Experiments.r_crash_step m.Experiments.r_full_steps
        m.Experiments.r_overhead_pct m.Experiments.r_pages_rescanned seed
        m.Experiments.r_resumed_steps)
    resume;
  close_out oc;
  Printf.printf "appended %d record(s) to %s\n%!"
    (List.length runs + List.length resume)
    path

(* Baseline gate for @bench-smoke: compare this run's BENCH_core.json
   against the checked-in baseline and fail on a >25%% wall-time
   regression in any run. Virtual steps are deterministic for a given
   (seed, config), so the gate is noise-free; the threshold only has to
   absorb legitimate algorithm changes, which must re-baseline. *)
let check_baseline ~baseline ~core =
  let load path =
    match Json.parse (In_channel.with_open_text path In_channel.input_all) with
    | Ok j -> j
    | Error msg -> failwith (Printf.sprintf "%s: bad JSON: %s" path msg)
  in
  let runs j =
    match Json.member "runs" j with
    | Some (Json.List l) ->
      List.filter_map
        (fun r ->
          match
            ( Option.bind (Json.member "name" r) Json.to_string,
              Option.bind (Json.member "wall_steps" r) Json.to_int )
          with
          | Some name, Some steps -> Some (name, steps)
          | _ -> None)
        l
    | _ -> []
  in
  let base = runs (load baseline) and now = runs (load core) in
  let ok = ref true in
  List.iter
    (fun (name, base_steps) ->
      match List.assoc_opt name now with
      | None ->
        Printf.printf "baseline: run %S missing from %s\n" name core;
        ok := false
      | Some steps ->
        let limit = base_steps * 5 / 4 in
        let verdict = if steps > limit then "REGRESSION" else "ok" in
        Printf.printf "baseline: %-4s wall_steps %d vs %d (limit %d) %s\n"
          name steps base_steps limit verdict;
        if steps > limit then ok := false)
    base;
  if base = [] then begin
    Printf.printf "baseline: no runs in %s\n" baseline;
    ok := false
  end;
  !ok

let print_run r =
  Printf.printf "\n-- %s build (seed %d, %d steps) --\n" r.algorithm r.seed
    r.total_steps;
  List.iter
    (fun (p, enter, steps) ->
      Printf.printf "  %-8s enter=%-7d steps=%d\n" (BS.phase_name p) enter steps)
    (phase_spans r);
  Printf.printf "  keys=%d checkpoints=%d\n" r.status.BS.keys_processed
    r.status.BS.checkpoints;
  Format.printf "%a@." Trace.pp_hists r.trace

let run ?(rows = 2000) ?(workers = 4) ?(txns = 40) ?(seed = 7)
    ?(sample_every = 250) ?(out = "BENCH_obs.json")
    ?(core_out = "BENCH_core.json") () =
  print_endline "== observability report (per-phase timings, latency hists) ==";
  let runs =
    [
      one_build Ib.Nsf ~rows ~workers ~txns ~seed ~sample_every;
      one_build Ib.Sf ~rows ~workers ~txns ~seed ~sample_every;
    ]
  in
  List.iter print_run runs;
  let oc = open_out out in
  output_string oc
    ("{"
    ^ String.concat ","
        (List.map (fun r -> Printf.sprintf "%S:%s" r.algorithm (json_of_run r)) runs)
    ^ "}\n");
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  let resume = Experiments.resume_measures ~rows ~seed () in
  List.iter
    (fun (m : Experiments.resume_measure) ->
      Printf.printf
        "resume_overhead: %-4s full=%d crash_at=%d resumed=%d (+%.1f%%) \
         pages_rescanned=%d\n"
        m.Experiments.r_alg m.Experiments.r_full_steps
        m.Experiments.r_crash_step m.Experiments.r_resumed_steps
        m.Experiments.r_overhead_pct m.Experiments.r_pages_rescanned)
    resume;
  write_core_json ~resume runs core_out;
  write_folded runs;
  append_trajectory ~resume:(List.map (fun m -> (seed, m)) resume) runs
