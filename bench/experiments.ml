(* Experiment harness: one function per experiment in DESIGN.md's index
   (E1..E12), each printing a paper-style results table. The paper itself
   has no quantitative evaluation — Section 4 compares NSF and SF
   qualitatively — so each experiment quantifies one of its claims. *)

open Oib_core
open Oib_util
module Sched = Oib_sim.Sched
module Metrics = Oib_sim.Metrics
module Driver = Oib_workload.Driver
module TP = Table_printer

let alg_name = function Ib.Nsf -> "NSF" | Ib.Sf -> "SF"

let f1 v = Printf.sprintf "%.1f" v
let f3 v = Printf.sprintf "%.3f" v

(* standard rig: populated table + optional workers + one build; returns
   (ctx, worker stats, metric delta over the build window, build steps) *)
let rig ?(rows = 1500) ?(seed = 7) ?(workers = 0) ?(txns = 0)
    ?(cfg = Ib.default_config Ib.Sf) ?(spec_unique = false)
    ?(key_cols = [ 0 ]) ?(driver = Driver.default) () =
  let ctx = Engine.create ~seed ~page_capacity:1024 () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  let _ = Driver.populate ctx ~table:1 ~rows ~seed in
  let stats =
    if workers > 0 then
      Driver.spawn_workers ctx
        { driver with Driver.seed; workers; txns_per_worker = txns }
        ~table:1
    else ref { Driver.committed = 0; aborted = 0; deadlocks = 0; unique_violations = 0 }
  in
  (* the metric window covers exactly the build: snapshots are taken
     inside the builder fiber *)
  let steps = ref 0 in
  let d = ref (Metrics.create ()) in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         let t0 = Sched.steps ctx.Ctx.sched in
         let before = Metrics.snapshot ctx.Ctx.metrics in
         Ib.build_index ctx cfg ~table:1
           { Ib.index_id = 10; key_cols; unique = spec_unique };
         steps := Sched.steps ctx.Ctx.sched - t0;
         d := Metrics.diff ~after:(Metrics.snapshot ctx.Ctx.metrics) ~before));
  Sched.run ctx.Ctx.sched;
  (ctx, !stats, !d, !steps)

let oracle_ok ctx = Engine.consistency_errors ctx = []

(* --- E0: the availability headline (§1) — what concurrent updaters
   experience during an index build, offline baseline vs NSF vs SF --- *)
let e0 () =
  let t =
    TP.create
      ~columns:
        [ "method"; "txns done when build ends"; "committed total";
          "updater lock waits"; "build steps" ]
  in
  let variants =
    [
      ("offline (full quiesce)", `Offline);
      ("NSF (descriptor quiesce)", `Nsf);
      ("SF (no quiesce)", `Sf);
    ]
  in
  List.iter
    (fun (name, v) ->
      let ctx = Engine.create ~seed:31 ~page_capacity:1024 () in
      let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
      let _ = Driver.populate ctx ~table:1 ~rows:1500 ~seed:31 in
      let stats =
        Driver.spawn_workers ctx
          { Driver.default with seed = 31; workers = 4; txns_per_worker = 60 }
          ~table:1
      in
      let during = ref 0 and steps = ref 0 in
      let waits_before = ctx.Ctx.metrics.lock_waits in
      ignore
        (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
             let t0 = Sched.steps ctx.Ctx.sched in
             let spec = { Ib.index_id = 10; key_cols = [ 0 ]; unique = false } in
             (match v with
             | `Offline ->
               Ib.build_index_offline ctx (Ib.default_config Ib.Sf) ~table:1 spec
             | `Nsf -> Ib.build_index ctx (Ib.default_config Ib.Nsf) ~table:1 spec
             | `Sf -> Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1 spec);
             steps := Sched.steps ctx.Ctx.sched - t0;
             during := (!stats).committed));
      Sched.run ctx.Ctx.sched;
      assert (oracle_ok ctx);
      TP.add_row t
        [
          name;
          string_of_int !during;
          string_of_int (!stats).committed;
          string_of_int (ctx.Ctx.metrics.lock_waits - waits_before);
          string_of_int !steps;
        ])
    variants;
  TP.print
    ~title:
      "E0  availability during the build (§1: disallowing updates \
       \"may become unacceptable\")"
    t

(* --- E1: correctness of both algorithms, unique and nonunique, under
   concurrent updates, across seeds --- *)
let e1 () =
  let t = TP.create ~columns:[ "algorithm"; "index"; "seeds"; "oracle clean"; "built" ] in
  List.iter
    (fun (alg, uniq) ->
      let seeds = 8 in
      let clean = ref 0 and ready = ref 0 in
      for seed = 1 to seeds do
        (* unique indexes need distinct key values: index the payload col *)
        let key_cols = if uniq then [ 1 ] else [ 0 ] in
        let ctx, _, _, _ =
          rig ~rows:400 ~seed ~workers:3 ~txns:15 ~cfg:(Ib.default_config alg)
            ~spec_unique:uniq ~key_cols
            ~driver:{ Driver.default with delete_w = 3; update_w = 0 }
            ()
        in
        if oracle_ok ctx then incr clean;
        if (Catalog.index ctx.Ctx.catalog 10).phase = Catalog.Ready then
          incr ready
      done;
      TP.add_row t
        [
          alg_name alg;
          (if uniq then "unique" else "nonunique");
          string_of_int seeds;
          Printf.sprintf "%d/%d" !clean seeds;
          Printf.sprintf "%d/%d" !ready seeds;
        ])
    [ (Ib.Nsf, false); (Ib.Nsf, true); (Ib.Sf, false); (Ib.Sf, true) ];
  TP.print ~title:"E1  correct online builds under concurrent updates (§2, §3)" t

(* --- E2: SF's efficiency claims vs NSF, as concurrent update rate grows
   (§4) --- *)
let e2 () =
  let t =
    TP.create
      ~columns:
        [
          "update txns"; "alg"; "log bytes"; "log recs"; "latches";
          "traversals"; "build steps"; "sidefile";
        ]
  in
  List.iter
    (fun txns ->
      List.iter
        (fun alg ->
          let workers = if txns = 0 then 0 else 4 in
          let per = if workers = 0 then 0 else txns / workers in
          let _, _, d, steps =
            rig ~rows:1500 ~workers ~txns:per ~cfg:(Ib.default_config alg) ()
          in
          TP.add_row t
            [
              string_of_int txns;
              alg_name alg;
              string_of_int d.log_bytes;
              string_of_int d.log_records;
              string_of_int d.latch_acquires;
              string_of_int d.tree_traversals;
              string_of_int steps;
              string_of_int d.sidefile_appends;
            ])
        [ Ib.Nsf; Ib.Sf ];
      TP.add_sep t)
    [ 0; 60; 240; 600 ];
  TP.print
    ~title:
      "E2  build overheads vs concurrent update rate (§4: SF logs less, \
       latches less, avoids traversals)"
    t

(* --- E3: the quiesce. NSF must wait for open updaters before creating the
   descriptor; SF starts immediately (§2.2.1 vs §3.2.1) --- *)
let e3 () =
  let t =
    TP.create
      ~columns:[ "open txn holds (steps)"; "alg"; "descriptor wait (steps)" ]
  in
  List.iter
    (fun hold ->
      List.iter
        (fun alg ->
          let ctx = Engine.create ~seed:5 ~page_capacity:1024 () in
          let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
          let _ = Driver.populate ctx ~table:1 ~rows:100 ~seed:5 in
          (* a transaction already holds its IX table lock when the
             builder arrives, and keeps it for [hold] steps *)
          let txn = Oib_txn.Txn_manager.begin_txn ctx.Ctx.txns in
          if hold > 0 then
            ignore (Table_ops.insert ctx txn ~table:1 (Record.make [| "x"; "y" |]));
          ignore
            (Sched.spawn ctx.Ctx.sched ~name:"updater" (fun () ->
                 for _ = 1 to hold do
                   Sched.yield ctx.Ctx.sched
                 done;
                 Oib_txn.Txn_manager.commit ctx.Ctx.txns txn));
          let wait = ref 0 in
          ignore
            (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
                 Sched.yield ctx.Ctx.sched;
                 let t0 = Sched.steps ctx.Ctx.sched in
                 (* measure until the descriptor exists *)
                 ignore
                   (Sched.spawn ctx.Ctx.sched ~name:"probe" (fun () ->
                        let rec go () =
                          match Catalog.index ctx.Ctx.catalog 10 with
                          | _ -> wait := Sched.steps ctx.Ctx.sched - t0
                          | exception Invalid_argument _ ->
                            Sched.yield ctx.Ctx.sched;
                            go ()
                        in
                        go ()));
                 Ib.build_index ctx (Ib.default_config alg) ~table:1
                   { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
          Sched.run ctx.Ctx.sched;
          TP.add_row t
            [ string_of_int hold; alg_name alg; string_of_int !wait ])
        [ Ib.Nsf; Ib.Sf ];
      TP.add_sep t)
    [ 0; 100; 400 ];
  TP.print
    ~title:"E3  update quiesce at descriptor creation (NSF waits; SF never)" t

(* --- E4: clustering of the resulting tree (§2.3.1, §4), with the
   specialized-split ablation --- *)
let e4 () =
  let t =
    TP.create
      ~columns:[ "update txns"; "variant"; "clustering"; "leaf fill"; "leaves" ]
  in
  let variants =
    [
      ("offline (quiesced)", `Offline);
      ("NSF normal split", `Nsf false);
      ("NSF specialized split", `Nsf true);
      ("SF bottom-up", `Sf);
    ]
  in
  List.iter
    (fun txns ->
      List.iter
        (fun (name, v) ->
          let workers = if txns = 0 then 0 else 4 in
          let per = if workers = 0 then 0 else txns / workers in
          let cfg, workers =
            match v with
            | `Offline -> (Ib.default_config Ib.Sf, 0)
            | `Nsf s ->
              ({ (Ib.default_config Ib.Nsf) with specialized_split = s }, workers)
            | `Sf -> (Ib.default_config Ib.Sf, workers)
          in
          let ctx, _, _, _ = rig ~rows:1500 ~workers ~txns:per ~cfg () in
          let tree = (Catalog.index ctx.Ctx.catalog 10).tree in
          TP.add_row t
            [
              string_of_int txns;
              name;
              f3 (Oib_btree.Bt_check.clustering tree);
              f3 (Oib_btree.Bt_check.avg_leaf_fill tree);
              string_of_int (Oib_btree.Btree.leaf_count tree);
            ])
        variants;
      TP.add_sep t)
    [ 0; 60; 300 ];
  TP.print
    ~title:
      "E4  index clustering by build method (§4: SF best; NSF's specialized \
       split approaches bottom-up)"
    t

(* --- E5: restartable sort — work lost vs checkpoint interval (§5) --- *)
let e5 () =
  let t =
    TP.create
      ~columns:
        [ "ckpt every (pages)"; "crash at (page)"; "pages rescanned";
          "merge ckpt every"; "merge crash at"; "keys re-merged" ]
  in
  let n = 20_000 and page = 50 in
  let keys =
    let rng = Rng.create 9 in
    let a = Array.init n (fun i -> Ikey.make (Printf.sprintf "k%08d" i) (Rid.make ~page:i ~slot:0)) in
    Rng.shuffle rng a;
    a
  in
  let pages = n / page in
  List.iter
    (fun (ckpt_pages, merge_ckpt) ->
      (* deliberately misaligned with every checkpoint interval *)
      let crash_at = (pages * 3 / 4) + 7 in
      let kv = Oib_storage.Durable_kv.create () in
      let store = ref (Oib_sort.Run_store.create ()) in
      let sorter =
        Oib_sort.Sort_phase.start kv !store ~ckpt_id:"e5" ~memory_keys:512
      in
      (try
         for p = 0 to pages - 1 do
           if p = crash_at then raise Exit;
           Oib_sort.Sort_phase.feed_page sorter ~scan_pos:p
             (Array.to_list (Array.sub keys (p * page) page));
           if (p + 1) mod ckpt_pages = 0 then
             Oib_sort.Sort_phase.checkpoint sorter
         done
       with Exit -> ());
      store := Oib_sort.Run_store.crash !store;
      let sorter =
        Option.get
          (Oib_sort.Sort_phase.resume kv !store ~ckpt_id:"e5" ~memory_keys:512)
      in
      let resume_from = Oib_sort.Sort_phase.scan_pos sorter + 1 in
      for p = resume_from to pages - 1 do
        Oib_sort.Sort_phase.feed_page sorter ~scan_pos:p
          (Array.to_list (Array.sub keys (p * page) page))
      done;
      let runs = Oib_sort.Sort_phase.finish sorter in
      (* merge with a mid-merge crash *)
      let merge_crash = (n / 2) + 137 in
      (try
         ignore
           (Oib_sort.Merge_phase.merge ~stop_after:merge_crash kv !store
              ~ckpt_id:"e5m" ~inputs:runs ~output:"e5out"
              ~ckpt_every:merge_ckpt)
       with Oib_sort.Merge_phase.Injected_crash -> ());
      store := Oib_sort.Run_store.crash !store;
      let out_before =
        Oib_sort.Run_store.forced_length
          (Oib_sort.Run_store.find_run !store "e5out")
      in
      let out =
        Oib_sort.Merge_phase.merge kv !store ~ckpt_id:"e5m" ~inputs:runs
          ~output:"e5out" ~ckpt_every:merge_ckpt
      in
      assert (Oib_sort.Run_store.length out = n);
      TP.add_row t
        [
          string_of_int ckpt_pages;
          string_of_int crash_at;
          string_of_int (crash_at - resume_from);
          string_of_int merge_ckpt;
          string_of_int merge_crash;
          string_of_int (merge_crash - out_before);
        ])
    [ (10, 500); (50, 2000); (100, 8000); (200, 20000) ];
  TP.print
    ~title:
      "E5  restartable sort: work lost after a crash is bounded by the \
       checkpoint interval (§5)"
    t

(* --- E6: IB insert/bulk-phase checkpointing bounds re-done work
   (§2.2.3 / §3.2.4) --- *)
let e6 () =
  let t =
    TP.create
      ~columns:
        [ "alg"; "ckpt every (keys)"; "keys redone after crash"; "consistent" ]
  in
  List.iter
    (fun (alg, every) ->
      let cfg =
        {
          (Ib.default_config alg) with
          ckpt_every_keys = every;
          ckpt_every_pages = 16;
        }
      in
      let ctx = Engine.create ~seed:3 ~page_capacity:1024 () in
      let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
      let _ = Driver.populate ctx ~table:1 ~rows:2000 ~seed:3 in
      ignore
        (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
             Ib.build_index ctx cfg ~table:1
               { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
      (* crash when ~half the keys are in the tree (a point deliberately
         misaligned with the checkpoint cadences) *)
      Sched.set_crash_trap ctx.Ctx.sched (fun _ ->
          ctx.Ctx.metrics.keys_inserted >= 1037);
      (try Sched.run ctx.Ctx.sched with Sched.Crashed -> ());
      let crash_pos = ctx.Ctx.metrics.keys_inserted in
      let ctx' = Engine.crash ctx in
      (* count only the resumed run's work *)
      Metrics.reset ctx'.Ctx.metrics;
      ignore
        (Sched.spawn ctx'.Ctx.sched ~name:"resume" (fun () ->
             Ib.resume_builds ctx' cfg));
      Sched.run ctx'.Ctx.sched;
      (* work redone = insert attempts in the resumed run beyond the keys
         that genuinely remained at the crash. NSF re-attempts show up as
         duplicate rejections (its inserts are logged and replayed) or
         re-inserts; SF's bulk resume re-adds keys above its image. *)
      let attempts =
        ctx'.Ctx.metrics.keys_inserted
        + ctx'.Ctx.metrics.keys_rejected_duplicate
      in
      let redone = max 0 (attempts - (2000 - crash_pos)) in
      TP.add_row t
        [
          alg_name alg;
          string_of_int every;
          string_of_int redone;
          string_of_bool (oracle_ok ctx');
        ])
    [ (Ib.Nsf, 96); (Ib.Nsf, 384); (Ib.Nsf, 1536);
      (Ib.Sf, 96); (Ib.Sf, 384); (Ib.Sf, 1536) ];
  TP.print
    ~title:
      "E6  IB progress checkpoints bound re-done insert work after a crash \
       (§2.2.3, §3.2.4)"
    t

(* --- E7: pseudo-deleted keys cost space until garbage collection (§2.2.4)
   --- *)
let e7 () =
  let t =
    TP.create
      ~columns:
        [ "delete weight"; "entries"; "pseudo"; "leaves before gc";
          "collected"; "leaves after"; "lock calls (gc)" ]
  in
  List.iter
    (fun delete_w ->
      let driver = { Driver.default with delete_w; insert_w = 2; update_w = 2 } in
      let ctx, _, _, _ =
        rig ~rows:1200 ~workers:4 ~txns:60 ~cfg:(Ib.default_config Ib.Nsf)
          ~driver ()
      in
      let tree = (Catalog.index ctx.Ctx.catalog 10).tree in
      let entries = Oib_btree.Btree.entry_count tree in
      let pseudo = Oib_btree.Btree.pseudo_count tree in
      let leaves_before = Oib_btree.Btree.leaf_count tree in
      let locks_before = ctx.Ctx.metrics.lock_calls in
      let collected = Ib.gc_pseudo_deleted ctx ~index_id:10 in
      let gc_locks = ctx.Ctx.metrics.lock_calls - locks_before in
      TP.add_row t
        [
          string_of_int delete_w;
          string_of_int entries;
          string_of_int pseudo;
          string_of_int leaves_before;
          string_of_int collected;
          string_of_int (Oib_btree.Btree.leaf_count tree);
          Printf.sprintf "%d (Commit_LSN shortcut)" gc_locks;
        ])
    [ 0; 3; 6; 9 ];
  TP.print
    ~title:
      "E7  pseudo-delete space overhead and garbage collection (§2.2.4; \
       quiescent system => zero lock calls)"
    t

(* --- E8: side-file growth with concurrency; sorted application ablation
   (§3.2.5) --- *)
let e8 () =
  let t =
    TP.create
      ~columns:
        [ "workers"; "apply"; "sidefile entries"; "catch-up ops";
          "drain traversals"; "drain fast-path" ]
  in
  List.iter
    (fun workers ->
      List.iter
        (fun sorted ->
          let cfg = { (Ib.default_config Ib.Sf) with sort_sidefile = sorted } in
          (* generous per-worker budget so traffic outlasts the build *)
          let ctx, _, d, _ =
            rig ~rows:1500 ~seed:13 ~workers ~txns:120 ~cfg ()
          in
          assert (oracle_ok ctx);
          (* catch-up ops = drain applications, visible in the log as the
             builder's (txn-less) index records *)
          let catchup = ref 0 in
          List.iter
            (fun (r : Oib_wal.Log_record.t) ->
              match (r.txn, r.body) with
              | None, Oib_wal.Log_record.Index_key _ -> incr catchup
              | _ -> ())
            (Oib_wal.Log_manager.all_records ctx.Ctx.log);
          TP.add_row t
            [
              string_of_int workers;
              (if sorted then "sorted" else "sequential");
              string_of_int d.sidefile_appends;
              string_of_int !catchup;
              string_of_int d.tree_traversals;
              string_of_int d.fast_path_inserts;
            ])
        [ false; true ];
      TP.add_sep t)
    [ 2; 4; 8 ];
  TP.print
    ~title:
      "E8  side-file volume grows with update concurrency; sorting the \
       side-file turns drain traversals into remembered-path hits (§3.2.5)"
    t

(* --- E9: multiple indexes in one scan (§6.2) --- *)
let e9 () =
  let t =
    TP.create
      ~columns:[ "indexes"; "one-scan page reads"; "separate-builds reads"; "savings" ]
  in
  let build_specs ctx specs =
    let before = ctx.Ctx.metrics.sequential_reads in
    ignore
      (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
           Ib.build_indexes ctx (Ib.default_config Ib.Sf) ~table:1 specs));
    Sched.run ctx.Ctx.sched;
    ctx.Ctx.metrics.sequential_reads - before
  in
  let fresh () =
    let ctx = Engine.create ~seed:3 ~page_capacity:1024 () in
    let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
    let _ = Driver.populate ctx ~table:1 ~rows:3000 ~seed:3 in
    ctx
  in
  List.iter
    (fun k ->
      let specs =
        List.init k (fun i ->
            { Ib.index_id = 10 + i; key_cols = [ i mod 2 ]; unique = false })
      in
      let one = build_specs (fresh ()) specs in
      let ctx = fresh () in
      let sep =
        List.fold_left (fun acc s -> acc + build_specs ctx [ s ]) 0 specs
      in
      TP.add_row t
        [
          string_of_int k;
          string_of_int one;
          string_of_int sep;
          f1 (float_of_int sep /. float_of_int (max 1 one)) ^ "x";
        ])
    [ 1; 2; 3; 4 ];
  TP.print ~title:"E9  k indexes in one data scan (§6.2)" t

(* --- E10: unique violations detected exactly when real (§2.2.3) --- *)
let e10 () =
  let t =
    TP.create
      ~columns:[ "scenario"; "alg"; "trials"; "violations"; "expected" ]
  in
  let trial alg ~plant_dup seed =
    let ctx = Engine.create ~seed ~page_capacity:1024 () in
    let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
    (match
       Engine.run_txn ctx (fun txn ->
           for i = 0 to 299 do
             ignore
               (Table_ops.insert ctx txn ~table:1
                  (Record.make [| "c"; Printf.sprintf "u%05d" i |]))
           done;
           if plant_dup then
             ignore
               (Table_ops.insert ctx txn ~table:1
                  (Record.make [| "c"; "u00042" |])))
     with
    | Ok () -> ()
    | Error _ -> assert false);
    let violated = ref false in
    ignore
      (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
           match
             Ib.build_index ctx (Ib.default_config alg) ~table:1
               { Ib.index_id = 10; key_cols = [ 1 ]; unique = true }
           with
          | () -> ()
          | exception Ib.Build_unique_violation _ -> violated := true));
    Sched.run ctx.Ctx.sched;
    !violated
  in
  List.iter
    (fun alg ->
      let trials = 6 in
      let with_dup = ref 0 and without_dup = ref 0 in
      for seed = 1 to trials do
        if trial alg ~plant_dup:true seed then incr with_dup;
        if trial alg ~plant_dup:false seed then incr without_dup
      done;
      TP.add_row t
        [ "committed duplicate"; alg_name alg; string_of_int trials;
          string_of_int !with_dup; string_of_int trials ];
      TP.add_row t
        [ "no duplicate"; alg_name alg; string_of_int trials;
          string_of_int !without_dup; "0" ])
    [ Ib.Nsf; Ib.Sf ];
  TP.print
    ~title:
      "E10  unique-key-value violations: always detected, never spurious \
       (§2.2.3, §6.1)"
    t

(* --- E11: NSF multi-key log records — batch size sweep (§2.3.1) --- *)
let e11 () =
  let t =
    TP.create
      ~columns:
        [ "batch size"; "IB bulk log records"; "IB log bytes"; "keys/record" ]
  in
  List.iter
    (fun batch ->
      let cfg = { (Ib.default_config Ib.Nsf) with batch_size = batch } in
      let ctx, _, _, _ = rig ~rows:2000 ~cfg () in
      let bulk = ref 0 and bulk_bytes = ref 0 and bulk_keys = ref 0 in
      List.iter
        (fun (r : Oib_wal.Log_record.t) ->
          match r.body with
          | Oib_wal.Log_record.Index_bulk_insert { keys; _ } ->
            incr bulk;
            bulk_keys := !bulk_keys + List.length keys;
            bulk_bytes := !bulk_bytes + Oib_wal.Log_record.encoded_size r
          | _ -> ())
        (Oib_wal.Log_manager.all_records ctx.Ctx.log);
      TP.add_row t
        [
          string_of_int batch;
          string_of_int !bulk;
          string_of_int !bulk_bytes;
          f1 (float_of_int !bulk_keys /. float_of_int (max 1 !bulk));
        ])
    [ 1; 8; 32; 128 ];
  TP.print
    ~title:
      "E11  one log record for multiple keys cuts NSF's logging overhead \
       (§2.3.1)"
    t

(* --- E12: why not catch up from the log? Side-file vs log volume (§6) --- *)
let e12 () =
  let t =
    TP.create
      ~columns:
        [ "workers"; "sidefile entries"; "sidefile bytes";
          "log bytes (build window)"; "log/sidefile" ]
  in
  List.iter
    (fun workers ->
      let ctx, _, d, _ =
        rig ~rows:1500 ~seed:19 ~workers ~txns:120
          ~cfg:(Ib.default_config Ib.Sf) ()
      in
      assert (oracle_ok ctx);
      (* a side-file entry is roughly one key + op flag; compare against
         everything the log recorded in the same window, which a log-based
         catch-up would have to scan (§6) *)
      let sf_bytes = d.sidefile_appends * 24 in
      TP.add_row t
        [
          string_of_int workers;
          string_of_int d.sidefile_appends;
          string_of_int sf_bytes;
          string_of_int d.log_bytes;
          (if d.sidefile_appends = 0 then "-"
           else f1 (float_of_int d.log_bytes /. float_of_int (max 1 sf_bytes)) ^ "x");
        ])
    [ 2; 4; 8 ];
  TP.print
    ~title:
      "E12  the side-file is far smaller than the log a log-based catch-up \
       would scan (§6)"
    t

(* --- E13: the index-organized-table variant (§6.2) --- *)
let e13 () =
  let t =
    TP.create
      ~columns:
        [ "scan order"; "oracle"; "clustering"; "sidefile entries";
          "page reads" ]
  in
  let run_one key_order =
    let ctx = Engine.create ~seed:23 ~page_capacity:1024 () in
    let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
    (match
       Engine.run_txn ctx (fun txn ->
           for i = 0 to 1499 do
             ignore
               (Table_ops.insert ctx txn ~table:1
                  (Record.make
                     [| Printf.sprintf "pk%06d" i;
                        Printf.sprintf "s%04d" (i mod 89) |]))
           done)
     with
    | Ok () -> ()
    | Error _ -> assert false);
    (* a unique primary index exists either way *)
    ignore
      (Sched.spawn ctx.Ctx.sched ~name:"ibp" (fun () ->
           Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
             { Ib.index_id = 1; key_cols = [ 0 ]; unique = true }));
    Sched.run ctx.Ctx.sched;
    (* secondary-only updaters *)
    let rng = Rng.create 23 in
    let rids =
      Array.of_list (Driver.live_rids ctx ~table:1)
    in
    for w = 0 to 2 do
      ignore
        (Sched.spawn ctx.Ctx.sched ~name:(Printf.sprintf "w%d" w) (fun () ->
             for _ = 1 to 40 do
               (match
                  Engine.run_txn ctx (fun txn ->
                      let rid = rids.(Rng.int rng (Array.length rids)) in
                      match Table_ops.read ctx txn ~table:1 rid with
                      | Some r ->
                        Table_ops.update ctx txn ~table:1 rid
                          (Record.make
                             [| r.Record.cols.(0);
                                Printf.sprintf "s%04d" (Rng.int rng 89) |])
                      | None -> ())
                with
               | Ok () | Error _ -> ());
               Sched.yield ctx.Ctx.sched
             done))
    done;
    let before = Metrics.snapshot ctx.Ctx.metrics in
    ignore
      (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
           if key_order then
             Ib.build_secondary_via_primary ctx (Ib.default_config Ib.Sf)
               ~table:1 ~primary:1
               { Ib.index_id = 2; key_cols = [ 1 ]; unique = false }
           else
             Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
               { Ib.index_id = 2; key_cols = [ 1 ]; unique = false }));
    Sched.run ctx.Ctx.sched;
    let d = Metrics.diff ~after:(Metrics.snapshot ctx.Ctx.metrics) ~before in
    let tree = (Catalog.index ctx.Ctx.catalog 2).tree in
    TP.add_row t
      [
        (if key_order then "primary-key order (IOT)" else "RID order (heap)");
        (if oracle_ok ctx then "clean" else "VIOLATED");
        f3 (Oib_btree.Bt_check.clustering tree);
        string_of_int d.sidefile_appends;
        string_of_int d.sequential_reads;
      ]
  in
  run_one false;
  run_one true;
  TP.print
    ~title:
      "E13  secondary build over an index-organized table: the current-key \
       scan position replaces Current-RID (§6.2)"
    t

(* --- E14: crash + range-tracked resume overhead — committed scan ranges
   (Range_set, §5's checkpoint idea applied to the whole scan) bound what a
   mid-build crash costs end to end --- *)

type resume_measure = {
  r_alg : string;
  r_full_steps : int;
  r_crash_step : int;
  r_resumed_steps : int;  (* crashed incarnation + recovery + resume *)
  r_pages_rescanned : int;
  r_overhead_pct : float;
}

let measure_resume alg ~rows ~seed =
  let cfg =
    {
      (Ib.default_config alg) with
      ckpt_every_pages = 8;
      ckpt_every_keys = 64;
      memory_keys = 64;
    }
  in
  let fresh () =
    let ctx = Engine.create ~seed ~page_capacity:1024 () in
    let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
    let _ = Driver.populate ctx ~table:1 ~rows ~seed in
    ctx
  in
  let spawn_build ctx =
    ignore
      (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
           Ib.build_index ctx cfg ~table:1
             { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }))
  in
  (* uninterrupted reference run *)
  let ctx = fresh () in
  let t0 = Sched.steps ctx.Ctx.sched in
  spawn_build ctx;
  Sched.run ctx.Ctx.sched;
  assert (oracle_ok ctx);
  let full = Sched.steps ctx.Ctx.sched - t0 in
  let full_reads = ctx.Ctx.metrics.sequential_reads in
  (* the same build, killed halfway, recovered and resumed *)
  let ctx = fresh () in
  let t0 = Sched.steps ctx.Ctx.sched in
  let crash_at = t0 + (full / 2) in
  spawn_build ctx;
  Sched.set_crash_trap ctx.Ctx.sched (fun s -> s >= crash_at);
  (match Sched.run ctx.Ctx.sched with
  | () -> failwith "resume bench: build finished before the crash point"
  | exception Sched.Crashed -> ());
  let steps1 = Sched.steps ctx.Ctx.sched - t0 in
  let ctx' = Engine.crash ctx in
  ignore
    (Sched.spawn ctx'.Ctx.sched ~name:"ib-resume" (fun () ->
         Ib.resume_builds ctx' cfg));
  Sched.run ctx'.Ctx.sched;
  assert (oracle_ok ctx');
  assert ((Catalog.index ctx'.Ctx.catalog 10).phase = Catalog.Ready);
  let total = steps1 + Sched.steps ctx'.Ctx.sched in
  {
    r_alg = alg_name alg;
    r_full_steps = full;
    r_crash_step = crash_at - t0;
    r_resumed_steps = total;
    (* metrics survive the crash, so the delta over the reference run is
       exactly the rescan (plus recovery's redo reads) the crash caused *)
    r_pages_rescanned = max 0 (ctx'.Ctx.metrics.sequential_reads - full_reads);
    r_overhead_pct =
      100.0 *. float_of_int (total - full) /. float_of_int (max 1 full);
  }

let resume_measures ?(rows = 2000) ?(seed = 7) () =
  List.map (fun alg -> measure_resume alg ~rows ~seed) [ Ib.Nsf; Ib.Sf ]

let e14 () =
  let t =
    TP.create
      ~columns:
        [ "alg"; "full build steps"; "crash at"; "crash+resume steps";
          "overhead"; "pages rescanned" ]
  in
  List.iter
    (fun m ->
      TP.add_row t
        [
          m.r_alg;
          string_of_int m.r_full_steps;
          string_of_int m.r_crash_step;
          string_of_int m.r_resumed_steps;
          f1 m.r_overhead_pct ^ "%";
          string_of_int m.r_pages_rescanned;
        ])
    (resume_measures ());
  TP.print
    ~title:
      "E14  crash + resume overhead: committed scan ranges bound the work a \
       mid-build crash costs (Range_set; §5 applied to the whole scan)"
    t

let all =
  [
    ("e0", e0); ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14);
  ]
