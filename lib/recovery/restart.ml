open Oib_storage
module LR = Oib_wal.Log_record
module Lsn = Oib_wal.Lsn

type analysis = {
  losers : (int * Lsn.t) list;
  winners : int list;
  builds_in_progress : (int * int) list;
  builds_done : int list;
  index_states : (int * int) list;
  max_lsn : Lsn.t;
  max_txn_id : int;
}

let analyze log =
  let last : (int, Lsn.t) Hashtbl.t = Hashtbl.create 32 in
  let ended : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  let committed : (int, unit) Hashtbl.t = Hashtbl.create 32 in
  let builds : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let states : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let done_builds = ref [] in
  let max_lsn = ref Lsn.nil in
  let max_txn = ref 0 in
  List.iter
    (fun (r : LR.t) ->
      if Lsn.( > ) r.lsn !max_lsn then max_lsn := r.lsn;
      (match r.txn with
      | Some id ->
        if id > !max_txn then max_txn := id;
        Hashtbl.replace last id r.lsn;
        (match r.body with
        | LR.Commit -> Hashtbl.replace committed id ()
        | LR.End -> Hashtbl.replace ended id ()
        | _ -> ())
      | None -> ());
      match r.body with
      | LR.Build_start { index; table } -> Hashtbl.replace builds index table
      | LR.Build_done { index } ->
        Hashtbl.remove builds index;
        done_builds := index :: !done_builds
      | LR.Index_state { index; state } ->
        (* records are in LSN order: last one per index wins *)
        Hashtbl.replace states index state
      | LR.Drop_index { index } -> Hashtbl.remove states index
      | _ -> ())
    (Oib_wal.Log_manager.durable_records log);
  let losers = ref [] and winners = ref [] in
  Hashtbl.iter
    (fun id lsn ->
      if Hashtbl.mem committed id then winners := id :: !winners
      else if not (Hashtbl.mem ended id) then losers := (id, lsn) :: !losers
      else
        (* ended without commit: a completed rollback; nothing to do *)
        ())
    last;
  {
    losers = List.sort (fun (a, _) (b, _) -> compare a b) !losers;
    winners = List.sort compare !winners;
    builds_in_progress = Hashtbl.fold (fun i t acc -> (i, t) :: acc) builds [];
    builds_done = !done_builds;
    index_states =
      List.sort compare (Hashtbl.fold (fun i s acc -> (i, s) :: acc) states []);
    max_lsn = !max_lsn;
    max_txn_id = !max_txn;
  }

let apply_heap_op page_payload op =
  let hp = Heap_page.of_payload page_payload in
  match op with
  | LR.Heap_insert { rid; record } -> Heap_page.put hp rid.Oib_util.Rid.slot record
  | LR.Heap_delete { rid; record = _ } -> Heap_page.remove hp rid.Oib_util.Rid.slot
  | LR.Heap_update { rid; new_record; _ } ->
    Heap_page.put hp rid.Oib_util.Rid.slot new_record

let redo_heap log pool ~page_capacity =
  let page_of id =
    match Buffer_pool.get ~role:"Heap_file" pool id with
    | p -> p
    | exception Not_found ->
      Buffer_pool.install ~role:"Heap_file" pool id
        ~payload:(Heap_page.Heap (Heap_page.create ~capacity:page_capacity))
        ~copy_payload:Heap_page.copy_payload
  in
  let redo_one lsn page op =
    let p = page_of page in
    if Lsn.( < ) p.Page.lsn lsn then begin
      apply_heap_op p.Page.payload op;
      p.Page.lsn <- lsn;
      Page.mark_dirty p
    end
  in
  List.iter
    (fun (r : LR.t) ->
      match r.body with
      | LR.Heap { page; op; _ } -> redo_one r.lsn page op
      | LR.Clr { action = LR.Heap { page; op; _ }; _ } -> redo_one r.lsn page op
      | _ -> ())
    (Oib_wal.Log_manager.durable_records log)

let replay_index log tree =
  let index_id = Oib_btree.Btree.index_id tree in
  let after = Oib_btree.Btree.image_lsn tree in
  let apply_op (op : LR.index_key_op) =
    if op.index = index_id then
      ignore (Oib_btree.Btree.set_state tree op.key op.after)
  in
  List.iter
    (fun (r : LR.t) ->
      if Lsn.( > ) r.lsn after then
        match r.body with
        | LR.Index_key { redoable = true; op } -> apply_op op
        | LR.Index_bulk_insert { index; keys } when index = index_id ->
          List.iter
            (fun key -> ignore (Oib_btree.Btree.set_state tree key LR.Present))
            keys
        | LR.Clr { action = LR.Index_key { op; _ }; _ } -> apply_op op
        | _ -> ())
    (Oib_wal.Log_manager.durable_records log)
