(** ARIES-style restart recovery passes.

    - {!analyze} scans the durable log and classifies transactions
      (winners / losers) and index builds (done / in progress).
    - {!redo_heap} repeats history on the data pages: every redoable heap
      action (including CLR actions) is reapplied unless the page's
      page_LSN shows it already there. Pages that were never flushed are
      recreated empty and rebuilt entirely from the log.
    - {!replay_index} brings one index from its checkpoint image to the
      durable end of the log by *logical redo*: index key operations are
      logged as absolute state transitions and only performed actions are
      logged, so setting each logged key to its [after] state in LSN order
      reproduces the tree's logical content exactly (see DESIGN.md §2 for
      why the no-steal index-page policy makes this sound).
    - Loser undo is driven by the caller through {!Oib_txn.Txn_manager}
      with the same undo executor used for normal rollback; {!adoptable}
      lists what to adopt.

    The whole restart sequence is orchestrated by the engine layer
    ([Oib_core.Engine.restart]), which owns the catalog. *)

type analysis = {
  losers : (int * Oib_wal.Lsn.t) list;
      (** transaction id, LSN its undo must start from; oldest first *)
  winners : int list;
  builds_in_progress : (int * int) list; (** index id, table id *)
  builds_done : int list;
  index_states : (int * int) list;
      (** index id -> last WAL-logged lifecycle state (encoded as in
          [Oib_wal.Log_record.Index_state]); indexes dropped later in the
          log are omitted. The engine applies these after its catalog
          reopen so a crash between the [Index_state] record and the
          catalog's durable rewrite still lands the index in the logged
          state. *)
  max_lsn : Oib_wal.Lsn.t;
  max_txn_id : int;
}

val analyze : Oib_wal.Log_manager.t -> analysis

val redo_heap :
  Oib_wal.Log_manager.t -> Oib_storage.Buffer_pool.t -> page_capacity:int ->
  unit

val replay_index : Oib_wal.Log_manager.t -> Oib_btree.Btree.t -> unit
(** Replay operations for this index with LSN greater than the tree's image
    LSN. *)
