(** Latched B+-tree over buffered pages.

    The tree exposes *state-setting* key operations: every entry is in one
    of three states — absent, present, or pseudo-deleted (present with the
    logical-delete bit, §2.1.2) — and each compound operation moves one key
    between states atomically under the leaf latch and reports the previous
    state. The transaction and index-builder layers decide the transition
    (and log it as an absolute [before -> after] record); restart recovery
    replays transitions by calling {!set_state} with the logged [after].

    Concurrency: writers descend with exclusive latch crabbing, releasing
    ancestors at safe (non-full) nodes; readers use share crabbing. All
    acquisition is top-down (plus left-to-right leaf-chain walks), so page
    latches cannot deadlock. The bottom-up bulk loader (SF, §3.2.4) touches
    pages without latching at all — the side-file protocol guarantees the
    builder is alone in the tree — which is precisely where SF's latching
    savings come from. *)

open Oib_util
open Oib_storage

type t

type state = Oib_wal.Log_record.key_state

val create :
  Buffer_pool.t -> Durable_kv.t -> index_id:int -> page_capacity:int ->
  unique:bool -> t
(** Create an empty tree (one leaf acting as root) and force its metadata
    and root image, so it is always recoverable. *)

val open_from_image : Buffer_pool.t -> Durable_kv.t -> index_id:int -> t
(** Reopen after a crash: the tree as of its last {!checkpoint_image}
    (possibly the empty tree forced by {!create}). Raises [Not_found] if no
    image exists. *)

val destroy : t -> unit
(** Remove the tree's durable metadata so the index id can be created
    again (a cancelled build's drop, §2.3.2). The dropped tree's flushed
    pages stay in the stable store — they only pin the page-id allocator
    above them — but without its meta the tree is unrecoverable and
    {!create} accepts the id. *)

val index_id : t -> int
val unique : t -> bool
val page_capacity : t -> int
val root_page_id : t -> int
val image_lsn : t -> Oib_wal.Lsn.t
val page_ids : t -> int list

val checkpoint_image : t -> lsn:Oib_wal.Lsn.t -> unit
(** Flush every tree page and record tree metadata durably. [lsn] is the
    position in the log this image is consistent with; recovery replays
    index operations after it. Runs without yielding, so the image is a
    sharp snapshot under the cooperative scheduler. *)

(* --- key operations (each atomic under the leaf latch) --- *)

type cursor
(** Remembered root-to-leaf position (ARIES/IM-style). *)

val new_cursor : t -> cursor

val read_state : t -> Ikey.t -> state

val set_state : t -> ?cursor:cursor -> Ikey.t -> state -> state
(** Absolute transition; returns the previous state. [Present] /
    [Pseudo_deleted] insert the entry if absent or set its flag; [Absent]
    physically removes it. A cursor serves key-local operation streams
    (e.g. applying a sorted side-file) without re-traversing from the
    root. *)

val insert_if_absent :
  t -> ?ib_split:bool -> ?cursor:cursor -> Ikey.t ->
  [ `Inserted | `Rejected of state ]
(** The index builder's insert (NSF §2.2.3): rejected if the entry exists
    in any state (a transaction inserted it first, or left a pseudo-deleted
    tombstone). [ib_split] selects the specialized split that moves only
    higher keys (§2.3.1). A cursor makes consecutive ascending inserts skip
    the root-to-leaf traversal (remembered path). *)

val find_kv : t -> string -> (Ikey.t * bool) list
(** All entries with the given key value (flag = pseudo-deleted), in RID
    order — what unique-violation checking examines. *)

val iter_range :
  t -> ?lo:string -> ?hi:string -> (Ikey.t -> pseudo:bool -> unit) -> unit
(** Visit entries with [lo <= key value <= hi] in ascending order,
    S-latching one leaf at a time (latch-coupled along the chain, so a
    range scan of the whole index touches pages in key order — the access
    pattern whose physical sequentiality E4 measures). Omitted bounds are
    open. *)

val range : t -> ?lo:string -> ?hi:string -> unit -> (Ikey.t * bool) list

val iter_entries : t -> (Ikey.t -> pseudo:bool -> unit) -> unit
(** Left-to-right scan of all entries (S-latched leaf at a time). *)

val iter_leaves : t -> (int -> Bt_node.leaf -> unit) -> unit
(** Left-to-right scan of leaf pages by (page id, node). *)

val gc_pseudo_deleted : t -> keep:(Ikey.t -> bool) -> int
(** Physically remove pseudo-deleted entries for which [keep] is false
    (§2.2.4; [keep] embodies the Commit_LSN / conditional-lock test).
    Returns the number removed. *)

(* --- bottom-up build (SF) --- *)

module Bulk : sig
  type tree := t
  type b

  val start : tree -> b
  (** The tree must be empty. *)

  val resume : tree -> b
  (** Continue a bottom-up build on an existing tree (SF restart from an
      index checkpoint image, §3.2.4): reconstructs the rightmost spine;
      subsequent keys must sort above the tree's current highest entry. *)

  val add : b -> Ikey.t -> unit
  (** Append a key; keys must arrive in ascending order. Appends to the
      rightmost leaf with no traversal, no latching, no key comparison
      beyond the order assertion; grows the tree bottom-up, left to
      right. *)

  val highest : b -> Ikey.t option
  val keys_added : b -> int
  val finish : b -> unit
end

val truncate_above : t -> Ikey.t option -> unit
(** Reset the tree so keys greater than the given key disappear (SF restart
    after a crash, §3.2.4: "the index pages can be reset in such a way that
    the keys higher than the checkpointed key disappear"). [None] empties
    the tree. Pages cut off are deallocated. *)

(* --- statistics --- *)

val node_at : t -> int -> Bt_node.node
(** Unlatched access to a node by page id — for the structure checker and
    tests only. *)

val entry_count : t -> int
val present_count : t -> int
val pseudo_count : t -> int
val leaf_count : t -> int
val depth : t -> int
