open Oib_util
open Oib_storage
module Latch = Oib_sim.Latch

type state = Oib_wal.Log_record.key_state

open Bt_node

type t = {
  pool : Buffer_pool.t;
  kv : Durable_kv.t;
  index_id : int;
  capacity : int;
  uniq : bool;
  mutable root : int;
}

type cursor = { mutable pid : int }

type Durable_kv.value +=
  | Btree_meta of {
      root : int;
      capacity : int;
      uniq : bool;
      image_lsn : Oib_wal.Lsn.t;
      pages : int list;
    }

let meta_key id = Printf.sprintf "index/%d/meta" id

let metrics t = Buffer_pool.metrics t.pool

let trace t = Oib_sim.Sched.trace (Buffer_pool.sched t.pool)

(* Pages visited root-to-leaf; the per-operation traversal cost of §4. *)
let observe_traversal t depth =
  Oib_obs.Trace.observe (trace t) "traversal_cost" depth

let max_entry t = t.capacity / 4

let node_of (p : Page.t) = Bt_node.of_payload p.payload

let alloc_node t node =
  let p =
    Buffer_pool.new_page ~role:"Btree" t.pool ~payload:(Node node)
      ~copy_payload:Bt_node.copy_payload
  in
  p.Page.no_steal <- true;
  p

let page t id =
  let p = Buffer_pool.get ~role:"Btree" t.pool id in
  p.Page.no_steal <- true;
  p

(* --- page-id inventory (walk from root) --- *)

let rec collect_pages t id acc =
  let p = page t id in
  match node_of p with
  | Leaf _ -> id :: acc
  | Internal n ->
    let acc = ref (id :: acc) in
    for i = 0 to n.nc - 1 do
      acc := collect_pages t n.children.(i) !acc
    done;
    !acc

let page_ids t = List.rev (collect_pages t t.root [])

(* --- create / persistence --- *)

let persist_meta t ~image_lsn =
  Durable_kv.set t.kv (meta_key t.index_id)
    (Btree_meta
       {
         root = t.root;
         capacity = t.capacity;
         uniq = t.uniq;
         image_lsn;
         pages = page_ids t;
       })

let create pool kv ~index_id ~page_capacity ~unique =
  if Durable_kv.mem kv (meta_key index_id) then
    invalid_arg "Btree.create: index already exists";
  let t =
    { pool; kv; index_id; capacity = page_capacity; uniq = unique; root = -1 }
  in
  let root = alloc_node t (Leaf (new_leaf ())) in
  t.root <- root.Page.id;
  Buffer_pool.flush_page pool root;
  persist_meta t ~image_lsn:Oib_wal.Lsn.nil;
  t

let destroy t = Durable_kv.remove t.kv (meta_key t.index_id)

let open_from_image pool kv ~index_id =
  match Durable_kv.get kv (meta_key index_id) with
  | Some (Btree_meta m) ->
    let t =
      { pool; kv; index_id; capacity = m.capacity; uniq = m.uniq; root = m.root }
    in
    (* Pages allocated after the image was taken are deallocated (paper
       §3.2.4); evict any volatile trace so traversals see the image. *)
    List.iter (fun id -> Buffer_pool.evict pool id) m.pages;
    t
  | _ -> raise Not_found

let index_id t = t.index_id
let unique t = t.uniq
let page_capacity t = t.capacity
let root_page_id t = t.root

let image_lsn t =
  match Durable_kv.get t.kv (meta_key t.index_id) with
  | Some (Btree_meta m) -> m.image_lsn
  | _ -> Oib_wal.Lsn.nil

let checkpoint_image t ~lsn =
  (* Tree pages carry no page LSN, so flush_page's WAL guard cannot force
     the log for us: the image may capture effects of in-flight
     transactions, and unless their Begin/op records are durable first,
     a crash would keep those effects without making the txn a loser.
     Force the whole log before the image. *)
  Oib_wal.Log_manager.flush_all (Buffer_pool.log t.pool);
  (* Sharp snapshot: no yields occur between these flushes under the
     cooperative scheduler. *)
  List.iter
    (fun id -> Buffer_pool.flush_page t.pool (page t id))
    (page_ids t);
  persist_meta t ~image_lsn:lsn

(* --- descent --- *)

let leaf_safe t l = l.bytes + max_entry t <= t.capacity

let internal_safe t n = n.ibytes + max_entry t + 12 <= t.capacity

let node_safe t p =
  match node_of p with
  | Leaf l -> leaf_safe t l
  | Internal n -> internal_safe t n

(* Write descent: X-latch crabbing from the root, releasing all held
   ancestors whenever the newly latched node is safe (cannot split). On
   return the leaf is X-latched and [held] lists the still-latched unsafe
   ancestors, innermost first, each with the child index taken. *)
let descend_write t key =
  let m = metrics t in
  m.tree_traversals <- m.tree_traversals + 1;
  let depth = ref 1 in
  let release_held held =
    List.iter (fun (p, _, _) -> Latch.release p.Page.latch X) held
  in
  let rec go p held =
    match node_of p with
    | Leaf l -> (p, l, held)
    | Internal n ->
      let i = child_for n key in
      let child = page t n.children.(i) in
      Latch.acquire child.Page.latch X;
      incr depth;
      if node_safe t child then begin
        release_held held;
        Latch.release p.Page.latch X;
        go child []
      end
      else go child ((p, n, i) :: held)
  in
  let root = page t t.root in
  Latch.acquire root.Page.latch X;
  (match node_of root with
  | Leaf l -> (root, l, [])
  | Internal _ -> go root [])
  |> fun (p, l, held) ->
  ignore l;
  observe_traversal t !depth;
  (p, held)
[@@lint.allow
  "L1: hand-over-hand X descent transfers the latched leaf and retained \
   ancestors to the caller, which releases them via release_write"]

(* Read descent: S-latch crabbing; returns the S-latched leaf page. *)
let descend_read t key =
  let m = metrics t in
  m.tree_traversals <- m.tree_traversals + 1;
  let depth = ref 1 in
  let rec go p =
    match node_of p with
    | Leaf _ -> p
    | Internal n ->
      let i = child_for n key in
      let child = page t n.children.(i) in
      Latch.acquire child.Page.latch S;
      Latch.release p.Page.latch S;
      incr depth;
      go child
  in
  let root = page t t.root in
  Latch.acquire root.Page.latch S;
  let leaf = go root in
  observe_traversal t !depth;
  leaf

(* Leftmost leaf, S-latched. *)
let leftmost_leaf t =
  let rec go p =
    match node_of p with
    | Leaf _ -> p
    | Internal n ->
      let child = page t n.children.(0) in
      Latch.acquire child.Page.latch S;
      Latch.release p.Page.latch S;
      go child
  in
  let root = page t t.root in
  Latch.acquire root.Page.latch S;
  go root

(* --- splits --- *)

(* Install a fresh page around a split-off right node and wire the leaf
   chain. *)
let install_right t (left : Page.t) right_node =
  let right = alloc_node t right_node in
  (match (node_of left, right_node) with
  | Leaf l, Leaf _ -> l.next <- right.Page.id
  | _ -> ());
  (* the left page lost entries / gained a sibling link *)
  Page.mark_dirty left;
  right

(* Propagate a (sep, right page id) insertion up the held ancestor chain.
   The outermost held node is guaranteed (by the safe-release policy) to
   absorb the last separator, unless it is the root, which may grow a new
   level. All pages involved are already X-latched by us. *)
let rec propagate t held sep right_pid =
  let m = metrics t in
  m.page_splits <- m.page_splits + 1;
  match held with
  | [] ->
    (* split reached the root: grow a new root *)
    let old_root = t.root in
    let new_root =
      alloc_node t
        (Internal (new_internal ~children:[| old_root; right_pid |] ~seps:[| sep |]))
    in
    t.root <- new_root.Page.id
  | (p, n, i) :: rest ->
    internal_insert_sep n ~at:i sep ~right:right_pid;
    Page.mark_dirty p;
    if n.ibytes > t.capacity && n.nc >= 4 then begin
      let right_n, push_up = internal_split_half n in
      let right_page = alloc_node t (Internal right_n) in
      (* If our own child index moved to the new right node, nothing more
         to do here: we only continue upward with the push-up separator. *)
      propagate t rest push_up right_page.Page.id
    end

(* Split [leaf] (X-latched, with [held] ancestors) to make room for [key].
   Returns the leaf (left or right page) into which [key] now fits; that
   page is X-latched, all ancestors and the sibling are released/never
   latched. *)
let split_leaf t (p : Page.t) (l : leaf) held key ~ib_split =
  let m = metrics t in
  let choose_std () =
    let right_node, sep = leaf_split_half l in
    let right = install_right t p (Leaf right_node) in
    propagate t held sep right.Page.id;
    if Ikey.compare key sep < 0 then (p, l)
    else begin
      Latch.release p.Page.latch X;
      Latch.acquire right.Page.latch X;
      (right, right_node)
    end
  in
  let result =
    if not ib_split then choose_std ()
    else begin
      let i = leaf_lower_bound l key in
      if i >= l.n then begin
        (* nothing higher: open a fresh rightmost leaf for the key *)
        let right_node = new_leaf () in
        right_node.next <- l.next;
        right_node.high <- l.high;
        let right = install_right t p (Leaf right_node) in
        l.high <- Some key;
        Page.mark_dirty p;
        propagate t held key right.Page.id;
        Latch.release p.Page.latch X;
        Latch.acquire right.Page.latch X;
        (right, right_node)
      end
      else begin
        (* move only the higher keys (inserted by transactions) right *)
        let right_node, _sep0 = leaf_split_above l key in
        let right = install_right t p (Leaf right_node) in
        if l.bytes + leaf_entry_cost key <= t.capacity then begin
          (* the key becomes the left leaf's last entry, so the separator
             must be computed against it, not the pre-split last *)
          let sep =
            Bt_node.separator ~before:key ~first:(fst right_node.entries.(0))
          in
          l.high <- Some sep;
          Page.mark_dirty p;
          propagate t held sep right.Page.id;
          (p, l)
        end
        else begin
          (* left is still too full: the key leads the right node instead *)
          l.high <- Some key;
          Page.mark_dirty p;
          propagate t held key right.Page.id;
          Latch.release p.Page.latch X;
          Latch.acquire right.Page.latch X;
          (right, right_node)
        end
      end
    end
  in
  ignore m;
  result
[@@lint.allow
  "L1: swaps the caller's leaf latch for the X-latched split target; the \
   caller's release_write balances whichever page is returned"]

(* Release all latches after a write operation. *)
let release_write (p : Page.t) held =
  Latch.release p.Page.latch X;
  List.iter (fun (q, _, _) -> Latch.release q.Page.latch X) held

(* --- compound key operations --- *)

let state_of_flag = function
  | true -> (Oib_wal.Log_record.Pseudo_deleted : state)
  | false -> Oib_wal.Log_record.Present

let read_state t key =
  let p = descend_read t key in
  let l = leaf_of_payload p.Page.payload in
  let st =
    match leaf_find l key with
    | None -> (Oib_wal.Log_record.Absent : state)
    | Some i -> state_of_flag (snd (leaf_get l i))
  in
  Latch.release p.Page.latch S;
  st

(* Insert [key] into the X-latched [l]/[p], splitting if needed. Returns
   the page/leaf actually holding the key, still X-latched. *)
let insert_into t p l held key ~pseudo ~ib_split =
  if Ikey.encoded_size key > max_entry t then
    invalid_arg "Btree: key larger than max entry size";
  if l.bytes + leaf_entry_cost key <= t.capacity then begin
    leaf_insert l key ~pseudo;
    Page.mark_dirty p;
    release_write p held;
    p
  end
  else begin
    let p', l' = split_leaf t p l held key ~ib_split in
    leaf_insert l' key ~pseudo;
    Page.mark_dirty p';
    Latch.release p'.Page.latch X;
    (* the split used the held ancestors but did not release them *)
    List.iter (fun (q, _, _) -> Latch.release q.Page.latch X) held;
    p'
  end

let new_cursor t = { pid = t.root }

(* Cursor fast path: go straight to the remembered leaf if the key provably
   belongs there and no split would be required. *)
let try_fast_path t cursor key =
  match Buffer_pool.get ~role:"Btree" t.pool cursor.pid with
  | exception Not_found -> None
  | p -> (
    match p.Page.payload with
    | Node (Leaf l) ->
      Latch.acquire p.Page.latch X;
      let l' = leaf_of_payload p.Page.payload in
      let in_range =
        l' == l && l'.n > 0
        && Ikey.compare key (fst l'.entries.(0)) >= 0
        && (match l'.high with
           | None -> true
           | Some h -> Ikey.compare key h < 0)
        && l'.bytes + leaf_entry_cost key <= t.capacity
      in
      if in_range then Some (p, l')
      else begin
        Latch.release p.Page.latch X;
        None
      end
    | _ -> None)

(* state transition on an X-latched leaf where the key is known to fit *)
let set_on_leaf t p l key (target : state) : state =
  let m = metrics t in
  match leaf_find l key with
  | Some i ->
    let before = state_of_flag (snd (leaf_get l i)) in
    (match target with
    | Absent -> leaf_remove_at l i
    | Present -> leaf_set_flag l i false
    | Pseudo_deleted ->
      leaf_set_flag l i true;
      if before <> Pseudo_deleted then
        m.pseudo_deletes <- m.pseudo_deletes + 1);
    Page.mark_dirty p;
    before
  | None ->
    (match target with
    | Absent -> ()
    | Present ->
      m.keys_inserted <- m.keys_inserted + 1;
      leaf_insert l key ~pseudo:false;
      Page.mark_dirty p
    | Pseudo_deleted ->
      m.keys_inserted <- m.keys_inserted + 1;
      m.pseudo_deletes <- m.pseudo_deletes + 1;
      leaf_insert l key ~pseudo:true;
      Page.mark_dirty p);
    Absent

let rec set_state t ?cursor key (target : state) : state =
  match
    match cursor with
    | Some c -> (
      match try_fast_path t c key with
      | Some (p, l) ->
        let m = metrics t in
        m.fast_path_inserts <- m.fast_path_inserts + 1;
        let before = set_on_leaf t p l key target in
        Latch.release p.Page.latch X;
        Some before
      | None -> None)
    | None -> None
  with
  | Some before -> before
  | None -> set_state_slow t ?cursor key target

and set_state_slow t ?cursor key (target : state) : state =
  let m = metrics t in
  let p, held = descend_write t key in
  let l = leaf_of_payload p.Page.payload in
  (match cursor with Some c -> c.pid <- p.Page.id | None -> ());
  match leaf_find l key with
  | Some i ->
    let before = state_of_flag (snd (leaf_get l i)) in
    (match target with
    | Absent ->
      leaf_remove_at l i;
      Page.mark_dirty p
    | Present -> leaf_set_flag l i false
    | Pseudo_deleted ->
      leaf_set_flag l i true;
      if before <> Pseudo_deleted then
        m.pseudo_deletes <- m.pseudo_deletes + 1);
    Page.mark_dirty p;
    release_write p held;
    before
  | None ->
    (match target with
    | Absent -> release_write p held
    | Present ->
      m.keys_inserted <- m.keys_inserted + 1;
      ignore (insert_into t p l held key ~pseudo:false ~ib_split:false)
    | Pseudo_deleted ->
      m.keys_inserted <- m.keys_inserted + 1;
      m.pseudo_deletes <- m.pseudo_deletes + 1;
      ignore (insert_into t p l held key ~pseudo:true ~ib_split:false));
    Absent

let insert_if_absent t ?(ib_split = false) ?cursor key =
  let m = metrics t in
  let finish_fast p l =
    match leaf_find l key with
    | Some i ->
      let st = state_of_flag (snd (leaf_get l i)) in
      Latch.release p.Page.latch X;
      m.keys_rejected_duplicate <- m.keys_rejected_duplicate + 1;
      `Rejected st
    | None ->
      m.fast_path_inserts <- m.fast_path_inserts + 1;
      m.keys_inserted <- m.keys_inserted + 1;
      leaf_insert l key ~pseudo:false;
      Page.mark_dirty p;
      Latch.release p.Page.latch X;
      `Inserted
  in
  let slow () =
    let p, held = descend_write t key in
    let l = leaf_of_payload p.Page.payload in
    match leaf_find l key with
    | Some i ->
      let st = state_of_flag (snd (leaf_get l i)) in
      release_write p held;
      m.keys_rejected_duplicate <- m.keys_rejected_duplicate + 1;
      `Rejected st
    | None ->
      m.keys_inserted <- m.keys_inserted + 1;
      let landed = insert_into t p l held key ~pseudo:false ~ib_split in
      (match cursor with Some c -> c.pid <- landed.Page.id | None -> ());
      `Inserted
  in
  match cursor with
  | None -> slow ()
  | Some c -> (
    match try_fast_path t c key with
    | Some (p, l) -> finish_fast p l
    | None -> slow ())

let find_kv t kv =
  let probe = Ikey.make kv Rid.minus_infinity in
  let p = descend_read t probe in
  let acc = ref [] in
  let rec walk (p : Page.t) =
    let l = leaf_of_payload p.Page.payload in
    let i = ref (leaf_lower_bound l probe) in
    while !i < l.n && String.compare (fst (leaf_get l !i)).Ikey.kv kv <= 0 do
      let k, fl = leaf_get l !i in
      if String.equal k.Ikey.kv kv then acc := (k, fl) :: !acc;
      incr i
    done;
    (* continue right only if we did not see a larger key value and the
       sibling may still hold entries with this key value *)
    let continue_next =
      ref
        (!i >= l.n
        &&
        match l.high with
        | Some h -> String.compare h.Ikey.kv kv <= 0
        | None -> false)
    in
    if !continue_next && l.next >= 0 then begin
      let np = page t l.next in
      Latch.acquire np.Page.latch S;
      Latch.release p.Page.latch S;
      walk np
    end
    else Latch.release p.Page.latch S
  in
  walk p;
  List.rev !acc

let iter_range t ?lo ?hi f =
  let start_key =
    match lo with
    | Some kv -> Ikey.make kv Rid.minus_infinity
    | None -> Ikey.make "" Rid.minus_infinity
  in
  let p =
    match lo with Some _ -> descend_read t start_key | None -> leftmost_leaf t
  in
  let beyond kv =
    match hi with Some h -> String.compare kv h > 0 | None -> false
  in
  let rec walk (p : Page.t) first =
    let l = leaf_of_payload p.Page.payload in
    let i = ref (if first then leaf_lower_bound l start_key else 0) in
    let stop = ref false in
    while (not !stop) && !i < l.n do
      let k, pseudo = leaf_get l !i in
      if beyond k.Ikey.kv then stop := true
      else begin
        f k ~pseudo;
        incr i
      end
    done;
    let continue_right = (not !stop) && l.next >= 0 in
    if continue_right then begin
      let np = page t l.next in
      Latch.acquire np.Page.latch S;
      Latch.release p.Page.latch S;
      walk np false
    end
    else Latch.release p.Page.latch S
  in
  walk p true

let range t ?lo ?hi () =
  let acc = ref [] in
  iter_range t ?lo ?hi (fun k ~pseudo -> acc := (k, pseudo) :: !acc);
  List.rev !acc

let iter_leaves t f =
  let p = leftmost_leaf t in
  let rec walk (p : Page.t) =
    let l = leaf_of_payload p.Page.payload in
    f p.Page.id l;
    if l.next >= 0 then begin
      let np = page t l.next in
      Latch.acquire np.Page.latch S;
      Latch.release p.Page.latch S;
      walk np
    end
    else Latch.release p.Page.latch S
  in
  walk p

let iter_entries t f =
  iter_leaves t (fun _ l ->
      for i = 0 to l.n - 1 do
        let k, pseudo = leaf_get l i in
        f k ~pseudo
      done)

let gc_pseudo_deleted t ~keep =
  let removed = ref 0 in
  let rec walk (p : Page.t) =
    let l = leaf_of_payload p.Page.payload in
    let i = ref 0 in
    while !i < l.n do
      let k, pseudo = leaf_get l !i in
      if pseudo && not (keep k) then begin
        leaf_remove_at l !i;
        Page.mark_dirty p;
        incr removed
      end
      else incr i
    done;
    let next = l.next in
    Latch.release p.Page.latch X;
    if next >= 0 then begin
      let np = page t next in
      Latch.acquire np.Page.latch X;
      walk np
    end
  in
  let rec leftmost (p : Page.t) =
    match node_of p with
    | Leaf _ -> p
    | Internal n ->
      let child = page t n.children.(0) in
      Latch.acquire child.Page.latch X;
      Latch.release p.Page.latch X;
      leftmost child
  in
  let root = page t t.root in
  Latch.acquire root.Page.latch X;
  walk (leftmost root);
  !removed
[@@lint.allow
  "L1: X-latch crabbing down the leftmost path and along the leaf chain; \
   each step releases the predecessor after latching the successor"]

(* --- bottom-up bulk build (SF) --- *)

module Bulk = struct
  type tree = t

  type b = {
    tree : tree;
    (* spine of the rightmost path, leaf first *)
    mutable spine : Page.t list;
    mutable highest : Ikey.t option;
    mutable count : int;
  }

  let start tree =
    let root = page tree tree.root in
    (match node_of root with
    | Leaf l when l.n = 0 -> ()
    | _ -> invalid_arg "Btree.Bulk.start: tree not empty");
    { tree; spine = [ root ]; highest = None; count = 0 }

  let resume tree =
    (* rightmost path, leaf first *)
    let rec walk id acc =
      let p = page tree id in
      match node_of p with
      | Leaf l ->
        let highest = if l.n = 0 then None else Some (fst l.entries.(l.n - 1)) in
        (p :: acc, highest)
      | Internal n -> walk n.children.(n.nc - 1) (p :: acc)
    in
    let spine, highest = walk tree.root [] in
    { tree; spine; highest; count = 0 }

  (* Push (sep, right child) into the spine at [levels_above] the leaf;
     grow new levels as needed. The paper's bottom-up split moves no keys:
     a full node is frozen and a fresh one continues on the right. *)
  let rec push_up b levels sep child_pid =
    let t = b.tree in
    match levels with
    | [] ->
      (* new root *)
      let old_root = t.root in
      let new_root =
        alloc_node t
          (Internal
             (new_internal ~children:[| old_root; child_pid |] ~seps:[| sep |]))
      in
      t.root <- new_root.Page.id;
      b.spine <- b.spine @ [ new_root ]
    | p :: above -> (
      match node_of p with
      | Internal n ->
        if internal_fits n ~capacity:t.capacity sep then begin
          internal_append n sep ~child:child_pid;
          Page.mark_dirty p
        end
        else begin
          let fresh =
            alloc_node t
              (Internal (new_internal ~children:[| child_pid |] ~seps:[||]))
          in
          (* replace this spine level with the fresh node *)
          let rec replace = function
            | [] -> []
            | q :: rest -> if q == p then fresh :: rest else q :: replace rest
          in
          b.spine <- replace b.spine;
          push_up b above sep fresh.Page.id
        end
      | Leaf _ -> assert false)

  let add b key =
    let t = b.tree in
    (match b.highest with
    | Some h when Ikey.compare h key = 0 ->
      (* the same logical entry extracted twice (e.g. a record re-read
         across key-order scan rounds): adding it again is a no-op *)
      raise Exit
    | Some h when Ikey.compare h key > 0 ->
      invalid_arg "Btree.Bulk.add: keys must be ascending"
    | _ -> ());
    b.highest <- Some key;
    b.count <- b.count + 1;
    let m = metrics t in
    m.keys_inserted <- m.keys_inserted + 1;
    m.fast_path_inserts <- m.fast_path_inserts + 1;
    match b.spine with
    | [] -> assert false
    | leaf_page :: above ->
      let l = leaf_of_payload leaf_page.Page.payload in
      if leaf_fits l ~capacity:t.capacity key then begin
        leaf_append l key ~pseudo:false;
        Page.mark_dirty leaf_page
      end
      else begin
        m.page_splits <- m.page_splits + 1;
        let fresh_leaf = new_leaf () in
        let fresh = alloc_node t (Leaf fresh_leaf) in
        l.next <- fresh.Page.id;
        l.high <- Some key;
        (* the frozen leaf gained its sibling link / high key *)
        Page.mark_dirty leaf_page;
        leaf_append fresh_leaf key ~pseudo:false;
        Page.mark_dirty fresh;
        b.spine <- fresh :: above;
        push_up b above key fresh.Page.id
      end

  let add b key = try add b key with Exit -> ()

  let highest b = b.highest

  let keys_added b = b.count

  let finish _b = ()
end

(* --- truncation (SF restart) --- *)

let truncate_above t key_opt =
  match key_opt with
  | None ->
    (* empty the tree entirely *)
    List.iter (fun id -> Buffer_pool.evict t.pool id) (page_ids t);
    let root = alloc_node t (Leaf (new_leaf ())) in
    t.root <- root.Page.id
  | Some h ->
    let rec drop_subtree id =
      (match node_of (page t id) with
      | Leaf _ -> ()
      | Internal n ->
        for i = 0 to n.nc - 1 do
          drop_subtree n.children.(i)
        done);
      Buffer_pool.evict t.pool id
    in
    let rec go id =
      let p = page t id in
      match node_of p with
      | Leaf l ->
        while l.n > 0 && Ikey.compare (fst l.entries.(l.n - 1)) h > 0 do
          leaf_remove_at l (l.n - 1)
        done;
        l.next <- -1;
        l.high <- None;
        Page.mark_dirty p
      | Internal n ->
        let i = child_for n h in
        List.iter drop_subtree (internal_truncate_after n i);
        Page.mark_dirty p;
        go n.children.(i)
    in
    go t.root

(* --- statistics --- *)

let node_at t id = node_of (page t id)

let entry_count t =
  let n = ref 0 in
  iter_entries t (fun _ ~pseudo:_ -> incr n);
  !n

let present_count t =
  let n = ref 0 in
  iter_entries t (fun _ ~pseudo -> if not pseudo then incr n);
  !n

let pseudo_count t =
  let n = ref 0 in
  iter_entries t (fun _ ~pseudo -> if pseudo then incr n);
  !n

let leaf_count t =
  let n = ref 0 in
  iter_leaves t (fun _ _ -> incr n);
  !n

let depth t =
  let rec go id d =
    match node_of (page t id) with
    | Leaf _ -> d
    | Internal n -> go n.children.(0) (d + 1)
  in
  go t.root 1
