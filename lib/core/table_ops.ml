open Oib_util
open Oib_storage
module LR = Oib_wal.Log_record
module LockM = Oib_lock.Lock_manager
module Txn = Oib_txn.Txn_manager
module Btree = Oib_btree.Btree
module Latch = Oib_sim.Latch
module SF = Oib_sidefile.Side_file

exception Unique_violation of { index : int; kv : string }

exception Txn_deadlock

let lock ctx txn name mode =
  match LockM.lock ctx.Ctx.locks ~txn:(Txn.id txn) name mode with
  | LockM.Granted -> ()
  | LockM.Deadlock -> raise Txn_deadlock

let instant ctx txn name mode =
  match LockM.instant_lock ctx.Ctx.locks ~txn:(Txn.id txn) name mode with
  | LockM.Granted -> ()
  | LockM.Deadlock -> raise Txn_deadlock

let heap_page (page : Page.t) = Heap_page.of_payload page.payload

(* --- direct index key maintenance (§2.2.3) --- *)

let log_key_op ctx txn ~redoable info (key : Ikey.t) ~before ~after =
  ignore
    (Txn.log_op ctx.Ctx.txns txn
       (LR.Index_key
          { redoable; op = { index = info.Catalog.index_id; key; before; after } }))

(* Wait-dance around a rival entry's record lock: returns once the rival's
   writer has terminated. *)
let wait_for_record ctx txn rid = instant ctx txn (LockM.Record rid) S

let holds_x ctx txn rid =
  LockM.holds ctx.Ctx.locks ~txn:(Txn.id txn) (LockM.Record rid) X

(* Unique-index duplicate-key-value protocol for a transaction insert
   (§2.2.3): a Present rival with another RID belonging to a committed (or
   our own) record is a violation; an uncommitted rival - inserter or
   deleter - is waited out through its record lock. *)
let rec unique_guard ctx txn info (key : Ikey.t) =
  let rivals =
    List.filter
      (fun ((k : Ikey.t), _) -> not (Rid.equal k.rid key.rid))
      (Btree.find_kv info.Catalog.tree key.kv)
  in
  let live = List.filter (fun (_, pseudo) -> not pseudo) rivals in
  match live with
  | ((k : Ikey.t), _) :: _ ->
    if holds_x ctx txn k.rid then
      raise (Unique_violation { index = info.index_id; kv = key.kv })
    else begin
      wait_for_record ctx txn k.rid;
      (* the rival's writer ended; decide on fresh state *)
      let still =
        List.exists
          (fun ((k' : Ikey.t), pseudo') ->
            (not pseudo') && not (Rid.equal k'.rid key.rid))
          (Btree.find_kv info.tree key.kv)
      in
      if still then
        raise (Unique_violation { index = info.index_id; kv = key.kv })
      else unique_guard ctx txn info key
    end
  | [] ->
    (* pseudo-deleted rivals with active deleters could reactivate on
       rollback; wait them out (this replaces next-key locking, §2.2.3) *)
    let blocker =
      List.find_opt
        (fun ((k : Ikey.t), _) ->
          (not (holds_x ctx txn k.rid))
          && not
               (LockM.try_instant_lock ctx.Ctx.locks ~txn:(Txn.id txn)
                  (LockM.Record k.rid) S))
        rivals
    in
    (match blocker with
    | Some ((k : Ikey.t), _) ->
      wait_for_record ctx txn k.rid;
      unique_guard ctx txn info key
    | None -> ())

let rec key_insert ctx txn info (key : Ikey.t) =
  if info.Catalog.uniq then unique_guard ctx txn info key;
  let before = Btree.set_state info.Catalog.tree key LR.Present in
  (match before with
  | LR.Absent ->
    if info.uniq then begin
      (* close the probe/insert window: if a rival slipped in, retract our
         (not yet logged) entry and redo the dance *)
      let rival =
        List.exists
          (fun ((k : Ikey.t), pseudo) ->
            (not pseudo) && not (Rid.equal k.rid key.rid))
          (Btree.find_kv info.tree key.kv)
      in
      if rival then begin
        ignore (Btree.set_state info.tree key LR.Absent);
        key_insert ctx txn info key
      end
      else log_key_op ctx txn ~redoable:true info key ~before ~after:LR.Present
    end
    else log_key_op ctx txn ~redoable:true info key ~before ~after:LR.Present
  | LR.Pseudo_deleted ->
    (* reactivation (the paper's T2 example, §2.2.3) *)
    log_key_op ctx txn ~redoable:true info key ~before ~after:LR.Present
  | LR.Present ->
    (* the index builder inserted it first: write the undo-only record so a
       rollback still removes the key (§2.1.1) *)
    log_key_op ctx txn ~redoable:false info key ~before:LR.Absent
      ~after:LR.Present)

let key_delete ctx txn info (key : Ikey.t) =
  let before = Btree.set_state info.Catalog.tree key LR.Pseudo_deleted in
  match before with
  | LR.Present | LR.Absent ->
    (* found: pseudo-delete; not found: leave a tombstone so a late IB
       insert is rejected (§2.1.2) *)
    log_key_op ctx txn ~redoable:true info key ~before ~after:LR.Pseudo_deleted
  | LR.Pseudo_deleted -> () (* no state change, nothing to compensate *)

(* --- side-file routing --- *)

let sf_state info =
  match info.Catalog.phase with
  | Catalog.Sf_building sf -> sf
  | Catalog.Ready | Catalog.Nsf_building _ ->
    invalid_arg "Table_ops: not an SF build"

(* count the append, grow the published backlog, emit the trace event *)
let note_sidefile_append ctx (info : Catalog.index_info) ~insert pos =
  ctx.Ctx.metrics.sidefile_appends <- ctx.Ctx.metrics.sidefile_appends + 1;
  (match Hashtbl.find_opt ctx.Ctx.builds info.Catalog.index_id with
  | Some st -> st.Build_status.backlog <- st.Build_status.backlog + 1
  | None -> ());
  let tr = Oib_sim.Sched.trace ctx.Ctx.sched in
  if Oib_obs.Trace.tracing tr then
    Oib_obs.Trace.emit tr
      (Oib_obs.Event.Sidefile_append
         { sidefile = info.Catalog.index_id; insert; pos })

let sidefile_entry ctx txn info ~insert key =
  let sf = sf_state info in
  ignore
    (Txn.log_op ctx.Ctx.txns txn
       (LR.Sidefile_append
          { sidefile = info.Catalog.index_id; insert; key }));
  (* The side-file is instantly durable but is not redone from the log; if
     this transaction's log tail were lost in a crash it would not be a
     loser, yet the entry would survive and the drain would apply it.
     Force the log so the writer is durably a known transaction first. *)
  Oib_wal.Log_manager.flush_all ctx.Ctx.log;
  let pos = SF.apply_append sf.Catalog.sidefile ~insert key in
  note_sidefile_append ctx info ~insert pos

let directly_maintained (info : Catalog.index_info) =
  (* a Disabled descriptor (pre-admission / mid-teardown) gets nothing *)
  info.Catalog.state <> Catalog.Disabled
  &&
  match info.phase with
  | Catalog.Ready | Catalog.Nsf_building _ -> true
  | Catalog.Sf_building _ -> false

(* per-index forward maintenance for one record op *)
let maintain_indexes ctx txn tbl ~rid ~sidefiled ops =
  (* ops: which keys to delete / insert, as functions of the index *)
  List.iter
    (fun (info : Catalog.index_info) ->
      let dels, inss = ops info in
      if List.mem info.index_id sidefiled then begin
        List.iter (fun k -> sidefile_entry ctx txn info ~insert:false k) dels;
        List.iter (fun k -> sidefile_entry ctx txn info ~insert:true k) inss
      end
      else if directly_maintained info then begin
        List.iter (fun k -> key_delete ctx txn info k) dels;
        List.iter (fun k -> key_insert ctx txn info k) inss
      end
      (* else: SF build, target not yet reached by IB - ignore entirely *))
    tbl.Catalog.indexes;
  ignore rid

(* --- record operations (Figure 1) --- *)

let insert ctx txn ~table record =
  let tbl = Catalog.table ctx.Ctx.catalog table in
  lock ctx txn (LockM.Table table) IX;
  (* choose a slot with the page latched; the RID lock is conditional while
     latched (a freed slot can still be locked by an unfinished deleter) *)
  let[@lint.allow
       "L2: try_lock is conditional (lock_aux ~conditional:true never \
        suspends); the unconditional lock below runs only after the page \
        latch is released"] rec acquire () =
    let page, slot = Heap_file.prepare_insert tbl.heap record in
    let rid = Rid.make ~page:page.Page.id ~slot in
    if LockM.try_lock ctx.Ctx.locks ~txn:(Txn.id txn) (LockM.Record rid) X
    then (page, slot, rid)
    else begin
      (* the slot's previous owner has not committed: unlatch, acquire the
         lock unconditionally (and keep it — re-running the placement then
         finds either this slot lockable re-entrantly or a better one),
         and revalidate from scratch *)
      Heap_page.unreserve (heap_page page) slot;
      Latch.release page.Page.latch X;
      lock ctx txn (LockM.Record rid) X;
      acquire ()
    end
  in
  let page, slot, rid = acquire () in
  let vis = Catalog.visible_count_for ctx.Ctx.catalog tbl ~target:rid ~record in
  let sidefiled = Catalog.sidefiled_for ctx.Ctx.catalog tbl ~target:rid ~record in
  Heap_page.put (heap_page page) slot record;
  let lsn =
    Txn.log_op ctx.Ctx.txns txn
      (LR.Heap
         {
           page = page.Page.id;
           visible_indexes = vis;
           sidefiled;
           op = LR.Heap_insert { rid; record };
         })
  in
  Page.set_lsn page lsn;
  Latch.release page.Page.latch X;
  maintain_indexes ctx txn tbl ~rid ~sidefiled (fun info ->
      ([], [ Catalog.key_of info record ~rid ]));
  rid

let fetch_locked ctx txn tbl rid =
  lock ctx txn (LockM.Record rid) X;
  let page = Heap_file.latch_rid tbl.Catalog.heap rid X in
  match Heap_page.get (heap_page page) rid.Rid.slot with
  | None ->
    Latch.release page.Page.latch X;
    raise Not_found
  | Some record -> (page, record)

let delete ctx txn ~table rid =
  let tbl = Catalog.table ctx.Ctx.catalog table in
  lock ctx txn (LockM.Table table) IX;
  let page, record = fetch_locked ctx txn tbl rid in
  let vis = Catalog.visible_count_for ctx.Ctx.catalog tbl ~target:rid ~record in
  let sidefiled = Catalog.sidefiled_for ctx.Ctx.catalog tbl ~target:rid ~record in
  Heap_page.remove (heap_page page) rid.Rid.slot;
  let lsn =
    Txn.log_op ctx.Ctx.txns txn
      (LR.Heap
         {
           page = page.Page.id;
           visible_indexes = vis;
           sidefiled;
           op = LR.Heap_delete { rid; record };
         })
  in
  Page.set_lsn page lsn;
  Latch.release page.Page.latch X;
  Heap_file.note_free tbl.Catalog.heap rid.Rid.page;
  maintain_indexes ctx txn tbl ~rid ~sidefiled (fun info ->
      ([ Catalog.key_of info record ~rid ], []))

let update ctx txn ~table rid new_record =
  let tbl = Catalog.table ctx.Ctx.catalog table in
  lock ctx txn (LockM.Table table) IX;
  let page, old_record = fetch_locked ctx txn tbl rid in
  (* the primary key is immutable by assumption (§6.2), so old and new
     records agree on key-order visibility *)
  let vis =
    Catalog.visible_count_for ctx.Ctx.catalog tbl ~target:rid ~record:old_record
  in
  let sidefiled =
    Catalog.sidefiled_for ctx.Ctx.catalog tbl ~target:rid ~record:old_record
  in
  Heap_page.put (heap_page page) rid.Rid.slot new_record;
  let lsn =
    Txn.log_op ctx.Ctx.txns txn
      (LR.Heap
         {
           page = page.Page.id;
           visible_indexes = vis;
           sidefiled;
           op = LR.Heap_update { rid; old_record; new_record };
         })
  in
  Page.set_lsn page lsn;
  Latch.release page.Page.latch X;
  maintain_indexes ctx txn tbl ~rid ~sidefiled (fun info ->
      let old_key = Catalog.key_of info old_record ~rid in
      let new_key = Catalog.key_of info new_record ~rid in
      if Ikey.equal old_key new_key then ([], [])
      else ([ old_key ], [ new_key ]))

let read ctx txn ~table rid =
  let tbl = Catalog.table ctx.Ctx.catalog table in
  lock ctx txn (LockM.Table table) IS;
  lock ctx txn (LockM.Record rid) S;
  Heap_file.read_record tbl.Catalog.heap rid

let index_lookup ctx txn ~index kv =
  let info = Catalog.index ctx.Ctx.catalog index in
  (* the lifecycle state is the read gate: only [Readable] serves, with
     one carve-out — a write-only NSF build's completed prefix (gradual
     availability, footnote 3) *)
  (match (info.Catalog.state, info.phase) with
  | Catalog.Readable, _ -> ()
  | Catalog.Write_only, Catalog.Nsf_building { avail_below = Some bound }
    when kv < bound ->
    ()
  | (Catalog.Write_only | Catalog.Disabled), _ ->
    invalid_arg "Table_ops.index_lookup: index still being built");
  let tbl = Catalog.table ctx.Ctx.catalog info.table_id in
  lock ctx txn (LockM.Table info.table_id) IS;
  List.filter_map
    (fun ((k : Ikey.t), pseudo) ->
      if pseudo then None
      else begin
        lock ctx txn (LockM.Record k.rid) S;
        match Heap_file.read_record tbl.Catalog.heap k.rid with
        | Some record -> Some (k.rid, record)
        | None -> None
      end)
    (Btree.find_kv info.tree kv)

let range_lookup ctx txn ~index ?lo ?hi () =
  let info = Catalog.index ctx.Ctx.catalog index in
  (* ranges have no per-key gradual-availability carve-out: serve only
     once the index is [Readable] *)
  (match info.Catalog.state with
  | Catalog.Readable -> ()
  | Catalog.Write_only | Catalog.Disabled ->
    invalid_arg "Table_ops.range_lookup: index still being built");
  let tbl = Catalog.table ctx.Ctx.catalog info.table_id in
  lock ctx txn (LockM.Table info.table_id) IS;
  (* collect matching entries first (latch-coupled scan), then lock and
     fetch the records *)
  let hits = ref [] in
  Btree.iter_range info.tree ?lo ?hi (fun k ~pseudo ->
      if not pseudo then hits := k :: !hits);
  List.rev_map
    (fun (k : Ikey.t) ->
      lock ctx txn (LockM.Record k.rid) S;
      (k, Heap_file.read_record tbl.Catalog.heap k.rid))
    !hits
  |> List.filter_map (fun ((k : Ikey.t), r) ->
         match r with Some record -> Some (k.Ikey.rid, record) | None -> None)

(* --- undo (Figure 2) --- *)

let inverse_heap_op = function
  | LR.Heap_insert { rid; record } -> LR.Heap_delete { rid; record }
  | LR.Heap_delete { rid; record } -> LR.Heap_insert { rid; record }
  | LR.Heap_update { rid; old_record; new_record } ->
    LR.Heap_update { rid; old_record = new_record; new_record = old_record }

let apply_heap_op hp = function
  | LR.Heap_insert { rid; record } -> Heap_page.put hp rid.Rid.slot record
  | LR.Heap_delete { rid; _ } -> Heap_page.remove hp rid.Rid.slot
  | LR.Heap_update { rid; new_record; _ } ->
    Heap_page.put hp rid.Rid.slot new_record

let op_rid = function
  | LR.Heap_insert { rid; _ } | LR.Heap_delete { rid; _ }
  | LR.Heap_update { rid; _ } ->
    rid

(* inverse key actions for one index: (deletes, inserts) *)
let inverse_key_ops info ~rid = function
  | LR.Heap_insert { record; _ } -> ([ Catalog.key_of info record ~rid ], [])
  | LR.Heap_delete { record; _ } -> ([], [ Catalog.key_of info record ~rid ])
  | LR.Heap_update { old_record; new_record; _ } ->
    let old_key = Catalog.key_of info old_record ~rid in
    let new_key = Catalog.key_of info new_record ~rid in
    if Ikey.equal old_key new_key then ([], [])
    else ([ new_key ], [ old_key ])

(* direct logical undo in a tree, with the tombstone discipline: undo
   deletes become Present, undo inserts become tombstones *)
let logical_tree_undo ctx info ~clr (dels, inss) =
  List.iter
    (fun key ->
      let before = Btree.set_state info.Catalog.tree key LR.Pseudo_deleted in
      if before <> LR.Pseudo_deleted then
        ignore
          (clr
             (LR.Index_key
                {
                  redoable = true;
                  op =
                    { index = info.Catalog.index_id; key; before;
                      after = LR.Pseudo_deleted };
                })))
    dels;
  List.iter
    (fun key ->
      let before = Btree.set_state info.Catalog.tree key LR.Present in
      if before <> LR.Present then
        ignore
          (clr
             (LR.Index_key
                {
                  redoable = true;
                  op =
                    { index = info.Catalog.index_id; key; before;
                      after = LR.Present };
                })))
    inss;
  ignore ctx

let sidefile_undo ctx info ~clr (dels, inss) =
  let sf = sf_state info in
  (* Same durability rule as [sidefile_entry]: the CLRs must be durable
     before their compensating appends hit the instantly-durable side-file,
     or a second crash would roll the transaction back again and append the
     compensation twice. *)
  let append ~insert key =
    ignore
      (clr
         (LR.Sidefile_append
            { sidefile = info.Catalog.index_id; insert; key }));
    Oib_wal.Log_manager.flush_all ctx.Ctx.log;
    let pos = SF.apply_append sf.Catalog.sidefile ~insert key in
    note_sidefile_append ctx info ~insert pos
  in
  List.iter (fun key -> append ~insert:false key) dels;
  List.iter (fun key -> append ~insert:true key) inss

let undo_heap ctx _txn ~clr ~page ~old_count ~old_sf op =
  (* 1. reverse the data-page change *)
  let p = Buffer_pool.get ~role:"Heap_file" ctx.Ctx.pool page in
  Latch.acquire p.Page.latch X;
  let inverse = inverse_heap_op op in
  apply_heap_op (heap_page p) inverse;
  let rid = op_rid op in
  let tbl =
    (* the page belongs to exactly one table; find it through the catalog *)
    List.find
      (fun (t : Catalog.table_info) ->
        List.mem page (Heap_file.page_ids t.Catalog.heap))
      (Catalog.tables ctx.Ctx.catalog)
  in
  let record_of_op =
    match op with
    | LR.Heap_insert { record; _ } | LR.Heap_delete { record; _ } -> record
    | LR.Heap_update { old_record; _ } -> old_record
  in
  let vis_now =
    Catalog.visible_count_for ctx.Ctx.catalog tbl ~target:rid
      ~record:record_of_op
  in
  let sf_now =
    Catalog.sidefiled_for ctx.Ctx.catalog tbl ~target:rid ~record:record_of_op
  in
  let lsn =
    clr
      (LR.Heap
         { page; visible_indexes = vis_now; sidefiled = sf_now; op = inverse })
  in
  Page.set_lsn p lsn;
  Latch.release p.Page.latch X;
  (* 2. index compensation: indexes whose forward maintenance is not
     represented by Index_key records in this transaction's chain *)
  List.iteri
    (fun pos (info : Catalog.index_info) ->
      let visible_then = pos < old_count in
      let sidefiled_then = List.mem info.index_id old_sf in
      let ops = inverse_key_ops info ~rid op in
      let visible_now =
        Catalog.visible_to info ~target:rid ~record:record_of_op
      in
      if visible_then && sidefiled_then then
        match info.phase with
        | Catalog.Sf_building _ -> sidefile_undo ctx info ~clr ops
        | Catalog.Ready -> logical_tree_undo ctx info ~clr ops
        | Catalog.Nsf_building _ -> assert false
      else if (not visible_then) && visible_now then
        (* Figure 2's transition branch: the index became visible after the
           forward action *)
        match info.phase with
        | Catalog.Sf_building _ -> sidefile_undo ctx info ~clr ops
        | Catalog.Ready | Catalog.Nsf_building _ ->
          logical_tree_undo ctx info ~clr ops)
    tbl.Catalog.indexes

let undo_index_key ctx ~clr (op : LR.index_key_op) =
  let info = Catalog.index ctx.Ctx.catalog op.index in
  let target =
    match op.after with
    | LR.Present -> (
      match op.before with LR.Absent -> LR.Pseudo_deleted | b -> b)
    | LR.Pseudo_deleted -> LR.Present
    | LR.Absent -> op.before
  in
  let before = Btree.set_state info.tree op.key target in
  if before <> target then
    ignore
      (clr
         (LR.Index_key
            {
              redoable = true;
              op = { index = op.index; key = op.key; before; after = target };
            }))

let undo_executor ctx txn body ~clr =
  match body with
  | LR.Heap { page; visible_indexes; sidefiled; op } ->
    undo_heap ctx txn ~clr ~page ~old_count:visible_indexes ~old_sf:sidefiled
      op
  | LR.Index_key { op; _ } -> undo_index_key ctx ~clr op
  | LR.Index_bulk_insert _ ->
    (* only the index builder writes these, outside any transaction *)
    assert false
  | LR.Begin | LR.Commit | LR.Abort | LR.End | LR.Sidefile_append _
  | LR.Clr _ | LR.Build_start _ | LR.Build_done _ | LR.Heap_extend _
  | LR.Create_table _ | LR.Create_index _ | LR.Drop_index _
  | LR.Index_state _ | LR.Range_commit _ ->
    assert false

let rollback ctx txn =
  Txn.rollback ctx.Ctx.txns txn ~undo:(undo_executor ctx txn)
