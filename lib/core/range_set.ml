(* Disjoint, sorted, coalesced inclusive integer ranges over data-page
   ids, with a forced-kv durable form. See range_set.mli. *)

module Durable_kv = Oib_storage.Durable_kv

type t = { mutable ranges : (int * int) list (* ascending, disjoint *) }

let create () = { ranges = [] }

let add t ~lo ~hi =
  if lo > hi then invalid_arg "Range_set.add: lo > hi";
  (* insert, then merge every range that touches [lo..hi] (adjacency
     counts: [0,3] + [4,7] = [0,7]) *)
  let rec go acc lo hi = function
    | [] -> List.rev ((lo, hi) :: acc)
    | (l, h) :: rest when h + 1 < lo -> go ((l, h) :: acc) lo hi rest
    | (l, h) :: rest when hi + 1 < l ->
      List.rev_append acc ((lo, hi) :: (l, h) :: rest)
    | (l, h) :: rest -> go acc (min lo l) (max hi h) rest
  in
  t.ranges <- go [] lo hi t.ranges

let mem t p = List.exists (fun (l, h) -> l <= p && p <= h) t.ranges

let is_empty t = t.ranges = []

let max_covered t =
  List.fold_left (fun acc (_, h) -> max acc h) (-1) t.ranges

let covered_count t =
  List.fold_left (fun acc (l, h) -> acc + h - l + 1) 0 t.ranges

let ranges t = t.ranges

let missing t ~lo ~hi =
  let rec go acc lo = function
    | _ when lo > hi -> List.rev acc
    | [] -> List.rev ((lo, hi) :: acc)
    | (_, h) :: rest when h < lo -> go acc lo rest
    | (l, h) :: rest ->
      if l <= lo then go acc (h + 1) rest
      else go ((lo, min hi (l - 1)) :: acc) (h + 1) rest
  in
  if lo > hi then [] else go [] lo t.ranges

let to_string t =
  String.concat ","
    (List.map (fun (l, h) -> Printf.sprintf "[%d,%d]" l h) t.ranges)

(* --- durable form --- *)

type Durable_kv.value += Ranges of (int * int) list

let key ~index_id = Printf.sprintf "ib/%d/ranges" index_id

let load kv ~index_id =
  match Durable_kv.get kv (key ~index_id) with
  | Some (Ranges rs) -> { ranges = rs }
  | Some _ | None -> create ()

let commit kv ~index_id t = Durable_kv.set kv (key ~index_id) (Ranges t.ranges)

let clear kv ~index_id = Durable_kv.remove kv (key ~index_id)
