(** The index builder (IB): the NSF and SF algorithms.

    Both algorithms share the front half — a share-latch-only scan of the
    data pages, extracting keys pipelined into a restartable sort (§5) —
    and differ in how the tree is populated and how transactions interact:

    - {b NSF} (§2): a short quiesce (S table lock) creates the descriptor;
      from then on transactions maintain the index directly. IB inserts the
      sorted keys through the normal tree interface (duplicates rejected,
      pseudo-deleted tombstones respected), batching multiple keys per log
      record, using a remembered-path cursor and the specialized split that
      mimics a bottom-up build. Progress is checkpointed as the highest key
      inserted.

    - {b SF} (§3): no quiesce at all. Visibility is governed by the scan's
      Current-RID; transactions append to the side-file once IB's scan has
      passed their target. IB bulk-builds the tree bottom-up (no latching,
      no logging, no traversals), checkpointing images with the highest
      built key, then drains the side-file — logging those changes like a
      transaction would — and finally flips the index to Ready.

    Every stage records enough durable state (sort checkpoints, merge
    counters, image checkpoints, drain position) that {!resume_builds}
    continues an interrupted build after restart recovery instead of
    starting over. Multiple indexes can be built in one scan of the data
    (§6.2). *)

type algorithm = Nsf | Sf

type config = {
  algorithm : algorithm;
  memory_keys : int;  (** replacement-selection tournament capacity *)
  batch_size : int;  (** NSF: keys per multi-key insert call / log record *)
  ckpt_every_pages : int;  (** sort-phase checkpoint cadence *)
  ckpt_every_keys : int;  (** insert/bulk/drain checkpoint cadence *)
  specialized_split : bool;  (** NSF's IB split variant (§2.3.1) *)
  sort_sidefile : bool;
      (** SF: sort the side-file (stably) before applying it (§3.2.5) *)
}

val default_config : algorithm -> config

exception Build_unique_violation of { index : int; kv : string }
(** The table holds two committed records with the same key value: a
    unique index cannot be built (§2.2.3). The build is cancelled before
    this is raised. *)

exception Build_paused of { index : int }
(** Raised out of a build when {!Throttle.request_pause} was called on the
    engine's throttle. Only raised immediately after a durable checkpoint,
    so the paused build is in exactly the state a crash would leave it in:
    {!resume_builds} continues it (in-process or after a restart). *)

type spec = { index_id : int; key_cols : int list; unique : bool }

val set_scan_observer : (index:int -> page:int -> unit) option -> unit
(** Test hook (DST scan accounting): called once per (index, heap page)
    whose extracted keys are fed to that index's sorter. Process-global —
    survives engine crash/restart — so a harness can assert that no page
    is ever scanned twice for one build across incarnations. [None]
    uninstalls. *)

val set_range_observer : (index:int -> lo:int -> hi:int -> unit) option -> unit
(** Test hook: called when the builder seals scanned pages [lo..hi]
    (inclusive) as durably covered for [index]. [None] uninstalls. *)

val build_index : Ctx.t -> config -> table:int -> spec -> unit
(** Run a complete build in the calling fiber. *)

val build_indexes : Ctx.t -> config -> table:int -> spec list -> unit
(** Build several indexes in one scan of the data (§6.2). *)

val build_index_offline : Ctx.t -> config -> table:int -> spec -> unit
(** The pre-paper baseline (§1: "current DBMSs do not allow updates to a
    table while building an index on it"): hold an S table lock for the
    whole build, stalling every updater. Readers still proceed. Used by
    the availability experiment (E0). *)

val build_secondary_via_primary :
  Ctx.t -> config -> table:int -> primary:int -> spec -> unit
(** §6.2's index-organized storage model: build a secondary index by
    range-scanning a unique [Ready] primary index in key order; the SF
    visibility rule uses the scan's *current key* in place of Current-RID.
    Always a side-file build. A crash during the scan resumes as a fresh
    RID-order rescan (the sort makes the two orders equivalent); crashes in
    later stages resume from their checkpoints as usual. *)

val resume_builds : Ctx.t -> config -> unit
(** Continue every interrupted build found in durable state (call in a
    fiber after [Engine.restart]). *)

val cancel_build : Ctx.t -> index_id:int -> unit
(** §2.3.2: quiesce updaters briefly, remove the descriptor and the
    index. *)

val gc_pseudo_deleted : Ctx.t -> index_id:int -> int
(** §2.2.4: physically remove committed pseudo-deleted keys. Uses the
    system-quiescent Commit_LSN shortcut when possible, else conditional
    instant locks; removals are logged (redo-only) for recovery. Returns
    the number collected. *)

val spawn_gc_daemon :
  Ctx.t -> index_id:int -> every:int -> (unit -> unit) * int ref
(** Run garbage collection as a background fiber, sweeping once every
    [every] of its scheduling turns while the index is [Ready] (§2.2.4
    "scheduled as a background activity"). Returns a stop function and the
    running total of collected tombstones. *)

val restore_phase_after_restart : Ctx.t -> index_id:int -> unit
(** Used by [Engine.restart]: downgrade a reopened index's phase from
    [Ready] to its true in-progress state using the builder's durable
    progress record (no-op when the index has no progress record). Also
    downgrades a [Readable] lifecycle state back to [Write_only] (the
    crash hit between the readable transition and a durable [Build_done])
    and rehydrates the published {!Build_status} from the progress record,
    so status and catalog agree before the resuming builder runs. *)

val interrupted_builds : Ctx.t -> int list
(** Index ids with a durable in-progress build record. *)
