open Oib_util
open Oib_storage
module LR = Oib_wal.Log_record
module Lsn = Oib_wal.Lsn
module LM = Oib_wal.Log_manager
module LockM = Oib_lock.Lock_manager
module Btree = Oib_btree.Btree
module Latch = Oib_sim.Latch
module Sched = Oib_sim.Sched
module SF = Oib_sidefile.Side_file
module Sort = Oib_sort.Sort_phase
module Merge = Oib_sort.Merge_phase
module Runs = Oib_sort.Run_store

type algorithm = Nsf | Sf

type config = {
  algorithm : algorithm;
  memory_keys : int;
  batch_size : int;
  ckpt_every_pages : int;
  ckpt_every_keys : int;
  specialized_split : bool;
  sort_sidefile : bool;
}

let default_config algorithm =
  {
    algorithm;
    memory_keys = 512;
    batch_size = 32;
    ckpt_every_pages = 64;
    ckpt_every_keys = 4096;
    specialized_split = true;
    sort_sidefile = false;
  }

exception Build_unique_violation of { index : int; kv : string }

exception Build_paused of { index : int }

type spec = { index_id : int; key_cols : int list; unique : bool }

(* --- test observers (DST scan-accounting oracle) ---

   [scan_observer] fires once per (index, heap page) extraction that feeds
   the sort; [range_observer] fires when a scanned range is sealed. Both
   are process-global so a harness can watch every engine incarnation. *)

let scan_observer : (index:int -> page:int -> unit) option ref = ref None
let set_scan_observer f = scan_observer := f

let range_observer : (index:int -> lo:int -> hi:int -> unit) option ref =
  ref None

let set_range_observer f = range_observer := f

let observe_scan ~index ~page =
  match !scan_observer with Some f -> f ~index ~page | None -> ()

let observe_range ~index ~lo ~hi =
  match !range_observer with Some f -> f ~index ~lo ~hi | None -> ()

(* --- admission-controlled pacing --- *)

(* Extra voluntary yields at IB pacing points while the throttle is
   backed off; a no-op at level 0, so fault-free runs are step-identical
   to pre-throttle builds. *)
let throttle_yields ctx =
  for _ = 1 to Throttle.extra_yields ctx.Ctx.throttle do
    Sched.yield ctx.Ctx.sched
  done

(* Operator pause: honored only right after a durable checkpoint, so the
   interrupted build resumes exactly where a crash would have. *)
let check_pause ctx ~index_id =
  if Throttle.pause_requested ctx.Ctx.throttle then
    raise (Build_paused { index = index_id })

(* durable build progress *)
type stage =
  | Scanning of { current_rid : Rid.t }
  | Merging of { runs : string list }
  | Inserting of { sorted : string; highest : Ikey.t option } (* NSF *)
  | Bulking of { sorted : string; highest : Ikey.t option } (* SF *)
  | Draining of { pos : int } (* SF *)

type progress = {
  p_algorithm : algorithm;
  p_table : int;
  p_stage : stage;
  p_last_scan_page : int; (* scan end noted at build start; -1 = empty *)
}

type Durable_kv.value += Ib_progress of progress

let progress_key index_id = Printf.sprintf "ib/%d/progress" index_id
let sort_key index_id = Printf.sprintf "ib/%d/sort" index_id
let merge_key index_id = Printf.sprintf "ib/%d/mergeckpt" index_id

(* must NOT share a prefix with [sort_key]: Sort_phase.resume deletes
   unknown runs under its own checkpoint prefix *)
let sorted_run_name index_id = Printf.sprintf "ib/%d/merged-output" index_id

(* a lock-owner id for IB's own lock calls, distinct from transaction ids *)
let ib_owner index_id = 1_000_000 + index_id

(* --- published build progress (Build_status + trace events) --- *)

module BS = Build_status

let status ctx ~index_id ~algorithm =
  match Hashtbl.find_opt ctx.Ctx.builds index_id with
  | Some st -> st
  | None ->
    let st = BS.create ~index_id ~algorithm in
    Hashtbl.replace ctx.Ctx.builds index_id st;
    st

let algorithm_name = function Nsf -> "nsf" | Sf -> "sf"

let note_phase ctx (st : BS.t) phase =
  if phase <> st.BS.phase then begin
    BS.set_phase st ~step:(Sched.steps ctx.Ctx.sched) phase;
    let tr = Sched.trace ctx.Ctx.sched in
    if Oib_obs.Trace.tracing tr then
      Oib_obs.Trace.emit tr
        (Oib_obs.Event.Ib_phase
           { index = st.BS.index_id; phase = BS.phase_name phase });
    (* one span per phase: close the previous one (may happen on a
       different fiber than the begin — pipeline children end phases) and
       open the next, except for the terminal Ready. *)
    Oib_obs.Trace.span_end tr st.BS.phase_span;
    st.BS.phase_span <-
      (if phase = BS.Ready then 0
       else
         Oib_obs.Trace.span_begin tr ~cat:"ib"
           ~name:
             (Printf.sprintf "index-%d/%s" st.BS.index_id
                (BS.phase_name phase)))
  end

(* Resource account of a build, once its status exists. *)
let build_account ctx index_id =
  Option.map
    (fun (st : BS.t) -> st.BS.resources)
    (Hashtbl.find_opt ctx.Ctx.builds index_id)

(* Charge everything [f] does on the current fiber to [st]'s account.
   Registrations nest (shadowing), so a pipeline child fiber re-pointing
   at its own build is fine. *)
let with_account ctx (st : BS.t) f =
  match Sched.current_fiber ctx.Ctx.sched with
  | None -> f ()
  | Some fiber ->
    Oib_sim.Metrics.register_account ctx.Ctx.metrics ~fiber st.BS.resources;
    Fun.protect
      ~finally:(fun () ->
        Oib_sim.Metrics.unregister_account ctx.Ctx.metrics ~fiber)
      f

let note_checkpoint ctx (st : BS.t) ~stage =
  st.BS.checkpoints <- st.BS.checkpoints + 1;
  let tr = Sched.trace ctx.Ctx.sched in
  if Oib_obs.Trace.tracing tr then
    Oib_obs.Trace.emit tr
      (Oib_obs.Event.Ib_checkpoint { index = st.BS.index_id; stage })

(* lifecycle transition + trace event *)
let set_state ctx index_id to_ =
  Catalog.set_state ctx.Ctx.catalog ctx.Ctx.pool index_id to_;
  let tr = Sched.trace ctx.Ctx.sched in
  if Oib_obs.Trace.tracing tr then
    Oib_obs.Trace.emit tr
      (Oib_obs.Event.Index_state
         { index = index_id; state = Catalog.state_name to_ })

let set_progress ctx index_id ~algorithm ~table ~stage ~last_scan_page =
  Durable_kv.set ctx.Ctx.kv (progress_key index_id)
    (Ib_progress
       {
         p_algorithm = algorithm;
         p_table = table;
         p_stage = stage;
         p_last_scan_page = last_scan_page;
       })

let get_progress ctx index_id =
  match Durable_kv.get ctx.Ctx.kv (progress_key index_id) with
  | Some (Ib_progress p) -> Some p
  | _ -> None

let clear_progress ctx index_id =
  Durable_kv.remove ctx.Ctx.kv (progress_key index_id)

(* --- IB unique-key-value verification (§2.2.3) ---

   Two entries with the same key value and different RIDs: lock both
   records in share mode, then verify the duplicate condition still holds
   against the data pages. *)
let ib_unique_check ctx (info : Catalog.index_info) (a : Ikey.t) (b : Ikey.t) =
  let owner = ib_owner info.index_id in
  let tbl = Catalog.table ctx.Ctx.catalog info.table_id in
  let lock_rid rid =
    match LockM.lock ctx.Ctx.locks ~txn:owner (LockM.Record rid) S with
    | LockM.Granted -> ()
    | LockM.Deadlock -> () (* IB holds no other locks: cannot deadlock *)
  in
  lock_rid a.rid;
  lock_rid b.rid;
  let kv_of rid =
    match Heap_file.read_record tbl.Catalog.heap rid with
    | Some record -> Some (Record.key_value record info.key_cols)
    | None -> None
    | exception Not_found -> None
  in
  let still =
    kv_of a.rid = Some a.kv && kv_of b.rid = Some b.kv
    && String.equal a.kv b.kv
  in
  LockM.unlock_all ctx.Ctx.locks ~txn:owner;
  still

(* --- scan + extract + sort (shared by NSF and SF) --- *)

(* One build job per index within a (possibly multi-index) scan. *)
type job = {
  spec : spec;
  info : Catalog.index_info;
  sorter : Sort.t;
}

(* the status a later stage attaches to: normally created by the
   orchestration entry point, so the algorithm label is already right *)
let job_status ctx (job : job) =
  let algorithm =
    match job.info.Catalog.phase with
    | Catalog.Nsf_building _ -> "nsf"
    | _ -> "sf"
  in
  status ctx ~index_id:job.spec.index_id ~algorithm

(* [dynamic] (SF): the scan chases the end of the file so that pages added
   by concurrent extensions are still scanned — only extensions after the
   scan has drained the file go through the Current-RID = infinity rule
   (§3.2.2). NSF instead notes the last page before starting and lets
   transactions index later extensions directly (§2.3.1). *)
let scan_and_sort ctx cfg tbl ~last_scan_page ~dynamic jobs ~set_current_rid =
  let first_needed =
    List.fold_left (fun acc j -> min acc (Sort.scan_pos j.sorter)) max_int jobs
  in
  (* Per-job record of already-scanned page ranges. On resume the sort
     checkpoint may be ahead of the last sealed range (a crash hit between
     the sort checkpoint and the range commit — both live in the same
     forced kv, so coverage can only trail the checkpoint, never lead it);
     reconcile by sealing the gap up to the checkpointed scan position. *)
  let ranges =
    List.map
      (fun j ->
        let rs = Range_set.load ctx.Ctx.kv ~index_id:j.spec.index_id in
        let pos = Sort.scan_pos j.sorter in
        if pos > Range_set.max_covered rs then begin
          let lo = Range_set.max_covered rs + 1 in
          Range_set.add rs ~lo ~hi:pos;
          Range_set.commit ctx.Ctx.kv ~index_id:j.spec.index_id rs;
          observe_range ~index:j.spec.index_id ~lo ~hi:pos
        end;
        (j, rs))
      jobs
  in
  (* Seal everything scanned since the last commit point. Ordered after
     [Sort.checkpoint]: a page is sealed only once its keys are durable in
     the sorter's checkpointed state, so a sealed page is never rescanned
     and never loses its keys. The WAL record is informational (the kv is
     the authority); it lets trace analysis and recovery narrate coverage. *)
  let commit_ranges () =
    let any = ref false in
    List.iter
      (fun (j, rs) ->
        let pos = Sort.scan_pos j.sorter in
        let lo = Range_set.max_covered rs + 1 in
        if pos >= lo then begin
          Range_set.add rs ~lo ~hi:pos;
          Range_set.commit ctx.Ctx.kv ~index_id:j.spec.index_id rs;
          ignore
            (LM.append ctx.Ctx.log ~txn:None ~prev_lsn:Lsn.nil
               (LR.Range_commit { index = j.spec.index_id; lo; hi = pos }));
          any := true;
          observe_range ~index:j.spec.index_id ~lo ~hi:pos;
          let tr = Sched.trace ctx.Ctx.sched in
          if Oib_obs.Trace.tracing tr then
            Oib_obs.Trace.emit tr
              (Oib_obs.Event.Ib_range_commit
                 { index = j.spec.index_id; lo; hi = pos })
        end)
      ranges;
    if !any then LM.flush_all ctx.Ctx.log
  in
  let pages_done = ref 0 in
  let process_page (page : Page.t) =
    let pid = page.Page.id in
    if pid > first_needed then begin
      ctx.Ctx.metrics.sequential_reads <- ctx.Ctx.metrics.sequential_reads + 1;
      (* extract under a share latch; no locks (§2.2.2 / §3.2.2) *)
      Latch.acquire page.Page.latch S;
      let per_job = List.map (fun j -> (j, ref [])) jobs in
      Heap_page.iter (Heap_page.of_payload page.Page.payload) (fun slot r ->
          let rid = Rid.make ~page:pid ~slot in
          List.iter
            (fun (j, acc) -> acc := Catalog.key_of j.info r ~rid :: !acc)
            per_job;
          set_current_rid rid);
      (* the whole page is done: advance Current-RID to the page boundary
         while still holding the latch, so an insert into a later slot of
         this page (blocked on the latch right now) sees itself behind the
         scan and writes its side-file entry *)
      set_current_rid (Rid.make ~page:pid ~slot:max_int);
      Latch.release page.Page.latch S;
      (* The extracted keys may reflect uncommitted updates, and the sorter
         can spill them to the instantly-durable run store at any feed. If
         such a transaction's log tail were lost in a crash it would not be
         a loser, yet its effects would survive inside the durable runs
         with nothing to compensate them. Force the log first so every
         transaction whose effects we captured is durably logged (and hence
         rolled back as a loser if it never commits). *)
      LM.flush_all ctx.Ctx.log;
      List.iter
        (fun (j, acc) ->
          if pid > Sort.scan_pos j.sorter then begin
            observe_scan ~index:j.spec.index_id ~page:pid;
            Sort.feed_page j.sorter ~scan_pos:pid (List.rev !acc);
            let st = job_status ctx j in
            st.BS.keys_processed <-
              st.BS.keys_processed + List.length !acc
          end)
        per_job;
      incr pages_done;
      if !pages_done mod cfg.ckpt_every_pages = 0 then begin
        List.iter (fun j -> Sort.checkpoint j.sorter) jobs;
        commit_ranges ();
        check_pause ctx ~index_id:(List.hd jobs).spec.index_id
      end
    end;
    (* let transactions interleave between pages *)
    Sched.yield ctx.Ctx.sched;
    throttle_yields ctx
  in
  if not dynamic then
    Heap_file.scan_pages tbl.Catalog.heap ~upto:last_scan_page process_page
  else begin
    let highest_done = ref (-1) in
    let rec chase () =
      let fresh =
        List.filter
          (fun id -> id > !highest_done)
          (Heap_file.page_ids tbl.Catalog.heap)
      in
      match fresh with
      | [] -> () (* drained: the caller flips Current-RID to infinity
                    without yielding in between *)
      | _ ->
        List.iter
          (fun id ->
            process_page (Heap_file.page tbl.Catalog.heap id);
            highest_done := id)
          fresh;
        chase ()
    in
    chase ()
  end;
  (* scan complete: checkpoint the sorters (making the tail durable) and
     seal the remaining coverage *)
  List.iter (fun j -> Sort.checkpoint j.sorter) jobs;
  commit_ranges ()

let merge_sorted ctx _cfg job =
  note_phase ctx (job_status ctx job) BS.Merge;
  let runs = Sort.finish job.sorter in
  set_progress ctx job.spec.index_id
    ~algorithm:
      (match job.info.phase with
      | Catalog.Nsf_building _ -> Nsf
      | _ -> Sf)
    ~table:job.info.table_id
    ~stage:(Merging { runs })
    ~last_scan_page:(-1);
  runs

(* merge [runs] into the canonical sorted run for this index *)
let do_merge ctx job runs =
  Merge.merge_all
    ?account:(build_account ctx job.spec.index_id)
    ctx.Ctx.kv ctx.Ctx.runs ~ckpt_id:(merge_key job.spec.index_id)
    ~inputs:runs
    ~output:(sorted_run_name job.spec.index_id)
    ~fan_in:16 ~ckpt_every:4096

(* Run per-index post-scan pipelines in parallel, one fiber per index
   (§6.2: "a process can be spawned for each index to sort the keys,
   insert them and process the side-file"). Exceptions from children are
   re-raised in the caller after all fibers finish. *)
let parallel_jobs ctx jobs f =
  (* every pipeline — inline or spawned — charges its own build *)
  let f job = with_account ctx (job_status ctx job) (fun () -> f job) in
  match jobs with
  | [ job ] -> f job
  | _ ->
    let remaining = ref (List.length jobs) in
    let failed = ref None in
    let cond = Sched.Cond.create ctx.Ctx.sched in
    List.iter
      (fun job ->
        ignore
          (Sched.spawn ctx.Ctx.sched
             ~name:(Printf.sprintf "ib-pipeline-%d" job.spec.index_id)
             (fun () ->
               (try f job
                with e -> if !failed = None then failed := Some e);
               decr remaining;
               if !remaining = 0 then Sched.Cond.broadcast cond)))
      jobs;
    while !remaining > 0 do
      Sched.Cond.wait cond
    done;
    match !failed with Some e -> raise e | None -> ()

(* --- NSF: insert phase (§2.2.3) --- *)

let cancel_build_internal ctx ~index_id =
  (* quiesce updaters so rollbacks cannot run into a missing descriptor
     (§2.3.2), then drop everything *)
  let info = Catalog.index ctx.Ctx.catalog index_id in
  let owner = ib_owner index_id in
  (match
     LockM.lock ctx.Ctx.locks ~txn:owner (LockM.Table info.table_id) S
   with
  | LockM.Granted -> ()
  | LockM.Deadlock -> ());
  (* tear-down transition first: a crash mid-cancel must not leave the
     index maintained (the Drop_index below removes it from the log's
     state map anyway, so order only matters for the in-memory window) *)
  if Catalog.state ctx.Ctx.catalog index_id <> Catalog.Disabled then
    set_state ctx index_id Catalog.Disabled;
  ignore
    (LM.append ctx.Ctx.log ~txn:None ~prev_lsn:Lsn.nil
       (LR.Build_done { index = index_id }));
  ignore
    (LM.append ctx.Ctx.log ~txn:None ~prev_lsn:Lsn.nil
       (LR.Drop_index { index = index_id }));
  LM.flush_all ctx.Ctx.log;
  Catalog.drop_index ctx.Ctx.catalog index_id;
  clear_progress ctx index_id;
  Range_set.clear ctx.Ctx.kv ~index_id;
  LockM.unlock_all ctx.Ctx.locks ~txn:owner

let nsf_unique_guard ctx job (key : Ikey.t) =
  let info = job.info in
  let rivals =
    List.filter
      (fun ((k : Ikey.t), pseudo) ->
        (not pseudo) && not (Rid.equal k.rid key.rid))
      (Btree.find_kv info.tree key.kv)
  in
  List.iter
    (fun ((k : Ikey.t), _) ->
      if ib_unique_check ctx info key k then begin
        cancel_build_internal ctx ~index_id:info.index_id;
        raise (Build_unique_violation { index = info.index_id; kv = key.kv })
      end)
    rivals

let nsf_checkpoint ctx job ~highest =
  (* §2.2.3 "Periodic Checkpointing by IB": force the log (the commit
     call), take a sharp image, record the highest key *)
  LM.flush_all ctx.Ctx.log;
  Btree.checkpoint_image job.info.tree ~lsn:(LM.flushed_lsn ctx.Ctx.log);
  set_progress ctx job.spec.index_id ~algorithm:Nsf ~table:job.info.table_id
    ~stage:
      (Inserting { sorted = sorted_run_name job.spec.index_id; highest })
    ~last_scan_page:(-1);
  note_checkpoint ctx (job_status ctx job) ~stage:"insert"

let nsf_insert_phase ctx cfg job ~from_key =
  let st = job_status ctx job in
  note_phase ctx st BS.Insert;
  let run = Runs.find_run ctx.Ctx.runs (sorted_run_name job.spec.index_id) in
  let cursor = Btree.new_cursor job.info.tree in
  let n = Runs.length run in
  let highest = ref from_key in
  let batch = ref [] in
  let batch_n = ref 0 in
  let since_ckpt = ref 0 in
  let flush_batch () =
    if !batch <> [] then begin
      ignore
        (LM.append ctx.Ctx.log ~txn:None ~prev_lsn:Lsn.nil
           (LR.Index_bulk_insert
              { index = job.spec.index_id; keys = List.rev !batch }));
      batch := [];
      batch_n := 0
    end
  in
  let start_pos =
    (* skip keys at or below the checkpointed highest *)
    match from_key with
    | None -> 0
    | Some h ->
      let rec find i =
        if i >= n then n
        else if Ikey.compare (Runs.get run i) h > 0 then i
        else find (i + 1)
      in
      find 0
  in
  for i = start_pos to n - 1 do
    let key = Runs.get run i in
    if job.spec.unique then nsf_unique_guard ctx job key;
    (match
       Btree.insert_if_absent job.info.tree
         ~ib_split:cfg.specialized_split ~cursor key
     with
    | `Inserted ->
      batch := key :: !batch;
      incr batch_n;
      (* backed-off batches are smaller: shorter latch tenure per flush *)
      if !batch_n >= Throttle.scaled ctx.Ctx.throttle ~base:cfg.batch_size
      then flush_batch ()
    | `Rejected _ -> () (* a transaction or a tombstone won the race *));
    highest := Some key;
    st.BS.keys_processed <- st.BS.keys_processed + 1;
    incr since_ckpt;
    if !since_ckpt >= cfg.ckpt_every_keys then begin
      flush_batch ();
      nsf_checkpoint ctx job ~highest:!highest;
      (* gradual availability (footnote 3): everything strictly below the
         checkpointed key value is complete and may serve reads *)
      (match (job.info.phase, !highest) with
      | Catalog.Nsf_building st, Some h ->
        st.Catalog.avail_below <- Some h.Ikey.kv
      | _ -> ());
      since_ckpt := 0;
      check_pause ctx ~index_id:job.spec.index_id
    end;
    if i mod 16 = 0 then begin
      Sched.yield ctx.Ctx.sched;
      throttle_yields ctx
    end
  done;
  flush_batch ()

(* --- SF: bulk build + side-file drain (§3.2.4-3.2.5) --- *)

let sf_state (info : Catalog.index_info) =
  match info.phase with
  | Catalog.Sf_building sf -> sf
  | _ -> invalid_arg "Ib.sf_state: not an SF build"

let sf_checkpoint_bulk ctx job ~highest =
  LM.flush_all ctx.Ctx.log;
  Btree.checkpoint_image job.info.tree ~lsn:(LM.flushed_lsn ctx.Ctx.log);
  set_progress ctx job.spec.index_id ~algorithm:Sf ~table:job.info.table_id
    ~stage:(Bulking { sorted = sorted_run_name job.spec.index_id; highest })
    ~last_scan_page:(-1);
  note_checkpoint ctx (job_status ctx job) ~stage:"bulk"

let sf_bulk_phase ctx cfg job ~from_key =
  let st = job_status ctx job in
  note_phase ctx st BS.Bulk;
  let run = Runs.find_run ctx.Ctx.runs (sorted_run_name job.spec.index_id) in
  let b =
    match from_key with
    | None -> Btree.Bulk.start job.info.tree
    | Some _ -> Btree.Bulk.resume job.info.tree
  in
  let n = Runs.length run in
  let start_pos =
    match from_key with
    | None -> 0
    | Some h ->
      let rec find i =
        if i >= n then n
        else if Ikey.compare (Runs.get run i) h > 0 then i
        else find (i + 1)
      in
      find 0
  in
  let since_ckpt = ref 0 in
  let prev = ref from_key in
  for i = start_pos to n - 1 do
    let key = Runs.get run i in
    (* adjacent equal key values in the sorted stream: unique check *)
    if job.spec.unique then begin
      match !prev with
      | Some p when String.equal p.Ikey.kv key.Ikey.kv ->
        if ib_unique_check ctx job.info p key then begin
          cancel_build_internal ctx ~index_id:job.spec.index_id;
          raise
            (Build_unique_violation
               { index = job.spec.index_id; kv = key.Ikey.kv })
        end
      | _ -> ()
    end;
    Btree.Bulk.add b key;
    prev := Some key;
    st.BS.keys_processed <- st.BS.keys_processed + 1;
    incr since_ckpt;
    if !since_ckpt >= cfg.ckpt_every_keys then begin
      sf_checkpoint_bulk ctx job ~highest:(Some key);
      since_ckpt := 0;
      check_pause ctx ~index_id:job.spec.index_id
    end;
    if i mod 16 = 0 then begin
      Sched.yield ctx.Ctx.sched;
      throttle_yields ctx
    end
  done;
  Btree.Bulk.finish b

(* apply one side-file entry to the tree as a transaction would, logging
   redo-undo records (§3.2.5) *)
let sf_apply_entry ?cursor ctx job (e : SF.entry) =
  let tree = job.info.tree in
  if e.insert then begin
    if job.spec.unique then begin
      let rivals =
        List.filter
          (fun ((k : Ikey.t), pseudo) ->
            (not pseudo) && not (Rid.equal k.rid e.key.Ikey.rid))
          (Btree.find_kv tree e.key.Ikey.kv)
      in
      List.iter
        (fun ((k : Ikey.t), _) ->
          if ib_unique_check ctx job.info e.key k then begin
            cancel_build_internal ctx ~index_id:job.spec.index_id;
            raise
              (Build_unique_violation
                 { index = job.spec.index_id; kv = e.key.Ikey.kv })
          end)
        rivals
    end;
    let before = Btree.set_state tree ?cursor e.key LR.Present in
    if before <> LR.Present then
      ignore
        (LM.append ctx.Ctx.log ~txn:None ~prev_lsn:Lsn.nil
           (LR.Index_key
              {
                redoable = true;
                op =
                  { index = job.spec.index_id; key = e.key; before;
                    after = LR.Present };
              }))
  end
  else begin
    let before = Btree.set_state tree ?cursor e.key LR.Absent in
    if before <> LR.Absent then
      ignore
        (LM.append ctx.Ctx.log ~txn:None ~prev_lsn:Lsn.nil
           (LR.Index_key
              {
                redoable = true;
                op =
                  { index = job.spec.index_id; key = e.key; before;
                    after = LR.Absent };
              }))
  end

let sf_drain_phase ctx cfg job ~from_pos =
  let st = job_status ctx job in
  note_phase ctx st BS.Drain;
  let sf = sf_state job.info in
  sf.Catalog.draining <- true;
  let pos = ref from_pos in
  let update_backlog () =
    st.BS.backlog <- max 0 (SF.length sf.Catalog.sidefile - !pos)
  in
  update_backlog ();
  let since_ckpt = ref 0 in
  let checkpoint () =
    LM.flush_all ctx.Ctx.log;
    Btree.checkpoint_image job.info.tree ~lsn:(LM.flushed_lsn ctx.Ctx.log);
    set_progress ctx job.spec.index_id ~algorithm:Sf ~table:job.info.table_id
      ~stage:(Draining { pos = !pos })
      ~last_scan_page:(-1);
    note_checkpoint ctx st ~stage:"drain"
  in
  checkpoint ();
  let apply_upto upto ~sorted =
    let from_pos = !pos in
    let entries =
      if sorted then SF.sorted_slice sf.Catalog.sidefile ~from:!pos ~upto
      else SF.slice sf.Catalog.sidefile ~from:!pos ~upto
    in
    (* a sorted stream is key-local: a remembered-path cursor avoids most
       root-to-leaf traversals (the measurable benefit of §3.2.5) *)
    let cursor =
      if sorted then Some (Btree.new_cursor job.info.tree) else None
    in
    List.iter
      (fun e ->
        sf_apply_entry ?cursor ctx job e;
        st.BS.keys_processed <- st.BS.keys_processed + 1;
        incr since_ckpt;
        if !since_ckpt >= cfg.ckpt_every_keys then begin
          (* position moves wholesale after the batch when sorting; only
             checkpoint inside a batch when applying sequentially *)
          if not sorted then begin
            pos := !pos + !since_ckpt;
            update_backlog ();
            checkpoint ();
            check_pause ctx ~index_id:job.spec.index_id
          end;
          since_ckpt := 0
        end)
      entries;
    pos := upto;
    since_ckpt := 0;
    update_backlog ();
    (let tr = Sched.trace ctx.Ctx.sched in
     if Oib_obs.Trace.tracing tr then
       Oib_obs.Trace.emit tr
         (Oib_obs.Event.Sidefile_drained
            { sidefile = job.spec.index_id; from_pos; upto }));
    Sched.yield ctx.Ctx.sched;
    throttle_yields ctx
  in
  (* the bulk of the side-file may be applied sorted (§3.2.5); the chase
     loop then applies new arrivals sequentially until it catches up *)
  let first_target = SF.length sf.Catalog.sidefile in
  if cfg.sort_sidefile && first_target > !pos then
    apply_upto first_target ~sorted:true;
  let rec chase () =
    let target = SF.length sf.Catalog.sidefile in
    if target > !pos then begin
      apply_upto target ~sorted:false;
      chase ()
    end
  in
  chase ();
  (* caught up: no yield between the check above and the flip below, so no
     transaction can append in between *)
  st.BS.backlog <- 0;
  job.info.phase <- Catalog.Ready

(* --- build orchestration --- *)

let finish_build ctx job =
  (* Readable first (its own append + flush), then Build_done: a durable
     Build_done therefore implies a durably logged Readable, so recovery
     never sees a finished build stuck write-only. The guard covers a
     resumed finish whose first attempt crashed between the two — and
     only the Write_only -> Readable edge is legal, so match the source
     state explicitly rather than "anything but Readable". *)
  if Catalog.state ctx.Ctx.catalog job.spec.index_id = Catalog.Write_only
  then set_state ctx job.spec.index_id Catalog.Readable;
  ignore
    (LM.append ctx.Ctx.log ~txn:None ~prev_lsn:Lsn.nil
       (LR.Build_done { index = job.spec.index_id }));
  LM.flush_all ctx.Ctx.log;
  Btree.checkpoint_image job.info.tree ~lsn:(LM.flushed_lsn ctx.Ctx.log);
  clear_progress ctx job.spec.index_id;
  Range_set.clear ctx.Ctx.kv ~index_id:job.spec.index_id;
  Runs.delete_run ctx.Ctx.runs (sorted_run_name job.spec.index_id);
  job.info.phase <- Catalog.Ready;
  note_phase ctx (job_status ctx job) BS.Ready

let start_sorter ctx cfg index_id =
  let account = build_account ctx index_id in
  match
    Sort.resume ?account ctx.Ctx.kv ctx.Ctx.runs ~ckpt_id:(sort_key index_id)
      ~memory_keys:cfg.memory_keys
  with
  | Some s -> s
  | None ->
    Sort.start ?account ctx.Ctx.kv ctx.Ctx.runs ~ckpt_id:(sort_key index_id)
      ~memory_keys:cfg.memory_keys

let build_indexes_nsf ctx cfg ~table specs =
  let tbl = Catalog.table ctx.Ctx.catalog table in
  let stats =
    List.map
      (fun spec -> status ctx ~index_id:spec.index_id ~algorithm:"nsf")
      specs
  in
  (* the orchestrating fiber's work (quiesce, shared scan) charges the
     first build; per-index pipelines re-point to their own below *)
  with_account ctx (List.hd stats) @@ fun () ->
  List.iter (fun st -> note_phase ctx st BS.Quiesce) stats;
  (* short quiesce: create all descriptors under an S table lock (§2.2.1) *)
  let owner = ib_owner (List.hd specs).index_id in
  (match LockM.lock ctx.Ctx.locks ~txn:owner (LockM.Table table) S with
  | LockM.Granted -> ()
  | LockM.Deadlock -> assert false);
  let jobs =
    List.map
      (fun spec ->
        let info =
          Catalog.add_index ctx.Ctx.catalog ctx.Ctx.pool ~table_id:table
            ~index_id:spec.index_id ~key_cols:spec.key_cols
            ~unique:spec.unique ~state:Catalog.Disabled
            ~phase:(Catalog.Nsf_building { avail_below = None })
        in
        ignore
          (LM.append ctx.Ctx.log ~txn:None ~prev_lsn:Lsn.nil
             (LR.Build_start { index = spec.index_id; table }));
        (* admission: still inside the quiesce window, so no update can
           observe the descriptor before it is write-only *)
        set_state ctx spec.index_id Catalog.Write_only;
        let sorter = start_sorter ctx cfg spec.index_id in
        { spec; info; sorter })
      specs
  in
  LM.flush_all ctx.Ctx.log;
  let last_scan_page =
    Option.value ~default:(-1) (Heap_file.last_page_id tbl.Catalog.heap)
  in
  List.iter
    (fun job ->
      set_progress ctx job.spec.index_id ~algorithm:Nsf ~table
        ~stage:(Scanning { current_rid = Rid.minus_infinity })
        ~last_scan_page)
    jobs;
  LockM.unlock_all ctx.Ctx.locks ~txn:owner;
  (* quiesce over; updaters run against the new descriptors from here on *)
  List.iter (fun st -> note_phase ctx st BS.Scan) stats;
  scan_and_sort ctx cfg tbl ~last_scan_page ~dynamic:false jobs
    ~set_current_rid:(fun rid ->
      List.iter
        (fun (st : BS.t) -> st.BS.scan_rid <- Rid.to_string rid)
        stats);
  parallel_jobs ctx jobs (fun job ->
      let runs = merge_sorted ctx cfg job in
      ignore (do_merge ctx job runs);
      set_progress ctx job.spec.index_id ~algorithm:Nsf ~table
        ~stage:
          (Inserting { sorted = sorted_run_name job.spec.index_id; highest = None })
        ~last_scan_page:(-1);
      nsf_insert_phase ctx cfg job ~from_key:None;
      finish_build ctx job)

let build_indexes_sf ctx cfg ~table specs =
  let tbl = Catalog.table ctx.Ctx.catalog table in
  let stats =
    List.map
      (fun spec -> status ctx ~index_id:spec.index_id ~algorithm:"sf")
      specs
  in
  with_account ctx (List.hd stats) @@ fun () ->
  (* no quiesce: descriptors appear while updaters run (§3.2.1) *)
  let jobs =
    List.map
      (fun spec ->
        let info =
          Catalog.add_index ctx.Ctx.catalog ctx.Ctx.pool ~table_id:table
            ~index_id:spec.index_id ~key_cols:spec.key_cols
            ~unique:spec.unique ~state:Catalog.Disabled
            ~phase:
              (Catalog.Sf_building
                 {
                   sidefile = SF.create ~sidefile_id:spec.index_id;
                   current_rid = Rid.minus_infinity;
                   current_key = None;
                   key_scan = None;
                   draining = false;
                 })
        in
        ignore
          (LM.append ctx.Ctx.log ~txn:None ~prev_lsn:Lsn.nil
             (LR.Build_start { index = spec.index_id; table }));
        (* admission before the scan moves Current-RID: no operation is
           side-file-visible yet, so nothing is missed in the window *)
        set_state ctx spec.index_id Catalog.Write_only;
        let sorter = start_sorter ctx cfg spec.index_id in
        { spec; info; sorter })
      specs
  in
  LM.flush_all ctx.Ctx.log;
  let last_scan_page =
    Option.value ~default:(-1) (Heap_file.last_page_id tbl.Catalog.heap)
  in
  List.iter
    (fun job ->
      set_progress ctx job.spec.index_id ~algorithm:Sf ~table
        ~stage:(Scanning { current_rid = Rid.minus_infinity })
        ~last_scan_page)
    jobs;
  let states = List.map (fun job -> sf_state job.info) jobs in
  List.iter (fun st -> note_phase ctx st BS.Scan) stats;
  scan_and_sort ctx cfg tbl ~last_scan_page ~dynamic:true jobs
    ~set_current_rid:(fun rid ->
      List.iter (fun sf -> sf.Catalog.current_rid <- rid) states;
      List.iter
        (fun (st : BS.t) -> st.BS.scan_rid <- Rid.to_string rid)
        stats);
  (* scan complete: later file extensions go to the side-file (§3.2.2) *)
  List.iter (fun sf -> sf.Catalog.current_rid <- Rid.infinity) states;
  parallel_jobs ctx jobs (fun job ->
      let runs = merge_sorted ctx cfg job in
      ignore (do_merge ctx job runs);
      set_progress ctx job.spec.index_id ~algorithm:Sf ~table
        ~stage:
          (Bulking { sorted = sorted_run_name job.spec.index_id; highest = None })
        ~last_scan_page:(-1);
      sf_bulk_phase ctx cfg job ~from_key:None;
      sf_drain_phase ctx cfg job ~from_pos:0;
      finish_build ctx job)

let build_indexes ctx cfg ~table specs =
  match specs with
  | [] -> invalid_arg "Ib.build_indexes: no specs"
  | _ -> (
    match cfg.algorithm with
    | Nsf -> build_indexes_nsf ctx cfg ~table specs
    | Sf -> build_indexes_sf ctx cfg ~table specs)

let build_index ctx cfg ~table spec = build_indexes ctx cfg ~table [ spec ]

(* The baseline the paper's introduction rails against: the table is locked
   against all updates for the entire duration of the build ("current DBMSs
   do not allow updates to a table while building an index on it", Â§1).
   Readers (IS/S) still pass. Implemented as an SF build executed under an
   S table lock held from before the descriptor until the index is Ready,
   so the code path measured is identical except for availability. *)
let build_index_offline ctx cfg ~table spec =
  let owner = ib_owner spec.index_id + 250_000 in
  (match LockM.lock ctx.Ctx.locks ~txn:owner (LockM.Table table) S with
  | LockM.Granted -> ()
  | LockM.Deadlock -> assert false (* this owner holds nothing else *));
  Fun.protect
    ~finally:(fun () -> LockM.unlock_all ctx.Ctx.locks ~txn:owner)
    (fun () ->
      build_indexes ctx { cfg with algorithm = Sf } ~table [ spec ])


(* --- Â§6.2: secondary build over an index-organized table ---

   The records are reached through a unique primary index and the scan
   proceeds in primary-key order; "in place of Current-RID, we would use
   the current-key as the scan position" (Â§6.2). Visibility compares an
   operation's primary key against the scan's current-key (Catalog's
   key_scan mode). Only SF applies (that is the section's context).
   Restart after a crash in the scan stage falls back to the RID-order
   rescan (same keys, different order â the sort absorbs it); later
   stages resume exactly as in the heap-scan build. *)

let build_secondary_via_primary ctx cfg ~table ~primary spec =
  let tbl = Catalog.table ctx.Ctx.catalog table in
  let pinfo = Catalog.index ctx.Ctx.catalog primary in
  if pinfo.Catalog.table_id <> table then
    invalid_arg "Ib.build_secondary_via_primary: primary on another table";
  if not pinfo.Catalog.uniq then
    invalid_arg "Ib.build_secondary_via_primary: primary index not unique";
  (match pinfo.Catalog.phase with
  | Catalog.Ready -> ()
  | _ -> invalid_arg "Ib.build_secondary_via_primary: primary still building");
  if spec.unique then
    invalid_arg
      "Ib.build_secondary_via_primary: unique secondary over an IOT is not \
       supported (entries are <key value, primary key>)";
  (* the paper's storage model: secondary entries are
     <key value, primary key value> (Â§6.2) â realized by appending the
     primary key columns to the secondary key, which gives every record
     version an identity whose visibility matches its side-file routing *)
  let key_cols = spec.key_cols @ pinfo.Catalog.key_cols in
  let bst = status ctx ~index_id:spec.index_id ~algorithm:"via-primary" in
  with_account ctx bst @@ fun () ->
  let info =
    Catalog.add_index ctx.Ctx.catalog ctx.Ctx.pool ~table_id:table
      ~index_id:spec.index_id ~key_cols ~unique:false
      ~state:Catalog.Disabled
      ~phase:
        (Catalog.Sf_building
           {
             sidefile = SF.create ~sidefile_id:spec.index_id;
             current_rid = Rid.minus_infinity;
             current_key = None;
             key_scan = Some pinfo.Catalog.key_cols;
             draining = false;
           })
  in
  ignore
    (LM.append ctx.Ctx.log ~txn:None ~prev_lsn:Lsn.nil
       (LR.Build_start { index = spec.index_id; table }));
  set_state ctx spec.index_id Catalog.Write_only;
  LM.flush_all ctx.Ctx.log;
  set_progress ctx spec.index_id ~algorithm:Sf ~table
    ~stage:(Scanning { current_rid = Rid.minus_infinity })
    ~last_scan_page:(-1);
  let bst = status ctx ~index_id:spec.index_id ~algorithm:"via-primary" in
  note_phase ctx bst BS.Scan;
  let sf = sf_state info in
  (* a dedicated checkpoint id: scan positions here are leaf ordinals, not
     page ids, so a restart must not resume the heap-scan sorter from them *)
  let ksort_id = Printf.sprintf "ib/%d/ksort" spec.index_id in
  let sorter =
    Sort.start ctx.Ctx.kv ctx.Ctx.runs ~ckpt_id:ksort_id
      ~memory_keys:cfg.memory_keys
  in
  let job = { spec; info; sorter } in
  (* Scan rounds: copy the primary leaf chain (advancing current-key to
     each leaf's upper copied bound under its latch), then fetch records
     and feed the sort. Inserts with keys above the scan position arrive
     in the primary index while we work, so chase until a round finds
     nothing new; the final empty check and the flip to "scan complete"
     happen without yielding. *)
  let batch_no = ref (-1) in
  let scan_round () =
    let floor = sf.Catalog.current_key in
    let above pk =
      match floor with None -> true | Some ck -> String.compare pk ck > 0
    in
    let copied = ref [] in
    Btree.iter_leaves pinfo.Catalog.tree (fun _pid leaf ->
        let batch = ref [] in
        for i = leaf.Oib_btree.Bt_node.n - 1 downto 0 do
          let k, pseudo = leaf.Oib_btree.Bt_node.entries.(i) in
          if (not pseudo) && above k.Ikey.kv then
            batch := (k.Ikey.kv, k.Ikey.rid) :: !batch
        done;
        (match !batch with
        | [] -> ()
        | entries ->
          let last_pk = fst (List.nth entries (List.length entries - 1)) in
          sf.Catalog.current_key <- Some last_pk;
          bst.BS.scan_rid <- "key:" ^ last_pk);
        if !batch <> [] then copied := !batch :: !copied);
    let batches = List.rev !copied in
    List.iter
      (fun batch ->
        incr batch_no;
        let keys = ref [] in
        List.iter
          (fun (pk, rid) ->
            let page = Heap_file.latch_rid tbl.Catalog.heap rid S in
            (match
               Heap_page.get (Heap_page.of_payload page.Page.payload)
                 rid.Rid.slot
             with
            | Some record
              when String.equal (Record.key_value record pinfo.Catalog.key_cols) pk
              ->
              keys := Catalog.key_of info record ~rid :: !keys
            | Some _ ->
              (* the RID was reused by a record with another primary key:
                 this copy is stale; the new record belongs to a later scan
                 round or to the side-file *)
              ()
            | None -> () (* deleted meanwhile; the side-file covers it *));
            Latch.release page.Page.latch S)
          batch;
        ctx.Ctx.metrics.sequential_reads <-
          ctx.Ctx.metrics.sequential_reads + 1;
        Sort.feed_page job.sorter ~scan_pos:!batch_no (List.rev !keys);
        bst.BS.keys_processed <- bst.BS.keys_processed + List.length !keys;
        Sched.yield ctx.Ctx.sched)
      batches;
    batches <> []
  in
  let rec chase () = if scan_round () then chase () in
  chase ();
  (* scan complete *)
  sf.Catalog.current_rid <- Rid.infinity;
  note_phase ctx bst BS.Merge;
  let runs = Sort.finish job.sorter in
  set_progress ctx spec.index_id ~algorithm:Sf ~table ~stage:(Merging { runs })
    ~last_scan_page:(-1);
  ignore (do_merge ctx job runs);
  set_progress ctx spec.index_id ~algorithm:Sf ~table
    ~stage:(Bulking { sorted = sorted_run_name spec.index_id; highest = None })
    ~last_scan_page:(-1);
  sf_bulk_phase ctx cfg job ~from_key:None;
  sf_drain_phase ctx cfg job ~from_pos:0;
  (* drop this variant\'s private sort runs *)
  List.iter
    (fun n ->
      if
        String.length n >= String.length ksort_id
        && String.sub n 0 (String.length ksort_id) = ksort_id
      then Runs.delete_run ctx.Ctx.runs n)
    (Runs.run_names ctx.Ctx.runs);
  Durable_kv.remove ctx.Ctx.kv ksort_id;
  finish_build ctx job

(* --- restart: phase restoration and resumption --- *)

let interrupted_builds ctx =
  List.filter_map
    (fun key ->
      match Durable_kv.get ctx.Ctx.kv key with
      | Some (Ib_progress _) ->
        (* key shape: ib/<id>/progress *)
        (try Scanf.sscanf key "ib/%d/progress" (fun id -> Some id)
         with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
      | _ -> None)
    (Durable_kv.keys ctx.Ctx.kv)

let restore_phase_after_restart ctx ~index_id =
  match get_progress ctx index_id with
  | None -> ()
  | Some p ->
    (* A build still in progress must not be readable: the log's last
       state can be Readable only when the crash hit after finish_build's
       transition but before Build_done became durable (the build will be
       redone from its checkpoints). Downgrade — logged as a genuine new
       transition so the next recovery lands write-only directly. *)
    if Catalog.state ctx.Ctx.catalog index_id = Catalog.Readable then begin
      ignore
        (LM.append ctx.Ctx.log ~txn:None ~prev_lsn:Lsn.nil
           (LR.Index_state
              {
                index = index_id;
                state = Catalog.state_to_int Catalog.Write_only;
              }));
      LM.flush_all ctx.Ctx.log;
      Catalog.restore_state ctx.Ctx.catalog index_id Catalog.Write_only;
      let tr = Sched.trace ctx.Ctx.sched in
      if Oib_obs.Trace.tracing tr then
        Oib_obs.Trace.emit tr
          (Oib_obs.Event.Index_state
             { index = index_id; state = Catalog.state_name Catalog.Write_only })
    end;
    (* Rehydrate the published build status from the durable progress
       record, so [Build_status] and the catalog agree from the first
       step after reopen (not only once the resuming builder gets
       scheduled). *)
    let st =
      status ctx ~index_id ~algorithm:(algorithm_name p.p_algorithm)
    in
    note_phase ctx st
      (match p.p_stage with
      | Scanning _ -> BS.Scan
      | Merging _ -> BS.Merge
      | Inserting _ -> BS.Insert
      | Bulking _ -> BS.Bulk
      | Draining _ -> BS.Drain);
    (match p.p_algorithm with
    | Nsf ->
      Catalog.set_phase ctx.Ctx.catalog index_id
        (Catalog.Nsf_building { avail_below = None })
    | Sf ->
      let sidefile = SF.rebuild_from_log ctx.Ctx.log ~sidefile_id:index_id in
      let current_rid =
        match p.p_stage with
        | Scanning _ -> (
          (* the authoritative scan position is the sort checkpoint's: IB
             will re-extract everything after it, so the index regresses to
             invisible for those RIDs until the rescan passes them again *)
          match
            Sort.checkpointed_scan_pos ctx.Ctx.kv ~ckpt_id:(sort_key index_id)
          with
          | Some pos when pos >= 0 -> Rid.make ~page:pos ~slot:max_int
          | _ -> Rid.minus_infinity)
        | Merging _ | Inserting _ | Bulking _ | Draining _ -> Rid.infinity
      in
      Catalog.set_phase ctx.Ctx.catalog index_id
        (Catalog.Sf_building
           { sidefile; current_rid; current_key = None; key_scan = None;
             draining = false }))

let resume_one ctx cfg index_id =
  match get_progress ctx index_id with
  | None -> ()
  | Some p when
      (Catalog.index ctx.Ctx.catalog index_id).Catalog.phase = Catalog.Ready
    ->
    (* The crash hit finish_build after Build_done became durable but
       before cleanup: the build is complete (recovery redid the tree and
       left the phase Ready), only the leftovers need collecting. Only
       the legal Write_only -> Readable edge is taken. *)
    if Catalog.state ctx.Ctx.catalog index_id = Catalog.Write_only then
      set_state ctx index_id Catalog.Readable;
    clear_progress ctx index_id;
    Range_set.clear ctx.Ctx.kv ~index_id;
    Runs.delete_run ctx.Ctx.runs (sorted_run_name index_id);
    note_phase ctx
      (status ctx ~index_id ~algorithm:(algorithm_name p.p_algorithm))
      BS.Ready
  | Some p ->
    let info = Catalog.index ctx.Ctx.catalog index_id in
    let spec =
      { index_id; key_cols = info.key_cols; unique = info.uniq }
    in
    let tbl = Catalog.table ctx.Ctx.catalog p.p_table in
    let cfg = { cfg with algorithm = p.p_algorithm } in
    let st =
      status ctx ~index_id ~algorithm:(algorithm_name p.p_algorithm)
    in
    with_account ctx st @@ fun () ->
    (match (p.p_algorithm, p.p_stage) with
    | Nsf, Scanning _ | Sf, Scanning _ ->
      note_phase ctx st BS.Scan;
      let sorter = start_sorter ctx cfg index_id in
      let job = { spec; info; sorter } in
      (match p.p_algorithm with
      | Sf ->
        let sf = sf_state info in
        (* visibility resumes from the sort checkpoint's position *)
        sf.Catalog.current_rid <-
          (if Sort.scan_pos sorter < 0 then Rid.minus_infinity
           else Rid.make ~page:(Sort.scan_pos sorter) ~slot:max_int)
      | Nsf -> ());
      scan_and_sort ctx cfg tbl ~last_scan_page:p.p_last_scan_page
        ~dynamic:(p.p_algorithm = Sf) [ job ]
        ~set_current_rid:(fun rid ->
          st.BS.scan_rid <- Rid.to_string rid;
          match info.phase with
          | Catalog.Sf_building sf -> sf.Catalog.current_rid <- rid
          | _ -> ());
      (match info.phase with
      | Catalog.Sf_building sf -> sf.Catalog.current_rid <- Rid.infinity
      | _ -> ());
      let runs = merge_sorted ctx cfg job in
      ignore (do_merge ctx job runs);
      (match p.p_algorithm with
      | Nsf ->
        nsf_insert_phase ctx cfg job ~from_key:None;
        finish_build ctx job
      | Sf ->
        sf_bulk_phase ctx cfg job ~from_key:None;
        sf_drain_phase ctx cfg job ~from_pos:0;
        finish_build ctx job)
    | _, Merging { runs } ->
      note_phase ctx st BS.Merge;
      let sorter = start_sorter ctx cfg index_id in
      let job = { spec; info; sorter } in
      ignore (do_merge ctx job runs);
      (match p.p_algorithm with
      | Nsf ->
        nsf_insert_phase ctx cfg job ~from_key:None;
        finish_build ctx job
      | Sf ->
        sf_bulk_phase ctx cfg job ~from_key:None;
        sf_drain_phase ctx cfg job ~from_pos:0;
        finish_build ctx job)
    | Nsf, Inserting { highest; _ } ->
      let sorter = start_sorter ctx cfg index_id in
      let job = { spec; info; sorter } in
      nsf_insert_phase ctx cfg job ~from_key:highest;
      finish_build ctx job
    | Sf, Bulking { highest; _ } ->
      let sorter = start_sorter ctx cfg index_id in
      let job = { spec; info; sorter } in
      sf_bulk_phase ctx cfg job ~from_key:highest;
      sf_drain_phase ctx cfg job ~from_pos:0;
      finish_build ctx job
    | Sf, Draining { pos } ->
      let sorter = start_sorter ctx cfg index_id in
      let job = { spec; info; sorter } in
      sf_drain_phase ctx cfg job ~from_pos:pos;
      finish_build ctx job
    | Nsf, (Bulking _ | Draining _) | Sf, Inserting _ -> assert false)

let resume_builds ctx cfg =
  List.iter (fun id -> resume_one ctx cfg id) (interrupted_builds ctx)

let cancel_build ctx ~index_id = cancel_build_internal ctx ~index_id

(* --- pseudo-deleted key garbage collection (§2.2.4) --- *)

(* Background garbage collection (§2.2.4: "garbage collection of the
   pseudo-deleted keys in the index can be scheduled as a background
   activity"). The daemon sweeps periodically until stopped. *)
let rec spawn_gc_daemon ctx ~index_id ~every =
  let stop = ref false in
  let collected = ref 0 in
  ignore
    (Sched.spawn ctx.Ctx.sched
       ~name:(Printf.sprintf "gc-%d" index_id)
       (fun () ->
         while not !stop do
           for _ = 1 to every do
             if not !stop then Sched.yield ctx.Ctx.sched
           done;
           if not !stop then
             match Catalog.index ctx.Ctx.catalog index_id with
             | info when info.Catalog.phase = Catalog.Ready ->
               collected := !collected + gc_once ctx ~index_id
             | _ | (exception Invalid_argument _) -> ()
         done));
  ((fun () -> stop := true), collected)

and gc_once ctx ~index_id =
  let info = Catalog.index ctx.Ctx.catalog index_id in
  let owner = ib_owner index_id + 500_000 in
  (* Commit_LSN shortcut at system granularity: with no transaction active,
     every pseudo-delete is committed and no lock calls are needed *)
  let quiescent = Oib_txn.Txn_manager.active_count ctx.Ctx.txns = 0 in
  let keep (key : Ikey.t) =
    if quiescent then false
    else if
      LockM.try_instant_lock ctx.Ctx.locks ~txn:owner (LockM.Record key.rid) S
    then false (* deleter finished: collect *)
    else true (* probably uncommitted: skip (§2.2.4) *)
  in
  let log_removal key =
    ignore
      (LM.append ctx.Ctx.log ~txn:None ~prev_lsn:Lsn.nil
         (LR.Index_key
            {
              redoable = true;
              op =
                { index = index_id; key; before = LR.Pseudo_deleted;
                  after = LR.Absent };
            }))
  in
  let removed =
    Btree.gc_pseudo_deleted info.tree ~keep:(fun key ->
        let k = keep key in
        if not k then log_removal key;
        k)
  in
  removed

let gc_pseudo_deleted ctx ~index_id = gc_once ctx ~index_id
