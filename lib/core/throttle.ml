(* Admission-controlled IB backoff driven by the engine's health signals.
   See throttle.mli. *)

module Signal = Oib_obs.Signal

type t = {
  max_level : int;
  mutable level : int;
  mutable backoffs : int;
  mutable restores : int;
  mutable watched : string list;
  mutable notify : (t -> string -> unit) option;
  mutable pause : bool;
  mutable trace : Oib_obs.Trace.t;  (* sanitizer probes only *)
}

let create ?(max_level = 3) () =
  {
    max_level;
    level = 0;
    backoffs = 0;
    restores = 0;
    watched = [];
    notify = None;
    pause = false;
    trace = Oib_obs.Trace.null;
  }

let set_trace t trace = t.trace <- trace

(* Shared-state probes for the sanitizer's L12 interference automaton:
   every [t.level] read/write the linter counts has a dynamic twin here,
   so the static and dynamic crossing sets stay comparable. *)
let probe t ~write site =
  if Oib_obs.Trace.probing t.trace then
    Oib_obs.Trace.probe_emit t.trace
      (Oib_obs.Probe.Shared { key = "Throttle.level"; write; site })

let level t =
  probe t ~write:false "throttle.level";
  t.level

let backoffs t = t.backoffs
let restores t = t.restores

let scaled t ~base =
  probe t ~write:false "throttle.scaled";
  max 1 (base lsr t.level)

let extra_yields t =
  probe t ~write:false "throttle.extra_yields";
  t.level

let set_notify t f = t.notify <- f

let fire t reason =
  match t.notify with Some f -> f t reason | None -> ()

let on_change t set s change =
  let name = Signal.name s in
  if List.mem name t.watched then
    match change with
    | Signal.Raised ->
      probe t ~write:false "throttle.on_change";
      if t.level < t.max_level then begin
        t.level <- t.level + 1;
        probe t ~write:true "throttle.on_change";
        t.backoffs <- t.backoffs + 1;
        fire t (name ^ " raised")
      end
    | Signal.Cleared ->
      (* restore only when no watched signal is still raised: a clearing
         WAL backlog must not release a backoff the p99 signal demands *)
      let any_active =
        List.exists
          (fun n ->
            match Signal.find set n with
            | Some s' -> Signal.active s'
            | None -> false)
          t.watched
      in
      probe t ~write:false "throttle.on_change";
      if (not any_active) && t.level > 0 then begin
        t.level <- 0;
        probe t ~write:true "throttle.on_change";
        t.restores <- t.restores + 1;
        fire t (name ^ " cleared")
      end

let attach t set ~names =
  t.watched <- names;
  Signal.subscribe set (fun s change -> on_change t set s change)

let request_pause t = t.pause <- true
let clear_pause t = t.pause <- false
let pause_requested t = t.pause
