(** Periodic metrics/build-progress sampler.

    [install ctx ~every] hooks the scheduler's tick so that every [every]
    virtual steps, one [Sample] event per {!Oib_sim.Metrics} counter
    (keys ["metrics.<name>"]) and three per live build
    (["build.<id>.keys_processed"], ["build.<id>.backlog"],
    ["build.<id>.phase"] — the phase as its {!Build_status.rank}) are
    emitted into the engine's trace. The analyzer and bench reassemble
    them into time series. No-op while nothing is tracing. *)

val install : Ctx.t -> every:int -> unit
(** Claims the scheduler's single tick hook. [every] must be positive. *)

val uninstall : Ctx.t -> unit

val sample : Ctx.t -> unit
(** Emit one snapshot immediately (what the tick hook calls). *)
