(** Periodic metrics/build-progress/signal sampler — one tick of the
    metrics plane.

    [install ctx ~every] hooks the scheduler's tick so that every
    [every] virtual steps one full sample runs: EWMA rates fold in the
    latest counter deltas, the health signals are evaluated (firing any
    subscribers), one deduplicated batch of [Sample] events is emitted
    into the trace, and every registered sliding window rotates one
    slot. Signal evaluation and window rotation happen even when
    nothing is tracing, so DST runs reproduce signal flips with or
    without a sink attached.

    The sample keys (see {!Oib_obs.Event} for the full namespace
    contract) are: [metrics.<counter>] and the other registry series
    ([pool.*], [wal.*], [window.<name>.p50/.p95/.p99/.count],
    [rate.<name>] scaled to events per 1000 steps), three progress and
    four cost keys per live build ([build.<id>.keys_processed],
    [.backlog], [.phase], [.cost.pages], [.cost.log_bytes],
    [.cost.wait_steps], [.cost.compares]) and one [signal.<name>]
    (0/1) per registered signal. *)

val install : Ctx.t -> every:int -> unit
(** Claims the scheduler's single tick hook. [every] must be positive. *)

val uninstall : Ctx.t -> unit

val sample : ?rate_steps:int -> Ctx.t -> unit
(** Run one full tick immediately (what the tick hook calls, with
    [rate_steps = every]). Without [rate_steps] the EWMA rates are left
    untouched — a manual call has no well-defined step delta. Note a
    call advances the window clock (rotates every window). *)

val install_profiler :
  Ctx.t -> ?every:int -> unit -> Oib_obs.Profiler.t * (unit -> unit)
(** Attach a {!Oib_obs.Profiler} to the engine: a scheduler step hook
    samples every live fiber every [every] (default 10) virtual steps
    (plus once at the scheduler's first step, so runs shorter than one
    period still profile),
    classifying each into on-cpu / blocked-on-{latch,lock,io,logflush} /
    sched and emitting one [Prof_sample] event per fiber per round.
    Returns the profiler (for the online tree) and an uninstall thunk
    (removes the hook and the profiler's sink). Uses [add_step_hook],
    not the tick slot, so it coexists with {!install}. Hooks never
    advance virtual time, so installing the profiler does not perturb
    the schedule. [every] must be positive. *)
