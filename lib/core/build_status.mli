(** Live progress of one online index build.

    The index builder publishes its current phase, scan position
    (Current-RID), keys processed, side-file backlog and checkpoint count
    here; {!Engine.build_progress} exposes the set of statuses so a demo,
    bench or monitoring loop can watch a build advance without touching
    builder internals. *)

type phase = Init | Quiesce | Scan | Merge | Insert | Bulk | Drain | Ready

val rank : phase -> int
(** Monotonic progress order; a build's phase rank never decreases within
    one engine incarnation. [Insert] (NSF) and [Bulk] (SF) share a rank —
    they are the two algorithms' alternatives for the same stage. *)

val phase_name : phase -> string

type t = {
  index_id : int;
  algorithm : string;  (** ["nsf"], ["sf"] or ["via-primary"] *)
  mutable phase : phase;
  mutable scan_rid : string;  (** Current-RID of the scan; [""] before it *)
  mutable keys_processed : int;
  mutable backlog : int;  (** side-file entries appended, not yet drained *)
  mutable checkpoints : int;
  mutable history : (phase * int) list;  (** newest first; use {!history} *)
  mutable phase_span : int;
      (** open trace span of the current phase; [0] when untraced *)
  resources : Oib_obs.Resource.t;
      (** running resource cost charged to this build (page IO, WAL
          bytes, wait steps, sort compares — see {!Oib_obs.Resource}) *)
  mutable cost_marks : (phase * Oib_obs.Resource.t) list;
      (** resource totals at each phase entry, newest first; use
          {!phase_costs} *)
}

val create : index_id:int -> algorithm:string -> t

val set_phase : t -> step:int -> phase -> unit
(** Record a transition (no-op if [phase] is already current). [step] is
    the scheduler's step clock, giving the virtual time of the change. *)

val history : t -> (phase * int) list
(** Transitions oldest-first: [(Init, 0)] then each [set_phase]. *)

val phase_costs : t -> (phase * Oib_obs.Resource.t) list
(** Resource cost of each phase the build has entered, oldest first:
    the delta between consecutive phase-entry marks, with the current
    phase running to the live total. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> string
