(** Tables, index descriptors, visibility and build state.

    An index descriptor carries the paper's control state: for NSF the
    index is visible to updaters from descriptor creation on; for SF
    visibility is per-operation, governed by the builder's Current-RID scan
    position ([Index_Build] flag + [Target-RID < Current-RID], §3.1).
    Indexes of a table are ordered by creation; the count of indexes
    visible to an operation (logged in its heap record) therefore
    identifies a prefix of this list. Descriptor metadata is forced to the
    durable store so the catalog survives crashes; dynamic build state is
    re-derived at restart from the log and the builders' checkpoints. *)

open Oib_util

type build_phase =
  | Ready  (** fully built; used directly by transactions *)
  | Nsf_building of nsf_state
      (** NSF: transactions insert/delete keys directly in the tree *)
  | Sf_building of sf_state
      (** SF: transactions append to the side-file when visible *)

and nsf_state = {
  mutable avail_below : string option;
      (** gradual availability (paper footnote 3): key values strictly
          below this bound are already complete in the index — every base
          key below it has been inserted by IB and transactions maintain
          the index from descriptor creation on — so equality lookups in
          that range may be served before the build finishes *)
}

and sf_state = {
  sidefile : Oib_sidefile.Side_file.t;
  mutable current_rid : Rid.t;
      (** IB's scan position; [Rid.minus_infinity] before the scan starts,
          [Rid.infinity] once the scan is complete (in either scan mode) *)
  mutable current_key : string option;
      (** scan position for the primary-key scan mode (paper §6.2): the
          highest primary key whose record has been extracted *)
  key_scan : int list option;
      (** [None]: the scan advances in RID order over the heap (the paper's
          main storage model). [Some cols]: the scan walks a unique primary
          index on [cols] in key order, and visibility compares the
          operation's primary key against [current_key] (§6.2) *)
  mutable draining : bool;
      (** IB is processing the side-file (transactions may still append) *)
}

type index_state =
  | Disabled
      (** no maintenance, no reads: not yet admitted, or being torn down *)
  | Write_only
      (** receives NSF/SF maintenance (per {!visible_to}) but is invisible
          to reads — the state of every in-progress build *)
  | Readable  (** fully built and serving reads *)

exception
  Illegal_transition of {
    index : int;
    from_ : index_state;
    to_ : index_state;
  }

val legal_transition : from_:index_state -> to_:index_state -> bool
(** The lifecycle DAG: [Disabled -> Write_only -> Readable], plus
    [Write_only -> Disabled] (cancel) and [Readable -> Disabled] (take
    offline). Everything else — including self-transitions — is illegal. *)

exception Invalid_index_state of int
(** Raised by {!state_of_int} for an integer outside [0..2] — a corrupted
    [Index_state] WAL record or catalog entry. Typed (rather than
    [Invalid_argument]) so recovery can distinguish log corruption from a
    programming error and surface the offending value. *)

val state_name : index_state -> string
val state_to_int : index_state -> int

val state_of_int : int -> index_state
(** Inverse of {!state_to_int}. Raises {!Invalid_index_state} on any
    integer that does not encode a lifecycle state. *)

type index_info = {
  index_id : int;
  table_id : int;
  key_cols : int list;
  uniq : bool;
  tree : Oib_btree.Btree.t;
  mutable phase : build_phase;
  mutable state : index_state;
}

type table_info = {
  table_id : int;
  heap : Oib_storage.Heap_file.t;
  mutable indexes : index_info list;  (** creation order *)
}

type t

val create : Oib_storage.Durable_kv.t -> page_capacity:int -> t

val set_trace : t -> Oib_obs.Trace.t -> unit
(** Point the catalog's sanitizer probes ([Shared] events on class
    [Catalog.state], keyed per index instance) at the current
    incarnation's trace. Defaults to {!Oib_obs.Trace.null}. *)

val kv : t -> Oib_storage.Durable_kv.t
val page_capacity : t -> int

val create_table :
  ?log:bool -> t -> Oib_storage.Buffer_pool.t -> table_id:int -> table_info
(** [log] (default true) appends the DDL record. Recovery replays pass
    [~log:false]: re-logging a replayed [Create_table] / [Create_index]
    would strand an extra create after its original drop in the log, and
    the next recovery would resurrect the dropped object. *)

val table : t -> int -> table_info
val index : t -> int -> index_info
val tables : t -> table_info list
val indexes_of : t -> int -> index_info list

val add_index :
  ?log:bool -> ?state:index_state -> t -> Oib_storage.Buffer_pool.t ->
  table_id:int -> index_id:int -> key_cols:int list -> unique:bool ->
  phase:build_phase -> index_info
(** Create the descriptor + empty tree and force the catalog entry. The
    caller is responsible for the quiesce protocol (NSF) or the
    [Index_Build] flag discipline (SF). [log] as in {!create_table}.
    [state] defaults from the phase ([Ready] -> [Readable], building ->
    [Write_only]); builders pass [~state:Disabled] and log the admission
    transition themselves. *)

val drop_index : t -> int -> unit
(** Remove descriptor and catalog entry (cancel of an index build, §2.3.2;
    the caller must have quiesced updaters). *)

val key_of : index_info -> Record.t -> rid:Rid.t -> Ikey.t
(** Build the index entry for a record. *)

val visible_to : index_info -> target:Rid.t -> record:Record.t -> bool
(** Figure 1's per-index visibility rule. *)

val visible_count_for :
  t -> table_info -> target:Rid.t -> record:Record.t -> int
(** Number of indexes visible to an operation on [target] (Ready + NSF +
    SF behind the scan position), i.e. the count Figures 1-2 log. The
    record is needed for key-order scans (§6.2), whose visibility compares
    its primary key. *)

val sidefiled_for : t -> table_info -> target:Rid.t -> record:Record.t -> int list
(** Index ids whose maintenance for this operation is routed to a
    side-file. *)

val reopen :
  t -> Oib_storage.Buffer_pool.t -> unit
(** After a crash: re-create table and index objects from the durable
    catalog, reopening heap files and index checkpoint images. Build
    phases are restored as [Ready] and lifecycle states from the durable
    entries; the engine's restart logic downgrades the in-progress ones
    using the log analysis and replays the last logged state. *)

val set_phase : t -> int -> build_phase -> unit

val state : t -> int -> index_state

val set_state : t -> Oib_storage.Buffer_pool.t -> int -> index_state -> unit
(** Transition an index's lifecycle state: the WAL record is appended and
    flushed {e first}, then the forced catalog entry is rewritten, then
    memory — so the logged transition always wins after a crash. Raises
    {!Illegal_transition} for moves outside {!legal_transition}. *)

val restore_state : t -> int -> index_state -> unit
(** Recovery-only: apply a replayed [Index_state] without legality checks
    or logging (no-op for unknown indexes — e.g. dropped later in the
    log). *)
