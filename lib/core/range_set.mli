(** Durable coverage of already-scanned data pages for one index build.

    The paper's §5 checkpoint makes the *sort* restartable; the range set
    generalizes that to the whole scan (after the FDB Record Layer's
    online-indexer RangeSet): the builder records, at every batched scan
    chunk boundary, the inclusive range of data-page ids whose keys are
    durably captured in checkpointed sort runs. After a crash, the resumed
    scan visits only uncovered pages — committed ranges are never rescanned.

    Ranges are kept disjoint, sorted and coalesced. The durable form is an
    immutable [(lo, hi)] list stored in the engine's forced metadata kv
    under {!key}; it is snapshot-consistent with the sort checkpoint that
    precedes each {!commit} (both live in the same kv), so a backup/restore
    can never see coverage ahead of the restored runs. *)

type t

val create : unit -> t

val add : t -> lo:int -> hi:int -> unit
(** Cover the inclusive range [lo..hi] (coalescing with neighbours).
    Raises [Invalid_argument] if [lo > hi]. *)

val mem : t -> int -> bool

val is_empty : t -> bool

val max_covered : t -> int
(** Highest covered point, or [-1] when empty. *)

val covered_count : t -> int
(** Total number of covered points across all ranges. *)

val ranges : t -> (int * int) list
(** The disjoint ranges, ascending. *)

val missing : t -> lo:int -> hi:int -> (int * int) list
(** The uncovered sub-ranges of [lo..hi], ascending; empty when the whole
    interval is covered (or [lo > hi]). *)

val to_string : t -> string

(** {1 Durable persistence} *)

val key : index_id:int -> string
(** kv key ["ib/<id>/ranges"], alongside the build's other durable state. *)

val load : Oib_storage.Durable_kv.t -> index_id:int -> t
(** The committed coverage; empty if never committed (or cleared). *)

val commit : Oib_storage.Durable_kv.t -> index_id:int -> t -> unit
(** Force the current coverage to the kv (an immutable snapshot; safe
    against the kv's shallow backup copies). *)

val clear : Oib_storage.Durable_kv.t -> index_id:int -> unit
