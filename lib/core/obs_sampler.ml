(* Periodic time-series sampler: every N virtual steps, snapshot the
   engine's registry (counters, gauges, window quantiles, rates) and
   every live build's progress and cost into the trace as [Sample]
   events, evaluate the health signals, and advance the sliding windows
   one tick. The scheduler's tick hook drives it (no fiber: a sampling
   fiber would keep the scheduler alive forever), so samples are stamped
   as "main" at exact multiples of the period and an offline reader can
   reassemble them into aligned series.

   Signal evaluation and window rotation happen on every tick even when
   nothing is tracing: subscribers (e.g. an admission-control throttle)
   and DST assertions must see the same deterministic flips whether or
   not a sink is attached. *)

module Sched = Oib_sim.Sched
module Trace = Oib_obs.Trace
module Event = Oib_obs.Event
module Metrics = Oib_sim.Metrics
module Registry = Oib_obs.Registry
module Signal = Oib_obs.Signal
module Resource = Oib_obs.Resource
module BS = Build_status

let sample ?rate_steps (ctx : Ctx.t) =
  let m = ctx.Ctx.metrics in
  (* 1. refresh EWMA rates from counter deltas (periodic ticks only) *)
  (match rate_steps with
  | Some steps ->
    List.iter
      (fun (name, total) ->
        Registry.rate_observe
          (Registry.rate ctx.Ctx.registry ("rate." ^ name))
          ~total ~steps)
      [
        ("txn_commits", m.Metrics.txn_commits);
        ("page_reads", m.Metrics.page_reads);
        ("page_writes", m.Metrics.page_writes);
        ("log_bytes", m.Metrics.log_bytes);
      ]
  | None -> ());
  (* 2. evaluate health signals — before emission, so the emitted
     [signal.*] states are this tick's; subscribers fire here *)
  ignore (Signal.eval ctx.Ctx.signals);
  (* 3. emit one deduplicated batch of samples *)
  let tr = ctx.Ctx.trace in
  if Trace.tracing tr then begin
    let seen = Hashtbl.create 64 in
    let emit key value =
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        Trace.emit tr (Event.Sample { key; value })
      end
    in
    List.iter (fun (key, v) -> emit key v) (Registry.sample_values ctx.Ctx.registry);
    Hashtbl.fold (fun _ st acc -> st :: acc) ctx.Ctx.builds []
    |> List.sort (fun (a : BS.t) b -> compare a.BS.index_id b.BS.index_id)
    |> List.iter (fun (st : BS.t) ->
           let emit_b suffix value =
             emit (Printf.sprintf "build.%d.%s" st.BS.index_id suffix) value
           in
           emit_b "keys_processed" st.BS.keys_processed;
           emit_b "backlog" st.BS.backlog;
           emit_b "phase" (BS.rank st.BS.phase);
           let r = st.BS.resources in
           emit_b "cost.pages"
             (r.Resource.pages_read + r.Resource.pages_written);
           emit_b "cost.log_bytes" r.Resource.log_bytes;
           emit_b "cost.wait_steps"
             (r.Resource.latch_wait_steps + r.Resource.lock_wait_steps);
           emit_b "cost.compares" r.Resource.sort_compares);
    List.iter
      (fun s ->
        emit
          ("signal." ^ Signal.name s)
          (if Signal.active s then 1 else 0))
      (Signal.signals ctx.Ctx.signals)
  end;
  (* 4. advance the sliding windows: this tick's observations are now
     the newest slot; the oldest ages out *)
  Registry.rotate_windows ctx.Ctx.registry

let install (ctx : Ctx.t) ~every =
  Sched.set_tick ctx.Ctx.sched ~every (fun _ -> sample ~rate_steps:every ctx)

let uninstall (ctx : Ctx.t) = Sched.clear_tick ctx.Ctx.sched

(* The profiler glue: [Profiler] lives below the scheduler in the
   dependency order, so the translation from [Sched.fiber_state] to its
   run-state mirror and the step-hook cadence both live here. The hook
   (not the single tick slot — that belongs to the metrics sampler
   above) samples every live fiber every [every] steps. *)
module Profiler = Oib_obs.Profiler

let install_profiler (ctx : Ctx.t) ?(every = 10) () =
  if every <= 0 then
    invalid_arg "Obs_sampler.install_profiler: every must be positive";
  let prof = Profiler.create ctx.Ctx.trace in
  let sched = ctx.Ctx.sched in
  let hook =
    Sched.add_step_hook sched (fun step ->
        (* also fire at the incarnation's very first step, so even a
           scheduler run shorter than one period yields a profile *)
        if step = 1 || step mod every = 0 then
          Profiler.sample prof
            ~fibers:
              (List.map
                 (fun (id, name, st) ->
                   ( id,
                     name,
                     match (st : Sched.fiber_state) with
                     | Sched.Running -> Profiler.Running
                     | Sched.Runnable -> Profiler.Runnable
                     | Sched.Blocked -> Profiler.Blocked ))
                 (Sched.fiber_states sched)))
  in
  let uninstall () =
    Sched.remove_step_hook sched hook;
    Profiler.detach prof
  in
  (prof, uninstall)
