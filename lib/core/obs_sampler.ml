(* Periodic time-series sampler: every N virtual steps, snapshot the
   engine's counters and every live build's progress into the trace as
   [Sample] events. The scheduler's tick hook drives it (no fiber: a
   sampling fiber would keep the scheduler alive forever), so samples are
   stamped as "main" at exact multiples of the period and an offline
   reader can reassemble them into aligned series. *)

module Sched = Oib_sim.Sched
module Trace = Oib_obs.Trace
module Event = Oib_obs.Event
module Metrics = Oib_sim.Metrics
module BS = Build_status

let sample (ctx : Ctx.t) =
  let tr = ctx.Ctx.trace in
  if Trace.tracing tr then begin
    List.iter
      (fun (name, v) ->
        Trace.emit tr (Event.Sample { key = "metrics." ^ name; value = v }))
      (Metrics.to_assoc ctx.Ctx.metrics);
    Hashtbl.fold (fun _ st acc -> st :: acc) ctx.Ctx.builds []
    |> List.sort (fun (a : BS.t) b -> compare a.BS.index_id b.BS.index_id)
    |> List.iter (fun (st : BS.t) ->
           let emit suffix value =
             Trace.emit tr
               (Event.Sample
                  {
                    key =
                      Printf.sprintf "build.%d.%s" st.BS.index_id suffix;
                    value;
                  })
           in
           emit "keys_processed" st.BS.keys_processed;
           emit "backlog" st.BS.backlog;
           emit "phase" (BS.rank st.BS.phase))
  end

let install (ctx : Ctx.t) ~every =
  Sched.set_tick ctx.Ctx.sched ~every (fun _ -> sample ctx)

let uninstall (ctx : Ctx.t) = Sched.clear_tick ctx.Ctx.sched
