open Oib_util
open Oib_storage

type build_phase =
  | Ready
  | Nsf_building of nsf_state
  | Sf_building of sf_state

and nsf_state = { mutable avail_below : string option }

and sf_state = {
  sidefile : Oib_sidefile.Side_file.t;
  mutable current_rid : Rid.t;
  mutable current_key : string option;
  key_scan : int list option;
  mutable draining : bool;
}

(* Lifecycle state machine (after the FDB Record Layer online indexer):
   Disabled -> Write_only at build admission, Write_only -> Readable at the
   catch-up flip, and either may be disabled again (cancel / take offline).
   Write_only indexes receive NSF/SF maintenance but never serve reads;
   transitions are WAL-logged before the catalog's durable entry is
   rewritten, so recovery lands every index in its last logged state. *)
type index_state = Disabled | Write_only | Readable

exception
  Illegal_transition of {
    index : int;
    from_ : index_state;
    to_ : index_state;
  }

exception Invalid_index_state of int

let state_name = function
  | Disabled -> "disabled"
  | Write_only -> "write-only"
  | Readable -> "readable"

let state_to_int = function Disabled -> 0 | Write_only -> 1 | Readable -> 2

let state_of_int = function
  | 0 -> Disabled
  | 1 -> Write_only
  | 2 -> Readable
  | n -> raise (Invalid_index_state n)

let legal_transition ~from_ ~to_ =
  match (from_, to_) with
  | Disabled, Write_only -> true
  | Write_only, Readable -> true
  | Write_only, Disabled -> true
  | Readable, Disabled -> true
  | (Disabled | Write_only | Readable), _ -> false

type index_info = {
  index_id : int;
  table_id : int;
  key_cols : int list;
  uniq : bool;
  tree : Oib_btree.Btree.t;
  mutable phase : build_phase;
  mutable state : index_state;
}

type table_info = {
  table_id : int;
  heap : Heap_file.t;
  mutable indexes : index_info list;
}

type t = {
  kv : Durable_kv.t;
  page_capacity : int;
  tables : (int, table_info) Hashtbl.t;
  indexes : (int, index_info) Hashtbl.t;
  mutable trace : Oib_obs.Trace.t;  (* sanitizer probes only *)
}

type Durable_kv.value +=
  | Table_cat of { table_id : int }
  | Index_cat of {
      index_id : int;
      table_id : int;
      key_cols : int list;
      uniq : bool;
      seq : int; (* creation position within the table *)
      state : int; (* index_state, via state_to_int *)
    }
  | Table_list of int list
  | Index_list of int list

let table_cat_key id = Printf.sprintf "cat/table/%d" id
let index_cat_key id = Printf.sprintf "cat/index/%d" id

let create kv ~page_capacity =
  {
    kv;
    page_capacity;
    tables = Hashtbl.create 8;
    indexes = Hashtbl.create 16;
    trace = Oib_obs.Trace.null;
  }

let set_trace t trace = t.trace <- trace

(* Shared-state probes for the sanitizer's L12 interference automaton.
   The key carries the index instance — the per-index state words are
   independent, exactly as the linter keys accesses by instance — and
   the sanitizer strips the "(i)" suffix back to the class when diffing
   against the static table. *)
let probe_state t index_id ~write site =
  if Oib_obs.Trace.probing t.trace then
    Oib_obs.Trace.probe_emit t.trace
      (Oib_obs.Probe.Shared
         {
           key = Printf.sprintf "Catalog.state(%d)" index_id;
           write;
           site;
         })

let kv t = t.kv
let page_capacity t = t.page_capacity

let persist_lists t =
  Durable_kv.set t.kv "cat/tables"
    (Table_list (Hashtbl.fold (fun id _ acc -> id :: acc) t.tables []));
  Durable_kv.set t.kv "cat/indexes"
    (Index_list (Hashtbl.fold (fun id _ acc -> id :: acc) t.indexes []))

let log_ddl pool body =
  ignore
    (Oib_wal.Log_manager.append (Buffer_pool.log pool) ~txn:None
       ~prev_lsn:Oib_wal.Lsn.nil body);
  Oib_wal.Log_manager.flush_all (Buffer_pool.log pool)

let create_table ?(log = true) t pool ~table_id =
  if Hashtbl.mem t.tables table_id then
    invalid_arg "Catalog.create_table: exists";
  let heap =
    Heap_file.create pool t.kv ~table_id ~page_capacity:t.page_capacity
  in
  let info = { table_id; heap; indexes = [] } in
  Hashtbl.replace t.tables table_id info;
  Durable_kv.set t.kv (table_cat_key table_id) (Table_cat { table_id });
  persist_lists t;
  if log then log_ddl pool (Oib_wal.Log_record.Create_table { table = table_id });
  info

let table t id =
  match Hashtbl.find_opt t.tables id with
  | Some info -> info
  | None -> invalid_arg (Printf.sprintf "Catalog.table: no table %d" id)

let index t id =
  match Hashtbl.find_opt t.indexes id with
  | Some info -> info
  | None -> invalid_arg (Printf.sprintf "Catalog.index: no index %d" id)

let tables t = Hashtbl.fold (fun _ info acc -> info :: acc) t.tables []

let indexes_of t table_id = (table t table_id).indexes

(* rewrite an index's durable catalog entry (creation and every state
   transition; the kv is forced, so this is the state's durable home) *)
let persist_index t (info : index_info) =
  let tbl = table t info.table_id in
  let seq =
    let rec pos i = function
      | [] -> invalid_arg "Catalog.persist_index: detached info"
      | x :: rest -> if x.index_id = info.index_id then i else pos (i + 1) rest
    in
    pos 0 tbl.indexes
  in
  Durable_kv.set t.kv (index_cat_key info.index_id)
    (Index_cat
       {
         index_id = info.index_id;
         table_id = info.table_id;
         key_cols = info.key_cols;
         uniq = info.uniq;
         seq;
         state = state_to_int info.state;
       })

let add_index ?(log = true) ?state t pool ~table_id ~index_id ~key_cols
    ~unique ~phase =
  let tbl = table t table_id in
  if Hashtbl.mem t.indexes index_id then
    invalid_arg "Catalog.add_index: index exists";
  let tree =
    Oib_btree.Btree.create pool t.kv ~index_id ~page_capacity:t.page_capacity
      ~unique
  in
  (* default lifecycle state derived from the phase: a Ready descriptor
     (recovery replay, tests) is readable, a building one is write-only.
     Builders pass ~state:Disabled and log the Write_only admission
     explicitly. *)
  let state =
    match state with
    | Some s -> s
    | None -> ( match phase with Ready -> Readable | _ -> Write_only)
  in
  let info =
    { index_id; table_id; key_cols; uniq = unique; tree; phase; state }
  in
  tbl.indexes <- tbl.indexes @ [ info ];
  Hashtbl.replace t.indexes index_id info;
  persist_index t info;
  persist_lists t;
  if log then
    log_ddl pool
      (Oib_wal.Log_record.Create_index
         { index = index_id; table = table_id; key_cols; uniq = unique });
  info

let drop_index t index_id =
  let info = index t index_id in
  let tbl = table t info.table_id in
  tbl.indexes <- List.filter (fun i -> i.index_id <> index_id) tbl.indexes;
  Hashtbl.remove t.indexes index_id;
  (* scrub the tree's durable image too: recovery replays Create_index
     before this drop's record, and Btree.create refuses a stale meta *)
  Oib_btree.Btree.destroy info.tree;
  Durable_kv.remove t.kv (index_cat_key index_id);
  persist_lists t

let key_of info record ~rid = Ikey.make (Record.key_value record info.key_cols) rid

(* Visibility of one index for an operation on [target] (Figure 1; for
   key-order scans, §6.2's current-key rule — <= because the extraction of
   the record with that exact key happened under its page latch, so an
   equal-key operation is ordered after the extraction). *)
let sf_visible sf ~target ~record =
  Rid.is_infinity sf.current_rid
  ||
  match sf.key_scan with
  | None -> Rid.compare target sf.current_rid < 0
  | Some cols -> (
    match sf.current_key with
    | None -> false
    | Some ck -> String.compare (Record.key_value record cols) ck <= 0)

let visible_to info ~target ~record =
  (* a Disabled index receives no maintenance at all: it either has not
     been admitted yet or is being torn down *)
  if info.state = Disabled then false
  else
    match info.phase with
    | Ready | Nsf_building _ -> true
    | Sf_building sf -> sf_visible sf ~target ~record

let visible_count_for _t (tbl : table_info) ~target ~record =
  List.length (List.filter (visible_to ~target ~record) tbl.indexes)

let sidefiled_for _t (tbl : table_info) ~target ~record =
  List.filter_map
    (fun info ->
      match info.phase with
      | Sf_building sf
        when info.state <> Disabled && sf_visible sf ~target ~record ->
        Some info.index_id
      | _ -> None)
    tbl.indexes

let set_phase t index_id phase = (index t index_id).phase <- phase

let state t index_id =
  probe_state t index_id ~write:false "catalog.state";
  (index t index_id).state

(* Durability order: WAL record first (appended + flushed), then the
   forced catalog entry, then memory. A crash between the two leaves the
   log ahead of the kv; recovery applies the last logged state per index
   after reopen, so the logged transition wins either way. *)
let set_state t pool index_id to_ =
  let info = index t index_id in
  probe_state t index_id ~write:false "catalog.set_state";
  let from_ = info.state in
  if not (legal_transition ~from_ ~to_) then
    raise (Illegal_transition { index = index_id; from_; to_ });
  log_ddl pool
    (Oib_wal.Log_record.Index_state
       { index = index_id; state = state_to_int to_ });
  (* log_ddl forces the WAL, which may suspend this fiber; another DDL
     fiber could have transitioned the index meanwhile. Re-validate
     against the current state before installing, so a raced transition
     surfaces as Illegal_transition instead of silently clobbering it
     (the logged record is then a no-op replay of a rejected change). *)
  probe_state t index_id ~write:false "catalog.set_state.revalidate";
  let cur = info.state in
  if not (legal_transition ~from_:cur ~to_) then
    raise (Illegal_transition { index = index_id; from_ = cur; to_ });
  info.state <- to_;
  probe_state t index_id ~write:true "catalog.set_state";
  persist_index t info

(* recovery-only: apply a replayed state without legality checks or
   logging (the transition is already in the log) *)
let restore_state t index_id state =
  match Hashtbl.find_opt t.indexes index_id with
  | None -> ()
  | Some info ->
    info.state <- state;
    persist_index t info

let reopen t pool =
  Hashtbl.reset t.tables;
  Hashtbl.reset t.indexes;
  let table_ids =
    match Durable_kv.get t.kv "cat/tables" with
    | Some (Table_list l) -> List.sort compare l
    | _ -> []
  in
  List.iter
    (fun table_id ->
      let heap = Heap_file.open_existing pool t.kv ~table_id in
      Hashtbl.replace t.tables table_id { table_id; heap; indexes = [] })
    table_ids;
  let index_ids =
    match Durable_kv.get t.kv "cat/indexes" with
    | Some (Index_list l) -> List.sort compare l
    | _ -> []
  in
  (* gather index cat entries and attach in seq order per table *)
  let entries =
    List.filter_map
      (fun id ->
        match Durable_kv.get t.kv (index_cat_key id) with
        | Some (Index_cat c) ->
          Some (c.table_id, c.seq, id, c.key_cols, c.uniq, c.state)
        | _ -> None)
      index_ids
  in
  let entries = List.sort compare entries in
  List.iter
    (fun (table_id, _seq, index_id, key_cols, uniq, state) ->
      let tree = Oib_btree.Btree.open_from_image pool t.kv ~index_id in
      let info =
        {
          index_id;
          table_id;
          key_cols;
          uniq;
          tree;
          phase = Ready;
          state = state_of_int state;
        }
      in
      let tbl = table t table_id in
      tbl.indexes <- tbl.indexes @ [ info ];
      Hashtbl.replace t.indexes index_id info)
    entries
