open Oib_util
open Oib_storage

type build_phase =
  | Ready
  | Nsf_building of nsf_state
  | Sf_building of sf_state

and nsf_state = { mutable avail_below : string option }

and sf_state = {
  sidefile : Oib_sidefile.Side_file.t;
  mutable current_rid : Rid.t;
  mutable current_key : string option;
  key_scan : int list option;
  mutable draining : bool;
}

type index_info = {
  index_id : int;
  table_id : int;
  key_cols : int list;
  uniq : bool;
  tree : Oib_btree.Btree.t;
  mutable phase : build_phase;
}

type table_info = {
  table_id : int;
  heap : Heap_file.t;
  mutable indexes : index_info list;
}

type t = {
  kv : Durable_kv.t;
  page_capacity : int;
  tables : (int, table_info) Hashtbl.t;
  indexes : (int, index_info) Hashtbl.t;
}

type Durable_kv.value +=
  | Table_cat of { table_id : int }
  | Index_cat of {
      index_id : int;
      table_id : int;
      key_cols : int list;
      uniq : bool;
      seq : int; (* creation position within the table *)
    }
  | Table_list of int list
  | Index_list of int list

let table_cat_key id = Printf.sprintf "cat/table/%d" id
let index_cat_key id = Printf.sprintf "cat/index/%d" id

let create kv ~page_capacity =
  { kv; page_capacity; tables = Hashtbl.create 8; indexes = Hashtbl.create 16 }

let kv t = t.kv
let page_capacity t = t.page_capacity

let persist_lists t =
  Durable_kv.set t.kv "cat/tables"
    (Table_list (Hashtbl.fold (fun id _ acc -> id :: acc) t.tables []));
  Durable_kv.set t.kv "cat/indexes"
    (Index_list (Hashtbl.fold (fun id _ acc -> id :: acc) t.indexes []))

let log_ddl pool body =
  ignore
    (Oib_wal.Log_manager.append (Buffer_pool.log pool) ~txn:None
       ~prev_lsn:Oib_wal.Lsn.nil body);
  Oib_wal.Log_manager.flush_all (Buffer_pool.log pool)

let create_table ?(log = true) t pool ~table_id =
  if Hashtbl.mem t.tables table_id then
    invalid_arg "Catalog.create_table: exists";
  let heap =
    Heap_file.create pool t.kv ~table_id ~page_capacity:t.page_capacity
  in
  let info = { table_id; heap; indexes = [] } in
  Hashtbl.replace t.tables table_id info;
  Durable_kv.set t.kv (table_cat_key table_id) (Table_cat { table_id });
  persist_lists t;
  if log then log_ddl pool (Oib_wal.Log_record.Create_table { table = table_id });
  info

let table t id =
  match Hashtbl.find_opt t.tables id with
  | Some info -> info
  | None -> invalid_arg (Printf.sprintf "Catalog.table: no table %d" id)

let index t id =
  match Hashtbl.find_opt t.indexes id with
  | Some info -> info
  | None -> invalid_arg (Printf.sprintf "Catalog.index: no index %d" id)

let tables t = Hashtbl.fold (fun _ info acc -> info :: acc) t.tables []

let indexes_of t table_id = (table t table_id).indexes

let add_index ?(log = true) t pool ~table_id ~index_id ~key_cols ~unique ~phase =
  let tbl = table t table_id in
  if Hashtbl.mem t.indexes index_id then
    invalid_arg "Catalog.add_index: index exists";
  let tree =
    Oib_btree.Btree.create pool t.kv ~index_id ~page_capacity:t.page_capacity
      ~unique
  in
  let info = { index_id; table_id; key_cols; uniq = unique; tree; phase } in
  tbl.indexes <- tbl.indexes @ [ info ];
  Hashtbl.replace t.indexes index_id info;
  Durable_kv.set t.kv (index_cat_key index_id)
    (Index_cat
       {
         index_id;
         table_id;
         key_cols;
         uniq = unique;
         seq = List.length tbl.indexes - 1;
       });
  persist_lists t;
  if log then
    log_ddl pool
      (Oib_wal.Log_record.Create_index
         { index = index_id; table = table_id; key_cols; uniq = unique });
  info

let drop_index t index_id =
  let info = index t index_id in
  let tbl = table t info.table_id in
  tbl.indexes <- List.filter (fun i -> i.index_id <> index_id) tbl.indexes;
  Hashtbl.remove t.indexes index_id;
  (* scrub the tree's durable image too: recovery replays Create_index
     before this drop's record, and Btree.create refuses a stale meta *)
  Oib_btree.Btree.destroy info.tree;
  Durable_kv.remove t.kv (index_cat_key index_id);
  persist_lists t

let key_of info record ~rid = Ikey.make (Record.key_value record info.key_cols) rid

(* Visibility of one index for an operation on [target] (Figure 1; for
   key-order scans, §6.2's current-key rule — <= because the extraction of
   the record with that exact key happened under its page latch, so an
   equal-key operation is ordered after the extraction). *)
let sf_visible sf ~target ~record =
  Rid.is_infinity sf.current_rid
  ||
  match sf.key_scan with
  | None -> Rid.compare target sf.current_rid < 0
  | Some cols -> (
    match sf.current_key with
    | None -> false
    | Some ck -> String.compare (Record.key_value record cols) ck <= 0)

let visible_to info ~target ~record =
  match info.phase with
  | Ready | Nsf_building _ -> true
  | Sf_building sf -> sf_visible sf ~target ~record

let visible_count_for _t (tbl : table_info) ~target ~record =
  List.length (List.filter (visible_to ~target ~record) tbl.indexes)

let sidefiled_for _t (tbl : table_info) ~target ~record =
  List.filter_map
    (fun info ->
      match info.phase with
      | Sf_building sf when sf_visible sf ~target ~record ->
        Some info.index_id
      | _ -> None)
    tbl.indexes

let set_phase t index_id phase = (index t index_id).phase <- phase

let reopen t pool =
  Hashtbl.reset t.tables;
  Hashtbl.reset t.indexes;
  let table_ids =
    match Durable_kv.get t.kv "cat/tables" with
    | Some (Table_list l) -> List.sort compare l
    | _ -> []
  in
  List.iter
    (fun table_id ->
      let heap = Heap_file.open_existing pool t.kv ~table_id in
      Hashtbl.replace t.tables table_id { table_id; heap; indexes = [] })
    table_ids;
  let index_ids =
    match Durable_kv.get t.kv "cat/indexes" with
    | Some (Index_list l) -> List.sort compare l
    | _ -> []
  in
  (* gather index cat entries and attach in seq order per table *)
  let entries =
    List.filter_map
      (fun id ->
        match Durable_kv.get t.kv (index_cat_key id) with
        | Some (Index_cat c) ->
          Some (c.table_id, c.seq, id, c.key_cols, c.uniq)
        | _ -> None)
      index_ids
  in
  let entries = List.sort compare entries in
  List.iter
    (fun (table_id, _seq, index_id, key_cols, uniq) ->
      let tree = Oib_btree.Btree.open_from_image pool t.kv ~index_id in
      let info =
        { index_id; table_id; key_cols; uniq; tree; phase = Ready }
      in
      let tbl = table t table_id in
      tbl.indexes <- tbl.indexes @ [ info ];
      Hashtbl.replace t.indexes index_id info)
    entries
