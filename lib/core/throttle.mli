(** Admission control for the index builder.

    The throttle watches the engine's hysteresis health signals (PR-6
    window quantiles: foreground p99, WAL backlog, dirty-page ratio) and
    converts pressure into a backoff {e level}: each signal raise deepens
    the level, and when the last watched signal clears the level resets.
    The builder consults the level at its pacing points — NSF batch sizes
    are halved per level and extra yields are injected per processed
    page/key — so a hot foreground workload reclaims the scheduler without
    any change to the build's durable protocol. Hysteresis lives in the
    signals themselves ([raise_above]/[clear_below]), so the backoff
    cannot flap on a noisy boundary.

    At level 0 the throttle is inert: scaled batches equal their base and
    no yields are injected, so fault-free runs are step-identical to an
    unthrottled engine.

    The same object carries the cooperative pause flag behind
    [oib-demo build --pause]: the builder polls {!pause_requested} right
    after each durable checkpoint and raises out of the build, losing no
    work. *)

type t

val create : ?max_level:int -> unit -> t
(** [max_level] defaults to 3 (batch scaled down up to 8x). *)

val attach : t -> Oib_obs.Signal.set -> names:string list -> unit
(** Subscribe to the named signals' transitions. Call once per engine
    {e lifetime} (the signal set survives crash recovery and keeps its
    subscribers; re-attaching would double the backoff steps). Signals in
    [names] not yet registered are matched by name when they fire. *)

val level : t -> int

val backoffs : t -> int
(** Total signal-raise-driven backoff steps since creation. *)

val restores : t -> int
(** Total full restores (last watched signal cleared). *)

val scaled : t -> base:int -> int
(** [base] halved once per level, floored at 1: the effective NSF insert
    batch size / scan chunk length under pressure. *)

val extra_yields : t -> int
(** Yields the builder inserts after each unit of work ([= level]). *)

val set_trace : t -> Oib_obs.Trace.t -> unit
(** Point the throttle's sanitizer probes ([Shared] events on class
    [Throttle.level]) at the current incarnation's trace. Defaults to
    {!Oib_obs.Trace.null}; with no probe consumer installed each
    emission site is one pointer compare. *)

val set_notify : t -> (t -> string -> unit) option -> unit
(** Hook fired on every level change with a short reason (e.g.
    ["overload.fg_p99 raised"]). The engine points this at the current
    incarnation's trace; replaced wholesale on recovery. *)

val request_pause : t -> unit
val clear_pause : t -> unit
val pause_requested : t -> bool
