(* The assembled system: every subsystem one engine instance owns. Shared
   by the record-operation layer, the index builders, and the engine
   façade. *)

type t = {
  sched : Oib_sim.Sched.t;
  metrics : Oib_sim.Metrics.t;
  trace : Oib_obs.Trace.t;
  log : Oib_wal.Log_manager.t;
  store : Oib_storage.Stable_store.t;
  kv : Oib_storage.Durable_kv.t;
  pool : Oib_storage.Buffer_pool.t;
  locks : Oib_lock.Lock_manager.t;
  txns : Oib_txn.Txn_manager.t;
  catalog : Catalog.t;
  runs : Oib_sort.Run_store.t;
  builds : (int, Build_status.t) Hashtbl.t; (* index_id -> live progress *)
  registry : Oib_obs.Registry.t; (* central metrics registry *)
  signals : Oib_obs.Signal.set; (* overload/health signals *)
  throttle : Throttle.t; (* IB admission control; survives crash *)
}
