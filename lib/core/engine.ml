open Oib_storage
module Txn = Oib_txn.Txn_manager
module LM = Oib_wal.Log_manager
module Restart = Oib_recovery.Restart
module Btree = Oib_btree.Btree

type t = Ctx.t

(* Default watermarks for the standard health signals (scheduler steps /
   bytes / ratio). Chosen against the soak and bench workloads: a loaded
   foreground sits well above raise, a quiet one well below clear. *)
let overload_fg_p99_raise = 60.0
let overload_fg_p99_clear = 25.0
let wal_backlog_raise = 16384.0
let wal_backlog_clear = 4096.0
let dirty_ratio_raise = 0.7
let dirty_ratio_clear = 0.4

(* (Re)connect the observability plane to this incarnation's subsystems.
   The registry and signal set survive a crash with [metrics]; everything
   here is idempotent, with sources/gauges replaced so they close over the
   live scheduler, log and pool rather than the dead incarnation's. *)
let wire_observability (ctx : Ctx.t) =
  let m = ctx.Ctx.metrics in
  let reg = ctx.Ctx.registry in
  Oib_sim.Metrics.set_fiber_source m (fun () ->
      Option.value ~default:(-1) (Oib_sim.Sched.current_fiber ctx.Ctx.sched));
  Oib_sim.Metrics.clear_accounts m;
  if Oib_sim.Metrics.registry m = None then
    Oib_sim.Metrics.attach_registry m reg;
  (* foreground committed-txn latency window (fed by Txn_manager.commit) *)
  ignore (Oib_obs.Registry.window reg ~slots:8 "fg.latency");
  Oib_obs.Registry.gauge reg "wal.unflushed_bytes" (fun () ->
      LM.unflushed_bytes ctx.Ctx.log);
  Oib_obs.Registry.gauge reg "pool.dirty_pages" (fun () ->
      Buffer_pool.dirty_count ctx.Ctx.pool);
  Oib_obs.Registry.gauge reg "pool.cached_pages" (fun () ->
      Buffer_pool.cached_count ctx.Ctx.pool);
  let sg = ctx.Ctx.signals in
  Oib_obs.Signal.register sg ~name:"overload.fg_p99"
    ~raise_above:overload_fg_p99_raise ~clear_below:overload_fg_p99_clear
    ~source:(fun () ->
      match Oib_obs.Registry.find_window reg "fg.latency" with
      | Some w -> Oib_obs.Window.percentile w 0.99
      | None -> 0.0);
  Oib_obs.Signal.register sg ~name:"wal.backlog"
    ~raise_above:wal_backlog_raise ~clear_below:wal_backlog_clear
    ~source:(fun () -> float_of_int (LM.unflushed_bytes ctx.Ctx.log));
  Oib_obs.Signal.register sg ~name:"pool.dirty_ratio"
    ~raise_above:dirty_ratio_raise ~clear_below:dirty_ratio_clear
    ~source:(fun () ->
      let cached = Buffer_pool.cached_count ctx.Ctx.pool in
      if cached = 0 then 0.0
      else float_of_int (Buffer_pool.dirty_count ctx.Ctx.pool)
           /. float_of_int cached);
  (* the throttle's signal subscription is made once, in [create] (the
     subscription list survives restart with the set); only its trace
     notifier is re-pointed at this incarnation *)
  Oib_obs.Registry.gauge reg "throttle.level" (fun () ->
      Throttle.level ctx.Ctx.throttle);
  Throttle.set_notify ctx.Ctx.throttle
    (Some
       (fun th reason ->
         if Oib_obs.Trace.tracing ctx.Ctx.trace then
           Oib_obs.Trace.emit ctx.Ctx.trace
             (Oib_obs.Event.Ib_throttle { level = Throttle.level th; reason })));
  (* point the shared-state sanitizer probes (L12 interference twin) at
     this incarnation's trace *)
  Throttle.set_trace ctx.Ctx.throttle ctx.Ctx.trace;
  Catalog.set_trace ctx.Ctx.catalog ctx.Ctx.trace

let create ?(seed = 42) ?(page_capacity = 1024)
    ?(trace = Oib_obs.Trace.null) () =
  let sched = Oib_sim.Sched.create ~seed ~trace () in
  let metrics = Oib_sim.Metrics.create () in
  let log = LM.create ~trace metrics in
  let store = Stable_store.create () in
  let kv = Durable_kv.create () in
  let pool = Buffer_pool.create ~sched ~metrics ~log ~store in
  let locks = Oib_lock.Lock_manager.create sched metrics in
  let txns = Txn.create ~trace log locks metrics in
  let catalog = Catalog.create kv ~page_capacity in
  let runs = Oib_sort.Run_store.create () in
  let ctx =
    { Ctx.sched; metrics; trace; log; store; kv; pool; locks; txns; catalog;
      runs; builds = Hashtbl.create 8;
      registry = Oib_obs.Registry.create ();
      signals = Oib_obs.Signal.create_set ();
      throttle = Throttle.create () }
  in
  wire_observability ctx;
  (* subscribe once per engine lifetime: subscriptions live in the signal
     set and survive crash/restart, so [recover_over] must not re-attach *)
  Throttle.attach ctx.Ctx.throttle ctx.Ctx.signals
    ~names:[ "overload.fg_p99"; "wal.backlog"; "pool.dirty_ratio" ];
  ctx

(* Rebuild a live system over [store]/[kv]/[runs] and the survivor log,
   then run restart recovery: analysis, heap redo, logical index replay,
   build-phase restoration, loser rollback. *)
let recover_over ~seed (old : t) ~store ~kv ~runs =
  (* the trace hub survives restart: the same sinks/recorder/histograms
     observe the new incarnation, whose scheduler re-registers its clock *)
  let trace = old.Ctx.trace in
  let sched = Oib_sim.Sched.create ~seed ~trace () in
  (* announce the incarnation boundary: the step clock just restarted, and
     an offline reader needs the marker to split the capture into epochs *)
  if Oib_obs.Trace.tracing trace then
    Oib_obs.Trace.emit trace (Oib_obs.Event.Epoch { label = "restart" });
  if Oib_obs.Trace.probing trace then
    Oib_obs.Trace.probe_emit trace
      (Oib_obs.Probe.Epoch { label = "restart" });
  let log = LM.crash old.Ctx.log in
  let pool = Buffer_pool.create ~sched ~metrics:old.Ctx.metrics ~log ~store in
  let locks = Oib_lock.Lock_manager.create sched old.Ctx.metrics in
  let txns = Txn.create ~trace log locks old.Ctx.metrics in
  (* a fresh catalog over the (possibly restored) durable metadata *)
  let catalog =
    Catalog.create kv ~page_capacity:(Catalog.page_capacity old.Ctx.catalog)
  in
  let ctx =
    {
      Ctx.sched;
      metrics = old.Ctx.metrics;
      trace;
      log;
      store;
      kv;
      pool;
      locks;
      txns;
      catalog;
      runs;
      builds = Hashtbl.create 8;
      registry = old.Ctx.registry;
      signals = old.Ctx.signals;
      throttle = old.Ctx.throttle;
    }
  in
  (* re-close gauges/signal sources over the new incarnation's subsystems
     and point fiber attribution at the new scheduler; stale per-fiber
     accounts (their fibers died with the old scheduler) are dropped *)
  wire_observability ctx;
  let recovery_step step detail =
    if Oib_obs.Trace.tracing trace then
      Oib_obs.Trace.emit trace (Oib_obs.Event.Recovery_step { step; detail })
  in
  (* ---- restart recovery ---- *)
  let analysis = Restart.analyze log in
  recovery_step "analysis"
    (Printf.sprintf "losers=%d builds_in_progress=%d"
       (List.length analysis.losers)
       (List.length analysis.builds_in_progress));
  Txn.ensure_next_id txns (analysis.max_txn_id + 1);
  (* heap pages named in the log but never flushed sit above the stable
     store's max id; reserve them before anything allocates *)
  List.iter
    (fun (r : Oib_wal.Log_record.t) ->
      match r.body with
      | Oib_wal.Log_record.Heap { page; _ }
      | Oib_wal.Log_record.Clr { action = Oib_wal.Log_record.Heap { page; _ }; _ }
      | Oib_wal.Log_record.Heap_extend { page; _ } ->
        Buffer_pool.reserve_page_ids pool ~upto:page
      | _ -> ())
    (LM.durable_records log);
  (* catalog objects over the surviving store *)
  Catalog.reopen ctx.Ctx.catalog pool;
  (* ... and in the durable inventories: after a log truncation the
     Heap_extend records above are gone, but the heap files still own
     their pages *)
  List.iter
    (fun (tbl : Catalog.table_info) ->
      List.iter
        (fun id -> Buffer_pool.reserve_page_ids pool ~upto:id)
        (Heap_file.page_ids tbl.heap);
      List.iter
        (fun (info : Catalog.index_info) ->
          List.iter
            (fun id -> Buffer_pool.reserve_page_ids pool ~upto:id)
            (Oib_btree.Btree.page_ids info.tree))
        tbl.indexes)
    (Catalog.tables ctx.Ctx.catalog);
  (* replay DDL the restored metadata may predate (media recovery) *)
  List.iter
    (fun (r : Oib_wal.Log_record.t) ->
      match r.body with
      | Oib_wal.Log_record.Create_table { table } -> (
        match Catalog.table ctx.Ctx.catalog table with
        | _ -> ()
        | exception Invalid_argument _ ->
          ignore
            (Catalog.create_table ~log:false ctx.Ctx.catalog pool
               ~table_id:table))
      | Oib_wal.Log_record.Create_index { index; table; key_cols; uniq } -> (
        match Catalog.index ctx.Ctx.catalog index with
        | _ -> ()
        | exception Invalid_argument _ ->
          ignore
            (Catalog.add_index ~log:false ctx.Ctx.catalog pool ~table_id:table
               ~index_id:index ~key_cols ~unique:uniq ~phase:Catalog.Ready))
      | Oib_wal.Log_record.Drop_index { index } -> (
        match Catalog.index ctx.Ctx.catalog index with
        | _ -> Catalog.drop_index ctx.Ctx.catalog index
        | exception Invalid_argument _ -> ())
      | _ -> ())
    (LM.durable_records log);
  (* land every surviving index in its last durably logged lifecycle
     state: the kv entry may trail the log (crash between the Index_state
     flush and the catalog rewrite) or predate it (media restore from an
     old image) *)
  List.iter
    (fun (index_id, state) ->
      Catalog.restore_state ctx.Ctx.catalog index_id
        (Catalog.state_of_int state))
    analysis.index_states;
  (* re-register file extensions the restored metadata may predate *)
  List.iter
    (fun (r : Oib_wal.Log_record.t) ->
      match r.body with
      | Oib_wal.Log_record.Heap_extend { table; page } -> (
        match Catalog.table ctx.Ctx.catalog table with
        | tbl -> Heap_file.ensure_page_registered tbl.heap page
        | exception Invalid_argument _ -> ())
      | _ -> ())
    (LM.durable_records log);
  (* repeat history on the data pages *)
  recovery_step "redo_heap" "";
  Restart.redo_heap log pool
    ~page_capacity:(Catalog.page_capacity ctx.Ctx.catalog);
  (* a page can be in the inventory yet exist nowhere: registered
     durably at extend time, then lost with the unflushed log tail. No
     durable record could touch it (commit would have flushed the log),
     so empty is its correct redone state. *)
  List.iter
    (fun (tbl : Catalog.table_info) ->
      List.iter
        (fun id ->
          if not (Buffer_pool.mem pool id) then
            ignore
              (Buffer_pool.install ~role:"Heap_file" pool id
                 ~payload:
                   (Heap_page.Heap
                      (Heap_page.create
                         ~capacity:(Catalog.page_capacity ctx.Ctx.catalog)))
                 ~copy_payload:Heap_page.copy_payload))
        (Heap_file.page_ids tbl.heap))
    (Catalog.tables ctx.Ctx.catalog);
  (* bring every index from its image to the end of the durable log *)
  recovery_step "replay_indexes" "";
  List.iter
    (fun (tbl : Catalog.table_info) ->
      List.iter
        (fun (info : Catalog.index_info) -> Restart.replay_index log info.tree)
        tbl.indexes)
    (Catalog.tables ctx.Ctx.catalog);
  (* in-progress builds: phase down from Ready, rebuild side-files *)
  List.iter
    (fun (index_id, _table) ->
      recovery_step "restore_build" (Printf.sprintf "index=%d" index_id);
      Ib.restore_phase_after_restart ctx ~index_id)
    analysis.builds_in_progress;
  (* roll back losers with the live-abort executor *)
  List.iter
    (fun (txn_id, last) ->
      recovery_step "rollback_loser" (Printf.sprintf "txn=%d" txn_id);
      let txn = Txn.adopt txns ~txn_id ~last in
      Table_ops.rollback ctx txn)
    analysis.losers;
  LM.flush_all log;
  recovery_step "done" "";
  ctx

let crash ?(seed = 4242) (old : t) =
  (* volatile state vanishes; the stable store, durable metadata and
     forced runs survive *)
  recover_over ~seed old ~store:old.Ctx.store ~kv:old.Ctx.kv
    ~runs:(Oib_sort.Run_store.crash old.Ctx.runs)

exception
  Media_recovery_forfeited of { backup_lsn : int; log_start : int }

type backup = {
  b_store : Stable_store.t;
  b_kv : Durable_kv.t;
  b_runs : Oib_sort.Run_store.t;
  b_lsn : Oib_wal.Lsn.t;  (** durable log position the image is clean at *)
}

let backup (ctx : t) =
  (* an image copy must be taken from a clean point: flush the log and the
     data pages, and sharp-image every completed index so the copy carries
     fresh tree images *)
  LM.flush_all ctx.Ctx.log;
  Buffer_pool.flush_all ctx.Ctx.pool;
  List.iter
    (fun (tbl : Catalog.table_info) ->
      List.iter
        (fun (info : Catalog.index_info) ->
          match info.phase with
          | Catalog.Ready ->
            Btree.checkpoint_image info.tree ~lsn:(LM.flushed_lsn ctx.Ctx.log)
          | Catalog.Nsf_building _ | Catalog.Sf_building _ -> ())
        tbl.indexes)
    (Catalog.tables ctx.Ctx.catalog);
  {
    b_store = Stable_store.snapshot ctx.Ctx.store;
    b_kv = Durable_kv.snapshot ctx.Ctx.kv;
    b_runs = Oib_sort.Run_store.crash ctx.Ctx.runs;
    b_lsn = LM.flushed_lsn ctx.Ctx.log;
  }

let media_restore ?(seed = 777) (old : t) b =
  (* the data "disk" is gone; the log (on its own device) survives in
     full. Restore the image copy and let redo repeat all of history since
     the backup — including everything the index builder logged, which is
     exactly why NSF's IB writes log records (§2.2.3): no post-build image
     copy of the index is needed for media recovery. *)
  (* footnote 8's proviso, enforced: if the log has been truncated past the
     backup point, the records that would redo history from the image are
     gone — recovering anyway would silently lose committed work, so fail
     loudly before touching anything *)
  let log_start = LM.start_lsn old.Ctx.log in
  if Oib_wal.Lsn.( > ) log_start (Oib_wal.Lsn.next b.b_lsn) then
    raise
      (Media_recovery_forfeited
         {
           backup_lsn = Oib_wal.Lsn.to_int b.b_lsn;
           log_start = Oib_wal.Lsn.to_int log_start;
         });
  recover_over ~seed old ~store:(Stable_store.snapshot b.b_store)
    ~kv:(Durable_kv.snapshot b.b_kv)
    ~runs:(Oib_sort.Run_store.crash b.b_runs)

let run_txn (ctx : t) f =
  let txn = Txn.begin_txn ctx.Ctx.txns in
  match f txn with
  | v ->
    Txn.commit ctx.Ctx.txns txn;
    Ok v
  | exception Table_ops.Txn_deadlock ->
    Table_ops.rollback ctx txn;
    Error `Deadlock
  | exception Table_ops.Unique_violation { index; kv } ->
    Table_ops.rollback ctx txn;
    Error (`Unique_violation (index, kv))
  | exception e ->
    Table_ops.rollback ctx txn;
    raise e

let checkpoint (ctx : t) =
  if Oib_obs.Trace.tracing ctx.Ctx.trace then
    Oib_obs.Trace.emit ctx.Ctx.trace
      (Oib_obs.Event.Checkpoint { scope = "system" });
  LM.flush_all ctx.Ctx.log;
  Buffer_pool.flush_all ctx.Ctx.pool

(* Log truncation (paper footnote 8). The retained suffix must cover:
   - the undo chains of active transactions (oldest begin LSN);
   - redo for unflushed pages — we take a checkpoint first, so none;
   - logical replay for every index, from its checkpoint image onward
     (we re-image each index first, so only the log end matters);
   - the side-file and progress of in-progress builds (their Build_start).
   Truncating also forfeits media recovery to any backup older than the
   new start — footnote 8's image-copy proviso is the caller's business. *)
let truncate_log (ctx : t) =
  checkpoint ctx;
  let log_end = LM.last_lsn ctx.Ctx.log in
  let safe = ref (Oib_wal.Lsn.next log_end) in
  let keep lsn = if Oib_wal.Lsn.( < ) lsn !safe then safe := lsn in
  (* active transactions *)
  if Txn.active_count ctx.Ctx.txns > 0 then keep (Txn.commit_lsn ctx.Ctx.txns);
  (* indexes: sharp-image each Ready tree so replay needs nothing older;
     in-progress builds pin their Build_start *)
  List.iter
    (fun (tbl : Catalog.table_info) ->
      List.iter
        (fun (info : Catalog.index_info) ->
          match info.phase with
          | Catalog.Ready ->
            Btree.checkpoint_image info.tree ~lsn:(LM.flushed_lsn ctx.Ctx.log)
          | Catalog.Nsf_building _ | Catalog.Sf_building _ -> ())
        tbl.indexes)
    (Catalog.tables ctx.Ctx.catalog);
  List.iter
    (fun (r : Oib_wal.Log_record.t) ->
      match r.body with
      | Oib_wal.Log_record.Build_start { index; _ } -> (
        match (Catalog.index ctx.Ctx.catalog index).phase with
        | Catalog.Nsf_building _ | Catalog.Sf_building _ -> keep r.lsn
        | Catalog.Ready -> ()
        | exception Invalid_argument _ -> ())
      | _ -> ())
    (LM.durable_records ctx.Ctx.log);
  LM.truncate ctx.Ctx.log ~below:!safe

let active_txns (ctx : t) = Txn.active_count ctx.Ctx.txns

let unfinished_builds (ctx : t) =
  List.concat_map
    (fun (tbl : Catalog.table_info) ->
      List.filter_map
        (fun (info : Catalog.index_info) ->
          match info.phase with
          | Catalog.Ready -> None
          | Catalog.Nsf_building _ -> Some (info.index_id, "nsf-building")
          | Catalog.Sf_building st ->
            Some
              ( info.index_id,
                if st.draining then "sf-draining" else "sf-building" ))
        tbl.indexes)
    (Catalog.tables ctx.Ctx.catalog)

let undrained_sidefiles (ctx : t) =
  List.concat_map
    (fun (tbl : Catalog.table_info) ->
      List.filter_map
        (fun (info : Catalog.index_info) ->
          match info.phase with
          | Catalog.Sf_building st ->
            let n = Oib_sidefile.Side_file.length st.sidefile in
            if n > 0 then Some (info.index_id, n) else None
          | Catalog.Ready | Catalog.Nsf_building _ -> None)
        tbl.indexes)
    (Catalog.tables ctx.Ctx.catalog)

let build_progress (ctx : t) =
  Hashtbl.fold (fun _ st acc -> st :: acc) ctx.Ctx.builds []
  |> List.sort (fun (a : Build_status.t) b -> compare a.index_id b.index_id)

(* --- the consistency oracle --- *)

let consistency_errors (ctx : t) =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  List.iter
    (fun (tbl : Catalog.table_info) ->
      let records = Heap_file.all_records tbl.heap in
      List.iter
        (fun (info : Catalog.index_info) ->
          match info.phase with
          | Catalog.Nsf_building _ | Catalog.Sf_building _ -> ()
          | Catalog.Ready ->
            (match Oib_btree.Bt_check.check info.tree with
            | [] -> ()
            | es ->
              err "index %d: structural: %s" info.index_id
                (String.concat "; " es));
            (* expected multiset of keys *)
            let expected = Hashtbl.create 256 in
            List.iter
              (fun (rid, record) ->
                Hashtbl.replace expected
                  (Catalog.key_of info record ~rid)
                  ())
              records;
            let seen = Hashtbl.create 256 in
            Oib_btree.Btree.iter_entries info.tree (fun key ~pseudo ->
                if not pseudo then begin
                  if Hashtbl.mem seen key then
                    err "index %d: duplicate entry %s" info.index_id
                      (Oib_util.Ikey.to_string key);
                  Hashtbl.replace seen key ();
                  if not (Hashtbl.mem expected key) then
                    err "index %d: spurious entry %s" info.index_id
                      (Oib_util.Ikey.to_string key)
                end);
            Hashtbl.iter
              (fun key () ->
                if not (Hashtbl.mem seen key) then
                  err "index %d: missing entry %s" info.index_id
                    (Oib_util.Ikey.to_string key))
              expected;
            if info.uniq then begin
              (* at most one live entry per key value *)
              let kvs = Hashtbl.create 256 in
              Oib_btree.Btree.iter_entries info.tree (fun key ~pseudo ->
                  if not pseudo then begin
                    if Hashtbl.mem kvs key.Oib_util.Ikey.kv then
                      err "index %d: unique violated on %S" info.index_id
                        key.Oib_util.Ikey.kv;
                    Hashtbl.replace kvs key.Oib_util.Ikey.kv ()
                  end)
            end)
        tbl.indexes)
    (Catalog.tables ctx.Ctx.catalog);
  let errors = List.rev !errs in
  (* an inconsistency is a failure worth a flight-recorder dump: the last
     events before the oracle ran are exactly what caused it *)
  if errors <> [] then
    Oib_obs.Trace.failure ctx.Ctx.trace
      ~reason:
        (Printf.sprintf "consistency oracle: %d error(s); first: %s"
           (List.length errors) (List.hd errors));
  errors

(* --- the lifecycle oracle ---

   Invariants of the index state machine as seen at a quiescent point: the
   non-final checks hold after any crash + recovery (mid-build transients
   are never observed there — recovery lands every in-progress build in
   [Write_only] with its progress record intact); the final checks hold
   once every build has been driven to completion. *)

let lifecycle_errors ?(final = false) (ctx : t) =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let in_progress = Ib.interrupted_builds ctx in
  List.iter
    (fun (tbl : Catalog.table_info) ->
      List.iter
        (fun (info : Catalog.index_info) ->
          let id = info.index_id in
          let has_progress = List.mem id in_progress in
          (match info.state with
          | Catalog.Disabled ->
            (* Disabled exists only inside the (yield-free) admission and
               cancel windows; a quiescent point must never see one *)
            err "index %d: disabled but still cataloged" id
          | Catalog.Write_only ->
            if not has_progress then
              err "index %d: write-only without durable build progress" id
          | Catalog.Readable -> ());
          if final then begin
            (match (info.state, info.phase) with
            | Catalog.Readable, Catalog.Ready -> ()
            | Catalog.Readable, _ ->
              err "index %d: readable but phase is not Ready" id
            | (Catalog.Write_only | Catalog.Disabled), Catalog.Ready ->
              err "index %d: phase Ready but state %s" id
                (Catalog.state_name info.state)
            | (Catalog.Write_only | Catalog.Disabled), _ -> ());
            if info.state = Catalog.Readable then begin
              if has_progress then
                err "index %d: readable with a leftover progress record" id;
              if
                not
                  (Range_set.is_empty
                     (Range_set.load ctx.Ctx.kv ~index_id:id))
              then
                err "index %d: readable with a leftover scan-range record"
                  id;
              match info.phase with
              | Catalog.Sf_building st ->
                let n = Oib_sidefile.Side_file.length st.sidefile in
                if n > 0 then
                  err "index %d: readable with %d undrained side-file \
                       entries" id n
              | Catalog.Ready | Catalog.Nsf_building _ -> ()
            end
          end)
        tbl.indexes)
    (Catalog.tables ctx.Ctx.catalog);
  let errors = List.rev !errs in
  if errors <> [] then
    Oib_obs.Trace.failure ctx.Ctx.trace
      ~reason:
        (Printf.sprintf "lifecycle oracle: %d error(s); first: %s"
           (List.length errors) (List.hd errors));
  errors
