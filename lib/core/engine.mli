(** System façade: assemble the engine, simulate failures, run restart
    recovery.

    [crash] models a system failure followed by restart: volatile state
    (buffer pool, unflushed log tail, unfinished fibers, latches, locks) is
    discarded; the stable store, the durable log prefix, forced metadata
    and forced sorted runs survive. Recovery then runs: analysis over the
    durable log, heap redo (page-LSN test), logical index replay from each
    index's checkpoint image, restoration of in-progress build phases, and
    rollback of loser transactions with the same undo logic as a live
    abort. Interrupted index builds are *not* continued automatically —
    spawn [Ib.resume_builds] in a fiber to carry them forward, as the
    paper's restartable IB would. *)

type t = Ctx.t

val create :
  ?seed:int -> ?page_capacity:int -> ?trace:Oib_obs.Trace.t -> unit -> t
(** [trace] (default {!Oib_obs.Trace.null}) is wired through every
    subsystem: the scheduler stamps events with its step clock and fiber,
    the WAL / lock manager / buffer pool / transaction manager / builders
    emit events into it, and its flight recorder is dumped on deadlock,
    crash, or a consistency-oracle failure. It survives {!crash} and
    {!media_restore}. *)

val crash : ?seed:int -> t -> t
(** Survivor engine, recovery completed. *)

type backup
(** An image copy of the stable store, durable metadata and forced sorted
    runs, taken at a clean point. *)

exception
  Media_recovery_forfeited of { backup_lsn : int; log_start : int }
(** Raised by {!media_restore} when {!truncate_log} has discarded log
    records the restore would need to redo history from the backup point
    (footnote 8's proviso). Nothing has been modified when this is raised;
    the pre-failure engine remains usable. *)

val backup : t -> backup

val media_restore : ?seed:int -> t -> backup -> t
(** Media recovery: the data disk is lost; restore the image copy and redo
    the (surviving) log from the backup point — the recovery mode that
    motivates the NSF builder's logging (§2.2.3: "media recovery can be
    supported without the user being forced to take an image copy of the
    index immediately after the index build completes"). Raises
    {!Media_recovery_forfeited} if the log no longer reaches back to the
    backup point. *)

val run_txn :
  t ->
  (Oib_txn.Txn_manager.txn -> 'a) ->
  ('a, [ `Deadlock | `Unique_violation of int * string ]) result
(** Begin a transaction, run [f], commit. On [Table_ops.Txn_deadlock] or
    [Table_ops.Unique_violation] the transaction is rolled back and the
    reason returned. Other exceptions roll back and re-raise. *)

val checkpoint : t -> unit
(** Flush the log and all (stealable) dirty pages — shrinks recovery work,
    like a DBMS system checkpoint. *)

val truncate_log : t -> int
(** Discard the durable log prefix that restart recovery can no longer
    need (paper footnote 8): checkpoints the system, re-images every
    [Ready] index, and keeps everything from the oldest active
    transaction's begin and any in-progress build's start onward. Returns
    bytes reclaimed. Media recovery to a backup older than the new start
    is forfeited — take a fresh {!backup} first. *)

val build_progress : t -> Build_status.t list
(** Live status of every index build this engine incarnation has run or
    resumed, ordered by index id. *)

val active_txns : t -> int
(** Transactions currently in flight — the consistency oracle's
    precondition is that this is 0. *)

val unfinished_builds : t -> (int * string) list
(** [(index_id, phase)] for every index not yet [Ready] — after a scenario
    has run to completion this must be empty (the side-file drained, the
    flip done). *)

val undrained_sidefiles : t -> (int * int) list
(** [(index_id, entries)] for every SF-building index whose side-file
    still holds appended entries. *)

val consistency_errors : t -> string list
(** The oracle: for every table, every [Ready] index must contain exactly
    one Present entry per record key (and its tree invariants must hold);
    pseudo-deleted entries must not shadow live keys. Empty = consistent.
    Call when no transaction is active. *)

val lifecycle_errors : ?final:bool -> t -> string list
(** The index-lifecycle oracle, for quiescent points (after recovery or at
    the end of a run). Always: no [Disabled] index is cataloged, and every
    [Write_only] index has durable build progress. With [final] (default
    false), additionally: [Readable] iff phase [Ready], and a [Readable]
    index has no leftover progress record, no sealed-scan-range record,
    and no undrained side-file. Empty = consistent. *)
