(* Live progress of one online index build, published by [Ib] and queried
   through [Engine.build_progress]. One value per index build; it survives
   for as long as the engine instance (a crash+restart creates a fresh one
   during [resume_builds]). *)

type phase = Init | Quiesce | Scan | Merge | Insert | Bulk | Drain | Ready

(* Monotonic progress order. Insert (NSF) and Bulk (SF) are alternatives
   at the same stage of the pipeline, so they share a rank. *)
let rank = function
  | Init -> 0
  | Quiesce -> 1
  | Scan -> 2
  | Merge -> 3
  | Insert | Bulk -> 4
  | Drain -> 5
  | Ready -> 6

let phase_name = function
  | Init -> "init"
  | Quiesce -> "quiesce"
  | Scan -> "scan"
  | Merge -> "merge"
  | Insert -> "insert"
  | Bulk -> "bulk"
  | Drain -> "drain"
  | Ready -> "ready"

type t = {
  index_id : int;
  algorithm : string; (* "nsf" | "sf" | "via-primary" *)
  mutable phase : phase;
  mutable scan_rid : string; (* Current-RID of the scan, "" before scanning *)
  mutable keys_processed : int;
  mutable backlog : int; (* side-file entries appended but not yet drained *)
  mutable checkpoints : int;
  mutable history : (phase * int) list; (* (phase, step), newest first *)
  mutable phase_span : int; (* open trace span of the current phase (0 none) *)
  resources : Oib_obs.Resource.t; (* total cost charged to this build *)
  mutable cost_marks : (phase * Oib_obs.Resource.t) list;
      (* resource totals captured at each phase entry, newest first *)
}

let create ~index_id ~algorithm =
  let resources = Oib_obs.Resource.create () in
  {
    index_id;
    algorithm;
    phase = Init;
    scan_rid = "";
    keys_processed = 0;
    backlog = 0;
    checkpoints = 0;
    history = [ (Init, 0) ];
    phase_span = 0;
    resources;
    cost_marks = [ (Init, Oib_obs.Resource.snapshot resources) ];
  }

let set_phase t ~step phase =
  if phase <> t.phase then begin
    t.phase <- phase;
    t.history <- (phase, step) :: t.history;
    t.cost_marks <- (phase, Oib_obs.Resource.snapshot t.resources) :: t.cost_marks
  end

let history t = List.rev t.history

(* Per-phase deltas, oldest first: each mark is the running total at
   phase entry, so a phase's cost is the next mark minus its own; the
   current phase runs to the live total. *)
let phase_costs t =
  let rec go = function
    | [] -> []
    | [ (ph, at) ] -> [ (ph, Oib_obs.Resource.diff ~after:t.resources ~before:at) ]
    | (ph, at) :: ((_, next_at) :: _ as rest) ->
      (ph, Oib_obs.Resource.diff ~after:next_at ~before:at) :: go rest
  in
  go (List.rev t.cost_marks)

let pp ppf t =
  Format.fprintf ppf "index %d [%s] %s: keys=%d backlog=%d ckpts=%d%s"
    t.index_id t.algorithm (phase_name t.phase) t.keys_processed t.backlog
    t.checkpoints
    (if t.scan_rid = "" then "" else " rid=" ^ t.scan_rid)

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"index\":%d,\"algorithm\":\"%s\",\"phase\":\"%s\",\
        \"keys_processed\":%d,\"backlog\":%d,\"checkpoints\":%d,\
        \"history\":["
       t.index_id t.algorithm (phase_name t.phase) t.keys_processed t.backlog
       t.checkpoints);
  List.iteri
    (fun i (ph, step) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"phase\":\"%s\",\"step\":%d}" (phase_name ph) step))
    (history t);
  Buffer.add_string b "],\"cost\":";
  Buffer.add_string b (Oib_obs.Resource.to_json t.resources);
  Buffer.add_string b ",\"phase_costs\":[";
  List.iteri
    (fun i (ph, cost) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"phase\":\"%s\",\"cost\":%s}" (phase_name ph)
           (Oib_obs.Resource.to_json cost)))
    (phase_costs t);
  Buffer.add_string b "]}";
  Buffer.contents b
