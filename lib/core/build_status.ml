(* Live progress of one online index build, published by [Ib] and queried
   through [Engine.build_progress]. One value per index build; it survives
   for as long as the engine instance (a crash+restart creates a fresh one
   during [resume_builds]). *)

type phase = Init | Quiesce | Scan | Merge | Insert | Bulk | Drain | Ready

(* Monotonic progress order. Insert (NSF) and Bulk (SF) are alternatives
   at the same stage of the pipeline, so they share a rank. *)
let rank = function
  | Init -> 0
  | Quiesce -> 1
  | Scan -> 2
  | Merge -> 3
  | Insert | Bulk -> 4
  | Drain -> 5
  | Ready -> 6

let phase_name = function
  | Init -> "init"
  | Quiesce -> "quiesce"
  | Scan -> "scan"
  | Merge -> "merge"
  | Insert -> "insert"
  | Bulk -> "bulk"
  | Drain -> "drain"
  | Ready -> "ready"

type t = {
  index_id : int;
  algorithm : string; (* "nsf" | "sf" | "via-primary" *)
  mutable phase : phase;
  mutable scan_rid : string; (* Current-RID of the scan, "" before scanning *)
  mutable keys_processed : int;
  mutable backlog : int; (* side-file entries appended but not yet drained *)
  mutable checkpoints : int;
  mutable history : (phase * int) list; (* (phase, step), newest first *)
  mutable phase_span : int; (* open trace span of the current phase (0 none) *)
}

let create ~index_id ~algorithm =
  {
    index_id;
    algorithm;
    phase = Init;
    scan_rid = "";
    keys_processed = 0;
    backlog = 0;
    checkpoints = 0;
    history = [ (Init, 0) ];
    phase_span = 0;
  }

let set_phase t ~step phase =
  if phase <> t.phase then begin
    t.phase <- phase;
    t.history <- (phase, step) :: t.history
  end

let history t = List.rev t.history

let pp ppf t =
  Format.fprintf ppf "index %d [%s] %s: keys=%d backlog=%d ckpts=%d%s"
    t.index_id t.algorithm (phase_name t.phase) t.keys_processed t.backlog
    t.checkpoints
    (if t.scan_rid = "" then "" else " rid=" ^ t.scan_rid)

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"index\":%d,\"algorithm\":\"%s\",\"phase\":\"%s\",\
        \"keys_processed\":%d,\"backlog\":%d,\"checkpoints\":%d,\
        \"history\":["
       t.index_id t.algorithm (phase_name t.phase) t.keys_processed t.backlog
       t.checkpoints);
  List.iteri
    (fun i (ph, step) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"phase\":\"%s\",\"step\":%d}" (phase_name ph) step))
    (history t);
  Buffer.add_string b "]}";
  Buffer.contents b
