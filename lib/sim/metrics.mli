(** Global event counters.

    The paper's performance arguments are about counts — log records written,
    tree traversals avoided, latch acquisitions, pages read and written,
    lock calls saved. Each engine instance owns a [Metrics.t] and every
    subsystem bumps the relevant counter; the benchmark harness reads them
    to reproduce the Section 4 comparison quantitatively. *)

type t = {
  mutable registry : Oib_obs.Registry.t option;
      (** attached central registry, if any (see {!attach_registry}) *)
  mutable fiber_source : unit -> int;
      (** current-fiber id for account attribution; engine wires this to
          the scheduler, [-1] outside any fiber *)
  accounts : (int, Oib_obs.Resource.t) Hashtbl.t;
      (** fiber id -> resource account currently charged for that fiber *)
  mutable page_reads : int;
  mutable page_writes : int;
  mutable sequential_reads : int;  (** reads satisfied by sequential prefetch *)
  mutable log_records : int;
  mutable log_bytes : int;
  mutable log_flushes : int;
  mutable latch_acquires : int;
  mutable latch_waits : int;
  mutable lock_calls : int;
  mutable lock_waits : int;
  mutable tree_traversals : int;
  mutable fast_path_inserts : int;
      (** index inserts that skipped the root-to-leaf traversal (remembered
          path or bottom-up build) *)
  mutable page_splits : int;
  mutable keys_inserted : int;
  mutable keys_rejected_duplicate : int;
  mutable pseudo_deletes : int;
  mutable sidefile_appends : int;
  mutable txn_commits : int;
  mutable txn_aborts : int;
  mutable txn_stall_steps : int;
      (** scheduler steps transactions spent blocked on locks/latches *)
}

val create : unit -> t

val to_assoc : t -> (string * int) list
(** Every counter as [(name, value)], in declaration order. [reset],
    [snapshot], [diff], [pp] and [to_json] are all derived from the same
    field list, so adding a counter is a one-line change. *)

val reset : t -> unit

val snapshot : t -> t
(** A deep copy: an independent [t] whose counters no longer alias [t]'s.
    (All fields are mutable, so a [{ t with ... }] functional update would
    still share nothing — but only by accident; the copy here is explicit
    and complete by construction over the field list.) *)

val diff : after:t -> before:t -> t
val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One flat JSON object of counter name -> value. *)

(** {2 Registry bridge}

    The counter record predates {!Oib_obs.Registry}; [attach_registry]
    bridges it in by registering every counter as a derived gauge named
    [metrics.<counter>], so registry readers (sampler, bench, JSONL
    sinks) see live values while the hot-path increment sites stay plain
    field mutations. *)

val attach_registry : t -> Oib_obs.Registry.t -> unit

val registry : t -> Oib_obs.Registry.t option

val observe_window : t -> string -> int -> unit
(** Observe into a named window of the attached registry; no-op when no
    registry is attached or the window does not exist. Lets deep
    subsystems (e.g. the transaction manager feeding [fg.latency])
    report without holding a registry handle. *)

(** {2 Per-fiber resource accounts}

    Subsystems charge costs to "whoever is running": {!charge} resolves
    the current fiber (via [fiber_source]) to a registered
    {!Oib_obs.Resource.t} and applies the update, and is a cheap no-op
    when no accounts are registered. The index builder registers each
    build fiber against its build's account; registrations nest
    (shadowing), and {!unregister_account} pops to the outer one. *)

val set_fiber_source : t -> (unit -> int) -> unit

val register_account : t -> fiber:int -> Oib_obs.Resource.t -> unit

val unregister_account : t -> fiber:int -> unit

val clear_accounts : t -> unit
(** Drop every registration (crash path: the fibers are gone). *)

val account : t -> Oib_obs.Resource.t option
(** The account charged for the current fiber, if any. *)

val charge : t -> (Oib_obs.Resource.t -> unit) -> unit
(** Apply [f] to the current fiber's account; no-op without one. *)
