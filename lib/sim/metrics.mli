(** Global event counters.

    The paper's performance arguments are about counts — log records written,
    tree traversals avoided, latch acquisitions, pages read and written,
    lock calls saved. Each engine instance owns a [Metrics.t] and every
    subsystem bumps the relevant counter; the benchmark harness reads them
    to reproduce the Section 4 comparison quantitatively. *)

type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable sequential_reads : int;  (** reads satisfied by sequential prefetch *)
  mutable log_records : int;
  mutable log_bytes : int;
  mutable log_flushes : int;
  mutable latch_acquires : int;
  mutable latch_waits : int;
  mutable lock_calls : int;
  mutable lock_waits : int;
  mutable tree_traversals : int;
  mutable fast_path_inserts : int;
      (** index inserts that skipped the root-to-leaf traversal (remembered
          path or bottom-up build) *)
  mutable page_splits : int;
  mutable keys_inserted : int;
  mutable keys_rejected_duplicate : int;
  mutable pseudo_deletes : int;
  mutable sidefile_appends : int;
  mutable txn_commits : int;
  mutable txn_aborts : int;
  mutable txn_stall_steps : int;
      (** scheduler steps transactions spent blocked on locks/latches *)
}

val create : unit -> t

val to_assoc : t -> (string * int) list
(** Every counter as [(name, value)], in declaration order. [reset],
    [snapshot], [diff], [pp] and [to_json] are all derived from the same
    field list, so adding a counter is a one-line change. *)

val reset : t -> unit

val snapshot : t -> t
(** A deep copy: an independent [t] whose counters no longer alias [t]'s.
    (All fields are mutable, so a [{ t with ... }] functional update would
    still share nothing — but only by accident; the copy here is explicit
    and complete by construction over the field list.) *)

val diff : after:t -> before:t -> t
val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One flat JSON object of counter name -> value. *)
