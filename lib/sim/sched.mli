(** Deterministic cooperative scheduler.

    The paper's algorithms are defined by races between the index builder
    and ordinary transactions. Instead of OS threads we run every process as
    a fiber (an OCaml 5 effects-based coroutine) and let a seeded scheduler
    pick which runnable fiber advances next. Fibers yield voluntarily at
    latch, lock, and I/O boundaries — exactly the points where a real DBMS
    can be preempted in a way that matters to these algorithms — so every
    problematic interleaving is reachable, and reproducible from the seed.

    A simulated system failure ("crash") abandons all fibers mid-step;
    volatile state is lost while anything recorded in durable structures
    (the flushed log, flushed pages, checkpoints) survives for restart. *)

type t

type fiber_id = int

exception Deadlock of string
(** Raised by {!run} when live fibers remain but none is runnable. *)

exception Crashed
(** Raised by {!run} when a crash was requested (by {!request_crash} or a
    step trap installed with {!set_crash_trap}). *)

val create : ?seed:int -> ?trace:Oib_obs.Trace.t -> unit -> t
(** [trace] (default {!Oib_obs.Trace.null}) becomes the engine's
    observability hub: the scheduler wires its step clock and current
    fiber into it, emits fiber/crash events, and dumps the flight
    recorder on {!Deadlock} or {!Crashed}. Subsystems reach it through
    {!trace}. *)

val trace : t -> Oib_obs.Trace.t

val spawn : t -> ?name:string -> (unit -> unit) -> fiber_id
(** Register a new fiber. It does not start executing until {!run}. *)

val run : t -> unit
(** Execute fibers until all complete. Raises {!Deadlock} or {!Crashed}. *)

val yield : t -> unit
(** Called from inside a fiber: give the scheduler a chance to interleave.
    Outside any fiber this is a no-op, so engine code can be reused in
    non-simulated unit tests. *)

val suspend : t -> ((unit -> unit) -> unit) -> unit
(** [suspend t register] blocks the calling fiber. [register] receives a
    [resume] thunk; invoking [resume] (from another fiber or scheduler
    context) makes the suspended fiber runnable again. *)

val current_fiber : t -> fiber_id option
(** Id of the running fiber, if called from inside one. *)

val fiber_name : t -> fiber_id -> string

val steps : t -> int
(** Number of fiber steps executed so far (the logical clock). *)

val live_fibers : t -> int

type fiber_state = Running | Runnable | Blocked

val fiber_states : t -> (fiber_id * string * fiber_state) list
(** One [(id, name, state)] row per live fiber, sorted by id — the
    profiler's sampling view. [Running] is the fiber the current step is
    charged to (during step hooks, the fiber about to run); [Runnable]
    fibers are parked in the run queue awaiting dispatch; [Blocked]
    fibers are suspended on a latch, lock, condition or I/O completion. *)

val request_crash : t -> unit
(** Make {!run} raise {!Crashed} before the next step. *)

val set_crash_trap : t -> (int -> bool) -> unit
(** [set_crash_trap t f] — before each step, [f steps] is consulted; if it
    returns true the scheduler crashes. Used for failure-injection sweeps. *)

val clear_crash_trap : t -> unit

val set_tick : t -> every:int -> (int -> unit) -> unit
(** [set_tick t ~every f] — call [f steps] before every [every]-th step
    (one hook at a time; replaces any previous). The hook runs outside any
    fiber, so trace events it emits are stamped as ["main"]. Drives the
    periodic metrics sampler. [every] must be positive. *)

val clear_tick : t -> unit

val add_step_hook : t -> (int -> unit) -> int
(** [add_step_hook t f] — call [f steps] before every step, outside any
    fiber. Unlike {!set_tick} (one slot, owned by the metrics sampler),
    any number of step hooks may coexist; the returned id removes this
    one. The failure-injection runner uses a step hook to fire in-flight
    faults (system checkpoints, log truncation, backups) at generated
    steps while crash traps are armed independently. *)

val remove_step_hook : t -> int -> unit

(** Condition variables for building blocking primitives (latches, locks,
    bounded queues) on top of the scheduler. *)
module Cond : sig
  type sched := t
  type t

  val create : sched -> t
  val wait : t -> unit
  (** Block the calling fiber until signalled. *)

  val signal : t -> unit
  (** Wake one waiter (FIFO). No-op if none. *)

  val broadcast : t -> unit
  (** Wake all waiters. *)

  val waiters : t -> int
end
