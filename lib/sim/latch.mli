(** Share / exclusive latches.

    A latch provides physical consistency of a page while it is examined or
    modified (paper §1.1, footnote 2): readers take S, updaters take X. It
    is much cheaper than a lock — no deadlock detection, no owner table —
    and is held only across short critical sections. Blocking integrates
    with the cooperative scheduler; acquisition order is FIFO to avoid
    starvation. *)

type mode = S | X

type t

val create :
  ?name:string -> ?role:string -> ?page:int -> Sched.t -> Metrics.t -> t
(** [role] names the owning structure ("Heap_file", "Btree", …) for the
    sanitizer's latch-order graph; [page] is the guarded buffer-pool page
    id (or [-1]), letting the sanitizer treat latched sections as page
    accesses. Both default to inert values. *)

val uid : t -> int
(** Process-wide unique identity (never reused, even across engine
    incarnations) — the sanitizer's lockset element. *)

val role : t -> string

val trace : t -> Oib_obs.Trace.t
(** The observability hub of the latch's scheduler. *)

val acquire : t -> mode -> unit
(** Block until the latch is available in [mode]. S is compatible with S;
    X is compatible with nothing. *)

val release : t -> mode -> unit
(** Release a previously acquired latch. The [mode] must match what was
    acquired. *)

val try_acquire : t -> mode -> bool
(** Non-blocking variant: true on success. *)

val with_latch : t -> mode -> (unit -> 'a) -> 'a
(** [with_latch t m f] acquires, runs [f], releases (also on exception). *)

val holders : t -> int
(** Number of current holders (0 or more S, or exactly 1 X). *)

val is_free : t -> bool
