module Trace = Oib_obs.Trace
module Event = Oib_obs.Event
module Probe = Oib_obs.Probe

type mode = S | X

let mode_name = function S -> "S" | X -> "X"

type t = {
  sched : Sched.t;
  metrics : Metrics.t;
  name : string;
  uid : int;
  role : string;
  page : int;
  mutable s_holders : int;
  mutable x_held : bool;
  mutable holder_ids : Sched.fiber_id list; (* oldest grant first *)
  mutable waiters : (mode * Sched.fiber_id * (unit -> unit)) list;
      (* FIFO, head = oldest *)
}

(* Process-wide identity for the sanitizer's locksets: two latch objects
   are never "the same lock", even across engine incarnations. *)
let next_uid = ref 0

let create ?(name = "latch") ?(role = "latch") ?(page = -1) sched metrics =
  let uid = !next_uid in
  incr next_uid;
  { sched; metrics; name; uid; role; page; s_holders = 0; x_held = false;
    holder_ids = []; waiters = [] }

let uid t = t.uid

let role t = t.role

let trace t = Sched.trace t.sched

let compatible t mode =
  match mode with
  | S -> not t.x_held
  | X -> (not t.x_held) && t.s_holders = 0

let grant t mode ~fiber =
  (match mode with
  | S -> t.s_holders <- t.s_holders + 1
  | X -> t.x_held <- true);
  t.holder_ids <- t.holder_ids @ [ fiber ]

let current_id t =
  match Sched.current_fiber t.sched with Some id -> id | None -> -1

(* who to blame for a wait: the current holders, oldest grant first *)
let holder_names t =
  t.holder_ids
  |> List.map (fun id -> if id < 0 then "main" else Sched.fiber_name t.sched id)
  |> String.concat ","

let probe_acq t mode =
  let tr = Sched.trace t.sched in
  if Trace.probing tr then
    Trace.probe_emit tr
      (Probe.Latch_acq
         { uid = t.uid; role = t.role; page = t.page; excl = mode = X })

(* Wake the longest-waiting compatible requests: an X waiter alone, or a
   maximal prefix run of S waiters. FIFO granting prevents starvation of
   writers by a stream of readers. *)
let wake t =
  let rec go () =
    match t.waiters with
    | (mode, fiber, resume) :: rest when compatible t mode ->
      t.waiters <- rest;
      grant t mode ~fiber;
      resume ();
      (* After granting an S, further queued S requests may also proceed;
         after an X nothing else is compatible. *)
      if mode = S then go ()
    | _ -> ()
  in
  go ()

let acquire t mode =
  t.metrics.latch_acquires <- t.metrics.latch_acquires + 1;
  let tr = Sched.trace t.sched in
  if compatible t mode && t.waiters = [] then begin
    grant t mode ~fiber:(current_id t);
    probe_acq t mode;
    Trace.observe tr "latch_wait" 0
  end
  else begin
    t.metrics.latch_waits <- t.metrics.latch_waits + 1;
    let t0 = Sched.steps t.sched in
    if Trace.tracing tr then
      Trace.emit tr
        (Event.Latch_wait
           { latch = t.name; mode = mode_name mode;
             holders = holder_names t });
    let span = Trace.span_begin tr ~cat:"latch" ~name:t.name in
    let fiber = current_id t in
    Sched.suspend t.sched (fun resume ->
        t.waiters <- t.waiters @ [ (mode, fiber, resume) ]);
    (* granted by [wake] before we were resumed *)
    probe_acq t mode;
    let waited = Sched.steps t.sched - t0 in
    Trace.observe tr "latch_wait" waited;
    Metrics.charge t.metrics (fun (r : Oib_obs.Resource.t) ->
        r.latch_wait_steps <- r.latch_wait_steps + waited);
    if Trace.tracing tr then
      Trace.emit tr
        (Event.Latch_acquired { latch = t.name; mode = mode_name mode; waited });
    Trace.span_end tr span
  end

let try_acquire t mode =
  if compatible t mode && t.waiters = [] then begin
    t.metrics.latch_acquires <- t.metrics.latch_acquires + 1;
    grant t mode ~fiber:(current_id t);
    probe_acq t mode;
    Trace.observe (Sched.trace t.sched) "latch_wait" 0;
    true
  end
  else false

let release t mode =
  let tr = Sched.trace t.sched in
  if Trace.tracing tr then
    Trace.emit tr
      (Event.Latch_released { latch = t.name; mode = mode_name mode });
  if Trace.probing tr then
    Trace.probe_emit tr
      (Probe.Latch_rel
         { uid = t.uid; role = t.role; page = t.page; excl = mode = X });
  (match mode with
  | S ->
    assert (t.s_holders > 0);
    t.s_holders <- t.s_holders - 1
  | X ->
    assert t.x_held;
    t.x_held <- false);
  (* drop the releasing fiber's grant; on ownership transfer (acquired by
     one fiber, released by another — legal on btree/heap_file) the
     releaser isn't recorded, so retire the oldest grant instead *)
  let me = current_id t in
  let rec drop_first = function
    | [] -> []
    | id :: rest -> if id = me then rest else id :: drop_first rest
  in
  t.holder_ids <-
    (if List.mem me t.holder_ids then drop_first t.holder_ids
     else match t.holder_ids with [] -> [] | _ :: rest -> rest);
  wake t

let with_latch t mode f =
  acquire t mode;
  match f () with
  | v ->
    release t mode;
    v
  | exception e ->
    release t mode;
    raise e

let holders t = t.s_holders + if t.x_held then 1 else 0

let is_free t = (not t.x_held) && t.s_holders = 0
