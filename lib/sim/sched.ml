open Effect
open Effect.Deep

type fiber_id = int

exception Deadlock of string
exception Crashed

type _ Effect.t +=
  | Yield : unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t

type fiber_state = Running | Runnable | Blocked

type t = {
  rng : Oib_util.Rng.t;
  trace : Oib_obs.Trace.t;
  mutable runq : (fiber_id * (unit -> unit)) list;
  names : (fiber_id, string) Hashtbl.t;
  mutable next_id : int;
  mutable live : int;
  live_set : (fiber_id, unit) Hashtbl.t;
  mutable steps : int;
  mutable current : fiber_id option;
  mutable pending : fiber_id option;
      (* chosen by [take_random] but not yet running: step hooks fire in
         this window, and the profiler charges the step to this fiber *)
  mutable crash_requested : bool;
  mutable crash_trap : (int -> bool) option;
  mutable tick_every : int; (* 0 = no tick hook *)
  mutable on_tick : int -> unit;
  mutable step_hooks : (int * (int -> unit)) list; (* newest first *)
  mutable next_hook_id : int;
}

let fiber_name t id =
  match Hashtbl.find_opt t.names id with
  | Some n -> n
  | None -> Printf.sprintf "fiber-%d" id

let create ?(seed = 42) ?(trace = Oib_obs.Trace.null) () =
  let t =
    {
      rng = Oib_util.Rng.create seed;
      trace;
      runq = [];
      names = Hashtbl.create 16;
      next_id = 0;
      live = 0;
      live_set = Hashtbl.create 16;
      steps = 0;
      current = None;
      pending = None;
      crash_requested = false;
      crash_trap = None;
      tick_every = 0;
      on_tick = ignore;
      step_hooks = [];
      next_hook_id = 0;
    }
  in
  (* stamp every event with this scheduler's step clock and fiber *)
  if not (Oib_obs.Trace.is_null trace) then begin
    Oib_obs.Trace.set_clock trace (fun () -> t.steps);
    Oib_obs.Trace.set_fiber trace (fun () ->
        Option.map (fun id -> (id, fiber_name t id)) t.current)
  end;
  t

let trace t = t.trace

let current_fiber t = t.current

let steps t = t.steps

let live_fibers t = t.live

let request_crash t = t.crash_requested <- true

let set_crash_trap t f = t.crash_trap <- Some f

let clear_crash_trap t = t.crash_trap <- None

let set_tick t ~every f =
  if every <= 0 then invalid_arg "Sched.set_tick: every must be positive";
  t.tick_every <- every;
  t.on_tick <- f

let clear_tick t =
  t.tick_every <- 0;
  t.on_tick <- ignore

let add_step_hook t f =
  let id = t.next_hook_id in
  t.next_hook_id <- id + 1;
  t.step_hooks <- (id, f) :: t.step_hooks;
  id

let remove_step_hook t id =
  t.step_hooks <- List.filter (fun (i, _) -> i <> id) t.step_hooks

let enqueue t id thunk = t.runq <- (id, thunk) :: t.runq

(* Run [f] as a fiber body under the effect handler. The handler re-enqueues
   the continuation on Yield and hands a resume thunk to the registrar on
   Suspend. *)
let start_fiber t id f =
  match_with f ()
    {
      retc =
        (fun () ->
          t.live <- t.live - 1;
          Hashtbl.remove t.live_set id;
          (* the exiting fiber's effects become visible to whoever runs
             after the scheduler returns (join-to-main HB edge) *)
          if Oib_obs.Trace.probing t.trace then
            Oib_obs.Trace.probe_emit t.trace Oib_obs.Probe.Fiber_exit);
      exnc =
        (fun exn ->
          t.live <- t.live - 1;
          Hashtbl.remove t.live_set id;
          raise exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                enqueue t id (fun () -> continue k ()))
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                register (fun () ->
                    (* every blocking primitive (latch wake, lock-queue
                       pump, Cond signal/broadcast) resumes its waiter
                       through this thunk, so stamping the resumer here
                       captures all synchronizes-with edges at once *)
                    if Oib_obs.Trace.probing t.trace then
                      Oib_obs.Trace.probe_emit t.trace
                        (Oib_obs.Probe.Resume { fiber = id });
                    enqueue t id (fun () -> continue k ())))
          | _ -> None);
    }

let spawn t ?name f =
  let id = t.next_id in
  t.next_id <- id + 1;
  (match name with Some n -> Hashtbl.replace t.names id n | None -> ());
  t.live <- t.live + 1;
  Hashtbl.replace t.live_set id ();
  if Oib_obs.Trace.tracing t.trace then
    Oib_obs.Trace.emit t.trace
      (Oib_obs.Event.Fiber_spawn { fiber = id; name = fiber_name t id });
  if Oib_obs.Trace.probing t.trace then
    Oib_obs.Trace.probe_emit t.trace (Oib_obs.Probe.Spawn { child = id });
  enqueue t id (fun () -> start_fiber t id f);
  id

let in_fiber t = t.current <> None

let yield t =
  if in_fiber t then begin
    if Oib_obs.Trace.probing t.trace then
      Oib_obs.Trace.probe_emit t.trace Oib_obs.Probe.Yield;
    perform Yield
  end

let suspend t register =
  if in_fiber t then begin
    if Oib_obs.Trace.probing t.trace then
      Oib_obs.Trace.probe_emit t.trace Oib_obs.Probe.Yield;
    perform (Suspend register)
  end
  else invalid_arg "Sched.suspend: not inside a fiber"

(* Remove and return a uniformly random element of the run queue. Random
   choice (rather than FIFO) is what makes the adversarial interleavings of
   the paper reachable; the seed makes them reproducible. *)
let take_random t =
  match t.runq with
  | [] -> None
  | q ->
    let n = List.length q in
    let i = Oib_util.Rng.int t.rng n in
    let rec split k acc = function
      | [] -> assert false
      | x :: rest ->
        if k = i then (x, List.rev_append acc rest)
        else split (k + 1) (x :: acc) rest
    in
    let chosen, rest = split 0 [] q in
    t.runq <- rest;
    Some chosen

(* One row per live fiber, sorted by id. Running = the fiber this step
   was charged to (pending during step hooks, current inside the fiber);
   Runnable = parked in the run queue; Blocked = live but neither, i.e.
   suspended on a latch / lock / cond / io completion. *)
let fiber_states t =
  Hashtbl.fold
    (fun id () acc ->
      let state =
        if t.pending = Some id || t.current = Some id then Running
        else if List.mem_assoc id t.runq then Runnable
        else Blocked
      in
      (id, fiber_name t id, state) :: acc)
    t.live_set []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let crash_now t =
  Oib_obs.Trace.failure t.trace
    ~reason:(Printf.sprintf "crash at step %d" t.steps);
  raise Crashed

let check_crash t =
  if t.crash_requested then crash_now t;
  match t.crash_trap with
  | Some f when f t.steps ->
    t.crash_requested <- true;
    crash_now t
  | _ -> ()

let run t =
  let rec loop () =
    check_crash t;
    match take_random t with
    | None ->
      if t.live > 0 then begin
        let stuck =
          Hashtbl.fold (fun _ n acc -> n :: acc) t.names []
          |> String.concat ", "
        in
        let msg = Printf.sprintf "%d fibers blocked (%s)" t.live stuck in
        Oib_obs.Trace.failure t.trace ~reason:("deadlock: " ^ msg);
        raise (Deadlock msg)
      end
    | Some (id, thunk) ->
      t.steps <- t.steps + 1;
      t.pending <- Some id;
      (* the hook runs outside any fiber, so anything it emits is stamped
         as "main" *)
      if t.tick_every > 0 && t.steps mod t.tick_every = 0 then
        t.on_tick t.steps;
      (match t.step_hooks with
      | [] -> ()
      | hooks ->
        (* snapshot: a hook may remove itself (or install others) *)
        List.iter (fun (_, f) -> f t.steps) hooks);
      t.current <- Some id;
      t.pending <- None;
      let finally () = t.current <- None in
      (try thunk ()
       with e ->
         finally ();
         raise e);
      finally ();
      loop ()
  in
  loop ()

module Cond = struct
  type sched = t

  type t = { sched : sched; mutable q : (unit -> unit) list }

  let create sched = { sched; q = [] }

  let wait c = suspend c.sched (fun resume -> c.q <- c.q @ [ resume ])

  let signal c =
    match c.q with
    | [] -> ()
    | resume :: rest ->
      c.q <- rest;
      resume ()

  let broadcast c =
    let waiters = c.q in
    c.q <- [];
    List.iter (fun resume -> resume ()) waiters

  let waiters c = List.length c.q
end
