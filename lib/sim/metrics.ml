type t = {
  (* observability plumbing — not counters; [fields] below never sees
     these, so snapshot/diff/reset leave them alone by construction. *)
  mutable registry : Oib_obs.Registry.t option;
  mutable fiber_source : unit -> int;
  accounts : (int, Oib_obs.Resource.t) Hashtbl.t;
  (* counters *)
  mutable page_reads : int;
  mutable page_writes : int;
  mutable sequential_reads : int;
  mutable log_records : int;
  mutable log_bytes : int;
  mutable log_flushes : int;
  mutable latch_acquires : int;
  mutable latch_waits : int;
  mutable lock_calls : int;
  mutable lock_waits : int;
  mutable tree_traversals : int;
  mutable fast_path_inserts : int;
  mutable page_splits : int;
  mutable keys_inserted : int;
  mutable keys_rejected_duplicate : int;
  mutable pseudo_deletes : int;
  mutable sidefile_appends : int;
  mutable txn_commits : int;
  mutable txn_aborts : int;
  mutable txn_stall_steps : int;
}

let create () =
  {
    registry = None;
    fiber_source = (fun () -> -1);
    accounts = Hashtbl.create 8;
    page_reads = 0;
    page_writes = 0;
    sequential_reads = 0;
    log_records = 0;
    log_bytes = 0;
    log_flushes = 0;
    latch_acquires = 0;
    latch_waits = 0;
    lock_calls = 0;
    lock_waits = 0;
    tree_traversals = 0;
    fast_path_inserts = 0;
    page_splits = 0;
    keys_inserted = 0;
    keys_rejected_duplicate = 0;
    pseudo_deletes = 0;
    sidefile_appends = 0;
    txn_commits = 0;
    txn_aborts = 0;
    txn_stall_steps = 0;
  }

(* The single source of truth for every derived operation. Adding a
   counter = add the record field (and its zero in [create]) plus one
   line here; [reset], [snapshot], [diff], [pp], [to_assoc] and
   [to_json] all follow. *)
let fields : (string * (t -> int) * (t -> int -> unit)) list =
  [
    ("page_reads", (fun t -> t.page_reads), fun t v -> t.page_reads <- v);
    ("page_writes", (fun t -> t.page_writes), fun t v -> t.page_writes <- v);
    ( "sequential_reads",
      (fun t -> t.sequential_reads),
      fun t v -> t.sequential_reads <- v );
    ("log_records", (fun t -> t.log_records), fun t v -> t.log_records <- v);
    ("log_bytes", (fun t -> t.log_bytes), fun t v -> t.log_bytes <- v);
    ("log_flushes", (fun t -> t.log_flushes), fun t v -> t.log_flushes <- v);
    ( "latch_acquires",
      (fun t -> t.latch_acquires),
      fun t v -> t.latch_acquires <- v );
    ("latch_waits", (fun t -> t.latch_waits), fun t v -> t.latch_waits <- v);
    ("lock_calls", (fun t -> t.lock_calls), fun t v -> t.lock_calls <- v);
    ("lock_waits", (fun t -> t.lock_waits), fun t v -> t.lock_waits <- v);
    ( "tree_traversals",
      (fun t -> t.tree_traversals),
      fun t v -> t.tree_traversals <- v );
    ( "fast_path_inserts",
      (fun t -> t.fast_path_inserts),
      fun t v -> t.fast_path_inserts <- v );
    ("page_splits", (fun t -> t.page_splits), fun t v -> t.page_splits <- v);
    ( "keys_inserted",
      (fun t -> t.keys_inserted),
      fun t v -> t.keys_inserted <- v );
    ( "keys_rejected_duplicate",
      (fun t -> t.keys_rejected_duplicate),
      fun t v -> t.keys_rejected_duplicate <- v );
    ( "pseudo_deletes",
      (fun t -> t.pseudo_deletes),
      fun t v -> t.pseudo_deletes <- v );
    ( "sidefile_appends",
      (fun t -> t.sidefile_appends),
      fun t v -> t.sidefile_appends <- v );
    ("txn_commits", (fun t -> t.txn_commits), fun t v -> t.txn_commits <- v);
    ("txn_aborts", (fun t -> t.txn_aborts), fun t v -> t.txn_aborts <- v);
    ( "txn_stall_steps",
      (fun t -> t.txn_stall_steps),
      fun t v -> t.txn_stall_steps <- v );
  ]

let to_assoc t = List.map (fun (name, get, _) -> (name, get t)) fields

let reset t = List.iter (fun (_, _, set) -> set t 0) fields

(* An explicit field-by-field copy. All fields are mutable ints, so
   copying through [fields] is complete by construction — unlike the old
   [{ t with page_reads = t.page_reads }] idiom, which would silently
   alias any future non-listed field. *)
let snapshot t =
  let s = create () in
  List.iter (fun (_, get, set) -> set s (get t)) fields;
  s

let diff ~after ~before =
  let d = create () in
  List.iter (fun (_, get, set) -> set d (get after - get before)) fields;
  d

(* Layout kept close to the historical hand-written pp: grouped lines,
   short labels. *)
let pp_labels =
  [
    ("page_reads", "page_reads");
    ("page_writes", "page_writes");
    ("sequential_reads", "seq_reads");
    ("log_records", "log_records");
    ("log_bytes", "log_bytes");
    ("log_flushes", "log_flushes");
    ("latch_acquires", "latch_acquires");
    ("latch_waits", "latch_waits");
    ("lock_calls", "lock_calls");
    ("lock_waits", "lock_waits");
    ("tree_traversals", "traversals");
    ("fast_path_inserts", "fast_path");
    ("page_splits", "splits");
    ("keys_inserted", "keys_inserted");
    ("keys_rejected_duplicate", "dup_rejected");
    ("pseudo_deletes", "pseudo_deletes");
    ("sidefile_appends", "sidefile");
    ("txn_commits", "commits");
    ("txn_aborts", "aborts");
    ("txn_stall_steps", "stall");
  ]

let line_breaks = [ "log_records"; "latch_acquires"; "tree_traversals";
                    "keys_inserted"; "txn_commits" ]

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then
        if List.mem name line_breaks then Format.fprintf ppf "@,"
        else Format.fprintf ppf " ";
      Format.fprintf ppf "%s=%d" (List.assoc name pp_labels) v)
    (to_assoc t);
  Format.fprintf ppf "@]"

(* --- registry bridge ------------------------------------------------- *)

let attach_registry t reg =
  t.registry <- Some reg;
  (* Each counter becomes a derived gauge reading the record field, so
     the registry (and everything sampling it) sees live values without
     touching the hot-path [t.field <- t.field + 1] increment sites. *)
  List.iter
    (fun (name, get, _) ->
      Oib_obs.Registry.gauge reg ("metrics." ^ name) (fun () -> get t))
    fields

let registry t = t.registry

let observe_window t name v =
  match t.registry with
  | Some reg -> Oib_obs.Registry.observe_window reg name v
  | None -> ()

(* --- per-fiber resource accounts ------------------------------------- *)

let set_fiber_source t f = t.fiber_source <- f

let register_account t ~fiber r =
  (* Hashtbl.add, not replace: nested registrations shadow and
     [unregister_account] pops back to the outer account. *)
  Hashtbl.add t.accounts fiber r

let unregister_account t ~fiber = Hashtbl.remove t.accounts fiber

let clear_accounts t = Hashtbl.reset t.accounts

let account t =
  if Hashtbl.length t.accounts = 0 then None
  else Hashtbl.find_opt t.accounts (t.fiber_source ())

let charge t f =
  if Hashtbl.length t.accounts > 0 then
    match Hashtbl.find_opt t.accounts (t.fiber_source ()) with
    | Some r -> f r
    | None -> ()

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" name v))
    (to_assoc t);
  Buffer.add_char b '}';
  Buffer.contents b
