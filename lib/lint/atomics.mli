(** L12: atomic-section export.

    From the converged per-unit summaries, compute every function's
    maximal yield-free regions (runs of shared-state accesses that do
    not cross a suspension point) and classify every shared-state
    class key as [atomic] (no unit has a read→yield→write window over
    it) or [crossing] (some unit does — recorded {e before}
    [[@lint.allow]] suppression, so justified windows still count).

    The JSON export (schema [oib-lint-atomics/v1]) is the static half
    of the L12 twin: [oib-fuzz --sanitize --atomics FILE] diffs the
    interleavings the sanitizer actually observes against this table.
    A dynamically observed crossing that the static table calls atomic
    is a soundness bug in one of the two; a static crossing never
    observed dynamically is merely untested. *)

type region = {
  rg_start : int;  (** first line of the yield-free run *)
  rg_end : int;
  rg_reads : string list;  (** class keys read in the region, sorted *)
  rg_writes : string list;
}

type unit_atomics = {
  ua_unit : string;  (** ["Module.name"] *)
  ua_file : string;
  ua_yield : string;  (** converged may-yield level, human-readable *)
  ua_regions : region list;
}

type t = {
  at_crossing : string list;
      (** class keys with a stale-write window somewhere in the tree *)
  at_atomic : string list;
      (** accessed class keys that never cross a yield *)
  at_units : unit_atomics list;  (** units touching shared state, sorted *)
}

val compute : Callgraph.t -> t
(** Requires a graph already through {!Dataflow.solve_effects} and
    {!Dataflow.emit_pass} (regions need the converged yield sites). *)

val to_json : t -> string
(** Byte-stable: everything sorted, no timestamps. *)
