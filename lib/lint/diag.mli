(** Linter and sanitizer diagnostics.

    A diagnostic names the rule it enforces (static [L1..L6], runtime
    [SAN-*]), a source position (or a synthetic file for runtime
    findings), a one-line message, and a one-line fix hint. Static
    diagnostics can be suppressed by a [[@lint.allow "Ln: reason"]]
    attribute in scope at the offending site; the suppression keeps the
    diagnostic but records the written justification. Runtime findings
    carry a [site] key instead of a meaningful position. *)

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;  (** "L1".."L6", "SAN-race", "SAN-order", "SAN-wal", … *)
  msg : string;
  hint : string;  (** one-line fix hint *)
  site : string;
      (** runtime dedup key (page/site pair, cycle path, check name);
          [""] for static diagnostics *)
  suppressed : string option;
      (** [Some justification] when an in-scope allow matched *)
  trace : string list;
      (** interprocedural frames (innermost first) explaining how the
          finding crossed function boundaries; printed by [--explain] *)
}

val make :
  ?suppressed:string option ->
  ?site:string ->
  ?trace:string list ->
  file:string ->
  line:int ->
  col:int ->
  rule:string ->
  hint:string ->
  string ->
  t

val of_location :
  ?suppressed:string option ->
  ?site:string ->
  ?trace:string list ->
  rule:string ->
  hint:string ->
  Location.t ->
  string ->
  t

val to_string : t -> string
(** [file:line:col(site): [rule] msg (hint: ...)] — one line, no trailing
    newline; the [(site)] part only when a site is set. *)

val compare : t -> t -> int
(** Order by rule, file, line, column, site — the dedup key that makes
    reports byte-stable across runs. *)

val dedupe : t list -> t list
(** Sort by {!compare} and drop exact-key duplicates. *)
