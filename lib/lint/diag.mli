(** Linter diagnostics.

    A diagnostic names the protocol rule it enforces (L1..L6), the exact
    source position, a one-line message, and a one-line fix hint. A
    diagnostic can be suppressed by a [[@lint.allow "Ln: reason"]]
    attribute in scope at the offending site; the suppression keeps the
    diagnostic but records the written justification. *)

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;  (** "L1".."L6" *)
  msg : string;
  hint : string;  (** one-line fix hint *)
  suppressed : string option;
      (** [Some justification] when an in-scope allow matched *)
}

val make :
  ?suppressed:string option ->
  file:string ->
  line:int ->
  col:int ->
  rule:string ->
  hint:string ->
  string ->
  t

val of_location :
  ?suppressed:string option ->
  rule:string ->
  hint:string ->
  Location.t ->
  string ->
  t

val to_string : t -> string
(** [file:line:col: [rule] msg (hint: ...)] — one line, no trailing
    newline. *)

val compare : t -> t -> int
(** Order by file, line, column, rule — for stable reports. *)
