(* Worklist fixpoint engines over the call graph.

   [solve_effects] computes every unit's latch effect: all effects are
   reset to bottom (optimistic: "never returns"), then units are
   re-walked under a context that resolves callee effects from the
   current solution; a unit whose effect grows requeues its callers.
   Effect equality deliberately ignores location/origin metadata
   (Latch_effect.equal), and per-unit visits are capped, so the loop
   terminates even on recursion through approximated higher-order
   calls.

   [reach] is the generic may-property engine (may-block, may-acquire,
   may-append): BFS from seeded call sites, recording a human-readable
   witness chain for --explain.

   [mutators] finds lifecycle-mutator wrappers: a unit that forwards
   its own parameters into the (index, state) positions of a known
   mutator is itself a mutator with those parameter positions. *)

open Summary

let effect_resolver cg ~caller_module name =
  match Callgraph.lookup cg ~caller_module name with
  | [] -> None
  | us ->
    Some
      (List.fold_left
         (fun acc u -> Latch_effect.join acc u.u_effect)
         Latch_effect.bottom us)

let yield_resolver cg ~caller_module name =
  match Callgraph.lookup cg ~caller_module name with
  | [] -> None
  | us ->
    Some
      (List.fold_left
         (fun acc u -> Yield_effect.join acc u.u_yield)
         Yield_effect.bottom us)

let max_visits = 24

(* [order] permutes only the initial enqueue order; the fixpoint must be
   (and is, see the order-independence property test) insensitive to it *)
let solve_effects ?(order = fun us -> us) cg =
  let units = Callgraph.units cg in
  let ctx =
    { initial_ctx with
      x_effects =
        (fun ~caller_module n -> effect_resolver cg ~caller_module n);
      x_yields =
        (fun ~caller_module n -> yield_resolver cg ~caller_module n);
    }
  in
  List.iter
    (fun u ->
      u.u_effect <- Latch_effect.bottom;
      u.u_yield <- Yield_effect.bottom)
    units;
  let visits : (string * string, int) Hashtbl.t = Hashtbl.create 256 in
  let queued : (string * string, unit) Hashtbl.t = Hashtbl.create 256 in
  let q = Queue.create () in
  let enqueue u =
    let k = (u.u_module, u.u_name) in
    if not (Hashtbl.mem queued k) then begin
      Hashtbl.replace queued k ();
      Queue.add u q
    end
  in
  List.iter enqueue (order units);
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let k = (u.u_module, u.u_name) in
    Hashtbl.remove queued k;
    let n = Option.value ~default:0 (Hashtbl.find_opt visits k) in
    if n < max_visits then begin
      Hashtbl.replace visits k (n + 1);
      let old = u.u_effect in
      let oldy = u.u_yield in
      u.u_rerun ctx;
      (* keep the solution monotone even if a capped approximation
         momentarily shrinks a component *)
      u.u_effect <- Latch_effect.join old u.u_effect;
      u.u_yield <- Yield_effect.join oldy u.u_yield;
      if
        (not (Latch_effect.equal old u.u_effect))
        || not (Yield_effect.equal oldy u.u_yield)
      then List.iter enqueue (Callgraph.callers cg u)
    end
  done

(* --- generic may-property reachability with witnesses --- *)

let reach cg ~seed =
  let marked : (string * string, string) Hashtbl.t = Hashtbl.create 64 in
  let find_mark u = Hashtbl.find_opt marked (u.u_module, u.u_name) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun u ->
        if find_mark u = None then
          let witness =
            List.find_map
              (fun c ->
                match seed c with
                | Some w -> Some w
                | None ->
                  List.find_map
                    (fun callee ->
                      match find_mark callee with
                      | Some w -> Some (c.c_callee ^ " -> " ^ w)
                      | None -> None)
                    (Callgraph.lookup cg ~caller_module:u.u_module
                       c.c_callee))
              u.u_calls
          in
          match witness with
          | Some w ->
            Hashtbl.replace marked (u.u_module, u.u_name) w;
            changed := true
          | None -> ())
      (Callgraph.units cg)
  done;
  marked

(* --- lifecycle-mutator wrappers --- *)

let param_index params name =
  let rec go i = function
    | [] -> None
    | p :: _ when p = name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 params

let mutators cg ~seed =
  let marked : (string * string, int * int) Hashtbl.t = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun u ->
        if not (Hashtbl.mem marked (u.u_module, u.u_name)) then
          let hit =
            List.find_map
              (fun c ->
                if c.c_callback then None
                else
                  let target =
                    match seed c.c_callee with
                    | Some p -> Some p
                    | None ->
                      List.find_map
                        (fun callee ->
                          Hashtbl.find_opt marked
                            (callee.u_module, callee.u_name))
                        (Callgraph.lookup cg ~caller_module:u.u_module
                           c.c_callee)
                  in
                  match target with
                  | Some (ip, sp) -> (
                    match
                      (List.nth_opt c.c_args ip, List.nth_opt c.c_args sp)
                    with
                    | Some ik, Some sk -> (
                      match
                        (param_index u.u_params ik, param_index u.u_params sk)
                      with
                      | Some ip', Some sp' -> Some (ip', sp')
                      | _ -> None)
                    | _ -> None)
                  | None -> None)
              u.u_calls
          in
          match hit with
          | Some pos ->
            Hashtbl.replace marked (u.u_module, u.u_name) pos;
            changed := true
          | None -> ())
      (Callgraph.units cg)
  done;
  marked

(* --- the converged context for the final emission pass --- *)

let final_ctx ~config cg =
  let appends =
    reach cg ~seed:(fun c ->
        if List.mem c.c_callee config.l3_appends then Some c.c_callee
        else None)
  in
  let muts =
    mutators cg ~seed:(fun n -> List.assoc_opt n config.l8_mutators)
  in
  {
    x_effects =
      (fun ~caller_module n -> effect_resolver cg ~caller_module n);
    x_appends =
      (fun ~caller_module n ->
        List.exists
          (fun u -> Hashtbl.mem appends (u.u_module, u.u_name))
          (Callgraph.lookup cg ~caller_module n));
    x_mutators =
      (fun ~caller_module n ->
        List.find_map
          (fun u -> Hashtbl.find_opt muts (u.u_module, u.u_name))
          (Callgraph.lookup cg ~caller_module n));
    x_yields =
      (fun ~caller_module n -> yield_resolver cg ~caller_module n);
    x_emit = true;
  }

let emit_pass ~config cg =
  let ctx = final_ctx ~config cg in
  List.iter (fun u -> u.u_rerun ctx) (Callgraph.units cg)
