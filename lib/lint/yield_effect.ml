(* Interprocedural may-yield summaries.

   Each unit is summarized on the four-point diamond

                 May
                /   \
            Never   Always
                \   /
                 Bot

   Bot is the optimistic fixpoint start ("no evidence yet") and the
   final value for units that never return normally. Never and Always
   are definite one-sided claims; their join must be May — a caller
   with one never-yielding and one always-yielding candidate callee
   merely *may* yield. The witness is a human-readable call chain
   ("f -> g -> Sched.yield") carried for --explain; like latch-effect
   origins it is explanation metadata, excluded from fixpoint
   equality so it cannot keep the worklist spinning. *)

type level = Bot | Never | Always | May

type t = {
  level : level;
  witness : string;  (* call chain to a yield site; "" when none *)
}

let bottom = { level = Bot; witness = "" }
let never = { level = Never; witness = "" }
let always w = { level = Always; witness = w }
let may w = { level = May; witness = w }

(* fixpoint equality: level only (witness is metadata) *)
let equal a b = a.level = b.level

let pick_witness a b = if a.witness <> "" then a.witness else b.witness

let join a b =
  let w = pick_witness a b in
  match (a.level, b.level) with
  | Bot, _ -> { b with witness = w }
  | _, Bot -> { a with witness = w }
  | x, y when x = y -> { a with witness = w }
  | _ -> { level = May; witness = w }

(* the unit may suspend on some path *)
let yields t = match t.level with May | Always -> true | Bot | Never -> false

(* the unit suspends on every normal exit path *)
let definite t = t.level = Always

let level_string = function
  | Bot -> "bottom"
  | Never -> "never"
  | Always -> "always"
  | May -> "may"

let to_string t =
  level_string t.level
  ^ if t.witness = "" then "" else " via " ^ t.witness
