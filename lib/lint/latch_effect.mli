(** Interprocedural latch-transfer summaries.

    The latch-effect of an analysis unit describes what its normal exits
    do to latch ownership, relative to the caller:

    - [Ret]: the return value carries a latched page — ownership transfer
      (the static form the btree/heap-file hand-over-hand APIs use);
    - [Param i]: the unit exits still holding a latch rooted at its [i]th
      parameter — the caller (or someone above it) must release;
    - [Unparam i]: the unit releases a latch the caller holds on the
      argument it passed in position [i] (crabbing's "release the parent"
      step).

    An effect is a {e set of alternatives}: one atom list per class of
    exit path, since e.g. [try_page] returns a latched page on success
    and nothing on failure. [bottom] (no alternatives) is "never returns
    normally" — the fixpoint's starting value, and the final effect of
    units that always raise. The identity effect (one empty alternative)
    is a unit that returns without touching the caller's latches. *)

type kind = Ret | Param of int | Unparam of int

type atom = {
  a_kind : kind;
  a_path : string;  (** field path under the root var, e.g. [".Page.latch"] *)
  a_mode : string;  (** ["S"], ["X"] or ["?"] *)
  a_loc : Location.t;  (** originating acquire/release site *)
  a_origin : string list;
      (** interprocedural frames the latch travelled through, innermost
          first; explanation metadata only (ignored by {!equal}) *)
}

type alt = atom list

type t = {
  alts : alt list;
  ret_params : int list;
      (** parameters the unit may return unchanged (syntactic aliasing:
          crabbing helpers that hand back the page they were given) *)
}

val bottom : t
val identity : t

val make : alts:alt list -> ret_params:int list -> t
(** Normalize: sort/dedup atoms per alternative, sort/dedup/cap the
    alternative set. *)

val atom_key : atom -> kind * string * string
(** (kind, path, mode) — the metadata-free identity used by {!equal}
    and by deduplication in the summariser. *)

val equal : t -> t -> bool
(** Structural on atom keys (kind, path, mode) and [ret_params]; ignores
    locations and origin chains so explanation metadata cannot keep the
    fixpoint spinning. *)

val join : t -> t -> t

val to_string : t -> string
(** Debug/graph rendering, e.g. ["ret.Page.latch(X) | id"]. *)
