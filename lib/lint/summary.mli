(** Per-function call summaries extracted from the parsetree.

    Each [.ml] file is parsed with compiler-libs (parsetree only — no type
    information) and every value binding becomes an analysis {e unit}.
    Walking a unit's body tracks, path-sensitively, the multiset of latches
    held (via [Latch.acquire]/[Latch.release]/[Latch.with_latch]), and
    records every call site together with the latches held at that moment.
    Unit-local protocol findings (rule L1 latch balance, rule L3 WAL
    discipline) are emitted during the walk; cross-function rules (L2, L4,
    L5) consume the summaries in {!Rules}.

    The analysis is necessarily approximate: branches union their states,
    loops run zero-or-once, callbacks passed to higher-order functions run
    zero-or-once inline, and latches are identified by the source text of
    the latch expression. Functions that intentionally transfer latch
    ownership (hand-over-hand crabbing) carry
    [[@lint.allow "L1: reason"]] justifications. *)

type config = {
  l3_modules : string list;
      (** modules whose heap-page mutations must be WAL-logged *)
  l3_mutators : string list;  (** canonical names of page-mutating calls *)
  l3_appends : string list;  (** canonical names of log-append calls *)
}

val default_config : config

type allow = {
  a_rule : string;  (** "L1".."L6" *)
  a_reason : string;
  a_loc : Location.t;  (** the attribute itself, for unused-allow reports *)
  a_used : bool ref;
      (** set by {!Rules} when the allow suppresses a diagnostic; an
          allow still [false] after a full run suppressed nothing *)
}

type call = {
  c_callee : string;  (** canonical resolved name, e.g. "Log_manager.flush" *)
  c_loc : Location.t;
  c_held : (string * string) list;
      (** latches possibly held at the call: (latch expr text, mode) *)
  c_arg1 : string option;  (** text of the first positional argument *)
  c_allows : allow list;  (** allow scope at the site *)
}

type finding = {
  f_rule : string;
  f_loc : Location.t;
  f_msg : string;
  f_hint : string;
  f_allows : allow list;
}

type u = {
  u_module : string;  (** module name derived from the file name *)
  u_file : string;
  u_name : string;  (** dotted path, e.g. "descend_write.go" *)
  u_loc : Location.t;
  u_allows : allow list;  (** allows in scope for the whole unit *)
  u_calls : call list;
  u_acquires_latch : bool;
      (** the unit contains a direct [Latch.acquire]/[with_latch] *)
  u_local : finding list;  (** unit-local L1/L3 findings *)
}

type file_summary = {
  fs_file : string;
  fs_module : string;
  fs_units : u list;
  fs_findings : finding list;
      (** file-level findings: parse errors, malformed allow attributes *)
  fs_allows : allow list;
      (** every well-formed [@lint.allow] in the file, in source order *)
}

val module_name_of_file : string -> string

val summarize_file : ?config:config -> string -> file_summary
(** Parse and analyse one [.ml] file from disk. Parse failures yield a
    summary with no units and a ["parse"] finding. *)

val summarize_source :
  ?config:config -> file:string -> string -> file_summary
(** Same, from an in-memory source string (used by tests). *)
