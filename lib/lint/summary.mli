(** Per-unit summaries and re-runnable transfer functions.

    Each [.ml] file is parsed with compiler-libs (parsetree only — no
    type information) and every value binding becomes an analysis
    {e unit}. Walking a unit's body tracks, path-sensitively, the
    latches held (acquired directly or produced by callee effects), L3
    pending mutations, released (dead) page handles, and L8 lifecycle
    facts; it records every call site together with the latches held at
    that moment.

    Unlike the single-pass v1, a unit's walk is {e re-runnable}: the
    first pass registers units and runs under {!initial_ctx} (no
    interprocedural knowledge); the {!Dataflow} solver then re-invokes
    [u_rerun] with contexts that resolve callee latch-effects from the
    evolving fixpoint, and a final pass with [x_emit = true] refreshes
    each unit's findings under the converged solution.

    The analysis is necessarily approximate: branches union their
    states, loops run zero-or-once, callbacks passed to higher-order
    functions run zero-or-once inline, and latches are identified by the
    source text of the latch expression. Functions that intentionally
    leak a latch into a structure the analysis cannot track carry
    [[@lint.allow "Ln: reason"]] justifications. *)

type config = {
  l3_modules : string list;
      (** modules whose heap-page mutations must be WAL-logged *)
  l3_mutators : string list;  (** canonical names of page-mutating calls *)
  l3_appends : string list;  (** canonical names of log-append calls *)
  l7_sources : string list;
      (** calls whose result is a latched page handle (out-of-tree
          sources; in-tree transfers are inferred from latch effects) *)
  l7_exempt_modules : string list;
      (** page-cache internals that legitimately store page structures *)
  l8_states : string list;
      (** lifecycle DFA states; bit [i] of a fact mask = [i]-th entry *)
  l8_legal : (string * string) list;  (** legal (from, to) transitions *)
  l8_state_fn : string;  (** state-reading call, e.g. ["Catalog.state"] *)
  l8_mutators : (string * (int * int)) list;
      (** transition calls: name -> positional (index arg, state arg) *)
  l8_initializers : (string * string * string) list;
      (** descriptor-creating calls: (name, index label, state label) *)
  l8_read_calls : string list;  (** index-read entry points to gate *)
  l8_read_modules : string list;  (** modules where the read gate applies *)
  l8_exempt : string list;  (** e.g. recovery's [restore_state] *)
  l9_record_module : string;  (** module declaring the WAL record variant *)
  l9_type : string;  (** the variant type name, e.g. ["body"] *)
  l9_codec_modules : string list;
  l9_redo_modules : string list;
  l9_undo_modules : string list;
  l9_redo_classifier : string;  (** e.g. ["is_redoable"] *)
  l9_undo_classifier : string;
  l10_yield_always : string list;
      (** calls that suspend the fiber on every invocation
          ([Sched.yield], [Condvar.wait]) *)
  l10_yield_may : string list;
      (** calls that may suspend ([Lock_manager.lock],
          [Log_manager.flush]) *)
  l10_shared_fields : (string * string) list;
      (** mutable record fields that are cross-fiber shared state:
          field name -> class key, e.g. [("level", "Throttle.level")] *)
  l10_shared_calls : (string * (string * int list * bool)) list;
      (** accessor calls over shared state: name -> (class key,
          instance-argument positions, is-write) *)
  l10_exempt_modules : string list;
      (** single-fiber phases (recovery) where interference rules are
          vacuous *)
}

val default_config : config

type allow = {
  a_rule : string;  (** "L1".."L12" *)
  a_reason : string;
  a_loc : Location.t;  (** the attribute itself, for unused-allow reports *)
  a_used : bool ref;
      (** set by {!Rules} when the allow suppresses a diagnostic; an
          allow still [false] after a full run suppressed nothing *)
}

type call = {
  c_callee : string;  (** canonical resolved name, e.g. "Log_manager.flush" *)
  c_loc : Location.t;
  c_held : (string * string) list;
      (** latches possibly held at the call: (latch expr text, mode) *)
  c_arg1 : string option;  (** text of the first positional argument *)
  c_args : string list;  (** all positional argument keys, in order *)
  c_callback : bool;
      (** a module-qualified function passed as an argument: call-graph
          edge for reachability, no effect application at the site *)
  c_allows : allow list;  (** allow scope at the site *)
}

type finding = {
  f_rule : string;
  f_loc : Location.t;
  f_msg : string;
  f_hint : string;
  f_trace : string list;
      (** interprocedural frames (innermost first) explaining how the
          finding crossed function boundaries; [] for local findings *)
  f_allows : allow list;
}

type ctx = {
  x_effects : caller_module:string -> string -> Latch_effect.t option;
      (** resolve a callee's latch effect; [None] = unknown/out-of-tree *)
  x_appends : caller_module:string -> string -> bool;
      (** callee may (transitively) append to the WAL (discharges L3) *)
  x_mutators : caller_module:string -> string -> (int * int) option;
      (** callee is a (wrapped) lifecycle mutator: (index pos, state pos) *)
  x_yields : caller_module:string -> string -> Yield_effect.t option;
      (** resolve a callee's may-yield effect; [None] = unknown *)
  x_emit : bool;  (** final pass: produce findings *)
}

val initial_ctx : ctx
(** No interprocedural knowledge, no emission — the pass-A context. *)

type u = {
  u_module : string;  (** module name derived from the file name *)
  u_file : string;
  u_name : string;
  u_loc : Location.t;
  u_allows : allow list;  (** allows in scope for the whole unit *)
  u_params : string list;  (** positional parameter names, in order *)
  mutable u_calls : call list;
  mutable u_acquires_latch : bool;
      (** the unit contains a direct [Latch.acquire]/[with_latch] *)
  mutable u_local : finding list;  (** unit-local L1/L3/L7/L8 findings *)
  mutable u_effect : Latch_effect.t;  (** current fixpoint value *)
  mutable u_yield : Yield_effect.t;
      (** current may-yield fixpoint value *)
  mutable u_yield_sites : (Location.t * string) list;
      (** suspension points in the body: (site, witness chain) *)
  mutable u_accesses : (string * string * bool * Location.t) list;
      (** shared-state accesses: (class key, instance, is-write, site) *)
  mutable u_crossings : string list;
      (** class keys with a read→yield→write window in this unit,
          recorded before allow suppression (feeds the L12 export) *)
  u_rerun : ctx -> unit;
      (** re-execute the transfer function, refreshing the mutable
          fields in place *)
}

type l9_info = {
  l9_variants : (string * (string * Location.t) list) list;
      (** declared variant types: (type name, constructors) *)
  l9_pats : (string, unit) Hashtbl.t;
      (** constructor names matched in patterns anywhere in the file *)
  l9_cons : (string, unit) Hashtbl.t;
      (** constructor names constructed anywhere in the file *)
  l9_arms : (string * string * bool) list;
      (** classifier arms: (function, ctor or "_", rhs is literal
          [false]) — for [is_redoable]-style coverage predicates *)
}

type file_summary = {
  fs_file : string;
  fs_module : string;
  fs_units : u list;
  fs_findings : finding list;
      (** file-level findings: parse errors, malformed allow attributes *)
  fs_allows : allow list;
      (** every well-formed [@lint.allow] in the file, in source order *)
  fs_l9 : l9_info;
}

val module_name_of_file : string -> string

val summarize_file : ?config:config -> string -> file_summary
(** Parse and analyse one [.ml] file from disk (pass A: units registered
    and run once under {!initial_ctx}). Parse failures yield a summary
    with no units and a ["parse"] finding. *)

val summarize_source :
  ?config:config -> file:string -> string -> file_summary
(** Same, from an in-memory source string (used by tests). *)
