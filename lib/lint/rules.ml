open Summary

let base_blocking =
  [
    "Sched.yield";
    "Sched.suspend";
    "Condvar.wait";
    "Sched.Condvar.wait";
    "Lock_manager.lock";
    "Lock_manager.instant_lock";
    "Log_manager.flush";
    "Log_manager.flush_all";
  ]

let console_calls =
  [
    "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_char"; "print_float"; "prerr_string"; "prerr_endline";
    "prerr_newline"; "Stdlib.print_string"; "Stdlib.print_endline";
    "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
    "Format.print_string"; "Format.print_newline";
  ]

(* printing calls whose first argument selects the channel *)
let channel_calls =
  [ "Printf.fprintf"; "Format.fprintf"; "output_string"; "output_char" ]

let console_channels =
  [ "stdout"; "stderr"; "Stdlib.stdout"; "Stdlib.stderr" ]

let console_allowed_modules =
  [ "Table_printer"; "Report"; "Trace"; "Flight_recorder" ]

let printf_banned_modules =
  [ "Lock_manager"; "Log_manager"; "Log_codec"; "Log_record"; "Lsn" ]

type t = {
  diags : Diag.t list;
  blocking_units : (string * string) list;
  acquiring_units : (string * string) list;
  order_edges : (string * string) list;
  rule_ms : (string * float) list;
  atomics : Atomics.t;  (* L12 static atomic-section table *)
}

(* --- suppression --- *)

let diag_of ?(site = "") ?(trace = []) ~rule ~hint ~allows loc msg =
  let suppressed =
    match List.find_opt (fun a -> a.a_rule = rule) allows with
    | Some a ->
      a.a_used := true;
      Some a.a_reason
    | None -> None
  in
  Diag.of_location ~suppressed ~site ~trace ~rule ~hint loc msg

let held_text held =
  String.concat ", " (List.map (fun (k, m) -> k ^ "(" ^ m ^ ")") held)

let chain_trace w = String.split_on_char '>' (String.concat "" (String.split_on_char ' ' w)) |> List.filter_map (fun s ->
    match s with "" -> None | s ->
      if s.[String.length s - 1] = '-' then
        Some (String.sub s 0 (String.length s - 1))
      else Some s)

(* --- L1 (interprocedural tail): a unit that exits holding a latch
   rooted at a parameter pushes the release obligation to its callers;
   with no in-tree caller nobody discharges it. --- *)

let l1_param_diags cg =
  List.concat_map
    (fun u ->
      if Callgraph.is_opaque u.u_module then []
      else if Callgraph.callers cg u <> [] then []
      else
        let seen = Hashtbl.create 4 in
        List.concat_map
          (fun alt ->
            List.filter_map
              (fun (a : Latch_effect.atom) ->
                match a.a_kind with
                | Latch_effect.Param i ->
                  let k = Latch_effect.atom_key a in
                  if Hashtbl.mem seen k then None
                  else begin
                    Hashtbl.add seen k ();
                    let p =
                      match List.nth_opt u.u_params i with
                      | Some p -> p
                      | None -> "#" ^ string_of_int i
                    in
                    Some
                      (diag_of ~rule:"L1" ~trace:a.a_origin
                         ~hint:
                           "balance the acquire on every path, use \
                            Latch.with_latch, or justify the ownership \
                            transfer with [@lint.allow]"
                         ~allows:u.u_allows a.a_loc
                         ("latch " ^ p ^ a.a_path ^ " (" ^ a.a_mode
                        ^ ") acquired here is not released on every path \
                           of " ^ u.u_name
                        ^ " (no in-tree caller discharges it)"))
                  end
                | _ -> None)
              alt)
          u.u_effect.Latch_effect.alts)
    (Callgraph.units cg)

(* --- L2 --- *)

let l2_diags cg blocking =
  let out = ref [] in
  List.iter
    (fun u ->
      List.iter
        (fun c ->
          if c.c_held <> [] then begin
            let why =
              if List.mem c.c_callee base_blocking then Some c.c_callee
              else
                List.find_map
                  (fun callee ->
                    Option.map
                      (fun w -> c.c_callee ^ " -> " ^ w)
                      (Hashtbl.find_opt blocking
                         (callee.u_module, callee.u_name)))
                  (Callgraph.lookup cg ~caller_module:u.u_module c.c_callee)
            in
            match why with
            | Some w ->
              out :=
                diag_of ~rule:"L2" ~trace:(chain_trace w)
                  ~hint:
                    "release the latch before blocking, or justify the \
                     log-force point with [@lint.allow]"
                  ~allows:c.c_allows c.c_loc
                  ("call may block (" ^ w ^ ") while holding "
                 ^ held_text c.c_held ^ " in " ^ u.u_name)
                :: !out
            | None -> ()
          end)
        u.u_calls)
    (Callgraph.units cg);
  !out

(* --- L4 --- *)

let l4_diags summaries =
  let out = ref [] in
  List.iter
    (fun fs ->
      let m = fs.fs_module in
      let allowed = List.mem m console_allowed_modules in
      let banned_printf = List.mem m printf_banned_modules in
      List.iter
        (fun u ->
          List.iter
            (fun c ->
              let console =
                (not allowed)
                && (List.mem c.c_callee console_calls
                   ||
                   List.mem c.c_callee channel_calls
                   &&
                   match c.c_arg1 with
                   | Some a -> List.mem a console_channels
                   | None -> false)
              in
              if console then
                out :=
                  diag_of ~rule:"L4"
                    ~hint:
                      "route runtime output through Oib_obs (trace/metrics) \
                       or return the string to the caller"
                    ~allows:c.c_allows c.c_loc
                    ("console output via " ^ c.c_callee
                   ^ " in library module " ^ m)
                  :: !out
              else if
                banned_printf
                && String.length c.c_callee > 7
                && String.sub c.c_callee 0 7 = "Printf."
              then
                out :=
                  diag_of ~rule:"L4"
                    ~hint:
                      "build the string with plain concatenation; Printf is \
                       banned in lock/WAL hot paths"
                    ~allows:c.c_allows c.c_loc
                    (c.c_callee ^ " used in lock/WAL module " ^ m)
                  :: !out)
            u.u_calls)
        fs.fs_units)
    summaries;
  !out

(* --- L5 --- *)

let acquire_calls = [ "Latch.acquire"; "Latch.with_latch" ]

let l5_edges cg acquiring =
  (* A -> B with a witness call site: a function in A holds a latch across
     a call that may acquire in B. *)
  let edges : (string * string, Summary.call * string) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun u ->
      List.iter
        (fun c ->
          if c.c_held <> [] then begin
            let targets =
              if List.mem c.c_callee acquire_calls then [ u.u_module ]
              else
                List.filter_map
                  (fun callee ->
                    if
                      Hashtbl.mem acquiring (callee.u_module, callee.u_name)
                    then Some callee.u_module
                    else None)
                  (Callgraph.lookup cg ~caller_module:u.u_module c.c_callee)
            in
            List.iter
              (fun b ->
                if b <> u.u_module then
                  let k = (u.u_module, b) in
                  if not (Hashtbl.mem edges k) then
                    Hashtbl.replace edges k (c, u.u_name))
              (List.sort_uniq compare targets)
          end)
        u.u_calls)
    (Callgraph.units cg);
  edges

let l5_diags edges =
  (* adjacency + DFS cycle extraction, over *sorted* edges and start
     nodes: hashtable iteration order must never pick which witness a
     cycle is reported through, or the output stops being byte-stable *)
  let sorted_edges =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) edges [])
  in
  let adj : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt adj a) in
      if not (List.mem b prev) then Hashtbl.replace adj a (prev @ [ b ]))
    sorted_edges;
  let color : (string, [ `Grey | `Black ]) Hashtbl.t = Hashtbl.create 16 in
  let cycles = ref [] in
  let seen_cycle = Hashtbl.create 4 in
  let rec dfs stack n =
    match Hashtbl.find_opt color n with
    | Some `Black -> ()
    | Some `Grey ->
      (* back edge: extract the cycle from the stack *)
      let rec cut = function
        | x :: rest -> if x = n then [ x ] else x :: cut rest
        | [] -> []
      in
      let cyc = List.rev (cut stack) in
      let canon = List.sort compare cyc in
      let key = String.concat "," canon in
      if not (Hashtbl.mem seen_cycle key) then begin
        Hashtbl.add seen_cycle key ();
        cycles := cyc :: !cycles
      end
    | None ->
      Hashtbl.replace color n `Grey;
      List.iter
        (fun m -> dfs (m :: stack) m)
        (Option.value ~default:[] (Hashtbl.find_opt adj n));
      Hashtbl.replace color n `Black
  in
  List.iter
    (fun n -> dfs [ n ] n)
    (List.sort_uniq compare
       (List.concat_map (fun (a, b) -> [ a; b ]) sorted_edges));
  List.map
    (fun cyc ->
      let path = String.concat " -> " (cyc @ [ List.hd cyc ]) in
      (* anchor the diagnostic at the witness site of the first edge *)
      let a = List.hd cyc in
      let b = match cyc with _ :: b :: _ -> b | _ -> a in
      let witness = Hashtbl.find_opt edges (a, b) in
      match witness with
      | Some (c, uname) ->
        diag_of ~rule:"L5" ~trace:cyc
          ~hint:
            "establish a global latch-acquisition order between these \
             modules, or justify the protocol with [@lint.allow]"
          ~allows:c.c_allows c.c_loc
          ("latch-order cycle " ^ path ^ " (edge " ^ a ^ " -> " ^ b
         ^ " via " ^ uname ^ " calling " ^ c.c_callee ^ ")")
      | None ->
        Diag.make ~file:"<latch-order>" ~line:0 ~col:0 ~rule:"L5"
          ~hint:"establish a global latch-acquisition order"
          ("latch-order cycle " ^ path))
    !cycles

(* --- L9: WAL exhaustiveness ------------------------------------------ *)

let l9_diags ~config summaries =
  match
    List.find_opt
      (fun fs -> fs.fs_module = config.l9_record_module)
      summaries
  with
  | None -> []
  | Some rec_fs -> (
    match List.assoc_opt config.l9_type rec_fs.fs_l9.l9_variants with
    | None -> []
    | Some ctors ->
      let files names =
        List.filter (fun fs -> List.mem fs.fs_module names) summaries
      in
      let in_pats names c =
        List.exists (fun fs -> Hashtbl.mem fs.fs_l9.l9_pats c) (files names)
      in
      let in_cons names c =
        List.exists (fun fs -> Hashtbl.mem fs.fs_l9.l9_cons c) (files names)
      in
      let arms_of cls =
        List.filter (fun (f, _, _) -> f = cls) rec_fs.fs_l9.l9_arms
      in
      (* [Some false_rhs] when the classifier covers the ctor, None when
         it does not; a wildcard arm covers everything it reaches *)
      let classify cls c =
        let arms = arms_of cls in
        match List.find_opt (fun (_, ct, _) -> ct = c) arms with
        | Some (_, _, f) -> Some f
        | None -> (
          match List.find_opt (fun (_, ct, _) -> ct = "_") arms with
          | Some (_, _, f) -> Some f
          | None -> None)
      in
      let allows = rec_fs.fs_allows in
      List.concat_map
        (fun (c, loc) ->
          let out = ref [] in
          (* all checks for one constructor anchor at its declaration;
             the site key keeps them distinct through Diag.dedupe *)
          let add ~site ~hint msg =
            out := diag_of ~site ~rule:"L9" ~hint ~allows loc msg :: !out
          in
          if not (in_pats config.l9_codec_modules c) then
            add ~site:"encode"
              ~hint:
                ("add an encode arm for " ^ c ^ " in "
                ^ String.concat "/" config.l9_codec_modules)
              ("WAL record constructor " ^ c
             ^ " is never matched in the log codec (encode path)");
          if not (in_cons config.l9_codec_modules c) then
            add ~site:"decode"
              ~hint:
                ("construct " ^ c ^ " in the decode path of "
                ^ String.concat "/" config.l9_codec_modules)
              ("WAL record constructor " ^ c
             ^ " is never constructed by the log codec (decode path)");
          (if arms_of config.l9_redo_classifier <> [] then
             match classify config.l9_redo_classifier c with
             | None ->
               add ~site:"redo-classify"
                 ~hint:
                   ("add a " ^ config.l9_redo_classifier ^ " arm for " ^ c)
                 ("WAL record constructor " ^ c ^ " is not classified by "
                ^ config.l9_redo_classifier)
             | Some false_rhs ->
               if (not false_rhs) && not (in_pats config.l9_redo_modules c)
               then
                 add ~site:"redo"
                   ~hint:
                     ("match " ^ c ^ " in the redo replay ("
                     ^ String.concat "/" config.l9_redo_modules
                     ^ ") or classify it "
                     ^ config.l9_redo_classifier ^ " = false")
                   ("redoable WAL record " ^ c
                  ^ " has no redo-replay coverage"));
          (if arms_of config.l9_undo_classifier <> [] then
             match classify config.l9_undo_classifier c with
             | None ->
               add ~site:"undo-classify"
                 ~hint:
                   ("add a " ^ config.l9_undo_classifier ^ " arm for " ^ c)
                 ("WAL record constructor " ^ c ^ " is not classified by "
                ^ config.l9_undo_classifier)
             | Some false_rhs ->
               if (not false_rhs) && not (in_pats config.l9_undo_modules c)
               then
                 add ~site:"undo"
                   ~hint:
                     ("match " ^ c ^ " in the undo path ("
                     ^ String.concat "/" config.l9_undo_modules
                     ^ ") or classify it "
                     ^ config.l9_undo_classifier ^ " = false")
                   ("undoable WAL record " ^ c
                  ^ " has no undo-path coverage"));
          List.rev !out)
        ctors)

(* --- local findings (L1/L3/L7/L8/parse/allow) --- *)

let local_diags summaries =
  List.concat_map
    (fun fs ->
      let of_finding f =
        diag_of ~rule:f.f_rule ~trace:f.f_trace ~hint:f.f_hint
          ~allows:f.f_allows f.f_loc f.f_msg
      in
      List.map of_finding fs.fs_findings
      @ List.concat_map (fun u -> List.map of_finding u.u_local) fs.fs_units)
    summaries

let run ~config cg =
  let summaries = Callgraph.summaries cg in
  let timings = ref [] in
  let timed name f =
    let t0 = Sys.time () in
    let r = f () in
    timings := (name, (Sys.time () -. t0) *. 1000.) :: !timings;
    r
  in
  let all_local = timed "local" (fun () -> local_diags summaries) in
  (* L10/L11 findings are produced by the summariser's emit pass (they
     need the converged may-yield fixpoint); carve them out of the
     local bucket so they get their own wall-time and stats rows *)
  let l10 =
    timed "L10" (fun () ->
        List.filter (fun d -> d.Diag.rule = "L10") all_local)
  in
  let l11 =
    timed "L11" (fun () ->
        List.filter (fun d -> d.Diag.rule = "L11") all_local)
  in
  let local =
    List.filter
      (fun d -> d.Diag.rule <> "L10" && d.Diag.rule <> "L11")
      all_local
  in
  let atomics = timed "L12" (fun () -> Atomics.compute cg) in
  let l1 = timed "L1" (fun () -> l1_param_diags cg) in
  let blocking = ref (Hashtbl.create 0) in
  let l2 =
    timed "L2" (fun () ->
        blocking :=
          Dataflow.reach cg ~seed:(fun c ->
              if List.mem c.c_callee base_blocking then Some c.c_callee
              else None);
        l2_diags cg !blocking)
  in
  let l4 = timed "L4" (fun () -> l4_diags summaries) in
  let acquiring = ref (Hashtbl.create 0) in
  let edges = ref (Hashtbl.create 0) in
  let l5 =
    timed "L5" (fun () ->
        acquiring :=
          Dataflow.reach cg ~seed:(fun c ->
              if List.mem c.c_callee acquire_calls then Some c.c_callee
              else None);
        edges := l5_edges cg !acquiring;
        l5_diags !edges)
  in
  let l9 = timed "L9" (fun () -> l9_diags ~config summaries) in
  let blocking = !blocking and acquiring = !acquiring and edges = !edges in
  let diags = local @ l10 @ l11 @ l1 @ l2 @ l4 @ l5 @ l9 in
  let pairs tbl =
    List.sort_uniq compare (Hashtbl.fold (fun k _ a -> k :: a) tbl [])
  in
  {
    diags = List.sort Diag.compare (List.sort_uniq compare diags);
    blocking_units = pairs blocking;
    acquiring_units = pairs acquiring;
    order_edges =
      List.sort_uniq compare
        (Hashtbl.fold (fun (a, b) _ acc -> (a, b) :: acc) edges []);
    rule_ms = List.rev !timings;
    atomics;
  }
