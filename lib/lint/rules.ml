open Summary

let base_blocking =
  [
    "Sched.yield";
    "Sched.suspend";
    "Condvar.wait";
    "Sched.Condvar.wait";
    "Lock_manager.lock";
    "Lock_manager.instant_lock";
    "Log_manager.flush";
    "Log_manager.flush_all";
  ]

let console_calls =
  [
    "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_char"; "print_float"; "prerr_string"; "prerr_endline";
    "prerr_newline"; "Stdlib.print_string"; "Stdlib.print_endline";
    "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
    "Format.print_string"; "Format.print_newline";
  ]

(* printing calls whose first argument selects the channel *)
let channel_calls =
  [ "Printf.fprintf"; "Format.fprintf"; "output_string"; "output_char" ]

let console_channels =
  [ "stdout"; "stderr"; "Stdlib.stdout"; "Stdlib.stderr" ]

let console_allowed_modules =
  [ "Table_printer"; "Report"; "Trace"; "Flight_recorder" ]

let printf_banned_modules =
  [ "Lock_manager"; "Log_manager"; "Log_codec"; "Log_record"; "Lsn" ]

type t = {
  diags : Diag.t list;
  blocking_units : (string * string) list;
  acquiring_units : (string * string) list;
  order_edges : (string * string) list;
}

(* --- unit index: (module, last name component) -> units --- *)

let last_component name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let build_index summaries =
  let idx : (string * string, u list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun fs ->
      List.iter
        (fun u ->
          let k = (fs.fs_module, last_component u.u_name) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt idx k) in
          Hashtbl.replace idx k (u :: prev))
        fs.fs_units)
    summaries;
  idx

(* Resolve a canonical callee to (module, function-name) candidates within
   the scanned tree. Unqualified names belong to the caller's module. *)
let resolve_callee ~caller_module callee =
  match String.index_opt callee '.' with
  | None -> (caller_module, callee)
  | Some i ->
    let m = String.sub callee 0 i in
    (m, last_component callee)

(* The latch and scheduler modules ARE the blocking/acquiring primitives;
   their internals are modelled by the named base sets, not by walking
   into their bodies (otherwise every hand-over-hand child acquire would
   count as "blocking" and L2 would collapse into L1/L5). *)
let opaque_modules = [ "Latch"; "Sched"; "Condvar" ]

let lookup idx ~caller_module callee =
  let m, n = resolve_callee ~caller_module callee in
  if List.mem m opaque_modules then []
  else Option.value ~default:[] (Hashtbl.find_opt idx (m, n))

(* --- property fixpoint over the call graph --- *)

(* [marked] maps (module, full unit name) to a human-readable witness of
   why the property holds (the base call, or the chain through which it
   was reached). *)
let fixpoint summaries idx ~seed =
  let marked : (string * string, string) Hashtbl.t = Hashtbl.create 64 in
  let find_mark u = Hashtbl.find_opt marked (u.u_module, u.u_name) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fs ->
        List.iter
          (fun u ->
            if find_mark u = None then
              let witness =
                List.find_map
                  (fun c ->
                    match seed c with
                    | Some w -> Some w
                    | None ->
                      List.find_map
                        (fun callee ->
                          match find_mark callee with
                          | Some w -> Some (c.c_callee ^ " -> " ^ w)
                          | None -> None)
                        (lookup idx ~caller_module:u.u_module c.c_callee))
                  u.u_calls
              in
              match witness with
              | Some w ->
                Hashtbl.replace marked (u.u_module, u.u_name) w;
                changed := true
              | None -> ())
          fs.fs_units)
      summaries
  done;
  marked

(* --- suppression --- *)

let diag_of ~rule ~hint ~allows loc msg =
  let suppressed =
    match List.find_opt (fun a -> a.a_rule = rule) allows with
    | Some a ->
      a.a_used := true;
      Some a.a_reason
    | None -> None
  in
  Diag.of_location ~suppressed ~rule ~hint loc msg

let held_text held =
  String.concat ", " (List.map (fun (k, m) -> k ^ "(" ^ m ^ ")") held)

(* --- L2 --- *)

let l2_diags summaries idx blocking =
  let out = ref [] in
  List.iter
    (fun fs ->
      List.iter
        (fun u ->
          List.iter
            (fun c ->
              if c.c_held <> [] then begin
                let why =
                  if List.mem c.c_callee base_blocking then Some c.c_callee
                  else
                    List.find_map
                      (fun callee ->
                        Option.map
                          (fun w -> c.c_callee ^ " -> " ^ w)
                          (Hashtbl.find_opt blocking
                             (callee.u_module, callee.u_name)))
                      (lookup idx ~caller_module:u.u_module c.c_callee)
                in
                match why with
                | Some w ->
                  out :=
                    diag_of ~rule:"L2"
                      ~hint:
                        "release the latch before blocking, or justify the \
                         log-force point with [@lint.allow]"
                      ~allows:c.c_allows c.c_loc
                      ("call may block (" ^ w ^ ") while holding "
                     ^ held_text c.c_held ^ " in " ^ u.u_name)
                    :: !out
                | None -> ()
              end)
            u.u_calls)
        fs.fs_units)
    summaries;
  !out

(* --- L4 --- *)

let l4_diags summaries =
  let out = ref [] in
  List.iter
    (fun fs ->
      let m = fs.fs_module in
      let allowed = List.mem m console_allowed_modules in
      let banned_printf = List.mem m printf_banned_modules in
      List.iter
        (fun u ->
          List.iter
            (fun c ->
              let console =
                (not allowed)
                && (List.mem c.c_callee console_calls
                   ||
                   List.mem c.c_callee channel_calls
                   &&
                   match c.c_arg1 with
                   | Some a -> List.mem a console_channels
                   | None -> false)
              in
              if console then
                out :=
                  diag_of ~rule:"L4"
                    ~hint:
                      "route runtime output through Oib_obs (trace/metrics) \
                       or return the string to the caller"
                    ~allows:c.c_allows c.c_loc
                    ("console output via " ^ c.c_callee
                   ^ " in library module " ^ m)
                  :: !out
              else if
                banned_printf
                && String.length c.c_callee > 7
                && String.sub c.c_callee 0 7 = "Printf."
              then
                out :=
                  diag_of ~rule:"L4"
                    ~hint:
                      "build the string with plain concatenation; Printf is \
                       banned in lock/WAL hot paths"
                    ~allows:c.c_allows c.c_loc
                    (c.c_callee ^ " used in lock/WAL module " ^ m)
                  :: !out)
            u.u_calls)
        fs.fs_units)
    summaries;
  !out

(* --- L5 --- *)

let acquire_calls = [ "Latch.acquire"; "Latch.with_latch" ]

let l5_edges summaries idx acquiring =
  (* A -> B with a witness call site: a function in A holds a latch across
     a call that may acquire in B. *)
  let edges : (string * string, Summary.call * string) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun fs ->
      List.iter
        (fun u ->
          List.iter
            (fun c ->
              if c.c_held <> [] then begin
                let targets =
                  if List.mem c.c_callee acquire_calls then [ u.u_module ]
                  else
                    List.filter_map
                      (fun callee ->
                        if
                          Hashtbl.mem acquiring
                            (callee.u_module, callee.u_name)
                        then Some callee.u_module
                        else None)
                      (lookup idx ~caller_module:u.u_module c.c_callee)
                in
                List.iter
                  (fun b ->
                    if b <> u.u_module then
                      let k = (u.u_module, b) in
                      if not (Hashtbl.mem edges k) then
                        Hashtbl.replace edges k (c, u.u_name))
                  (List.sort_uniq compare targets)
              end)
            u.u_calls)
        fs.fs_units)
    summaries;
  edges

let l5_diags edges =
  (* adjacency + DFS cycle extraction, over *sorted* edges and start
     nodes: hashtable iteration order must never pick which witness a
     cycle is reported through, or the output stops being byte-stable *)
  let sorted_edges =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) edges [])
  in
  let adj : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt adj a) in
      if not (List.mem b prev) then Hashtbl.replace adj a (prev @ [ b ]))
    sorted_edges;
  let color : (string, [ `Grey | `Black ]) Hashtbl.t = Hashtbl.create 16 in
  let cycles = ref [] in
  let seen_cycle = Hashtbl.create 4 in
  let rec dfs stack n =
    match Hashtbl.find_opt color n with
    | Some `Black -> ()
    | Some `Grey ->
      (* back edge: extract the cycle from the stack *)
      let rec cut = function
        | x :: rest -> if x = n then [ x ] else x :: cut rest
        | [] -> []
      in
      let cyc = List.rev (cut stack) in
      let canon = List.sort compare cyc in
      let key = String.concat "," canon in
      if not (Hashtbl.mem seen_cycle key) then begin
        Hashtbl.add seen_cycle key ();
        cycles := cyc :: !cycles
      end
    | None ->
      Hashtbl.replace color n `Grey;
      List.iter
        (fun m -> dfs (m :: stack) m)
        (Option.value ~default:[] (Hashtbl.find_opt adj n));
      Hashtbl.replace color n `Black
  in
  List.iter
    (fun n -> dfs [ n ] n)
    (List.sort_uniq compare
       (List.concat_map (fun (a, b) -> [ a; b ]) sorted_edges));
  List.map
    (fun cyc ->
      let path = String.concat " -> " (cyc @ [ List.hd cyc ]) in
      (* anchor the diagnostic at the witness site of the first edge *)
      let a = List.hd cyc in
      let b = match cyc with _ :: b :: _ -> b | _ -> a in
      let witness = Hashtbl.find_opt edges (a, b) in
      match witness with
      | Some (c, uname) ->
        diag_of ~rule:"L5"
          ~hint:
            "establish a global latch-acquisition order between these \
             modules, or justify the protocol with [@lint.allow]"
          ~allows:c.c_allows c.c_loc
          ("latch-order cycle " ^ path ^ " (edge " ^ a ^ " -> " ^ b
         ^ " via " ^ uname ^ " calling " ^ c.c_callee ^ ")")
      | None ->
        Diag.make ~file:"<latch-order>" ~line:0 ~col:0 ~rule:"L5"
          ~hint:"establish a global latch-acquisition order"
          ("latch-order cycle " ^ path))
    !cycles

(* --- local findings (L1/L3/parse/allow) --- *)

let local_diags summaries =
  List.concat_map
    (fun fs ->
      let of_finding f =
        diag_of ~rule:f.f_rule ~hint:f.f_hint ~allows:f.f_allows f.f_loc
          f.f_msg
      in
      List.map of_finding fs.fs_findings
      @ List.concat_map (fun u -> List.map of_finding u.u_local) fs.fs_units)
    summaries

let run summaries =
  let idx = build_index summaries in
  let blocking =
    fixpoint summaries idx ~seed:(fun c ->
        if List.mem c.c_callee base_blocking then Some c.c_callee else None)
  in
  let acquiring =
    fixpoint summaries idx ~seed:(fun c ->
        if List.mem c.c_callee acquire_calls then Some c.c_callee else None)
  in
  let edges = l5_edges summaries idx acquiring in
  let diags =
    local_diags summaries
    @ l2_diags summaries idx blocking
    @ l4_diags summaries
    @ l5_diags edges
  in
  let pairs tbl = List.sort_uniq compare (Hashtbl.fold (fun k _ a -> k :: a) tbl []) in
  {
    diags = List.sort Diag.compare (List.sort_uniq compare diags);
    blocking_units = pairs blocking;
    acquiring_units = pairs acquiring;
    order_edges =
      List.sort_uniq compare
        (Hashtbl.fold (fun (a, b) _ acc -> (a, b) :: acc) edges []);
  }
