(* Whole-tree call graph over analysis units.

   Nodes are units (identified by module + binding name); edges come
   from recorded call sites, resolved syntactically: a qualified callee
   "M.f" maps to every unit named "f" in module M, an unqualified "f"
   to units "f" in the caller's own module. Calls into the latch /
   scheduler primitives are deliberately opaque — their internals are
   modelled by the rule base-sets, not by walking into their bodies.

   Higher-order flow is approximated two ways: closures passed directly
   to a call are walked inline at the call site by the summariser, and a
   module-qualified function passed as an argument is recorded as a
   [c_callback] edge — it participates in reachability (the HOF may
   invoke it) but contributes no latch-effect application. *)

open Summary

type t = {
  cg_summaries : file_summary list;
  cg_units : u list;  (* stable (file, source) order *)
  cg_idx : (string * string, u list) Hashtbl.t;
      (* (module, last name component) -> units *)
  cg_preds : (string * string, u list) Hashtbl.t;
      (* (callee module, callee name) -> calling units *)
}

let last_component name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

(* The latch and scheduler modules ARE the blocking/acquiring
   primitives; resolving into them would collapse L2 into L1/L5. *)
let opaque_modules = [ "Latch"; "Sched"; "Condvar" ]

(* A dotted callee whose first component is capitalized is
   module-qualified ("Heap_file.latch_rid"); otherwise it is a scoped
   local-function name produced by the summariser ("descend_read.go")
   and resolves exactly within the caller's module. *)
let resolve_callee ~caller_module callee =
  match String.index_opt callee '.' with
  | None -> (caller_module, callee)
  | Some i ->
    let first = String.sub callee 0 i in
    if first <> "" && first.[0] >= 'A' && first.[0] <= 'Z' then
      (first, String.sub callee (i + 1) (String.length callee - i - 1))
    else (caller_module, callee)

let lookup t ~caller_module callee =
  let m, n = resolve_callee ~caller_module callee in
  if List.mem m opaque_modules then []
  else Option.value ~default:[] (Hashtbl.find_opt t.cg_idx (m, n))

let units t = t.cg_units
let summaries t = t.cg_summaries

let callers t u =
  Option.value ~default:[]
    (Hashtbl.find_opt t.cg_preds (u.u_module, u.u_name))

let is_opaque m = List.mem m opaque_modules

let build summaries =
  let idx : (string * string, u list) Hashtbl.t = Hashtbl.create 256 in
  let all = ref [] in
  List.iter
    (fun fs ->
      List.iter
        (fun u ->
          all := u :: !all;
          let k = (fs.fs_module, u.u_name) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt idx k) in
          Hashtbl.replace idx k (prev @ [ u ]))
        fs.fs_units)
    summaries;
  let t =
    {
      cg_summaries = summaries;
      cg_units = List.rev !all;
      cg_idx = idx;
      cg_preds = Hashtbl.create 256;
    }
  in
  List.iter
    (fun u ->
      List.iter
        (fun c ->
          List.iter
            (fun callee ->
              let k = (callee.u_module, callee.u_name) in
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt t.cg_preds k)
              in
              if not (List.memq u prev) then
                Hashtbl.replace t.cg_preds k (prev @ [ u ]))
            (lookup t ~caller_module:u.u_module c.c_callee))
        u.u_calls)
    t.cg_units;
  t

(* --- JSON rendering (deterministic: everything sorted) --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let full u = u.u_module ^ "." ^ u.u_name in
  let nodes =
    List.sort_uniq compare
      (List.map
         (fun u ->
           Printf.sprintf
             "{\"unit\":\"%s\",\"file\":\"%s\",\"effect\":\"%s\",\"yield\":\"%s\",\"acquires\":%b}"
             (json_escape (full u))
             (json_escape u.u_file)
             (json_escape (Latch_effect.to_string u.u_effect))
             (json_escape (Yield_effect.to_string u.u_yield))
             u.u_acquires_latch)
         t.cg_units)
  in
  let edges =
    List.sort_uniq compare
      (List.concat_map
         (fun u ->
           List.concat_map
             (fun c ->
               List.map
                 (fun callee ->
                   Printf.sprintf
                     "{\"from\":\"%s\",\"to\":\"%s\",\"callback\":%b}"
                     (json_escape (full u))
                     (json_escape (full callee))
                     c.c_callback)
                 (lookup t ~caller_module:u.u_module c.c_callee))
             u.u_calls)
         t.cg_units)
  in
  "{\"schema\":\"oib-lint-callgraph/v1\",\"nodes\":[\n"
  ^ String.concat ",\n" nodes
  ^ "\n],\"edges\":[\n"
  ^ String.concat ",\n" edges
  ^ "\n]}\n"
