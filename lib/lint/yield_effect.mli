(** Interprocedural may-yield summaries on the four-point diamond
    lattice [Bot ⊑ {Never, Always} ⊑ May].

    [Bot] is the optimistic start of the fixpoint ("no evidence yet",
    also the final value of units that never return normally); [Never]
    and [Always] are definite one-sided claims about every normal exit
    path; [May] is the top. Crucially [join never (always w) = may w]:
    a caller that can reach both a never-yielding and an
    always-yielding callee only {e may} yield. *)

type level = Bot | Never | Always | May

type t = {
  level : level;
  witness : string;
      (** human-readable call chain to a yield site
          ("f -> g -> Sched.yield"), for --explain; [""] when none *)
}

val bottom : t
val never : t

val always : string -> t
(** [always witness] — every normal exit path yields. *)

val may : string -> t
(** [may witness] — some path yields. *)

val equal : t -> t -> bool
(** Fixpoint equality: compares levels only. The witness is
    explanation metadata, recomputed deterministically, and must not
    keep the worklist spinning. *)

val join : t -> t -> t

val yields : t -> bool
(** The unit may suspend on some path ([May] or [Always]). *)

val definite : t -> bool
(** The unit suspends on every normal exit path ([Always]). *)

val to_string : t -> string
