type options = {
  root : string;
  config : Summary.config;
  require_mli : bool;
  mli_exempt : string list;
}

let default_options =
  {
    root = "lib";
    config = Summary.default_config;
    require_mli = true;
    mli_exempt = [];
  }

type stats = {
  st_files : int;
  st_units : int;
  st_by_rule : (string * int) list;
  st_suppressed_by_rule : (string * int) list;
  st_suppressions : (string * string * string) list;
  st_baselined : int;
  st_phase_ms : (string * float) list;
  st_rule_ms : (string * float) list;
}

type result = {
  r_diags : Diag.t list;
  r_unused_allows : Diag.t list;
  r_rules : Rules.t;
  r_graph : Callgraph.t;
  r_stats : stats;
}

let scan_files root =
  let out = ref [] in
  let rec go dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
      Array.sort compare entries;
      Array.iter
        (fun e ->
          if String.length e > 0 && e.[0] <> '.' && e <> "_build" then
            let p = Filename.concat dir e in
            if Sys.is_directory p then go p
            else if Filename.check_suffix e ".ml" then out := p :: !out)
        entries
  in
  go root;
  List.sort compare !out

let l6_diags opts files =
  if not opts.require_mli then []
  else
    List.filter_map
      (fun f ->
        let m = Summary.module_name_of_file f in
        let mli = Filename.chop_suffix f ".ml" ^ ".mli" in
        if List.mem m opts.mli_exempt || Sys.file_exists mli then None
        else
          Some
            (Diag.make ~file:f ~line:1 ~col:0 ~rule:"L6"
               ~hint:
                 ("add " ^ Filename.basename mli
                ^ " so the module's public surface is explicit")
               ("module " ^ m ^ " has no interface (.mli)")))
      files

let count_by_rule diags =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (d : Diag.t) ->
      Hashtbl.replace tbl d.rule
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d.rule)))
    diags;
  List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) tbl [])

(* computed after Rules.run so the usage flags are settled *)
let unused_allow_diags summaries =
  Diag.dedupe
    (List.concat_map
       (fun fs ->
         List.filter_map
           (fun (a : Summary.allow) ->
             if !(a.Summary.a_used) then None
             else
               Some
                 (Diag.of_location ~rule:"allow-unused"
                    ~hint:
                      "remove the stale [@lint.allow], or fix its rule tag"
                    a.Summary.a_loc
                    ("[@lint.allow \"" ^ a.Summary.a_rule ^ ": "
                   ^ a.Summary.a_reason
                   ^ "\"] suppressed no diagnostics")))
           fs.Summary.fs_allows)
       summaries)

let run_files ?(options = default_options) files =
  let t0 = Sys.time () in
  let summaries =
    List.map (Summary.summarize_file ~config:options.config) files
  in
  let t1 = Sys.time () in
  let cg = Callgraph.build summaries in
  Dataflow.solve_effects cg;
  let t2 = Sys.time () in
  Dataflow.emit_pass ~config:options.config cg;
  let t3 = Sys.time () in
  let rules = Rules.run ~config:options.config cg in
  let t4 = Sys.time () in
  let ms a b = (b -. a) *. 1000. in
  let diags = Diag.dedupe (rules.Rules.diags @ l6_diags options files) in
  let unsuppressed, suppressed =
    List.partition (fun (d : Diag.t) -> d.suppressed = None) diags
  in
  let stats =
    {
      st_files = List.length files;
      st_units =
        List.fold_left
          (fun n fs -> n + List.length fs.Summary.fs_units)
          0 summaries;
      st_by_rule = count_by_rule unsuppressed;
      st_suppressed_by_rule = count_by_rule suppressed;
      st_suppressions =
        List.map
          (fun (d : Diag.t) ->
            (d.file, d.rule, Option.value ~default:"" d.suppressed))
          suppressed;
      st_baselined = 0;
      st_phase_ms =
        [
          ("summarize", ms t0 t1);
          ("solve", ms t1 t2);
          ("emit", ms t2 t3);
          ("rules", ms t3 t4);
        ];
      st_rule_ms = rules.Rules.rule_ms;
    }
  in
  {
    r_diags = diags;
    r_unused_allows = unused_allow_diags summaries;
    r_rules = rules;
    r_graph = cg;
    r_stats = stats;
  }

let run_tree ?(options = default_options) root =
  run_files ~options (scan_files root)

let errors r =
  List.filter (fun (d : Diag.t) -> d.suppressed = None) r.r_diags

(* --- findings baseline (grandfathering) ---

   A baseline file snapshots the unsuppressed findings of a run; a
   later run with [--baseline FILE] marks findings whose key matches a
   baseline entry as [suppressed = Some "baselined"]. Grandfathering
   is deliberately explicit: baselined findings stay in the report and
   are counted in their own stats row, never folded into the
   allow-suppression counts. The key excludes line/column so the
   baseline survives unrelated edits above the finding. *)

let baseline_header = "oib-lint-baseline/v1"

let baseline_key (d : Diag.t) =
  d.rule ^ "|" ^ d.file ^ "|" ^ d.site ^ "|" ^ d.msg

let write_baseline file r =
  let oc = open_out file in
  output_string oc (baseline_header ^ "\n");
  List.iter
    (fun k -> output_string oc (k ^ "\n"))
    (List.sort_uniq compare (List.map baseline_key (errors r)));
  close_out oc

let read_baseline file =
  let ic = open_in file in
  let keys = Hashtbl.create 32 in
  (try
     let hdr = input_line ic in
     if hdr <> baseline_header then
       failwith
         (file ^ ": not an oib-lint baseline (header " ^ hdr ^ ")");
     while true do
       let line = input_line ic in
       if line <> "" then Hashtbl.replace keys line ()
     done
   with End_of_file -> ());
  close_in ic;
  keys

let apply_baseline keys r =
  let baselined = ref 0 in
  let diags =
    List.map
      (fun (d : Diag.t) ->
        if d.suppressed = None && Hashtbl.mem keys (baseline_key d) then begin
          incr baselined;
          { d with suppressed = Some "baselined" }
        end
        else d)
      r.r_diags
  in
  let unsuppressed =
    List.filter (fun (d : Diag.t) -> d.suppressed = None) diags
  in
  {
    r with
    r_diags = diags;
    r_stats =
      {
        r.r_stats with
        st_by_rule = count_by_rule unsuppressed;
        st_baselined = !baselined;
      };
  }

(* --- tiny hand-rolled JSON (no external dependency) --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let stats_to_json st =
  let b = Buffer.create 512 in
  let counts l =
    "{"
    ^ String.concat ","
        (List.map
           (fun (r, n) -> "\"" ^ json_escape r ^ "\":" ^ string_of_int n)
           l)
    ^ "}"
  in
  Buffer.add_string b "{";
  Buffer.add_string b ("\"files\":" ^ string_of_int st.st_files);
  Buffer.add_string b (",\"units\":" ^ string_of_int st.st_units);
  Buffer.add_string b (",\"diagnostics\":" ^ counts st.st_by_rule);
  Buffer.add_string b (",\"suppressed\":" ^ counts st.st_suppressed_by_rule);
  Buffer.add_string b ",\"suppressions\":[";
  Buffer.add_string b
    (String.concat ","
       (List.map
          (fun (f, r, why) ->
            "{\"file\":\"" ^ json_escape f ^ "\",\"rule\":\"" ^ json_escape r
            ^ "\",\"reason\":\"" ^ json_escape why ^ "\"}")
          st.st_suppressions));
  Buffer.add_string b "]";
  Buffer.add_string b (",\"baselined\":" ^ string_of_int st.st_baselined);
  let times l =
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             "\"" ^ json_escape k ^ "\":" ^ Printf.sprintf "%.3f" v)
           l)
    ^ "}"
  in
  Buffer.add_string b (",\"phase_ms\":" ^ times st.st_phase_ms);
  Buffer.add_string b (",\"rule_ms\":" ^ times st.st_rule_ms);
  Buffer.add_string b "}";
  Buffer.contents b
