(** Whole-tree call graph over analysis units.

    Built once from pass-A summaries; resolution is syntactic (module +
    last name component, unqualified names resolve within the caller's
    module). Closures passed to higher-order functions are walked inline
    by the summariser; module-qualified function arguments appear as
    [c_callback] edges — reachability only, no effect application. *)

type t

val build : Summary.file_summary list -> t

val lookup : t -> caller_module:string -> string -> Summary.u list
(** Units a canonical callee name may resolve to. Empty for unknown or
    deliberately opaque callees (the latch/scheduler primitives). *)

val units : t -> Summary.u list
(** All units, in stable (file, source) order. *)

val summaries : t -> Summary.file_summary list

val callers : t -> Summary.u -> Summary.u list
(** Units containing at least one call site resolving to the given
    unit — the worklist's requeue set. *)

val last_component : string -> string
val resolve_callee : caller_module:string -> string -> string * string
val is_opaque : string -> bool

val to_json : t -> string
(** Deterministic (sorted) JSON rendering of nodes (with converged latch
    effects) and resolved edges, schema [oib-lint-callgraph/v1]. *)
