(** Tree-level linter driver.

    Scans a directory for [.ml] files, summarizes each ({!Summary}),
    builds the whole-tree call graph ({!Callgraph}), solves the
    latch-effect fixpoint and re-emits findings under the converged
    context ({!Dataflow}), runs the cross-function rules ({!Rules}),
    applies the interface-coverage rule L6, and aggregates statistics.
    This is the engine behind the [oib-lint] executable and the [@lint]
    dune alias. *)

type options = {
  root : string;  (** directory scanned by {!run_tree} *)
  config : Summary.config;
  require_mli : bool;  (** enable rule L6 (module without a [.mli]) *)
  mli_exempt : string list;
      (** module names L6 skips (generated or deliberately sealed-open) *)
}

val default_options : options
(** Scans ["lib"], default {!Summary.config}, L6 on, no exemptions. *)

type stats = {
  st_files : int;
  st_units : int;
  st_by_rule : (string * int) list;  (** unsuppressed diagnostics per rule *)
  st_suppressed_by_rule : (string * int) list;
  st_suppressions : (string * string * string) list;
      (** (file, rule, justification) for every applied suppression *)
  st_baselined : int;
      (** findings grandfathered by {!apply_baseline} (counted
          separately from allow suppressions, never hidden) *)
  st_phase_ms : (string * float) list;
      (** wall time per engine phase: summarize, solve, emit, rules *)
  st_rule_ms : (string * float) list;
      (** wall time per rule family (from {!Rules.t.rule_ms}) *)
}

type result = {
  r_diags : Diag.t list;  (** all diagnostics, sorted, suppressed included *)
  r_unused_allows : Diag.t list;
      (** ["allow-unused"] diagnostics: [[@lint.allow]] attributes that
          suppressed nothing in this run. Reported by
          [oib-lint --unused-allows]; fatal under [--strict]. *)
  r_rules : Rules.t;
  r_graph : Callgraph.t;
      (** the solved call graph (for [--graph] dumps and tooling) *)
  r_stats : stats;
}

val scan_files : string -> string list
(** Recursively collect [.ml] files under a root, skipping [_build] and
    hidden directories. Sorted for determinism. *)

val run_files : ?options:options -> string list -> result

val run_tree : ?options:options -> string -> result
(** [run_files] over [scan_files root]. *)

val errors : result -> Diag.t list
(** The unsuppressed diagnostics — non-empty means the lint fails. *)

val baseline_key : Diag.t -> string
(** The grandfathering identity of a finding:
    [rule|file|site|msg] — no line/column, so the baseline survives
    unrelated edits above the finding. *)

val write_baseline : string -> result -> unit
(** Snapshot the current unsuppressed findings (sorted, one key per
    line under an [oib-lint-baseline/v1] header). *)

val read_baseline : string -> (string, unit) Hashtbl.t
(** Load a baseline file. Raises [Failure] on a bad header. *)

val apply_baseline : (string, unit) Hashtbl.t -> result -> result
(** Mark findings whose key is in the baseline as
    [suppressed = Some "baselined"]; they stay in [r_diags] and are
    counted in [st_baselined] but no longer in [st_by_rule] (so they
    do not fail the run). *)

val stats_to_json : stats -> string
(** Render statistics as a small JSON object (for [LINT_stats.json]). *)
