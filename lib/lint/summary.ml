open Parsetree

type config = {
  l3_modules : string list;
  l3_mutators : string list;
  l3_appends : string list;
}

let default_config =
  {
    l3_modules = [ "Table_ops"; "Heap_file"; "Btree" ];
    l3_mutators = [ "Heap_page.put"; "Heap_page.remove" ];
    l3_appends = [ "Log_manager.append"; "Txn_manager.log_op" ];
  }

type allow = {
  a_rule : string;
  a_reason : string;
  a_loc : Location.t;
  a_used : bool ref;
      (* flipped by Rules when this allow suppresses a diagnostic; an
         allow that stays false across a whole run is dead weight *)
}

type call = {
  c_callee : string;
  c_loc : Location.t;
  c_held : (string * string) list;
  c_arg1 : string option;
  c_allows : allow list;
}

type finding = {
  f_rule : string;
  f_loc : Location.t;
  f_msg : string;
  f_hint : string;
  f_allows : allow list;
}

type u = {
  u_module : string;
  u_file : string;
  u_name : string;
  u_loc : Location.t;
  u_allows : allow list;
  u_calls : call list;
  u_acquires_latch : bool;
  u_local : finding list;
}

type file_summary = {
  fs_file : string;
  fs_module : string;
  fs_units : u list;
  fs_findings : finding list;
  fs_allows : allow list;
      (* every well-formed [@lint.allow] parsed in the file, in source
         order — the registry the unused-allow report is computed from *)
}

let module_name_of_file f =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename f))

(* --- [@lint.allow "Ln: reason"] attributes --- *)

let allow_of_attribute (attr : attribute) =
  if attr.attr_name.txt <> "lint.allow" then None
  else
    let malformed why = Some (Error (attr.attr_loc, why)) in
    match attr.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] -> (
      match String.index_opt s ':' with
      | Some i ->
        let rule = String.trim (String.sub s 0 i) in
        let reason =
          String.trim (String.sub s (i + 1) (String.length s - i - 1))
        in
        let rule_ok =
          String.length rule = 2
          && rule.[0] = 'L'
          && rule.[1] >= '1'
          && rule.[1] <= '6'
        in
        if not rule_ok then
          malformed ("[@lint.allow]: unknown rule " ^ Filename.quote rule)
        else if String.length reason < 8 then
          malformed "[@lint.allow]: justification too short (>= 8 chars)"
        else
          Some
            (Ok
               { a_rule = rule; a_reason = reason; a_loc = attr.attr_loc;
                 a_used = ref false })
      | None -> malformed "[@lint.allow]: missing \"Ln:\" rule prefix")
    | _ -> malformed "[@lint.allow]: payload must be a string literal"

(* --- abstract state: latches held + unlogged mutations pending --- *)

type state = {
  held : (string * string * Location.t) list;  (* latch key, mode, site *)
  pend : (string * Location.t) list;  (* L3: mutations awaiting an append *)
}

let empty_state = { held = []; pend = [] }

let max_states = 48

let dedup_states sts =
  let rec go seen = function
    | [] -> List.rev seen
    | s :: rest ->
      if List.mem s seen then go seen rest else go (s :: seen) rest
  in
  let d = go [] sts in
  if List.length d > max_states then (
    let rec take n = function
      | x :: r when n > 0 -> x :: take (n - 1) r
      | _ -> []
    in
    take max_states d)
  else d

let union a b = dedup_states (a @ b)

(* --- per-unit accumulator and environment --- *)

type acc = {
  mutable calls : call list;
  mutable local : finding list;
  mutable acq : bool;
  l3_seen : (string, unit) Hashtbl.t;  (* dedup L3 sites across states *)
}

type env = {
  cfg : config;
  aliases : (string, string list) Hashtbl.t;
  modname : string;
  in_l3 : bool;
  allows : allow list;
  acc : acc;
  units : u list ref;
  file : string;
  file_findings : finding list ref;
  all_allows : allow list ref;  (* registration order = source order *)
}

let emit env ~rule ~hint loc msg =
  env.acc.local <-
    { f_rule = rule; f_loc = loc; f_msg = msg; f_hint = hint;
      f_allows = env.allows }
    :: env.acc.local

(* --- name resolution (aliases + Oib_* wrapper stripping) --- *)

let rec strip_oib = function
  | p :: (_ :: _ as rest)
    when String.length p >= 4 && String.sub p 0 4 = "Oib_" ->
    strip_oib rest
  | l -> l

let resolve env lid =
  let parts = strip_oib (Longident.flatten lid) in
  let parts =
    match parts with
    | hd :: tl -> (
      match Hashtbl.find_opt env.aliases hd with
      | Some repl -> repl @ tl
      | None -> parts)
    | [] -> parts
  in
  String.concat "." parts

let rec expr_key e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> String.concat "." (Longident.flatten txt)
  | Pexp_field (b, { txt; _ }) ->
    expr_key b ^ "." ^ String.concat "." (Longident.flatten txt)
  | Pexp_constraint (e, _) | Pexp_open (_, e) | Pexp_newtype (_, e) ->
    expr_key e
  | Pexp_apply (f, _) -> "(" ^ expr_key f ^ " _)"
  | _ -> "<expr>"

let mode_key e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident (("S" | "X") as m); _ }, None) ->
    m
  | _ -> "?"

let loc_key (loc : Location.t) =
  loc.loc_start.pos_fname ^ ":"
  ^ string_of_int loc.loc_start.pos_lnum
  ^ ":"
  ^ string_of_int (loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

(* --- classification sets resolved at walk time --- *)

let raise_names =
  [ "raise"; "raise_notrace"; "failwith"; "invalid_arg";
    "Stdlib.raise"; "Stdlib.raise_notrace"; "Stdlib.failwith";
    "Stdlib.invalid_arg" ]

let held_snapshot sts =
  let pairs =
    List.concat_map (fun s -> List.map (fun (k, m, _) -> (k, m)) s.held) sts
  in
  List.sort_uniq compare pairs

let record_call env sts name loc arg1 =
  env.acc.calls <-
    {
      c_callee = name;
      c_loc = loc;
      c_held = held_snapshot sts;
      c_arg1 = arg1;
      c_allows = env.allows;
    }
    :: env.acc.calls

(* flush L3 pending mutations at the end of a latched section *)
let l3_flush env sts =
  List.iter
    (fun s ->
      List.iter
        (fun (mname, mloc) ->
          let k = loc_key mloc in
          if not (Hashtbl.mem env.acc.l3_seen k) then begin
            Hashtbl.add env.acc.l3_seen k ();
            emit env ~rule:"L3"
              ~hint:
                "log the mutation (Txn_manager.log_op / Log_manager.append) \
                 before releasing the protecting latch"
              mloc
              ("page mutation " ^ mname
             ^ " reaches a latch release with no log append in the same \
                latched section")
          end)
        s.pend)
    sts;
  List.map (fun s -> { s with pend = [] }) sts

(* --- the walker --- *)

let positional args =
  List.filter_map
    (fun (l, e) -> match l with Asttypes.Nolabel -> Some e | _ -> None)
    args

let rec strip_fun e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_newtype (_, e) -> strip_fun e
  | _ -> e

let is_function_expr e =
  match (strip_fun e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

let binding_name vb =
  let rec pat p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> txt
    | Ppat_constraint (p, _) -> pat p
    | _ -> "_"
  in
  pat vb.pvb_pat

let rec collect_allows env (attrs : attributes) =
  match attrs with
  | [] -> []
  | a :: rest -> (
    match allow_of_attribute a with
    | None -> collect_allows env rest
    | Some (Ok allow) ->
      env.all_allows := allow :: !(env.all_allows);
      allow :: collect_allows env rest
    | Some (Error (loc, why)) ->
      env.file_findings :=
        { f_rule = "allow"; f_loc = loc; f_msg = why;
          f_hint = "use [@lint.allow \"Ln: justification\"]"; f_allows = [] }
        :: !(env.file_findings);
      collect_allows env rest)

and walk env sts e =
  let env =
    match collect_allows env e.pexp_attributes with
    | [] -> env
    | extra -> { env with allows = extra @ env.allows }
  in
  match e.pexp_desc with
  | Pexp_apply (f, args) -> apply env sts f args
  | Pexp_let (_, vbs, body) ->
    let sts = List.fold_left (fun sts vb -> binding env sts vb) sts vbs in
    walk env sts body
  | Pexp_sequence (a, b) -> walk env (walk env sts a) b
  | Pexp_ifthenelse (c, t, eo) ->
    let sc = walk env sts c in
    let st = walk env sc t in
    let se = match eo with Some el -> walk env sc el | None -> sc in
    union st se
  | Pexp_match (scrut, cases) ->
    let s0 = walk env sts scrut in
    cases_union env s0 cases
  | Pexp_try (body, handlers) ->
    (* handlers approximated as running from the entry state *)
    let sb = walk env sts body in
    let sh = cases_union env sts handlers in
    union sb sh
  | Pexp_fun (_, _, _, body) ->
    (* closure creation: runs zero or more times *)
    union sts (walk env sts body)
  | Pexp_function cases -> union sts (cases_union env sts cases)
  | Pexp_while (c, b) ->
    let sc = walk env sts c in
    union sc (walk env sc b)
  | Pexp_for (_, a, b, _, body) ->
    let s1 = walk env (walk env sts a) b in
    union s1 (walk env s1 body)
  | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> walk env sts a
  | Pexp_construct (_, None) | Pexp_variant (_, None) -> sts
  | Pexp_tuple es | Pexp_array es -> List.fold_left (walk env) sts es
  | Pexp_record (fields, base) ->
    let sts = match base with Some b -> walk env sts b | None -> sts in
    List.fold_left (fun sts (_, fe) -> walk env sts fe) sts fields
  | Pexp_field (b, _) -> walk env sts b
  | Pexp_setfield (a, _, b) -> walk env (walk env sts a) b
  | Pexp_constraint (a, _)
  | Pexp_coerce (a, _, _)
  | Pexp_newtype (_, a)
  | Pexp_open (_, a)
  | Pexp_lazy a
  | Pexp_poly (a, _) -> walk env sts a
  | Pexp_letmodule (name, mexpr, body) ->
    (match (name.txt, mexpr.pmod_desc) with
    | Some n, Pmod_ident { txt; _ } ->
      Hashtbl.replace env.aliases n
        (String.split_on_char '.'
           (String.concat "." (strip_oib (Longident.flatten txt))))
    | _ -> ());
    walk env sts body
  | Pexp_letexception (_, body) -> walk env sts body
  | Pexp_assert a -> (
    match a.pexp_desc with
    | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) -> []
    | _ -> walk env sts a)
  | _ -> sts

and cases_union env s0 cases =
  match cases with
  | [] -> s0
  | _ ->
    List.fold_left
      (fun acc c ->
        let sg =
          match c.pc_guard with Some g -> walk env s0 g | None -> s0
        in
        union acc (walk env sg c.pc_rhs))
      [] cases

and binding env sts vb =
  if is_function_expr vb.pvb_expr then begin
    let allows = collect_allows env vb.pvb_attributes @ env.allows in
    sub_unit env ~name:(binding_name vb) ~loc:vb.pvb_loc ~allows vb.pvb_expr;
    sts
  end
  else
    let env =
      match collect_allows env vb.pvb_attributes with
      | [] -> env
      | extra -> { env with allows = extra @ env.allows }
    in
    walk env sts vb.pvb_expr

and apply env sts f args =
  match f.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    let name = resolve env txt in
    match (name, args) with
    | "|>", [ (_, a); (_, fn) ] -> pipe env sts a fn
    | "@@", [ (_, fn); (_, a) ] -> pipe env sts a fn
    | _ -> named_call env sts name f.pexp_loc args)
  | _ ->
    let sts = walk env sts f in
    walk_args env sts args

and pipe env sts a fn =
  let sts = walk env sts a in
  match (strip_fun fn).pexp_desc with
  | Pexp_fun (_, _, _, body) -> walk env sts body
  | Pexp_function cases -> cases_union env sts cases
  | Pexp_ident { txt; _ } ->
    named_call env sts (resolve env txt) fn.pexp_loc []
  | _ -> walk env sts fn

and walk_args env sts args =
  List.fold_left
    (fun sts (_, a) ->
      match (strip_fun a).pexp_desc with
      | Pexp_fun _ | Pexp_function _ ->
        (* callback: zero-or-once inline, under the current latch state *)
        walk env sts a
      | _ -> walk env sts a)
    sts args

and named_call env sts name loc args =
  let pos = positional args in
  let arg1 = match pos with a :: _ -> Some (expr_key a) | [] -> None in
  match name with
  | "Latch.acquire" -> (
    match pos with
    | latch_e :: mode_e :: _ ->
      let sts = walk_args env sts args in
      let key = expr_key latch_e and mode = mode_key mode_e in
      record_call env sts name loc arg1;
      env.acc.acq <- true;
      List.map (fun s -> { s with held = (key, mode, loc) :: s.held }) sts
    | _ ->
      record_call env sts name loc arg1;
      sts)
  | "Latch.release" -> (
    match pos with
    | latch_e :: mode_e :: _ ->
      let sts = walk_args env sts args in
      let key = expr_key latch_e and mode = mode_key mode_e in
      record_call env sts name loc arg1;
      let sts = l3_flush env sts in
      List.map
        (fun s ->
          let rec drop = function
            | [] -> []
            | (k, m, al) :: rest when k = key ->
              if mode <> "?" && m <> "?" && m <> mode then
                emit env ~rule:"L1"
                  ~hint:"release with the same mode that was acquired" loc
                  ("latch " ^ key ^ " released in mode " ^ mode
                 ^ " but acquired in mode " ^ m ^ " at line "
                 ^ string_of_int al.Location.loc_start.pos_lnum);
              rest
            | x :: rest -> x :: drop rest
          in
          { s with held = drop s.held })
        sts
    | _ ->
      record_call env sts name loc arg1;
      sts)
  | "Latch.with_latch" -> (
    match pos with
    | latch_e :: mode_e :: rest ->
      let key = expr_key latch_e and mode = mode_key mode_e in
      record_call env sts name loc arg1;
      env.acc.acq <- true;
      let inner =
        List.map (fun s -> { s with held = (key, mode, loc) :: s.held }) sts
      in
      let inner =
        match rest with
        | fn :: _ -> (
          match (strip_fun fn).pexp_desc with
          | Pexp_fun (_, _, _, body) -> walk env inner body
          | Pexp_function cases -> cases_union env inner cases
          | Pexp_ident { txt; _ } ->
            named_call env inner (resolve env txt) fn.pexp_loc []
          | _ -> walk env inner fn)
        | [] -> inner
      in
      let inner = l3_flush env inner in
      List.map
        (fun s ->
          let rec drop = function
            | [] -> []
            | (k, _, _) :: rest when k = key -> rest
            | x :: rest -> x :: drop rest
          in
          { s with held = drop s.held })
        inner
    | _ ->
      record_call env sts name loc arg1;
      sts)
  | _ when List.mem name raise_names ->
    let sts = walk_args env sts args in
    record_call env sts name loc arg1;
    []
  | _ ->
    let sts = walk_args env sts args in
    record_call env sts name loc arg1;
    let sts =
      if env.in_l3 && List.mem name env.cfg.l3_mutators then
        List.map (fun s -> { s with pend = (name, loc) :: s.pend }) sts
      else if List.mem name env.cfg.l3_appends then
        List.map (fun s -> { s with pend = [] }) sts
      else sts
    in
    sts

(* --- units --- *)

and analyze_unit env ~name ~loc ~allows expr =
  let acc =
    { calls = []; local = []; acq = false; l3_seen = Hashtbl.create 8 }
  in
  let env = { env with allows; acc } in
  let rec body_of e =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, b) -> body_of b
    | Pexp_newtype (_, b) -> body_of b
    | Pexp_constraint (b, _) -> body_of b
    | _ -> e
  in
  let b = body_of expr in
  let exits =
    match b.pexp_desc with
    | Pexp_function cases -> cases_union env [ empty_state ] cases
    | _ -> walk env [ empty_state ] b
  in
  (* L1: a latch acquired in this unit survives to a normal exit *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      List.iter
        (fun (k, m, al) ->
          let kk = loc_key al in
          if not (Hashtbl.mem seen kk) then begin
            Hashtbl.add seen kk ();
            emit env ~rule:"L1"
              ~hint:
                "balance the acquire on every path, use Latch.with_latch, \
                 or justify the ownership transfer with [@lint.allow]"
              al
              ("latch " ^ k ^ " (" ^ m
             ^ ") acquired here is not released on every path of " ^ name)
          end)
        s.held)
    exits;
  env.units :=
    {
      u_module = env.modname;
      u_file = env.file;
      u_name = name;
      u_loc = loc;
      u_allows = allows;
      u_calls = List.rev acc.calls;
      u_acquires_latch = acc.acq;
      u_local = List.rev acc.local;
    }
    :: !(env.units)

and sub_unit env ~name ~loc ~allows expr =
  let full = ref name in
  (* nested unit names are dotted onto the enclosing unit's name *)
  (match !(env.units) with _ -> ());
  analyze_unit env ~name:!full ~loc ~allows expr

(* --- structure traversal --- *)

let register_module_binding env (mb : module_binding) prefix process =
  match mb.pmb_name.txt with
  | None -> ()
  | Some n -> (
    let rec go (me : module_expr) =
      match me.pmod_desc with
      | Pmod_ident { txt; _ } ->
        Hashtbl.replace env.aliases n (strip_oib (Longident.flatten txt))
      | Pmod_structure items -> process (prefix ^ n ^ ".") items
      | Pmod_functor (_, body) -> go body
      | Pmod_constraint (m, _) -> go m
      | _ -> ()
    in
    go mb.pmb_expr)

let summarize_source ?(config = default_config) ~file src =
  let modname = module_name_of_file file in
  let units = ref [] in
  let file_findings = ref [] in
  let all_allows = ref [] in
  let aliases = Hashtbl.create 16 in
  let env0 =
    {
      cfg = config;
      aliases;
      modname;
      in_l3 = List.mem modname config.l3_modules;
      allows = [];
      acc = { calls = []; local = []; acq = false; l3_seen = Hashtbl.create 1 };
      units;
      file;
      file_findings;
      all_allows;
    }
  in
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  Location.input_name := file;
  match Parse.implementation lexbuf with
  | exception exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok report) ->
        let s = Format.asprintf "%a" Location.print_report report in
        String.map (function '\n' -> ' ' | c -> c) s
      | _ -> Printexc.to_string exn
    in
    {
      fs_file = file;
      fs_module = modname;
      fs_units = [];
      fs_allows = [];
      fs_findings =
        [
          {
            f_rule = "parse";
            f_loc = Location.in_file file;
            f_msg = "parse error: " ^ msg;
            f_hint = "fix the syntax error";
            f_allows = [];
          };
        ];
    }
  | str ->
    (* pre-scan: module aliases + file-level floating allows *)
    let file_allows = ref [] in
    let rec prescan items =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_module mb -> (
            match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
            | Some n, Pmod_ident { txt; _ } ->
              Hashtbl.replace aliases n (strip_oib (Longident.flatten txt))
            | Some _, Pmod_structure inner -> prescan inner
            | _ -> ())
          | Pstr_attribute attr -> (
            match allow_of_attribute attr with
            | Some (Ok allow) ->
              all_allows := allow :: !all_allows;
              file_allows := allow :: !file_allows
            | Some (Error (loc, why)) ->
              file_findings :=
                {
                  f_rule = "allow";
                  f_loc = loc;
                  f_msg = why;
                  f_hint = "use [@@@lint.allow \"Ln: justification\"]";
                  f_allows = [];
                }
                :: !file_findings
            | None -> ())
          | _ -> ())
        items
    in
    prescan str;
    let rec process prefix items =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                let allows =
                  collect_allows env0 vb.pvb_attributes @ !file_allows
                in
                analyze_unit env0
                  ~name:(prefix ^ binding_name vb)
                  ~loc:vb.pvb_loc ~allows vb.pvb_expr)
              vbs
          | Pstr_eval (e, attrs) ->
            let allows = collect_allows env0 attrs @ !file_allows in
            analyze_unit env0 ~name:(prefix ^ "_toplevel") ~loc:item.pstr_loc
              ~allows e
          | Pstr_module mb -> register_module_binding env0 mb prefix process
          | _ -> ())
        items
    in
    process "" str;
    {
      fs_file = file;
      fs_module = modname;
      fs_units = List.rev !units;
      fs_findings = List.rev !file_findings;
      fs_allows = List.rev !all_allows;
    }

let summarize_file ?config file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  summarize_source ?config ~file src
