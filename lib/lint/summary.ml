open Parsetree

(* Per-unit summaries plus the re-runnable transfer functions the
   interprocedural engine (Callgraph + Dataflow) iterates to a fixpoint.

   Pass A (register = true) parses each file, creates one [u] per value
   binding, records calls/allows, and runs the transfer function once
   under [initial_ctx] (no interprocedural knowledge). The dataflow
   solver then re-runs units via [u_rerun] with a [ctx] that resolves
   callee effects from the evolving solution; a final emission pass
   ([x_emit = true]) re-walks every unit to refresh findings with the
   converged interprocedural state. *)

type config = {
  l3_modules : string list;
  l3_mutators : string list;
  l3_appends : string list;
  (* L7: page-handle escape *)
  l7_sources : string list;
      (* calls whose result is a latched page handle even when their body
         is out of tree; in-tree transfers are inferred from effects *)
  l7_exempt_modules : string list;
      (* page-cache internals that legitimately store page structures *)
  (* L8: lifecycle protocol automaton *)
  l8_states : string list;  (* DFA states, bit i = i-th constructor *)
  l8_legal : (string * string) list;  (* legal (from, to) transitions *)
  l8_state_fn : string;  (* state-reading call, e.g. "Catalog.state" *)
  l8_mutators : (string * (int * int)) list;
      (* transition calls: name -> positional (index arg, state arg) *)
  l8_initializers : (string * string * string) list;
      (* descriptor-creating calls: (name, index label, state label) *)
  l8_read_calls : string list;  (* index-read entry points to gate *)
  l8_read_modules : string list;  (* modules where the read gate applies *)
  l8_exempt : string list;  (* e.g. recovery's restore_state *)
  (* L9: WAL exhaustiveness *)
  l9_record_module : string;
  l9_type : string;
  l9_codec_modules : string list;
  l9_redo_modules : string list;
  l9_undo_modules : string list;
  l9_redo_classifier : string;
  l9_undo_classifier : string;
  (* L10/L11: yield-point atomicity & stale projections *)
  l10_yield_always : string list;
      (* base calls that suspend on every invocation (Sched.yield &c) *)
  l10_yield_may : string list;
      (* base calls that may suspend (lock waits, log forces) *)
  l10_shared_fields : (string * string) list;
      (* mutable record field name -> shared-state class key *)
  l10_shared_calls : (string * (string * int list * bool)) list;
      (* call name -> (class key, instance arg positions, is_write) *)
  l10_exempt_modules : string list;
      (* single-fiber phases (recovery) where staleness is impossible *)
}

let default_config =
  {
    l3_modules = [ "Table_ops"; "Heap_file"; "Btree" ];
    l3_mutators = [ "Heap_page.put"; "Heap_page.remove" ];
    l3_appends = [ "Log_manager.append"; "Txn_manager.log_op" ];
    l7_sources = [ "Heap_file.latch_rid" ];
    l7_exempt_modules = [ "Page"; "Buffer_pool"; "Latch" ];
    l8_states = [ "Disabled"; "Write_only"; "Readable" ];
    l8_legal =
      [
        ("Disabled", "Write_only");
        ("Write_only", "Readable");
        ("Write_only", "Disabled");
        ("Readable", "Disabled");
      ];
    l8_state_fn = "Catalog.state";
    l8_mutators = [ ("Catalog.set_state", (2, 3)) ];
    l8_initializers = [ ("Catalog.add_index", "index_id", "state") ];
    l8_read_calls = [ "Btree.find"; "Btree.iter_range"; "Btree.iter_from" ];
    l8_read_modules = [ "Table_ops" ];
    l8_exempt = [ "Catalog.restore_state" ];
    l9_record_module = "Log_record";
    l9_type = "body";
    l9_codec_modules = [ "Log_codec" ];
    l9_redo_modules = [ "Restart"; "Engine"; "Side_file" ];
    l9_undo_modules = [ "Table_ops"; "Restart" ];
    l9_redo_classifier = "is_redoable";
    l9_undo_classifier = "is_undoable";
    l10_yield_always =
      [ "Sched.yield"; "Sched.suspend"; "Condvar.wait"; "Sched.Condvar.wait";
        "Sched.Cond.wait" ];
    l10_yield_may =
      [ "Lock_manager.lock"; "Lock_manager.instant_lock";
        "Log_manager.flush"; "Log_manager.flush_all" ];
    l10_shared_fields =
      [
        ("phase", "Build_status.phase");
        ("keys_processed", "Build_status.keys_processed");
        ("backlog", "Build_status.backlog");
        ("level", "Throttle.level");
        ("state", "Catalog.state");
        ("lsn", "Page.lsn");
      ];
    l10_shared_calls =
      [
        ("Catalog.state", ("Catalog.state", [ 1 ], false));
        ("Catalog.set_state", ("Catalog.state", [ 2 ], true));
        ("Catalog.set_phase", ("Catalog.phase", [ 1 ], true));
        ("Build_status.set_phase", ("Build_status.phase", [ 0 ], true));
        ("Throttle.level", ("Throttle.level", [ 0 ], false));
        ("Throttle.scaled", ("Throttle.level", [ 0 ], false));
        ("Throttle.extra_yields", ("Throttle.level", [ 0 ], false));
        ("Range_set.add", ("Range_set", [ 0 ], true));
        ("Range_set.mem", ("Range_set", [ 0 ], false));
        ("Range_set.max_covered", ("Range_set", [ 0 ], false));
        ("Range_set.missing", ("Range_set", [ 0 ], false));
      ];
    l10_exempt_modules = [ "Restart" ];
  }

type allow = {
  a_rule : string;
  a_reason : string;
  a_loc : Location.t;
  a_used : bool ref;
      (* flipped by Rules when this allow suppresses a diagnostic; an
         allow that stays false across a whole run is dead weight *)
}

type call = {
  c_callee : string;
  c_loc : Location.t;
  c_held : (string * string) list;
  c_arg1 : string option;
  c_args : string list;  (* positional argument keys, in order *)
  c_callback : bool;
      (* a module-qualified function passed as an argument: a call-graph
         edge for reachability, but no effect application at this site *)
  c_allows : allow list;
}

type finding = {
  f_rule : string;
  f_loc : Location.t;
  f_msg : string;
  f_hint : string;
  f_trace : string list;  (* interprocedural frames, innermost first *)
  f_allows : allow list;
}

(* Interprocedural context a unit's transfer function runs under. The
   initial pass knows nothing; the solver and the emission pass thread
   in the evolving callee-effect solution. *)
type ctx = {
  x_effects : caller_module:string -> string -> Latch_effect.t option;
      (* None: unknown/out-of-tree callee (identity, no tracking) *)
  x_appends : caller_module:string -> string -> bool;
      (* callee may (transitively) append to the WAL: discharges L3 *)
  x_mutators : caller_module:string -> string -> (int * int) option;
      (* callee is a (possibly wrapped) lifecycle mutator: positional
         (index arg, state arg) *)
  x_yields : caller_module:string -> string -> Yield_effect.t option;
      (* callee's may-yield summary; None: unknown/out-of-tree callee
         (assumed non-yielding — base sets name the true primitives) *)
  x_emit : bool;  (* final pass: produce findings *)
}

let initial_ctx =
  {
    x_effects = (fun ~caller_module:_ _ -> None);
    x_appends = (fun ~caller_module:_ _ -> false);
    x_mutators = (fun ~caller_module:_ _ -> None);
    x_yields = (fun ~caller_module:_ _ -> None);
    x_emit = false;
  }

type u = {
  u_module : string;
  u_file : string;
  u_name : string;
  u_loc : Location.t;
  u_allows : allow list;
  u_params : string list;  (* positional parameter names, in order *)
  mutable u_calls : call list;
  mutable u_acquires_latch : bool;
  mutable u_local : finding list;
  mutable u_effect : Latch_effect.t;
  mutable u_yield : Yield_effect.t;
  mutable u_yield_sites : (Location.t * string) list;
      (* suspension points in walk order: (site, witness chain) *)
  mutable u_accesses : (string * string * bool * Location.t) list;
      (* shared-state footprint: (class, inst, is_write, site) *)
  mutable u_crossings : string list;
      (* class keys whose read-compute-write spans a yield (recorded
         before [@lint.allow] suppression — the static L12 half) *)
  u_rerun : ctx -> unit;
      (* re-execute the transfer function under a new context, refreshing
         u_calls / u_acquires_latch / u_local / u_effect / u_yield &c
         in place *)
}

(* L9 raw material, collected once per file: declared variants,
   constructors mentioned in patterns / constructions anywhere, and the
   arms of single-match classifier functions (is_redoable & co). *)
type l9_info = {
  l9_variants : (string * (string * Location.t) list) list;
  l9_pats : (string, unit) Hashtbl.t;
  l9_cons : (string, unit) Hashtbl.t;
  l9_arms : (string * string * bool) list;
      (* (classifier, ctor or "_", rhs is literal [false]) *)
}

type file_summary = {
  fs_file : string;
  fs_module : string;
  fs_units : u list;
  fs_findings : finding list;
  fs_allows : allow list;
      (* every well-formed [@lint.allow] parsed in the file, in source
         order — the registry the unused-allow report is computed from *)
  fs_l9 : l9_info;
}

let module_name_of_file f =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename f))

(* --- [@lint.allow "Ln: reason"] attributes --- *)

let allow_of_attribute (attr : attribute) =
  if attr.attr_name.txt <> "lint.allow" then None
  else
    let malformed why = Some (Error (attr.attr_loc, why)) in
    match attr.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] -> (
      match String.index_opt s ':' with
      | Some i ->
        let rule = String.trim (String.sub s 0 i) in
        let reason =
          String.trim (String.sub s (i + 1) (String.length s - i - 1))
        in
        let rule_ok =
          (String.length rule = 2
          && rule.[0] = 'L'
          && rule.[1] >= '1'
          && rule.[1] <= '9')
          || List.mem rule [ "L10"; "L11"; "L12" ]
        in
        if not rule_ok then
          malformed ("[@lint.allow]: unknown rule " ^ Filename.quote rule)
        else if String.length reason < 8 then
          malformed "[@lint.allow]: justification too short (>= 8 chars)"
        else
          Some
            (Ok
               { a_rule = rule; a_reason = reason; a_loc = attr.attr_loc;
                 a_used = ref false })
      | None -> malformed "[@lint.allow]: missing \"Ln:\" rule prefix")
    | _ -> malformed "[@lint.allow]: payload must be a string literal"

(* --- abstract state --- *)

(* A tracked latch: acquired here (or produced by a callee's effect),
   rooted at zero or more variables that can name it. A pending item is
   the return value of the last call, not yet bound to a name. *)
type item = {
  i_roots : string list;
  i_path : string;  (* field path from a root, e.g. ".Page.latch" *)
  i_mode : string;
  i_loc : Location.t;
  i_origin : string list;  (* interprocedural frames, innermost first *)
  i_pending : bool;
}

(* A shared-state read the path has performed: class key (what kind of
   state), instance key (which object, by source text), the read site,
   and — once an unlatched may-yield call has been crossed — the yield
   witness chain that staled it. *)
type srd = {
  sr_class : string;
  sr_inst : string;
  sr_loc : Location.t;
  sr_stale : string option;
}

(* A local binding whose RHS projected a value out of shared state
   (L11): the variable, the (class, instance) it was projected from,
   the binding site, and the staling yield witness once crossed. *)
type prj = {
  pj_var : string;
  pj_class : string;
  pj_inst : string;
  pj_loc : Location.t;
  pj_stale : string option;
}

type state = {
  held : item list;
  pend : (string * Location.t) list;  (* L3: mutations awaiting an append *)
  dead : (string * Location.t) list;  (* L7: handle var -> release site *)
  facts : (string * int) list;  (* L8: index key -> possible-state bitmask *)
  neg : Latch_effect.atom list;  (* releases of caller-held param latches *)
  alias : string list;  (* roots the last call's return value aliases *)
  sreads : srd list;  (* L10: shared reads, freshest per (class, inst) *)
  projs : prj list;  (* L11: projected-value bindings *)
  ydef : bool;  (* the path has definitely suspended at least once *)
}

let empty_state =
  { held = []; pend = []; dead = []; facts = []; neg = []; alias = [];
    sreads = []; projs = []; ydef = false }

let max_states = 48

let dedup_states sts =
  let rec go seen = function
    | [] -> List.rev seen
    | s :: rest ->
      if List.mem s seen then go seen rest else go (s :: seen) rest
  in
  let d = go [] sts in
  if List.length d > max_states then (
    let rec take n = function
      | x :: r when n > 0 -> x :: take (n - 1) r
      | _ -> []
    in
    take max_states d)
  else d

let union a b = dedup_states (a @ b)

(* --- per-unit accumulator and environment --- *)

type acc = {
  mutable calls : call list;
  mutable local : finding list;
  mutable acq : bool;
  mutable yields : (Location.t * string) list;
      (* yield sites in walk order: (site, witness chain) *)
  mutable accesses : (string * string * bool * Location.t) list;
      (* shared accesses in walk order: (class, inst, is_write, site) *)
  crossings : (string, unit) Hashtbl.t;
      (* class keys with a stale-read-then-write window, recorded
         before suppression — the static half of the L12 twin *)
  l3_seen : (string, unit) Hashtbl.t;  (* dedup sites across states *)
  l7_seen : (string, unit) Hashtbl.t;
  l8_seen : (string, unit) Hashtbl.t;
  l10_seen : (string, unit) Hashtbl.t;
  l11_seen : (string, unit) Hashtbl.t;
  handles : (string, Location.t) Hashtbl.t;  (* page-handle vars *)
}

let fresh_acc () =
  {
    calls = [];
    local = [];
    acq = false;
    yields = [];
    accesses = [];
    crossings = Hashtbl.create 4;
    l3_seen = Hashtbl.create 8;
    l7_seen = Hashtbl.create 8;
    l8_seen = Hashtbl.create 8;
    l10_seen = Hashtbl.create 4;
    l11_seen = Hashtbl.create 4;
    handles = Hashtbl.create 8;
  }

type env = {
  cfg : config;
  aliases : (string, string list) Hashtbl.t;
  modname : string;
  in_l3 : bool;
  in_l7 : bool;
  in_l10 : bool;
  allows : allow list;
  acc : acc;
  units : u list ref;
  file : string;
  file_findings : finding list ref;
  all_allows : allow list ref;  (* registration order = source order *)
  allow_memo : (string, allow option) Hashtbl.t;
      (* keyed by attribute location: reruns must see the same physical
         allow records (a_used identity) and must not re-register them *)
  register : bool;  (* first pass only: create sub-units, register allows *)
  ctx : ctx;
  params : string list;  (* current unit's positional parameters *)
  uname : string;  (* scoped name of the unit being walked *)
  scope : (string * string) list;
      (* lexically visible local functions, name -> scoped unit name
         ("go" -> "descend_read.go"): keeps the ubiquitous local helper
         names from aliasing across units in the call graph *)
}

let emit ?(trace = []) env ~rule ~hint loc msg =
  if env.ctx.x_emit then
    env.acc.local <-
      { f_rule = rule; f_loc = loc; f_msg = msg; f_hint = hint;
        f_trace = trace; f_allows = env.allows }
      :: env.acc.local

(* --- name resolution (aliases + Oib_* wrapper stripping) --- *)

let rec strip_oib = function
  | p :: (_ :: _ as rest)
    when String.length p >= 4 && String.sub p 0 4 = "Oib_" ->
    strip_oib rest
  | l -> l

let resolve env lid =
  let parts = strip_oib (Longident.flatten lid) in
  let parts =
    match parts with
    | hd :: tl -> (
      match Hashtbl.find_opt env.aliases hd with
      | Some repl -> repl @ tl
      | None -> parts)
    | [] -> parts
  in
  match parts with
  | [ n ] -> (
    match List.assoc_opt n env.scope with Some scoped -> scoped | None -> n)
  | _ -> String.concat "." parts

let rec expr_key e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> String.concat "." (Longident.flatten txt)
  | Pexp_field (b, { txt; _ }) ->
    expr_key b ^ "." ^ String.concat "." (Longident.flatten txt)
  | Pexp_constraint (e, _) | Pexp_open (_, e) | Pexp_newtype (_, e) ->
    expr_key e
  | Pexp_apply (f, _) -> "(" ^ expr_key f ^ " _)"
  | _ -> "<expr>"

let mode_key e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident (("S" | "X") as m); _ }, None) ->
    m
  | _ -> "?"

let loc_key (loc : Location.t) =
  loc.loc_start.pos_fname ^ ":"
  ^ string_of_int loc.loc_start.pos_lnum
  ^ ":"
  ^ string_of_int (loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let short_loc (loc : Location.t) =
  Filename.basename loc.loc_start.pos_fname
  ^ ":"
  ^ string_of_int loc.loc_start.pos_lnum

(* split "p.Page.latch" into root "p" and path ".Page.latch" *)
let split_key k =
  match String.index_opt k '.' with
  | None -> (k, "")
  | Some i ->
    (String.sub k 0 i, String.sub k i (String.length k - i))

(* the argument expression as a rootable name: a pure ident is its own
   root; a field chain roots at its full key (releases match on full
   key = root ^ path, so composite roots still line up) *)
let arg_root e =
  match expr_key e with "<expr>" | "(" -> None | k -> Some k

let param_index params name =
  let rec go i = function
    | [] -> None
    | p :: _ when p = name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 params

(* --- small parsetree utilities --- *)

let raise_names =
  [ "raise"; "raise_notrace"; "failwith"; "invalid_arg";
    "Stdlib.raise"; "Stdlib.raise_notrace"; "Stdlib.failwith";
    "Stdlib.invalid_arg" ]

let positional args =
  List.filter_map
    (fun (l, e) -> match l with Asttypes.Nolabel -> Some e | _ -> None)
    args

let labeled args name =
  List.find_map
    (fun (l, e) ->
      match l with
      | Asttypes.Labelled n | Asttypes.Optional n when n = name -> Some e
      | _ -> None)
    args

let rec strip_fun e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_newtype (_, e) -> strip_fun e
  | _ -> e

let is_function_expr e =
  match (strip_fun e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

let binding_name vb =
  let rec pat p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> txt
    | Ppat_constraint (p, _) -> pat p
    | _ -> "_"
  in
  pat vb.pvb_pat

(* variables bound by a pattern *)
let pat_vars p =
  let out = ref [] in
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> out := txt :: !out
    | Ppat_alias (p, { txt; _ }) ->
      out := txt :: !out;
      go p
    | Ppat_tuple ps | Ppat_array ps -> List.iter go ps
    | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) -> go p
    | Ppat_record (fields, _) -> List.iter (fun (_, p) -> go p) fields
    | Ppat_or (a, b) ->
      go a;
      go b
    | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p) -> go p
    | _ -> ()
  in
  go p;
  !out

(* positional parameter names of a function expression *)
let rec fun_params e =
  match e.pexp_desc with
  | Pexp_fun (Asttypes.Nolabel, _, p, body) ->
    let n = match pat_vars p with [ v ] -> v | _ -> "_" in
    n :: fun_params body
  | Pexp_fun (_, _, _, body) -> "_" :: fun_params body
  | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> fun_params body
  | _ -> []

(* idents mentioned anywhere in an expression (free or bound — an
   over-approximation used for escape-capture checks) *)
let mentioned_idents e =
  let out = Hashtbl.create 8 in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; _ } ->
            Hashtbl.replace out n ()
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  out

(* variables bound by any pattern inside an expression (parameters,
   inner lets, match cases) — used to discount shadowed names when
   checking what a closure captures *)
let bound_idents e =
  let out = Hashtbl.create 8 in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
            Hashtbl.replace out txt ()
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.expr it e;
  out

(* idents reachable as (components of) a value expression: bare idents,
   possibly under tuples/constructors/records — but not under field
   projections or applications, so storing [p.Page.id] does not count as
   storing the handle [p] *)
let value_root_idents e =
  let out = Hashtbl.create 4 in
  let rec go e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; _ } -> Hashtbl.replace out n ()
    | Pexp_tuple es | Pexp_array es -> List.iter go es
    | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> go a
    | Pexp_record (fields, base) ->
      Option.iter go base;
      List.iter (fun (_, fe) -> go fe) fields
    | Pexp_constraint (a, _) | Pexp_open (_, a) | Pexp_newtype (_, a) ->
      go a
    | Pexp_let (_, _, b) | Pexp_sequence (_, b) -> go b
    | Pexp_ifthenelse (_, t, eo) ->
      go t;
      Option.iter go eo
    | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      List.iter (fun c -> go c.pc_rhs) cases
    | _ -> ()
  in
  go e;
  out

(* idents returned by value in tail position: only idents that appear
   as (components of) the final value — tuples, constructors, records —
   never idents inside applications, conditions or scrutinees. *)
let tail_value_idents body =
  let out = Hashtbl.create 8 in
  let rec value e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; _ } -> Hashtbl.replace out n ()
    | Pexp_tuple es | Pexp_array es -> List.iter value es
    | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> value a
    | Pexp_record (fields, base) ->
      Option.iter value base;
      List.iter (fun (_, fe) -> value fe) fields
    | Pexp_constraint (a, _) | Pexp_open (_, a) | Pexp_newtype (_, a) ->
      value a
    | _ -> ()
  in
  let rec tail e =
    match e.pexp_desc with
    | Pexp_let (_, _, b) | Pexp_sequence (_, b) -> tail b
    | Pexp_ifthenelse (_, t, eo) ->
      tail t;
      Option.iter tail eo
    | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      List.iter (fun c -> tail c.pc_rhs) cases
    | Pexp_constraint (a, _) | Pexp_open (_, a) | Pexp_newtype (_, a) ->
      tail a
    | _ -> value e
  in
  tail body;
  out

(* --- L8: lifecycle fact lattice ------------------------------------- *)

let l8_bit cfg name =
  let rec go i = function
    | [] -> None
    | s :: _ when s = name -> Some (1 lsl i)
    | _ :: rest -> go (i + 1) rest
  in
  go 0 cfg.l8_states

let l8_full cfg = (1 lsl List.length cfg.l8_states) - 1

let l8_legal_sources cfg to_ =
  List.fold_left
    (fun m (f, t) ->
      if t = to_ then
        match l8_bit cfg f with Some b -> m lor b | None -> m
      else m)
    0 cfg.l8_legal

let fact_key k = "st:" ^ k

let fact_of s key = List.assoc_opt key s.facts

let set_fact s key mask =
  { s with facts = (key, mask) :: List.remove_assoc key s.facts }

let meet_fact cfg s key mask =
  let cur = match fact_of s key with Some m -> m | None -> l8_full cfg in
  set_fact s key (cur land mask)

(* the constructor a state-literal expression denotes, if any *)
let l8_ctor cfg e =
  match (strip_fun e).pexp_desc with
  | Pexp_construct ({ txt; _ }, None) -> (
    match List.rev (Longident.flatten txt) with
    | last :: _ when List.mem last cfg.l8_states -> Some last
    | _ -> None)
  | _ -> None

(* is [e] a read of some index's lifecycle state? Returns the fact key
   identifying the index: either [Catalog.state t id] (key from the id
   argument) or a [.state] field access (key from the record base). *)
let l8_state_read env e =
  match (strip_fun e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when resolve env txt = env.cfg.l8_state_fn -> (
    match positional args with
    | [ _; id ] | [ id ] -> Some (fact_key (expr_key id))
    | _ -> None)
  | Pexp_field (b, { txt; _ }) -> (
    match List.rev (Longident.flatten txt) with
    | "state" :: _ -> Some (fact_key (expr_key b))
    | _ -> None)
  | _ -> None

(* Refine [facts] from a boolean condition: returns per-branch state
   transformers. Recognizes [state = Ctor], [state <> Ctor], [&&], [not]
   (and parenthesized combinations); anything else refines nothing. *)
let rec l8_cond env cond =
  match (strip_fun cond).pexp_desc with
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident ("=" | "<>" as op); _ }; _ },
       [ (_, a); (_, b) ]) -> (
    let read, lit =
      match (l8_state_read env a, l8_ctor env.cfg b) with
      | (Some _ as r), (Some _ as l) -> (r, l)
      | _ -> (l8_state_read env b, l8_ctor env.cfg a)
    in
    match (read, lit) with
    | Some key, Some ctor -> (
      match l8_bit env.cfg ctor with
      | Some bit ->
        let eq s = meet_fact env.cfg s key bit
        and ne s = meet_fact env.cfg s key (l8_full env.cfg land lnot bit) in
        if op = "=" then (eq, ne) else (ne, eq)
      | None -> (Fun.id, Fun.id))
    | _ -> (Fun.id, Fun.id))
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident "not"; _ }; _ },
       [ (_, a) ]) ->
    let t, f = l8_cond env a in
    (f, t)
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident "&&"; _ }; _ },
       [ (_, a); (_, b) ]) ->
    (* then-branch: both held; else-branch: unknown which failed *)
    let ta, _ = l8_cond env a in
    let tb, _ = l8_cond env b in
    ((fun s -> tb (ta s)), Fun.id)
  | _ -> (Fun.id, Fun.id)

(* state-constructor mask matched by a case pattern (for [match] on a
   state read); [None] = pattern constrains nothing (var / wildcard) *)
let pat_mask cfg p =
  let rec go p =
    match p.ppat_desc with
    | Ppat_construct ({ txt; _ }, None) -> (
      match List.rev (Longident.flatten txt) with
      | last :: _ -> (
        match l8_bit cfg last with Some b -> Some b | None -> None)
      | [] -> None)
    | Ppat_or (a, b) -> (
      match (go a, go b) with
      | Some x, Some y -> Some (x lor y)
      | _ -> None)
    | Ppat_constraint (p, _) | Ppat_alias (p, _) | Ppat_open (_, p) -> go p
    | _ -> None
  in
  go p

(* --- latch bookkeeping ---------------------------------------------- *)

let item_named item key =
  List.exists (fun r -> r ^ item.i_path = key) item.i_roots

let live_handle_roots env sts =
  let out = Hashtbl.create 8 in
  List.iter
    (fun s ->
      List.iter
        (fun i ->
          if i.i_path <> "" then
            List.iter
              (fun r ->
                if not (String.contains r '.')
                   && not (List.mem_assoc r s.dead) then
                  Hashtbl.replace out r ())
              i.i_roots)
        s.held)
    sts;
  Hashtbl.iter
    (fun r _ ->
      if List.for_all (fun s -> not (List.mem_assoc r s.dead)) sts then
        Hashtbl.replace out r ())
    env.acc.handles;
  out

let held_snapshot sts =
  let pairs =
    List.concat_map
      (fun s ->
        List.map
          (fun i ->
            let r = match i.i_roots with r :: _ -> r | [] -> "<ret>" in
            (r ^ i.i_path, i.i_mode))
          s.held)
      sts
  in
  List.sort_uniq compare pairs

let record_call ?(callback = false) env sts name loc pos =
  let keys = List.map expr_key pos in
  env.acc.calls <-
    {
      c_callee = name;
      c_loc = loc;
      c_held = held_snapshot sts;
      c_arg1 = (match keys with k :: _ -> Some k | [] -> None);
      c_args = keys;
      c_callback = callback;
      c_allows = env.allows;
    }
    :: env.acc.calls

(* flush L3 pending mutations at the end of a latched section *)
let l3_flush env sts =
  List.iter
    (fun s ->
      List.iter
        (fun (mname, mloc) ->
          let k = loc_key mloc in
          if not (Hashtbl.mem env.acc.l3_seen k) then begin
            Hashtbl.add env.acc.l3_seen k ();
            emit env ~rule:"L3"
              ~hint:
                "log the mutation (Txn_manager.log_op / Log_manager.append) \
                 before releasing the protecting latch"
              mloc
              ("page mutation " ^ mname
             ^ " reaches a latch release with no log append in the same \
                latched section")
          end)
        s.pend)
    sts;
  List.map (fun s -> { s with pend = [] }) sts

let mark_dead s root loc =
  if String.contains root '.' then s
  else { s with dead = (root, loc) :: List.remove_assoc root s.dead }

(* Release the latch named [key] (mode [mode]) in one state. If nothing
   matches and the key roots at one of our parameters, the unit is
   releasing a latch its caller holds: record an [Unparam] atom. *)
let release_one env ~params s key mode loc =
  let matched = ref false in
  let rec drop = function
    | [] -> []
    | i :: rest when (not !matched) && item_named i key ->
      matched := true;
      if mode <> "?" && i.i_mode <> "?" && i.i_mode <> mode then
        emit env ~rule:"L1"
          ~hint:"release with the same mode that was acquired" loc
          ("latch " ^ key ^ " released in mode " ^ mode
         ^ " but acquired in mode " ^ i.i_mode ^ " at line "
         ^ string_of_int i.i_loc.Location.loc_start.pos_lnum);
      rest
    | i :: rest -> i :: drop rest
  in
  let held = drop s.held in
  let s = { s with held } in
  let root, path = split_key key in
  let s = mark_dead s root loc in
  if !matched then s
  else
    match param_index params root with
    | Some idx when path <> "" || List.length params > 0 ->
      {
        s with
        neg =
          (let atom =
             {
               Latch_effect.a_kind = Latch_effect.Unparam idx;
               a_path = path;
               a_mode = mode;
               a_loc = loc;
               a_origin = [];
             }
           in
           if
             List.exists
               (fun a -> Latch_effect.atom_key a = Latch_effect.atom_key atom)
               s.neg
           then s.neg
           else atom :: s.neg);
      }
    | _ -> s

(* Apply a callee's latch effect at a call site: each alternative forks
   the state; Ret produces a pending item, Param roots a new item at the
   argument, Unparam releases (or records a caller-level release of) the
   argument's latch. Bottom (no alternatives) kills the state — the
   callee never returns normally. *)
let apply_effect env sts name loc pos =
  match env.ctx.x_effects ~caller_module:env.modname name with
  | None -> List.map (fun s -> { s with alias = [] }) sts
  | Some eff ->
    let frame = name ^ " (" ^ short_loc loc ^ ")" in
    let nth_root i =
      match List.nth_opt pos i with Some e -> arg_root e | None -> None
    in
    let alias_roots = List.filter_map nth_root eff.Latch_effect.ret_params in
    let apply_atom s (atom : Latch_effect.atom) =
      match atom.a_kind with
      | Latch_effect.Ret ->
        {
          s with
          held =
            {
              i_roots = [];
              i_path = atom.a_path;
              i_mode = atom.a_mode;
              i_loc = loc;
              i_origin = frame :: atom.a_origin;
              i_pending = true;
            }
            :: s.held;
        }
      | Latch_effect.Param i -> (
        match nth_root i with
        | Some r ->
          {
            s with
            held =
              {
                i_roots = [ r ];
                i_path = atom.a_path;
                i_mode = atom.a_mode;
                i_loc = loc;
                i_origin = frame :: atom.a_origin;
                i_pending = false;
              }
              :: s.held;
          }
        | None -> s)
      | Latch_effect.Unparam i -> (
        match nth_root i with
        | Some r ->
          release_one env ~params:env.params s (r ^ atom.a_path) atom.a_mode
            loc
        | None -> s)
    in
    let out =
      List.concat_map
        (fun s ->
          let s = { s with alias = [] } in
          List.map
            (fun alt ->
              { (List.fold_left apply_atom s alt) with alias = alias_roots })
            eff.Latch_effect.alts)
        sts
    in
    dedup_states out

(* --- the walker ------------------------------------------------------ *)

let collect_allows env (attrs : attributes) =
  List.filter_map
    (fun (a : attribute) ->
      if a.attr_name.txt <> "lint.allow" then None
      else
        let k = loc_key a.attr_loc in
        match Hashtbl.find_opt env.allow_memo k with
        | Some cached -> cached
        | None ->
          let res =
            match allow_of_attribute a with
            | Some (Ok allow) ->
              env.all_allows := allow :: !(env.all_allows);
              Some allow
            | Some (Error (loc, why)) ->
              env.file_findings :=
                { f_rule = "allow"; f_loc = loc; f_msg = why;
                  f_hint = "use [@lint.allow \"Ln: justification\"]";
                  f_trace = []; f_allows = [] }
                :: !(env.file_findings);
              None
            | None -> None
          in
          Hashtbl.replace env.allow_memo k res;
          res)
    attrs

(* L7: storing a live page handle into mutable structure *)
let l7_store_check env sts loc what rhs =
  if env.in_l7 then begin
    let live = live_handle_roots env sts in
    (* a stored closure escapes everything it captures; a stored value
       escapes only handles reachable as the value itself *)
    let ids =
      if is_function_expr rhs then mentioned_idents rhs
      else value_root_idents rhs
    in
    let bound =
      if is_function_expr rhs then bound_idents rhs else Hashtbl.create 1
    in
    Hashtbl.iter
      (fun r _ ->
        if Hashtbl.mem live r && not (Hashtbl.mem bound r) then begin
          let k = "store:" ^ loc_key loc ^ ":" ^ r in
          if not (Hashtbl.mem env.acc.l7_seen k) then begin
            Hashtbl.add env.acc.l7_seen k ();
            emit env ~rule:"L7"
              ~hint:
                "a latched page handle must stay on the stack of the \
                 latched section; copy out the data you need instead"
              loc
              ("page handle " ^ r ^ " (latched) escapes into " ^ what)
          end
        end)
      ids
  end

(* L7: using a handle whose latch has been released *)
let l7_dead_use env sts loc what root =
  if env.in_l7 then
    List.iter
      (fun s ->
        match List.assoc_opt root s.dead with
        | Some rel when Hashtbl.mem env.acc.handles root ->
          let k = "dead:" ^ loc_key loc ^ ":" ^ root in
          if not (Hashtbl.mem env.acc.l7_seen k) then begin
            Hashtbl.add env.acc.l7_seen k ();
            emit env ~rule:"L7"
              ~hint:"re-latch the page before touching it"
              loc
              ("page handle " ^ root ^ " used (" ^ what
             ^ ") after its latch was released at line "
             ^ string_of_int rel.Location.loc_start.pos_lnum)
          end
        | _ -> ())
      sts

(* L7: a closure value (returned / bound, not a direct call argument)
   capturing a live latched handle *)
let l7_capture_check env sts loc fn =
  if env.in_l7 then begin
    let live = live_handle_roots env sts in
    let ids = mentioned_idents fn in
    (* a name the closure re-binds (its own parameter, an inner let) is
       shadowed, not captured *)
    let bound = bound_idents fn in
    Hashtbl.iter
      (fun r _ ->
        if Hashtbl.mem live r && not (Hashtbl.mem bound r) then begin
          let k = "capture:" ^ loc_key loc ^ ":" ^ r in
          if not (Hashtbl.mem env.acc.l7_seen k) then begin
            Hashtbl.add env.acc.l7_seen k ();
            emit env ~rule:"L7"
              ~hint:
                "closures that outlive the latched section must not \
                 capture the page handle"
              loc
              ("page handle " ^ r
             ^ " (latched) is captured by an escaping closure")
          end
        end)
      ids
  end

(* L8 checks at a call site; returns updated states *)
let l8_call env sts name loc args =
  let cfg = env.cfg in
  if List.mem name cfg.l8_exempt then sts
  else
    let full = l8_full cfg in
    let mutator =
      match List.assoc_opt name cfg.l8_mutators with
      | Some p -> Some p
      | None -> env.ctx.x_mutators ~caller_module:env.modname name
    in
    match mutator with
    | Some (ipos, spos) -> (
      let pos = positional args in
      let index_key =
        match List.nth_opt pos ipos with
        | Some e -> Some (fact_key (expr_key e))
        | None -> None
      in
      let target = List.nth_opt pos spos in
      match Option.map (l8_ctor cfg) target with
      | Some (Some ctor) ->
        (* literal target: sources outside legal_transition's preimage
           must be excluded by a dominating fact *)
        let legal = l8_legal_sources cfg ctor in
        let bit = match l8_bit cfg ctor with Some b -> b | None -> 0 in
        List.map
          (fun s ->
            let src =
              match index_key with
              | Some k -> (
                match fact_of s k with Some m -> m | None -> full)
              | None -> full
            in
            let illegal = src land lnot legal in
            if illegal <> 0 then begin
              let k = "mut:" ^ loc_key loc in
              if not (Hashtbl.mem env.acc.l8_seen k) then begin
                Hashtbl.add env.acc.l8_seen k ();
                let names =
                  List.filteri
                    (fun i _ -> illegal land (1 lsl i) <> 0)
                    cfg.l8_states
                in
                emit env ~rule:"L8"
                  ~hint:
                    "guard the transition with a state check (match on \
                     Catalog.state / the descriptor's state field) so \
                     only legal source states reach this call"
                  loc
                  ("lifecycle transition to " ^ ctor
                 ^ " is reachable from " ^ String.concat "/" names
                 ^ ", outside legal_transition")
              end
            end;
            match index_key with
            | Some k -> set_fact s k bit
            | None -> s)
          sts
      | Some None -> (
        (* non-literal target: fine if we are a wrapper forwarding our
           own parameter (checked at our call sites); opaque otherwise *)
        let target_key =
          match target with Some e -> expr_key e | None -> "<expr>"
        in
        match param_index env.params target_key with
        | Some _ -> sts
        | None ->
          let k = "mutx:" ^ loc_key loc in
          if not (Hashtbl.mem env.acc.l8_seen k) then begin
            Hashtbl.add env.acc.l8_seen k ();
            emit env ~rule:"L8"
              ~hint:
                "pass the target state as a constructor literal (or \
                 forward a parameter) so the transition is statically \
                 checkable"
              loc
              ("lifecycle transition target of " ^ name
             ^ " is not statically known")
          end;
          List.map
            (fun s ->
              match index_key with
              | Some k -> set_fact s k full
              | None -> s)
            sts)
      | None -> sts)
    | None -> (
      (* initializer: a descriptor created with a known state seeds the
         fact for its index key *)
      match
        List.find_opt (fun (n, _, _) -> n = name) cfg.l8_initializers
      with
      | Some (_, ilabel, slabel) -> (
        match labeled args ilabel with
        | Some ie -> (
          let k = fact_key (expr_key ie) in
          match Option.bind (labeled args slabel) (fun e ->
              Option.bind (l8_ctor cfg e) (l8_bit cfg))
          with
          | Some bit -> List.map (fun s -> set_fact s k bit) sts
          | None -> List.map (fun s -> set_fact s k full) sts)
        | None -> sts)
      | None ->
        (* read gate: in gated modules an index read must be dominated
           by a fact excluding Disabled *)
        if
          List.mem name cfg.l8_read_calls
          && List.mem env.modname cfg.l8_read_modules
        then begin
          let pos = positional args in
          let arg1 = match pos with e :: _ -> expr_key e | [] -> "<expr>" in
          let disabled =
            match l8_bit cfg (List.nth cfg.l8_states 0) with
            | Some b -> b
            | None -> 1
          in
          let gated =
            List.for_all
              (fun s ->
                List.exists
                  (fun (k, m) ->
                    (* fact key "st:info" gates reads of "info.tree" *)
                    let base =
                      String.sub k 3 (String.length k - 3)
                    in
                    (arg1 = base
                    || (String.length arg1 > String.length base
                        && String.sub arg1 0 (String.length base + 1)
                           = base ^ "."))
                    && m land disabled = 0)
                  s.facts)
              sts
          in
          if not gated then begin
            let k = "read:" ^ loc_key loc in
            if not (Hashtbl.mem env.acc.l8_seen k) then begin
              Hashtbl.add env.acc.l8_seen k ();
              emit env ~rule:"L8"
                ~hint:
                  "dominate the read with a lifecycle gate (check the \
                   descriptor's state, or Catalog.state, before using \
                   the index)"
                loc
                ("index read " ^ name
               ^ " is not dominated by a lifecycle-state gate")
            end
          end
        end;
        sts)

(* --- L10/L11: yield-point atomicity ---------------------------------- *)

(* "f -> g -> Sched.yield" -> ["f"; "g"; "Sched.yield"] (OCaml paths
   never contain '-' or '>') *)
let chain_frames w =
  if w = "" then []
  else
    List.filter_map
      (fun s -> match String.trim s with "" -> None | s -> Some s)
      (String.split_on_char '>'
         (String.concat "" (String.split_on_char '-' w)))

let inst_of_positions pos positions =
  let keys =
    List.map
      (fun i ->
        match List.nth_opt pos i with
        | Some e -> expr_key e
        | None -> "?")
      positions
  in
  String.concat "," keys

(* is [e] (syntactically) a read of shared state? *)
let l10_read_of env e =
  match (strip_fun e).pexp_desc with
  | Pexp_field (b, { txt; _ }) -> (
    match List.rev (Longident.flatten txt) with
    | f :: _ -> (
      match List.assoc_opt f env.cfg.l10_shared_fields with
      | Some cls -> Some (cls, expr_key b)
      | None -> None)
    | [] -> None)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
    match List.assoc_opt (resolve env txt) env.cfg.l10_shared_calls with
    | Some (cls, positions, false) ->
      Some (cls, inst_of_positions (positional args) positions)
    | _ -> None)
  | _ -> None

(* a fresh read replaces any staler knowledge of the same (class, inst) *)
let l10_note_read env sts cls inst loc =
  env.acc.accesses <- (cls, inst, false, loc) :: env.acc.accesses;
  List.map
    (fun s ->
      let keep =
        List.filter
          (fun r -> not (r.sr_class = cls && r.sr_inst = inst))
          s.sreads
      in
      { s with
        sreads =
          { sr_class = cls; sr_inst = inst; sr_loc = loc; sr_stale = None }
          :: keep })
    sts

let l10_note_write env sts cls inst loc =
  env.acc.accesses <- (cls, inst, true, loc) :: env.acc.accesses;
  List.iter
    (fun s ->
      List.iter
        (fun r ->
          if r.sr_class = cls && r.sr_inst = inst then
            match r.sr_stale with
            | Some w ->
              Hashtbl.replace env.acc.crossings cls ();
              if env.in_l10 then begin
                let k = "l10:" ^ loc_key loc ^ ":" ^ cls in
                if not (Hashtbl.mem env.acc.l10_seen k) then begin
                  Hashtbl.add env.acc.l10_seen k ();
                  emit ~trace:(chain_frames w) env ~rule:"L10"
                    ~hint:
                      "hold the protecting latch across the section, or \
                       re-read/validate the shared state after the yield \
                       before writing"
                    loc
                    ("read of " ^ cls ^ "(" ^ inst ^ ") at line "
                    ^ string_of_int r.sr_loc.Location.loc_start.pos_lnum
                    ^ " spans a may-yield call (" ^ w
                    ^ ") before this write: lost-update window")
                end
              end
            | None -> ())
        s.sreads)
    sts;
  (* the write is now the freshest knowledge of the key *)
  List.map
    (fun s ->
      { s with
        sreads =
          List.filter
            (fun r -> not (r.sr_class = cls && r.sr_inst = inst))
            s.sreads })
    sts

(* Crossing a suspension point: record the site; [always] marks every
   path as definitely suspended; an unlatched crossing stales shared
   reads and projections (a held latch is taken as the protection —
   latched blocking is L2's complaint, not L10's). *)
let note_yield env sts loc ~always witness =
  if
    not
      (List.exists (fun (l, _) -> loc_key l = loc_key loc) env.acc.yields)
  then env.acc.yields <- (loc, witness) :: env.acc.yields;
  List.map
    (fun s ->
      let s = if always then { s with ydef = true } else s in
      if s.held <> [] then s
      else
        {
          s with
          sreads =
            List.map
              (fun r ->
                if r.sr_stale = None then { r with sr_stale = Some witness }
                else r)
              s.sreads;
          projs =
            List.map
              (fun p ->
                if p.pj_stale = None then { p with pj_stale = Some witness }
                else p)
              s.projs;
        })
    sts

(* classify a call as a suspension point: base sets first, then the
   interprocedural may-yield solution with its witness chain *)
let yield_class env name =
  if List.mem name env.cfg.l10_yield_always then Some (true, name)
  else if List.mem name env.cfg.l10_yield_may then Some (false, name)
  else
    match env.ctx.x_yields ~caller_module:env.modname name with
    | Some ye when Yield_effect.yields ye ->
      let w =
        if ye.Yield_effect.witness = "" then name
        else name ^ " -> " ^ ye.Yield_effect.witness
      in
      Some (Yield_effect.definite ye, w)
    | _ -> None

(* L11: positional ident arguments that are stale projections. A
   comparison of a stale projection against a fresh read of the same
   (class, inst) is the sanctioned re-validation idiom: it clears the
   staleness instead of firing. *)
let l11_check_args env sts name loc pos =
  let revalidating p =
    (name = "=" || name = "<>")
    && List.exists
         (fun e ->
           match l10_read_of env e with
           | Some (cls, inst) -> cls = p.pj_class && inst = p.pj_inst
           | None -> false)
         pos
  in
  let arg_vars =
    List.filter_map
      (fun e ->
        match e.pexp_desc with
        | Pexp_ident { txt = Longident.Lident r; _ } -> Some r
        | _ -> None)
      pos
  in
  List.map
    (fun s ->
      let projs =
        List.map
          (fun p ->
            if (not (List.mem p.pj_var arg_vars)) || p.pj_stale = None then p
            else if revalidating p then { p with pj_stale = None }
            else begin
              (match p.pj_stale with
              | Some w when env.in_l10 ->
                let k = "l11:" ^ loc_key loc ^ ":" ^ p.pj_var in
                if not (Hashtbl.mem env.acc.l11_seen k) then begin
                  Hashtbl.add env.acc.l11_seen k ();
                  emit ~trace:(chain_frames w) env ~rule:"L11"
                    ~hint:
                      "re-fetch the value after the yield (or compare it \
                       against a fresh read) before acting on it"
                    loc
                    ("value " ^ p.pj_var ^ " projected from " ^ p.pj_class
                    ^ "(" ^ p.pj_inst ^ ") at line "
                    ^ string_of_int p.pj_loc.Location.loc_start.pos_lnum
                    ^ " is used after a may-yield call (" ^ w
                    ^ ") without re-fetching")
                end
              | _ -> ());
              p
            end)
          s.projs
      in
      { s with projs })
    sts

(* the L10/L11 transfer at a generic call site *)
let l10_call env sts name loc pos =
  let sts = l11_check_args env sts name loc pos in
  let sts =
    match List.assoc_opt name env.cfg.l10_shared_calls with
    | Some (cls, positions, is_write) ->
      let inst = inst_of_positions pos positions in
      if is_write then l10_note_write env sts cls inst loc
      else l10_note_read env sts cls inst loc
    | None -> sts
  in
  match yield_class env name with
  | Some (always, w) -> note_yield env sts loc ~always w
  | None -> sts

let rec walk env sts e =
  let env =
    match collect_allows env e.pexp_attributes with
    | [] -> env
    | extra -> { env with allows = extra @ env.allows }
  in
  match e.pexp_desc with
  | Pexp_apply (f, args) -> apply env sts f args
  | Pexp_let (_, vbs, body) ->
    (* local functions enter the lexical scope first (before their own
       bodies run), so recursive and sibling calls resolve to the scoped
       unit name rather than colliding with every other "go"/"walk" *)
    let env =
      let adds =
        List.filter_map
          (fun vb ->
            if is_function_expr vb.pvb_expr then
              match binding_name vb with
              | "_" -> None
              | n -> Some (n, env.uname ^ "." ^ n)
            else None)
          vbs
      in
      match adds with [] -> env | adds -> { env with scope = adds @ env.scope }
    in
    let sts = List.fold_left (fun sts vb -> binding env sts vb) sts vbs in
    walk env sts body
  | Pexp_sequence (a, b) ->
    (* a discarded value cannot carry a latch onward *)
    let sa = walk env sts a in
    let sa =
      List.map
        (fun s ->
          {
            s with
            held = List.filter (fun i -> not i.i_pending) s.held;
            alias = [];
          })
        sa
    in
    walk env sa b
  | Pexp_ifthenelse (c, t, eo) ->
    let ft, fe = l8_cond env c in
    let sc = walk env sts c in
    let st = walk env (List.map ft sc) t in
    let se =
      match eo with
      | Some el -> walk env (List.map fe sc) el
      | None -> List.map fe sc
    in
    union st se
  | Pexp_match (scrut, cases) ->
    let read = l8_state_read env scrut in
    let s0 = walk env sts scrut in
    match_union env s0 ~read cases
  | Pexp_try (body, handlers) ->
    (* handlers approximated as running from the entry state *)
    let sb = walk env sts body in
    let sh = match_union env sts ~read:None handlers in
    union sb sh
  | Pexp_fun (_, _, _, body) ->
    (* closure creation outside an argument position: check captures,
       then approximate the body as running zero or more times *)
    l7_capture_check env sts e.pexp_loc e;
    union sts (walk env sts body)
  | Pexp_function cases ->
    l7_capture_check env sts e.pexp_loc e;
    union sts (match_union env sts ~read:None cases)
  | Pexp_while (c, b) ->
    let sc = walk env sts c in
    union sc (walk env sc b)
  | Pexp_for (_, a, b, _, body) ->
    let s1 = walk env (walk env sts a) b in
    union s1 (walk env s1 body)
  | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> walk env sts a
  | Pexp_construct (_, None) | Pexp_variant (_, None) -> sts
  | Pexp_tuple es | Pexp_array es -> List.fold_left (walk env) sts es
  | Pexp_record (fields, base) ->
    let sts = match base with Some b -> walk env sts b | None -> sts in
    List.fold_left (fun sts (_, fe) -> walk env sts fe) sts fields
  | Pexp_field (b, fld) ->
    let fname =
      match List.rev (Longident.flatten fld.txt) with
      | f :: _ -> f
      | [] -> ""
    in
    (match b.pexp_desc with
    | Pexp_ident { txt = Longident.Lident r; _ } ->
      if fname <> "id" then l7_dead_use env sts e.pexp_loc ("." ^ fname) r
    | _ -> ());
    let sts = walk env sts b in
    (match List.assoc_opt fname env.cfg.l10_shared_fields with
    | Some cls -> l10_note_read env sts cls (expr_key b) e.pexp_loc
    | None -> sts)
  | Pexp_setfield (a, fld, b) ->
    l7_store_check env sts e.pexp_loc "a mutable field" b;
    let sts = walk env (walk env sts a) b in
    let fname =
      match List.rev (Longident.flatten fld.txt) with
      | f :: _ -> f
      | [] -> ""
    in
    (match List.assoc_opt fname env.cfg.l10_shared_fields with
    | Some cls -> l10_note_write env sts cls (expr_key a) e.pexp_loc
    | None -> sts)
  | Pexp_constraint (a, _)
  | Pexp_coerce (a, _, _)
  | Pexp_newtype (_, a)
  | Pexp_open (_, a)
  | Pexp_lazy a
  | Pexp_poly (a, _) -> walk env sts a
  | Pexp_letmodule (name, mexpr, body) ->
    (match (name.txt, mexpr.pmod_desc) with
    | Some n, Pmod_ident { txt; _ } ->
      Hashtbl.replace env.aliases n
        (String.split_on_char '.'
           (String.concat "." (strip_oib (Longident.flatten txt))))
    | _ -> ());
    walk env sts body
  | Pexp_letexception (_, body) -> walk env sts body
  | Pexp_assert a -> (
    match a.pexp_desc with
    | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) -> []
    | _ -> walk env sts a)
  | _ -> sts

(* union over match/function cases; [read] is the fact key when the
   scrutinee reads a lifecycle state, so constructor patterns refine it *)
and match_union env s0 ~read cases =
  match cases with
  | [] -> s0
  | _ ->
    List.fold_left
      (fun acc c ->
        let entry =
          match read with
          | Some key -> (
            match pat_mask env.cfg c.pc_lhs with
            | Some mask ->
              List.map (fun s -> meet_fact env.cfg s key mask) s0
            | None -> s0)
          | None -> s0
        in
        (* bind the scrutinee's pending latches to the case's variables *)
        let entry = bind_states env entry (pat_vars c.pc_lhs) in
        let sg =
          match c.pc_guard with Some g -> walk env entry g | None -> entry
        in
        union acc (walk env sg c.pc_rhs))
      [] cases

(* Root pending items (and alias extensions) at freshly bound names. A
   pattern that binds nothing drops pending items: the alternative where
   a latch was returned cannot be the one this armless pattern matched,
   and a discarded binding cannot carry the latch onward. *)
and bind_states env sts vars =
  ignore env;
  List.map
    (fun s ->
      let held =
        List.filter_map
          (fun i ->
            if i.i_pending then
              match vars with
              | [] -> None
              | _ -> Some { i with i_roots = vars; i_pending = false }
            else if
              s.alias <> [] && List.exists (fun r -> List.mem r s.alias) i.i_roots
            then Some { i with i_roots = vars @ i.i_roots }
            else Some i)
          s.held
      in
      { s with held; alias = [] })
    sts

and binding env sts vb =
  if is_function_expr vb.pvb_expr then begin
    l7_capture_check env sts vb.pvb_loc vb.pvb_expr;
    if env.register then begin
      let allows = collect_allows env vb.pvb_attributes @ env.allows in
      sub_unit env
        ~name:(env.uname ^ "." ^ binding_name vb)
        ~loc:vb.pvb_loc ~allows vb.pvb_expr
    end;
    sts
  end
  else begin
    let env =
      match collect_allows env vb.pvb_attributes with
      | [] -> env
      | extra -> { env with allows = extra @ env.allows }
    in
    let vars = pat_vars vb.pvb_pat in
    (* a var bound to a configured handle source becomes a tracked page
       handle for L7 *)
    (match ((strip_fun vb.pvb_expr).pexp_desc, vars) with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _), [ v ]
      when List.mem (resolve env txt) env.cfg.l7_sources ->
      Hashtbl.replace env.acc.handles v vb.pvb_loc
    | _ -> ());
    let sts = walk env sts vb.pvb_expr in
    (* a var bound to a shared-state projection is L11-tracked *)
    let sts =
      match (vars, l10_read_of env vb.pvb_expr) with
      | [ v ], Some (cls, inst) ->
        List.map
          (fun s ->
            {
              s with
              projs =
                { pj_var = v; pj_class = cls; pj_inst = inst;
                  pj_loc = vb.pvb_loc; pj_stale = None }
                :: List.filter (fun p -> p.pj_var <> v) s.projs;
            })
          sts
      | _ -> sts
    in
    (* vars bound to a returned latch are handles too *)
    List.iter
      (fun s ->
        if List.exists (fun i -> i.i_pending && i.i_path <> "") s.held then
          List.iter
            (fun v -> Hashtbl.replace env.acc.handles v vb.pvb_loc)
            vars)
      sts;
    bind_states env sts vars
  end

and apply env sts f args =
  match f.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    let name = resolve env txt in
    match (name, args) with
    | "|>", [ (_, a); (_, fn) ] -> pipe env sts a fn
    | "@@", [ (_, fn); (_, a) ] -> pipe env sts a fn
    | (":=" | "ref"), _ ->
      let rhs =
        match (name, positional args) with
        | ":=", [ _; r ] -> Some r
        | "ref", [ r ] -> Some r
        | _ -> None
      in
      (match rhs with
      | Some r ->
        l7_store_check env sts f.pexp_loc
          (if name = ":=" then "a reference cell" else "a ref")
          r
      | None -> ());
      walk_args env sts args
    | _ -> named_call env sts name f.pexp_loc args)
  | _ ->
    let sts = walk env sts f in
    walk_args env sts args

and pipe env sts a fn =
  let sts = walk env sts a in
  match (strip_fun fn).pexp_desc with
  | Pexp_fun (_, _, _, body) -> walk env sts body
  | Pexp_function cases -> match_union env sts ~read:None cases
  | Pexp_ident { txt; _ } ->
    named_call env sts (resolve env txt) fn.pexp_loc []
  | _ -> walk env sts fn

and walk_args env sts args =
  List.fold_left
    (fun sts (_, a) ->
      match (strip_fun a).pexp_desc with
      | Pexp_fun (_, _, _, body) ->
        (* callback argument: zero-or-once inline, under the current
           latch state; capture is legal (it does not escape the call) *)
        union sts (walk env sts body)
      | Pexp_function cases -> union sts (match_union env sts ~read:None cases)
      | Pexp_ident { txt = Longident.Ldot _ as lid; _ } ->
        (* module-qualified function value: a call-graph edge for
           reachability (the HOF may invoke it), no effect application *)
        record_call ~callback:true env sts (resolve env lid) a.pexp_loc [];
        sts
      | _ -> walk env sts a)
    sts args

and named_call env sts name loc args =
  let pos = positional args in
  match name with
  | "Latch.acquire" -> (
    match pos with
    | latch_e :: mode_e :: _ ->
      let sts = walk_args env sts args in
      let key = expr_key latch_e and mode = mode_key mode_e in
      record_call env sts name loc pos;
      env.acc.acq <- true;
      let root, path = split_key key in
      List.map
        (fun s ->
          let s = { s with dead = List.remove_assoc root s.dead } in
          {
            s with
            held =
              {
                i_roots = [ root ];
                i_path = path;
                i_mode = mode;
                i_loc = loc;
                i_origin = [];
                i_pending = false;
              }
              :: s.held;
            alias = [];
          })
        sts
    | _ ->
      record_call env sts name loc pos;
      sts)
  | "Latch.release" -> (
    match pos with
    | latch_e :: mode_e :: _ ->
      let sts = walk_args env sts args in
      let key = expr_key latch_e and mode = mode_key mode_e in
      record_call env sts name loc pos;
      let sts = l3_flush env sts in
      List.map
        (fun s ->
          { (release_one env ~params:env.params s key mode loc) with
            alias = [] })
        sts
    | _ ->
      record_call env sts name loc pos;
      sts)
  | "Latch.with_latch" -> (
    match pos with
    | latch_e :: mode_e :: rest ->
      let key = expr_key latch_e and mode = mode_key mode_e in
      record_call env sts name loc pos;
      env.acc.acq <- true;
      let root, path = split_key key in
      let inner =
        List.map
          (fun s ->
            {
              s with
              held =
                {
                  i_roots = [ root ];
                  i_path = path;
                  i_mode = mode;
                  i_loc = loc;
                  i_origin = [];
                  i_pending = false;
                }
                :: s.held;
            })
          sts
      in
      let inner =
        match rest with
        | fn :: _ -> (
          match (strip_fun fn).pexp_desc with
          | Pexp_fun (_, _, _, body) -> walk env inner body
          | Pexp_function cases -> match_union env inner ~read:None cases
          | Pexp_ident { txt; _ } ->
            named_call env inner (resolve env txt) fn.pexp_loc []
          | _ -> walk env inner fn)
        | [] -> inner
      in
      let inner = l3_flush env inner in
      List.map
        (fun s ->
          { (release_one env ~params:env.params s key mode loc) with
            alias = [] })
        inner
    | _ ->
      record_call env sts name loc pos;
      sts)
  | _ when List.mem name raise_names ->
    let sts = walk_args env sts args in
    record_call env sts name loc pos;
    []
  | _ ->
    let sts = walk_args env sts args in
    (* dead-handle arguments *)
    List.iter
      (fun e ->
        match e.pexp_desc with
        | Pexp_ident { txt = Longident.Lident r; _ } ->
          l7_dead_use env sts loc ("argument to " ^ name) r
        | _ -> ())
      pos;
    record_call env sts name loc pos;
    let sts = l8_call env sts name loc args in
    let sts = l10_call env sts name loc pos in
    let sts =
      if env.in_l3 && List.mem name env.cfg.l3_mutators then
        List.map (fun s -> { s with pend = (name, loc) :: s.pend }) sts
      else if
        List.mem name env.cfg.l3_appends
        || env.ctx.x_appends ~caller_module:env.modname name
      then List.map (fun s -> { s with pend = [] }) sts
      else sts
    in
    apply_effect env sts name loc pos

(* --- units ----------------------------------------------------------- *)

(* Run a unit's transfer function under [ctx] and store the results
   (calls, local findings, latch effect) into [u] in place. This is the
   function the dataflow solver re-invokes via [u_rerun]. *)
and do_run env u expr ctx =
  let acc = fresh_acc () in
  let env =
    { env with
      allows = u.u_allows;
      acc;
      ctx;
      params = u.u_params;
      uname = u.u_name;
    }
  in
  let rec body_of e =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, b) -> body_of b
    | Pexp_newtype (_, b) -> body_of b
    | Pexp_constraint (b, _) -> body_of b
    | _ -> e
  in
  let b = body_of expr in
  let exits =
    match b.pexp_desc with
    | Pexp_function cases ->
      match_union env [ empty_state ] ~read:None cases
    | _ -> walk env [ empty_state ] b
  in
  let tails =
    match b.pexp_desc with
    | Pexp_function _ -> Hashtbl.create 1
    | _ -> tail_value_idents b
  in
  let returned s r = Hashtbl.mem tails r || List.mem r s.alias in
  let l1_seen = Hashtbl.create 8 in
  let ret_params = ref [] in
  let alts =
    List.map
      (fun s ->
        List.iter
          (fun p ->
            match param_index u.u_params p with
            | Some i when returned s p ->
              if not (List.mem i !ret_params) then
                ret_params := i :: !ret_params
            | _ -> ())
          u.u_params;
        let atoms =
          List.filter_map
            (fun i ->
              if i.i_pending || List.exists (returned s) i.i_roots then
                Some
                  {
                    Latch_effect.a_kind = Latch_effect.Ret;
                    a_path = i.i_path;
                    a_mode = i.i_mode;
                    a_loc = i.i_loc;
                    a_origin = i.i_origin;
                  }
              else
                match
                  List.find_map (fun r -> param_index u.u_params r) i.i_roots
                with
                | Some idx ->
                  Some
                    {
                      Latch_effect.a_kind = Latch_effect.Param idx;
                      a_path = i.i_path;
                      a_mode = i.i_mode;
                      a_loc = i.i_loc;
                      a_origin = i.i_origin;
                    }
                | None ->
                  (* acquired here (or received from a callee), reachable
                     from no returned value and no parameter: leaked *)
                  let kk = loc_key i.i_loc in
                  if not (Hashtbl.mem l1_seen kk) then begin
                    Hashtbl.add l1_seen kk ();
                    let what =
                      match i.i_roots with
                      | r :: _ -> "latch " ^ r ^ i.i_path
                      | [] -> "a returned latch"
                    in
                    emit ~trace:i.i_origin env ~rule:"L1"
                      ~hint:
                        "balance the acquire on every path, use \
                         Latch.with_latch, or justify the ownership \
                         transfer with [@lint.allow]"
                      i.i_loc
                      (what ^ " (" ^ i.i_mode
                     ^ ") acquired here is not released on every path of "
                     ^ u.u_name)
                  end;
                  None)
            s.held
        in
        atoms @ s.neg)
      exits
  in
  (* L7: returning a handle whose latch was already released *)
  if env.in_l7 && exits <> [] then
    Hashtbl.iter
      (fun v _ ->
        if Hashtbl.mem acc.handles v then
          match
            if
              List.for_all (fun s -> List.mem_assoc v s.dead) exits
            then List.assoc_opt v (List.hd exits).dead
            else None
          with
          | Some rel ->
            emit env ~rule:"L7"
              ~hint:"return the page id (or re-latch) instead" rel
              ("page handle " ^ v
             ^ " is returned from " ^ u.u_name
             ^ " after its latch was released")
          | None -> ())
      tails;
  u.u_calls <- List.rev acc.calls;
  u.u_acquires_latch <- acc.acq;
  u.u_local <- List.rev acc.local;
  u.u_effect <- Latch_effect.make ~alts ~ret_params:!ret_params;
  u.u_yield_sites <- List.rev acc.yields;
  u.u_accesses <- List.rev acc.accesses;
  u.u_crossings <-
    List.sort_uniq compare
      (Hashtbl.fold (fun k () a -> k :: a) acc.crossings []);
  u.u_yield <-
    (if exits = [] then Yield_effect.bottom
     else
       match List.rev acc.yields with
       | [] -> Yield_effect.never
       | (_, w) :: _ ->
         if List.for_all (fun s -> s.ydef) exits then Yield_effect.always w
         else Yield_effect.may w)

and analyze_unit env ~name ~loc ~allows expr =
  let params = fun_params (strip_fun expr) in
  let rec u =
    {
      u_module = env.modname;
      u_file = env.file;
      u_name = name;
      u_loc = loc;
      u_allows = allows;
      u_params = params;
      u_calls = [];
      u_acquires_latch = false;
      u_local = [];
      u_effect = Latch_effect.bottom;
      u_yield = Yield_effect.bottom;
      u_yield_sites = [];
      u_accesses = [];
      u_crossings = [];
      u_rerun = (fun ctx -> do_run { env with register = false } u expr ctx);
    }
  in
  env.units := u :: !(env.units);
  do_run env u expr env.ctx

and sub_unit env ~name ~loc ~allows expr =
  analyze_unit env ~name ~loc ~allows expr

(* --- L9 raw-material collection -------------------------------------- *)

let l9_empty () =
  {
    l9_variants = [];
    l9_pats = Hashtbl.create 16;
    l9_cons = Hashtbl.create 16;
    l9_arms = [];
  }

let last_component lid =
  match List.rev (Longident.flatten lid) with l :: _ -> l | [] -> ""

let rec pat_ctor_names p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) -> [ last_component txt ]
  | Ppat_or (a, b) -> pat_ctor_names a @ pat_ctor_names b
  | Ppat_constraint (p, _) | Ppat_alias (p, _) | Ppat_open (_, p) ->
    pat_ctor_names p
  | Ppat_any | Ppat_var _ -> [ "_" ]
  | _ -> [ "_" ]

let collect_l9 str =
  let info = ref (l9_empty ()) in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_construct ({ txt; _ }, _) ->
            Hashtbl.replace !info.l9_pats (last_component txt) ()
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_construct ({ txt; _ }, _) ->
            Hashtbl.replace !info.l9_cons (last_component txt) ()
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
      type_declaration =
        (fun it d ->
          (match d.ptype_kind with
          | Ptype_variant ctors ->
            let cs =
              List.map (fun c -> (c.pcd_name.txt, c.pcd_loc)) ctors
            in
            info :=
              { !info with
                l9_variants = (d.ptype_name.txt, cs) :: !info.l9_variants }
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration it d);
    }
  in
  it.structure it str;
  (* classifier arms: top-level [let f = function ...] (or a match on a
     parameter) with constructor patterns *)
  let rhs_false e =
    match (strip_fun e).pexp_desc with
    | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) -> true
    | _ -> false
  in
  let arms_of name expr =
    let rec body e =
      match e.pexp_desc with
      | Pexp_fun (_, _, _, b) | Pexp_newtype (_, b)
      | Pexp_constraint (b, _) -> body b
      | _ -> e
    in
    let cases =
      match (body expr).pexp_desc with
      | Pexp_function cases | Pexp_match (_, cases) -> Some cases
      | _ -> None
    in
    match cases with
    | None -> []
    | Some cases ->
      List.concat_map
        (fun c ->
          let f = rhs_false c.pc_rhs in
          List.map (fun ctor -> (name, ctor, f)) (pat_ctor_names c.pc_lhs))
        cases
  in
  let rec scan items =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let n = binding_name vb in
              if n <> "_" then
                info :=
                  { !info with l9_arms = !info.l9_arms @ arms_of n vb.pvb_expr })
            vbs
        | Pstr_module
            { pmb_expr = { pmod_desc = Pmod_structure inner; _ }; _ } ->
          scan inner
        | _ -> ())
      items
  in
  scan str;
  !info

(* --- structure traversal --------------------------------------------- *)

let register_module_binding env (mb : module_binding) prefix process =
  match mb.pmb_name.txt with
  | None -> ()
  | Some n -> (
    let rec go (me : module_expr) =
      match me.pmod_desc with
      | Pmod_ident { txt; _ } ->
        Hashtbl.replace env.aliases n (strip_oib (Longident.flatten txt))
      | Pmod_structure items -> process (prefix ^ n ^ ".") items
      | Pmod_functor (_, body) -> go body
      | Pmod_constraint (m, _) -> go m
      | _ -> ()
    in
    go mb.pmb_expr)

let summarize_source ?(config = default_config) ~file src =
  let modname = module_name_of_file file in
  let units = ref [] in
  let file_findings = ref [] in
  let all_allows = ref [] in
  let aliases = Hashtbl.create 16 in
  let env0 =
    {
      cfg = config;
      aliases;
      modname;
      in_l3 = List.mem modname config.l3_modules;
      in_l7 = not (List.mem modname config.l7_exempt_modules);
      in_l10 = not (List.mem modname config.l10_exempt_modules);
      allows = [];
      acc = fresh_acc ();
      units;
      file;
      file_findings;
      all_allows;
      allow_memo = Hashtbl.create 16;
      register = true;
      ctx = initial_ctx;
      params = [];
      uname = "";
      scope = [];
    }
  in
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  Location.input_name := file;
  match Parse.implementation lexbuf with
  | exception exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok report) ->
        let s = Format.asprintf "%a" Location.print_report report in
        String.map (function '\n' -> ' ' | c -> c) s
      | _ -> Printexc.to_string exn
    in
    {
      fs_file = file;
      fs_module = modname;
      fs_units = [];
      fs_allows = [];
      fs_l9 = l9_empty ();
      fs_findings =
        [
          {
            f_rule = "parse";
            f_loc = Location.in_file file;
            f_msg = "parse error: " ^ msg;
            f_hint = "fix the syntax error";
            f_trace = [];
            f_allows = [];
          };
        ];
    }
  | str ->
    (* pre-scan: module aliases + file-level floating allows *)
    let file_allows = ref [] in
    let rec prescan items =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_module mb -> (
            match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
            | Some n, Pmod_ident { txt; _ } ->
              Hashtbl.replace aliases n (strip_oib (Longident.flatten txt))
            | Some _, Pmod_structure inner -> prescan inner
            | _ -> ())
          | Pstr_attribute attr -> (
            let k = loc_key attr.attr_loc in
            if not (Hashtbl.mem env0.allow_memo k) then
              match allow_of_attribute attr with
              | Some (Ok allow) ->
                Hashtbl.replace env0.allow_memo k (Some allow);
                all_allows := allow :: !all_allows;
                file_allows := allow :: !file_allows
              | Some (Error (loc, why)) ->
                Hashtbl.replace env0.allow_memo k None;
                file_findings :=
                  {
                    f_rule = "allow";
                    f_loc = loc;
                    f_msg = why;
                    f_hint = "use [@@@lint.allow \"Ln: justification\"]";
                    f_trace = [];
                    f_allows = [];
                  }
                  :: !file_findings
              | None -> ())
          | _ -> ())
        items
    in
    prescan str;
    let rec process prefix items =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                let allows =
                  collect_allows env0 vb.pvb_attributes @ !file_allows
                in
                analyze_unit env0
                  ~name:(prefix ^ binding_name vb)
                  ~loc:vb.pvb_loc ~allows vb.pvb_expr)
              vbs
          | Pstr_eval (e, attrs) ->
            let allows = collect_allows env0 attrs @ !file_allows in
            analyze_unit env0 ~name:(prefix ^ "_toplevel") ~loc:item.pstr_loc
              ~allows e
          | Pstr_module mb -> register_module_binding env0 mb prefix process
          | _ -> ())
        items
    in
    process "" str;
    {
      fs_file = file;
      fs_module = modname;
      fs_units = List.rev !units;
      fs_findings = List.rev !file_findings;
      fs_allows = List.rev !all_allows;
      fs_l9 = collect_l9 str;
    }

let summarize_file ?config file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  summarize_source ?config ~file src
