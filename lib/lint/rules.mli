(** Rule evaluation over the solved call graph.

    Unit-local findings (L1 leaks, L3, L7 escape sites, L8 site checks,
    parse and malformed-allow errors) are produced by the summariser's
    emission pass and collected here; this module adds the whole-graph
    rules and applies [[@lint.allow]] suppression uniformly:

    - L1 (interprocedural tail): a unit whose latch effect still holds a
      parameter-rooted latch at exit pushes the release obligation to its
      callers; with no in-tree caller, nobody discharges it.
    - L2: no (transitively) blocking call while a latch is held. The base
      blocking set is the cooperative-scheduler suspension points
      ([Sched.yield]/[suspend], [Condvar.wait]), lock-manager waits, and
      WAL flushes; blocking-ness propagates through {!Dataflow.reach} and
      each finding carries the witness chain as its trace.
    - L4: runtime output discipline — no console-printing calls in [lib/]
      outside the explicit reporting modules, and no [Printf] at all in
      the lock-manager/WAL modules.
    - L5: static latch-order graph. An edge [A -> B] is added when a
      function in module [A] holds a latch across a call that may acquire
      a latch in module [B]; a cycle is a potential lock-order inversion.
      Intra-module self-edges are ignored (tree-order hand-over-hand
      crabbing is governed by page order, not module order).
    - L9: WAL exhaustiveness — every constructor of the log-record body
      variant must be encoded and decoded by the codec, classified by the
      redo/undo predicates, and (when classified replayable) matched in
      the corresponding replay modules.

    Suppressions from in-scope [[@lint.allow]] attributes are applied,
    never dropped: a suppressed diagnostic keeps its justification. *)

val base_blocking : string list
(** Canonical names that suspend the cooperative fiber directly. *)

val acquire_calls : string list
(** Canonical names that acquire a latch directly. *)

val console_calls : string list
(** Canonical names that print to stdout/stderr unconditionally. *)

val console_allowed_modules : string list
(** Modules allowed to print (report renderers, trace dumpers). *)

val printf_banned_modules : string list
(** Modules where any [Printf.*] reference is rejected (L4). *)

type t = {
  diags : Diag.t list;  (** every diagnostic, suppressed ones included *)
  blocking_units : (string * string) list;
      (** (module, function) pairs that may block, after the fixpoint *)
  acquiring_units : (string * string) list;
      (** (module, function) pairs that may acquire a latch *)
  order_edges : (string * string) list;
      (** distinct latch-order edges [A -> B] discovered for L5 *)
  rule_ms : (string * float) list;
      (** per-rule-family wall time, milliseconds, in evaluation order *)
  atomics : Atomics.t;
      (** L12 static atomic-section table, exportable via
          {!Atomics.to_json} for the oib-fuzz sanitize diff *)
}

val run : config:Summary.config -> Callgraph.t -> t
(** Evaluate every rule over a call graph that has already been through
    {!Dataflow.solve_effects} and {!Dataflow.emit_pass}. *)
