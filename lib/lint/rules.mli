(** Cross-function protocol rules over {!Summary} call summaries.

    - L2: no (transitively) blocking call while a latch is held. The base
      blocking set is the cooperative-scheduler suspension points
      ([Sched.yield]/[suspend], [Condvar.wait]), lock-manager waits, and
      WAL flushes; blocking-ness propagates up the static call graph.
    - L4: runtime output discipline — no console-printing calls in [lib/]
      outside the explicit reporting modules, and no [Printf] at all in the
      lock-manager/WAL modules (hot paths format eagerly otherwise).
    - L5: static latch-order graph. An edge [A -> B] is added when a
      function in module [A] holds a latch across a call that may acquire
      a latch in module [B]; a cycle is a potential lock-order inversion
      and fails the build. Intra-module self-edges are ignored (tree-order
      hand-over-hand crabbing is governed by page order, not module
      order).

    Unit-local findings already carried by the summaries (L1, L3, parse
    and malformed-allow errors) are converted to diagnostics here too, so
    [run] yields the complete per-tree diagnostic list. Suppressions from
    in-scope [[@lint.allow]] attributes are applied, never dropped: a
    suppressed diagnostic keeps its justification text. *)

val base_blocking : string list
(** Canonical names that suspend the cooperative fiber directly. *)

val console_calls : string list
(** Canonical names that print to stdout/stderr unconditionally. *)

val console_allowed_modules : string list
(** Modules allowed to print (report renderers, trace dumpers). *)

val printf_banned_modules : string list
(** Modules where any [Printf.*] reference is rejected (L4). *)

type t = {
  diags : Diag.t list;  (** every diagnostic, suppressed ones included *)
  blocking_units : (string * string) list;
      (** (module, function) pairs that may block, after the fixpoint *)
  acquiring_units : (string * string) list;
      (** (module, function) pairs that may acquire a latch *)
  order_edges : (string * string) list;
      (** distinct latch-order edges [A -> B] discovered for L5 *)
}

val run : Summary.file_summary list -> t
