(* Interprocedural latch-transfer summaries.

   A unit's effect is a set of alternatives (one per class of normal exit
   path); each alternative lists what the unit does to latch ownership
   relative to its caller. Bottom (no alternatives) means the unit never
   returns normally — the starting point of the fixpoint, and the final
   value for units that always raise. *)

type kind =
  | Ret  (* returns a value holding a latch: ownership moves to the caller *)
  | Param of int  (* exits holding a latch rooted at parameter [i] *)
  | Unparam of int  (* releases a latch the caller holds on argument [i] *)

type atom = {
  a_kind : kind;
  a_path : string;  (* field path from the root var, e.g. ".Page.latch" *)
  a_mode : string;  (* "S" | "X" | "?" *)
  a_loc : Location.t;  (* the originating acquire/release site *)
  a_origin : string list;
      (* interprocedural frames (innermost first) the latch travelled
         through before reaching this unit's boundary; [] for direct *)
}

type alt = atom list

type t = {
  alts : alt list;
  ret_params : int list;
      (* parameters the unit may return unchanged (syntactic: a parameter
         appears in value position in a tail expression) — lets callers
         keep tracking a latch that rides through, e.g. crabbing helpers
         that hand back the page they were given *)
}

let bottom = { alts = []; ret_params = [] }
let identity = { alts = [ [] ]; ret_params = [] }

let max_alts = 16
let max_origin = 6

let atom_key a = (a.a_kind, a.a_path, a.a_mode)
let alt_key al = List.map atom_key al

let cap_origin o =
  let rec take n = function
    | x :: r when n > 0 -> x :: take (n - 1) r
    | _ -> []
  in
  take max_origin o

let norm_alt al =
  let al =
    List.stable_sort (fun a b -> compare (atom_key a) (atom_key b)) al
  in
  let rec dedup = function
    | a :: (b :: _ as rest) when atom_key a = atom_key b ->
      dedup (a :: List.tl rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  List.map (fun a -> { a with a_origin = cap_origin a.a_origin }) (dedup al)

let norm alts =
  let alts = List.map norm_alt alts in
  let alts =
    List.stable_sort (fun a b -> compare (alt_key a) (alt_key b)) alts
  in
  let rec dedup = function
    | a :: (b :: _ as rest) when alt_key a = alt_key b ->
      dedup (a :: List.tl rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  let d = dedup alts in
  let rec take n = function
    | x :: r when n > 0 -> x :: take (n - 1) r
    | _ -> []
  in
  take max_alts d

let make ~alts ~ret_params =
  { alts = norm alts; ret_params = List.sort_uniq compare ret_params }

(* Fixpoint equality ignores origins and locations: they are explanation
   metadata, recomputed deterministically on the final pass, and must not
   keep the worklist spinning. *)
let equal a b =
  List.map alt_key a.alts = List.map alt_key b.alts
  && a.ret_params = b.ret_params

let join a b =
  {
    alts = norm (a.alts @ b.alts);
    ret_params = List.sort_uniq compare (a.ret_params @ b.ret_params);
  }

let kind_string = function
  | Ret -> "ret"
  | Param i -> "param" ^ string_of_int i
  | Unparam i -> "unparam" ^ string_of_int i

let atom_string a =
  kind_string a.a_kind ^ a.a_path ^ "(" ^ a.a_mode ^ ")"

let to_string t =
  let alt al =
    match al with
    | [] -> "id"
    | _ -> String.concat "+" (List.map atom_string al)
  in
  (match t.alts with
  | [] -> "bottom"
  | alts -> String.concat " | " (List.map alt alts))
  ^
  match t.ret_params with
  | [] -> ""
  | ps ->
    " retp:" ^ String.concat "," (List.map string_of_int ps)
