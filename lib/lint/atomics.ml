(* L12: atomic-section export.

   From the converged per-unit summaries, compute every function's
   maximal yield-free regions (runs of shared-state accesses not
   crossing a suspension point) together with its shared-state
   footprint, and classify every shared-state class key as either
   [atomic] (every read-compute-write is yield-free or re-validated)
   or [crossing] (some unit has a window spanning a yield — recorded
   before [@lint.allow] suppression, so justified windows still count).

   The JSON export (oib-lint-atomics/v1) is the static half of the
   L12 twin: oib-fuzz --sanitize --atomics diffs the interleavings the
   sanitizer actually observes against it. A dynamically observed
   crossing that the static table calls atomic is a soundness bug in
   one of the two; a static crossing never observed dynamically is
   merely untested. Everything is sorted, so the output is
   byte-stable. *)

open Summary

type region = {
  rg_start : int;
  rg_end : int;
  rg_reads : string list;  (* class keys, sorted *)
  rg_writes : string list;
}

type unit_atomics = {
  ua_unit : string;  (* "Module.name" *)
  ua_file : string;
  ua_yield : string;  (* converged may-yield level, human-readable *)
  ua_regions : region list;
}

type t = {
  at_crossing : string list;  (* class keys with a stale-write window *)
  at_atomic : string list;  (* accessed class keys never crossing *)
  at_units : unit_atomics list;
}

let line_of (loc : Location.t) = loc.Location.loc_start.pos_lnum

let col_of (loc : Location.t) =
  loc.Location.loc_start.pos_cnum - loc.Location.loc_start.pos_bol

let regions_of u =
  (* interleave accesses and yield sites by source position, then cut
     the access stream at every yield *)
  let events =
    List.map (fun (c, _, w, loc) -> (line_of loc, col_of loc, Some (c, w)))
      u.u_accesses
    @ List.map (fun (loc, _) -> (line_of loc, col_of loc, None))
        u.u_yield_sites
  in
  let events =
    List.sort (fun (l1, c1, _) (l2, c2, _) -> compare (l1, c1) (l2, c2))
      events
  in
  let flush cur acc =
    match cur with
    | [] -> acc
    | _ ->
      let accs = List.rev cur in
      let lines = List.map (fun (l, _, _) -> l) accs in
      let reads =
        List.filter_map
          (fun (_, _, ev) ->
            match ev with Some (c, false) -> Some c | _ -> None)
          accs
      and writes =
        List.filter_map
          (fun (_, _, ev) ->
            match ev with Some (c, true) -> Some c | _ -> None)
          accs
      in
      {
        rg_start = List.fold_left min max_int lines;
        rg_end = List.fold_left max 0 lines;
        rg_reads = List.sort_uniq compare reads;
        rg_writes = List.sort_uniq compare writes;
      }
      :: acc
  in
  let rec go cur acc = function
    | [] -> List.rev (flush cur acc)
    | (_, _, None) :: rest -> go [] (flush cur acc) rest
    | ((_, _, Some _) as ev) :: rest -> go (ev :: cur) acc rest
  in
  go [] [] events

let compute cg =
  let units = Callgraph.units cg in
  let crossing = Hashtbl.create 8 in
  let touched = Hashtbl.create 16 in
  List.iter
    (fun u ->
      List.iter (fun c -> Hashtbl.replace crossing c ()) u.u_crossings;
      List.iter
        (fun (c, _, _, _) -> Hashtbl.replace touched c ())
        u.u_accesses)
    units;
  let keys tbl =
    List.sort_uniq compare (Hashtbl.fold (fun k () a -> k :: a) tbl [])
  in
  let at_crossing = keys crossing in
  let at_atomic =
    List.filter (fun k -> not (Hashtbl.mem crossing k)) (keys touched)
  in
  let at_units =
    List.filter_map
      (fun u ->
        if u.u_accesses = [] && u.u_yield_sites = [] then None
        else
          Some
            {
              ua_unit = u.u_module ^ "." ^ u.u_name;
              ua_file = u.u_file;
              ua_yield = Yield_effect.to_string u.u_yield;
              ua_regions = regions_of u;
            })
      units
  in
  let at_units =
    List.sort (fun a b -> compare (a.ua_unit, a.ua_file) (b.ua_unit, b.ua_file))
      at_units
  in
  { at_crossing; at_atomic; at_units }

(* --- JSON (deterministic, no external dependency) --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str_array l =
  "[" ^ String.concat "," (List.map (fun s -> "\"" ^ json_escape s ^ "\"") l)
  ^ "]"

let region_json r =
  Printf.sprintf "{\"start\":%d,\"end\":%d,\"reads\":%s,\"writes\":%s}"
    r.rg_start r.rg_end (str_array r.rg_reads) (str_array r.rg_writes)

let unit_json ua =
  Printf.sprintf "{\"unit\":\"%s\",\"file\":\"%s\",\"yield\":\"%s\",\"regions\":[%s]}"
    (json_escape ua.ua_unit) (json_escape ua.ua_file)
    (json_escape ua.ua_yield)
    (String.concat "," (List.map region_json ua.ua_regions))

let to_json t =
  "{\"schema\":\"oib-lint-atomics/v1\",\"crossing\":"
  ^ str_array t.at_crossing
  ^ ",\"atomic\":"
  ^ str_array t.at_atomic
  ^ ",\"units\":[\n"
  ^ String.concat ",\n" (List.map unit_json t.at_units)
  ^ "\n]}\n"
