(** Worklist fixpoint engines over the call graph.

    The pipeline is: {!Callgraph.build} (pass-A summaries) →
    {!solve_effects} (latch-effect fixpoint) → {!emit_pass} (re-walk
    every unit under the converged context with emission on) → the rule
    evaluators in {!Rules}. *)

val solve_effects :
  ?order:(Summary.u list -> Summary.u list) -> Callgraph.t -> unit
(** Iterate every unit's transfer function to the joint latch-effect /
    may-yield fixpoint (both reset to bottom first, callers requeued on
    growth of either, per-unit visit cap as a termination backstop).
    Mutates [u_effect] and [u_yield] in place; emission is off.

    [order] permutes only the initial worklist enqueue order — the
    converged solution must be (and is, see the order-independence
    property test) insensitive to it. *)

val reach :
  Callgraph.t ->
  seed:(Summary.call -> string option) ->
  (string * string, string) Hashtbl.t
(** Generic may-property reachability: marks every unit from which a
    seeded call site is reachable through the graph, mapping
    (module, unit) to a ["f -> g -> base"] witness chain. *)

val mutators :
  Callgraph.t ->
  seed:(string -> (int * int) option) ->
  (string * string, int * int) Hashtbl.t
(** Lifecycle-mutator wrapper fixpoint: a unit forwarding its own
    parameters into the (index, state) positions of a known mutator is
    itself a mutator at those parameter positions. *)

val final_ctx : config:Summary.config -> Callgraph.t -> Summary.ctx
(** The converged interprocedural context: effect resolution from the
    solved fixpoint, transitive WAL-append knowledge for L3, wrapper
    knowledge for L8 — with emission enabled. *)

val emit_pass : config:Summary.config -> Callgraph.t -> unit
(** Re-run every unit under {!final_ctx}, refreshing calls and findings
    with interprocedural precision. *)
