type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
  hint : string;
  site : string;
  suppressed : string option;
  trace : string list;
}

let make ?(suppressed = None) ?(site = "") ?(trace = []) ~file ~line ~col
    ~rule ~hint msg =
  { file; line; col; rule; msg; hint; site; suppressed; trace }

let of_location ?(suppressed = None) ?(site = "") ?(trace = []) ~rule ~hint
    (loc : Location.t) msg =
  let p = loc.loc_start in
  {
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    rule;
    msg;
    hint;
    site;
    suppressed;
    trace;
  }

let to_string t =
  let supp =
    match t.suppressed with
    | None -> ""
    | Some why -> " [suppressed: " ^ why ^ "]"
  in
  t.file ^ ":" ^ string_of_int t.line ^ ":" ^ string_of_int t.col
  ^ (if t.site = "" then "" else "(" ^ t.site ^ ")")
  ^ ": [" ^ t.rule ^ "] " ^ t.msg
  ^ (if t.hint = "" then "" else " (hint: " ^ t.hint ^ ")")
  ^ supp

(* Order by rule first so one subsystem's findings group together, then
   by position and site — the key the reports are deduplicated on, which
   is what makes @lint/@san-smoke output byte-stable. *)
let compare a b =
  let c = String.compare a.rule b.rule in
  if c <> 0 then c
  else
    let c = String.compare a.file b.file in
    if c <> 0 then c
    else
      let c = Int.compare a.line b.line in
      if c <> 0 then c
      else
        let c = Int.compare a.col b.col in
        if c <> 0 then c else String.compare a.site b.site

let dedupe diags =
  let sorted = List.sort compare diags in
  let rec go = function
    | a :: (b :: _ as rest) ->
      if compare a b = 0 then go rest else a :: go rest
    | l -> l
  in
  go sorted
