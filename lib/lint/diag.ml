type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
  hint : string;
  suppressed : string option;
}

let make ?(suppressed = None) ~file ~line ~col ~rule ~hint msg =
  { file; line; col; rule; msg; hint; suppressed }

let of_location ?(suppressed = None) ~rule ~hint (loc : Location.t) msg =
  let p = loc.loc_start in
  {
    file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    rule;
    msg;
    hint;
    suppressed;
  }

let to_string t =
  let supp =
    match t.suppressed with
    | None -> ""
    | Some why -> " [suppressed: " ^ why ^ "]"
  in
  t.file ^ ":" ^ string_of_int t.line ^ ":" ^ string_of_int t.col ^ ": ["
  ^ t.rule ^ "] " ^ t.msg
  ^ (if t.hint = "" then "" else " (hint: " ^ t.hint ^ ")")
  ^ supp

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule
