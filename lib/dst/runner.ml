open Oib_core
module Sched = Oib_sim.Sched
module Driver = Oib_workload.Driver

type outcome = {
  scenario : Scenario.t;
  errors : string list;
  failed_at : string option;
  incarnations : int;
  total_steps : int;
  build_cancelled : bool;
  committed : int;
}

let failed o = o.errors <> []

let primary_spec (sc : Scenario.t) =
  match sc.alg with
  | Scenario.Iot -> { Ib.index_id = 10; key_cols = [ 0 ]; unique = true }
  | Scenario.Nsf | Scenario.Sf ->
    { Ib.index_id = 10; key_cols = [ 0 ]; unique = sc.unique }

let secondary_spec = { Ib.index_id = 11; key_cols = [ 1 ]; unique = false }

(* IOT scenarios need distinct primary keys, so they get their own
   populate (the driver's draws values with possible duplicates). *)
let populate_iot ctx ~rows =
  let batch = 64 in
  let i = ref 0 in
  while !i < rows do
    let upto = min rows (!i + batch) in
    (match
       Engine.run_txn ctx (fun txn ->
           for j = !i to upto - 1 do
             ignore
               (Table_ops.insert ctx txn ~table:1
                  (Oib_util.Record.make
                     [|
                       Printf.sprintf "pk%06d" j; Printf.sprintf "s%04d" (j mod 89);
                     |]))
           done)
     with
    | Ok () -> ()
    | Error _ -> failwith "Runner: iot populate aborted");
    i := upto
  done

let missing ctx id =
  match Catalog.index ctx.Ctx.catalog id with
  | _ -> false
  | exception Invalid_argument _ -> true

let spawn_build ctx (sc : Scenario.t) cancelled =
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         try
           match sc.alg with
           | Scenario.Nsf | Scenario.Sf ->
             Ib.build_index ctx sc.ib ~table:1 (primary_spec sc)
           | Scenario.Iot ->
             Ib.build_index ctx sc.ib ~table:1 (primary_spec sc);
             Ib.build_secondary_via_primary ctx sc.ib ~table:1 ~primary:10
               secondary_spec
         with Ib.Build_unique_violation _ -> cancelled := true))

let spawn_resume ctx (sc : Scenario.t) cancelled =
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib-resume" (fun () ->
         try
           Ib.resume_builds ctx sc.ib;
           if not !cancelled then begin
             if missing ctx 10 then
               Ib.build_index ctx sc.ib ~table:1 (primary_spec sc);
             if sc.alg = Scenario.Iot && missing ctx 11 then
               Ib.build_secondary_via_primary ctx sc.ib ~table:1 ~primary:10
                 secondary_spec
           end
         with Ib.Build_unique_violation _ -> cancelled := true))

let run ?trace ?inject ?during ?on_engine (sc : Scenario.t) =
  let engine_ready ctx =
    match on_engine with Some f -> f ctx | None -> ()
  in
  (* run boundary for the sanitizer: fiber ids and latch identities are
     about to restart, so all volatile shadow state must go *)
  (match trace with
  | Some tr when Oib_obs.Trace.probing tr ->
    Oib_obs.Trace.probe_emit tr (Oib_obs.Probe.Epoch { label = "run" })
  | _ -> ());
  let wl = Scenario.workload sc in
  let pending = ref sc.faults in
  let last_backup = ref None in
  let cancelled = ref false in
  (* indexes observed Ready must stay Ready at every later quiescent
     point — a Ready index regressing across a restart is a recovery
     bug even when the tree itself checks out *)
  let ready_seen = ref [] in
  let stats_cells = ref [] in
  let total_steps = ref 0 in
  let incarnations = ref 1 in
  let ctx0 =
    match trace with
    | Some tr -> Engine.create ~seed:sc.seed ~page_capacity:512 ~trace:tr ()
    | None -> Engine.create ~seed:sc.seed ~page_capacity:512 ()
  in
  engine_ready ctx0;
  let _ = Catalog.create_table ctx0.Ctx.catalog ctx0.Ctx.pool ~table_id:1 in
  (match sc.alg with
  | Scenario.Iot -> populate_iot ctx0 ~rows:sc.rows
  | Scenario.Nsf | Scenario.Sf ->
    ignore (Driver.populate ctx0 ~table:1 ~rows:sc.rows ~seed:sc.seed));
  if sc.workers > 0 then
    stats_cells := Driver.spawn_workers ctx0 wl ~table:1 :: !stats_cells;
  spawn_build ctx0 sc cancelled;
  (match during with Some f -> f ctx0 | None -> ());
  let note_ready ctx =
    List.iter
      (fun (tbl : Catalog.table_info) ->
        List.iter
          (fun (info : Catalog.index_info) ->
            if info.phase = Catalog.Ready && not (List.mem info.index_id !ready_seen)
            then ready_seen := info.index_id :: !ready_seen)
          tbl.indexes)
      (Catalog.tables ctx.Ctx.catalog)
  in
  let ready_regressions ctx =
    List.filter_map
      (fun id ->
        match Catalog.index ctx.Ctx.catalog id with
        | info ->
          if info.phase = Catalog.Ready then None
          else Some (Printf.sprintf "index %d: Ready regressed after restart" id)
        | exception Invalid_argument _ ->
          Some (Printf.sprintf "index %d: vanished after restart" id))
      !ready_seen
  in
  let fire ctx = function
    | Scenario.Checkpoint_at _ -> Engine.checkpoint ctx
    | Scenario.Truncate_log_at _ -> ignore (Engine.truncate_log ctx)
    | Scenario.Backup_at _ -> last_backup := Some (Engine.backup ctx)
    | Scenario.Crash_at _ | Scenario.Media_failure_at _ -> ()
  in
  (* in-flight faults fire from a step hook; the next stopping fault has
     a crash trap armed for its step *)
  let arm ctx =
    let hook =
      Sched.add_step_hook ctx.Ctx.sched (fun step ->
          let rec go () =
            match !pending with
            | f :: rest
              when (not (Scenario.is_stop f)) && Scenario.fault_step f <= step
              ->
              pending := rest;
              fire ctx f;
              go ()
            | _ -> ()
          in
          go ())
    in
    Sched.set_crash_trap ctx.Ctx.sched (fun step ->
        match List.find_opt Scenario.is_stop !pending with
        | Some f -> step >= Scenario.fault_step f
        | None -> false);
    hook
  in
  let result errors failed_at =
    {
      scenario = sc;
      errors;
      failed_at;
      incarnations = !incarnations;
      total_steps = !total_steps;
      build_cancelled = !cancelled;
      committed =
        List.fold_left (fun a c -> a + (!c).Driver.committed) 0 !stats_cells;
    }
  in
  let rec life ctx =
    let hook = arm ctx in
    match Sched.run ctx.Ctx.sched with
    | () ->
      Sched.remove_step_hook ctx.Ctx.sched hook;
      total_steps := !total_steps + Sched.steps ctx.Ctx.sched;
      let regress = ready_regressions ctx in
      if regress <> [] then result regress (Some "incarnation-end")
      else begin
        note_ready ctx;
        finalize ctx
      end
    | exception Sched.Crashed ->
      total_steps := !total_steps + Sched.steps ctx.Ctx.sched;
      let stop =
        match List.find_opt Scenario.is_stop !pending with
        | Some f ->
          pending := List.filter (fun g -> g != f) !pending;
          f
        | None -> Scenario.Crash_at (Sched.steps ctx.Ctx.sched)
      in
      (* a volatile Ready whose flip record missed the disk is restored
         in-progress and re-finished by resume, so the regression check
         runs at quiescent points, not here-and-now *)
      note_ready ctx;
      (* random page steal before the lights go out *)
      Oib_storage.Buffer_pool.flush_some ctx.Ctx.pool
        (Oib_util.Rng.create (sc.seed + (131 * !incarnations)))
        0.5;
      let seed' = sc.seed + (101 * !incarnations) + 1 in
      let ctx' =
        match stop with
        | Scenario.Media_failure_at _ -> (
          match !last_backup with
          | Some b -> (
            try Engine.media_restore ~seed:seed' ctx b
            with Engine.Media_recovery_forfeited _ ->
              (* truncation forfeited the restore (footnote 8); the
                 simulated disk is still there, so degrade to restart *)
              Engine.crash ~seed:seed' ctx)
          | None -> Engine.crash ~seed:seed' ctx)
        | _ -> Engine.crash ~seed:seed' ctx
      in
      engine_ready ctx';
      incarnations := !incarnations + 1;
      (match Oracle.battery ~final:false ctx' with
      | [] ->
        spawn_resume ctx' sc cancelled;
        if sc.workers > 0 then
          stats_cells :=
            Driver.spawn_workers ctx'
              {
                wl with
                Driver.seed = sc.seed + (50 * !incarnations);
                txns_per_worker = sc.post_crash_txns;
              }
              ~table:1
            :: !stats_cells;
        life ctx'
      | errs ->
        result errs (Some (Printf.sprintf "after-restart-%d" (!incarnations - 1))))
    | exception Sched.Deadlock msg ->
      result [ "scheduler deadlock: " ^ msg ] (Some "deadlock")
    | exception exn ->
      result
        [ "unhandled exception: " ^ Printexc.to_string exn ]
        (Some "exception")
  and finalize ctx =
    (match inject with Some f -> f ctx | None -> ());
    match Oracle.battery ~final:true ctx with
    | _ :: _ as errs -> result errs (Some "final")
    | [] -> (
      (* double-recovery idempotence: crash the completed engine, crash
         the freshly recovered engine again at step 0, recover, re-check *)
      let ctx_a = Engine.crash ~seed:(sc.seed + 7001) ctx in
      let ctx_b = Engine.crash ~seed:(sc.seed + 7002) ctx_a in
      engine_ready ctx_b;
      spawn_resume ctx_b sc cancelled;
      match Sched.run ctx_b.Ctx.sched with
      | () -> (
        match Oracle.battery ~final:true ctx_b @ ready_regressions ctx_b with
        | [] -> result [] None
        | errs -> result errs (Some "double-recovery"))
      | exception Sched.Deadlock msg ->
        result [ "double-recovery deadlock: " ^ msg ] (Some "double-recovery")
      | exception exn ->
        result
          [ "double-recovery exception: " ^ Printexc.to_string exn ]
          (Some "double-recovery"))
  in
  life ctx0

let measure_steps ?trace sc =
  (run ?trace (Scenario.override ~faults:[] sc)).total_steps
