(** Scenario generation: one seed determines a complete simulation run.

    A scenario fixes everything the deterministic runner needs — the
    algorithm under test, the table size, the transaction mix, the index
    builder's tuning, and a fault plan (crashes, media failures, system
    checkpoints, log truncations, backups at generated scheduler steps).
    [generate ~seed] derives all of it from one integer, so a failing run
    is reproduced by its seed plus whatever explicit overrides the
    shrinker settled on — exactly the line [oib-fuzz repro] accepts. *)

type alg = Nsf | Sf | Iot
(** [Iot] = §6.2's index-organized mode: a unique SF primary build
    followed by a secondary built via a key-order scan of the primary. *)

type fault =
  | Crash_at of int  (** system failure at the step; restart recovery *)
  | Media_failure_at of int
      (** data disk lost at the step; restore the latest backup and redo
          the surviving log (degrades to a plain crash when the plan took
          no backup, or when truncation forfeited the restore) *)
  | Checkpoint_at of int  (** {!Oib_core.Engine.checkpoint} *)
  | Truncate_log_at of int  (** {!Oib_core.Engine.truncate_log} *)
  | Backup_at of int  (** {!Oib_core.Engine.backup}, kept as "latest" *)

type t = {
  seed : int;  (** master seed; every derived RNG folds it in *)
  alg : alg;
  rows : int;  (** initial table size *)
  unique : bool;  (** build the index unique (NSF/SF only) *)
  workers : int;
  txns_per_worker : int;
  ops_per_txn : int;
  abort_pct : float;
  theta : float;
  key_space : int;
  post_crash_txns : int;  (** per worker, in each post-crash incarnation *)
  ib : Oib_core.Ib.config;
  faults : fault list;  (** sorted by step, steps strictly increasing *)
}

val generate : seed:int -> t
(** Deterministic: equal seeds yield equal scenarios. *)

val override :
  ?alg:alg ->
  ?rows:int ->
  ?unique:bool ->
  ?workers:int ->
  ?txns:int ->
  ?ops:int ->
  ?post:int ->
  ?faults:fault list ->
  t ->
  t
(** Apply explicit overrides (the shrinker's moves and the CLI's flags)
    on top of a generated scenario. Overriding [alg] also retargets
    [ib.algorithm]. *)

val workload : t -> Oib_workload.Driver.config

val fault_step : fault -> int
val is_stop : fault -> bool
(** True for the faults that end an engine incarnation
    ([Crash_at] / [Media_failure_at]). *)

val alg_to_string : alg -> string
val alg_of_string : string -> alg
(** Raises [Failure] on unknown names. *)

val faults_to_string : fault list -> string
(** E.g. ["ckpt@140,crash@900"]; the empty plan prints as ["none"]. *)

val faults_of_string : string -> fault list
(** Inverse of {!faults_to_string} (sorts by step). Raises [Failure] on
    malformed input. *)

val pp : Format.formatter -> t -> unit

val repro_command :
  ?sabotage:bool -> ?sabotage_race:bool -> ?sanitize:bool -> t -> string
(** The [oib-fuzz repro ...] line that replays exactly this scenario. *)
