(** Scan-accounting oracle for range-tracked resumable builds.

    Watches {!Oib_core.Ib.set_scan_observer} /
    {!Oib_core.Ib.set_range_observer} across every engine incarnation of a
    crash-and-resume run and checks the contract of the builder's
    {!Oib_core.Range_set}:

    - a page sealed by a range commit is {e never} extracted again for
      that index, in any later incarnation (resume does not rescan
      covered ranges);
    - within one incarnation no page is extracted twice for one index;
    - sealed coverage is contiguous and its high mark strictly monotone
      across the whole run.

    Rescanning an {e unsealed} page after a crash is legitimate (the
    extraction was not durable) and is not flagged.

    Intended for non-unique build scenarios: a unique-violation cancel
    drops the index and its range record, after which a from-scratch
    rebuild of the same index id would trip the sealed-page check. *)

type t

val create : unit -> t

val install : t -> unit
(** Point the builder's process-global observers at [t]. The observers
    survive engine crash/restart, so one [install] covers a whole
    multi-incarnation run. *)

val uninstall : unit -> unit
(** Clear the builder's observers (do this before the next scenario). *)

val new_epoch : t -> unit
(** Declare an incarnation boundary (call from the runner's [on_engine]
    hook): resets the within-epoch duplicate-extraction set. Sealed pages
    and the coverage high mark persist — that is the point. *)

val coverage : t -> int -> int
(** Highest sealed page for an index; -1 when nothing is sealed. *)

val scans : t -> int
(** Total page extractions observed. *)

val seals : t -> int
(** Total range commits observed. *)

val errors : t -> string list
(** Accumulated violations, oldest first (empty = clean). *)
