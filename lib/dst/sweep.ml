type point = {
  crash_step : int;
  errors : string list;
  failed_at : string option;
}

type result = {
  scenario : Scenario.t;
  base_steps : int;
  base_errors : string list;
  points : point list;
}

let crash_points ~base_steps ~points =
  let every = max 1 (base_steps / max 1 points) in
  let rec go acc s = if s > base_steps then List.rev acc else go (s :: acc) (s + every) in
  go [] every

let sweep ?trace ?inject ?during ?(on_point = fun _ _ -> ()) sc ~points =
  let base = Runner.run ?trace ?inject ?during (Scenario.override ~faults:[] sc) in
  if Runner.failed base then
    {
      scenario = sc;
      base_steps = base.Runner.total_steps;
      base_errors = base.Runner.errors;
      points = [];
    }
  else
    let pts = crash_points ~base_steps:base.Runner.total_steps ~points in
    let results =
      List.map
        (fun c ->
          let o =
            Runner.run ?trace ?inject ?during
              (Scenario.override ~faults:[ Scenario.Crash_at c ] sc)
          in
          on_point c o.Runner.errors;
          {
            crash_step = c;
            errors = o.Runner.errors;
            failed_at = o.Runner.failed_at;
          })
        pts
    in
    {
      scenario = sc;
      base_steps = base.Runner.total_steps;
      base_errors = [];
      points = results;
    }

let failures r = List.filter (fun p -> p.errors <> []) r.points
