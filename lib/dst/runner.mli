(** Execute one scenario end to end, deterministically.

    A run is a sequence of engine incarnations separated by the fault
    plan's crashes / media failures. In every incarnation the runner
    spawns the workload's workers and the index-builder fiber (or, after
    a restart, [Ib.resume_builds] plus a rebuild when the crash predated
    the descriptor), fires the in-flight faults (system checkpoint, log
    truncation, backup) from a scheduler step hook, and arms a crash trap
    for the next stopping fault. After every restart recovery the oracle
    battery runs; after the scenario completes, a final battery plus the
    double-recovery idempotence check: crash the completed engine, crash
    the freshly recovered engine again at step 0, recover, and the
    oracles must still pass.

    A unique-index build cancelled by the table legitimately holding
    duplicates ({!Oib_core.Ib.Build_unique_violation}, §2.2.3) is a legal
    outcome, not a failure; it is reported in [build_cancelled].

    Everything — including recovery seeds and the pre-crash page steal —
    derives from the scenario, so equal scenarios produce equal runs,
    event for event. *)

type outcome = {
  scenario : Scenario.t;
  errors : string list;  (** violations from the first failing battery *)
  failed_at : string option;
      (** where the failure surfaced: ["after-restart-N"], ["final"],
          ["double-recovery"], ["deadlock"], ["exception"] *)
  incarnations : int;  (** 1 + restarts actually taken *)
  total_steps : int;  (** scheduler steps summed over incarnations *)
  build_cancelled : bool;
  committed : int;  (** transactions committed across all incarnations *)
}

val failed : outcome -> bool

val run :
  ?trace:Oib_obs.Trace.t ->
  ?inject:(Oib_core.Ctx.t -> unit) ->
  ?during:(Oib_core.Ctx.t -> unit) ->
  ?on_engine:(Oib_core.Ctx.t -> unit) ->
  Scenario.t ->
  outcome
(** [inject] (test-only hook) runs on the completed engine just before
    the final oracle battery — used to plant deliberate violations and
    prove the harness catches, shrinks and reports them. [during]
    (test-only hook) runs on the first incarnation right after the
    builder fiber is spawned, before the scheduler starts — used to
    plant a concurrent saboteur fiber for the race sanitizer.
    [on_engine] runs right after every engine incarnation is assembled
    (initial, post-crash/media-restore, and the double-recovery check) —
    used to re-install per-scheduler instrumentation such as the
    profiler's step hook, so a capture's final incarnation is profiled.
    When a sanitizing [trace] is given, an [Epoch] probe marks the run
    start so per-run shadow state resets. *)

val measure_steps : ?trace:Oib_obs.Trace.t -> Scenario.t -> int
(** Total steps of the scenario run fault-free — the sweep's upper
    bound for crash placement. *)
