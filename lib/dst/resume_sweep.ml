(* Crash-at-every-step sweep over a range-tracked resumable build, with
   the scan-accounting oracle watching every incarnation. See
   resume_sweep.mli. *)

type point = {
  crash_step : int;
  errors : string list;
  scans : int;
  seals : int;
}

type result = {
  scenario : Scenario.t;
  base_steps : int;
  base_errors : string list;
  points : point list;
  total_scans : int;
  total_seals : int;
}

let run ?(on_point = fun _ _ -> ()) sc ~points =
  (* Force non-unique: a unique-violation cancel drops the index and its
     range record, and a from-scratch rebuild of the same id would trip
     the sealed-page check for reasons that are not bugs. *)
  let sc = Scenario.override ~unique:false sc in
  let base = Runner.run (Scenario.override ~faults:[] sc) in
  if Runner.failed base then
    {
      scenario = sc;
      base_steps = base.Runner.total_steps;
      base_errors = base.Runner.errors;
      points = [];
      total_scans = 0;
      total_seals = 0;
    }
  else begin
    let pts = Sweep.crash_points ~base_steps:base.Runner.total_steps ~points in
    let total_scans = ref 0 and total_seals = ref 0 in
    let results =
      List.map
        (fun c ->
          let chk = Scan_check.create () in
          Scan_check.install chk;
          let o =
            Fun.protect ~finally:Scan_check.uninstall (fun () ->
                Runner.run
                  ~on_engine:(fun _ -> Scan_check.new_epoch chk)
                  (Scenario.override ~faults:[ Scenario.Crash_at c ] sc))
          in
          total_scans := !total_scans + Scan_check.scans chk;
          total_seals := !total_seals + Scan_check.seals chk;
          let errors = o.Runner.errors @ Scan_check.errors chk in
          on_point c errors;
          { crash_step = c; errors; scans = Scan_check.scans chk;
            seals = Scan_check.seals chk })
        pts
    in
    {
      scenario = sc;
      base_steps = base.Runner.total_steps;
      base_errors = [];
      points = results;
      total_scans = !total_scans;
      total_seals = !total_seals;
    }
  end

let failures r = List.filter (fun p -> p.errors <> []) r.points
