(** Failure minimization.

    Given a scenario whose run violates the oracle battery, greedily
    search for a smaller one that still does: drop faults one at a time,
    bisect the surviving fault steps downward, and shrink rows, workers,
    transactions and operations — re-running the (deterministic) scenario
    after every move. The result prints as a one-line
    [oib-fuzz repro ...] command via {!Scenario.repro_command}. *)

val shrink :
  ?budget:int ->
  reproduces:(Scenario.t -> bool) ->
  Scenario.t ->
  Scenario.t * int
(** [shrink ~reproduces sc] assumes [reproduces sc] already holds and
    returns the minimized scenario plus the number of candidate runs
    spent. [budget] (default 60) bounds those runs. *)
