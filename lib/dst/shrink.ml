open Scenario

let with_step f s =
  match f with
  | Crash_at _ -> Crash_at s
  | Media_failure_at _ -> Media_failure_at s
  | Checkpoint_at _ -> Checkpoint_at s
  | Truncate_log_at _ -> Truncate_log_at s
  | Backup_at _ -> Backup_at s

(* Candidate moves, cheapest reductions first: losing a whole fault or
   half the table prunes more than nudging a step. *)
let candidates (s : t) =
  let cands = ref [] in
  let add c = if c <> s then cands := c :: !cands in
  List.iteri
    (fun i _ ->
      add (override ~faults:(List.filteri (fun j _ -> j <> i) s.faults) s))
    s.faults;
  if s.rows > 10 then
    List.iter
      (fun r -> if r >= 10 && r < s.rows then add (override ~rows:r s))
      [ 10; s.rows / 2; s.rows * 3 / 4 ];
  if s.workers > 0 then
    List.iter
      (fun w -> if w >= 0 && w < s.workers then add (override ~workers:w s))
      [ 0; s.workers / 2; s.workers - 1 ];
  if s.txns_per_worker > 1 then
    List.iter
      (fun n -> if n >= 1 && n < s.txns_per_worker then add (override ~txns:n s))
      [ 1; s.txns_per_worker / 2 ];
  if s.ops_per_txn > 1 then
    List.iter
      (fun n -> if n >= 1 && n < s.ops_per_txn then add (override ~ops:n s))
      [ 1; s.ops_per_txn / 2 ];
  if s.post_crash_txns > 1 then add (override ~post:(s.post_crash_txns / 2) s);
  List.iteri
    (fun i f ->
      let step = fault_step f in
      List.iter
        (fun s' ->
          if s' >= 1 && s' < step then
            add
              (override
                 ~faults:
                   (List.mapi
                      (fun j g -> if j = i then with_step g s' else g)
                      s.faults)
                 s))
        [ step / 2; step * 3 / 4; step * 7 / 8; step - 1 ])
    s.faults;
  List.rev !cands

let shrink ?(budget = 60) ~reproduces sc =
  let runs = ref 0 in
  let try_ c =
    if !runs >= budget then false
    else begin
      incr runs;
      reproduces c
    end
  in
  let rec fix s =
    if !runs >= budget then s
    else
      match List.find_opt try_ (candidates s) with
      | Some c -> fix c
      | None -> s
  in
  let small = fix sc in
  (small, !runs)
