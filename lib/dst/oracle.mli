(** The oracle battery the runner fires after every engine incarnation.

    Each check returns human-readable violations (empty = pass):

    - {!consistency}: {!Oib_core.Engine.consistency_errors} — every
      [Ready] index holds exactly one live entry per record key;
    - {!structural}: {!Oib_btree.Bt_check.check} over every [Ready]
      tree's invariants (ordering, separators, chains, accounting);
    - {!progress_monotonic}: every build's phase history within this
      incarnation ranks monotonically ({!Oib_core.Build_status.rank}
      never decreases, transition steps never go backwards);
    - {!lifecycle}: {!Oib_core.Engine.lifecycle_errors} — the index state
      machine's quiescent-point invariants (no [Disabled] stragglers, no
      write-only index without durable progress; finally, [Readable] iff
      [Ready] with no leftover progress/range/side-file state);
    - {!completion}: no build left unfinished and no side-file left
      undrained — only meaningful once a scenario has run to completion,
      hence gated behind [~final].

    {!battery} combines them, prefixing a precondition failure when
    transactions are still active. *)

val consistency : Oib_core.Ctx.t -> string list
val structural : Oib_core.Ctx.t -> string list
val progress_monotonic : Oib_core.Ctx.t -> string list
val lifecycle : ?final:bool -> Oib_core.Ctx.t -> string list
val completion : Oib_core.Ctx.t -> string list

val battery : ?final:bool -> Oib_core.Ctx.t -> string list
(** [final] defaults to [true]. *)
