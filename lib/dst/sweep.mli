(** Crash-point sweep: recovery coverage for every phase of a build.

    One hand-picked crash step (the old [oib-demo crash --at]) probes one
    log-flush/page-write boundary; the sweep probes them all. It first
    runs the scenario fault-free to measure its total step count, then
    re-runs it once per evenly spaced crash step, each run crashing
    there, recovering, resuming, and firing the full oracle battery. *)

type point = {
  crash_step : int;
  errors : string list;
  failed_at : string option;
}

type result = {
  scenario : Scenario.t;
  base_steps : int;  (** steps of the fault-free run *)
  base_errors : string list;
      (** battery violations of the fault-free run itself; when non-empty
          no crash points were attempted *)
  points : point list;
}

val crash_points : base_steps:int -> points:int -> int list
(** Evenly spaced steps [every, 2*every, ...] covering [(0, base_steps]]
    with at most [points] entries ([every = base_steps / points],
    floored at 1). *)

val sweep :
  ?trace:Oib_obs.Trace.t ->
  ?inject:(Oib_core.Ctx.t -> unit) ->
  ?during:(Oib_core.Ctx.t -> unit) ->
  ?on_point:(int -> string list -> unit) ->
  Scenario.t ->
  points:int ->
  result
(** The scenario's own fault plan is replaced by a single [Crash_at] per
    point. [on_point] is called after each point (progress reporting). *)

val failures : result -> point list
