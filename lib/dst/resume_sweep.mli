(** Crash-at-every-step sweep over a range-tracked resumable build.

    Like {!Sweep.sweep}, but every crash-point run carries a fresh
    {!Scan_check} watching the builder's scan/seal observers across all
    of that run's incarnations, and each point's errors combine the
    runner's oracle battery with the scan-accounting violations — so a
    passing sweep proves both recovery correctness {e and} zero duplicate
    range scans across resume.

    The scenario is forced non-unique (see {!Scan_check} on why cancels
    would trip the sealed-page check). *)

type point = {
  crash_step : int;
  errors : string list;
  scans : int;  (** page extractions observed in this point's run *)
  seals : int;  (** range commits observed in this point's run *)
}

type result = {
  scenario : Scenario.t;
  base_steps : int;
  base_errors : string list;
      (** violations of the fault-free base run; when non-empty no crash
          points were attempted *)
  points : point list;
  total_scans : int;
  total_seals : int;
      (** across all points — a sweep that proved nothing (never sealed a
          range) is suspicious, so the caller can assert these are > 0 *)
}

val run :
  ?on_point:(int -> string list -> unit) ->
  Scenario.t ->
  points:int ->
  result

val failures : result -> point list
