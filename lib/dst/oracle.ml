open Oib_core

let consistency ctx = Engine.consistency_errors ctx

let structural (ctx : Ctx.t) =
  List.concat_map
    (fun (tbl : Catalog.table_info) ->
      List.concat_map
        (fun (info : Catalog.index_info) ->
          match info.phase with
          | Catalog.Ready ->
            List.map
              (Printf.sprintf "index %d: btree: %s" info.index_id)
              (Oib_btree.Bt_check.check info.tree)
          | Catalog.Nsf_building _ | Catalog.Sf_building _ -> [])
        tbl.indexes)
    (Catalog.tables ctx.Ctx.catalog)

let progress_monotonic ctx =
  List.concat_map
    (fun (st : Build_status.t) ->
      let errs = ref [] in
      let rec walk = function
        | (p1, s1) :: ((p2, s2) :: _ as rest) ->
          if Build_status.rank p2 < Build_status.rank p1 then
            errs :=
              Printf.sprintf "index %d: phase regressed %s@%d -> %s@%d"
                st.Build_status.index_id
                (Build_status.phase_name p1)
                s1
                (Build_status.phase_name p2)
                s2
              :: !errs;
          if s2 < s1 then
            errs :=
              Printf.sprintf "index %d: phase step went backwards %d -> %d"
                st.Build_status.index_id s1 s2
              :: !errs;
          walk rest
        | _ -> ()
      in
      walk (Build_status.history st);
      List.rev !errs)
    (Engine.build_progress ctx)

let completion ctx =
  List.map
    (fun (id, phase) ->
      Printf.sprintf "index %d: build left unfinished (%s)" id phase)
    (Engine.unfinished_builds ctx)
  @ List.map
      (fun (id, n) ->
        Printf.sprintf "index %d: side-file not drained (%d entries)" id n)
      (Engine.undrained_sidefiles ctx)

let lifecycle ?final ctx = Engine.lifecycle_errors ?final ctx

let battery ?(final = true) ctx =
  let pre =
    let n = Engine.active_txns ctx in
    if n > 0 then
      [ Printf.sprintf "oracle precondition: %d transaction(s) still active" n ]
    else []
  in
  pre @ consistency ctx @ structural ctx @ progress_monotonic ctx
  @ lifecycle ~final ctx
  @ (if final then completion ctx else [])
