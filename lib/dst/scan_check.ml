(* Scan-accounting oracle for resumable builds. See scan_check.mli. *)

open Oib_core

type t = {
  sealed : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* index -> sealed pages *)
  max_hi : (int, int) Hashtbl.t; (* index -> highest sealed page *)
  epoch_seen : (int * int, unit) Hashtbl.t; (* (index, page) this epoch *)
  mutable epoch : int;
  mutable scans : int;
  mutable seals : int;
  mutable errs : string list;
}

let create () =
  {
    sealed = Hashtbl.create 4;
    max_hi = Hashtbl.create 4;
    epoch_seen = Hashtbl.create 256;
    epoch = 0;
    scans = 0;
    seals = 0;
    errs = [];
  }

let err t fmt = Printf.ksprintf (fun s -> t.errs <- s :: t.errs) fmt

let sealed_for t index =
  match Hashtbl.find_opt t.sealed index with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 64 in
    Hashtbl.replace t.sealed index h;
    h

let on_scan t ~index ~page =
  t.scans <- t.scans + 1;
  if Hashtbl.mem (sealed_for t index) page then
    err t
      "index %d: page %d scanned after being sealed (epoch %d) — duplicate \
       range scan"
      index page t.epoch;
  if Hashtbl.mem t.epoch_seen (index, page) then
    err t "index %d: page %d scanned twice within epoch %d" index page
      t.epoch;
  Hashtbl.replace t.epoch_seen (index, page) ()

let on_range t ~index ~lo ~hi =
  t.seals <- t.seals + 1;
  let prev = Option.value ~default:(-1) (Hashtbl.find_opt t.max_hi index) in
  if hi <= prev then
    err t "index %d: coverage regressed: sealed [%d,%d] after high mark %d"
      index lo hi prev;
  if lo <> prev + 1 then
    err t "index %d: coverage gap: sealed [%d,%d] but high mark is %d" index
      lo hi prev;
  let s = sealed_for t index in
  for p = lo to hi do
    Hashtbl.replace s p ()
  done;
  Hashtbl.replace t.max_hi index (max prev hi)

let install t =
  Ib.set_scan_observer (Some (fun ~index ~page -> on_scan t ~index ~page));
  Ib.set_range_observer (Some (fun ~index ~lo ~hi -> on_range t ~index ~lo ~hi))

let uninstall () =
  Ib.set_scan_observer None;
  Ib.set_range_observer None

let new_epoch t =
  t.epoch <- t.epoch + 1;
  Hashtbl.reset t.epoch_seen

let coverage t index =
  Option.value ~default:(-1) (Hashtbl.find_opt t.max_hi index)

let scans t = t.scans
let seals t = t.seals
let errors t = List.rev t.errs
