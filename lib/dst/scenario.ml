open Oib_util
module Ib = Oib_core.Ib
module Driver = Oib_workload.Driver

type alg = Nsf | Sf | Iot

type fault =
  | Crash_at of int
  | Media_failure_at of int
  | Checkpoint_at of int
  | Truncate_log_at of int
  | Backup_at of int

type t = {
  seed : int;
  alg : alg;
  rows : int;
  unique : bool;
  workers : int;
  txns_per_worker : int;
  ops_per_txn : int;
  abort_pct : float;
  theta : float;
  key_space : int;
  post_crash_txns : int;
  ib : Ib.config;
  faults : fault list;
}

let fault_step = function
  | Crash_at s | Media_failure_at s | Checkpoint_at s | Truncate_log_at s
  | Backup_at s ->
    s

let is_stop = function
  | Crash_at _ | Media_failure_at _ -> true
  | Checkpoint_at _ | Truncate_log_at _ | Backup_at _ -> false

let sort_faults fs =
  List.sort (fun a b -> compare (fault_step a) (fault_step b)) fs

let ib_alg = function Nsf -> Ib.Nsf | Sf | Iot -> Ib.Sf

(* Fault plans live in the step range where generated scenarios actually
   run (a few dozen to a few hundred steps); steps past the end of the
   run simply never fire, which is itself a legal plan. *)
let gen_faults rng =
  let n = Rng.int rng 4 in
  let faults = ref [] in
  let used = Hashtbl.create 8 in
  let fresh_step () =
    (* draw until unused; steps collide rarely in [10, 610) *)
    let rec go tries =
      let s = 10 + Rng.int rng 600 in
      if Hashtbl.mem used s && tries < 10 then go (tries + 1) else s
    in
    let s = go 0 in
    Hashtbl.replace used s ();
    s
  in
  for _ = 1 to n do
    let s = fresh_step () in
    let f =
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 | 4 -> Crash_at s
      | 5 | 6 -> Checkpoint_at s
      | 7 -> Truncate_log_at s
      | 8 -> Backup_at s
      | _ -> Media_failure_at s
    in
    faults := f :: !faults
  done;
  (* a media failure without an earlier backup would degrade to a plain
     crash; give it an image copy to restore when we can *)
  let fs = sort_faults !faults in
  let rec ensure_backup seen_backup acc = function
    | [] -> List.rev acc
    | Media_failure_at s :: rest when not seen_backup ->
      let b = max 1 (s / 2) in
      if Hashtbl.mem used b then
        ensure_backup true (Media_failure_at s :: acc) rest
      else begin
        Hashtbl.replace used b ();
        ensure_backup true (Media_failure_at s :: Backup_at b :: acc) rest
      end
    | (Backup_at _ as f) :: rest -> ensure_backup true (f :: acc) rest
    | f :: rest -> ensure_backup seen_backup (f :: acc) rest
  in
  sort_faults (ensure_backup false [] fs)

let generate ~seed =
  let rng = Rng.create (0x5eed + seed) in
  let alg =
    match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 -> Nsf
    | 4 | 5 | 6 | 7 -> Sf
    | _ -> Iot
  in
  let rows = 40 + Rng.int rng 211 in
  let unique = (match alg with Iot -> false | Nsf | Sf -> Rng.chance rng 0.2) in
  let workers = Rng.int rng 5 in
  let txns_per_worker = 5 + Rng.int rng 31 in
  let ops_per_txn = 1 + Rng.int rng 5 in
  let abort_pct = float_of_int (Rng.int rng 30) /. 100.0 in
  let theta = float_of_int (Rng.int rng 120) /. 100.0 in
  let key_space = 50 + Rng.int rng 950 in
  let post_crash_txns = 3 + Rng.int rng 12 in
  let ib =
    {
      Ib.algorithm = ib_alg alg;
      memory_keys = 16 * (1 + Rng.int rng 8);
      batch_size = 4 + Rng.int rng 28;
      ckpt_every_pages = 4 + Rng.int rng 28;
      ckpt_every_keys = 32 + Rng.int rng 480;
      specialized_split = Rng.bool rng;
      sort_sidefile = Rng.bool rng;
    }
  in
  let faults = gen_faults rng in
  {
    seed;
    alg;
    rows;
    unique;
    workers;
    txns_per_worker;
    ops_per_txn;
    abort_pct;
    theta;
    key_space;
    post_crash_txns;
    ib;
    faults;
  }

let override ?alg ?rows ?unique ?workers ?txns ?ops ?post ?faults t =
  let pick o v = Option.value o ~default:v in
  let alg = pick alg t.alg in
  {
    t with
    alg;
    ib = { t.ib with Ib.algorithm = ib_alg alg };
    rows = pick rows t.rows;
    unique = pick unique t.unique;
    workers = pick workers t.workers;
    txns_per_worker = pick txns t.txns_per_worker;
    ops_per_txn = pick ops t.ops_per_txn;
    post_crash_txns = pick post t.post_crash_txns;
    faults = (match faults with Some fs -> sort_faults fs | None -> t.faults);
  }

let workload t =
  {
    Driver.default with
    Driver.seed = t.seed;
    workers = t.workers;
    txns_per_worker = t.txns_per_worker;
    ops_per_txn = t.ops_per_txn;
    abort_pct = t.abort_pct;
    theta = t.theta;
    key_space = t.key_space;
  }

let alg_to_string = function Nsf -> "nsf" | Sf -> "sf" | Iot -> "iot"

let alg_of_string = function
  | "nsf" -> Nsf
  | "sf" -> Sf
  | "iot" -> Iot
  | s -> failwith (Printf.sprintf "unknown algorithm %S (use nsf|sf|iot)" s)

let fault_to_string = function
  | Crash_at s -> Printf.sprintf "crash@%d" s
  | Media_failure_at s -> Printf.sprintf "media@%d" s
  | Checkpoint_at s -> Printf.sprintf "ckpt@%d" s
  | Truncate_log_at s -> Printf.sprintf "trunc@%d" s
  | Backup_at s -> Printf.sprintf "backup@%d" s

let faults_to_string = function
  | [] -> "none"
  | fs -> String.concat "," (List.map fault_to_string fs)

let faults_of_string s =
  match String.trim s with
  | "" | "none" -> []
  | s ->
    String.split_on_char ',' s
    |> List.map (fun item ->
           let item = String.trim item in
           match String.index_opt item '@' with
           | None ->
             failwith
               (Printf.sprintf "bad fault %S (want kind@step, e.g. crash@120)"
                  item)
           | Some i ->
             let kind = String.sub item 0 i in
             let step =
               match
                 int_of_string_opt
                   (String.sub item (i + 1) (String.length item - i - 1))
               with
               | Some n when n >= 0 -> n
               | _ -> failwith (Printf.sprintf "bad fault step in %S" item)
             in
             (match kind with
             | "crash" -> Crash_at step
             | "media" -> Media_failure_at step
             | "ckpt" -> Checkpoint_at step
             | "trunc" -> Truncate_log_at step
             | "backup" -> Backup_at step
             | k -> failwith (Printf.sprintf "unknown fault kind %S" k)))
    |> sort_faults

let pp fmt t =
  Format.fprintf fmt
    "seed=%d alg=%s rows=%d%s workers=%d txns=%d ops=%d abort=%.2f \
     theta=%.2f keyspace=%d post=%d ib=(mem=%d batch=%d ckpt-pages=%d \
     ckpt-keys=%d split=%b sortsf=%b) faults=%s"
    t.seed (alg_to_string t.alg) t.rows
    (if t.unique then " unique" else "")
    t.workers t.txns_per_worker t.ops_per_txn t.abort_pct t.theta t.key_space
    t.post_crash_txns t.ib.Ib.memory_keys t.ib.Ib.batch_size
    t.ib.Ib.ckpt_every_pages t.ib.Ib.ckpt_every_keys t.ib.Ib.specialized_split
    t.ib.Ib.sort_sidefile
    (faults_to_string t.faults)

let repro_command ?(sabotage = false) ?(sabotage_race = false)
    ?(sanitize = false) t =
  Printf.sprintf
    "oib-fuzz repro --seed %d --alg %s --rows %d --workers %d --txns %d \
     --ops %d --post-txns %d --faults %s%s%s%s%s"
    t.seed (alg_to_string t.alg) t.rows t.workers t.txns_per_worker
    t.ops_per_txn t.post_crash_txns
    (faults_to_string t.faults)
    (if t.unique then " --unique" else "")
    (if sabotage then " --sabotage" else "")
    (if sabotage_race then " --sabotage-race" else "")
    (if sanitize then " --sanitize" else "")
