open Oib_util
open Log_record

(* --- primitive writers --- *)

let w_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let w_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let w_str buf s =
  w_i64 buf (String.length s);
  Buffer.add_string buf s

let w_bool buf b = w_u8 buf (if b then 1 else 0)

let w_rid buf (r : Rid.t) =
  w_i64 buf r.page;
  w_i64 buf r.slot

let w_key buf (k : Ikey.t) =
  w_str buf k.kv;
  w_rid buf k.rid

let w_record buf (r : Record.t) =
  w_i64 buf (Array.length r.cols);
  Array.iter (w_str buf) r.cols

let w_state buf = function
  | Absent -> w_u8 buf 0
  | Present -> w_u8 buf 1
  | Pseudo_deleted -> w_u8 buf 2

let w_heap_op buf = function
  | Heap_insert { rid; record } ->
    w_u8 buf 1;
    w_rid buf rid;
    w_record buf record
  | Heap_delete { rid; record } ->
    w_u8 buf 2;
    w_rid buf rid;
    w_record buf record
  | Heap_update { rid; old_record; new_record } ->
    w_u8 buf 3;
    w_rid buf rid;
    w_record buf old_record;
    w_record buf new_record

let rec w_body buf = function
  | Begin -> w_u8 buf 1
  | Commit -> w_u8 buf 2
  | Abort -> w_u8 buf 3
  | End -> w_u8 buf 4
  | Heap { page; visible_indexes; sidefiled; op } ->
    w_u8 buf 5;
    w_i64 buf page;
    w_i64 buf visible_indexes;
    w_i64 buf (List.length sidefiled);
    List.iter (w_i64 buf) sidefiled;
    w_heap_op buf op
  | Index_key { redoable; op } ->
    w_u8 buf 6;
    w_bool buf redoable;
    w_i64 buf op.index;
    w_key buf op.key;
    w_state buf op.before;
    w_state buf op.after
  | Index_bulk_insert { index; keys } ->
    w_u8 buf 7;
    w_i64 buf index;
    w_i64 buf (List.length keys);
    List.iter (w_key buf) keys
  | Sidefile_append { sidefile; insert; key } ->
    w_u8 buf 8;
    w_i64 buf sidefile;
    w_bool buf insert;
    w_key buf key
  | Clr { action; undo_next } ->
    w_u8 buf 9;
    w_i64 buf (Lsn.to_int undo_next);
    w_body buf action
  | Build_start { index; table } ->
    w_u8 buf 10;
    w_i64 buf index;
    w_i64 buf table
  | Build_done { index } ->
    w_u8 buf 11;
    w_i64 buf index
  | Heap_extend { table; page } ->
    w_u8 buf 12;
    w_i64 buf table;
    w_i64 buf page
  | Create_table { table } ->
    w_u8 buf 13;
    w_i64 buf table
  | Create_index { index; table; key_cols; uniq } ->
    w_u8 buf 14;
    w_i64 buf index;
    w_i64 buf table;
    w_bool buf uniq;
    w_i64 buf (List.length key_cols);
    List.iter (w_i64 buf) key_cols
  | Drop_index { index } ->
    w_u8 buf 15;
    w_i64 buf index
  | Index_state { index; state } ->
    w_u8 buf 16;
    w_i64 buf index;
    w_i64 buf state
  | Range_commit { index; lo; hi } ->
    w_u8 buf 17;
    w_i64 buf index;
    w_i64 buf lo;
    w_i64 buf hi

let encode (t : Log_record.t) =
  let payload = Buffer.create 64 in
  w_i64 payload (Lsn.to_int t.lsn);
  (match t.txn with
  | None -> w_u8 payload 0
  | Some id ->
    w_u8 payload 1;
    w_i64 payload id);
  w_i64 payload (Lsn.to_int t.prev_lsn);
  w_body payload t.body;
  let frame = Buffer.create (Buffer.length payload + 8) in
  w_i64 frame (Buffer.length payload);
  Buffer.add_buffer frame payload;
  Buffer.contents frame

(* --- primitive readers --- *)

type cursor = { s : string; mutable pos : int }

let fail msg = failwith ("Log_codec: corrupt log: " ^ msg)

let r_u8 c =
  if c.pos >= String.length c.s then fail "eof in u8";
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_i64 c =
  if c.pos + 8 > String.length c.s then fail "eof in i64";
  let v = Int64.to_int (String.get_int64_le c.s c.pos) in
  c.pos <- c.pos + 8;
  v

let r_str c =
  let n = r_i64 c in
  if n < 0 || c.pos + n > String.length c.s then fail "bad string length";
  let v = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  v

let r_bool c = r_u8 c <> 0

let r_rid c =
  let page = r_i64 c in
  let slot = r_i64 c in
  Rid.make ~page ~slot

let r_key c =
  let kv = r_str c in
  let rid = r_rid c in
  Ikey.make kv rid

let r_record c =
  let n = r_i64 c in
  if n < 0 || n > 1_000_000 then fail "bad record arity";
  Record.make (Array.init n (fun _ -> r_str c))

let r_state c =
  match r_u8 c with
  | 0 -> Absent
  | 1 -> Present
  | 2 -> Pseudo_deleted
  | n -> fail ("bad key state " ^ string_of_int n)

let r_heap_op c =
  match r_u8 c with
  | 1 ->
    let rid = r_rid c in
    let record = r_record c in
    Heap_insert { rid; record }
  | 2 ->
    let rid = r_rid c in
    let record = r_record c in
    Heap_delete { rid; record }
  | 3 ->
    let rid = r_rid c in
    let old_record = r_record c in
    let new_record = r_record c in
    Heap_update { rid; old_record; new_record }
  | n -> fail ("bad heap op tag " ^ string_of_int n)

let rec r_body c =
  match r_u8 c with
  | 1 -> Begin
  | 2 -> Commit
  | 3 -> Abort
  | 4 -> End
  | 5 ->
    let page = r_i64 c in
    let visible_indexes = r_i64 c in
    let nsf = r_i64 c in
    if nsf < 0 || nsf > 1000 then fail "bad sidefiled arity";
    let sidefiled = List.init nsf (fun _ -> r_i64 c) in
    let op = r_heap_op c in
    Heap { page; visible_indexes; sidefiled; op }
  | 6 ->
    let redoable = r_bool c in
    let index = r_i64 c in
    let key = r_key c in
    let before = r_state c in
    let after = r_state c in
    Index_key { redoable; op = { index; key; before; after } }
  | 7 ->
    let index = r_i64 c in
    let n = r_i64 c in
    if n < 0 || n > 10_000_000 then fail "bad bulk arity";
    let keys = List.init n (fun _ -> r_key c) in
    Index_bulk_insert { index; keys }
  | 8 ->
    let sidefile = r_i64 c in
    let insert = r_bool c in
    let key = r_key c in
    Sidefile_append { sidefile; insert; key }
  | 9 ->
    let undo_next = Lsn.of_int (r_i64 c) in
    let action = r_body c in
    Clr { action; undo_next }
  | 10 ->
    let index = r_i64 c in
    let table = r_i64 c in
    Build_start { index; table }
  | 11 ->
    let index = r_i64 c in
    Build_done { index }
  | 12 ->
    let table = r_i64 c in
    let page = r_i64 c in
    Heap_extend { table; page }
  | 13 ->
    let table = r_i64 c in
    Create_table { table }
  | 14 ->
    let index = r_i64 c in
    let table = r_i64 c in
    let uniq = r_bool c in
    let n = r_i64 c in
    if n < 0 || n > 1000 then fail "bad key_cols arity";
    let key_cols = List.init n (fun _ -> r_i64 c) in
    Create_index { index; table; key_cols; uniq }
  | 15 ->
    let index = r_i64 c in
    Drop_index { index }
  | 16 ->
    let index = r_i64 c in
    let state = r_i64 c in
    Index_state { index; state }
  | 17 ->
    let index = r_i64 c in
    let lo = r_i64 c in
    let hi = r_i64 c in
    Range_commit { index; lo; hi }
  | n -> fail ("bad body tag " ^ string_of_int n)

let decode s ~pos =
  let len = String.length s in
  if pos >= len then None
  else if pos + 8 > len then None
  else begin
    let frame_len = Int64.to_int (String.get_int64_le s pos) in
    if frame_len < 0 then fail "negative frame length";
    if pos + 8 + frame_len > len then None
    else begin
      let c = { s; pos = pos + 8 } in
      let lsn = Lsn.of_int (r_i64 c) in
      let txn = match r_u8 c with 0 -> None | _ -> Some (r_i64 c) in
      let prev_lsn = Lsn.of_int (r_i64 c) in
      let body = r_body c in
      if c.pos <> pos + 8 + frame_len then fail "frame length mismatch";
      Some ({ lsn; txn; prev_lsn; body }, c.pos)
    end
  end

let decode_stream s =
  let rec go pos acc =
    match decode s ~pos with
    | None -> List.rev acc
    | Some (r, next) -> go next (r :: acc)
  in
  go 0 []
