(** The write-ahead log.

    Appends are buffered in volatile memory; [flush] makes a prefix durable
    (serialized bytes). A simulated crash discards the volatile tail — the
    survivor log is re-decoded from the durable bytes, exactly as a real
    restart reads the log from disk. Transactions force the log at commit;
    the buffer pool forces it up to a page's page_LSN before writing that
    page (the write-ahead rule). *)

type t

val create : ?trace:Oib_obs.Trace.t -> Oib_sim.Metrics.t -> t
(** [trace] (default {!Oib_obs.Trace.null}) receives [log.append] /
    [log.flush] events; it survives {!crash}. *)

val append :
  t -> txn:Log_record.txn_id option -> prev_lsn:Lsn.t -> Log_record.body ->
  Lsn.t
(** Assign the next LSN, buffer the record, return its LSN. *)

val flush : t -> upto:Lsn.t -> unit
(** Make all records with LSN <= [upto] durable. No-op if already done. *)

val flush_all : t -> unit

val flushed_lsn : t -> Lsn.t
val last_lsn : t -> Lsn.t

val crash : t -> t
(** Volatile tail is lost; the result contains only what was flushed. *)

val durable_records : t -> Log_record.t list
(** Decode the durable log, in LSN order (what restart recovery sees). *)

val all_records : t -> Log_record.t list
(** Durable + volatile records — for tests and debugging only. *)

val record_at : t -> Lsn.t -> Log_record.t option
(** Random access for rollback's undo-chain walk. *)

val durable_bytes : t -> int

val unflushed_bytes : t -> int
(** Encoded bytes sitting in the volatile tail — the flush backlog the
    [wal.backlog] health signal watches. *)

val truncate : t -> below:Lsn.t -> int
(** Discard durable records with LSN < [below] (paper footnote 8: log can
    be discarded once image copies make it unnecessary for restart, undo
    and media recovery — the *caller* must have established that). Returns
    the bytes reclaimed. Volatile records are never truncated. *)

val start_lsn : t -> Lsn.t
(** LSN of the earliest retained record ([Lsn.nil] when never truncated). *)
