(** Typed log records.

    The paper distinguishes undo-redo, redo-only and undo-only records
    (§1.1 "Recovery"). Here that distinction is captured per record kind:

    - heap operations and ordinary index key operations are undo-redo;
    - a transaction's index insert that found the key already present
      (inserted first by the index builder, NSF §2.1.1) is undo-only
      ([Index_key] with [redoable = false]): on rollback the key must be
      removed even though this transaction never physically inserted it;
    - side-file appends are redo-only (§3.1 assumptions);
    - compensation records (CLRs) written during rollback are redo-only and
      carry [undo_next], the next record of the transaction left to undo.

    Index key operations are logged as absolute state transitions
    ([before] -> [after] of the key's state), and only *performed* actions
    are logged (a rejected duplicate insert writes nothing, NSF §2.2.3), so
    replaying the suffix of the log in LSN order — setting each key to its
    [after] state — is idempotent logical redo. *)

open Oib_util

type txn_id = int
type index_id = int

type key_state = Absent | Present | Pseudo_deleted

type heap_op =
  | Heap_insert of { rid : Rid.t; record : Record.t }
  | Heap_delete of { rid : Rid.t; record : Record.t }
  | Heap_update of { rid : Rid.t; old_record : Record.t; new_record : Record.t }

type index_key_op = {
  index : index_id;
  key : Ikey.t;
  before : key_state;
  after : key_state;
}

type body =
  | Begin
  | Commit
  | Abort
  | End
  | Heap of {
      page : int;
      visible_indexes : int;
      sidefiled : index_id list;
      op : heap_op;
    }
      (** [visible_indexes] is the count of indexes visible to this
          transaction at update time — the extra field SF needs to detect,
          during rollback, that an index became visible after the forward
          action (paper §3.1.2). [sidefiled] lists the indexes whose key
          maintenance was routed to a side-file rather than applied
          directly; the paper infers this from the count alone, which is
          ambiguous once several builds overlap a transaction — we log it
          explicitly (same information under the paper's assumptions). *)
  | Index_key of { redoable : bool; op : index_key_op }
  | Index_bulk_insert of { index : index_id; keys : Ikey.t list }
      (** NSF's index builder logs one record for all the keys it placed on
          one leaf page (§2.2.3 "the log record can contain multiple
          keys"). *)
  | Sidefile_append of { sidefile : index_id; insert : bool; key : Ikey.t }
  | Clr of { action : body; undo_next : Lsn.t }
      (** Compensation: [action] is the change applied by undo (itself a
          [Heap], [Index_key] or [Sidefile_append] body); redo-only. *)
  | Build_start of { index : index_id; table : int }
  | Build_done of { index : index_id }
  | Heap_extend of { table : int; page : int }
      (** redo-only: a data file grew by one page — media recovery must be
          able to rebuild the file's page inventory from the log alone *)
  | Create_table of { table : int }
  | Create_index of {
      index : index_id;
      table : int;
      key_cols : int list;
      uniq : bool;
    }
  | Drop_index of { index : index_id }
      (** DDL records (redo-only): catalog changes are recoverable from the
          log so media recovery can recreate descriptors born after the
          last image copy *)
  | Index_state of { index : index_id; state : int }
      (** Index lifecycle transition (Disabled=0 / Write_only=1 /
          Readable=2, see [Oib_core.Catalog.index_state]). Logged and
          flushed {e before} the catalog's durable entry is rewritten, so
          after a crash the replayed log suffix always lands the index in
          the last logged state. Not redone by the heap/index passes —
          the engine applies the final logged state per index after its
          catalog reopen. *)
  | Range_commit of { index : index_id; lo : int; hi : int }
      (** The index builder durably sealed scanned data pages [lo..hi]
          (inclusive) for [index]'s build: their keys are in checkpointed
          sort runs, so a resumed build must never rescan them. Written at
          each batched scan chunk boundary, after the sort checkpoint.
          Informational for recovery (coverage itself lives in the durable
          kv, snapshot-consistent with the sort checkpoint); consumed by
          the trace/DST scan-accounting oracles. *)

type t = {
  lsn : Lsn.t;
  txn : txn_id option;  (** [None] for records written by the index builder
                            outside any transaction *)
  prev_lsn : Lsn.t;  (** previous record of the same transaction (undo chain);
                         [Lsn.nil] for the first *)
  body : body;
}

val is_redoable : body -> bool
val is_undoable : body -> bool

val encoded_size : t -> int
(** Size of the binary encoding, charged to the log-bytes metric. *)

val pp_key_state : Format.formatter -> key_state -> unit
val pp_body : Format.formatter -> body -> unit
val pp : Format.formatter -> t -> unit
