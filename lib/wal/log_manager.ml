module Trace = Oib_obs.Trace
module Event = Oib_obs.Event

type t = {
  metrics : Oib_sim.Metrics.t;
  trace : Trace.t;
  mutable next_lsn : Lsn.t;
  mutable durable : Buffer.t;
  mutable durable_lsn : Lsn.t;
  mutable start : Lsn.t;
  mutable volatile : (Log_record.t * string) list; (* newest first *)
  mutable volatile_bytes : int; (* encoded bytes awaiting flush *)
  by_lsn : (int, Log_record.t) Hashtbl.t;
}

let create ?(trace = Trace.null) metrics =
  {
    metrics;
    trace;
    next_lsn = Lsn.next Lsn.nil;
    durable = Buffer.create 4096;
    durable_lsn = Lsn.nil;
    start = Lsn.nil;
    volatile = [];
    volatile_bytes = 0;
    by_lsn = Hashtbl.create 1024;
  }

(* A short tag for trace events: which family of record was appended. *)
let kind_of_body : Log_record.body -> string = function
  | Begin -> "begin"
  | Commit -> "commit"
  | Abort -> "abort"
  | End -> "end"
  | Heap _ -> "heap"
  | Index_key _ -> "index_key"
  | Index_bulk_insert _ -> "index_bulk_insert"
  | Sidefile_append _ -> "sidefile_append"
  | Clr _ -> "clr"
  | Build_start _ -> "build_start"
  | Build_done _ -> "build_done"
  | Heap_extend _ -> "heap_extend"
  | Create_table _ -> "create_table"
  | Create_index _ -> "create_index"
  | Drop_index _ -> "drop_index"
  | Index_state _ -> "index_state"
  | Range_commit _ -> "range_commit"

let append t ~txn ~prev_lsn body =
  let lsn = t.next_lsn in
  t.next_lsn <- Lsn.next lsn;
  let record = { Log_record.lsn; txn; prev_lsn; body } in
  let bytes = Log_codec.encode record in
  t.volatile <- (record, bytes) :: t.volatile;
  t.volatile_bytes <- t.volatile_bytes + String.length bytes;
  Hashtbl.replace t.by_lsn (Lsn.to_int lsn) record;
  t.metrics.log_records <- t.metrics.log_records + 1;
  t.metrics.log_bytes <- t.metrics.log_bytes + String.length bytes;
  Oib_sim.Metrics.charge t.metrics (fun (r : Oib_obs.Resource.t) ->
      r.log_records <- r.log_records + 1;
      r.log_bytes <- r.log_bytes + String.length bytes);
  if Trace.tracing t.trace then
    Trace.emit t.trace
      (Event.Log_append
         { lsn = Lsn.to_int lsn; kind = kind_of_body body;
           bytes = String.length bytes });
  if Trace.probing t.trace then
    Trace.probe_emit t.trace
      (Oib_obs.Probe.Log_append
         { txn = Option.value txn ~default:(-1); kind = kind_of_body body });
  lsn

let flush t ~upto =
  if Lsn.( > ) upto t.durable_lsn then begin
    t.metrics.log_flushes <- t.metrics.log_flushes + 1;
    Oib_sim.Metrics.charge t.metrics (fun (r : Oib_obs.Resource.t) ->
        r.log_flushes <- r.log_flushes + 1);
    let span =
      Trace.span_begin t.trace ~cat:"logflush"
        ~name:("flush:" ^ string_of_int (Lsn.to_int upto))
    in
    if Trace.tracing t.trace then
      Trace.emit t.trace (Event.Log_flush { upto = Lsn.to_int upto });
    (* volatile is newest-first; move the prefix with lsn <= upto to the
       durable buffer, oldest first. *)
    let to_keep, to_flush =
      List.partition
        (fun ((r : Log_record.t), _) -> Lsn.( > ) r.lsn upto)
        t.volatile
    in
    List.iter
      (fun ((r : Log_record.t), bytes) ->
        Buffer.add_string t.durable bytes;
        t.volatile_bytes <- t.volatile_bytes - String.length bytes;
        if Lsn.( > ) r.lsn t.durable_lsn then t.durable_lsn <- r.lsn)
      (List.rev to_flush);
    t.volatile <- to_keep;
    Trace.span_end t.trace span
  end

let flush_all t =
  match t.volatile with
  | [] -> ()
  | ((newest, _) :: _) -> flush t ~upto:newest.Log_record.lsn

let flushed_lsn t = t.durable_lsn

let last_lsn t = Lsn.of_int (Lsn.to_int t.next_lsn - 1)

let durable_records t = Log_codec.decode_stream (Buffer.contents t.durable)

let crash t =
  let survivor =
    {
      metrics = t.metrics;
      trace = t.trace;
      next_lsn = Lsn.next t.durable_lsn;
      durable = Buffer.create (Buffer.length t.durable);
      durable_lsn = t.durable_lsn;
      start = t.start;
      volatile = [];
      volatile_bytes = 0;
      by_lsn = Hashtbl.create 1024;
    }
  in
  Buffer.add_buffer survivor.durable t.durable;
  List.iter
    (fun (r : Log_record.t) ->
      Hashtbl.replace survivor.by_lsn (Lsn.to_int r.lsn) r)
    (durable_records survivor);
  survivor

let all_records t =
  durable_records t @ List.rev_map (fun (r, _) -> r) t.volatile

let record_at t lsn = Hashtbl.find_opt t.by_lsn (Lsn.to_int lsn)

let durable_bytes t = Buffer.length t.durable

let unflushed_bytes t = t.volatile_bytes

let truncate t ~below =
  let before = Buffer.length t.durable in
  let keep =
    List.filter
      (fun (r : Log_record.t) -> Lsn.( >= ) r.lsn below)
      (durable_records t)
  in
  let fresh = Buffer.create (max 4096 before) in
  List.iter
    (fun (r : Log_record.t) ->
      Buffer.add_string fresh (Log_codec.encode r);
      Hashtbl.remove t.by_lsn (Lsn.to_int r.lsn))
    keep;
  (* re-register kept records; drop everything below the new start *)
  Hashtbl.iter
    (fun lsn _ -> if lsn < Lsn.to_int below then Hashtbl.remove t.by_lsn lsn)
    (Hashtbl.copy t.by_lsn);
  List.iter
    (fun (r : Log_record.t) -> Hashtbl.replace t.by_lsn (Lsn.to_int r.lsn) r)
    keep;
  t.durable <- fresh;
  if Lsn.( > ) below t.start then t.start <- below;
  before - Buffer.length fresh

let start_lsn t = t.start
