open Oib_util

type txn_id = int
type index_id = int

type key_state = Absent | Present | Pseudo_deleted

type heap_op =
  | Heap_insert of { rid : Rid.t; record : Record.t }
  | Heap_delete of { rid : Rid.t; record : Record.t }
  | Heap_update of { rid : Rid.t; old_record : Record.t; new_record : Record.t }

type index_key_op = {
  index : index_id;
  key : Ikey.t;
  before : key_state;
  after : key_state;
}

type body =
  | Begin
  | Commit
  | Abort
  | End
  | Heap of {
      page : int;
      visible_indexes : int;
      sidefiled : index_id list;
      op : heap_op;
    }
  | Index_key of { redoable : bool; op : index_key_op }
  | Index_bulk_insert of { index : index_id; keys : Ikey.t list }
  | Sidefile_append of { sidefile : index_id; insert : bool; key : Ikey.t }
  | Clr of { action : body; undo_next : Lsn.t }
  | Build_start of { index : index_id; table : int }
  | Build_done of { index : index_id }
  | Heap_extend of { table : int; page : int }
  | Create_table of { table : int }
  | Create_index of {
      index : index_id;
      table : int;
      key_cols : int list;
      uniq : bool;
    }
  | Drop_index of { index : index_id }
  | Index_state of { index : index_id; state : int }
  | Range_commit of { index : index_id; lo : int; hi : int }

type t = { lsn : Lsn.t; txn : txn_id option; prev_lsn : Lsn.t; body : body }

let is_redoable = function
  | Index_key { redoable; _ } -> redoable
  | Begin | Commit | Abort | End | Build_start _ | Build_done _
  | Index_state _ | Range_commit _ ->
    false
  | Heap _ | Index_bulk_insert _ | Sidefile_append _ | Clr _ | Heap_extend _
  | Create_table _ | Create_index _ | Drop_index _ ->
    true

let is_undoable = function
  | Heap _ | Index_key _ | Index_bulk_insert _ -> true
  | Begin | Commit | Abort | End | Sidefile_append _ | Clr _ | Build_start _
  | Build_done _ | Heap_extend _ | Create_table _ | Create_index _
  | Drop_index _ | Index_state _ | Range_commit _ ->
    false

let heap_op_size = function
  | Heap_insert { record; _ } | Heap_delete { record; _ } ->
    16 + Record.encoded_size record
  | Heap_update { old_record; new_record; _ } ->
    16 + Record.encoded_size old_record + Record.encoded_size new_record

let rec body_size = function
  | Begin | Commit | Abort | End -> 1
  | Heap { op; sidefiled; _ } -> 9 + (8 * List.length sidefiled) + heap_op_size op
  | Index_key { op; _ } -> 12 + Ikey.encoded_size op.key
  | Index_bulk_insert { keys; _ } ->
    List.fold_left (fun acc k -> acc + Ikey.encoded_size k) 9 keys
  | Sidefile_append { key; _ } -> 10 + Ikey.encoded_size key
  | Clr { action; _ } -> 9 + body_size action
  | Build_start _ -> 9
  | Build_done _ -> 5
  | Heap_extend _ -> 9
  | Create_table _ -> 5
  | Create_index { key_cols; _ } -> 14 + (8 * List.length key_cols)
  | Drop_index _ -> 5
  | Index_state _ -> 17
  | Range_commit _ -> 25

(* lsn + txn + prev_lsn header = 20 bytes *)
let encoded_size t = 20 + body_size t.body

let pp_key_state ppf = function
  | Absent -> Format.pp_print_string ppf "absent"
  | Present -> Format.pp_print_string ppf "present"
  | Pseudo_deleted -> Format.pp_print_string ppf "pseudo-del"

let pp_heap_op ppf = function
  | Heap_insert { rid; record } ->
    Format.fprintf ppf "ins %a %a" Rid.pp rid Record.pp record
  | Heap_delete { rid; record } ->
    Format.fprintf ppf "del %a %a" Rid.pp rid Record.pp record
  | Heap_update { rid; old_record; new_record } ->
    Format.fprintf ppf "upd %a %a -> %a" Rid.pp rid Record.pp old_record
      Record.pp new_record

let rec pp_body ppf = function
  | Begin -> Format.pp_print_string ppf "BEGIN"
  | Commit -> Format.pp_print_string ppf "COMMIT"
  | Abort -> Format.pp_print_string ppf "ABORT"
  | End -> Format.pp_print_string ppf "END"
  | Heap { page; visible_indexes; sidefiled; op } ->
    Format.fprintf ppf "HEAP p%d vis=%d sf=[%s] %a" page visible_indexes
      (String.concat "," (List.map string_of_int sidefiled))
      pp_heap_op op
  | Index_key { redoable; op } ->
    Format.fprintf ppf "IXKEY%s i%d %a %a->%a"
      (if redoable then "" else "(undo-only)")
      op.index Ikey.pp op.key pp_key_state op.before pp_key_state op.after
  | Index_bulk_insert { index; keys } ->
    Format.fprintf ppf "IXBULK i%d %d keys" index (List.length keys)
  | Sidefile_append { sidefile; insert; key } ->
    Format.fprintf ppf "SF i%d %s %a" sidefile
      (if insert then "ins" else "del")
      Ikey.pp key
  | Clr { action; undo_next } ->
    Format.fprintf ppf "CLR[%a] undo_next=%a" pp_body action Lsn.pp undo_next
  | Build_start { index; table } ->
    Format.fprintf ppf "BUILD_START i%d t%d" index table
  | Build_done { index } -> Format.fprintf ppf "BUILD_DONE i%d" index
  | Heap_extend { table; page } ->
    Format.fprintf ppf "HEAP_EXTEND t%d p%d" table page
  | Create_table { table } -> Format.fprintf ppf "CREATE_TABLE t%d" table
  | Create_index { index; table; key_cols; uniq } ->
    Format.fprintf ppf "CREATE_INDEX i%d t%d cols=[%s]%s" index table
      (String.concat "," (List.map string_of_int key_cols))
      (if uniq then " unique" else "")
  | Drop_index { index } -> Format.fprintf ppf "DROP_INDEX i%d" index
  | Index_state { index; state } ->
    Format.fprintf ppf "INDEX_STATE i%d %s" index
      (match state with
      | 0 -> "disabled"
      | 1 -> "write-only"
      | 2 -> "readable"
      | n -> "state" ^ string_of_int n)
  | Range_commit { index; lo; hi } ->
    Format.fprintf ppf "RANGE_COMMIT i%d [%d,%d]" index lo hi

let pp ppf t =
  Format.fprintf ppf "%a txn=%s prev=%a %a" Lsn.pp t.lsn
    (match t.txn with Some x -> string_of_int x | None -> "-")
    Lsn.pp t.prev_lsn pp_body t.body
