open Oib_storage

type Durable_kv.value +=
  | Merge_ckpt of {
      inputs : string list;
      counters : int array; (* keys output per input stream *)
      output : string;
      output_len : int;
    }

exception Injected_crash

let merge ?stop_after ?account kv store ~ckpt_id ~inputs ~output ~ckpt_every =
  (* establish positions: fresh merge or resumption from a checkpoint *)
  let counters, out =
    match Durable_kv.get kv ckpt_id with
    | Some (Merge_ckpt c) when c.output = output && c.inputs = inputs ->
      let out = Run_store.find_run store output in
      Run_store.truncate out c.output_len;
      (Array.copy c.counters, out)
    | _ ->
      let out =
        match Run_store.find_run store output with
        | r ->
          (* stale partial output from a crash before the first checkpoint *)
          Run_store.truncate r 0;
          r
        | exception Not_found -> Run_store.create_run store ~name:output
      in
      (Array.make (List.length inputs) 0, out)
  in
  let runs = Array.of_list (List.map (Run_store.find_run store) inputs) in
  (* pull positions: resume reads each stream from its counter *)
  let pulled = Array.copy counters in
  let streams =
    Array.mapi
      (fun i run () ->
        if pulled.(i) < Run_store.length run then begin
          let k = Run_store.get run pulled.(i) in
          pulled.(i) <- pulled.(i) + 1;
          Some k
        end
        else None)
      runs
  in
  let tree = Loser_tree.make ?account ~streams () in
  let since_ckpt = ref 0 in
  let take_checkpoint () =
    Run_store.force out;
    Durable_kv.set kv ckpt_id
      (Merge_ckpt
         {
           inputs;
           counters = Array.copy counters;
           output;
           output_len = Run_store.length out;
         })
  in
  let emitted = ref 0 in
  let rec loop () =
    match Loser_tree.pop tree with
    | None -> ()
    | Some (key, stream) ->
      (match stop_after with
      | Some n when !emitted >= n -> raise Injected_crash
      | _ -> ());
      Run_store.append out key;
      counters.(stream) <- counters.(stream) + 1;
      incr emitted;
      incr since_ckpt;
      if !since_ckpt >= ckpt_every then begin
        take_checkpoint ();
        since_ckpt := 0
      end;
      loop ()
  in
  loop ();
  Run_store.force out;
  Durable_kv.remove kv ckpt_id;
  out

(* A group merge is "already done" (completed before a crash) when its
   output run exists with forced content and its in-pass checkpoint was
   cleared at completion. An empty or mid-merge output re-merges — the
   operation is idempotent. *)
let group_merge ?account kv store ~gid ~inputs ~output ~ckpt_every =
  let completed_before_crash =
    Durable_kv.get kv gid = None
    &&
    match Run_store.find_run store output with
    | r -> Run_store.forced_length r > 0
    | exception Not_found -> false
  in
  if completed_before_crash then Run_store.find_run store output
  else merge ?account kv store ~ckpt_id:gid ~inputs ~output ~ckpt_every

let merge_all ?account kv store ~ckpt_id ~inputs ~output ~fan_in ~ckpt_every =
  if fan_in < 2 then invalid_arg "Merge_phase.merge_all: fan_in < 2";
  let rec group acc cur cnt = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if cnt = fan_in then group (List.rev cur :: acc) [ x ] 1 rest
      else group acc (x :: cur) (cnt + 1) rest
  in
  let rec passes pass inputs =
    match inputs with
    | [] -> invalid_arg "Merge_phase.merge_all: no inputs"
    | _ when List.length inputs <= fan_in ->
      group_merge ?account kv store
        ~gid:(Printf.sprintf "%s/p%d/final" ckpt_id pass)
        ~inputs ~output ~ckpt_every
    | _ ->
      let groups = group [] [] 0 inputs in
      let outputs =
        List.mapi
          (fun gi grp ->
            match grp with
            | [ single ] -> single (* odd remainder passes through *)
            | _ ->
              let oname = Printf.sprintf "%s/p%d/out-%03d" ckpt_id pass gi in
              Run_store.name
                (group_merge ?account kv store
                   ~gid:(Printf.sprintf "%s/p%d/g%d" ckpt_id pass gi)
                   ~inputs:grp ~output:oname ~ckpt_every))
          groups
      in
      passes (pass + 1) outputs
  in
  passes 0 inputs
