(** Restartable sort phase (paper §5.1).

    Keys arrive pipelined from the index builder's data scan, page by page,
    and flow through a replacement-selection tournament into sorted runs in
    a {!Run_store}. A checkpoint drains the tournament, forces the runs,
    and records durably: the completed run names, the current run and its
    length, the scan position up to which keys have been extracted and
    sorted, and the highest key output to the current run.

    After a crash, {!resume} rebuilds the sorter from the checkpoint: runs
    that did not exist then are discarded, the current run is repositioned
    to the recorded end, and — per the paper — subsequently produced keys
    continue in the same run only if they sort above the recorded highest
    key (the tag rule of replacement selection enforces this for free). *)

open Oib_util
open Oib_storage

type t

val start :
  ?account:Oib_obs.Resource.t ->
  Durable_kv.t -> Run_store.t -> ckpt_id:string -> memory_keys:int -> t
(** [memory_keys] is the tournament capacity (run length ~ 2x this for
    random input). Key comparisons and run spills are charged to
    [account] when given. *)

val feed_page : t -> scan_pos:int -> Ikey.t list -> unit
(** Feed the keys extracted from one data page; [scan_pos] identifies that
    page. Pages must be fed in ascending [scan_pos] order. *)

val checkpoint : t -> unit

val finish : t -> string list
(** Drain, force, checkpoint; returns all run names oldest-first. The sort
    phase is complete. *)

val scan_pos : t -> int
(** Last page position fully fed (−1 initially); after {!resume} this is
    where the data scan must be repositioned. *)

val run_count : t -> int

val resume :
  ?account:Oib_obs.Resource.t ->
  Durable_kv.t -> Run_store.t -> ckpt_id:string -> memory_keys:int ->
  t option
(** Rebuild from the last checkpoint; [None] if no checkpoint exists. *)

val checkpointed_scan_pos : Durable_kv.t -> ckpt_id:string -> int option
(** Peek at the checkpointed scan position without rebuilding the sorter —
    restart uses it to restore the SF builder's Current-RID before any
    transaction runs. *)
