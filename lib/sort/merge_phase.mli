(** Restartable merge phase (paper §5.2).

    Merges N sorted runs through a loser tree into an output run. A vector
    of per-input counters tracks, for each input stream, how many of its
    keys have been *output* (not merely pulled into the tree). A checkpoint
    forces the output run and records the counter vector, the input names,
    and the output length; resuming truncates the output to the recorded
    length and repositions every input at its counter — no key is lost, no
    key is emitted twice.

    [merge_all] runs multiple passes when the fan-in is bounded; each pass
    has its own checkpoint identity, so a crash in pass k resumes pass k. *)

open Oib_storage

exception Injected_crash

val merge :
  ?stop_after:int ->
  ?account:Oib_obs.Resource.t ->
  Durable_kv.t -> Run_store.t -> ckpt_id:string -> inputs:string list ->
  output:string -> ckpt_every:int -> Run_store.run
(** Single merge pass; checkpoints every [ckpt_every] output keys. If a
    checkpoint for [ckpt_id] exists (crash mid-merge), continues from it.
    The output run is forced and the checkpoint cleared on completion.
    [stop_after] raises {!Injected_crash} after that many keys have been
    output — the failure-injection hook used by tests and the restart
    benchmarks. *)

val merge_all :
  ?account:Oib_obs.Resource.t ->
  Durable_kv.t -> Run_store.t -> ckpt_id:string -> inputs:string list ->
  output:string -> fan_in:int -> ckpt_every:int -> Run_store.run
(** Repeated passes with bounded fan-in until a single run remains, renamed
    /copied to [output]. Restartable at pass granularity plus in-pass
    checkpoints. *)
