(** Tournament (loser) tree merger.

    The merge phase of the sort (paper §5.2): N leaf nodes, each fed from
    exactly one input stream; each pop reports which stream the winner came
    from, so the caller can maintain the per-stream counter vector the
    restartable merge checkpoints. Ties between streams break toward the
    lower stream index, making merges of equal keys stable. *)

open Oib_util

type t

val make :
  ?account:Oib_obs.Resource.t ->
  streams:(unit -> Ikey.t option) array -> unit -> t
(** [make ~streams] builds the tree; [streams.(i) ()] yields the next key
    of stream [i] ([None] = exhausted). Streams are pulled lazily: once to
    prime each leaf, then once per key contributed. Key comparisons are
    charged to [account] as [sort_compares] when given. *)

val pop : t -> (Ikey.t * int) option
(** Smallest remaining key and the index of the stream it came from. *)

val drain : t -> (Ikey.t * int) list
