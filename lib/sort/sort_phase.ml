open Oib_util
open Oib_storage

(* binary min-heap over (run tag, key): tag-major so keys destined for the
   next run sink below everything in the current run *)
(* Charge one key comparison to the owning build's account, if any. *)
let charge_compare account =
  match account with
  | Some (r : Oib_obs.Resource.t) -> r.sort_compares <- r.sort_compares + 1
  | None -> ()

module Heap = struct
  type t = {
    mutable a : (int * Ikey.t) array;
    mutable n : int;
    account : Oib_obs.Resource.t option;
  }

  let dummy = (0, Ikey.make "" Rid.minus_infinity)

  let create ?account () = { a = Array.make 64 dummy; n = 0; account }

  let less h (t1, k1) (t2, k2) =
    t1 < t2
    || t1 = t2
       && begin
            charge_compare h.account;
            Ikey.compare k1 k2 < 0
          end

  let size h = h.n

  let push h x =
    if h.n = Array.length h.a then begin
      let bigger = Array.make (2 * h.n) dummy in
      Array.blit h.a 0 bigger 0 h.n;
      h.a <- bigger
    end;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.a.(!i) <- x;
    while !i > 0 && less h h.a.(!i) h.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    assert (h.n > 0);
    let top = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.n && less h h.a.(l) h.a.(!smallest) then smallest := l;
      if r < h.n && less h h.a.(r) h.a.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
end

type Durable_kv.value +=
  | Sort_ckpt of {
      completed : string list; (* oldest first *)
      current : string;
      current_len : int;
      scan_pos : int;
      highest_out : Ikey.t option;
      run_counter : int;
    }

type t = {
  kv : Durable_kv.t;
  store : Run_store.t;
  ckpt_id : string;
  memory_keys : int;
  heap : Heap.t;
  mutable cur_tag : int;
  mutable last_emitted : Ikey.t option;
  mutable completed : string list; (* newest first *)
  mutable current : Run_store.run;
  mutable pos : int;
  mutable run_counter : int;
}

let run_name t i = Printf.sprintf "%s/run-%04d" t.ckpt_id i

let start ?account kv store ~ckpt_id ~memory_keys =
  (* a previous life that crashed before its first checkpoint leaves
     orphan (necessarily empty-forced) runs under our name space: clear
     them — had a checkpoint existed, the caller would have resumed *)
  let prefix = ckpt_id ^ "/" in
  List.iter
    (fun n ->
      if
        String.length n >= String.length prefix
        && String.sub n 0 (String.length prefix) = prefix
      then Run_store.delete_run store n)
    (Run_store.run_names store);
  let current =
    Run_store.create_run store ~name:(Printf.sprintf "%s/run-%04d" ckpt_id 0)
  in
  {
    kv;
    store;
    ckpt_id;
    memory_keys;
    heap = Heap.create ?account ();
    cur_tag = 0;
    last_emitted = None;
    completed = [];
    current;
    pos = -1;
    run_counter = 1;
  }

let roll_run t =
  (match t.heap.Heap.account with
  | Some (r : Oib_obs.Resource.t) -> r.run_spills <- r.run_spills + 1
  | None -> ());
  Run_store.force t.current;
  t.completed <- Run_store.name t.current :: t.completed;
  t.current <- Run_store.create_run t.store ~name:(run_name t t.run_counter);
  t.run_counter <- t.run_counter + 1

let emit_min t =
  let tag, key = Heap.pop t.heap in
  if tag > t.cur_tag then begin
    roll_run t;
    t.cur_tag <- tag
  end;
  Run_store.append t.current key;
  t.last_emitted <- Some key

let push_key t key =
  let tag =
    match t.last_emitted with
    | Some e ->
      charge_compare t.heap.Heap.account;
      if Ikey.compare key e < 0 then t.cur_tag + 1 else t.cur_tag
    | None -> t.cur_tag
  in
  Heap.push t.heap (tag, key)

let feed_page t ~scan_pos keys =
  assert (scan_pos > t.pos);
  List.iter
    (fun key ->
      if Heap.size t.heap >= t.memory_keys then emit_min t;
      push_key t key)
    keys;
  t.pos <- scan_pos

let drain t =
  while Heap.size t.heap > 0 do
    emit_min t
  done

let checkpoint t =
  drain t;
  List.iter (fun n -> Run_store.force (Run_store.find_run t.store n)) t.completed;
  Run_store.force t.current;
  Durable_kv.set t.kv t.ckpt_id
    (Sort_ckpt
       {
         completed = List.rev t.completed;
         current = Run_store.name t.current;
         current_len = Run_store.length t.current;
         scan_pos = t.pos;
         highest_out = t.last_emitted;
         run_counter = t.run_counter;
       })

let finish t =
  checkpoint t;
  List.rev (Run_store.name t.current :: t.completed)

let scan_pos t = t.pos

let run_count t = List.length t.completed + 1

let checkpointed_scan_pos kv ~ckpt_id =
  match Durable_kv.get kv ckpt_id with
  | Some (Sort_ckpt c) -> Some c.scan_pos
  | _ -> None

let resume ?account kv store ~ckpt_id ~memory_keys =
  match Durable_kv.get kv ckpt_id with
  | Some (Sort_ckpt c) ->
    (* discard runs born after the checkpoint *)
    let keep = c.current :: c.completed in
    List.iter
      (fun n ->
        if
          String.length n >= String.length ckpt_id
          && String.sub n 0 (String.length ckpt_id) = ckpt_id
          && not (List.mem n keep)
        then Run_store.delete_run store n)
      (Run_store.run_names store);
    let current = Run_store.find_run store c.current in
    Run_store.truncate current c.current_len;
    Some
      {
        kv;
        store;
        ckpt_id;
        memory_keys;
        heap = Heap.create ?account ();
        cur_tag = 0;
        (* the paper's same-stream rule: keys continuing the current run
           must sort above the checkpointed highest output *)
        last_emitted = c.highest_out;
        completed = List.rev c.completed;
        current;
        pos = c.scan_pos;
        run_counter = c.run_counter;
      }
  | _ -> None
