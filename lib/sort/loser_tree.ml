open Oib_util

type t = {
  streams : (unit -> Ikey.t option) array;
  k2 : int; (* leaf slots, power of two *)
  cur : Ikey.t option array; (* current head per leaf slot; None = +inf *)
  losers : int array; (* internal node -> losing leaf slot *)
  mutable win1 : int; (* overall winner slot *)
  account : Oib_obs.Resource.t option; (* merge compares charged here *)
}

(* slot a beats slot b? None is +infinity; ties break to the lower slot,
   which makes merging stable. *)
let beats t a b =
  match (t.cur.(a), t.cur.(b)) with
  | None, _ -> false
  | Some _, None -> true
  | Some x, Some y ->
    (match t.account with
    | Some (r : Oib_obs.Resource.t) -> r.sort_compares <- r.sort_compares + 1
    | None -> ());
    let c = Ikey.compare x y in
    c < 0 || (c = 0 && a < b)

let make ?account ~streams () =
  let k = Array.length streams in
  if k = 0 then invalid_arg "Loser_tree.make: no streams";
  let k2 = ref 1 in
  while !k2 < k do
    k2 := !k2 * 2
  done;
  let k2 = !k2 in
  let cur = Array.make k2 None in
  for i = 0 to k - 1 do
    cur.(i) <- streams.(i) ()
  done;
  let t = { streams; k2; cur; losers = Array.make k2 0; win1 = 0; account } in
  (* build the initial tournament bottom-up *)
  let win = Array.make (2 * k2) 0 in
  for j = 0 to k2 - 1 do
    win.(k2 + j) <- j
  done;
  for i = k2 - 1 downto 1 do
    let a = win.(2 * i) and b = win.((2 * i) + 1) in
    if beats t a b then begin
      win.(i) <- a;
      t.losers.(i) <- b
    end
    else begin
      win.(i) <- b;
      t.losers.(i) <- a
    end
  done;
  t.win1 <- win.(1);
  t

let pop t =
  let w = t.win1 in
  match t.cur.(w) with
  | None -> None
  | Some key ->
    (* refill the winner's leaf and replay its path to the root *)
    t.cur.(w) <- (if w < Array.length t.streams then t.streams.(w) () else None);
    let winner = ref w in
    let i = ref ((t.k2 + w) / 2) in
    while !i >= 1 do
      let l = t.losers.(!i) in
      if beats t l !winner then begin
        t.losers.(!i) <- !winner;
        winner := l
      end;
      i := !i / 2
    done;
    t.win1 <- !winner;
    Some (key, w)

let drain t =
  let rec go acc = match pop t with None -> List.rev acc | Some x -> go (x :: acc) in
  go []
