(** Trace invariant validation (what `oib-trace check` runs).

    Takes the raw decoded event list (all epochs) and returns every
    violation found: unmatched or miscounted waits, acquires without
    waits, IB phase regressions, malformed span nesting, double
    transaction terminations, backward side-file drains, and step-clock
    resets not announced by a crash or an [Epoch] marker. An epoch that
    ends in a [Crash] is allowed to leave waits and spans unresolved. *)

type violation = { v_epoch : int; v_step : int; v_what : string }

val pp_violation : Format.formatter -> violation -> unit

val run : Oib_obs.Event.stamped list -> violation list
(** Empty list = trace is internally consistent. *)
