(** Offline profile aggregation over [Prof_sample] events — the analysis
    side of {!Oib_obs.Profiler}, and the engine behind [oib-prof].

    Frame construction is shared with the online profiler, so {!folded}
    over a JSONL capture is byte-identical to the live engine's tree. *)

type sample = {
  step : int;
  fiber : int;
  fname : string; (* normalized fiber name, e.g. "worker-#" *)
  state : string; (* oncpu | latch | lock | io | logflush | sched *)
  path : string; (* ';'-joined cat:name segments, outermost first *)
  resource : string;
  blocker : string;
}

val samples : Oib_obs.Event.stamped list -> sample list
(** Every [Prof_sample] in the capture, in order. *)

val frames_of : sample -> string list
(** The sample's frame list (via {!Oib_obs.Profiler.frames}). *)

val weights : Oib_obs.Event.stamped list -> (string * int) list
(** Weighted stacks: [(";"-joined frames, weight)], sorted by path.
    Weights sum to {!total_weight}. *)

val folded : Oib_obs.Event.stamped list -> string
(** Folded-stack lines ["f1;f2;f3 W\n"], flamegraph-ready. *)

val total_weight : Oib_obs.Event.stamped list -> int
(** Number of samples in the capture. *)

val by_state : Oib_obs.Event.stamped list -> (string * int) list
val by_fiber : Oib_obs.Event.stamped list -> (string * int) list

val top_down : Oib_obs.Event.stamped list -> (string * int * int) list
(** [(path prefix, total, self)] — [total] counts samples passing
    through the prefix, [self] those ending exactly there. Lexicographic
    path order (children follow their parent). *)

val bottom_up : Oib_obs.Event.stamped list -> (string * int * int) list
(** [(frame, total, self)] — [total] counts samples containing the frame
    anywhere, [self] those it terminates. Sorted by self descending. *)

val waits_by_phase :
  Oib_obs.Event.stamped list -> (int * string * string * int) list
(** [(index, build phase, wait state, weight)] for every non-oncpu
    sample falling inside that phase's step interval (from the
    [Ib_phase] markers in the same capture). *)

val waits_by_class :
  Oib_obs.Event.stamped list -> (string * string * int) list
(** [(normalized fiber name, wait state, weight)] — how each txn class
    (workers, ib, rogue, ...) spends its blocked time. *)

val wait_edges :
  Oib_obs.Event.stamped list -> (string * string * string * int) list
(** [(state, resource, blocker fiber, weight)] attribution edges:
    who blocked whom on what, and for how many samples. *)

val diff :
  Oib_obs.Event.stamped list ->
  Oib_obs.Event.stamped list ->
  (string * int) list
(** Signed per-path weight delta B−A, zero paths dropped, sorted by
    |delta| descending then path. [diff x x] is always []. *)
