(** Fold a trace event stream into one renderable dashboard frame.

    The model behind [oib-top]: feed it stamped events — live off a
    {!Oib_obs.Trace} sink or replayed from a JSONL capture — and
    {!render} the current state as a fixed-layout text frame showing
    foreground latency quantiles, EWMA rates, health signals, page-IO by
    role, and every build's phase, progress and attributed cost. The
    fold keeps only "latest value per sample key" plus a few event
    counters, so feeding is O(1) per event and a frame can be rendered
    at any point of the stream. Pure state + string: no printing here
    (the binary owns the terminal). *)

type t

val create : unit -> t

val feed : t -> Oib_obs.Event.stamped -> unit
(** Latest-wins for [Sample] keys; [Txn_commit]/[Txn_abort]/[Crash]/
    [Epoch] bump counters; everything else only advances the step
    clock. *)

val feed_all : t -> Oib_obs.Event.stamped list -> unit

val step : t -> int
(** Step stamp of the newest event fed (0 before any). *)

val samples : t -> int
(** Number of [Sample] points folded in so far. *)

val render : t -> string
(** The current frame, terminated by a newline. Sections with no data
    yet render as placeholders, so a frame is valid at any time. *)
