(** Span reassembly and per-transaction critical-path breakdown.

    Feed it one epoch's events (see {!Trace_reader.epochs}); span ids are
    unique within an epoch. *)

type span = {
  id : int;
  parent : int;  (** [0] = root *)
  cat : string;  (** ["txn"], ["lock"], ["latch"], ["io"], ["logflush"], ["ib"] *)
  name : string;
  fiber : int;
  fiber_name : string;
  t0 : int;
  mutable t1 : int option;  (** [None]: never ended in this epoch *)
}

type t

val build : Oib_obs.Event.stamped list -> t
val find : t -> int -> span option

val all : t -> span list
(** In begin order. *)

val count : t -> int
val duration : span -> int option
val children : t -> int -> span list
val roots : t -> span list

val by_cat : t -> (string * int * int) list
(** Per category: (cat, span count, summed closed duration), sorted. *)

type breakdown = {
  b_span : span;
  total : int;  (** the span's own duration in virtual steps *)
  parts : (string * int) list;
      (** summed durations of *direct* children, grouped by category *)
  compute : int;  (** [total] minus all [parts] *)
}

val breakdown : t -> int -> breakdown option
(** [None] if the span is unknown or never ended. The parts and
    [compute] sum to [total] exactly. *)

val txn_breakdowns : t -> breakdown list
(** One breakdown per closed ["txn"] span, in begin order. *)
