(* Dashboard state fold: latest value per sample key plus a few direct
   event counters, rendered as one text frame. Key names follow the
   namespace contract documented on [Oib_obs.Event.Sample]. *)

module Event = Oib_obs.Event

type t = {
  latest : (string, int) Hashtbl.t; (* newest value per sample key *)
  mutable last_step : int;
  mutable samples : int;
  mutable commits : int;
  mutable aborts : int;
  mutable crashes : int;
  mutable epochs : int;
}

let create () =
  {
    latest = Hashtbl.create 128;
    last_step = 0;
    samples = 0;
    commits = 0;
    aborts = 0;
    crashes = 0;
    epochs = 1;
  }

let feed t (s : Event.stamped) =
  t.last_step <- max t.last_step s.step;
  match s.event with
  | Event.Sample { key; value } ->
    Hashtbl.replace t.latest key value;
    t.samples <- t.samples + 1
  | Event.Txn_commit _ -> t.commits <- t.commits + 1
  | Event.Txn_abort _ -> t.aborts <- t.aborts + 1
  | Event.Crash _ -> t.crashes <- t.crashes + 1
  | Event.Epoch _ ->
    t.epochs <- t.epochs + 1;
    (* a restart resets the step clock and invalidates build/gauge state *)
    t.last_step <- s.step
  | _ -> ()

let feed_all t events = List.iter (feed t) events

let step t = t.last_step
let samples t = t.samples

let get t key = Hashtbl.find_opt t.latest key
let get0 t key = Option.value (get t key) ~default:0

(* keys matching [prefix]<middle>[suffix], returned as (middle, value)
   sorted by middle — e.g. build ids or role labels *)
let matching t ~prefix ~suffix =
  let plen = String.length prefix and slen = String.length suffix in
  Hashtbl.fold
    (fun key v acc ->
      let klen = String.length key in
      if
        klen > plen + slen
        && String.sub key 0 plen = prefix
        && String.sub key (klen - slen) slen = suffix
      then (String.sub key plen (klen - plen - slen), v) :: acc
      else acc)
    t.latest []
  |> List.sort compare

(* Build_status.rank, inverted (Insert and Bulk share rank 4) *)
let phase_of_rank = function
  | 0 -> "init"
  | 1 -> "quiesce"
  | 2 -> "scan"
  | 3 -> "merge"
  | 4 -> "insert/bulk"
  | 5 -> "drain"
  | 6 -> "ready"
  | r -> Printf.sprintf "phase-%d" r

let render t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "oib-top  step %-10d epoch %-3d crashes %-3d samples %d\n" t.last_step
    t.epochs t.crashes t.samples;
  (* foreground latency: the fg.latency sliding window + txn outcomes *)
  (match get t "window.fg.latency.count" with
  | Some n ->
    Printf.bprintf buf
      "fg latency   p50 %-6d p95 %-6d p99 %-6d (n=%d in window)\n"
      (get0 t "window.fg.latency.p50")
      (get0 t "window.fg.latency.p95")
      (get0 t "window.fg.latency.p99")
      n
  | None -> Buffer.add_string buf "fg latency   (no window samples yet)\n");
  Printf.bprintf buf "txns         commits %-8d aborts %-8d deadlocks %d\n"
    t.commits t.aborts
    (get0 t "metrics.deadlocks");
  (* EWMA rates, already scaled to events per 1000 steps *)
  (match matching t ~prefix:"rate." ~suffix:"" with
  | [] -> Buffer.add_string buf "rates /1k    (no rate samples yet)\n"
  | rates ->
    Buffer.add_string buf "rates /1k   ";
    List.iter (fun (name, v) -> Printf.bprintf buf " %s %d" name v) rates;
    Buffer.add_char buf '\n');
  Printf.bprintf buf "pool         dirty %d / cached %d    wal unflushed %d B\n"
    (get0 t "pool.dirty_pages")
    (get0 t "pool.cached_pages")
    (get0 t "wal.unflushed_bytes");
  (* role-labelled page IO counters: pool.page_read{role=scan} ... *)
  (match matching t ~prefix:"pool.page_read{role=" ~suffix:"}" with
  | [] -> ()
  | roles ->
    Buffer.add_string buf "reads/role  ";
    List.iter (fun (role, v) -> Printf.bprintf buf " %s %d" role v) roles;
    Buffer.add_char buf '\n');
  (* health signals: filled dot = active *)
  (match matching t ~prefix:"signal." ~suffix:"" with
  | [] -> Buffer.add_string buf "signals      (none registered)\n"
  | signals ->
    Buffer.add_string buf "signals     ";
    List.iter
      (fun (name, v) ->
        Printf.bprintf buf " %s %s" (if v <> 0 then "[*]" else "[ ]") name)
      signals;
    Buffer.add_char buf '\n');
  (* one row per build, ids recovered from the build.<id>.phase keys *)
  (match
     List.sort
       (fun (a, _) (b, _) ->
         compare (int_of_string_opt a) (int_of_string_opt b))
       (matching t ~prefix:"build." ~suffix:".phase")
   with
  | [] -> Buffer.add_string buf "builds       (none)\n"
  | builds ->
    Printf.bprintf buf "%-5s %-12s %9s %8s %7s %10s %7s %9s\n" "build"
      "phase" "keys" "backlog" "pages" "log_bytes" "waits" "compares";
    List.iter
      (fun (id, rank) ->
        let g suffix = get0 t (Printf.sprintf "build.%s.%s" id suffix) in
        Printf.bprintf buf "%-5s %-12s %9d %8d %7d %10d %7d %9d\n" id
          (phase_of_rank rank) (g "keys_processed") (g "backlog")
          (g "cost.pages") (g "cost.log_bytes") (g "cost.wait_steps")
          (g "cost.compares"))
      builds);
  Buffer.contents buf
