(** Dependency-free JSON parser for reading trace dumps back.

    Handles exactly the dialect the engine writes (flat objects, string
    escapes including [\uXXXX], ints, bools) plus enough generality
    (arrays, floats, null) to read [BENCH_obs.json]-style documents. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result

val member : string -> t -> t option
(** Object field lookup; [None] on missing key or non-object. *)

val to_int : t -> int option
val to_string : t -> string option
val to_bool : t -> bool option
