(* Decode a JSONL trace dump back into [Oib_obs.Event.stamped] values and
   split a multi-incarnation capture into epochs.

   An "epoch" is one engine incarnation's worth of events: the step clock
   restarts at 0 when a new scheduler is wired to a surviving trace
   (crash + restart, or a soak run reusing one sink across seeds), so a
   raw dump is a concatenation of runs. We split before every [Epoch]
   marker, after every [Crash], and wherever the step clock jumps
   backwards. *)

module Event = Oib_obs.Event

type error = { line_no : int; line : string; msg : string }

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field j k conv what =
  match Option.bind (Json.member k j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %S (%s)" k what)

let decode_event j kind =
  let int_f k = field j k Json.to_int kind in
  let str_f k = field j k Json.to_string kind in
  let bool_f k = field j k Json.to_bool kind in
  match kind with
  | "fiber.spawn" ->
    (* payload key is "id": "fiber" in the same object is the stamp's *)
    let* fiber = int_f "id" in
    let* name = str_f "name" in
    Ok (Event.Fiber_spawn { fiber; name })
  | "latch.wait" ->
    let* latch = str_f "latch" in
    let* mode = str_f "mode" in
    (* absent in pre-profiler captures: default to "unknown holders" *)
    let holders =
      Option.value (Option.bind (Json.member "holders" j) Json.to_string)
        ~default:""
    in
    Ok (Event.Latch_wait { latch; mode; holders })
  | "latch.acquired" ->
    let* latch = str_f "latch" in
    let* mode = str_f "mode" in
    let* waited = int_f "waited" in
    Ok (Event.Latch_acquired { latch; mode; waited })
  | "latch.released" ->
    let* latch = str_f "latch" in
    let* mode = str_f "mode" in
    Ok (Event.Latch_released { latch; mode })
  | "lock.wait" ->
    let* owner = int_f "owner" in
    let* target = str_f "target" in
    let* mode = str_f "mode" in
    let* blockers = str_f "blockers" in
    Ok (Event.Lock_wait { owner; target; mode; blockers })
  | "lock.acquired" ->
    let* owner = int_f "owner" in
    let* target = str_f "target" in
    let* mode = str_f "mode" in
    let* waited = int_f "waited" in
    Ok (Event.Lock_acquired { owner; target; mode; waited })
  | "lock.denied" ->
    let* owner = int_f "owner" in
    let* target = str_f "target" in
    let* mode = str_f "mode" in
    let* blockers = str_f "blockers" in
    Ok (Event.Lock_denied { owner; target; mode; blockers })
  | "lock.released_all" ->
    let* owner = int_f "owner" in
    Ok (Event.Lock_released_all { owner })
  | "page.read" ->
    let* page = int_f "page" in
    Ok (Event.Page_read { page })
  | "page.write" ->
    let* page = int_f "page" in
    Ok (Event.Page_write { page })
  | "log.append" ->
    let* lsn = int_f "lsn" in
    let* kind = str_f "kind" in
    let* bytes = int_f "bytes" in
    Ok (Event.Log_append { lsn; kind; bytes })
  | "log.flush" ->
    let* upto = int_f "upto" in
    Ok (Event.Log_flush { upto })
  | "txn.begin" ->
    let* txn = int_f "txn" in
    Ok (Event.Txn_begin { txn })
  | "txn.commit" ->
    let* txn = int_f "txn" in
    let* latency = int_f "latency" in
    Ok (Event.Txn_commit { txn; latency })
  | "txn.abort" ->
    let* txn = int_f "txn" in
    let* latency = int_f "latency" in
    Ok (Event.Txn_abort { txn; latency })
  | "txn.rollback_step" ->
    let* txn = int_f "txn" in
    let* lsn = int_f "lsn" in
    Ok (Event.Txn_rollback_step { txn; lsn })
  | "ib.phase" ->
    let* index = int_f "index" in
    let* phase = str_f "phase" in
    Ok (Event.Ib_phase { index; phase })
  | "ib.checkpoint" ->
    let* index = int_f "index" in
    let* stage = str_f "stage" in
    Ok (Event.Ib_checkpoint { index; stage })
  | "index.state" ->
    let* index = int_f "index" in
    let* state = str_f "state" in
    Ok (Event.Index_state { index; state })
  | "ib.range_commit" ->
    let* index = int_f "index" in
    let* lo = int_f "lo" in
    let* hi = int_f "hi" in
    Ok (Event.Ib_range_commit { index; lo; hi })
  | "ib.throttle" ->
    let* level = int_f "level" in
    let* reason = str_f "reason" in
    Ok (Event.Ib_throttle { level; reason })
  | "sidefile.append" ->
    let* sidefile = int_f "sidefile" in
    let* insert = bool_f "insert" in
    let* pos = int_f "pos" in
    Ok (Event.Sidefile_append { sidefile; insert; pos })
  | "sidefile.drained" ->
    let* sidefile = int_f "sidefile" in
    let* from_pos = int_f "from" in
    let* upto = int_f "upto" in
    Ok (Event.Sidefile_drained { sidefile; from_pos; upto })
  | "checkpoint" ->
    let* scope = str_f "scope" in
    Ok (Event.Checkpoint { scope })
  | "recovery.step" ->
    let* step = str_f "what" in
    let* detail = str_f "detail" in
    Ok (Event.Recovery_step { step; detail })
  | "crash" ->
    let* reason = str_f "reason" in
    Ok (Event.Crash { reason })
  | "span.begin" ->
    let* span = int_f "span" in
    let* parent = int_f "parent" in
    let* cat = str_f "cat" in
    let* name = str_f "name" in
    Ok (Event.Span_begin { span; parent; cat; name })
  | "span.end" ->
    let* span = int_f "span" in
    Ok (Event.Span_end { span })
  | "sample" ->
    let* key = str_f "key" in
    let* value = int_f "value" in
    Ok (Event.Sample { key; value })
  | "prof.sample" ->
    let* fiber = int_f "id" in
    let* fname = str_f "fname" in
    let* state = str_f "state" in
    let* path = str_f "path" in
    let* resource = str_f "resource" in
    let* blocker = str_f "blocker" in
    Ok (Event.Prof_sample { fiber; fname; state; path; resource; blocker })
  | "epoch" ->
    let* label = str_f "label" in
    Ok (Event.Epoch { label })
  | k -> Error (Printf.sprintf "unknown event type %S" k)

let parse_line line =
  let* j = Json.parse line in
  let* step = field j "step" Json.to_int "stamp" in
  let* fiber = field j "fiber" Json.to_int "stamp" in
  let* fiber_name = field j "fiber_name" Json.to_string "stamp" in
  let* kind = field j "type" Json.to_string "stamp" in
  let* event = decode_event j kind in
  Ok { Event.step; fiber; fiber_name; event }

let of_lines lines =
  let events = ref [] and errors = ref [] in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then
        match parse_line line with
        | Ok s -> events := s :: !events
        | Error msg ->
          errors := { line_no = i + 1; line; msg } :: !errors)
    lines;
  (List.rev !events, List.rev !errors)

let of_string s = of_lines (String.split_on_char '\n' s)

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      of_lines (List.rev !lines))

let epochs events =
  let finish cur acc = if cur = [] then acc else List.rev cur :: acc in
  let rec go cur acc last_step = function
    | [] -> List.rev (finish cur acc)
    | (e : Event.stamped) :: rest ->
      let is_epoch_marker =
        match e.event with Event.Epoch _ -> true | _ -> false
      in
      let split = is_epoch_marker || (cur <> [] && e.step < last_step) in
      let cur, acc = if split then ([], finish cur acc) else (cur, acc) in
      let cur = e :: cur in
      (match e.event with
      | Event.Crash _ -> go [] (finish cur acc) 0 rest
      | _ -> go cur acc e.step rest)
  in
  go [] [] 0 events

let nth_epoch events n =
  List.nth_opt (epochs events) n

let last_step events =
  List.fold_left (fun acc (e : Event.stamped) -> max acc e.step) 0 events
