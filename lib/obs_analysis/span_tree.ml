(* Reassemble Span_begin/Span_end events (from ONE epoch) into interval
   records and derive per-transaction critical-path breakdowns.

   The breakdown charges a transaction's wall (virtual) time to the
   categories of its *direct* child spans — lock waits, latch waits, page
   I/O, log flushes — and calls the remainder "compute". Only direct
   children count: a log flush forced inside a page write is already
   inside the "io" time, so nesting never double-charges. Direct children
   of a span live on the same fiber and are sequential there, so the sum
   of their durations never exceeds the parent's. *)

module Event = Oib_obs.Event

type span = {
  id : int;
  parent : int; (* 0 = root *)
  cat : string;
  name : string;
  fiber : int;
  fiber_name : string;
  t0 : int;
  mutable t1 : int option; (* None = never ended in this epoch *)
}

type t = { tbl : (int, span) Hashtbl.t; mutable order_rev : int list }

let build events =
  let t = { tbl = Hashtbl.create 64; order_rev = [] } in
  List.iter
    (fun (s : Event.stamped) ->
      match s.event with
      | Event.Span_begin { span; parent; cat; name } ->
        if not (Hashtbl.mem t.tbl span) then begin
          Hashtbl.replace t.tbl span
            {
              id = span;
              parent;
              cat;
              name;
              fiber = s.fiber;
              fiber_name = s.fiber_name;
              t0 = s.step;
              t1 = None;
            };
          t.order_rev <- span :: t.order_rev
        end
      | Event.Span_end { span } -> (
        match Hashtbl.find_opt t.tbl span with
        | Some sp when sp.t1 = None -> sp.t1 <- Some s.step
        | _ -> ())
      | _ -> ())
    events;
  t

let find t id = Hashtbl.find_opt t.tbl id

let all t = List.rev_map (Hashtbl.find t.tbl) t.order_rev

let count t = Hashtbl.length t.tbl

let duration sp = Option.map (fun t1 -> t1 - sp.t0) sp.t1

let children t id =
  List.filter (fun sp -> sp.parent = id && sp.id <> id) (all t)

let roots t = children t 0

let by_cat t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      let n, d = Option.value (Hashtbl.find_opt tbl sp.cat) ~default:(0, 0) in
      Hashtbl.replace tbl sp.cat
        (n + 1, d + Option.value (duration sp) ~default:0))
    (all t);
  Hashtbl.fold (fun cat (n, d) acc -> (cat, n, d) :: acc) tbl []
  |> List.sort compare

type breakdown = {
  b_span : span;
  total : int;
  parts : (string * int) list; (* per direct-child category, sorted *)
  compute : int; (* total minus every part; >= 0 for well-formed traces *)
}

let breakdown t id =
  match find t id with
  | None -> None
  | Some sp -> (
    match sp.t1 with
    | None -> None
    | Some t1 ->
      let total = t1 - sp.t0 in
      let per_cat = Hashtbl.create 4 in
      List.iter
        (fun kid ->
          match duration kid with
          | None -> ()
          | Some d ->
            Hashtbl.replace per_cat kid.cat
              (Option.value (Hashtbl.find_opt per_cat kid.cat) ~default:0
              + d))
        (children t id);
      let parts =
        Hashtbl.fold (fun c d acc -> (c, d) :: acc) per_cat []
        |> List.sort compare
      in
      let spent = List.fold_left (fun acc (_, d) -> acc + d) 0 parts in
      Some { b_span = sp; total; parts; compute = total - spent })

let txn_breakdowns t =
  List.filter_map
    (fun sp ->
      if sp.cat = "txn" && sp.t1 <> None then breakdown t sp.id else None)
    (all t)
