(* Minimal recursive-descent JSON parser — just enough to read back the
   JSONL that [Oib_obs.Event.to_json] and friends write, with no external
   dependency. Integers without fraction/exponent parse as [Int];
   everything else numeric as [Float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string

type state = { s : string; mutable pos : int }

let error st msg = raise (Bad (Printf.sprintf "at %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> error st (Printf.sprintf "expected %c, got %c" c d)
  | None -> error st (Printf.sprintf "expected %c, got end" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st ("expected " ^ word)

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> raise (Bad "bad hex digit in \\u escape")

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> error st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if st.pos + 4 > String.length st.s then
            error st "truncated \\u escape";
          let code =
            (hex_digit st.s.[st.pos] * 4096)
            + (hex_digit st.s.[st.pos + 1] * 256)
            + (hex_digit st.s.[st.pos + 2] * 16)
            + hex_digit st.s.[st.pos + 3]
          in
          st.pos <- st.pos + 4;
          (* our encoder only \u-escapes control bytes; decode the
             low range directly and anything else as UTF-8 *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b
              (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> error st (Printf.sprintf "bad escape \\%c" c));
        go ())
    | Some c ->
      advance st;
      Buffer.add_char b c;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let rec go () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+') ->
      advance st;
      go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.s start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error st ("bad number " ^ text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> error st ("bad number " ^ text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "empty input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((key, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
        | _ -> error st "expected , or } in object"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> error st "expected , or ] in array"
      in
      List (elements [])
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected %c" c)

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at %d" st.pos)
    else Ok v
  | exception Bad msg -> Error msg

(* --- accessors --- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
