(** Renderers behind the oib-trace subcommands. Each takes the full
    decoded event list, handles epoch splitting itself, and returns the
    complete report as a string. *)

val summary : Oib_obs.Event.stamped list -> string
val spans : Oib_obs.Event.stamped list -> string
val contention : Oib_obs.Event.stamped list -> string
val timeline : Oib_obs.Event.stamped list -> string
