(* Text rendering for the oib-trace subcommands. Everything returns a
   string so the CLI owns all printing (and tests can snapshot). *)

module Event = Oib_obs.Event
module TP = Oib_util.Table_printer

let with_buf f =
  let b = Buffer.create 1024 in
  f b;
  Buffer.contents b

let epoch_header b i epoch =
  let label =
    match epoch with
    | { Event.event = Event.Epoch { label }; _ } :: _ -> " [" ^ label ^ "]"
    | _ -> ""
  in
  Buffer.add_string b
    (Printf.sprintf "=== epoch %d%s: %d events, steps 0..%d ===\n" i label
       (List.length epoch)
       (Trace_reader.last_step epoch))

let summary events =
  with_buf (fun b ->
      let epochs = Trace_reader.epochs events in
      List.iteri
        (fun i epoch ->
          epoch_header b i epoch;
          let kinds = Hashtbl.create 16 in
          List.iter
            (fun (s : Event.stamped) ->
              let k = Event.kind s.event in
              Hashtbl.replace kinds k
                (1 + Option.value (Hashtbl.find_opt kinds k) ~default:0))
            epoch;
          let t = TP.create ~columns:[ "event"; "count" ] in
          Hashtbl.fold (fun k n acc -> (k, n) :: acc) kinds []
          |> List.sort (fun (_, a) (_, b) -> compare b a)
          |> List.iter (fun (k, n) -> TP.add_row t [ k; string_of_int n ]);
          Buffer.add_string b (TP.render t);
          let commits =
            List.length
              (List.filter
                 (fun (s : Event.stamped) ->
                   match s.event with Event.Txn_commit _ -> true | _ -> false)
                 epoch)
          and aborts =
            List.length
              (List.filter
                 (fun (s : Event.stamped) ->
                   match s.event with Event.Txn_abort _ -> true | _ -> false)
                 epoch)
          in
          Buffer.add_string b
            (Printf.sprintf "txns: %d committed, %d aborted\n\n" commits
               aborts))
        epochs)

let spans events =
  with_buf (fun b ->
      let epochs = Trace_reader.epochs events in
      List.iteri
        (fun i epoch ->
          epoch_header b i epoch;
          let st = Span_tree.build epoch in
          let t = TP.create ~columns:[ "cat"; "spans"; "steps" ] in
          List.iter
            (fun (cat, n, d) ->
              TP.add_row t [ cat; string_of_int n; string_of_int d ])
            (Span_tree.by_cat st);
          Buffer.add_string b (TP.render ~title:"spans by category" t);
          let bds = Span_tree.txn_breakdowns st in
          if bds <> [] then begin
            let cats =
              List.sort_uniq compare
                (List.concat_map
                   (fun (bd : Span_tree.breakdown) -> List.map fst bd.parts)
                   bds)
            in
            let t =
              TP.create ~columns:(("txn" :: "total" :: cats) @ [ "compute" ])
            in
            List.iter
              (fun (bd : Span_tree.breakdown) ->
                TP.add_row t
                  (bd.b_span.Span_tree.name
                   :: string_of_int bd.total
                   :: List.map
                        (fun c ->
                          string_of_int
                            (Option.value (List.assoc_opt c bd.parts)
                               ~default:0))
                        cats
                  @ [ string_of_int bd.compute ]))
              bds;
            Buffer.add_string b
              (TP.render ~title:"per-transaction critical path (steps)" t)
          end;
          Buffer.add_char b '\n')
        epochs)

let contention events =
  with_buf (fun b ->
      let epochs = Trace_reader.epochs events in
      List.iteri
        (fun i epoch ->
          epoch_header b i epoch;
          let end_step = Trace_reader.last_step epoch in
          let ws = Contention.waits epoch in
          if ws = [] then Buffer.add_string b "no lock or latch waits\n\n"
          else begin
            let t =
              TP.create ~columns:[ "target"; "waits"; "steps"; "max" ]
            in
            List.iter
              (fun (r : Contention.target_row) ->
                TP.add_row t
                  [
                    r.t_target;
                    string_of_int r.t_waits;
                    string_of_int r.t_steps;
                    string_of_int r.t_max;
                  ])
              (Contention.by_target ~end_step ws);
            Buffer.add_string b (TP.render ~title:"wait totals by target" t);
            let rows = Contention.blockers ~end_step ws in
            if rows <> [] then begin
              let t =
                TP.create
                  ~columns:[ "blocker"; "kind"; "victims"; "waits"; "steps" ]
              in
              List.iter
                (fun (r : Contention.blocker_row) ->
                  TP.add_row t
                    [
                      Contention.owner_label r.b_owner;
                      (if r.b_is_ib then "ib" else "updater");
                      string_of_int r.b_victims;
                      string_of_int r.b_waits;
                      string_of_int r.b_steps;
                    ])
                rows;
              Buffer.add_string b
                (TP.render ~title:"blocker attribution (who blocked whom)" t)
            end;
            Buffer.add_char b '\n'
          end)
        epochs)

let timeline events =
  with_buf (fun b ->
      let epochs = Trace_reader.epochs events in
      List.iteri
        (fun i epoch ->
          epoch_header b i epoch;
          let end_step = Trace_reader.last_step epoch in
          let ws = Contention.waits epoch in
          let wait_lines =
            List.map
              (fun (w : Contention.wait) ->
                ( w.w_t0,
                  Printf.sprintf "%-7d %-14s wait %s %s (%s) %d steps%s"
                    w.w_t0 w.w_fiber_name
                    (match w.w_kind with
                    | Contention.Lock -> "lock"
                    | Contention.Latch -> "latch")
                    w.w_target w.w_mode
                    (Contention.wait_steps ~end_step w)
                    (match (w.w_kind, w.w_blockers) with
                    | Contention.Lock, (_ :: _ as bs) ->
                      " blocked by "
                      ^ String.concat ","
                          (List.map Contention.owner_label bs)
                    | _ -> "") ))
              ws
          in
          let other_lines =
            List.filter_map
              (fun (s : Event.stamped) ->
                let line txt =
                  Some
                    (s.step, Printf.sprintf "%-7d %-14s %s" s.step
                               s.fiber_name txt)
                in
                match s.event with
                | Event.Ib_phase { index; phase } ->
                  line (Printf.sprintf "ib phase: index %d -> %s" index phase)
                | Event.Ib_checkpoint { index; stage } ->
                  line (Printf.sprintf "ib checkpoint: index %d (%s)" index
                          stage)
                | Event.Crash { reason } -> line ("CRASH: " ^ reason)
                | Event.Epoch { label } -> line ("epoch: " ^ label)
                | Event.Recovery_step { step; detail } ->
                  line (Printf.sprintf "recovery: %s %s" step detail)
                | _ -> None)
              epoch
          in
          List.stable_sort (fun (a, _) (b, _) -> compare a b)
            (wait_lines @ other_lines)
          |> List.iter (fun (_, l) ->
                 Buffer.add_string b l;
                 Buffer.add_char b '\n');
          Buffer.add_char b '\n')
        epochs)
