(* Trace invariant validation (`oib-trace check`).

   The checker splits the capture into epochs (engine incarnations) and
   validates, per epoch:
     - every lock/latch wait resolves into an acquire whose [waited]
       field equals the step delta, unless the epoch died in a crash;
     - acquires never appear without a preceding wait (immediate grants
       emit no event at all);
     - IB phase ranks never regress per index;
     - span nesting is well-formed: fresh ids, parents open at begin,
       ends match open spans, nothing left open unless the epoch crashed;
     - transactions begin and terminate at most once, latencies are
       non-negative, side-file drains are sane;
     - profiler samples carry one of the six wait-state buckets.
   Across epochs: a step-clock reset is only legal after a crash or at an
   explicit [Epoch] marker. *)

module Event = Oib_obs.Event

type violation = { v_epoch : int; v_step : int; v_what : string }

let pp_violation ppf v =
  Format.fprintf ppf "epoch %d step %-7d %s" v.v_epoch v.v_step v.v_what

let phase_rank = function
  | "init" -> Some 0
  | "quiesce" -> Some 1
  | "scan" -> Some 2
  | "merge" -> Some 3
  | "insert" | "bulk" -> Some 4
  | "drain" -> Some 5
  | "ready" -> Some 6
  | _ -> None

let ends_in_crash epoch =
  match List.rev epoch with
  | { Event.event = Event.Crash _; _ } :: _ -> true
  | _ -> false

let check_epoch ~epoch_no epoch =
  let out = ref [] in
  let bad step fmt =
    Printf.ksprintf
      (fun what ->
        out := { v_epoch = epoch_no; v_step = step; v_what = what } :: !out)
      fmt
  in
  let crashed = ends_in_crash epoch in
  (* pending waits *)
  let lock_waits = Hashtbl.create 16 in
  let latch_waits = Hashtbl.create 16 in
  (* ib phase ranks per index *)
  let phases = Hashtbl.create 4 in
  (* spans: id -> still_open; seen ids to catch reuse *)
  let open_spans = Hashtbl.create 64 in
  let seen_spans = Hashtbl.create 64 in
  (* txn lifecycle *)
  let txn_begun = Hashtbl.create 32 in
  let txn_done = Hashtbl.create 32 in
  List.iter
    (fun (s : Event.stamped) ->
      let step = s.step in
      match s.event with
      | Event.Lock_wait { owner; target; _ } ->
        if Hashtbl.mem lock_waits (owner, target) then
          bad step "owner %d waits twice on %s without an acquire" owner
            target;
        Hashtbl.replace lock_waits (owner, target) step
      | Event.Lock_acquired { owner; target; waited; _ } -> (
        match Hashtbl.find_opt lock_waits (owner, target) with
        | None ->
          bad step "lock acquire without wait: owner %d on %s" owner target
        | Some t0 ->
          Hashtbl.remove lock_waits (owner, target);
          if waited <> step - t0 then
            bad step
              "lock wait mismatch: owner %d on %s waited=%d but steps say %d"
              owner target waited (step - t0))
      | Event.Latch_wait { latch; mode; _ } ->
        if Hashtbl.mem latch_waits (s.fiber, latch, mode) then
          bad step "fiber %d waits twice on latch %s without an acquire"
            s.fiber latch;
        Hashtbl.replace latch_waits (s.fiber, latch, mode) step
      | Event.Latch_acquired { latch; mode; waited } -> (
        match Hashtbl.find_opt latch_waits (s.fiber, latch, mode) with
        | None ->
          bad step "latch acquire without wait: fiber %d on %s" s.fiber latch
        | Some t0 ->
          Hashtbl.remove latch_waits (s.fiber, latch, mode);
          if waited <> step - t0 then
            bad step
              "latch wait mismatch: fiber %d on %s waited=%d but steps say %d"
              s.fiber latch waited (step - t0))
      | Event.Ib_phase { index; phase } -> (
        match phase_rank phase with
        | None -> bad step "unknown ib phase %S (index %d)" phase index
        | Some r ->
          (match Hashtbl.find_opt phases index with
          | Some (prev_phase, prev_r) when r < prev_r ->
            bad step "ib phase regression: index %d %s -> %s" index
              prev_phase phase
          | _ -> ());
          Hashtbl.replace phases index (phase, r))
      | Event.Span_begin { span; parent; _ } ->
        if Hashtbl.mem seen_spans span then
          bad step "span %d begun twice" span
        else begin
          Hashtbl.replace seen_spans span ();
          if parent <> 0 && not (Hashtbl.mem open_spans parent) then
            bad step "span %d begins under parent %d which is not open" span
              parent;
          Hashtbl.replace open_spans span ()
        end
      | Event.Span_end { span } ->
        if Hashtbl.mem open_spans span then Hashtbl.remove open_spans span
        else bad step "span %d ends but is not open" span
      | Event.Txn_begin { txn } ->
        if Hashtbl.mem txn_begun txn then
          bad step "txn %d begins twice" txn;
        Hashtbl.replace txn_begun txn ()
      | Event.Txn_commit { txn; latency } | Event.Txn_abort { txn; latency }
        ->
        if latency < 0 then bad step "txn %d negative latency %d" txn latency;
        if Hashtbl.mem txn_done txn then
          bad step "txn %d terminates twice" txn;
        Hashtbl.replace txn_done txn ()
      | Event.Sidefile_drained { sidefile; from_pos; upto } ->
        if from_pos > upto then
          bad step "sidefile %d drained backwards: from %d > upto %d"
            sidefile from_pos upto
      | Event.Prof_sample { fiber; state; _ } ->
        if not (List.mem state Oib_obs.Profiler.states) then
          bad step "prof sample for fiber %d with unknown state %S" fiber
            state
      | _ -> ())
    epoch;
  if not crashed then begin
    let tail = Trace_reader.last_step epoch in
    Hashtbl.iter
      (fun (owner, target) t0 ->
        ignore t0;
        bad tail "lock wait never granted: owner %d on %s" owner target)
      lock_waits;
    Hashtbl.iter
      (fun (fiber, latch, _) t0 ->
        ignore t0;
        bad tail "latch wait never granted: fiber %d on %s" fiber latch)
      latch_waits;
    Hashtbl.iter
      (fun span () -> bad tail "span %d still open at end of epoch" span)
      open_spans
  end;
  List.rev !out

let run events =
  let epochs = Trace_reader.epochs events in
  let out = ref [] in
  List.iteri
    (fun i epoch ->
      (* a later epoch must announce itself: either the previous one died
         in a crash, or this one starts at an explicit marker *)
      (if i > 0 then
         let starts_with_marker =
           match epoch with
           | { Event.event = Event.Epoch _; _ } :: _ -> true
           | _ -> false
         in
         let prev_crashed =
           ends_in_crash (List.nth epochs (i - 1))
         in
         if not (starts_with_marker || prev_crashed) then
           let step =
             match epoch with e :: _ -> e.Event.step | [] -> 0
           in
           out :=
             {
               v_epoch = i;
               v_step = step;
               v_what =
                 "step clock reset without a preceding crash or an epoch \
                  marker";
             }
             :: !out);
      out := List.rev_append (check_epoch ~epoch_no:i epoch) !out)
    epochs;
  List.rev !out
