(* Offline windowed quantiles: extract a (step, value) series from raw
   trace events, then slide a window over it at a fixed cadence. The
   observations go through the same Hist buckets as the engine's online
   Window, so offline and online quantiles agree to within one bucket. *)

module Event = Oib_obs.Event
module Hist = Oib_obs.Hist
module TR = Trace_reader

type key = Txn_latency | Fg_latency | Latch_wait | Lock_wait

let all_keys = [ Txn_latency; Fg_latency; Latch_wait; Lock_wait ]

let key_name = function
  | Txn_latency -> "txn_latency"
  | Fg_latency -> "fg_latency"
  | Latch_wait -> "latch_wait"
  | Lock_wait -> "lock_wait"

let series key events =
  List.filter_map
    (fun (s : Event.stamped) ->
      match (key, s.event) with
      | Txn_latency, (Event.Txn_commit { latency; _ } | Event.Txn_abort { latency; _ })
        ->
        Some (s.step, latency)
      | Fg_latency, Event.Txn_commit { latency; _ } -> Some (s.step, latency)
      | Latch_wait, Event.Latch_acquired { waited; _ } -> Some (s.step, waited)
      | Lock_wait, Event.Lock_acquired { waited; _ } -> Some (s.step, waited)
      | _ -> None)
    events

type point = { step : int; count : int; p50 : float; p95 : float; p99 : float }

let over_range ?bounds ~from ~upto obs =
  let h = Hist.create ?bounds () in
  List.iter (fun (step, v) -> if step > from && step <= upto then Hist.observe h v) obs;
  {
    step = upto;
    count = Hist.count h;
    p50 = Hist.percentile h 0.50;
    p95 = Hist.percentile h 0.95;
    p99 = Hist.percentile h 0.99;
  }

let windowed ?bounds ~window ~every obs =
  if window <= 0 || every <= 0 then
    invalid_arg "Quantiles.windowed: window and every must be positive";
  let last = List.fold_left (fun acc (step, _) -> max acc step) 0 obs in
  let rec points upto acc =
    if upto - every > last then List.rev acc
    else points (upto + every) (over_range ?bounds ~from:(upto - window) ~upto obs :: acc)
  in
  points every []

let render_key buf name points =
  Printf.bprintf buf "  %s\n" name;
  Printf.bprintf buf "    %8s %6s %8s %8s %8s\n" "step" "n" "p50" "p95" "p99";
  List.iter
    (fun p ->
      if p.count > 0 then
        Printf.bprintf buf "    %8d %6d %8.1f %8.1f %8.1f\n" p.step p.count
          p.p50 p.p95 p.p99)
    points

let report ?window ?every events =
  let buf = Buffer.create 1024 in
  let epochs = TR.epochs events in
  let n_epochs = List.length epochs in
  List.iteri
    (fun i epoch ->
      let span = TR.last_step epoch in
      let every =
        match every with Some e -> e | None -> max 1 (span / 16)
      in
      let window = match window with Some w -> w | None -> 4 * every in
      if n_epochs > 1 then
        Printf.bprintf buf "-- epoch %d/%d --\n" (i + 1) n_epochs;
      Printf.bprintf buf
        "windowed quantiles (window=%d steps, every=%d steps)\n" window every;
      let rendered =
        List.fold_left
          (fun any key ->
            match series key epoch with
            | [] -> any
            | obs ->
              render_key buf (key_name key) (windowed ~window ~every obs);
              true)
          false all_keys
      in
      if not rendered then
        Buffer.add_string buf "  (no latency or wait events in capture)\n")
    epochs;
  if epochs = [] then Buffer.add_string buf "(empty capture)\n";
  Buffer.contents buf
