(** Offline windowed quantiles over a JSONL trace capture.

    The offline mirror of the engine's online sliding windows
    ({!Oib_obs.Window}): extract a latency/wait series from the raw
    events of one epoch, then replay a sliding window over it and report
    p50/p95/p99 at a fixed cadence. Because both sides bucket through
    the same {!Oib_obs.Hist} bounds, an offline point computed with
    [window = slots * every] agrees with the online
    [window.<name>.p99] samples to within one bucket (the tick-boundary
    step can land on either side, hence "within one bucket", not
    exactly). *)

type key = Txn_latency | Fg_latency | Latch_wait | Lock_wait

val all_keys : key list

val key_name : key -> string
(** ["txn_latency"], ["fg_latency"], ["latch_wait"], ["lock_wait"]. *)

val series : key -> Oib_obs.Event.stamped list -> (int * int) list
(** [(step, value)] observations in trace order. [Txn_latency] covers
    commits and aborts; [Fg_latency] commits only (matching the online
    [fg.latency] window); the wait keys take the [waited] field of
    acquisition events. *)

type point = {
  step : int;  (** right edge of the window (inclusive) *)
  count : int;
  p50 : float;
  p95 : float;
  p99 : float;
}

val over_range :
  ?bounds:int array -> from:int -> upto:int -> (int * int) list -> point
(** Exact-bucket percentiles of the observations with
    [from < step <= upto]; [point.step = upto]. *)

val windowed :
  ?bounds:int array ->
  window:int ->
  every:int ->
  (int * int) list ->
  point list
(** One {!point} at each step [every, 2*every, ...] up to (and covering)
    the last observation, each over the trailing [window] steps. Raises
    [Invalid_argument] unless [window > 0 && every > 0]. *)

val report : ?window:int -> ?every:int -> Oib_obs.Event.stamped list -> string
(** Render windowed quantile tables for every {!key} with data, one
    section per engine epoch. When omitted, [every] defaults to roughly
    1/16 of the epoch's span and [window] to [4 * every]. *)
