(* Offline profile aggregation: fold a trace's [Prof_sample] events into
   the same weighted stacks the online profiler keeps, then slice them —
   folded output for flamegraph tooling, top-down and bottom-up tables,
   wait-state breakdowns per build phase and per txn class, blocker
   attribution edges, and the diff algebra for comparing two runs.

   Frame construction is shared with the online side
   ([Oib_obs.Profiler.frames]), so `oib-prof folded` over a capture is
   byte-identical to the tree the live engine accumulated. *)

module Event = Oib_obs.Event
module Profiler = Oib_obs.Profiler

type sample = {
  step : int;
  fiber : int;
  fname : string;
  state : string;
  path : string;
  resource : string;
  blocker : string;
}

let samples events =
  List.filter_map
    (fun (e : Event.stamped) ->
      match e.event with
      | Event.Prof_sample { fiber; fname; state; path; resource; blocker } ->
        Some { step = e.step; fiber; fname; state; path; resource; blocker }
      | _ -> None)
    events

let frames_of s =
  Profiler.frames ~fname:s.fname ~path:s.path ~state:s.state
    ~resource:s.resource

(* --- weighted stacks: path string -> weight --- *)

let bump tbl key n =
  Hashtbl.replace tbl key (n + Option.value (Hashtbl.find_opt tbl key) ~default:0)

let sorted_pairs tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let weights events =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun s -> bump tbl (String.concat ";" (frames_of s)) 1)
    (samples events);
  sorted_pairs tbl

let folded events =
  let b = Buffer.create 1024 in
  List.iter (fun (path, w) -> Printf.bprintf b "%s %d\n" path w) (weights events);
  Buffer.contents b

let total_weight events = List.length (samples events)

let by_state events =
  let tbl = Hashtbl.create 8 in
  List.iter (fun s -> bump tbl s.state 1) (samples events);
  sorted_pairs tbl

let by_fiber events =
  let tbl = Hashtbl.create 8 in
  List.iter (fun s -> bump tbl s.fname 1) (samples events);
  sorted_pairs tbl

(* --- hierarchy tables --- *)

(* Top-down: every stack prefix is a row; [total] counts samples whose
   stack passes through the prefix, [self] those ending exactly there.
   Rows in lexicographic path order, so children follow their parent. *)
let top_down events =
  let tbl = Hashtbl.create 64 in
  let row path =
    match Hashtbl.find_opt tbl path with
    | Some r -> r
    | None ->
      let r = (ref 0, ref 0) in
      Hashtbl.replace tbl path r;
      r
  in
  List.iter
    (fun s ->
      let fs = frames_of s in
      let rec prefixes acc = function
        | [] -> ()
        | f :: rest ->
          let acc = if acc = "" then f else acc ^ ";" ^ f in
          let total, self = row acc in
          incr total;
          if rest = [] then incr self;
          prefixes acc rest
      in
      prefixes "" fs)
    (samples events);
  Hashtbl.fold (fun path (total, self) acc -> (path, !total, !self) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

(* Bottom-up: one row per frame; [total] counts samples containing the
   frame anywhere, [self] those whose innermost frame it is. Sorted by
   self descending, then name — "which leaves cost the most". *)
let bottom_up events =
  let tbl = Hashtbl.create 64 in
  let row f =
    match Hashtbl.find_opt tbl f with
    | Some r -> r
    | None ->
      let r = (ref 0, ref 0) in
      Hashtbl.replace tbl f r;
      r
  in
  List.iter
    (fun s ->
      let fs = frames_of s in
      let uniq = List.sort_uniq String.compare fs in
      List.iter (fun f -> incr (fst (row f))) uniq;
      match List.rev fs with
      | leaf :: _ -> incr (snd (row leaf))
      | [] -> ())
    (samples events);
  Hashtbl.fold (fun f (total, self) acc -> (f, !total, !self) :: acc) tbl []
  |> List.sort (fun (fa, _, sa) (fb, _, sb) ->
         if sa <> sb then compare sb sa else String.compare fa fb)

(* --- wait-state breakdowns --- *)

(* (index, phase, enter_step) intervals from the Ib_phase markers; the
   last phase of each build runs to max_int *)
let phase_intervals events =
  let rec go acc = function
    | [] -> List.rev acc
    | (e : Event.stamped) :: rest -> (
      match e.event with
      | Event.Ib_phase { index; phase } -> go ((index, phase, e.step) :: acc) rest
      | _ -> go acc rest)
  in
  go [] events

(* waits per build phase: each non-oncpu sample lands in the phase (of
   each live build) whose interval covers its step *)
let waits_by_phase events =
  let intervals = phase_intervals events in
  let ends =
    (* enter step of the next phase of the same build *)
    List.map
      (fun (index, phase, t0) ->
        let t1 =
          List.fold_left
            (fun acc (i, _, t) ->
              if i = index && t > t0 && t < acc then t else acc)
            max_int intervals
        in
        (index, phase, t0, t1))
      intervals
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if s.state <> "oncpu" then
        List.iter
          (fun (index, phase, t0, t1) ->
            if s.step >= t0 && s.step < t1 then
              bump tbl (index, phase, s.state) 1)
          ends)
    (samples events);
  Hashtbl.fold (fun (i, p, st) w acc -> (i, p, st, w) :: acc) tbl []
  |> List.sort compare

(* waits per txn class = normalized fiber name x state: "how do workers
   wait" vs "how does the ib wait" *)
let waits_by_class events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s -> if s.state <> "oncpu" then bump tbl (s.fname, s.state) 1)
    (samples events);
  Hashtbl.fold (fun (f, st) w acc -> (f, st, w) :: acc) tbl []
  |> List.sort compare

(* blocker attribution: (state, resource, blocker fiber) -> weight *)
let wait_edges events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if s.state <> "oncpu" && s.blocker <> "" then
        List.iter
          (fun b -> bump tbl (s.state, s.resource, Profiler.norm b) 1)
          (String.split_on_char ',' s.blocker))
    (samples events);
  Hashtbl.fold (fun (st, r, b) w acc -> (st, r, b, w) :: acc) tbl []
  |> List.sort compare

(* --- diff algebra --- *)

(* Signed per-path delta between two runs: positive = B spends more
   weight there than A. Paths equal in both runs are dropped; sorted by
   |delta| descending then path, so the headline regression leads. A
   self-diff is therefore always empty. *)
let diff a_events b_events =
  let a = weights a_events and b = weights b_events in
  let tbl = Hashtbl.create 64 in
  List.iter (fun (p, w) -> bump tbl p (-w)) a;
  List.iter (fun (p, w) -> bump tbl p w) b;
  Hashtbl.fold
    (fun p d acc -> if d = 0 then acc else (p, d) :: acc)
    tbl []
  |> List.sort (fun (pa, da) (pb, db) ->
         if abs da <> abs db then compare (abs db) (abs da)
         else String.compare pa pb)
