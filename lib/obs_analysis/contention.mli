(** Contention profiling over one epoch's events.

    Pairs [Lock_wait]/[Lock_acquired] (by owner and target) and
    [Latch_wait]/[Latch_acquired] (by fiber, latch, mode) into wait
    intervals, then aggregates per target and per blocker. Blocker
    identities come from the wait event's emission-time ["blockers"]
    field; each listed blocker is co-charged the full wait. *)

val is_ib_owner : int -> bool
(** Lock-owner ids at or above 1,000,000 belong to the index builder
    (online, via-primary, or GC — see [Ib.ib_owner]). *)

val owner_label : int -> string
(** ["txn:17"], ["ib:10"], ["ib-offline:2"], ["ib-gc:10"]. *)

val parse_blockers : string -> int list
(** Decode the comma-separated ["blockers"] field. *)

type wkind = Lock | Latch

type wait = {
  w_kind : wkind;
  w_fiber : int;
  w_fiber_name : string;
  w_owner : int;  (** lock owner; [-1] for latch waits *)
  w_target : string;  (** lock target, or ["latch:<name>"] *)
  w_mode : string;
  w_blockers : int list;
  w_t0 : int;
  mutable w_t1 : int option;  (** acquire step; [None] = never granted *)
}

val waits : Oib_obs.Event.stamped list -> wait list
(** All wait intervals, in start order. *)

val wait_steps : end_step:int -> wait -> int
(** Duration; an unresolved wait is charged up to [end_step]. *)

type target_row = {
  t_target : string;
  t_waits : int;
  t_steps : int;
  t_max : int;
}

val by_target : end_step:int -> wait list -> target_row list
(** Per-key/per-page wait totals, heaviest first. *)

type blocker_row = {
  b_owner : int;
  b_is_ib : bool;
  b_victims : int;
  b_waits : int;
  b_steps : int;
}

val blockers : end_step:int -> wait list -> blocker_row list
(** Who blocked whom: per blocking owner, distinct victims, wait count
    and co-charged steps, heaviest first. Lock waits only. *)
