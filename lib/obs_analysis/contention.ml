(* The contention profiler: fold lock/latch wait events (from ONE epoch)
   into per-target wait totals and a blocker-attribution table.

   Lock waits carry a "blockers" field recorded at emission time — the
   incompatible holders plus queued waiters ahead of the request — because
   immediate grants emit no event, so the grant state cannot be
   reconstructed offline. Each blocker listed on a wait is co-charged the
   full wait duration (they all had to clear before the grant). *)

module Event = Oib_obs.Event

(* Index-builder lock-owner id space (see Ib.ib_owner): online build is
   1_000_000 + index, build-via-primary adds 250_000, GC adds 500_000. *)
let is_ib_owner o = o >= 1_000_000

let owner_label o =
  if o >= 1_500_000 then Printf.sprintf "ib-gc:%d" (o - 1_500_000)
  else if o >= 1_250_000 then Printf.sprintf "ib-offline:%d" (o - 1_250_000)
  else if o >= 1_000_000 then Printf.sprintf "ib:%d" (o - 1_000_000)
  else Printf.sprintf "txn:%d" o

let parse_blockers s =
  if s = "" then []
  else String.split_on_char ',' s |> List.filter_map int_of_string_opt

type wkind = Lock | Latch

type wait = {
  w_kind : wkind;
  w_fiber : int;
  w_fiber_name : string;
  w_owner : int; (* lock owner; -1 for latch waits *)
  w_target : string; (* lock target, or "latch:<name>" *)
  w_mode : string;
  w_blockers : int list; (* locks only; latch holders are not recorded *)
  w_t0 : int;
  mutable w_t1 : int option; (* acquire step; None = never granted *)
}

let waits events =
  let acc = ref [] in
  let pending_locks = Hashtbl.create 16 (* (owner, target) -> wait *) in
  let pending_latches = Hashtbl.create 16 (* (fiber, latch, mode) -> wait *) in
  List.iter
    (fun (s : Event.stamped) ->
      match s.event with
      | Event.Lock_wait { owner; target; mode; blockers } ->
        let w =
          {
            w_kind = Lock;
            w_fiber = s.fiber;
            w_fiber_name = s.fiber_name;
            w_owner = owner;
            w_target = target;
            w_mode = mode;
            w_blockers = parse_blockers blockers;
            w_t0 = s.step;
            w_t1 = None;
          }
        in
        acc := w :: !acc;
        Hashtbl.replace pending_locks (owner, target) w
      | Event.Lock_acquired { owner; target; _ } -> (
        match Hashtbl.find_opt pending_locks (owner, target) with
        | Some w ->
          w.w_t1 <- Some s.step;
          Hashtbl.remove pending_locks (owner, target)
        | None -> ())
      | Event.Latch_wait { latch; mode; _ } ->
        let w =
          {
            w_kind = Latch;
            w_fiber = s.fiber;
            w_fiber_name = s.fiber_name;
            w_owner = -1;
            w_target = "latch:" ^ latch;
            w_mode = mode;
            w_blockers = [];
            w_t0 = s.step;
            w_t1 = None;
          }
        in
        acc := w :: !acc;
        Hashtbl.replace pending_latches (s.fiber, latch, mode) w
      | Event.Latch_acquired { latch; mode; _ } -> (
        match Hashtbl.find_opt pending_latches (s.fiber, latch, mode) with
        | Some w ->
          w.w_t1 <- Some s.step;
          Hashtbl.remove pending_latches (s.fiber, latch, mode)
        | None -> ())
      | _ -> ())
    events;
  List.rev !acc

(* Duration of a wait; one that never resolved (crash cut it off) is
   charged up to [end_step]. *)
let wait_steps ~end_step w =
  max 0 (Option.value w.w_t1 ~default:end_step - w.w_t0)

type target_row = {
  t_target : string;
  t_waits : int;
  t_steps : int;
  t_max : int;
}

let by_target ~end_step ws =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun w ->
      let d = wait_steps ~end_step w in
      let row =
        Option.value
          (Hashtbl.find_opt tbl w.w_target)
          ~default:{ t_target = w.w_target; t_waits = 0; t_steps = 0; t_max = 0 }
      in
      Hashtbl.replace tbl w.w_target
        {
          row with
          t_waits = row.t_waits + 1;
          t_steps = row.t_steps + d;
          t_max = max row.t_max d;
        })
    ws;
  Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
  |> List.sort (fun a b ->
         compare (b.t_steps, b.t_waits) (a.t_steps, a.t_waits))

type blocker_row = {
  b_owner : int;
  b_is_ib : bool;
  b_victims : int; (* distinct blocked owners *)
  b_waits : int;
  b_steps : int; (* co-charged wait steps *)
}

let blockers ~end_step ws =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun w ->
      if w.w_kind = Lock then
        let d = wait_steps ~end_step w in
        List.iter
          (fun b ->
            let victims, waits, steps =
              Option.value (Hashtbl.find_opt tbl b)
                ~default:(Hashtbl.create 4, 0, 0)
            in
            Hashtbl.replace victims w.w_owner ();
            Hashtbl.replace tbl b (victims, waits + 1, steps + d))
          w.w_blockers)
    ws;
  Hashtbl.fold
    (fun b (victims, waits, steps) acc ->
      {
        b_owner = b;
        b_is_ib = is_ib_owner b;
        b_victims = Hashtbl.length victims;
        b_waits = waits;
        b_steps = steps;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b ->
         compare (b.b_steps, b.b_waits) (a.b_steps, a.b_waits))
