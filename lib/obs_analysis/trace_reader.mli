(** JSONL trace ingestion: decode dumped events, split into epochs.

    The inverse of {!Oib_obs.Event.to_json}: every event kind the engine
    can emit decodes back to the same constructor, so analyses work on
    typed events rather than raw JSON. *)

type error = { line_no : int; line : string; msg : string }

val parse_line : string -> (Oib_obs.Event.stamped, string) result

val of_lines : string list -> Oib_obs.Event.stamped list * error list
(** Blank lines are skipped; bad lines are collected, not fatal. *)

val of_string : string -> Oib_obs.Event.stamped list * error list
val of_file : string -> Oib_obs.Event.stamped list * error list

val epochs :
  Oib_obs.Event.stamped list -> Oib_obs.Event.stamped list list
(** Split a capture into engine incarnations: a new epoch starts at every
    [Epoch] marker (which becomes its first event), right after a [Crash]
    (which stays the last event of its epoch), and wherever the step
    clock jumps backwards (a restart that emitted no marker). Within an
    epoch, steps are nondecreasing by construction. *)

val nth_epoch :
  Oib_obs.Event.stamped list -> int -> Oib_obs.Event.stamped list option
(** The [n]-th (0-based) epoch of {!epochs}, or [None] when out of
    range — the shared [--epoch N] filter of the offline tools. *)

val last_step : Oib_obs.Event.stamped list -> int
(** Highest step stamp in the list (0 when empty). *)
