(** Per-engine observability hub: event dispatch, flight recorder,
    histogram registry.

    Every subsystem reaches its engine's trace (usually via the scheduler)
    and emits {!Event.t}s guarded by {!tracing}; the default {!null} trace
    makes all of it a no-op. The engine wires {!set_clock}/{!set_fiber} to
    the scheduler so every event is stamped with the virtual step clock
    and the emitting fiber. *)

type t

val null : t
(** The inert trace: emission, observation and dump are no-ops. Default
    everywhere so untraced runs pay (almost) nothing. *)

val create : unit -> t

val is_null : t -> bool

val set_clock : t -> (unit -> int) -> unit
val set_fiber : t -> (unit -> (int * string) option) -> unit

val now : t -> int
(** Current virtual time (0 until a clock is wired). *)

val tracing : t -> bool
(** True when at least one sink or a flight recorder is attached — check
    this before allocating an event at a hot emission site. *)

val emit : t -> Event.t -> unit
(** Stamp and dispatch to the flight recorder and every sink. *)

(** {2 Sanitizer probes}

    A second, independent channel for {!Probe.event}s: one consumer (the
    oib-san sanitizer), no rendering, no recorder. Kept apart from the
    sink list so sanitizing and tracing can be enabled separately, and so
    probe payloads never leak into the JSONL event schema. *)

val probing : t -> bool
(** True when a probe consumer is installed — check before building a
    probe event at a hot emission site. *)

val set_probe : t -> (int -> Probe.event -> unit) option -> unit
(** Install (or clear) the probe consumer. It receives the emitting
    fiber id ([-1] outside any fiber) and the event, and must not block:
    it runs inside scheduler, latch and lock-manager critical sections. *)

val probe_emit : t -> Probe.event -> unit
(** Stamp the current fiber and hand the event to the consumer (no-op
    when none is installed). *)

val add_sink : t -> name:string -> (Event.stamped -> unit) -> unit
val remove_sink : t -> name:string -> unit

val attach_recorder : t -> capacity:int -> Flight_recorder.t
(** Install a ring-buffer flight recorder (replaces any previous one). *)

val recorder : t -> Flight_recorder.t option

val failure : t -> reason:string -> unit
(** Failure boundary (deadlock / crash / oracle violation): emits a
    [Crash] event, renders the flight-recorder dump, stores it (see
    {!last_dump}) and passes it to the dump consumer (default: stderr). *)

val set_on_dump : t -> (string -> unit) -> unit
val last_dump : t -> string option

(** {2 Spans}

    A span is a nested virtual-time interval: [span_begin] emits
    [Span_begin] with the innermost open span of the current fiber as its
    parent and returns a handle; [span_end] emits the matching [Span_end].
    Handles are plain ints; [0] (returned when not tracing) is inert.
    Ends may arrive on a different fiber than the begin and out of LIFO
    order — both are legal. Open stacks are wiped on {!failure} and when
    a new scheduler is wired, so stale handles end as no-ops. *)

val span_begin : t -> cat:string -> name:string -> int
val span_end : t -> int -> unit

val with_span : t -> cat:string -> name:string -> (unit -> 'a) -> 'a
(** Bracket [f] in a span; the end is emitted even if [f] raises. *)

val open_spans : t -> fiber:int -> (string * string) list
(** The [(cat, name)] of every span currently open on [fiber], innermost
    first — the profiler's sampling view. Empty when not tracing. *)

(** {2 Histograms} *)

val hist : ?bounds:int array -> t -> string -> Hist.t
(** Find or create the named histogram ([bounds] applies on creation). *)

val observe : t -> string -> int -> unit
(** Record into the named histogram (created with default bounds). *)

val find_hist : t -> string -> Hist.t option

val hists : t -> (string * Hist.t) list
(** All histograms, sorted by name. *)

val pp_hists : Format.formatter -> t -> unit

(** {2 Stock sinks} *)

val add_jsonl_buffer_sink : t -> name:string -> Buffer.t -> unit

val add_jsonl_file_sink : t -> path:string -> unit -> unit
(** Open [path], stream every event as a JSONL line; returns the closer
    (also detaches the sink). *)
