(** Sliding-window quantile trackers over virtual time.

    A [Window.t] is a ring of [slots] fixed-bucket {!Hist}s. Observations
    land in the head slot; {!rotate} — called by the sampler once per
    tick — retires the oldest slot and opens a fresh head. Percentiles
    merge all live slots, so right after a rotation the window covers the
    last [slots] ticks of observations and each tick's worth of data ages
    out wholesale [slots] ticks later. Memory and update cost are
    independent of the observation count, which is what makes an online
    p99 over "the last N ticks" cheap enough to read on every tick.

    Also provides {!Ewma}, an exponentially weighted moving average of an
    event rate fed with per-tick counter deltas. *)

type t

val create : ?bounds:int array -> slots:int -> unit -> t
(** [bounds] defaults to {!Hist.default_bounds}. [Invalid_argument] if
    [slots < 1]. *)

val observe : t -> int -> unit
(** Record one observation into the current (head) slot. *)

val rotate : t -> unit
(** Advance the ring one tick: the oldest slot's observations are
    discarded and a fresh head slot opens. *)

val slots : t -> int
val rotations : t -> int
(** Total [rotate] calls since creation. *)

val bounds : t -> int array

val merged : t -> Hist.t
(** Fresh histogram merging every live slot (the full window). *)

val count : t -> int
(** Observations currently inside the window. *)

val percentile : t -> float -> float
(** [percentile t p], [p] in [0,1], over the merged window; 0.0 when the
    window holds no observations. *)

val to_json : t -> string

(** EWMA event rates (events per scheduler step). *)
module Ewma : sig
  type t

  val create : ?alpha:float -> unit -> t
  (** [alpha] in (0,1], default 0.3: weight of the newest tick. The first
      tick primes the rate directly. *)

  val tick : t -> count:int -> steps:int -> unit
  (** Fold in one tick covering [steps] scheduler steps during which
      [count] events occurred. Ignored if [steps <= 0]. *)

  val rate : t -> float
  (** Smoothed events per step (0.0 before the first tick). *)
end
