(** Typed trace events.

    One constructor per observable engine action. Payloads are primitives
    only (ints / strings) so that [oib_obs] can sit below every other
    library: subsystems render their own types (lock names, modes, RIDs)
    to strings at the emission site. *)

type t =
  | Fiber_spawn of { fiber : int; name : string }
  | Latch_wait of { latch : string; mode : string; holders : string }
      (** [holders] is the comma-joined names of the fibers currently
          holding the latch, oldest grant first — the blockers the
          profiler charges this wait to *)
  | Latch_acquired of { latch : string; mode : string; waited : int }
  | Latch_released of { latch : string; mode : string }
  | Lock_wait of { owner : int; target : string; mode : string; blockers : string }
  | Lock_acquired of { owner : int; target : string; mode : string; waited : int }
  | Lock_denied of { owner : int; target : string; mode : string; blockers : string }
  | Lock_released_all of { owner : int }
  | Page_read of { page : int }
  | Page_write of { page : int }
  | Log_append of { lsn : int; kind : string; bytes : int }
  | Log_flush of { upto : int }
  | Txn_begin of { txn : int }
  | Txn_commit of { txn : int; latency : int }
  | Txn_abort of { txn : int; latency : int }
  | Txn_rollback_step of { txn : int; lsn : int }
  | Ib_phase of { index : int; phase : string }
  | Ib_checkpoint of { index : int; stage : string }
  | Index_state of { index : int; state : string }
      (** lifecycle transition ([disabled|write-only|readable]), emitted
          when the catalog state changes — including recovery downgrades *)
  | Ib_range_commit of { index : int; lo : int; hi : int }
      (** the builder sealed heap pages [lo..hi] as scanned: a resumed
          build will never rescan them *)
  | Ib_throttle of { level : int; reason : string }
      (** admission-control level change; [reason] names the health
          signal edge that drove it *)
  | Sidefile_append of { sidefile : int; insert : bool; pos : int }
  | Sidefile_drained of { sidefile : int; from_pos : int; upto : int }
  | Checkpoint of { scope : string }
  | Recovery_step of { step : string; detail : string }
  | Crash of { reason : string }
  | Span_begin of { span : int; parent : int; cat : string; name : string }
  | Span_end of { span : int }
  | Sample of { key : string; value : int }
      (** One point of a named time series, emitted in batches by the
          periodic sampler. The key namespace is a contract with the
          offline tools (oib-trace, oib-top, bench): within one batch
          every key appears at most once, and keys follow
          - [metrics.<counter>] — the engine's global counter record;
          - [pool.*] / [wal.*] — subsystem gauges (dirty/cached pages,
            unflushed WAL bytes) and role-labelled IO counters such as
            [pool.page_read{role=scan}];
          - [window.<name>.p50|.p95|.p99|.count] — sliding-window
            quantiles (e.g. [window.fg.latency.p99]);
          - [rate.<name>] — EWMA rates scaled to events per 1000 steps;
          - [build.<index_id>.keys_processed|backlog|phase] and
            [build.<index_id>.cost.pages|log_bytes|wait_steps|compares]
            — per-build progress and attributed resource cost;
          - [signal.<name>] — health-signal state, 0 or 1. *)
  | Prof_sample of {
      fiber : int;
      fname : string;
      state : string;
      path : string;
      resource : string;
      blocker : string;
    }
      (** One profiler observation of one live fiber, emitted by the
          step-hook sampler (stamped as ["main"]: sampling happens
          between fiber steps). [state] is exactly one of
          [oncpu|latch|lock|io|logflush|sched]; [path] is the fiber's
          open-span stack as ';'-joined [cat:name] segments,
          outermost first, with digit runs normalized to ['#'];
          [resource] names the blocking resource (empty when on-cpu)
          and [blocker] the fiber name(s) holding it (comma-joined,
          empty when unknown). *)
  | Epoch of { label : string }

type stamped = { step : int; fiber : int; fiber_name : string; event : t }
(** An event stamped with the scheduler's virtual step clock and the
    emitting fiber ([fiber] = -1 / ["main"] outside any fiber). *)

val kind : t -> string
(** Stable dotted tag, e.g. ["latch.wait"], ["ib.phase"]. *)

val pp : Format.formatter -> t -> unit
val pp_stamped : Format.formatter -> stamped -> unit

val to_line : stamped -> string
(** One human-readable line (what the flight-recorder dump prints). *)

val to_json : stamped -> string
(** One JSON object (one JSONL line), no trailing newline. *)

val json_escape : string -> string
