type labels = (string * string) list

type counter = { mutable v : int }

type rate = { ewma : Window.Ewma.t; mutable last : int option }

type entry =
  | E_counter of counter
  | E_gauge of (unit -> int)
  | E_hist of Hist.t
  | E_window of Window.t
  | E_rate of rate

type t = { entries : (string, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 64 }

(* Stable rendered name: [name] alone, or [name{k=v,...}] with label
   pairs sorted by key so the same logical series always renders the
   same string. *)
let render_name ?(labels = []) name =
  match labels with
  | [] -> name
  | _ ->
    let sorted =
      List.sort (fun (a, _) (b, _) -> String.compare a b) labels
    in
    let b = Buffer.create (String.length name + 16) in
    Buffer.add_string b name;
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b k;
        Buffer.add_char b '=';
        Buffer.add_string b v)
      sorted;
    Buffer.add_char b '}';
    Buffer.contents b

let kind_of = function
  | E_counter _ -> "counter"
  | E_gauge _ -> "gauge"
  | E_hist _ -> "histogram"
  | E_window _ -> "window"
  | E_rate _ -> "rate"

let clash name existing wanted =
  invalid_arg
    (Printf.sprintf "Registry: %S already registered as a %s, wanted a %s"
       name (kind_of existing) wanted)

(* Find-or-create: re-registering the same (name, kind) returns the
   existing entry, so call sites can look series up by name without
   threading handles around. A kind mismatch is a programming error. *)
let intern t ~name ~kind ~make ~cast =
  match Hashtbl.find_opt t.entries name with
  | Some e -> (match cast e with Some x -> x | None -> clash name e kind)
  | None ->
    let e, x = make () in
    Hashtbl.replace t.entries name e;
    x

let counter t ?labels name =
  let name = render_name ?labels name in
  intern t ~name ~kind:"counter"
    ~make:(fun () ->
      let c = { v = 0 } in
      (E_counter c, c))
    ~cast:(function E_counter c -> Some c | _ -> None)

let incr c = c.v <- c.v + 1
let add c n = c.v <- c.v + n
let counter_value c = c.v

(* Gauges replace on re-registration: a derived gauge's closure must be
   re-pointed at fresh subsystems after a crash/restart. *)
let gauge t ?labels name read =
  let name = render_name ?labels name in
  match Hashtbl.find_opt t.entries name with
  | None | Some (E_gauge _) -> Hashtbl.replace t.entries name (E_gauge read)
  | Some e -> clash name e "gauge"

let hist t ?bounds ?labels name =
  let name = render_name ?labels name in
  intern t ~name ~kind:"histogram"
    ~make:(fun () ->
      let h = Hist.create ?bounds () in
      (E_hist h, h))
    ~cast:(function E_hist h -> Some h | _ -> None)

let window t ?bounds ?(slots = 8) ?labels name =
  let name = render_name ?labels name in
  intern t ~name ~kind:"window"
    ~make:(fun () ->
      let w = Window.create ?bounds ~slots () in
      (E_window w, w))
    ~cast:(function E_window w -> Some w | _ -> None)

(* Lookup by a name that exists as a different kind is the same
   programming error [intern] catches on registration — raise, don't
   shadow: a silent None here would make the caller's observations
   vanish. A missing name stays None so fire-and-forget observation
   sites work before the window is wired. *)
let find_window t name =
  match Hashtbl.find_opt t.entries name with
  | Some (E_window w) -> Some w
  | Some e -> clash name e "window"
  | None -> None

let observe_window t name v =
  match find_window t name with
  | Some w -> Window.observe w v
  | None -> ()

let rotate_windows t =
  Hashtbl.iter
    (fun _ e -> match e with E_window w -> Window.rotate w | _ -> ())
    t.entries

let rate t ?alpha ?labels name =
  let name = render_name ?labels name in
  intern t ~name ~kind:"rate"
    ~make:(fun () ->
      let r = { ewma = Window.Ewma.create ?alpha (); last = None } in
      (E_rate r, r))
    ~cast:(function E_rate r -> Some r | _ -> None)

let rate_observe r ~total ~steps =
  (match r.last with
  | Some prev -> Window.Ewma.tick r.ewma ~count:(total - prev) ~steps
  | None -> ());
  r.last <- Some total

let rate_value r = Window.Ewma.rate r.ewma

type value =
  | Int of int
  | Float of float
  | Histogram of Hist.t
  | Windowed of Window.t

let sorted_entries t =
  Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.entries []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot t =
  List.map
    (fun (name, e) ->
      let v =
        match e with
        | E_counter c -> Int c.v
        | E_gauge read -> Int (read ())
        | E_hist h -> Histogram h
        | E_window w -> Windowed w
        | E_rate r -> Float (rate_value r)
      in
      (name, v))
    (sorted_entries t)

(* Flattened integer view for Sample events. Windows expand to
   window.<name>.p50/.p95/.p99/.count (the prefix marks them as sliding
   quantiles, not raw series); rates scale to events per 1000 steps so
   they survive the integer sample channel. Plain histograms are
   post-hoc artifacts and are not sampled. *)
let sample_values t =
  List.concat_map
    (fun (name, e) ->
      match e with
      | E_counter c -> [ (name, c.v) ]
      | E_gauge read -> [ (name, read ()) ]
      | E_hist _ -> []
      | E_window w ->
        let k suffix = "window." ^ name ^ suffix in
        [
          (k ".p50", int_of_float (Float.round (Window.percentile w 0.50)));
          (k ".p95", int_of_float (Float.round (Window.percentile w 0.95)));
          (k ".p99", int_of_float (Float.round (Window.percentile w 0.99)));
          (k ".count", Window.count w);
        ]
      | E_rate r ->
        [ (name, int_of_float (Float.round (rate_value r *. 1000.0))) ])
    (sorted_entries t)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, e) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":" (json_escape name));
      match e with
      | E_counter c -> Buffer.add_string b (string_of_int c.v)
      | E_gauge read -> Buffer.add_string b (string_of_int (read ()))
      | E_hist h -> Buffer.add_string b (Hist.to_json h)
      | E_window w -> Buffer.add_string b (Window.to_json w)
      | E_rate r -> Buffer.add_string b (Printf.sprintf "%.4f" (rate_value r)))
    (sorted_entries t);
  Buffer.add_char b '}';
  Buffer.contents b
