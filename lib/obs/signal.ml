type change = Raised | Cleared

type t = {
  name : string;
  mutable raise_above : float;
  mutable clear_below : float;
  mutable source : unit -> float;
  mutable active : bool;
  mutable value : float;
  mutable flips : int;
}

type set = {
  signals : (string, t) Hashtbl.t;
  mutable subscribers : (t -> change -> unit) list; (* newest first *)
}

let create_set () = { signals = Hashtbl.create 8; subscribers = [] }

let register set ~name ~raise_above ~clear_below ~source =
  if clear_below > raise_above then
    invalid_arg
      (Printf.sprintf "Signal.register %S: clear_below > raise_above" name);
  match Hashtbl.find_opt set.signals name with
  | Some s ->
    (* Re-wiring (e.g. after a crash the source closes over fresh
       subsystems): keep the hysteresis state, replace everything else. *)
    s.raise_above <- raise_above;
    s.clear_below <- clear_below;
    s.source <- source
  | None ->
    Hashtbl.replace set.signals name
      {
        name;
        raise_above;
        clear_below;
        source;
        active = false;
        value = 0.0;
        flips = 0;
      }

let subscribe set f = set.subscribers <- f :: set.subscribers

let signals set =
  Hashtbl.fold (fun _ s acc -> s :: acc) set.signals []
  |> List.sort (fun a b -> String.compare a.name b.name)

let find set name = Hashtbl.find_opt set.signals name

let name s = s.name
let active s = s.active
let value s = s.value
let flips s = s.flips
let thresholds s = (s.raise_above, s.clear_below)

(* One deterministic pass, signals in name order, subscribers (in
   subscription order) fired synchronously on each transition. *)
let eval set =
  let changes = ref [] in
  List.iter
    (fun s ->
      let v = s.source () in
      s.value <- v;
      let change =
        if (not s.active) && v >= s.raise_above then begin
          s.active <- true;
          Some Raised
        end
        else if s.active && v <= s.clear_below then begin
          s.active <- false;
          Some Cleared
        end
        else None
      in
      match change with
      | Some c ->
        s.flips <- s.flips + 1;
        List.iter (fun f -> f s c) (List.rev set.subscribers);
        changes := (s, c) :: !changes
      | None -> ())
    (signals set);
  List.rev !changes
