(* The event taxonomy of the engine. Every constructor is one observable
   thing that happens during a run: a latch or lock transition, a page
   I/O, a log append/flush, a transaction lifecycle step, an index-builder
   phase transition, side-file traffic, a checkpoint, or a crash/recovery
   step. Events carry only primitive payloads (ints, strings) so this
   library sits below every subsystem in the dependency order. *)

type t =
  | Fiber_spawn of { fiber : int; name : string }
  | Latch_wait of { latch : string; mode : string; holders : string }
  | Latch_acquired of { latch : string; mode : string; waited : int }
  | Latch_released of { latch : string; mode : string }
  | Lock_wait of { owner : int; target : string; mode : string; blockers : string }
  | Lock_acquired of { owner : int; target : string; mode : string; waited : int }
  | Lock_denied of { owner : int; target : string; mode : string; blockers : string }
      (** the request would deadlock; the caller becomes a victim *)
  | Lock_released_all of { owner : int }
  | Page_read of { page : int }
  | Page_write of { page : int }
  | Log_append of { lsn : int; kind : string; bytes : int }
  | Log_flush of { upto : int }
  | Txn_begin of { txn : int }
  | Txn_commit of { txn : int; latency : int }
  | Txn_abort of { txn : int; latency : int }
  | Txn_rollback_step of { txn : int; lsn : int }
  | Ib_phase of { index : int; phase : string }
  | Ib_checkpoint of { index : int; stage : string }
  | Index_state of { index : int; state : string }
  | Ib_range_commit of { index : int; lo : int; hi : int }
  | Ib_throttle of { level : int; reason : string }
  | Sidefile_append of { sidefile : int; insert : bool; pos : int }
  | Sidefile_drained of { sidefile : int; from_pos : int; upto : int }
  | Checkpoint of { scope : string }
  | Recovery_step of { step : string; detail : string }
  | Crash of { reason : string }
  | Span_begin of { span : int; parent : int; cat : string; name : string }
  | Span_end of { span : int }
  | Sample of { key : string; value : int }
  | Prof_sample of {
      fiber : int;
      fname : string;
      state : string;
      path : string;
      resource : string;
      blocker : string;
    }
  | Epoch of { label : string }
      (** engine-incarnation boundary in a multi-run trace; the step clock
          restarts at the next event *)

(* An event stamped with the scheduler's step clock and the fiber that
   produced it ([fiber] = -1, ["main"] outside any fiber). *)
type stamped = { step : int; fiber : int; fiber_name : string; event : t }

let kind = function
  | Fiber_spawn _ -> "fiber.spawn"
  | Latch_wait _ -> "latch.wait"
  | Latch_acquired _ -> "latch.acquired"
  | Latch_released _ -> "latch.released"
  | Lock_wait _ -> "lock.wait"
  | Lock_acquired _ -> "lock.acquired"
  | Lock_denied _ -> "lock.denied"
  | Lock_released_all _ -> "lock.released_all"
  | Page_read _ -> "page.read"
  | Page_write _ -> "page.write"
  | Log_append _ -> "log.append"
  | Log_flush _ -> "log.flush"
  | Txn_begin _ -> "txn.begin"
  | Txn_commit _ -> "txn.commit"
  | Txn_abort _ -> "txn.abort"
  | Txn_rollback_step _ -> "txn.rollback_step"
  | Ib_phase _ -> "ib.phase"
  | Ib_checkpoint _ -> "ib.checkpoint"
  | Index_state _ -> "index.state"
  | Ib_range_commit _ -> "ib.range_commit"
  | Ib_throttle _ -> "ib.throttle"
  | Sidefile_append _ -> "sidefile.append"
  | Sidefile_drained _ -> "sidefile.drained"
  | Checkpoint _ -> "checkpoint"
  | Recovery_step _ -> "recovery.step"
  | Crash _ -> "crash"
  | Span_begin _ -> "span.begin"
  | Span_end _ -> "span.end"
  | Sample _ -> "sample"
  | Prof_sample _ -> "prof.sample"
  | Epoch _ -> "epoch"

(* key=value detail string, shared by the textual dump and pp *)
let detail = function
  | Fiber_spawn { fiber; name } -> Printf.sprintf "fiber=%d name=%s" fiber name
  | Latch_wait { latch; mode; holders } ->
    Printf.sprintf "latch=%s mode=%s holders=%s" latch mode holders
  | Latch_acquired { latch; mode; waited } ->
    Printf.sprintf "latch=%s mode=%s waited=%d" latch mode waited
  | Latch_released { latch; mode } ->
    Printf.sprintf "latch=%s mode=%s" latch mode
  | Lock_wait { owner; target; mode; blockers } ->
    Printf.sprintf "owner=%d target=%s mode=%s blockers=%s" owner target mode
      blockers
  | Lock_acquired { owner; target; mode; waited } ->
    Printf.sprintf "owner=%d target=%s mode=%s waited=%d" owner target mode
      waited
  | Lock_denied { owner; target; mode; blockers } ->
    Printf.sprintf "owner=%d target=%s mode=%s blockers=%s" owner target mode
      blockers
  | Lock_released_all { owner } -> Printf.sprintf "owner=%d" owner
  | Page_read { page } -> Printf.sprintf "page=%d" page
  | Page_write { page } -> Printf.sprintf "page=%d" page
  | Log_append { lsn; kind; bytes } ->
    Printf.sprintf "lsn=%d kind=%s bytes=%d" lsn kind bytes
  | Log_flush { upto } -> Printf.sprintf "upto=%d" upto
  | Txn_begin { txn } -> Printf.sprintf "txn=%d" txn
  | Txn_commit { txn; latency } ->
    Printf.sprintf "txn=%d latency=%d" txn latency
  | Txn_abort { txn; latency } -> Printf.sprintf "txn=%d latency=%d" txn latency
  | Txn_rollback_step { txn; lsn } -> Printf.sprintf "txn=%d lsn=%d" txn lsn
  | Ib_phase { index; phase } -> Printf.sprintf "index=%d phase=%s" index phase
  | Ib_checkpoint { index; stage } ->
    Printf.sprintf "index=%d stage=%s" index stage
  | Index_state { index; state } ->
    Printf.sprintf "index=%d state=%s" index state
  | Ib_range_commit { index; lo; hi } ->
    Printf.sprintf "index=%d lo=%d hi=%d" index lo hi
  | Ib_throttle { level; reason } ->
    Printf.sprintf "level=%d reason=%s" level reason
  | Sidefile_append { sidefile; insert; pos } ->
    Printf.sprintf "sidefile=%d op=%s pos=%d" sidefile
      (if insert then "ins" else "del")
      pos
  | Sidefile_drained { sidefile; from_pos; upto } ->
    Printf.sprintf "sidefile=%d from=%d upto=%d" sidefile from_pos upto
  | Checkpoint { scope } -> Printf.sprintf "scope=%s" scope
  | Recovery_step { step; detail } -> Printf.sprintf "step=%s %s" step detail
  | Crash { reason } -> Printf.sprintf "reason=%s" reason
  | Span_begin { span; parent; cat; name } ->
    Printf.sprintf "span=%d parent=%d cat=%s name=%s" span parent cat name
  | Span_end { span } -> Printf.sprintf "span=%d" span
  | Sample { key; value } -> Printf.sprintf "key=%s value=%d" key value
  | Prof_sample { fiber; fname; state; path; resource; blocker } ->
    Printf.sprintf "fiber=%d fname=%s state=%s path=%s resource=%s blocker=%s"
      fiber fname state path resource blocker
  | Epoch { label } -> Printf.sprintf "label=%s" label

let pp ppf e = Format.fprintf ppf "%-18s %s" (kind e) (detail e)

let pp_stamped ppf s =
  Format.fprintf ppf "step=%-7d %-14s %a" s.step s.fiber_name pp s.event

let to_line s = Format.asprintf "%a" pp_stamped s

(* --- machine-readable JSON (no external dependency) --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fields = function
  (* "id", not "fiber": the stamp already writes a "fiber" key into the
     same JSON object (like Recovery_step's "what" below) *)
  | Fiber_spawn { fiber; name } ->
    [ ("id", `I fiber); ("name", `S name) ]
  | Latch_wait { latch; mode; holders } ->
    [ ("latch", `S latch); ("mode", `S mode); ("holders", `S holders) ]
  | Latch_acquired { latch; mode; waited } ->
    [ ("latch", `S latch); ("mode", `S mode); ("waited", `I waited) ]
  | Latch_released { latch; mode } ->
    [ ("latch", `S latch); ("mode", `S mode) ]
  | Lock_wait { owner; target; mode; blockers } ->
    [ ("owner", `I owner); ("target", `S target); ("mode", `S mode);
      ("blockers", `S blockers) ]
  | Lock_acquired { owner; target; mode; waited } ->
    [ ("owner", `I owner); ("target", `S target); ("mode", `S mode);
      ("waited", `I waited) ]
  | Lock_denied { owner; target; mode; blockers } ->
    [ ("owner", `I owner); ("target", `S target); ("mode", `S mode);
      ("blockers", `S blockers) ]
  | Lock_released_all { owner } -> [ ("owner", `I owner) ]
  | Page_read { page } -> [ ("page", `I page) ]
  | Page_write { page } -> [ ("page", `I page) ]
  | Log_append { lsn; kind; bytes } ->
    [ ("lsn", `I lsn); ("kind", `S kind); ("bytes", `I bytes) ]
  | Log_flush { upto } -> [ ("upto", `I upto) ]
  | Txn_begin { txn } -> [ ("txn", `I txn) ]
  | Txn_commit { txn; latency } -> [ ("txn", `I txn); ("latency", `I latency) ]
  | Txn_abort { txn; latency } -> [ ("txn", `I txn); ("latency", `I latency) ]
  | Txn_rollback_step { txn; lsn } -> [ ("txn", `I txn); ("lsn", `I lsn) ]
  | Ib_phase { index; phase } -> [ ("index", `I index); ("phase", `S phase) ]
  | Ib_checkpoint { index; stage } ->
    [ ("index", `I index); ("stage", `S stage) ]
  | Index_state { index; state } ->
    [ ("index", `I index); ("state", `S state) ]
  | Ib_range_commit { index; lo; hi } ->
    [ ("index", `I index); ("lo", `I lo); ("hi", `I hi) ]
  | Ib_throttle { level; reason } ->
    [ ("level", `I level); ("reason", `S reason) ]
  | Sidefile_append { sidefile; insert; pos } ->
    [ ("sidefile", `I sidefile); ("insert", `B insert); ("pos", `I pos) ]
  | Sidefile_drained { sidefile; from_pos; upto } ->
    [ ("sidefile", `I sidefile); ("from", `I from_pos); ("upto", `I upto) ]
  | Checkpoint { scope } -> [ ("scope", `S scope) ]
  (* the payload key is "what", not "step": the stamp already has an
     integer "step" and a JSON object must not repeat a key *)
  | Recovery_step { step; detail } ->
    [ ("what", `S step); ("detail", `S detail) ]
  | Crash { reason } -> [ ("reason", `S reason) ]
  | Span_begin { span; parent; cat; name } ->
    [ ("span", `I span); ("parent", `I parent); ("cat", `S cat);
      ("name", `S name) ]
  | Span_end { span } -> [ ("span", `I span) ]
  | Sample { key; value } -> [ ("key", `S key); ("value", `I value) ]
  (* "id"/"fname", not "fiber"/"fiber_name": the stamp already writes
     both keys into the same JSON object (samples are taken outside any
     fiber, so the stamp says main; the payload names the sampled fiber) *)
  | Prof_sample { fiber; fname; state; path; resource; blocker } ->
    [ ("id", `I fiber); ("fname", `S fname); ("state", `S state);
      ("path", `S path); ("resource", `S resource); ("blocker", `S blocker) ]
  | Epoch { label } -> [ ("label", `S label) ]

let to_json s =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"step\":%d,\"fiber\":%d,\"fiber_name\":\"%s\",\"type\":\"%s\""
       s.step s.fiber (json_escape s.fiber_name) (kind s.event));
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (match v with
        | `I i -> Printf.sprintf ",\"%s\":%d" k i
        | `S x -> Printf.sprintf ",\"%s\":\"%s\"" k (json_escape x)
        | `B x -> Printf.sprintf ",\"%s\":%b" k x))
    (fields s.event);
  Buffer.add_char b '}';
  Buffer.contents b
