(** Central metrics registry.

    One engine owns one registry; every named series the observability
    plane exposes — counters, derived gauges, histograms, sliding
    {!Window}s and EWMA rates — registers here under a stable rendered
    name, and {e Obs_sampler}, [bench/obs_report] and the JSONL sinks all
    read the same {!snapshot}/{!sample_values} instead of each keeping a
    private field list. {!Oib_sim.Metrics.attach_registry} bridges the
    legacy counter record in as derived gauges ([metrics.<counter>]).

    Registration is find-or-create: asking for an existing (name, kind)
    returns the existing series; a kind mismatch raises
    [Invalid_argument]. Labels render into the name as
    [name{k=v,...}] with keys sorted, so the same logical series always
    renders identically. *)

type t

type labels = (string * string) list

val create : unit -> t

val render_name : ?labels:labels -> string -> string

(** {2 Counters} — plain owned integers. *)

type counter

val counter : t -> ?labels:labels -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {2 Gauges} — derived: a closure read at snapshot/sample time. *)

val gauge : t -> ?labels:labels -> string -> (unit -> int) -> unit
(** Unlike the other kinds, re-registering a gauge {e replaces} its
    closure — after a crash/restart, derived gauges must re-close over
    the new incarnation's subsystems. *)

(** {2 Histograms and windows} *)

val hist : t -> ?bounds:int array -> ?labels:labels -> string -> Hist.t

val window :
  t -> ?bounds:int array -> ?slots:int -> ?labels:labels -> string -> Window.t
(** [slots] defaults to 8. *)

val find_window : t -> string -> Window.t option
(** Lookup by rendered name; [None] if absent. Raises [Invalid_argument]
    when the name exists as a different metric kind — the same
    programming error registration catches, and a silent [None] would
    make observations vanish. *)

val observe_window : t -> string -> int -> unit
(** Observe into the named window; silently a no-op if absent, so hot
    paths need no registration handshake. Raises like {!find_window} on
    a kind mismatch. *)

val rotate_windows : t -> unit
(** Rotate every registered window one tick (sampler-driven). *)

(** {2 Rates} — EWMA over per-tick deltas of a monotonic total. *)

type rate

val rate : t -> ?alpha:float -> ?labels:labels -> string -> rate

val rate_observe : rate -> total:int -> steps:int -> unit
(** Feed the current monotonic [total]; the first call primes the
    baseline, later calls fold [(total - previous) / steps] into the
    EWMA. *)

val rate_value : rate -> float
(** Smoothed events per scheduler step. *)

(** {2 Reading} *)

type value =
  | Int of int
  | Float of float
  | Histogram of Hist.t
  | Windowed of Window.t

val snapshot : t -> (string * value) list
(** Every series, sorted by rendered name. Gauges are read at call
    time. *)

val sample_values : t -> (string * int) list
(** Flattened integer view for [Sample] trace events, sorted by name:
    counters and gauges verbatim; each window [w] expands to
    [window.w.p50]/[.p95]/[.p99]/[.count] (percentiles rounded to the
    nearest step); each rate [r] scales to events per 1000 steps,
    rounded. Histograms are omitted. *)

val to_json : t -> string
(** One JSON object keyed by rendered name. *)
