(** Per-owner resource accounting.

    A [Resource.t] is a small bag of cost counters charged to one owner —
    in practice one online index build (one [Build_status.t]) — by the
    subsystems it exercises: buffer-pool page traffic, WAL append/flush
    volume, latch and lock wait steps, sort comparisons and run spills.
    Where {!Oib_sim.Metrics} answers "what did the whole engine do",
    [Resource.t] answers "what did {e this build} cost", which is what
    {e Engine.build_progress} and the bench trajectory report.

    The derived operations ([to_assoc], [reset], [snapshot], [diff],
    [add_into], [pp], [to_json]) all walk one field list, mirroring
    [Oib_sim.Metrics]: adding a counter is a one-line change. *)

type t = {
  mutable pages_read : int;      (** buffer-pool cache misses *)
  mutable pages_written : int;   (** pages written back to the store *)
  mutable pages_evicted : int;   (** cached pages evicted or dropped *)
  mutable log_records : int;     (** WAL records appended *)
  mutable log_bytes : int;       (** encoded WAL bytes appended *)
  mutable log_flushes : int;     (** WAL flush calls that did work *)
  mutable latch_wait_steps : int;(** scheduler steps blocked on latches *)
  mutable lock_wait_steps : int; (** scheduler steps blocked on locks *)
  mutable sort_compares : int;   (** key comparisons in sort/merge *)
  mutable run_spills : int;      (** sorted runs spilled to the run store *)
}

val create : unit -> t

val to_assoc : t -> (string * int) list
(** Every counter as [(name, value)], in declaration order. *)

val reset : t -> unit

val snapshot : t -> t
(** Independent deep copy. *)

val diff : after:t -> before:t -> t

val add_into : into:t -> t -> unit
(** Accumulate [t]'s counters into [into]. *)

val is_zero : t -> bool

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One flat JSON object of counter name -> value. *)
