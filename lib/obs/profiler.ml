(* Deterministic sampling profiler.

   Driven from outside (a scheduler step hook): every sampling round the
   caller hands over one (id, name, run-state) row per live fiber and the
   profiler classifies each row into exactly one of six buckets —

     oncpu            the fiber the step was charged to
     sched            runnable-but-not-chosen, or suspended on a cond
     latch|lock|io|logflush   blocked on that resource

   — attributing waits to the blocking resource and (for latches and
   locks) to the blocker fiber(s). Each classified row becomes one
   [Prof_sample] event on the trace and one unit of weight in an
   in-memory prefix tree keyed by the fiber's open-span path, so the
   online tree and an offline aggregation of the event stream agree
   byte-for-byte on the folded output.

   Everything is derived from virtual time and seeded scheduling, so the
   same seed yields byte-identical profiles. *)

(* the caller's view of a fiber, mirrored from [Sched.fiber_state]
   (this library sits below the scheduler in the dependency order) *)
type fiber_run_state = Running | Runnable | Blocked

type wait = Wait_latch of string * string | Wait_lock of string * string

type node = {
  mutable weight : int; (* samples ending exactly here *)
  children : (string, node) Hashtbl.t;
}

type t = {
  trace : Trace.t;
  mutable root : node;
  mutable ticks : int; (* sampling rounds since last reset *)
  mutable samples : int; (* one per (round, live fiber) *)
  by_state : (string, int) Hashtbl.t;
  by_fiber : (string, int) Hashtbl.t; (* normalized fiber name -> samples *)
  waits : (int, wait) Hashtbl.t; (* fiber id -> what it blocked on *)
  txn_fiber : (int, string) Hashtbl.t; (* txn id -> fiber name *)
}

let states = [ "oncpu"; "latch"; "lock"; "io"; "logflush"; "sched" ]

(* "worker-3" -> "worker-#", "rec(3,14)" -> "rec(#,#)": collapse every
   maximal digit run so paths aggregate across fibers, pages and rows *)
let norm s =
  let b = Buffer.create (String.length s) in
  let in_digits = ref false in
  String.iter
    (fun c ->
      if c >= '0' && c <= '9' then begin
        if not !in_digits then Buffer.add_char b '#';
        in_digits := true
      end
      else begin
        in_digits := false;
        Buffer.add_char b c
      end)
    s;
  Buffer.contents b

(* The frame list of one sample, shared by the online tree and the
   offline aggregator so both fold identically: normalized fiber name,
   then the open-span path outermost-first, then a synthetic wait frame
   naming the blocking state (and resource, when known). *)
let frames ~fname ~path ~state ~resource =
  let base =
    fname :: (if path = "" then [] else String.split_on_char ';' path)
  in
  if state = "oncpu" then base
  else
    base
    @ [ (if resource = "" then "wait:" ^ state
         else "wait:" ^ state ^ ":" ^ resource) ]

(* --- weighted prefix tree --- *)

let new_node () = { weight = 0; children = Hashtbl.create 4 }

let add_frames root fs =
  let rec go node = function
    | [] -> node.weight <- node.weight + 1
    | f :: rest ->
      let child =
        match Hashtbl.find_opt node.children f with
        | Some c -> c
        | None ->
          let c = new_node () in
          Hashtbl.replace node.children f c;
          c
      in
      go child rest
  in
  go root fs

let fold_tree root f acc =
  let rec go prefix node acc =
    let acc = if node.weight > 0 then f (List.rev prefix) node.weight acc else acc in
    Hashtbl.fold (fun k c ks -> (k, c) :: ks) node.children []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.fold_left (fun acc (k, c) -> go (k :: prefix) c acc) acc
  in
  go [] root acc

(* --- lifecycle --- *)

let bump tbl key n =
  Hashtbl.replace tbl key (n + Option.value (Hashtbl.find_opt tbl key) ~default:0)

let reset t =
  t.root <- new_node ();
  t.ticks <- 0;
  t.samples <- 0;
  Hashtbl.reset t.by_state;
  Hashtbl.reset t.by_fiber;
  Hashtbl.reset t.waits;
  Hashtbl.reset t.txn_fiber

let sink_name = "profiler"

(* The sink keeps the blocker bookkeeping current: which fiber waits on
   which resource, held by whom, and which fiber runs which txn. A crash
   or epoch marker resets everything, so the online tree always describes
   the trace's final incarnation. *)
let on_event t (s : Event.stamped) =
  match s.event with
  | Event.Txn_begin { txn } -> Hashtbl.replace t.txn_fiber txn s.fiber_name
  | Event.Lock_wait { target; blockers; _ } ->
    Hashtbl.replace t.waits s.fiber (Wait_lock (target, blockers))
  | Event.Lock_acquired _ | Event.Lock_denied _ ->
    Hashtbl.remove t.waits s.fiber
  | Event.Latch_wait { latch; holders; _ } ->
    Hashtbl.replace t.waits s.fiber (Wait_latch (latch, holders))
  | Event.Latch_acquired _ -> Hashtbl.remove t.waits s.fiber
  | Event.Crash _ | Event.Epoch _ -> reset t
  | _ -> ()

let create trace =
  if Trace.is_null trace then invalid_arg "Profiler.create: null trace";
  let t =
    {
      trace;
      root = new_node ();
      ticks = 0;
      samples = 0;
      by_state = Hashtbl.create 8;
      by_fiber = Hashtbl.create 8;
      waits = Hashtbl.create 8;
      txn_fiber = Hashtbl.create 8;
    }
  in
  Trace.add_sink trace ~name:sink_name (on_event t);
  t

let detach t = Trace.remove_sink t.trace ~name:sink_name

(* lock blockers arrive as txn ids ("3,7"); translate to fiber names so
   waits are attributed fiber-to-fiber like latch holders are *)
let lock_blocker_names t blockers =
  if blockers = "" then ""
  else
    String.split_on_char ',' blockers
    |> List.map (fun txn ->
           match int_of_string_opt (String.trim txn) with
           | Some id -> (
             match Hashtbl.find_opt t.txn_fiber id with
             | Some fname -> fname
             | None -> "txn-" ^ txn)
           | None -> txn)
    |> String.concat ","

let classify t ~id ~state =
  match (state : fiber_run_state) with
  | Running -> ("oncpu", "", "")
  | Runnable -> ("sched", "cpu", "")
  | Blocked -> (
    match Hashtbl.find_opt t.waits id with
    | Some (Wait_latch (latch, holders)) -> ("latch", norm latch, holders)
    | Some (Wait_lock (target, blockers)) ->
      ("lock", norm target, lock_blocker_names t blockers)
    | None -> (
      (* no wait event pending: fall back to the innermost open span —
         io and logflush block without a dedicated wait event *)
      match Trace.open_spans t.trace ~fiber:id with
      | (("latch" | "lock" | "io" | "logflush") as cat, name) :: _ ->
        (cat, norm name, "")
      | _ -> ("sched", "suspend", "")))

let sample t ~fibers =
  t.ticks <- t.ticks + 1;
  List.iter
    (fun (id, name, state) ->
      let st, resource, blocker = classify t ~id ~state in
      let fname = norm name in
      let path =
        Trace.open_spans t.trace ~fiber:id
        |> List.rev (* outermost first *)
        |> List.map (fun (cat, n) -> cat ^ ":" ^ norm n)
        |> String.concat ";"
      in
      Trace.emit t.trace
        (Event.Prof_sample
           { fiber = id; fname; state = st; path; resource; blocker });
      add_frames t.root (frames ~fname ~path ~state:st ~resource);
      t.samples <- t.samples + 1;
      bump t.by_state st 1;
      bump t.by_fiber fname 1)
    fibers

(* --- views --- *)

let ticks t = t.ticks

let samples t = t.samples

let sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let by_state t = sorted t.by_state

let by_fiber t = sorted t.by_fiber

let weights t =
  fold_tree t.root (fun fs w acc -> (String.concat ";" fs, w) :: acc) []
  |> List.rev

let folded t =
  let b = Buffer.create 1024 in
  List.iter (fun (path, w) -> Printf.bprintf b "%s %d\n" path w) (weights t);
  Buffer.contents b
