(* Sanitizer probe events.

   A probe is the sanitizer-facing twin of {!Event}: where trace events
   exist to be rendered (flight recorder, JSONL), probe events exist to be
   *consumed online* by a dynamic analysis (the oib-san lockset race
   detector, Goodlock graph builder and WAL verifier in [lib/san]).
   Payloads are primitives only, for the same layering reason as
   {!Event}: this module sits below every instrumented subsystem, so
   latches, lock names and LSNs are rendered to ints/strings at the
   emission site. The emitting fiber is stamped by {!Trace.probe_emit},
   not carried in the event. *)

type event =
  | Spawn of { child : int }
  | Fiber_exit
  | Resume of { fiber : int }
  | Latch_acq of { uid : int; role : string; page : int; excl : bool }
  | Latch_rel of { uid : int; role : string; page : int; excl : bool }
  | Lock_acq of { txn : int; target : string; table : bool; cond : bool }
  | Lock_rel of { txn : int; target : string; table : bool }
  | Access of { page : int; write : bool; site : string }
  | Lsn_set of { page : int; old_lsn : int; new_lsn : int; site : string }
  | Write_back of { page : int; page_lsn : int; flushed_lsn : int }
  | Page_evict of { page : int }
  | Log_append of { txn : int; kind : string }
  | Undo_begin of { txn : int }
  | Undo_end of { txn : int }
  | Yield
  | Shared of { key : string; write : bool; site : string }
  | Epoch of { label : string }

let kind = function
  | Spawn _ -> "spawn"
  | Fiber_exit -> "fiber_exit"
  | Resume _ -> "resume"
  | Latch_acq _ -> "latch_acq"
  | Latch_rel _ -> "latch_rel"
  | Lock_acq _ -> "lock_acq"
  | Lock_rel _ -> "lock_rel"
  | Access _ -> "access"
  | Lsn_set _ -> "lsn_set"
  | Write_back _ -> "write_back"
  | Page_evict _ -> "page_evict"
  | Log_append _ -> "log_append"
  | Undo_begin _ -> "undo_begin"
  | Undo_end _ -> "undo_end"
  | Yield -> "yield"
  | Shared _ -> "shared"
  | Epoch _ -> "epoch"
