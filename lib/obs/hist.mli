(** Fixed-bucket virtual-time histograms.

    Latency distributions (lock/latch wait, transaction latency, traversal
    cost) measured in scheduler steps. Cheap to record (binary search over
    a small bound array), mergeable, and summarizable as p50/p95/p99 that
    match {!Oib_util.Stats.percentile}'s interpolated-rank rule when the
    bucket resolution is exact (width-1 bounds over integer samples). *)

type t

val default_bounds : int array
(** Roughly geometric bounds, 0 .. ~96k steps. *)

val linear_bounds : limit:int -> int array
(** Width-1 bounds [0..limit] — exact percentiles for samples <= limit. *)

val create : ?bounds:int array -> unit -> t
(** Bounds must be strictly increasing; an overflow bucket is implicit. *)

val observe : t -> int -> unit
(** Record one observation (negative values clamp to 0). *)

val count : t -> int
val total : t -> int
val min_value : t -> int
val max_value : t -> int
val mean : t -> float

val percentile : t -> float -> float
(** [percentile t p], [p] in [0,1]. 0.0 on an empty histogram. *)

val buckets : t -> (int * int) list
(** Non-empty buckets as (upper bound, count); [max_int] = overflow. *)

val merge_into : into:t -> t -> unit
(** Add [t]'s counts into [into]; bounds must be identical. *)

val merge : t -> t -> t
(** Fresh histogram holding both inputs' observations; bounds must be
    identical ([Invalid_argument] otherwise). Inputs are not modified. *)

val bounds : t -> int array
(** The bound array this histogram was created with (not a copy). *)

val to_json : t -> string
val pp : Format.formatter -> t -> unit
