(* The per-engine observability hub.

   A trace owns: the clock/fiber callbacks (wired to the scheduler at
   engine assembly), the list of event sinks, an optional flight
   recorder, and a registry of named histograms. Emission sites guard
   with [tracing] before allocating an event, so a [null] trace (the
   default everywhere) costs one pointer compare per instrumented
   operation. *)

type sink = { sink_name : string; push : Event.stamped -> unit }

type t = {
  live : bool; (* false only for [null] *)
  mutable clock : unit -> int;
  mutable fiber : unit -> (int * string) option;
  mutable sinks : sink list;
  mutable probe : (int -> Probe.event -> unit) option;
  mutable recorder : Flight_recorder.t option;
  mutable on_dump : string -> unit;
  mutable last_dump : string option;
  hists : (string, Hist.t) Hashtbl.t;
  mutable next_span : int; (* ids are unique across engine incarnations *)
  spans : (int, int list) Hashtbl.t; (* fiber id -> open-span stack *)
  span_info : (int, string * string) Hashtbl.t; (* span id -> (cat, name) *)
}

let make ~live =
  {
    live;
    clock = (fun () -> 0);
    fiber = (fun () -> None);
    sinks = [];
    probe = None;
    recorder = None;
    on_dump = prerr_endline;
    last_dump = None;
    hists = Hashtbl.create 8;
    next_span = 1;
    spans = Hashtbl.create 8;
    span_info = Hashtbl.create 8;
  }

let null = make ~live:false

let create () = make ~live:true

let is_null t = not t.live

let set_clock t f = if t.live then t.clock <- f

(* A new fiber callback means a new scheduler (engine incarnation): any
   span handles still held by old-incarnation code are stale, so the open
   stacks are wiped — [span_end] on a stale handle becomes a no-op. *)
let set_fiber t f =
  if t.live then begin
    t.fiber <- f;
    Hashtbl.reset t.spans;
    Hashtbl.reset t.span_info
  end
let now t = t.clock ()

let tracing t = t.live && (t.sinks <> [] || t.recorder <> None)

(* The probe channel is deliberately separate from [tracing]: a sanitized
   run may want probes without paying for event rendering, and a traced
   run must not suddenly grow probe consumers. Emission sites guard with
   [probing] before building the event. *)
let probing t = t.live && t.probe <> None

let set_probe t f = if t.live then t.probe <- f

let probe_emit t ev =
  match t.probe with
  | None -> ()
  | Some f ->
    let fiber = match t.fiber () with Some (id, _) -> id | None -> -1 in
    f fiber ev

let stamp t event =
  let fiber, fiber_name =
    match t.fiber () with Some (id, n) -> (id, n) | None -> (-1, "main")
  in
  { Event.step = t.clock (); fiber; fiber_name; event }

let emit t event =
  if tracing t then begin
    let s = stamp t event in
    (match t.recorder with Some r -> Flight_recorder.record r s | None -> ());
    List.iter (fun sink -> sink.push s) t.sinks
  end

let add_sink t ~name push =
  if not t.live then invalid_arg "Trace.add_sink: null trace";
  t.sinks <- t.sinks @ [ { sink_name = name; push } ]

let remove_sink t ~name =
  t.sinks <- List.filter (fun s -> s.sink_name <> name) t.sinks

let attach_recorder t ~capacity =
  if not t.live then invalid_arg "Trace.attach_recorder: null trace";
  let r = Flight_recorder.create ~capacity in
  t.recorder <- Some r;
  r

let recorder t = t.recorder

let set_on_dump t f = if t.live then t.on_dump <- f

let last_dump t = t.last_dump

(* Called at the failure boundaries (scheduler deadlock, injected crash,
   consistency-oracle failure): emit a terminal Crash event, render the
   flight-recorder tail, remember it, hand it to the dump consumer. *)
let failure t ~reason =
  if t.live then begin
    emit t (Event.Crash { reason });
    match t.recorder with
    | None -> ()
    | Some r ->
      let d = Flight_recorder.dump ~reason r in
      t.last_dump <- Some d;
      t.on_dump d
  end;
  (* whatever was in flight at the crash never ends; drop the stacks so
     post-recovery spans don't inherit pre-crash parents *)
  if t.live then begin
    Hashtbl.reset t.spans;
    Hashtbl.reset t.span_info
  end

(* --- spans --- *)

let span_begin t ~cat ~name =
  if not (tracing t) then 0
  else begin
    let fid = match t.fiber () with Some (id, _) -> id | None -> -1 in
    let id = t.next_span in
    t.next_span <- t.next_span + 1;
    let stack = Option.value (Hashtbl.find_opt t.spans fid) ~default:[] in
    let parent = match stack with p :: _ -> p | [] -> 0 in
    emit t (Event.Span_begin { span = id; parent; cat; name });
    Hashtbl.replace t.spans fid (id :: stack);
    Hashtbl.replace t.span_info id (cat, name);
    id
  end

(* Ends may arrive on a different fiber than the begin (IB phase spans
   cross into pipeline children) and out of LIFO order (two concurrent
   builds interleave phases on the ib fiber), so: search every stack and
   remove exactly [id], leaving its neighbours open. *)
let span_end t id =
  if id <> 0 && tracing t then begin
    let found =
      Hashtbl.fold
        (fun fid stack acc ->
          match acc with
          | Some _ -> acc
          | None -> if List.mem id stack then Some (fid, stack) else None)
        t.spans None
    in
    match found with
    | None -> () (* stale handle from before a crash/restart *)
    | Some (fid, stack) ->
      emit t (Event.Span_end { span = id });
      Hashtbl.remove t.span_info id;
      (match List.filter (fun x -> x <> id) stack with
      | [] -> Hashtbl.remove t.spans fid
      | rest -> Hashtbl.replace t.spans fid rest)
  end

(* The profiler's view of a fiber: (cat, name) of every open span,
   innermost first. Spans whose info is missing (opened before a
   crash wiped [span_info]) are skipped rather than invented. *)
let open_spans t ~fiber =
  match Hashtbl.find_opt t.spans fiber with
  | None -> []
  | Some stack -> List.filter_map (Hashtbl.find_opt t.span_info) stack

let with_span t ~cat ~name f =
  let id = span_begin t ~cat ~name in
  Fun.protect ~finally:(fun () -> span_end t id) f

(* --- histograms --- *)

let hist ?bounds t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    let h = Hist.create ?bounds () in
    if t.live then Hashtbl.replace t.hists name h;
    h

let observe t name v =
  if t.live then Hist.observe (hist t name) v

let find_hist t name = Hashtbl.find_opt t.hists name

let hists t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- stock sinks --- *)

let buffer_jsonl_sink buf =
  fun s ->
    Buffer.add_string buf (Event.to_json s);
    Buffer.add_char buf '\n'

let add_jsonl_buffer_sink t ~name buf = add_sink t ~name (buffer_jsonl_sink buf)

let add_jsonl_file_sink t ~path =
  let oc = open_out path in
  add_sink t ~name:("jsonl:" ^ path) (fun s ->
      output_string oc (Event.to_json s);
      output_char oc '\n');
  fun () ->
    remove_sink t ~name:("jsonl:" ^ path);
    close_out oc

let pp_hists ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, h) -> Format.fprintf ppf "%-16s %a@," name Hist.pp h)
    (hists t);
  Format.fprintf ppf "@]"
