(* Ring buffer of the last [capacity] stamped events. Always cheap to feed;
   only read when something goes wrong (deadlock, crash, oracle failure),
   at which point the tail of history is exactly what the post-mortem
   needs — like an aircraft flight recorder. *)

type t = {
  capacity : int;
  buf : Event.stamped array;
  mutable total : int; (* events ever recorded *)
  mutable next : int; (* slot the next event goes to *)
}

let dummy =
  { Event.step = 0; fiber = -1; fiber_name = ""; event = Event.Crash { reason = "" } }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Flight_recorder.create: capacity <= 0";
  { capacity; buf = Array.make capacity dummy; total = 0; next = 0 }

let capacity t = t.capacity
let total t = t.total
let size t = min t.total t.capacity

let record t ev =
  t.buf.(t.next) <- ev;
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

(* oldest retained event first *)
let contents t =
  let n = size t in
  let first = (t.next - n + t.capacity) mod t.capacity in
  List.init n (fun i -> t.buf.((first + i) mod t.capacity))

let dump ?(reason = "") t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "=== flight recorder dump%s: last %d of %d events ===\n"
       (if reason = "" then "" else " (" ^ reason ^ ")")
       (size t) t.total);
  List.iter
    (fun ev ->
      Buffer.add_string b (Event.to_line ev);
      Buffer.add_char b '\n')
    (contents t);
  Buffer.add_string b "=== end of dump ===";
  Buffer.contents b
