(** Sanitizer probe events.

    The online counterpart of {!Event}: a second, analysis-facing event
    stream consumed by the oib-san runtime sanitizer ([lib/san]) rather
    than rendered for humans. Instrumented subsystems emit probes through
    {!Trace.probe_emit}, which stamps the current fiber and hands the
    event to the single installed consumer; with no consumer installed
    (the default) every emission site is one pointer compare.

    Conventions: fiber [-1] is the main (non-fiber) context; [page] is a
    buffer-pool page id ([-1] when the latch guards no page); LSNs are
    [Lsn.to_int] renderings; [txn -1] means "no transaction". *)

type event =
  | Spawn of { child : int }
      (** a new fiber was registered; the spawner is the stamped fiber *)
  | Fiber_exit  (** the stamped fiber's body returned *)
  | Resume of { fiber : int }
      (** the stamped fiber made [fiber] runnable again (latch grant,
          lock-queue pump, condition signal — every blocking primitive
          funnels through [Sched.suspend], so this one edge covers all
          of them) *)
  | Latch_acq of { uid : int; role : string; page : int; excl : bool }
      (** the stamped fiber was granted the latch (after any wait) *)
  | Latch_rel of { uid : int; role : string; page : int; excl : bool }
  | Lock_acq of { txn : int; target : string; table : bool; cond : bool }
      (** manual-duration lock grant (instant-duration grants are not
          reported: they impose no release-to-acquire ordering) *)
  | Lock_rel of { txn : int; target : string; table : bool }
  | Access of { page : int; write : bool; site : string }
      (** a data access to the page ([site] names the emission point) *)
  | Lsn_set of { page : int; old_lsn : int; new_lsn : int; site : string }
  | Write_back of { page : int; page_lsn : int; flushed_lsn : int }
      (** the page was written to the stable store; [flushed_lsn] is the
          log's durable horizon at that moment (WAL rule: must be
          [>= page_lsn]) *)
  | Page_evict of { page : int }
      (** the volatile page object was discarded; a later re-read builds
          a new object (new latch) from the stable image *)
  | Log_append of { txn : int; kind : string }
  | Undo_begin of { txn : int }  (** rollback of [txn] starts *)
  | Undo_end of { txn : int }
  | Yield
      (** the stamped fiber is about to suspend ([Sched.yield] /
          [Sched.suspend]); everything it read from shared state before
          this point may be stale when it resumes *)
  | Shared of { key : string; write : bool; site : string }
      (** an access to cross-fiber shared state; [key] is the lint
          class key (e.g. ["Throttle.level"], ["Catalog.state"]) so the
          dynamic interference automaton lines up with the static L12
          atomics table, [site] names the emission point *)
  | Epoch of { label : string }
      (** incarnation/run boundary: all volatile state (fibers, latches,
          pages) from before is gone *)

val kind : event -> string
(** Stable short tag, e.g. ["latch_acq"]. *)
