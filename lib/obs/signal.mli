(** Derived overload/health signals with hysteresis.

    A signal watches one scalar source — foreground p99 from a
    {!Window}, WAL flush backlog, dirty-page ratio — against a watermark
    pair: it {e raises} when the value reaches [raise_above] and only
    {e clears} once the value falls back to [clear_below], so a source
    hovering around a single threshold cannot flap. Signals are grouped
    in a {!set} evaluated in one deterministic pass (name order) from
    sampler ticks; subscribers fire synchronously on each transition,
    which is the hook an admission-control throttle plugs into, and DST
    runs reproduce flips exactly. *)

type t
(** One named signal. *)

type change = Raised | Cleared

type set

val create_set : unit -> set

val register :
  set ->
  name:string ->
  raise_above:float ->
  clear_below:float ->
  source:(unit -> float) ->
  unit
(** Create the signal, or — if [name] exists — re-wire its source and
    thresholds while keeping the active/flip state (used after a crash,
    when sources must close over the rebuilt subsystems).
    [Invalid_argument] if [clear_below > raise_above]. *)

val subscribe : set -> (t -> change -> unit) -> unit
(** Subscribers fire synchronously, in subscription order, on every
    transition during {!eval}. *)

val eval : set -> (t * change) list
(** Evaluate every signal once, in name order: read the source, apply
    hysteresis (raise at [value >= raise_above] when clear; clear at
    [value <= clear_below] when active), fire subscribers. Returns the
    transitions of this pass, in name order. *)

val signals : set -> t list
(** All signals, sorted by name. *)

val find : set -> string -> t option

val name : t -> string

val active : t -> bool

val value : t -> float
(** Last evaluated source value (0.0 before the first {!eval}). *)

val flips : t -> int
(** Total transitions since registration. *)

val thresholds : t -> float * float
(** [(raise_above, clear_below)]. *)
