type t = {
  bounds : int array;
  ring : Hist.t array; (* ring.(head) is the slot receiving observations *)
  mutable head : int;
  mutable rotations : int;
}

let create ?(bounds = Hist.default_bounds) ~slots () =
  if slots < 1 then invalid_arg "Window.create: slots < 1";
  {
    bounds;
    ring = Array.init slots (fun _ -> Hist.create ~bounds ());
    head = 0;
    rotations = 0;
  }

let slots t = Array.length t.ring
let rotations t = t.rotations
let bounds t = t.bounds

let observe t v = Hist.observe t.ring.(t.head) v

let rotate t =
  t.head <- (t.head + 1) mod Array.length t.ring;
  (* retire the oldest slot by replacing it with a fresh histogram *)
  t.ring.(t.head) <- Hist.create ~bounds:t.bounds ();
  t.rotations <- t.rotations + 1

let merged t =
  let out = Hist.create ~bounds:t.bounds () in
  Array.iter (fun h -> Hist.merge_into ~into:out h) t.ring;
  out

let count t = Array.fold_left (fun acc h -> acc + Hist.count h) 0 t.ring

let percentile t p = Hist.percentile (merged t) p

let to_json t =
  Printf.sprintf
    "{\"slots\":%d,\"rotations\":%d,\"count\":%d,\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}"
    (Array.length t.ring) t.rotations (count t)
    (percentile t 0.50) (percentile t 0.95) (percentile t 0.99)

(* Exponentially weighted moving average of an event rate, fed with
   per-tick deltas. Rates are per scheduler step; the sampler turns
   counter totals into deltas before calling [tick]. *)
module Ewma = struct
  type ewma = {
    alpha : float;
    mutable rate : float;
    mutable primed : bool;
  }

  type t = ewma

  let create ?(alpha = 0.3) () =
    if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Ewma.create: alpha";
    { alpha; rate = 0.0; primed = false }

  let tick t ~count ~steps =
    if steps > 0 then begin
      let instant = float_of_int count /. float_of_int steps in
      if t.primed then
        t.rate <- t.rate +. (t.alpha *. (instant -. t.rate))
      else begin
        t.rate <- instant;
        t.primed <- true
      end
    end

  let rate t = t.rate
end
