type t = {
  mutable pages_read : int;
  mutable pages_written : int;
  mutable pages_evicted : int;
  mutable log_records : int;
  mutable log_bytes : int;
  mutable log_flushes : int;
  mutable latch_wait_steps : int;
  mutable lock_wait_steps : int;
  mutable sort_compares : int;
  mutable run_spills : int;
}

let create () =
  {
    pages_read = 0;
    pages_written = 0;
    pages_evicted = 0;
    log_records = 0;
    log_bytes = 0;
    log_flushes = 0;
    latch_wait_steps = 0;
    lock_wait_steps = 0;
    sort_compares = 0;
    run_spills = 0;
  }

(* Same single-source-of-truth scheme as [Oib_sim.Metrics.fields]: every
   derived operation walks this list, so adding a counter is one record
   field plus one line here. *)
let fields : (string * (t -> int) * (t -> int -> unit)) list =
  [
    ("pages_read", (fun t -> t.pages_read), fun t v -> t.pages_read <- v);
    ( "pages_written",
      (fun t -> t.pages_written),
      fun t v -> t.pages_written <- v );
    ( "pages_evicted",
      (fun t -> t.pages_evicted),
      fun t v -> t.pages_evicted <- v );
    ("log_records", (fun t -> t.log_records), fun t v -> t.log_records <- v);
    ("log_bytes", (fun t -> t.log_bytes), fun t v -> t.log_bytes <- v);
    ("log_flushes", (fun t -> t.log_flushes), fun t v -> t.log_flushes <- v);
    ( "latch_wait_steps",
      (fun t -> t.latch_wait_steps),
      fun t v -> t.latch_wait_steps <- v );
    ( "lock_wait_steps",
      (fun t -> t.lock_wait_steps),
      fun t v -> t.lock_wait_steps <- v );
    ( "sort_compares",
      (fun t -> t.sort_compares),
      fun t v -> t.sort_compares <- v );
    ("run_spills", (fun t -> t.run_spills), fun t v -> t.run_spills <- v);
  ]

let to_assoc t = List.map (fun (name, get, _) -> (name, get t)) fields

let reset t = List.iter (fun (_, _, set) -> set t 0) fields

let snapshot t =
  let s = create () in
  List.iter (fun (_, get, set) -> set s (get t)) fields;
  s

let diff ~after ~before =
  let d = create () in
  List.iter (fun (_, get, set) -> set d (get after - get before)) fields;
  d

let add_into ~into t =
  List.iter (fun (_, get, set) -> set into (get into + get t)) fields

let is_zero t = List.for_all (fun (_, get, _) -> get t = 0) fields

let pp ppf t =
  Format.fprintf ppf "@[<hov>";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Format.fprintf ppf "@ ";
      Format.fprintf ppf "%s=%d" name v)
    (to_assoc t);
  Format.fprintf ppf "@]"

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" name v))
    (to_assoc t);
  Buffer.add_char b '}';
  Buffer.contents b
