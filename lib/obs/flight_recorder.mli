(** Ring-buffer flight recorder.

    Retains the last [capacity] stamped events; dumped on deadlock, crash,
    or consistency-oracle failure so a post-mortem sees the precise tail
    of history (who held what, which phase the builder was in, which lock
    blocked) without paying for full tracing. *)

type t

val create : capacity:int -> t
val record : t -> Event.stamped -> unit

val contents : t -> Event.stamped list
(** Retained events, oldest first. *)

val capacity : t -> int

val total : t -> int
(** Events ever recorded (>= [size] once the ring has wrapped). *)

val size : t -> int
(** Events currently retained (<= capacity). *)

val dump : ?reason:string -> t -> string
(** Human-readable multi-line dump of {!contents}. *)
