(** Deterministic virtual-time sampling profiler.

    A sampling round (driven from a scheduler step hook by
    [Obs_sampler.install_profiler]) hands the profiler one row per live
    fiber; each row is classified into exactly one of six buckets —
    [oncpu], [sched], or blocked-on [latch]/[lock]/[io]/[logflush] —
    with waits attributed to the blocking resource and, for latches and
    locks, to the blocker fiber(s). Every classified row is emitted as a
    {!Event.Prof_sample} and accumulated into a weighted prefix tree
    keyed by the fiber's open-span path, so the online {!folded} output
    equals an offline aggregation of the same event stream
    (see [Oib_obs_analysis.Profile]) byte for byte.

    The profiler attaches an event sink (which also flips {!Trace.tracing}
    on) to keep its blocker bookkeeping current; a [Crash] or [Epoch]
    event resets the tree, so after a multi-incarnation run the online
    state describes the final incarnation only. Sampling is a pure
    function of the seeded schedule: same seed ⇒ byte-identical
    profiles. *)

type t

(** The caller's view of a fiber's run state, mirroring
    [Sched.fiber_state] (this library sits below the scheduler). *)
type fiber_run_state = Running | Runnable | Blocked

val states : string list
(** The six bucket names: [oncpu; latch; lock; io; logflush; sched]. *)

val create : Trace.t -> t
(** Attach the profiler's sink to the trace. Raises [Invalid_argument]
    on the null trace. *)

val detach : t -> unit
(** Remove the sink; the accumulated tree remains readable. *)

val sample : t -> fibers:(int * string * fiber_run_state) list -> unit
(** One sampling round: classify each [(id, name, state)] row, emit one
    [Prof_sample] per row, add one unit of weight per row to the tree. *)

val norm : string -> string
(** Collapse every maximal digit run to ['#'] ("worker-3" →
    "worker-#") so paths aggregate across fibers, pages and rows. *)

val frames :
  fname:string -> path:string -> state:string -> resource:string ->
  string list
(** The frame list of one sample (normalized fiber name, span path
    outermost-first, then a ["wait:<state>[:<resource>]"] frame unless
    on-cpu) — shared with the offline aggregator so both fold
    identically. [path] is the ';'-joined normalized form carried by
    [Prof_sample]. *)

val ticks : t -> int
(** Sampling rounds since creation (or the last crash/epoch reset). *)

val samples : t -> int
(** Total samples taken = one per (round, live fiber). *)

val by_state : t -> (string * int) list
(** Samples per bucket, sorted by bucket name. *)

val by_fiber : t -> (string * int) list
(** Samples per normalized fiber name, sorted. *)

val weights : t -> (string * int) list
(** The tree flattened to [(";"-joined frames, weight)] leaves in
    lexicographic DFS order — weights sum to {!samples}. *)

val folded : t -> string
(** Standard folded-stack lines ["f1;f2;f3 W\n"], flamegraph-ready,
    deterministically ordered. *)
