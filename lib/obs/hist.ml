(* Fixed-bucket histograms over virtual time (scheduler steps).

   Bucket [i] counts observations v with bounds.(i-1) < v <= bounds.(i)
   (bucket 0: v <= bounds.(0)); one overflow bucket collects everything
   above the last bound. Percentiles use the same interpolated-rank rule
   as [Oib_util.Stats.percentile], computed over the conceptual expanded
   array in which each bucket contributes [count] copies of its
   representative value (the bucket's upper bound; the max observed value
   for the overflow bucket) — so with bucket width 1 the two agree
   exactly on integer samples. *)

type t = {
  bounds : int array; (* strictly increasing upper bounds *)
  counts : int array; (* length bounds + 1; last = overflow *)
  mutable n : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
}

(* Roughly geometric (ratio ~1.5) bounds from 0 to 96k virtual steps:
   enough resolution at the short-wait end where latch and lock waits
   live, without hundreds of buckets. *)
let default_bounds =
  [| 0; 1; 2; 3; 4; 6; 8; 12; 16; 24; 32; 48; 64; 96; 128; 192; 256; 384;
     512; 768; 1024; 1536; 2048; 3072; 4096; 6144; 8192; 12288; 16384;
     24576; 32768; 49152; 65536; 98304 |]

let create ?(bounds = default_bounds) () =
  if Array.length bounds = 0 then invalid_arg "Hist.create: no bounds";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Hist.create: bounds not strictly increasing")
    bounds;
  {
    bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    n = 0;
    sum = 0;
    vmin = max_int;
    vmax = min_int;
  }

let linear_bounds ~limit = Array.init (limit + 1) (fun i -> i)

(* first bucket whose bound >= v, or the overflow bucket *)
let bucket_of t v =
  let nb = Array.length t.bounds in
  if v > t.bounds.(nb - 1) then nb
  else begin
    let lo = ref 0 and hi = ref (nb - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe t v =
  let v = max 0 v in
  t.counts.(bucket_of t v) <- t.counts.(bucket_of t v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.n
let total t = t.sum
let min_value t = if t.n = 0 then 0 else t.vmin
let max_value t = if t.n = 0 then 0 else t.vmax
let mean t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n

let representative t i =
  if i < Array.length t.bounds then float_of_int t.bounds.(i)
  else float_of_int t.vmax

(* representative value of the k-th element (0-based) of the expanded
   sorted array *)
let value_at t k =
  let rec go i seen =
    if i >= Array.length t.counts then representative t (i - 1)
    else if seen + t.counts.(i) > k then representative t i
    else go (i + 1) (seen + t.counts.(i))
  in
  go 0 0

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let rank = p *. float_of_int (t.n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (value_at t lo *. (1.0 -. frac)) +. (value_at t hi *. frac)
  end

let buckets t =
  List.filter_map
    (fun i ->
      if t.counts.(i) = 0 then None
      else
        Some
          ( (if i < Array.length t.bounds then t.bounds.(i) else max_int),
            t.counts.(i) ))
    (List.init (Array.length t.counts) Fun.id)

let bounds t = t.bounds

let merge_into ~into t =
  if into.bounds <> t.bounds then invalid_arg "Hist.merge_into: bounds differ";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
  into.n <- into.n + t.n;
  into.sum <- into.sum + t.sum;
  if t.n > 0 then begin
    if t.vmin < into.vmin then into.vmin <- t.vmin;
    if t.vmax > into.vmax then into.vmax <- t.vmax
  end

let merge a b =
  if a.bounds <> b.bounds then invalid_arg "Hist.merge: bounds differ";
  let m = create ~bounds:a.bounds () in
  merge_into ~into:m a;
  merge_into ~into:m b;
  m

let to_json t =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"mean\":%.3f,\"p50\":%.2f,\"p95\":%.2f,\"p99\":%.2f,\"buckets\":["
       t.n t.sum (min_value t) (max_value t) (mean t) (percentile t 0.5)
       (percentile t 0.95) (percentile t 0.99));
  List.iteri
    (fun i (bound, c) ->
      if i > 0 then Buffer.add_char b ',';
      if bound = max_int then
        Buffer.add_string b (Printf.sprintf "[\"inf\",%d]" c)
      else Buffer.add_string b (Printf.sprintf "[%d,%d]" bound c))
    (buckets t);
  Buffer.add_string b "]}";
  Buffer.contents b

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.2f min=%d p50=%.1f p95=%.1f p99=%.1f max=%d"
      t.n (mean t) (min_value t) (percentile t 0.5) (percentile t 0.95)
      (percentile t 0.99) (max_value t)
