(** Transactions: begin / commit / rollback over the WAL.

    Each transaction chains its log records through [prev_lsn]; rollback
    walks the chain newest-first, calls an *undo executor* supplied by the
    record-operations layer (which knows how to reverse heap and index
    changes, including the index-visibility compensation of Figure 2), and
    writes a compensation record (CLR) per undone action. Commit forces the
    log and releases locks.

    The manager also maintains Commit_LSN [Moha90b]: the begin-LSN of the
    oldest transaction still active. Any page whose page_LSN is below it
    contains no uncommitted data — the cheap test the pseudo-delete garbage
    collector applies before falling back to conditional locks (§2.2.4). *)

module LR := Oib_wal.Log_record

type t

type txn

type status = Active | Committed | Aborted

val create :
  ?trace:Oib_obs.Trace.t ->
  Oib_wal.Log_manager.t -> Oib_lock.Lock_manager.t -> Oib_sim.Metrics.t -> t
(** [trace] (default {!Oib_obs.Trace.null}) receives txn begin / commit /
    abort / rollback-step events and a ["txn_latency"] histogram of
    virtual-time latencies (commit/abort step minus begin step). *)

val log : t -> Oib_wal.Log_manager.t
val locks : t -> Oib_lock.Lock_manager.t

val begin_txn : t -> txn
val id : txn -> int
val status : txn -> status
val last_lsn : txn -> Oib_wal.Lsn.t

val log_op : t -> txn -> LR.body -> Oib_wal.Lsn.t
(** Append a record to the transaction's chain. *)

val commit : t -> txn -> unit
(** Commit record, log force, lock release, End record. *)

val rollback :
  t -> txn -> undo:(LR.body -> clr:(LR.body -> Oib_wal.Lsn.t) -> unit) -> unit
(** Walk the undo chain. For each undoable record the executor performs the
    inverse action(s), logging each as a compensation record through the
    supplied [clr] function (so it can stamp page_LSNs while still holding
    the page latch); an SF-era undo may write several CLRs — the heap
    compensation plus a side-file append, Figure 2. The manager then writes
    the Abort and End records and releases locks. Restart recovery uses the
    same executor for loser transactions. *)

val adopt : t -> txn_id:int -> last:Oib_wal.Lsn.t -> txn
(** Re-create a loser transaction's handle during restart so it can be
    rolled back with {!rollback}. Writes no Begin record. *)

val ensure_next_id : t -> int -> unit
(** Guarantee future transaction ids are at least [n] (restart must not
    reuse the ids of pre-crash transactions). *)

val commit_lsn : t -> Oib_wal.Lsn.t
(** Begin-LSN of the oldest active transaction; [Lsn.nil] means "no bound"
    when no transaction was ever started, and the current log end when none
    is active. *)

val active_count : t -> int
val active_ids : t -> int list
