module LR = Oib_wal.Log_record
module Lsn = Oib_wal.Lsn
module LM = Oib_wal.Log_manager
module Trace = Oib_obs.Trace
module Event = Oib_obs.Event

type status = Active | Committed | Aborted

type txn = {
  txn_id : int;
  begin_lsn : Lsn.t;
  begin_step : int; (* scheduler step at begin, for latency histograms *)
  span : int; (* trace span covering the whole transaction (0 untraced) *)
  mutable last : Lsn.t;
  mutable st : status;
}

type t = {
  log : LM.t;
  locks : Oib_lock.Lock_manager.t;
  metrics : Oib_sim.Metrics.t;
  trace : Trace.t;
  mutable next_id : int;
  active : (int, txn) Hashtbl.t;
}

let create ?(trace = Trace.null) log locks metrics =
  { log; locks; metrics; trace; next_id = 1; active = Hashtbl.create 32 }

let log t = t.log
let locks t = t.locks

let begin_txn t =
  let txn_id = t.next_id in
  t.next_id <- txn_id + 1;
  let span =
    Trace.span_begin t.trace ~cat:"txn"
      ~name:(Printf.sprintf "txn-%d" txn_id)
  in
  let begin_lsn = LM.append t.log ~txn:(Some txn_id) ~prev_lsn:Lsn.nil LR.Begin in
  let txn =
    { txn_id; begin_lsn; begin_step = Trace.now t.trace; span;
      last = begin_lsn; st = Active }
  in
  Hashtbl.replace t.active txn_id txn;
  if Trace.tracing t.trace then
    Trace.emit t.trace (Event.Txn_begin { txn = txn_id });
  txn

let id txn = txn.txn_id
let status txn = txn.st
let last_lsn txn = txn.last

let log_op t txn body =
  assert (txn.st = Active);
  let lsn = LM.append t.log ~txn:(Some txn.txn_id) ~prev_lsn:txn.last body in
  txn.last <- lsn;
  lsn

let finish t txn st =
  txn.st <- st;
  Hashtbl.remove t.active txn.txn_id;
  Oib_lock.Lock_manager.unlock_all t.locks ~txn:txn.txn_id

let txn_latency t txn = max 0 (Trace.now t.trace - txn.begin_step)

let commit t txn =
  assert (txn.st = Active);
  let lsn = log_op t txn LR.Commit in
  LM.flush t.log ~upto:lsn;
  ignore (log_op t txn LR.End);
  finish t txn Committed;
  t.metrics.txn_commits <- t.metrics.txn_commits + 1;
  let latency = txn_latency t txn in
  Trace.observe t.trace "txn_latency" latency;
  (* foreground committed-txn latency feeds the sliding window behind
     the overload signal *)
  Oib_sim.Metrics.observe_window t.metrics "fg.latency" latency;
  if Trace.tracing t.trace then
    Trace.emit t.trace (Event.Txn_commit { txn = txn.txn_id; latency });
  Trace.span_end t.trace txn.span

let rollback t txn ~undo =
  assert (txn.st = Active);
  if Trace.probing t.trace then
    Trace.probe_emit t.trace (Oib_obs.Probe.Undo_begin { txn = txn.txn_id });
  (* Walk newest-to-oldest. A CLR's undo_next skips the records that were
     already compensated if rollback itself was interrupted (restart). *)
  let rec walk lsn =
    if Lsn.( > ) lsn Lsn.nil then
      match LM.record_at t.log lsn with
      | None -> () (* chain older than durable log: nothing active remains *)
      | Some r -> (
        match r.LR.body with
        | LR.Clr { undo_next; _ } -> walk undo_next
        | body when LR.is_undoable body ->
          if Trace.tracing t.trace then
            Trace.emit t.trace
              (Event.Txn_rollback_step
                 { txn = txn.txn_id; lsn = Lsn.to_int lsn });
          let clr action =
            log_op t txn (LR.Clr { action; undo_next = r.LR.prev_lsn })
          in
          undo body ~clr;
          walk r.LR.prev_lsn
        | _ -> walk r.LR.prev_lsn)
  in
  walk txn.last;
  ignore (log_op t txn LR.Abort);
  ignore (log_op t txn LR.End);
  if Trace.probing t.trace then
    Trace.probe_emit t.trace (Oib_obs.Probe.Undo_end { txn = txn.txn_id });
  (* an abort need not force the log *)
  finish t txn Aborted;
  t.metrics.txn_aborts <- t.metrics.txn_aborts + 1;
  let latency = txn_latency t txn in
  Trace.observe t.trace "txn_latency" latency;
  if Trace.tracing t.trace then
    Trace.emit t.trace (Event.Txn_abort { txn = txn.txn_id; latency });
  Trace.span_end t.trace txn.span

let adopt t ~txn_id ~last =
  let span =
    Trace.span_begin t.trace ~cat:"txn"
      ~name:(Printf.sprintf "txn-%d" txn_id)
  in
  let txn =
    { txn_id; begin_lsn = last; begin_step = Trace.now t.trace; span;
      last; st = Active }
  in
  Hashtbl.replace t.active txn_id txn;
  if txn_id >= t.next_id then t.next_id <- txn_id + 1;
  txn

let ensure_next_id t n = if n > t.next_id then t.next_id <- n

let commit_lsn t =
  let oldest =
    Hashtbl.fold
      (fun _ txn acc ->
        match acc with
        | None -> Some txn.begin_lsn
        | Some b -> Some (if Lsn.( < ) txn.begin_lsn b then txn.begin_lsn else b))
      t.active None
  in
  match oldest with
  | Some b -> b
  | None -> LM.last_lsn t.log

let active_count t = Hashtbl.length t.active

let active_ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.active []
