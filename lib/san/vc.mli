(** Vector clocks over fiber ids.

    The sanitizer's happens-before relation: each fiber owns one
    component; synchronization edges (spawn, resume, latch and lock
    release/acquire) join clocks. Fiber ids restart at every engine
    incarnation, so clocks are only compared within one run — the
    [Epoch] probe clears them. *)

type t

val empty : t

val get : int -> t -> int
(** Component for a fiber; 0 when never ticked. *)

val tick : int -> t -> t
(** Increment a fiber's own component. *)

val join : t -> t -> t
(** Pointwise maximum. *)

val leq : t -> t -> bool
(** [leq a b] — every component of [a] is [<=] the same component of
    [b]; the happens-before test for an access snapshot [a] against a
    fiber's current clock [b]. *)

val to_string : t -> string
(** ["{f0:3 f2:1}"] — for report messages only. *)
