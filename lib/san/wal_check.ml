type t = {
  page_lsn : (int, int) Hashtbl.t;  (* shadow: last LSN seen per page *)
  undoing : (int, unit) Hashtbl.t;  (* txns inside an undo walk *)
  report : check:string -> site:string -> string -> unit;
}

let create ~report =
  { page_lsn = Hashtbl.create 64; undoing = Hashtbl.create 8; report }

let undo_kinds = [ "clr"; "abort"; "end" ]

let feed t (ev : Oib_obs.Probe.event) =
  match ev with
  | Lsn_set { page; old_lsn; new_lsn; site } ->
    let shadow =
      Option.value ~default:0 (Hashtbl.find_opt t.page_lsn page)
    in
    let floor = max old_lsn shadow in
    if new_lsn < floor then
      t.report ~check:"lsn-monotonic"
        ~site:("page-" ^ string_of_int page ^ ":" ^ site)
        ("page " ^ string_of_int page ^ " LSN moved backwards: "
       ^ string_of_int floor ^ " -> " ^ string_of_int new_lsn ^ " at "
       ^ site);
    Hashtbl.replace t.page_lsn page (max floor new_lsn)
  | Write_back { page; page_lsn; flushed_lsn } ->
    if flushed_lsn < page_lsn then
      t.report ~check:"steal-before-flush"
        ~site:("page-" ^ string_of_int page)
        ("page " ^ string_of_int page ^ " written back at LSN "
       ^ string_of_int page_lsn ^ " but the log is only durable to "
       ^ string_of_int flushed_lsn
       ^ " (write-ahead rule: force the log before stealing)")
  | Page_evict { page } -> Hashtbl.remove t.page_lsn page
  | Undo_begin { txn } -> Hashtbl.replace t.undoing txn ()
  | Undo_end { txn } -> Hashtbl.remove t.undoing txn
  | Log_append { txn; kind } ->
    if txn >= 0 && Hashtbl.mem t.undoing txn && not (List.mem kind undo_kinds)
    then
      t.report ~check:"clr-discipline"
        ~site:("txn-" ^ string_of_int txn ^ ":" ^ kind)
        ("txn " ^ string_of_int txn ^ " appended a non-compensation record ("
       ^ kind ^ ") while undoing — rollback must log CLRs only")
  | Epoch _ ->
    Hashtbl.reset t.page_lsn;
    Hashtbl.reset t.undoing
  | Spawn _ | Fiber_exit | Resume _ | Latch_acq _ | Latch_rel _ | Lock_acq _
  | Lock_rel _ | Access _ | Yield | Shared _ ->
    ()
