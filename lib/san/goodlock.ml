type t = { edges : (string * string, string) Hashtbl.t }
(* value = first witness site *)

let create () = { edges = Hashtbl.create 32 }

let add_edge t ~src ~dst ~site =
  if src <> dst && not (Hashtbl.mem t.edges (src, dst)) then
    Hashtbl.replace t.edges (src, dst) site

let edges t =
  List.sort_uniq compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.edges [])

let witness t k = Hashtbl.find_opt t.edges k

(* Deterministic cycle extraction: DFS over sorted nodes with sorted
   adjacency, deduplicating cycles by their canonical (sorted) node set.
   Mirrors the linter's L5 search so the two reports line up. *)
let cycles t =
  let es = edges t in
  let adj : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt adj a) in
      Hashtbl.replace adj a (prev @ [ b ]))
    es;
  let nodes = List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) es) in
  let color : (string, [ `Grey | `Black ]) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  let seen = Hashtbl.create 4 in
  let rec dfs stack n =
    match Hashtbl.find_opt color n with
    | Some `Black -> ()
    | Some `Grey ->
      (* stack head is the revisited node; the cycle runs from its
         previous occurrence (deeper in the stack) forward to here *)
      let rec take = function
        | x :: _ when x = n -> []
        | x :: rest -> x :: take rest
        | [] -> []
      in
      let cyc = n :: List.rev (take (List.tl stack)) in
      let key = String.concat "," (List.sort compare cyc) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        out := cyc :: !out
      end
    | None ->
      Hashtbl.replace color n `Grey;
      List.iter
        (fun m -> dfs (m :: stack) m)
        (Option.value ~default:[] (Hashtbl.find_opt adj n));
      Hashtbl.replace color n `Black
  in
  List.iter (fun n -> dfs [ n ] n) nodes;
  List.rev !out

let lock_node n = String.length n >= 5 && String.sub n 0 5 = "lock:"

let diff ~runtime ~static =
  let static = List.sort_uniq compare static in
  let runtime = List.sort_uniq compare runtime in
  let static_only = List.filter (fun e -> not (List.mem e runtime)) static in
  let runtime_only =
    List.filter
      (fun (a, b) ->
        (not (lock_node a)) && (not (lock_node b))
        && not (List.mem (a, b) static))
      runtime
  in
  (static_only, runtime_only)
