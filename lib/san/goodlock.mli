(** Goodlock-style potential-deadlock prediction.

    Accumulates the runtime acquisition-order graph: holding a latch of
    role [a] (or a lock) while acquiring one of role [b] records the
    edge [a -> b]. Nodes are latch roles ("Heap_file", "Btree", …) plus
    the two lock-manager granularities ("lock:record", "lock:table").
    Self-edges are exempt — hand-over-hand crabbing inside one structure
    is ordered by position, not by role.

    Unlike the shadow state, the graph survives [Epoch] boundaries: a
    cycle assembled from edges observed in *different* runs is exactly
    the potential deadlock that never manifested. Cycle extraction and
    the static-graph diff are deterministic (sorted nodes, sorted
    adjacency). *)

type t

val create : unit -> t

val add_edge : t -> src:string -> dst:string -> site:string -> unit
(** Record [src -> dst]; [site] is the first witness kept for the report.
    Self-edges are dropped. *)

val edges : t -> (string * string) list
(** Sorted, deduplicated. *)

val witness : t -> string * string -> string option

val cycles : t -> string list list
(** Elementary cycles found by DFS, each reported once under a canonical
    key; deterministic across runs. *)

val diff :
  runtime:(string * string) list ->
  static:(string * string) list ->
  (string * string) list * (string * string) list
(** [(static_only, runtime_only)]. [static_only] is every static edge
    not observed at runtime (not exercised by the workload);
    [runtime_only] is every observed latch edge absent from the static
    graph (edges touching ["lock:"] nodes are excluded — the static
    analysis has no lock-manager nodes). *)
