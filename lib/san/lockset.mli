(** Eraser-style lockset race detection over buffer-pool pages.

    Shadow state per page: the last write access plus the reads since it.
    Each access carries the accessing fiber, a vector-clock snapshot, and
    the latch/lock tokens held at the access. A race is a conflicting
    pair (at least one write) from different fibers that is not
    happens-before ordered and whose intersected protection is empty —
    write/write pairs intersect the exclusively-held sets, read/write
    pairs intersect the reader's full set with the writer's exclusive
    set. In the cooperative scheduler, "different fibers" implies the
    pair spans at least one [Sched] yield point. *)

module Sset : Set.S with type elt = string

type access = {
  a_fiber : int;
  a_vc : Vc.t;  (** the fiber's clock when the access happened *)
  a_locks : Sset.t;  (** every latch/lock token held (any mode) *)
  a_xlocks : Sset.t;  (** the exclusively-held subset *)
  a_write : bool;
  a_site : string;  (** e.g. ["Page.set_lsn"] or ["Heap_file.latch"] *)
}

type t

val create : report:(page:int -> prev:access -> cur:access -> unit) -> t
(** [report] fires once per detected racing pair, previous access first. *)

val record : t -> page:int -> access -> unit
(** Check the access against the page's shadow state, then store it. *)

val clear_page : t -> int -> unit
(** Forget a page's shadow (eviction: the latch identity changes when the
    page object is rebuilt, so stale tokens would fake races). *)

val reset : t -> unit
(** Forget everything (run/incarnation boundary). *)
