module Imap = Map.Make (Int)

type t = int Imap.t

let empty = Imap.empty

let get f t = Option.value ~default:0 (Imap.find_opt f t)

let tick f t = Imap.add f (get f t + 1) t

let join a b = Imap.union (fun _ x y -> Some (max x y)) a b

let leq a b = Imap.for_all (fun f n -> n <= get f b) a

let to_string t =
  "{"
  ^ String.concat " "
      (List.map
         (fun (f, n) -> "f" ^ string_of_int f ^ ":" ^ string_of_int n)
         (Imap.bindings t))
  ^ "}"
