module Diag = Oib_lint.Diag
module Probe = Oib_obs.Probe

(* one held latch *)
type held_latch = { h_uid : int; h_role : string; h_excl : bool }

type t = {
  (* happens-before state *)
  fiber_vc : (int, Vc.t) Hashtbl.t;
  latch_rel_vc : (int, Vc.t) Hashtbl.t;  (* latch uid -> last release *)
  lock_rel_vc : (string, Vc.t) Hashtbl.t;  (* lock target -> last release *)
  (* what each fiber holds right now *)
  held_latches : (int, held_latch list) Hashtbl.t;
  held_locks : (int, (string * bool) list) Hashtbl.t;  (* target, table *)
  lockset : Lockset.t;
  goodlock : Goodlock.t;
  wal : Wal_check.t;
  (* dynamic L12 twin: per-fiber shared-state staleness automaton.
     [shared.(f).(key)] = (stale, read site) — stale flips true at an
     unlatched suspension; a write over a stale read is an observed
     read→yield→write crossing. Crossings accumulate across runs (like
     Goodlock edges); the per-fiber maps are volatile. *)
  shared : (int, (string, bool * string) Hashtbl.t) Hashtbl.t;
  shared_crossings : (string, string) Hashtbl.t;  (* key -> witness *)
  mutable reports : Diag.t list;
  seen : (string, unit) Hashtbl.t;  (* rule ^ site dedup *)
  mutable notify : (Diag.t -> unit) option;
  mutable events : int;
  mutable runs : int;
  mutable races : int;
  mutable wal_violations : int;
}

(* --- report plumbing --- *)

let add_report t (d : Diag.t) count =
  let key = d.rule ^ "\x00" ^ d.site in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.add t.seen key ();
    t.reports <- d :: t.reports;
    count ();
    match t.notify with None -> () | Some f -> f d
  end

let race_diag ~page ~(prev : Lockset.access) ~(cur : Lockset.access) =
  let tokens s =
    if Lockset.Sset.is_empty s then "nothing"
    else String.concat "," (Lockset.Sset.elements s)
  in
  let half (a : Lockset.access) =
    (if a.a_write then "write" else "read")
    ^ " at " ^ a.a_site ^ " by fiber " ^ string_of_int a.a_fiber
    ^ " holding " ^ tokens a.a_locks
  in
  Diag.make
    ~site:
      ("page-" ^ string_of_int page ^ ":" ^ prev.a_site ^ "/" ^ cur.a_site)
    ~file:"<san>" ~line:0 ~col:0 ~rule:"SAN-race"
    ~hint:
      "latch the page (X for writes) across the access, or order the \
       fibers with an explicit sync edge"
    ("unsynchronized access pair on page " ^ string_of_int page ^ ": "
   ^ half prev ^ ", then " ^ half cur
   ^ " with no common latch and no happens-before edge between them")

let wal_diag ~check ~site msg =
  Diag.make ~site:(check ^ ":" ^ site) ~file:"<san>" ~line:0 ~col:0
    ~rule:"SAN-wal"
    ~hint:
      "WAL protocol violation — force the log before stealing, keep page \
       LSNs monotone, log only CLRs during undo"
    msg

let create () =
  let rec t =
    lazy
      {
        fiber_vc = Hashtbl.create 32;
        latch_rel_vc = Hashtbl.create 128;
        lock_rel_vc = Hashtbl.create 128;
        held_latches = Hashtbl.create 32;
        held_locks = Hashtbl.create 32;
        lockset =
          Lockset.create ~report:(fun ~page ~prev ~cur ->
              let s = Lazy.force t in
              add_report s (race_diag ~page ~prev ~cur) (fun () ->
                  s.races <- s.races + 1));
        goodlock = Goodlock.create ();
        wal =
          Wal_check.create ~report:(fun ~check ~site msg ->
              let s = Lazy.force t in
              add_report s (wal_diag ~check ~site msg) (fun () ->
                  s.wal_violations <- s.wal_violations + 1));
        shared = Hashtbl.create 32;
        shared_crossings = Hashtbl.create 8;
        reports = [];
        seen = Hashtbl.create 32;
        notify = None;
        events = 0;
        runs = 0;
        races = 0;
        wal_violations = 0;
      }
  in
  Lazy.force t

let on_report t f = t.notify <- Some f

(* --- vector-clock helpers --- *)

let vc t f =
  match Hashtbl.find_opt t.fiber_vc f with
  | Some v -> v
  | None ->
    let v = Vc.tick f Vc.empty in
    Hashtbl.replace t.fiber_vc f v;
    v

let set_vc t f v = Hashtbl.replace t.fiber_vc f v

(* release-side of a sync edge: publish my clock, then advance past it *)
let publish t tbl key f =
  Hashtbl.replace tbl key (vc t f);
  set_vc t f (Vc.tick f (vc t f))

(* acquire-side: absorb the last published clock, if any *)
let absorb t tbl key f =
  match Hashtbl.find_opt tbl key with
  | None -> ()
  | Some v -> set_vc t f (Vc.join (vc t f) v)

(* --- held-set helpers --- *)

let latches_of t f = Option.value ~default:[] (Hashtbl.find_opt t.held_latches f)
let locks_of t f = Option.value ~default:[] (Hashtbl.find_opt t.held_locks f)

(* The releasing fiber is usually the holder, but latch ownership can
   transfer between fibers (heap_file hands latched pages over); fall
   back to a scan so the shadow held-set never leaks. Returns the fiber
   the entry was found under. *)
let remove_latch t f uid =
  let mine = latches_of t f in
  if List.exists (fun h -> h.h_uid = uid) mine then begin
    Hashtbl.replace t.held_latches f
      (List.filter (fun h -> h.h_uid <> uid) mine);
    f
  end
  else begin
    let owner = ref f in
    Hashtbl.iter
      (fun g hs ->
        if !owner = f && List.exists (fun h -> h.h_uid = uid) hs then
          owner := g)
      t.held_latches;
    if !owner <> f then
      Hashtbl.replace t.held_latches !owner
        (List.filter (fun h -> h.h_uid <> uid) (latches_of t !owner));
    !owner
  end

let remove_lock t f target =
  let mine = locks_of t f in
  if List.exists (fun (tg, _) -> tg = target) mine then
    Hashtbl.replace t.held_locks f
      (List.filter (fun (tg, _) -> tg <> target) mine)
  else
    Hashtbl.iter
      (fun g ls ->
        if List.exists (fun (tg, _) -> tg = target) ls then
          Hashtbl.replace t.held_locks g
            (List.filter (fun (tg, _) -> tg <> target) ls))
      t.held_locks

let lock_node table = if table then "lock:table" else "lock:record"

let latch_token uid = "L" ^ string_of_int uid
let lock_token target = "K:" ^ target

let access_of t f ~write ~site =
  let latches = latches_of t f in
  let locks = locks_of t f in
  let all =
    List.fold_left
      (fun s h -> Lockset.Sset.add (latch_token h.h_uid) s)
      (List.fold_left
         (fun s (tg, _) -> Lockset.Sset.add (lock_token tg) s)
         Lockset.Sset.empty locks)
      latches
  in
  let xs =
    List.fold_left
      (fun s h -> if h.h_excl then Lockset.Sset.add (latch_token h.h_uid) s else s)
      (List.fold_left
         (fun s (tg, _) -> Lockset.Sset.add (lock_token tg) s)
         Lockset.Sset.empty locks)
      latches
  in
  {
    Lockset.a_fiber = f;
    a_vc = vc t f;
    a_locks = all;
    a_xlocks = xs;
    a_write = write;
    a_site = site;
  }

let reset_volatile t =
  Hashtbl.reset t.fiber_vc;
  Hashtbl.reset t.latch_rel_vc;
  Hashtbl.reset t.lock_rel_vc;
  Hashtbl.reset t.held_latches;
  Hashtbl.reset t.held_locks;
  Hashtbl.reset t.shared;
  Lockset.reset t.lockset

(* --- the consumer --- *)

let feed t f (ev : Probe.event) =
  t.events <- t.events + 1;
  Wal_check.feed t.wal ev;
  match ev with
  | Spawn { child } ->
    set_vc t child (Vc.join (vc t child) (vc t f));
    set_vc t f (Vc.tick f (vc t f))
  | Fiber_exit ->
    (* joins into the main context (fiber -1): everything after the
       scheduler loop returns is ordered after every fiber *)
    set_vc t (-1) (Vc.join (vc t (-1)) (vc t f));
    Hashtbl.remove t.held_latches f;
    Hashtbl.remove t.held_locks f;
    Hashtbl.remove t.shared f
  | Resume { fiber } ->
    (* stamped fiber [f] is the resumer: the thunk runs in its context *)
    set_vc t fiber (Vc.join (vc t fiber) (vc t f));
    set_vc t f (Vc.tick f (vc t f))
  | Latch_acq { uid; role; page; excl } ->
    absorb t t.latch_rel_vc uid f;
    List.iter
      (fun h ->
        Goodlock.add_edge t.goodlock ~src:h.h_role ~dst:role
          ~site:(h.h_role ^ "->" ^ role))
      (latches_of t f);
    List.iter
      (fun (_, table) ->
        Goodlock.add_edge t.goodlock ~src:(lock_node table) ~dst:role
          ~site:(lock_node table ^ "->" ^ role))
      (locks_of t f);
    Hashtbl.replace t.held_latches f
      ({ h_uid = uid; h_role = role; h_excl = excl } :: latches_of t f);
    (* a page latch grant is itself a page access (S = read, X = write):
       the S chokepoint gives the race detector read coverage without a
       probe at every read site *)
    if page >= 0 then
      Lockset.record t.lockset ~page
        (access_of t f ~write:excl ~site:(role ^ ".latch"))
  | Latch_rel { uid; _ } ->
    ignore (remove_latch t f uid : int);
    publish t t.latch_rel_vc uid f
  | Lock_acq { target; table; cond; _ } ->
    absorb t t.lock_rel_vc target f;
    (* conditional requests never wait, so they cannot close a deadlock
       cycle: the lock is recorded as held (it protects accesses and may
       source later edges) but draws no incoming order edge — this is
       precisely the paper's latched-conditional-lock discipline *)
    if not cond then begin
      List.iter
        (fun h ->
          Goodlock.add_edge t.goodlock ~src:h.h_role ~dst:(lock_node table)
            ~site:(h.h_role ^ "->" ^ lock_node table))
        (latches_of t f);
      List.iter
        (fun (_, tb') ->
          Goodlock.add_edge t.goodlock ~src:(lock_node tb')
            ~dst:(lock_node table)
            ~site:(lock_node tb' ^ "->" ^ lock_node table))
        (locks_of t f)
    end;
    Hashtbl.replace t.held_locks f ((target, table) :: locks_of t f)
  | Lock_rel { target; _ } ->
    remove_lock t f target;
    publish t t.lock_rel_vc target f
  | Access { page; write; site } ->
    Lockset.record t.lockset ~page (access_of t f ~write ~site)
  | Lsn_set _ | Write_back _ | Log_append _ | Undo_begin _ | Undo_end _ ->
    () (* WAL checker already fed above *)
  | Page_evict { page } -> Lockset.clear_page t.lockset page
  | Yield ->
    (* a latch held across the suspension keeps the section atomic
       with respect to other fibers of the same protocol (the static
       analysis makes the same held=[] cut, leaving latched blocking
       to L2); an unlatched yield invalidates everything this fiber
       has read from shared state *)
    if latches_of t f = [] then (
      match Hashtbl.find_opt t.shared f with
      | None -> ()
      | Some m ->
        Hashtbl.iter
          (fun key (_, rsite) -> Hashtbl.replace m key (true, rsite))
          (Hashtbl.copy m))
  | Shared { key; write; site } ->
    let m =
      match Hashtbl.find_opt t.shared f with
      | Some m -> m
      | None ->
        let m = Hashtbl.create 8 in
        Hashtbl.replace t.shared f m;
        m
    in
    if write then begin
      (match Hashtbl.find_opt m key with
      | Some (true, rsite) ->
        (* staleness is tracked per instance ("Catalog.state(3)") but
           the static table classifies per class — strip the instance
           before recording *)
        let cls =
          match String.index_opt key '(' with
          | Some i -> String.sub key 0 i
          | None -> key
        in
        if not (Hashtbl.mem t.shared_crossings cls) then
          Hashtbl.replace t.shared_crossings cls (rsite ^ "->" ^ site)
      | _ -> ());
      Hashtbl.remove m key
    end
    else Hashtbl.replace m key (false, site)
  | Epoch _ ->
    t.runs <- t.runs + 1;
    reset_volatile t

let attach t trace = Oib_obs.Trace.set_probe trace (Some (feed t))
let detach trace = Oib_obs.Trace.set_probe trace None

(* --- results --- *)

let cycle_diags t =
  List.map
    (fun cyc ->
      let path = String.concat " -> " (cyc @ [ List.hd cyc ]) in
      Diag.make ~site:path ~file:"<san>" ~line:0 ~col:0 ~rule:"SAN-order"
        ~hint:
          "establish one global acquisition order between these \
           structures; the cycle is assembled from edges possibly seen \
           in different runs — no deadlock need have manifested"
        ("potential deadlock: acquisition-order cycle " ^ path))
    (Goodlock.cycles t.goodlock)

let reports t = Diag.dedupe (cycle_diags t @ t.reports)

let clean t = reports t = []

let runtime_edges t = Goodlock.edges t.goodlock

let diff_static t ~static =
  let static_only, runtime_only =
    Goodlock.diff ~runtime:(runtime_edges t) ~static
  in
  let edge_diag ~dir (a, b) =
    let msg =
      match dir with
      | `Static_only ->
        "static latch-order edge " ^ a ^ " -> " ^ b
        ^ " was never exercised at runtime"
      | `Runtime_only ->
        "runtime latch-order edge " ^ a ^ " -> " ^ b
        ^ " is absent from the static graph"
    in
    Diag.make
      ~site:(a ^ "->" ^ b)
      ~file:"<san>" ~line:0 ~col:0 ~rule:"SAN-graph"
      ~hint:
        "informational: widen the workload (static-only) or check the \
         linter's module aliasing (runtime-only)"
      msg
  in
  Diag.dedupe
    (List.map (edge_diag ~dir:`Static_only) static_only
    @ List.map (edge_diag ~dir:`Runtime_only) runtime_only)

let static_graph_of_json src =
  let module J = Oib_obs_analysis.Json in
  match J.parse src with
  | Error e -> Error ("bad graph JSON: " ^ e)
  | Ok j -> (
    match J.member "edges" j with
    | Some (J.List es) -> (
      try
        Ok
          (List.map
             (fun e ->
               match
                 ( Option.bind (J.member "from" e) J.to_string,
                   Option.bind (J.member "to" e) J.to_string )
               with
               | Some a, Some b -> (a, b)
               | _ -> failwith "edge missing from/to")
             es)
      with Failure m -> Error m)
    | _ -> Error "graph JSON has no \"edges\" list")

(* --- L12 twin: dynamically observed shared-state crossings --- *)

let shared_crossings t =
  List.sort compare
    (Hashtbl.fold (fun k w acc -> (k, w) :: acc) t.shared_crossings [])

let diff_atomics t ~static =
  (* [static] is the linter's crossing list (oib-lint --emit-atomics).
     Dynamic ⊇-violations are real: the sanitizer watched a fiber
     read, suspend unlatched, and write a class the static table calls
     atomic — one of the two analyses is missing an access site.
     Static-only crossings are informational (window not exercised). *)
  let dynamic = shared_crossings t in
  let dyn_only =
    List.filter (fun (k, _) -> not (List.mem k static)) dynamic
  in
  let static_only =
    List.filter (fun k -> not (List.mem_assoc k dynamic)) static
  in
  let dyn_diag (k, w) =
    Diag.make ~site:(k ^ ":" ^ w) ~file:"<san>" ~line:0 ~col:0
      ~rule:"SAN-atomics"
      ~hint:
        "the runtime observed a read -> unlatched yield -> write window \
         on this shared-state class but the static atomics table calls \
         it atomic; add the missing access/yield to the lint config or \
         fix the instrumentation"
      ("dynamic shared-state crossing on " ^ k ^ " (" ^ w
     ^ ") is absent from the static atomics table")
  in
  let static_diag k =
    Diag.make ~site:k ~file:"<san>" ~line:0 ~col:0 ~rule:"SAN-atomics-info"
      ~hint:
        "informational: widen the workload until the window is \
         exercised, or fix/justify the static finding"
      ("static shared-state crossing on " ^ k
     ^ " was never exercised at runtime")
  in
  Diag.dedupe
    (List.map dyn_diag dyn_only @ List.map static_diag static_only)

let static_atomics_of_json src =
  let module J = Oib_obs_analysis.Json in
  match J.parse src with
  | Error e -> Error ("bad atomics JSON: " ^ e)
  | Ok j -> (
    match J.member "crossing" j with
    | Some (J.List ks) -> (
      try
        Ok
          (List.map
             (fun k ->
               match J.to_string k with
               | Some s -> s
               | None -> failwith "non-string crossing entry")
             ks)
      with Failure m -> Error m)
    | _ -> Error "atomics JSON has no \"crossing\" list")

let stats_json t =
  let order_cycles = List.length (Goodlock.cycles t.goodlock) in
  "{\"events\":" ^ string_of_int t.events
  ^ ",\"runs\":" ^ string_of_int t.runs
  ^ ",\"races\":" ^ string_of_int t.races
  ^ ",\"order_cycles\":" ^ string_of_int order_cycles
  ^ ",\"wal_violations\":" ^ string_of_int t.wal_violations
  ^ ",\"edges\":" ^ string_of_int (List.length (runtime_edges t))
  ^ ",\"shared_crossings\":"
  ^ string_of_int (List.length (shared_crossings t))
  ^ "}"
