module Sset = Set.Make (String)

type access = {
  a_fiber : int;
  a_vc : Vc.t;
  a_locks : Sset.t;
  a_xlocks : Sset.t;
  a_write : bool;
  a_site : string;
}

type shadow = {
  mutable last_write : access option;
  mutable reads : access list;  (* since the last write, newest first *)
}

type t = {
  pages : (int, shadow) Hashtbl.t;
  report : page:int -> prev:access -> cur:access -> unit;
}

let create ~report = { pages = Hashtbl.create 64; report }

(* cap the per-page read set: enough to pair every concurrent reader in
   the simulator's small fiber counts, bounded against pathological runs *)
let max_reads = 16

let protected_pair prev cur =
  match (prev.a_write, cur.a_write) with
  | true, true -> not (Sset.is_empty (Sset.inter prev.a_xlocks cur.a_xlocks))
  | true, false -> not (Sset.is_empty (Sset.inter prev.a_xlocks cur.a_locks))
  | false, true -> not (Sset.is_empty (Sset.inter prev.a_locks cur.a_xlocks))
  | false, false -> true (* reads never conflict *)

let check t ~page prev cur =
  if
    prev.a_fiber <> cur.a_fiber
    && (prev.a_write || cur.a_write)
    && (not (Vc.leq prev.a_vc cur.a_vc))
    && not (protected_pair prev cur)
  then t.report ~page ~prev ~cur

let shadow t page =
  match Hashtbl.find_opt t.pages page with
  | Some s -> s
  | None ->
    let s = { last_write = None; reads = [] } in
    Hashtbl.replace t.pages page s;
    s

let record t ~page acc =
  let s = shadow t page in
  (match s.last_write with
  | Some w -> check t ~page w acc
  | None -> ());
  if acc.a_write then begin
    List.iter (fun r -> check t ~page r acc) s.reads;
    s.reads <- [];
    s.last_write <- Some acc
  end
  else begin
    let reads = acc :: s.reads in
    s.reads <-
      (if List.length reads > max_reads then
         List.filteri (fun i _ -> i < max_reads) reads
       else reads)
  end

let clear_page t page = Hashtbl.remove t.pages page

let reset t = Hashtbl.reset t.pages
