(** oib-san: the online sanitizer.

    One [San.t] consumes the probe stream of a {!Oib_obs.Trace.t}
    (installed with {!attach}) and drives three analyses at once:

    - an Eraser-style {!Lockset} race detector over buffer-pool pages,
      refined with FastTrack-style vector clocks so accesses ordered by
      fiber spawn/resume, condvar signal/wait, or latch/lock
      release-acquire pairs are never reported;
    - a {!Goodlock} acquisition-order graph whose cycles are potential
      deadlocks — accumulated {e across} runs, so two runs that each
      take only one half of an inversion still assemble the cycle;
    - the {!Wal_check} runtime verifier (page-LSN monotonicity,
      log-before-steal at write-back, CLR discipline during undo);
    - a shared-state interference automaton, the dynamic half of the
      linter's L12 twin: per fiber and shared-state class, a read
      followed by an {e unlatched} suspension ([Yield] probe) and then
      a write is an observed lost-update window ("crossing"),
      accumulated across runs and diffed against the static atomics
      table with {!diff_atomics}.

    Findings are {!Oib_lint.Diag.t} values under rules [SAN-race],
    [SAN-order] and [SAN-wal], deduplicated by [(rule, site)] and
    reported sorted, so sanitized runs are byte-stable. An [Epoch] probe
    (run start, restart recovery) clears all volatile shadow state;
    reports and the order graph survive. *)

type t

val create : unit -> t

val attach : t -> Oib_obs.Trace.t -> unit
(** Install this sanitizer as the trace's probe consumer. The consumer
    runs inside critical sections of the instrumented code and never
    blocks. *)

val detach : Oib_obs.Trace.t -> unit

val feed : t -> int -> Oib_obs.Probe.event -> unit
(** Consume one probe from the given fiber. [attach] wires this up;
    exposed for tests that drive the sanitizer directly. *)

val on_report : t -> (Oib_lint.Diag.t -> unit) -> unit
(** Called once per {e fresh} finding (first time its dedup key is
    seen) — the fuzzer uses the first call to dump the flight recorder
    while the racing run's events are still in the ring. *)

val reports : t -> Oib_lint.Diag.t list
(** All findings so far — race and WAL findings as they were detected,
    plus order-graph cycles computed now. Sorted and deduplicated. *)

val clean : t -> bool

val runtime_edges : t -> (string * string) list
(** The accumulated acquisition-order graph, sorted. *)

val static_graph_of_json :
  string -> ((string * string) list, string) result
(** Parse the JSON written by [oib-lint --emit-graph]. *)

val diff_static : t -> static:(string * string) list -> Oib_lint.Diag.t list
(** Both directions of the static-vs-runtime latch-graph comparison, as
    [SAN-graph] informational diagnostics: static edges the workload
    never exercised, and observed latch edges the static analysis
    missed. *)

val shared_crossings : t -> (string * string) list
(** Dynamically observed read→unlatched-yield→write windows:
    (class key, "read site->write site" witness), sorted. Accumulated
    across runs; epochs do not clear them. *)

val static_atomics_of_json : string -> (string list, string) result
(** Parse the crossing list out of the JSON written by
    [oib-lint --emit-atomics]. *)

val diff_atomics : t -> static:string list -> Oib_lint.Diag.t list
(** Diff observed crossings against the static table. Dynamic-only
    crossings are [SAN-atomics] errors (the static analysis missed an
    access or yield site); static-only crossings are
    [SAN-atomics-info] (window not exercised by this workload). *)

val stats_json : t -> string
(** Counters ([events], [runs], [races], [order_cycles],
    [wal_violations], [edges], [shared_crossings]) as a small JSON
    object for [SAN_stats.json]. *)
