(** WAL runtime verifier.

    Three checks over the probe stream:

    - {b page-LSN monotonicity}: a page's LSN never moves backwards
      ([Page.set_lsn] probes carry the old and new values; a per-page
      shadow catches regressions across page-object rebuilds). Shadow
      entries die with the page ([Page_evict]) and at run boundaries.
    - {b write-ahead rule}: at buffer-pool write-back the log must be
      durable up to the page's LSN ([flushed_lsn >= page_lsn]) — a steal
      that beats the log force is the classic WAL violation.
    - {b CLR discipline}: between a transaction's undo begin/end markers,
      every log record that transaction appends must be a compensation
      ([clr]) or the closing [abort]/[end] — undo must never append
      fresh redoable work. *)

type t

val create : report:(check:string -> site:string -> string -> unit) -> t
(** [check] is one of ["lsn-monotonic"], ["steal-before-flush"],
    ["clr-discipline"]. *)

val feed : t -> Oib_obs.Probe.event -> unit
(** Irrelevant events are ignored; [Epoch] clears all volatile state. *)
